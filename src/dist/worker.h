// A worker: one segment of the network plus the machinery to simulate and
// verify it (paper §3.2, "Workers").
//
// Control plane: real cp::Node objects for assigned switches, ShadowNodes
// for remote neighbors; synchronous phases driven by the CPO with all
// cross-worker traffic flowing through the sidecar fabric as serialized
// bytes.
//
// Data plane: a private lane-parallel forwarding domain (dp/parallel.h).
// With dp_lanes == 1 it degenerates to the classic single manager +
// ForwardingEngine; with more lanes the worker's nodes are sub-partitioned
// across shared-nothing BDD domains drained in hop-level lockstep.
// Symbolic packets crossing workers are serialized with bdd_io and
// re-encoded on arrival (§4.3, option 2: per-worker node tables), batched
// per destination worker into kPacketBatch frames.
//
// Every byte of control- and data-plane state a worker holds is charged to
// its own MemoryTracker, whose budget makes per-worker OOM observable.
#pragma once

#include <memory>
#include <unordered_map>

#include "cp/engine.h"
#include "dist/shadow.h"
#include "dist/sidecar.h"
#include "dp/forwarding.h"
#include "dp/parallel.h"
#include "dp/properties.h"
#include "fault/checkpoint.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace s2::dist {

// A final packet in transit back to the controller (BDD serialized).
struct SerializedFinal {
  topo::NodeId src = topo::kInvalidNode;
  topo::NodeId node = topo::kInvalidNode;
  dp::FinalState state = dp::FinalState::kArrive;
  std::vector<topo::NodeId> path;  // path-recording queries only
  std::vector<uint8_t> set;

  size_t WireBytes() const { return 16 + set.size() + 4 * path.size(); }
};

class Worker {
 public:
  struct Options {
    size_t memory_budget = 0;   // bytes; 0 = unlimited
    size_t max_bdd_nodes = 0;   // 0 = unbounded node table
    dp::HeaderLayout layout;
    int max_hops = 24;
    // Intra-worker data-plane lanes (dp/parallel.h); 1 = the sequential
    // engine, bit-identical to the pre-lane behavior.
    uint32_t dp_lanes = 1;
    // Pool the lanes run on (shared with the DPO's worker fan-out — the
    // pool's ParallelFor is re-entrant). Null runs lanes sequentially.
    util::ThreadPool* pool = nullptr;
  };

  Worker(uint32_t index, const config::ParsedNetwork& network,
         SidecarFabric* fabric, Options options);

  uint32_t index() const { return index_; }
  util::MemoryTracker& tracker() { return tracker_; }
  // The worker's attribute-interning domain: inbound batches re-intern
  // here, and the RunReport's attr.* counters sum these per-worker stats.
  const cp::AttrPool& attr_pool() const { return attr_pool_; }
  const std::vector<topo::NodeId>& local_nodes() const { return local_; }
  bool IsLocal(topo::NodeId id) const {
    return fabric_->WorkerOf(id) == index_;
  }

  // ------------------------------------------------- control plane (CPO)
  void BeginOspf();
  void FinishOspf();
  void BeginBgp(const cp::PrefixSet* shard);

  // Phase A: one ComputeRound per local node, then ship every outbox entry
  // (local ones are buffered, remote ones serialized through the sidecar).
  // Returns true if any node produced updates.
  bool ComputeAndShip();

  // Phase B: drain the sidecar into shadow nodes, then let every local
  // node pull from each neighbor — real or shadow — identically.
  void Deliver();

  void SpillBgp(cp::RibStore& store, int shard);
  void RetainBgp();

  // --------------------------------------------------- data plane (DPO)
  // Builds FIBs and port predicates for local nodes. Reads converged BGP
  // routes from `store` when sharding spilled them, else from the nodes.
  void BuildDataPlane(const cp::RibStore* store);

  // Installs a query: waypoint write rules and injections at local
  // sources. Clears any previous query's runtime state.
  void PrepareQuery(const dp::Query& query);

  // One forwarding round, split in two barrier phases (mirroring the
  // CPO's ComputeAndShip/Deliver split): first every worker accepts the
  // serialized packets its sidecar holds, then every worker runs its local
  // engine to quiescence and ships cross-worker batches. The barrier
  // between the phases is what keeps the round partitioning — and with it
  // batching, coalescing, and finals fragmentation — independent of the
  // thread schedule. Each returns true if anything was processed/moved.
  bool AcceptPackets();
  bool ForwardAndShip();

  // Drains final packets, serialized for the controller (lane-major order;
  // deterministic for a fixed dp_lanes).
  std::vector<SerializedFinal> TakeFinals();

  // Canonical predicate bytes of every local node (the FIB fingerprint;
  // also what Dpo::RunQueries rebuilds per-query domains from).
  std::map<topo::NodeId, std::vector<uint8_t>> SnapshotPredicates() const;

  bool has_data_plane() const { return dp_ != nullptr; }

  // Per local node, the (prefix, next hop) forward edges of its FIB —
  // retained by BuildDataPlane for snapshot capture (svc/snapshot.h) and
  // admission scoping. Empty after RestoreDataPlane (a checkpoint carries
  // predicates, not FIBs); the query service's lazy-scope fallback keeps
  // scoping sound on a recovered worker.
  const std::map<topo::NodeId,
                 std::vector<std::pair<util::Ipv4Prefix, topo::NodeId>>>&
  fib_edges() const {
    return fib_edges_;
  }

  // Frees data-plane state (between experiments).
  void ResetDataPlane();

  // -------------------------------------------- crash recovery (src/fault)
  // Snapshots this worker's control-plane state at a barrier. `shard` is
  // the active shard index (-1 = none); the caller stamps fabric_round.
  fault::WorkerCheckpoint Checkpoint(int shard) const;

  // Adds the data-plane snapshot (canonical predicate bytes + FIB size) to
  // an existing checkpoint. Call after BuildDataPlane.
  void CheckpointDataPlane(fault::WorkerCheckpoint& checkpoint) const;

  // Restores a freshly constructed worker from a checkpoint. `shard` must
  // resolve checkpoint.shard against the live partition plan.
  void Restore(const fault::WorkerCheckpoint& checkpoint,
               const cp::PrefixSet* shard);

  // Re-executes the rounds lost between the checkpoint and the crash: for
  // each round in [from_round, to_round), one local compute with remote
  // sends suppressed (receivers already hold them — they are in the
  // surviving sidecar's custody), then the round's logged deliveries.
  // Because the checkpoint restores dirty marks exactly, this reproduces
  // the pre-crash state bit for bit.
  void ReplayDelivered(int from_round, int to_round,
                       const std::vector<fault::LoggedDelivery>& log);

  // Rebuilds the data-plane engine from checkpointed predicate bytes
  // (re-encoded into a fresh manager) instead of recomputing FIBs.
  void RestoreDataPlane(const fault::WorkerCheckpoint& checkpoint);

  // ------------------------------------------------------------- metrics
  // Wall time this worker spent computing in the last phase call.
  double last_phase_seconds() const { return last_phase_seconds_; }
  // Cumulative predicate-computation time (Fig 10's first phase).
  double predicate_seconds() const { return predicate_seconds_; }
  size_t forwarding_steps() const { return dp_ ? dp_->steps() : 0; }
  // Summed BDD op-cache counters across the data-plane lanes.
  bdd::Manager::CacheStats bdd_cache_stats() const {
    return dp_ ? dp_->cache_stats() : bdd::Manager::CacheStats{};
  }
  const cp::Node& node(topo::NodeId id) const { return *nodes_.at(id); }

 private:
  bool ComputeAndShipImpl(bool suppress_remote);
  void DeliverBatch(std::vector<Message> messages);
  dp::ParallelForwarding::Options DataPlaneOptions();

  uint32_t index_;
  const config::ParsedNetwork* network_;
  SidecarFabric* fabric_;
  Options options_;
  util::MemoryTracker tracker_;
  // Declared after tracker_ (entries charge it) and before nodes_ /
  // shadows_ / local_pending_ (they hold handles into it).
  cp::AttrPool attr_pool_;

  std::vector<topo::NodeId> local_;
  std::unordered_map<topo::NodeId, std::unique_ptr<cp::Node>> nodes_;
  std::unordered_map<topo::NodeId, ShadowNode> shadows_;
  // Buffered same-worker deliveries of the current round: (to, from).
  std::map<std::pair<topo::NodeId, topo::NodeId>,
           std::vector<cp::RouteUpdate>>
      local_pending_;

  std::unique_ptr<dp::ParallelForwarding> dp_;
  size_t fib_bytes_ = 0;
  std::map<topo::NodeId,
           std::vector<std::pair<util::Ipv4Prefix, topo::NodeId>>>
      fib_edges_;

  double last_phase_seconds_ = 0;
  double predicate_seconds_ = 0;
};

}  // namespace s2::dist
