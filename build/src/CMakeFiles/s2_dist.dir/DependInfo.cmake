
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/controller.cc" "src/CMakeFiles/s2_dist.dir/dist/controller.cc.o" "gcc" "src/CMakeFiles/s2_dist.dir/dist/controller.cc.o.d"
  "/root/repo/src/dist/cpo.cc" "src/CMakeFiles/s2_dist.dir/dist/cpo.cc.o" "gcc" "src/CMakeFiles/s2_dist.dir/dist/cpo.cc.o.d"
  "/root/repo/src/dist/dpo.cc" "src/CMakeFiles/s2_dist.dir/dist/dpo.cc.o" "gcc" "src/CMakeFiles/s2_dist.dir/dist/dpo.cc.o.d"
  "/root/repo/src/dist/message.cc" "src/CMakeFiles/s2_dist.dir/dist/message.cc.o" "gcc" "src/CMakeFiles/s2_dist.dir/dist/message.cc.o.d"
  "/root/repo/src/dist/shadow.cc" "src/CMakeFiles/s2_dist.dir/dist/shadow.cc.o" "gcc" "src/CMakeFiles/s2_dist.dir/dist/shadow.cc.o.d"
  "/root/repo/src/dist/sidecar.cc" "src/CMakeFiles/s2_dist.dir/dist/sidecar.cc.o" "gcc" "src/CMakeFiles/s2_dist.dir/dist/sidecar.cc.o.d"
  "/root/repo/src/dist/worker.cc" "src/CMakeFiles/s2_dist.dir/dist/worker.cc.o" "gcc" "src/CMakeFiles/s2_dist.dir/dist/worker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s2_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s2_cp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s2_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s2_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s2_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s2_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
