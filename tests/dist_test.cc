// Distributed-framework tests: sidecar routing and byte accounting, shadow
// nodes, worker phase mechanics — and the system's central invariant:
// S2's distributed verification produces results identical to the
// monolithic baseline for every partition scheme, worker count, and shard
// count (paper §5.3: "they output the same set of RIBs").
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <tuple>
#include <utility>

#include "core/mono.h"
#include "core/s2.h"
#include "test_networks.h"
#include "topo/dcn.h"
#include "topo/fattree.h"
#include "util/status.h"

namespace s2::dist {
namespace {

TEST(SidecarFabricTest, RoutesByAssignmentAndCounts) {
  SidecarFabric fabric(2, {0, 0, 1});
  EXPECT_EQ(fabric.WorkerOf(2), 1u);
  Message message;
  message.to_node = 2;
  message.from_node = 0;
  message.payload = {1, 2, 3};
  fabric.Send(0, message);
  EXPECT_TRUE(fabric.HasPending());
  EXPECT_EQ(fabric.bytes_sent_by(0), message.WireBytes());
  EXPECT_EQ(fabric.messages_sent_by(0), 1u);
  EXPECT_TRUE(fabric.Drain(0).empty());  // addressed to worker 1
  auto delivered = fabric.Drain(1);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].to_node, 2u);
  EXPECT_FALSE(fabric.HasPending());
  fabric.ResetCounters();
  EXPECT_EQ(fabric.total_bytes(), 0u);
}

TEST(SidecarFabricTest, ConcurrentSendsAreCountedExactly) {
  SidecarFabric fabric(4, {0, 1, 2, 3});
  util::ThreadPool pool(4);
  constexpr int kPerWorker = 200;
  pool.ParallelFor(4, [&](size_t w) {
    for (int i = 0; i < kPerWorker; ++i) {
      Message message;
      message.to_node = static_cast<topo::NodeId>((w + 1) % 4);
      message.from_node = static_cast<topo::NodeId>(w);
      message.payload = {7};
      fabric.Send(static_cast<uint32_t>(w), std::move(message));
    }
  });
  size_t delivered = 0;
  for (uint32_t w = 0; w < 4; ++w) {
    EXPECT_EQ(fabric.messages_sent_by(w), size_t(kPerWorker));
    EXPECT_GE(fabric.max_queue_depth(w), size_t(kPerWorker));  // high-water
    delivered += fabric.Drain(w).size();
  }
  EXPECT_EQ(delivered, size_t(4 * kPerWorker));
}

// Regression for the direct-mode global queue lock: a sender holding one
// destination's queue must not block senders to other destinations. The
// send hook parks the first sender inside worker 0's critical section;
// under the old fabric-wide mutex the second send could not start and this
// test timed out. Deterministic: no schedule luck involved, the hook
// *guarantees* the overlap.
TEST(SidecarFabricTest, SendsToDistinctDestinationsDoNotSerialize) {
  SidecarFabric fabric(2, {0, 1});
  std::atomic<bool> parked{false}, release{false};
  fabric.set_send_hook([&](uint32_t dest) {
    if (dest != 0) return;
    parked.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::thread blocker([&] {
    Message message;
    message.to_node = 0;  // hosted by worker 0
    message.from_node = 1;
    message.payload = {1};
    fabric.Send(1, std::move(message));
  });
  while (!parked.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Worker 0's queue lock is held. A send to worker 1 must still finish.
  std::atomic<bool> other_done{false};
  std::thread other([&] {
    Message message;
    message.to_node = 1;  // hosted by worker 1
    message.from_node = 0;
    message.payload = {2};
    fabric.Send(0, std::move(message));
    other_done.store(true);
  });
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!other_done.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(other_done.load())
      << "send to an uncontended destination stalled behind another queue";

  release.store(true);
  blocker.join();
  other.join();
  fabric.set_send_hook(nullptr);
  EXPECT_EQ(fabric.Drain(0).size(), 1u);
  EXPECT_EQ(fabric.Drain(1).size(), 1u);
}

// Senders racing a concurrent drainer (chaos label: runs under TSan in
// CI). Every message is delivered exactly once and the atomic counters
// agree with the ground truth regardless of interleaving.
TEST(SidecarFabricTest, ConcurrentSendAndDrainConserveMessages) {
  constexpr uint32_t kWorkers = 3;
  constexpr int kPerSender = 500;
  SidecarFabric fabric(kWorkers, {0, 1, 2});
  std::atomic<int> senders_left{int(kWorkers)};
  std::vector<std::thread> senders;
  for (uint32_t w = 0; w < kWorkers; ++w) {
    senders.emplace_back([&, w] {
      for (int i = 0; i < kPerSender; ++i) {
        Message message;
        message.to_node = static_cast<topo::NodeId>((w + 1 + i) % kWorkers);
        message.from_node = static_cast<topo::NodeId>(w);
        message.payload = {static_cast<uint8_t>(i & 0xff)};
        fabric.Send(w, std::move(message));
      }
      senders_left.fetch_sub(1);
    });
  }
  size_t delivered = 0;
  while (senders_left.load() > 0 || fabric.HasPending()) {
    for (uint32_t w = 0; w < kWorkers; ++w) {
      delivered += fabric.Drain(w).size();
    }
  }
  for (std::thread& t : senders) t.join();
  EXPECT_EQ(delivered, size_t(kWorkers) * kPerSender);
  size_t counted = 0;
  for (uint32_t w = 0; w < kWorkers; ++w) {
    counted += fabric.messages_sent_by(w);
  }
  EXPECT_EQ(counted, size_t(kWorkers) * kPerSender);
  EXPECT_FALSE(fabric.HasPending());
}

// ------------------------------------------- reliable-mode stress (chaos)

// Each of `workers` pool threads ships `per_channel` messages to every
// other worker, concurrently; then the fabric is drained one round per
// worker until quiescent. Returns per (from, to) channel the payload
// sequence observed at `to`.
std::map<std::pair<uint32_t, uint32_t>, std::vector<uint32_t>>
StressReliableFabric(SidecarFabric& fabric, uint32_t workers,
                     uint32_t per_channel) {
  util::ThreadPool pool(workers);
  pool.ParallelFor(workers, [&](size_t w) {
    for (uint32_t i = 0; i < per_channel; ++i) {
      for (uint32_t to = 0; to < workers; ++to) {
        if (to == static_cast<uint32_t>(w)) continue;
        Message message;
        message.to_node = static_cast<topo::NodeId>(to);
        message.from_node = static_cast<topo::NodeId>(w);
        message.payload = {static_cast<uint8_t>(i & 0xff),
                           static_cast<uint8_t>(i >> 8)};
        fabric.Send(static_cast<uint32_t>(w), std::move(message));
      }
    }
  });
  std::map<std::pair<uint32_t, uint32_t>, std::vector<uint32_t>> seen;
  for (int round = 0; round < 2000; ++round) {
    for (uint32_t w = 0; w < workers; ++w) {
      for (const Message& m : fabric.Drain(w)) {
        seen[{m.from_node, w}].push_back(m.payload[0] |
                                         (uint32_t(m.payload[1]) << 8));
      }
    }
    if (!fabric.HasPending()) break;
  }
  return seen;
}

TEST(SidecarFabricStressTest, ReliableModeLosesAndDuplicatesNothing) {
  constexpr uint32_t kWorkers = 4, kPerChannel = 300;
  SidecarFabric fabric(kWorkers, {0, 1, 2, 3});
  fault::FaultPlan tuning;  // no injector: pure reliability envelope
  fabric.EnableReliableDelivery(tuning, nullptr, false);
  auto seen = StressReliableFabric(fabric, kWorkers, kPerChannel);
  EXPECT_FALSE(fabric.HasPending());
  ASSERT_EQ(seen.size(), size_t(kWorkers * (kWorkers - 1)));
  for (const auto& [channel, payloads] : seen) {
    ASSERT_EQ(payloads.size(), size_t(kPerChannel))
        << channel.first << "->" << channel.second;
    // Exactly once AND in the sender's order.
    for (uint32_t i = 0; i < kPerChannel; ++i) EXPECT_EQ(payloads[i], i);
  }
  EXPECT_EQ(fabric.transport_stats().dropped, 0u);
  EXPECT_EQ(fabric.transport_stats().retransmits, 0u);
  for (uint32_t w = 0; w < kWorkers; ++w) {
    EXPECT_GE(fabric.max_queue_depth(w), size_t(kPerChannel));
  }
}

TEST(SidecarFabricStressTest, SeededFaultsReplayDeterministically) {
  // Concurrent senders + a seeded injector: the fault schedule is a pure
  // hash of (seed, channel, seq, attempt), and each channel has a single
  // sending thread, so two runs deliver identical per-channel sequences
  // and identical transport stats no matter how threads interleave.
  auto run = [] {
    constexpr uint32_t kWorkers = 4, kPerChannel = 120;
    fault::FaultPlan plan;
    plan.seed = 77;
    plan.default_link.drop = 0.2;
    plan.default_link.duplicate = 0.1;
    plan.default_link.reorder = 0.1;
    plan.default_link.max_delay_rounds = 2;
    fault::FaultInjector injector(plan);
    SidecarFabric fabric(kWorkers, {0, 1, 2, 3});
    fabric.EnableReliableDelivery(plan, &injector, false);
    auto seen = StressReliableFabric(fabric, kWorkers, kPerChannel);
    EXPECT_FALSE(fabric.HasPending());
    for (const auto& [channel, payloads] : seen) {
      EXPECT_EQ(payloads.size(), size_t(kPerChannel));
      for (uint32_t i = 0; i < payloads.size(); ++i) {
        EXPECT_EQ(payloads[i], i);
      }
    }
    fault::ReliableTransport::Stats s = fabric.transport_stats();
    EXPECT_GT(s.dropped, 0u);
    EXPECT_GT(s.retransmits, 0u);
    return std::tuple(seen, s.data_frames, s.retransmits, s.acks,
                      s.wire_bytes, s.dropped, s.duplicated, s.delayed,
                      s.reordered, s.duplicates_suppressed, s.out_of_order);
  };
  EXPECT_EQ(run(), run());
}

TEST(DistResourceTest, PerWorkerBddTableOverflowIsAVerdict) {
  topo::FatTreeParams params;
  params.k = 4;
  auto net = testing::Parse(topo::MakeFatTree(params));
  ControllerOptions options;
  options.num_workers = 2;
  options.max_bdd_nodes = 64;  // absurdly small per-worker node table
  core::S2Verifier verifier(options);
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  query.sources = {0};
  query.destinations = {net.graph.FindByName("edge-1-0")};
  core::VerifyResult result = verifier.Verify(net, {query});
  EXPECT_EQ(result.status, core::RunStatus::kOutOfMemory);
  EXPECT_NE(result.failure_detail.find("bdd-node-table"),
            std::string::npos);
}

TEST(ShadowNodeTest, DeliversPerLocalNode) {
  ShadowNode shadow(7);
  cp::RouteUpdate update;
  update.prefix = util::MustParsePrefix("10.0.0.0/24");
  update.withdraw = true;
  shadow.Deliver(1, {update});
  shadow.Deliver(1, {update});  // appends
  EXPECT_TRUE(shadow.HasPending());
  EXPECT_EQ(shadow.TakeUpdatesFor(1).size(), 2u);
  EXPECT_TRUE(shadow.TakeUpdatesFor(1).empty());  // drained
  EXPECT_TRUE(shadow.TakeUpdatesFor(2).empty());  // never addressed
}

// ------------------------------------------------------- the invariant

dp::Query AllPairQuery(const config::ParsedNetwork& net) {
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  for (topo::NodeId id = 0; id < net.graph.size(); ++id) {
    if (net.graph.node(id).role == topo::Role::kEdge) {
      query.sources.push_back(id);
      query.destinations.push_back(id);
    }
  }
  return query;
}

struct Baseline {
  core::VerifyResult result;
  std::vector<std::map<util::Ipv4Prefix, std::vector<cp::Route>>> ribs;
};

Baseline RunMono(const config::ParsedNetwork& net, const dp::Query& query) {
  Baseline baseline;
  core::MonoVerifier mono{core::MonoOptions{}};
  baseline.result = mono.Verify(net, {query});
  for (const auto& node : mono.last_engine()->nodes()) {
    baseline.ribs.push_back(node->bgp_routes());
  }
  return baseline;
}

using DistParams = std::tuple<uint32_t, topo::PartitionScheme, int>;

class DistEquivalenceTest : public ::testing::TestWithParam<DistParams> {};

TEST_P(DistEquivalenceTest, FatTreeMatchesMonoExactly) {
  auto [workers, scheme, shards] = GetParam();
  topo::FatTreeParams params;
  params.k = 4;
  auto net = testing::Parse(topo::MakeFatTree(params));
  dp::Query query = AllPairQuery(net);
  Baseline baseline = RunMono(net, query);

  ControllerOptions options;
  options.num_workers = workers;
  options.scheme = scheme;
  options.num_shards = shards;
  core::S2Verifier verifier(options);
  core::VerifyResult result = verifier.Verify(net, {query});
  ASSERT_TRUE(result.ok()) << result.failure_detail;

  // Identical property verdicts.
  ASSERT_EQ(result.queries.size(), 1u);
  EXPECT_EQ(result.queries[0].reachable_pairs,
            baseline.result.queries[0].reachable_pairs);
  EXPECT_EQ(result.queries[0].unreachable_pairs,
            baseline.result.queries[0].unreachable_pairs);
  EXPECT_EQ(result.queries[0].loop_free,
            baseline.result.queries[0].loop_free);
  EXPECT_EQ(result.queries[0].blackhole_finals > 0,
            baseline.result.queries[0].blackhole_finals > 0);
  EXPECT_EQ(result.total_best_routes, baseline.result.total_best_routes);

  // Identical RIBs, node by node (the §5.3 claim). Without sharding the
  // routes live in the worker nodes; with sharding they were spilled, so
  // compare through the workers' own retained/spilled state only in the
  // retained case.
  if (shards == 0) {
    Controller* controller = verifier.last_controller();
    for (size_t w = 0; w < controller->num_workers(); ++w) {
      Worker& worker = controller->worker(w);
      for (topo::NodeId id : worker.local_nodes()) {
        EXPECT_EQ(worker.node(id).bgp_routes(), baseline.ribs[id])
            << "node " << id;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DistEquivalenceTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 7u),
                       ::testing::Values(topo::PartitionScheme::kMetisLike,
                                         topo::PartitionScheme::kRandom,
                                         topo::PartitionScheme::kExpert,
                                         topo::PartitionScheme::kImbalanced,
                                         topo::PartitionScheme::kCommHeavy),
                       ::testing::Values(0, 5)));

TEST(DistEquivalenceDcnTest, DcnMatchesMonoAcrossWorkers) {
  auto net = testing::Parse(topo::MakeDcn(topo::DcnParams{}));
  dp::Query query = AllPairQuery(net);
  Baseline baseline = RunMono(net, query);
  for (uint32_t workers : {1u, 3u, 6u}) {
    ControllerOptions options;
    options.num_workers = workers;
    options.num_shards = 4;
    core::S2Verifier verifier(options);
    core::VerifyResult result = verifier.Verify(net, {query});
    ASSERT_TRUE(result.ok()) << result.failure_detail;
    EXPECT_EQ(result.queries[0].reachable_pairs,
              baseline.result.queries[0].reachable_pairs);
    EXPECT_EQ(result.queries[0].unreachable_pairs,
              baseline.result.queries[0].unreachable_pairs);
    EXPECT_EQ(result.total_best_routes, baseline.result.total_best_routes);
  }
}

TEST(DistEquivalenceOspfTest, MixedProtocolsMatchMono) {
  // OSPF underlay + redistribution into BGP, run distributed: the CPO's
  // IGP-before-EGP sequencing must produce the monolithic fixed point.
  topo::Network net = testing::MakeChain(5);
  for (auto& intent : net.intents) intent.enable_ospf = true;
  net.intents[2].redistribute_ospf_into_bgp = true;
  net.intents[0].announced.clear();  // loopback reachable via OSPF only
  auto parsed = testing::Parse(net);

  core::MonoVerifier mono{core::MonoOptions{}};
  core::VerifyResult base = mono.Verify(parsed, {});
  ASSERT_TRUE(base.ok());

  ControllerOptions options;
  options.num_workers = 3;
  core::S2Verifier verifier(options);
  core::VerifyResult result = verifier.Verify(parsed, {});
  ASSERT_TRUE(result.ok()) << result.failure_detail;
  EXPECT_EQ(result.total_best_routes, base.total_best_routes);

  Controller* controller = verifier.last_controller();
  for (size_t w = 0; w < controller->num_workers(); ++w) {
    Worker& worker = controller->worker(w);
    for (topo::NodeId id : worker.local_nodes()) {
      EXPECT_EQ(worker.node(id).bgp_routes(),
                mono.last_engine()->node(id).bgp_routes());
      EXPECT_EQ(worker.node(id).ospf_routes(),
                mono.last_engine()->node(id).ospf_routes());
    }
  }
}

TEST(WorkerTest, LocalNodesFollowAssignment) {
  auto net = testing::Parse(testing::MakeChain(4));
  SidecarFabric fabric(2, {0, 1, 0, 1});
  Worker w0(0, net, &fabric, Worker::Options{});
  Worker w1(1, net, &fabric, Worker::Options{});
  EXPECT_EQ(w0.local_nodes(), (std::vector<topo::NodeId>{0, 2}));
  EXPECT_EQ(w1.local_nodes(), (std::vector<topo::NodeId>{1, 3}));
  EXPECT_TRUE(w0.IsLocal(2));
  EXPECT_FALSE(w0.IsLocal(1));
}

TEST(WorkerTest, PhasesExchangeAcrossTheFabric) {
  auto net = testing::Parse(testing::MakeChain(2));
  SidecarFabric fabric(2, {0, 1});
  Worker w0(0, net, &fabric, Worker::Options{});
  Worker w1(1, net, &fabric, Worker::Options{});
  w0.BeginBgp(nullptr);
  w1.BeginBgp(nullptr);
  // Round 1 phase A: both originate and ship through the sidecar.
  EXPECT_TRUE(w0.ComputeAndShip());
  EXPECT_TRUE(w1.ComputeAndShip());
  EXPECT_GT(fabric.bytes_sent_by(0), 0u);
  // Phase B: each drains and merges the remote exports.
  w0.Deliver();
  w1.Deliver();
  // Run to the fix point.
  for (int round = 0; round < 10; ++round) {
    bool any = w0.ComputeAndShip();
    any = w1.ComputeAndShip() || any;
    if (!any) break;
    w0.Deliver();
    w1.Deliver();
  }
  w0.RetainBgp();
  w1.RetainBgp();
  // Each node ends with all 4 prefixes (2 loopbacks + 2 /24s).
  EXPECT_EQ(w0.node(0).bgp_routes().size(), 4u);
  EXPECT_EQ(w1.node(1).bgp_routes().size(), 4u);
}

TEST(DistQueryTest, PathsStitchAcrossWorkers) {
  // Path-recording queries must produce the same concrete paths when the
  // path crosses worker boundaries (paths travel inside sidecar messages).
  topo::FatTreeParams params;
  params.k = 4;
  auto net = testing::Parse(topo::MakeFatTree(params));
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.1.0.0/24");
  query.sources = {net.graph.FindByName("edge-0-0")};
  query.destinations = {net.graph.FindByName("edge-1-0")};
  query.record_paths = true;

  core::MonoVerifier mono{core::MonoOptions{}};
  core::VerifyResult base = mono.Verify(net, {query});
  ASSERT_TRUE(base.ok());

  ControllerOptions options;
  options.num_workers = 4;
  options.scheme = topo::PartitionScheme::kRandom;  // cut many paths
  core::S2Verifier verifier(options);
  core::VerifyResult result = verifier.Verify(net, {query});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.queries[0].paths_recorded,
            base.queries[0].paths_recorded);
  EXPECT_EQ(result.queries[0].valleys.size(),
            base.queries[0].valleys.size());
  EXPECT_GT(result.queries[0].paths_recorded, 1u);
}

TEST(DistQueryTest, ConsecutiveQueriesDoNotLeakState) {
  topo::FatTreeParams params;
  params.k = 4;
  auto net = testing::Parse(topo::MakeFatTree(params));
  dp::Query q1 = AllPairQuery(net);
  dp::Query q2;  // narrow single-destination query
  q2.header_space.dst = util::MustParsePrefix("10.1.0.0/24");
  q2.sources = {net.graph.FindByName("edge-0-0")};
  q2.destinations = {net.graph.FindByName("edge-1-0")};

  ControllerOptions options;
  options.num_workers = 4;
  core::S2Verifier verifier(options);
  core::VerifyResult result = verifier.Verify(net, {q1, q2, q1});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.queries.size(), 3u);
  EXPECT_EQ(result.queries[0].reachable_pairs,
            result.queries[2].reachable_pairs);
  EXPECT_EQ(result.queries[1].reachable_pairs, 1u);
}

// ------------------------------------------------------ resource limits

TEST(DistResourceTest, PerWorkerBudgetOomIsAVerdict) {
  topo::FatTreeParams params;
  params.k = 4;
  auto net = testing::Parse(topo::MakeFatTree(params));
  ControllerOptions options;
  options.num_workers = 2;
  options.worker_memory_budget = 20'000;  // far too small
  core::S2Verifier verifier(options);
  core::VerifyResult result = verifier.Verify(net, {});
  EXPECT_EQ(result.status, core::RunStatus::kOutOfMemory);
  EXPECT_NE(result.failure_detail.find("worker-"), std::string::npos);
}

// The parallel data-plane paths surface the same resource verdicts as the
// sequential engine: per-lane node tables still honor max_bdd_nodes, lane
// and per-query-domain charges still land on the worker tracker.

TEST(DistResourceTest, ParallelLanesBddOverflowIsAVerdict) {
  topo::FatTreeParams params;
  params.k = 4;
  auto net = testing::Parse(topo::MakeFatTree(params));
  ControllerOptions options;
  options.num_workers = 2;
  options.dp_lanes = 3;
  options.max_bdd_nodes = 64;  // tiny per-lane node table
  core::S2Verifier verifier(options);
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  query.sources = {0};
  query.destinations = {net.graph.FindByName("edge-1-0")};
  core::VerifyResult result = verifier.Verify(net, {query});
  EXPECT_EQ(result.status, core::RunStatus::kOutOfMemory);
  EXPECT_NE(result.failure_detail.find("bdd-node-table"),
            std::string::npos);
}

TEST(DistResourceTest, ParallelLanesBudgetOomIsAVerdict) {
  topo::FatTreeParams params;
  params.k = 4;
  auto net = testing::Parse(topo::MakeFatTree(params));
  ControllerOptions options;
  options.num_workers = 2;
  options.dp_lanes = 2;
  options.worker_memory_budget = 20'000;  // far too small
  core::S2Verifier verifier(options);
  core::VerifyResult result = verifier.Verify(net, {});
  EXPECT_EQ(result.status, core::RunStatus::kOutOfMemory);
  EXPECT_NE(result.failure_detail.find("worker-"), std::string::npos);
}

TEST(DistResourceTest, QueryParallelDomainsRespectWorkerBudget) {
  topo::FatTreeParams params;
  params.k = 4;
  auto net = testing::Parse(topo::MakeFatTree(params));
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  query.sources = {net.graph.FindByName("edge-0-0")};
  query.destinations = {net.graph.FindByName("edge-1-0")};
  std::vector<dp::Query> queries = {query, query, query, query};

  // Measure the budget-free peak through the data-plane build, then rerun
  // with a budget just above it: the per-query rebuilt domains charge the
  // same worker trackers on top, so RunQueries must trip the budget.
  size_t build_peak = 0;
  {
    ControllerOptions options;
    options.num_workers = 2;
    Controller controller(net, options);
    controller.Setup();
    controller.RunControlPlane();
    controller.BuildDataPlanes();
    build_peak = controller.MaxWorkerPeakBytes();
  }
  ControllerOptions options;
  options.num_workers = 2;
  options.query_lanes = 4;
  options.worker_memory_budget = build_peak + 10'000;
  Controller controller(net, options);
  controller.Setup();
  controller.RunControlPlane();
  controller.BuildDataPlanes();
  EXPECT_THROW(controller.RunQueries(queries), util::SimulatedOom);
}

TEST(DistResourceTest, NonConvergenceIsTimeoutWithParallelLanes) {
  topo::Network net = testing::MakeChain(2);
  auto p = util::MustParsePrefix("203.0.113.0/24");
  net.intents[0].cond_advs.push_back(topo::CondAdvIntent{p, p, false});
  auto parsed = testing::Parse(net);
  ControllerOptions options;
  options.num_workers = 2;
  options.max_rounds = 20;
  options.dp_lanes = 2;
  core::S2Verifier verifier(options);
  core::VerifyResult result = verifier.Verify(parsed, {});
  EXPECT_EQ(result.status, core::RunStatus::kTimeout);
}

TEST(DistResourceTest, MoreWorkersLowerPerWorkerPeak) {
  topo::FatTreeParams params;
  params.k = 6;
  auto net = testing::Parse(topo::MakeFatTree(params));
  size_t peak1 = 0, peak4 = 0;
  for (uint32_t workers : {1u, 4u}) {
    ControllerOptions options;
    options.num_workers = workers;
    core::S2Verifier verifier(options);
    auto result = verifier.Verify(net, {});
    ASSERT_TRUE(result.ok());
    (workers == 1 ? peak1 : peak4) = result.peak_memory_bytes;
  }
  EXPECT_LT(peak4, peak1);
  EXPECT_GT(peak4, peak1 / 8);  // but not absurdly low either
}

TEST(DistResourceTest, ShardingLowersPerWorkerPeak) {
  topo::FatTreeParams params;
  params.k = 6;
  auto net = testing::Parse(topo::MakeFatTree(params));
  size_t unsharded = 0, sharded = 0;
  for (int shards : {0, 10}) {
    ControllerOptions options;
    options.num_workers = 2;
    options.num_shards = shards;
    core::S2Verifier verifier(options);
    auto result = verifier.Verify(net, {});
    ASSERT_TRUE(result.ok());
    (shards == 0 ? unsharded : sharded) = result.peak_memory_bytes;
  }
  EXPECT_LT(sharded, unsharded);
}

TEST(DistCommTest, CrossWorkerTrafficIsSerializedBytes) {
  topo::FatTreeParams params;
  params.k = 4;
  auto net = testing::Parse(topo::MakeFatTree(params));
  ControllerOptions one, four;
  one.num_workers = 1;
  four.num_workers = 4;
  core::S2Verifier v1(one), v4(four);
  auto r1 = v1.Verify(net, {AllPairQuery(net)});
  auto r4 = v4.Verify(net, {AllPairQuery(net)});
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r4.ok());
  // A single worker only talks to the controller (final gathering); four
  // workers also ship routes and packets sideways.
  EXPECT_GT(r4.comm_bytes, r1.comm_bytes);
  EXPECT_GT(r4.control_plane.comm_bytes, 0u);
  EXPECT_GT(r4.dp_forward.comm_bytes, 0u);
  EXPECT_EQ(r1.control_plane.comm_bytes, 0u);
}

TEST(DistMetricsTest, ModeledTimeAndRoundsPopulated) {
  topo::FatTreeParams params;
  params.k = 4;
  auto net = testing::Parse(topo::MakeFatTree(params));
  ControllerOptions options;
  options.num_workers = 4;
  options.num_shards = 3;
  core::S2Verifier verifier(options);
  auto result = verifier.Verify(net, {AllPairQuery(net)});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.control_plane.rounds, 0);
  EXPECT_GT(result.control_plane.modeled_seconds, 0.0);
  EXPECT_GT(result.dp_build.modeled_seconds, 0.0);
  EXPECT_GT(result.dp_forward.rounds, 0);
  EXPECT_GT(result.TotalWallSeconds(), 0.0);
  EXPECT_EQ(result.worker_peaks.size(), 4u);
}

}  // namespace
}  // namespace s2::dist
