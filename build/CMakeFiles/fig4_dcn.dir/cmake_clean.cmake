file(REMOVE_RECURSE
  "CMakeFiles/fig4_dcn.dir/bench/fig4_dcn.cc.o"
  "CMakeFiles/fig4_dcn.dir/bench/fig4_dcn.cc.o.d"
  "bench/fig4_dcn"
  "bench/fig4_dcn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_dcn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
