#include "fault/reliable.h"

#include <algorithm>
#include <utility>

namespace s2::fault {

namespace {

// Ack frames share the injector's per-frame randomness keyed by sequence
// number; offsetting their counter into the top half of the space keeps
// their rolls independent of the data frames on the reverse channel.
constexpr uint64_t kAckSeqBase = uint64_t{1} << 63;

}  // namespace

ReliableTransport::ReliableTransport(uint32_t num_workers,
                                     const FaultPlan& tuning,
                                     const FaultInjector* injector,
                                     bool keep_replay_log)
    : num_workers_(num_workers),
      initial_rto_(std::max(1, tuning.initial_rto_rounds)),
      max_rto_(std::max(initial_rto_, tuning.max_rto_rounds)),
      injector_(injector),
      keep_replay_log_(keep_replay_log),
      queues_(num_workers),
      channels_(static_cast<size_t>(num_workers) * num_workers),
      replay_logs_(num_workers),
      max_queue_depth_(num_workers, 0) {}

int ReliableTransport::RtoRounds(uint32_t attempts) const {
  int rto = initial_rto_;
  for (uint32_t i = 0; i < attempts && rto < max_rto_; ++i) rto *= 2;
  return std::min(rto, max_rto_);
}

void ReliableTransport::Enqueue(Frame frame) {
  const uint32_t to = frame.to;
  std::vector<Frame>& queue = queues_[to];
  queue.push_back(std::move(frame));
  max_queue_depth_[to] = std::max(max_queue_depth_[to], queue.size());
}

void ReliableTransport::Transmit(Frame frame, uint64_t fate_seq,
                                 uint32_t attempt, int round,
                                 size_t wire_bytes) {
  FrameFate fate;
  if (injector_ != nullptr) {
    fate = injector_->Classify(frame.from, frame.to, fate_seq, attempt);
  }
  if (fate.drop) {
    ++stats_.dropped;
    return;
  }
  stats_.wire_bytes += wire_bytes;
  if (fate.delay_rounds > 0) ++stats_.delayed;
  if (fate.reorder) ++stats_.reordered;
  frame.ready_round = round + fate.delay_rounds;
  frame.demoted = fate.reorder;
  if (fate.duplicate) {
    ++stats_.duplicated;
    Frame copy = frame;
    copy.ready_round = round + fate.duplicate_delay_rounds;
    Enqueue(copy);
  }
  Enqueue(frame);
}

void ReliableTransport::Ship(uint32_t from, uint32_t to,
                             dist::Message message) {
  Channel& channel = ChannelFor(from, to);
  uint64_t seq = ++channel.next_seq;
  ++stats_.data_frames;

  Pending pending;
  pending.wire_bytes = message.WireBytes();
  pending.message = std::move(message);  // custody until first delivery
  pending.attempts = 0;
  // Ship happens in phase A of the round that will drain at the current
  // round index; the first ack can arrive at the sender's next drain, so
  // the earliest meaningful retry is current + initial_rto (>= 2 avoids
  // spurious retransmits on the fault-free path).
  pending.next_retry_round = CurrentRound() + RtoRounds(0);
  size_t wire_bytes = pending.wire_bytes;
  channel.unacked.emplace(seq, std::move(pending));

  Frame frame;
  frame.kind = Frame::Kind::kData;
  frame.from = from;
  frame.to = to;
  frame.seq = seq;
  Transmit(frame, seq, /*attempt=*/0, CurrentRound(), wire_bytes);
}

void ReliableTransport::DeliverData(const Frame& frame, int round,
                                    std::vector<dist::Message>& out) {
  Channel& channel = ChannelFor(frame.from, frame.to);
  channel.ack_due = true;
  if (frame.seq <= channel.delivered_cum) {
    // Already delivered (injected duplicate, or retransmit of a frame
    // whose ack was lost). Suppress; the cumulative ack re-covers it.
    ++stats_.duplicates_suppressed;
    return;
  }
  if (frame.seq > channel.delivered_cum + 1) {
    // Gap: park for resequencing until the missing frames arrive. A second
    // arrival of a parked seq finds its custody payload already moved, so
    // check the park first.
    if (channel.resequence.count(frame.seq) != 0) {
      ++stats_.duplicates_suppressed;
      return;
    }
    channel.resequence.emplace(frame.seq,
                               std::move(channel.unacked.at(frame.seq).message));
    ++stats_.out_of_order;
    return;
  }
  // In-sequence: deliver (moving the payload out of custody), then flush
  // any now-contiguous parked frames.
  uint32_t receiver = frame.to;
  auto deliver = [&](dist::Message message) {
    if (keep_replay_log_) {
      replay_logs_[receiver].push_back(LoggedDelivery{round, message});
    }
    out.push_back(std::move(message));
    ++channel.delivered_cum;
  };
  deliver(std::move(channel.unacked.at(frame.seq).message));
  auto it = channel.resequence.begin();
  while (it != channel.resequence.end() &&
         it->first == channel.delivered_cum + 1) {
    deliver(std::move(it->second));
    it = channel.resequence.erase(it);
  }
}

std::vector<dist::Message> ReliableTransport::Drain(uint32_t worker) {
  const int round = CurrentRound();
  ++drains_;

  // Split the queue into frames matured this round (preserving arrival
  // order, reorder-demoted ones last) and frames still delayed. Fast path:
  // without delay/reorder faults (always at zero fault rate) the whole
  // queue matures in arrival order and no partition copies are needed.
  std::vector<Frame> matured;
  bool plain = true;
  for (const Frame& frame : queues_[worker]) {
    if (frame.ready_round > round || frame.demoted) {
      plain = false;
      break;
    }
  }
  if (plain) {
    matured = std::move(queues_[worker]);
    queues_[worker].clear();
  } else {
    std::vector<Frame> demoted;
    std::vector<Frame> rest;
    for (Frame& frame : queues_[worker]) {
      if (frame.ready_round > round) {
        rest.push_back(std::move(frame));
      } else if (frame.demoted) {
        demoted.push_back(std::move(frame));
      } else {
        matured.push_back(std::move(frame));
      }
    }
    queues_[worker] = std::move(rest);
    std::move(demoted.begin(), demoted.end(), std::back_inserter(matured));
  }

  std::vector<dist::Message> out;
  for (Frame& frame : matured) {
    if (frame.kind == Frame::Kind::kAck) {
      // frame.seq is the cumulative ack for the worker->frame.from channel.
      Channel& channel = ChannelFor(worker, frame.from);
      channel.unacked.erase(channel.unacked.begin(),
                            channel.unacked.upper_bound(frame.seq));
    } else {
      DeliverData(frame, round, out);
    }
  }

  // Retransmit expired frames on this worker's outbound channels, with
  // fresh per-attempt injector randomness and doubled (capped) timeout.
  for (uint32_t to = 0; to < num_workers_; ++to) {
    Channel& channel = ChannelFor(worker, to);
    for (auto& [seq, pending] : channel.unacked) {
      if (pending.next_retry_round > round) continue;
      ++pending.attempts;
      pending.next_retry_round = round + RtoRounds(pending.attempts);
      ++stats_.retransmits;
      Frame frame;
      frame.kind = Frame::Kind::kData;
      frame.from = worker;
      frame.to = to;
      frame.seq = seq;
      // Retransmits mature from the next round: the current round's drains
      // may already be past on other threads.
      Transmit(frame, seq, pending.attempts, round + 1, pending.wire_bytes);
    }
  }

  // Emit cumulative acks for every inbound channel with data activity this
  // drain. Acks are fire-and-forget: a lost ack is recovered by the data
  // retransmit, which re-triggers it.
  for (uint32_t from = 0; from < num_workers_; ++from) {
    Channel& channel = ChannelFor(from, worker);
    if (!channel.ack_due) continue;
    channel.ack_due = false;
    ++stats_.acks;
    Frame frame;
    frame.kind = Frame::Kind::kAck;
    frame.from = worker;
    frame.to = from;
    frame.seq = channel.delivered_cum;
    Transmit(frame, kAckSeqBase + channel.ack_counter++,
             /*attempt=*/0, round + 1, /*wire_bytes=*/0);
  }
  return out;
}

bool ReliableTransport::HasPending() const {
  // Quiescence means no *application* message is still undelivered. Settled
  // bookkeeping — queued ack frames, in-flight duplicates of frames the
  // receiver already delivered, and retransmit buffers fully covered by
  // delivered_cum — is flushed lazily by later drains and must not hold a
  // phase barrier open: it lags data by one round, so counting it would
  // cost every pass a trailing no-op round (bench/fault_overhead counts
  // those against the <10% zero-fault budget).
  for (const std::vector<Frame>& queue : queues_) {
    for (const Frame& frame : queue) {
      if (frame.kind != Frame::Kind::kData) continue;
      const Channel& channel =
          channels_[static_cast<size_t>(frame.from) * num_workers_ +
                    frame.to];
      if (frame.seq > channel.delivered_cum) return true;
    }
  }
  for (const Channel& channel : channels_) {
    // Highest unacked seq undelivered => data is still missing somewhere
    // (dropped, delayed, or parked for resequencing) and a retransmit may
    // be needed.
    if (!channel.unacked.empty() &&
        channel.unacked.rbegin()->first > channel.delivered_cum) {
      return true;
    }
  }
  return false;
}

}  // namespace s2::fault
