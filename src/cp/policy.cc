#include "cp/policy.h"

#include <algorithm>

namespace s2::cp {

namespace {

bool ClauseMatches(const config::RouteMapClause& clause, const Route& route) {
  if (clause.match_covered_by &&
      !clause.match_covered_by->Contains(route.prefix)) {
    return false;
  }
  if (!clause.match_any_community.empty()) {
    bool any = false;
    for (uint32_t community : clause.match_any_community) {
      if (route.HasCommunity(community)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

void ApplySets(const config::RouteMapClause& clause, PolicyResult& result,
               uint32_t own_asn) {
  Route& route = result.route;
  if (clause.set_local_pref) route.local_pref = *clause.set_local_pref;
  if (clause.set_med) route.med = *clause.set_med;
  for (uint32_t community : clause.add_communities) {
    route.AddCommunity(community);
  }
  for (uint32_t community : clause.delete_communities) {
    auto it = std::lower_bound(route.communities.begin(),
                               route.communities.end(), community);
    if (it != route.communities.end() && *it == community) {
      route.communities.erase(it);
    }
  }
  if (clause.as_path_prepend > 0) {
    route.as_path.insert(route.as_path.begin(), clause.as_path_prepend,
                         own_asn);
  }
  if (clause.set_as_path_overwrite) {
    route.as_path = {own_asn};
    result.as_path_overwritten = true;
  }
}

}  // namespace

PolicyResult ApplyRouteMap(const config::RouteMap* map, const Route& route,
                           uint32_t own_asn) {
  PolicyResult result;
  result.route = route;
  if (map == nullptr) {
    result.accepted = true;
    return result;
  }
  for (const config::RouteMapClause& clause : map->clauses) {
    if (!ClauseMatches(clause, result.route)) continue;
    if (!clause.permit) {
      result.accepted = false;
      return result;  // denied
    }
    ApplySets(clause, result, own_asn);
    if (!clause.continue_next) {
      result.accepted = true;
      return result;
    }
    // continue: keep the accumulated sets and fall through to later
    // clauses; if nothing further matches, the implicit deny applies —
    // except that a continue clause that matched counts as a permit when
    // followed only by non-matching clauses. Cisco semantics: the route is
    // permitted if the last matched clause was a permit. Track that.
    result.accepted = true;
  }
  return result;
}

void RemovePrivateAs(std::vector<uint32_t>& as_path, topo::Vendor vendor) {
  if (vendor == topo::Vendor::kAlpha) {
    // Alpha: strip every private ASN.
    as_path.erase(std::remove_if(as_path.begin(), as_path.end(),
                                 [](uint32_t asn) {
                                   return IsPrivateAsn(asn);
                                 }),
                  as_path.end());
  } else {
    // Beta: strip only the leading run of private ASNs (those preceding
    // the first public ASN in the path).
    size_t keep_from = 0;
    while (keep_from < as_path.size() && IsPrivateAsn(as_path[keep_from])) {
      ++keep_from;
    }
    as_path.erase(as_path.begin(),
                  as_path.begin() + static_cast<ptrdiff_t>(keep_from));
  }
}

}  // namespace s2::cp
