#include "topo/partition.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <unordered_map>

namespace s2::topo {

namespace {

// Greedy longest-processing-time assignment: heaviest item to the lightest
// bin. `loads` are item weights; returns item -> bin.
std::vector<uint32_t> GreedyBalance(const std::vector<double>& loads,
                                    uint32_t num_parts, util::Rng& rng) {
  std::vector<size_t> order(loads.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);  // break ties among equal loads randomly
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return loads[a] > loads[b];
  });
  std::vector<double> bin_load(num_parts, 0.0);
  std::vector<uint32_t> assignment(loads.size(), 0);
  for (size_t item : order) {
    uint32_t best = 0;
    for (uint32_t p = 1; p < num_parts; ++p) {
      if (bin_load[p] < bin_load[best]) best = p;
    }
    assignment[item] = best;
    bin_load[best] += loads[item];
  }
  return assignment;
}

// A weighted graph used during multilevel coarsening.
struct CoarseGraph {
  std::vector<double> load;                                // node loads
  std::vector<std::unordered_map<uint32_t, double>> adj;   // edge weights
  std::vector<std::vector<uint32_t>> members;  // original node ids

  size_t size() const { return load.size(); }
};

CoarseGraph FromGraph(const Graph& graph) {
  CoarseGraph cg;
  cg.load.resize(graph.size());
  cg.adj.resize(graph.size());
  cg.members.resize(graph.size());
  for (NodeId id = 0; id < graph.size(); ++id) {
    cg.load[id] = graph.node(id).load;
    cg.members[id] = {id};
  }
  for (size_t e = 0; e < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(e);
    cg.adj[edge.a][edge.b] += 1.0;
    cg.adj[edge.b][edge.a] += 1.0;
  }
  return cg;
}

// One round of heavy-edge matching; returns the coarser graph.
CoarseGraph Coarsen(const CoarseGraph& g, util::Rng& rng) {
  std::vector<uint32_t> match(g.size(), ~uint32_t{0});
  std::vector<uint32_t> visit(g.size());
  std::iota(visit.begin(), visit.end(), 0);
  rng.Shuffle(visit);
  for (uint32_t v : visit) {
    if (match[v] != ~uint32_t{0}) continue;
    uint32_t best = ~uint32_t{0};
    double best_weight = -1.0;
    for (const auto& [u, w] : g.adj[v]) {
      if (match[u] == ~uint32_t{0} && u != v && w > best_weight) {
        best = u;
        best_weight = w;
      }
    }
    if (best != ~uint32_t{0}) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;  // stays single
    }
  }
  // Build coarse node ids.
  std::vector<uint32_t> coarse_id(g.size(), ~uint32_t{0});
  CoarseGraph out;
  for (uint32_t v = 0; v < g.size(); ++v) {
    if (coarse_id[v] != ~uint32_t{0}) continue;
    uint32_t u = match[v];
    uint32_t id = static_cast<uint32_t>(out.size());
    coarse_id[v] = id;
    out.load.push_back(g.load[v]);
    out.members.push_back(g.members[v]);
    if (u != v) {
      coarse_id[u] = id;
      out.load.back() += g.load[u];
      out.members.back().insert(out.members.back().end(),
                                g.members[u].begin(), g.members[u].end());
    }
  }
  out.adj.resize(out.size());
  for (uint32_t v = 0; v < g.size(); ++v) {
    for (const auto& [u, w] : g.adj[v]) {
      uint32_t cv = coarse_id[v], cu = coarse_id[u];
      if (cv != cu) out.adj[cv][cu] += w;
    }
  }
  return out;
}

// Kernighan–Lin style refinement: move boundary nodes to reduce edge cut
// while keeping every part within `tolerance` of the ideal load. Balance
// stays the primary objective: a move that would push a part past the
// tolerance is rejected no matter how much cut it saves.
void Refine(const CoarseGraph& g, std::vector<uint32_t>& part,
            uint32_t num_parts, int passes) {
  double total_load = std::accumulate(g.load.begin(), g.load.end(), 0.0);
  double ideal = total_load / num_parts;
  const double tolerance = 1.05;
  std::vector<double> part_load(num_parts, 0.0);
  for (uint32_t v = 0; v < g.size(); ++v) part_load[part[v]] += g.load[v];

  for (int pass = 0; pass < passes; ++pass) {
    bool moved = false;
    for (uint32_t v = 0; v < g.size(); ++v) {
      // Connection weight of v to each part.
      std::unordered_map<uint32_t, double> weight_to;
      for (const auto& [u, w] : g.adj[v]) weight_to[part[u]] += w;
      uint32_t from = part[v];
      uint32_t best = from;
      double best_gain = 0.0;
      for (const auto& [p, w] : weight_to) {
        if (p == from) continue;
        if (part_load[p] + g.load[v] > ideal * tolerance) continue;
        double gain = w - weight_to[from];
        // Prefer moves that also improve balance when cut gain ties.
        if (gain > best_gain ||
            (gain == best_gain && gain > 0 &&
             part_load[p] < part_load[best])) {
          best = p;
          best_gain = gain;
        }
      }
      if (best != from) {
        part_load[from] -= g.load[v];
        part_load[best] += g.load[v];
        part[v] = best;
        moved = true;
      }
    }
    if (!moved) break;
  }
}

std::vector<uint32_t> MetisLike(const Graph& graph, uint32_t num_parts,
                                util::Rng& rng) {
  CoarseGraph level = FromGraph(graph);
  std::vector<CoarseGraph> levels;
  size_t floor_size = std::max<size_t>(4 * num_parts, 64);
  while (level.size() > floor_size) {
    CoarseGraph next = Coarsen(level, rng);
    if (next.size() >= level.size() * 95 / 100) break;  // no progress
    levels.push_back(std::move(level));
    level = std::move(next);
  }
  // Initial partition on the coarsest level: pure load balance.
  std::vector<uint32_t> part = GreedyBalance(level.load, num_parts, rng);
  Refine(level, part, num_parts, 4);
  // Project back up, refining at each level.
  while (!levels.empty()) {
    CoarseGraph finer = std::move(levels.back());
    levels.pop_back();
    // Coarse node i's members are original ids; map original -> coarse of
    // the finer level via membership (finer nodes' first member suffices:
    // every finer node's member set is a subset of exactly one coarse
    // node's).
    std::unordered_map<uint32_t, uint32_t> original_to_part;
    for (uint32_t c = 0; c < level.size(); ++c) {
      for (uint32_t orig : level.members[c]) original_to_part[orig] = part[c];
    }
    std::vector<uint32_t> finer_part(finer.size());
    for (uint32_t f = 0; f < finer.size(); ++f) {
      finer_part[f] = original_to_part.at(finer.members[f].front());
    }
    Refine(finer, finer_part, num_parts, 2);
    level = std::move(finer);
    part = std::move(finer_part);
  }
  // `level` is now the original graph's coarse representation (one node
  // per original node in `FromGraph` order).
  std::vector<uint32_t> assignment(graph.size());
  for (uint32_t c = 0; c < level.size(); ++c) {
    for (uint32_t orig : level.members[c]) assignment[orig] = part[c];
  }
  return assignment;
}

std::vector<uint32_t> Expert(const Graph& graph, uint32_t num_parts,
                             util::Rng& rng) {
  // Group pod members; greedily balance whole pods, then deal pod-less
  // nodes (FatTree cores, DCN cores/borders) individually.
  std::unordered_map<int, std::vector<NodeId>> pods;
  std::vector<NodeId> global;
  for (NodeId id = 0; id < graph.size(); ++id) {
    if (graph.node(id).pod >= 0) {
      pods[graph.node(id).pod].push_back(id);
    } else {
      global.push_back(id);
    }
  }
  std::vector<int> pod_keys;
  std::vector<double> pod_loads;
  for (auto& [key, members] : pods) {
    pod_keys.push_back(key);
    double load = 0;
    for (NodeId id : members) load += graph.node(id).load;
    pod_loads.push_back(load);
  }
  std::vector<uint32_t> pod_part = GreedyBalance(pod_loads, num_parts, rng);
  std::vector<uint32_t> assignment(graph.size(), 0);
  std::vector<double> part_load(num_parts, 0.0);
  for (size_t i = 0; i < pod_keys.size(); ++i) {
    for (NodeId id : pods[pod_keys[i]]) {
      assignment[id] = pod_part[i];
      part_load[pod_part[i]] += graph.node(id).load;
    }
  }
  std::stable_sort(global.begin(), global.end(), [&](NodeId a, NodeId b) {
    return graph.node(a).load > graph.node(b).load;
  });
  for (NodeId id : global) {
    uint32_t best = 0;
    for (uint32_t p = 1; p < num_parts; ++p) {
      if (part_load[p] < part_load[best]) best = p;
    }
    assignment[id] = best;
    part_load[best] += graph.node(id).load;
  }
  return assignment;
}

std::vector<uint32_t> Random(const Graph& graph, uint32_t num_parts,
                             util::Rng& rng) {
  std::vector<NodeId> order(graph.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  std::vector<uint32_t> assignment(graph.size());
  for (size_t i = 0; i < order.size(); ++i) {
    assignment[order[i]] = static_cast<uint32_t>(i % num_parts);
  }
  return assignment;
}

std::vector<uint32_t> Imbalanced(const Graph& graph, uint32_t num_parts) {
  std::vector<uint32_t> assignment(graph.size(), 0);
  size_t heavy = graph.size() * 3 / 4;
  for (NodeId id = 0; id < graph.size(); ++id) {
    if (id < heavy || num_parts == 1) {
      assignment[id] = 0;
    } else {
      assignment[id] = 1 + static_cast<uint32_t>((id - heavy) %
                                                 (num_parts - 1));
    }
  }
  return assignment;
}

std::vector<uint32_t> CommHeavy(const Graph& graph, uint32_t num_parts) {
  // Alternate layers across segment halves so nearly every link crosses a
  // worker boundary (the paper's communication-heaviest probe).
  if (num_parts == 1) return std::vector<uint32_t>(graph.size(), 0);
  uint32_t half = num_parts / 2;
  uint32_t lower_count = std::max<uint32_t>(half, 1);
  uint32_t upper_count = num_parts - lower_count;
  std::vector<uint32_t> assignment(graph.size());
  uint32_t even_rr = 0, odd_rr = 0;
  for (NodeId id = 0; id < graph.size(); ++id) {
    if (graph.node(id).layer % 2 == 0) {
      assignment[id] = even_rr++ % lower_count;
    } else {
      assignment[id] = lower_count + odd_rr++ % upper_count;
    }
  }
  return assignment;
}

}  // namespace

const char* PartitionSchemeName(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kMetisLike:
      return "metis";
    case PartitionScheme::kRandom:
      return "random";
    case PartitionScheme::kExpert:
      return "expert";
    case PartitionScheme::kImbalanced:
      return "imbalanced";
    case PartitionScheme::kCommHeavy:
      return "comm-heavy";
  }
  return "?";
}

double PartitionResult::LoadImbalance(const Graph& graph) const {
  std::vector<double> part_load(num_parts, 0.0);
  double total = 0;
  for (NodeId id = 0; id < graph.size(); ++id) {
    part_load[assignment[id]] += graph.node(id).load;
    total += graph.node(id).load;
  }
  double mean = total / num_parts;
  double max_load = *std::max_element(part_load.begin(), part_load.end());
  return mean > 0 ? max_load / mean : 1.0;
}

size_t PartitionResult::EdgeCut(const Graph& graph) const {
  size_t cut = 0;
  for (size_t e = 0; e < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(e);
    if (assignment[edge.a] != assignment[edge.b]) ++cut;
  }
  return cut;
}

PartitionResult Partition(const Graph& graph, uint32_t num_parts,
                          PartitionScheme scheme, uint64_t seed) {
  if (num_parts == 0) std::abort();
  util::Rng rng(seed);
  PartitionResult result;
  result.num_parts = num_parts;
  if (num_parts == 1) {
    result.assignment.assign(graph.size(), 0);
    return result;
  }
  switch (scheme) {
    case PartitionScheme::kMetisLike:
      result.assignment = MetisLike(graph, num_parts, rng);
      break;
    case PartitionScheme::kRandom:
      result.assignment = Random(graph, num_parts, rng);
      break;
    case PartitionScheme::kExpert:
      result.assignment = Expert(graph, num_parts, rng);
      break;
    case PartitionScheme::kImbalanced:
      result.assignment = Imbalanced(graph, num_parts);
      break;
    case PartitionScheme::kCommHeavy:
      result.assignment = CommHeavy(graph, num_parts);
      break;
  }
  return result;
}

}  // namespace s2::topo
