#include "dist/sidecar.h"

#include "obs/trace.h"

namespace s2::dist {

SidecarFabric::SidecarFabric(uint32_t num_workers,
                             std::vector<uint32_t> assignment)
    : num_workers_(num_workers),
      assignment_(std::move(assignment)),
      bytes_sent_(num_workers),
      messages_sent_(num_workers),
      max_queue_depth_(num_workers) {
  queues_.reserve(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    queues_.push_back(std::make_unique<QueueShard>());
  }
}

void SidecarFabric::EnableReliableDelivery(const fault::FaultPlan& tuning,
                                           const fault::FaultInjector* injector,
                                           bool keep_replay_log) {
  transport_ = std::make_unique<fault::ReliableTransport>(
      num_workers_, tuning, injector, keep_replay_log);
}

void SidecarFabric::Send(uint32_t from_worker, Message message) {
  uint32_t to_worker = WorkerOf(message.to_node);
  // Counters track application payloads (what the cost model bills); the
  // reliable envelope's retransmit/ack traffic shows in transport_stats().
  bytes_sent_[from_worker].fetch_add(message.WireBytes(),
                                     std::memory_order_relaxed);
  messages_sent_[from_worker].fetch_add(1, std::memory_order_relaxed);
  if (transport_ != nullptr) {
    std::lock_guard<std::mutex> lock(transport_mutex_);
    transport_->Ship(from_worker, to_worker, std::move(message));
    return;
  }
  QueueShard& shard = *queues_[to_worker];
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (send_hook_) send_hook_(to_worker);
  shard.queue.push_back(std::move(message));
  size_t depth = shard.queue.size();
  std::atomic<size_t>& high = max_queue_depth_[to_worker];
  size_t seen = high.load(std::memory_order_relaxed);
  while (depth > seen &&
         !high.compare_exchange_weak(seen, depth,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<Message> SidecarFabric::Drain(uint32_t worker) {
  obs::Span span("comms", "sidecar.drain");
  span.Arg("worker", static_cast<int64_t>(worker));
  span.Arg("reliable", transport_ != nullptr ? 1 : 0);
  if (transport_ != nullptr) {
    std::lock_guard<std::mutex> lock(transport_mutex_);
    std::vector<Message> out = transport_->Drain(worker);
    span.Arg("messages", static_cast<int64_t>(out.size()));
    return out;
  }
  QueueShard& shard = *queues_[worker];
  std::lock_guard<std::mutex> lock(shard.mutex);
  std::vector<Message> out = std::move(shard.queue);
  shard.queue.clear();
  span.Arg("messages", static_cast<int64_t>(out.size()));
  return out;
}

bool SidecarFabric::HasPending() const {
  if (transport_ != nullptr) {
    std::lock_guard<std::mutex> lock(transport_mutex_);
    return transport_->HasPending();
  }
  for (const auto& shard : queues_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    if (!shard->queue.empty()) return true;
  }
  return false;
}

size_t SidecarFabric::bytes_sent_by(uint32_t worker) const {
  return bytes_sent_[worker].load(std::memory_order_relaxed);
}

size_t SidecarFabric::messages_sent_by(uint32_t worker) const {
  return messages_sent_[worker].load(std::memory_order_relaxed);
}

size_t SidecarFabric::total_bytes() const {
  size_t total = 0;
  for (const std::atomic<size_t>& b : bytes_sent_) {
    total += b.load(std::memory_order_relaxed);
  }
  return total;
}

size_t SidecarFabric::max_queue_depth(uint32_t worker) const {
  if (transport_ != nullptr) {
    std::lock_guard<std::mutex> lock(transport_mutex_);
    return transport_->MaxQueueDepth(worker);
  }
  return max_queue_depth_[worker].load(std::memory_order_relaxed);
}

void SidecarFabric::ResetCounters() {
  for (uint32_t w = 0; w < num_workers_; ++w) {
    bytes_sent_[w].store(0, std::memory_order_relaxed);
    messages_sent_[w].store(0, std::memory_order_relaxed);
    max_queue_depth_[w].store(0, std::memory_order_relaxed);
  }
}

void SidecarFabric::MarkCheckpoint(uint32_t worker) {
  if (transport_ == nullptr) return;
  std::lock_guard<std::mutex> lock(transport_mutex_);
  transport_->MarkCheckpoint(worker);
}

std::vector<fault::LoggedDelivery> SidecarFabric::ReplayLog(
    uint32_t worker) const {
  if (transport_ == nullptr) return {};
  std::lock_guard<std::mutex> lock(transport_mutex_);
  return transport_->ReplayLog(worker);
}

int SidecarFabric::CurrentRound() const {
  if (transport_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(transport_mutex_);
  return transport_->CurrentRound();
}

fault::ReliableTransport::Stats SidecarFabric::transport_stats() const {
  if (transport_ == nullptr) return {};
  std::lock_guard<std::mutex> lock(transport_mutex_);
  return transport_->stats();
}

}  // namespace s2::dist
