// Route-map evaluation: the policy half of the switch model. Applies a
// vendor-independent RouteMap to a route, implementing first-match-wins
// with continue/next-term accumulation and the implicit trailing deny.
#pragma once

#include "config/vi_model.h"
#include "cp/route.h"

namespace s2::cp {

struct PolicyResult {
  bool accepted = false;
  // True when a matched clause applied set as-path overwrite; exporters
  // must then skip the usual AS prepend.
  bool as_path_overwritten = false;
  Route route;  // the transformed route when accepted
};

// Evaluates `map` against `route`. `own_asn` feeds set as-path overwrite.
// A null map accepts the route unchanged (no policy configured).
PolicyResult ApplyRouteMap(const config::RouteMap* map, const Route& route,
                           uint32_t own_asn);

// remove-private-as with vendor-specific semantics (§2.1):
//   Alpha strips every private ASN from the path;
//   Beta strips only the private ASNs preceding the first public one.
void RemovePrivateAs(std::vector<uint32_t>& as_path, topo::Vendor vendor);

}  // namespace s2::cp
