#include "svc/snapshot.h"

#include <utility>

#include "dist/controller.h"

namespace s2::svc {

size_t Snapshot::TotalBytes() const {
  size_t bytes = sizeof(Snapshot);
  bytes += worker_of.size() * sizeof(uint32_t);
  for (const auto& worker : predicates) {
    for (const auto& [id, blob] : worker) {
      bytes += sizeof(id) + blob.size();
    }
  }
  for (const auto& [id, edges] : fib_edges) {
    bytes += sizeof(id) + edges.size() * (sizeof(util::Ipv4Prefix) +
                                          sizeof(topo::NodeId));
  }
  return bytes;
}

Snapshot CaptureSnapshot(const dist::Controller& controller) {
  Snapshot snapshot;
  const dist::ControllerOptions& options = controller.options();
  snapshot.layout = options.layout;
  snapshot.max_hops = options.max_hops;
  snapshot.max_bdd_nodes = options.max_bdd_nodes;
  snapshot.num_workers = controller.num_workers();
  snapshot.worker_of = controller.partition().assignment;
  // A private copy: the controller may be mutated or destroyed while
  // queries are still being served against this epoch.
  snapshot.network =
      std::make_shared<const config::ParsedNetwork>(controller.network());
  snapshot.rib_spills = controller.rib_store();
  snapshot.predicates.resize(controller.num_workers());
  for (size_t w = 0; w < controller.num_workers(); ++w) {
    const dist::Worker& worker = controller.worker(w);
    if (!worker.has_data_plane()) continue;
    snapshot.predicates[w] = worker.SnapshotPredicates();
    for (const auto& [id, edges] : worker.fib_edges()) {
      snapshot.fib_edges[id] = edges;
    }
  }
  snapshot.total_best_routes = controller.TotalBestRoutes();
  return snapshot;
}

// ------------------------------------------------------------ SnapshotRef

SnapshotRef::SnapshotRef(const SnapshotRef& other)
    : registry_(other.registry_), snapshot_(other.snapshot_) {
  if (registry_ && snapshot_) registry_->Pin(snapshot_->epoch);
}

SnapshotRef::SnapshotRef(SnapshotRef&& other) noexcept
    : registry_(other.registry_), snapshot_(std::move(other.snapshot_)) {
  other.registry_ = nullptr;
  other.snapshot_.reset();
}

SnapshotRef& SnapshotRef::operator=(const SnapshotRef& other) {
  if (this == &other) return *this;
  Release();
  registry_ = other.registry_;
  snapshot_ = other.snapshot_;
  if (registry_ && snapshot_) registry_->Pin(snapshot_->epoch);
  return *this;
}

SnapshotRef& SnapshotRef::operator=(SnapshotRef&& other) noexcept {
  if (this == &other) return *this;
  Release();
  registry_ = other.registry_;
  snapshot_ = std::move(other.snapshot_);
  other.registry_ = nullptr;
  other.snapshot_.reset();
  return *this;
}

void SnapshotRef::Release() {
  if (registry_ && snapshot_) registry_->Unpin(snapshot_->epoch);
  registry_ = nullptr;
  snapshot_.reset();
}

// ------------------------------------------------------- SnapshotRegistry

uint64_t SnapshotRegistry::Publish(Snapshot snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t epoch = next_epoch_++;
  snapshot.epoch = epoch;
  entries_[epoch].snapshot =
      std::make_shared<const Snapshot>(std::move(snapshot));
  current_ = epoch;
  ++published_;
  ReclaimLocked();
  return epoch;
}

SnapshotRef SnapshotRegistry::Acquire() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (current_ == 0) return SnapshotRef();
  Entry& entry = entries_.at(current_);
  ++entry.pins;
  return SnapshotRef(this, entry.snapshot);
}

SnapshotRegistry::Stats SnapshotRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.current_epoch = current_;
  stats.published = published_;
  stats.reclaimed = reclaimed_;
  stats.live_epochs = entries_.size();
  for (const auto& [epoch, entry] : entries_) stats.pinned_refs += entry.pins;
  return stats;
}

void SnapshotRegistry::PublishMetrics(obs::Registry& registry) const {
  Stats s = stats();
  registry.SetCounter("svc.snapshots.current_epoch",
                      static_cast<int64_t>(s.current_epoch));
  registry.SetCounter("svc.snapshots.published",
                      static_cast<int64_t>(s.published));
  registry.SetCounter("svc.snapshots.reclaimed",
                      static_cast<int64_t>(s.reclaimed));
  registry.SetCounter("svc.snapshots.live_epochs",
                      static_cast<int64_t>(s.live_epochs));
  registry.SetCounter("svc.snapshots.pinned_refs",
                      static_cast<int64_t>(s.pinned_refs));
}

void SnapshotRegistry::Pin(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(epoch);
  // A copied ref can outlive its epoch's registry entry (the shared_ptr
  // keeps the snapshot itself alive); only count pins on live entries.
  if (it != entries_.end()) ++it->second.pins;
}

void SnapshotRegistry::Unpin(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(epoch);
  if (it == entries_.end()) return;
  if (it->second.pins > 0) --it->second.pins;
  ReclaimLocked();
}

void SnapshotRegistry::ReclaimLocked() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first != current_ && it->second.pins == 0) {
      it = entries_.erase(it);
      ++reclaimed_;
    } else {
      ++it;
    }
  }
}

}  // namespace s2::svc
