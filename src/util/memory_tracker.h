// Per-domain memory accounting.
//
// The paper's central claims are about *per-worker peak memory*: a worker
// holds only its own switches' routes, and prefix sharding bounds the peak
// further. We reproduce 100GB-scale behaviour on a laptop by accounting the
// bytes every module would hold (routes, adj-RIB-in entries, BDD nodes,
// FIB rules) into the tracker of the domain (worker or monolithic process)
// that owns them, instead of actually allocating them at full scale.
//
// A tracker may carry a budget; charging past the budget throws
// SimulatedOom, which verifier facades convert into an "OOM" verdict —
// the same observable the paper reports when Batfish runs out of memory.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

#include "util/status.h"

namespace s2::util {

class MemoryTracker {
 public:
  // `budget_bytes` of 0 means unlimited.
  explicit MemoryTracker(std::string domain, size_t budget_bytes = 0)
      : domain_(std::move(domain)), budget_(budget_bytes) {}

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  // Records an allocation of `bytes`. Throws SimulatedOom if the domain
  // would exceed its budget.
  void Charge(size_t bytes);

  // Records a release. Releasing more than is live clamps to zero (callers
  // charge estimates, so tiny asymmetries must not wedge the tracker) but
  // counts as an underflow — see underflow_count() — and asserts in debug
  // builds: it means some module's accounting is asymmetric.
  void Release(size_t bytes);

  // Drops all live bytes (e.g. a shard round finished and its routes were
  // spilled to disk). Peak is preserved.
  void ReleaseAll();

  size_t live_bytes() const { return live_.load(std::memory_order_relaxed); }
  size_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  size_t budget_bytes() const { return budget_; }
  // Times Release() was asked for more bytes than were live (always 0 in a
  // correctly accounted run).
  size_t underflow_count() const {
    return underflows_.load(std::memory_order_relaxed);
  }
  const std::string& domain() const { return domain_; }

  // Fraction of budget in use, 0 when unlimited. Drives the GC-pressure
  // term of the cost model (DESIGN.md §3).
  double pressure() const;

  void ResetPeak() { peak_.store(live_.load()); }

 private:
  std::string domain_;
  size_t budget_;
  std::atomic<size_t> live_{0};
  std::atomic<size_t> peak_{0};
  std::atomic<size_t> underflows_{0};
};

}  // namespace s2::util
