// Observability-layer tests: the Tracer/Span capture semantics, the
// Registry's value kinds and deterministic JSON, and the acceptance check
// for the whole subsystem — a fig6-style 2-worker sharded run whose Chrome
// trace must be schema-valid JSON with a span for every Controller phase,
// per-shard CP pass, and per-lane DP round, and whose RunReport must carry
// every RoundMetrics/transport counter.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <string>
#include <vector>

#include "config/parser.h"
#include "config/vendor.h"
#include "core/report.h"
#include "core/s2.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "topo/fattree.h"

namespace s2 {
namespace {

// Re-enables a pristine tracer state when a test exits early.
struct TracerGuard {
  ~TracerGuard() {
    obs::Tracer::Get().Disable();
    obs::Tracer::Get().Clear();
  }
};

// ----------------------------------------------------------- tracer unit

TEST(TracerTest, DisabledSpansRecordNothing) {
  TracerGuard guard;
  obs::Tracer::Get().Disable();
  obs::Tracer::Get().Clear();
  {
    obs::Span span("test", "test.noop");
    span.Arg("x", 1);
  }
  EXPECT_EQ(obs::Tracer::Get().event_count(), 0u);
}

TEST(TracerTest, EnabledSpansRecordCompleteEvents) {
  TracerGuard guard;
  obs::Tracer::Get().Enable();
  {
    obs::Span span("test", "test.outer");
    span.Arg("worker", 3);
    obs::Span inner("test", "test.inner");
  }
  obs::Tracer::Get().Disable();
  std::vector<obs::Tracer::Event> events = obs::Tracer::Get().events();
  ASSERT_EQ(events.size(), 2u);  // inner destructs (and records) first
  EXPECT_STREQ(events[0].name, "test.inner");
  EXPECT_STREQ(events[1].name, "test.outer");
  EXPECT_STREQ(events[1].category, "test");
  EXPECT_GE(events[1].dur_us, events[0].dur_us);  // outer encloses inner
  ASSERT_EQ(events[1].args.size(), 1u);
  EXPECT_STREQ(events[1].args[0].first, "worker");
  EXPECT_EQ(events[1].args[0].second, 3);
}

TEST(TracerTest, EnableResetsCaptureAndEpoch) {
  TracerGuard guard;
  obs::Tracer::Get().Enable();
  { obs::Span span("test", "test.first"); }
  ASSERT_EQ(obs::Tracer::Get().event_count(), 1u);
  obs::Tracer::Get().Enable();  // restart
  EXPECT_EQ(obs::Tracer::Get().event_count(), 0u);
  { obs::Span span("test", "test.second"); }
  std::vector<obs::Tracer::Event> events = obs::Tracer::Get().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.second");
  EXPECT_GE(events[0].ts_us, 0.0);  // fresh epoch
}

TEST(TracerTest, SummaryAggregatesPerName) {
  TracerGuard guard;
  obs::Tracer::Get().Enable();
  for (int i = 0; i < 3; ++i) {
    obs::Span span("test", "test.repeat");
  }
  obs::Tracer::Get().Disable();
  std::string summary = obs::Tracer::Get().Summary();
  EXPECT_NE(summary.find("test.repeat"), std::string::npos);
  EXPECT_NE(summary.find("3"), std::string::npos);  // the count column
}

// --------------------------------------------------------- registry unit

TEST(RegistryTest, CountersGaugesAndLabels) {
  obs::Registry registry;
  registry.SetCounter("a.count", 7);
  registry.AddCounter("a.count", 5);
  registry.AddCounter("b.fresh", 2);  // Add on absent key creates it
  registry.SetGauge("a.seconds", 1.5);
  registry.SetLabel("run.status", "ok");
  EXPECT_EQ(registry.counter("a.count"), 12);
  EXPECT_EQ(registry.counter("b.fresh"), 2);
  EXPECT_DOUBLE_EQ(registry.gauge("a.seconds"), 1.5);
  EXPECT_EQ(registry.label("run.status"), "ok");
  EXPECT_TRUE(registry.Has("a.count"));
  EXPECT_FALSE(registry.Has("missing"));
  EXPECT_EQ(registry.counter("missing"), 0);
  EXPECT_EQ(registry.size(), 4u);
  registry.Clear();
  EXPECT_EQ(registry.size(), 0u);
}

TEST(RegistryTest, ToJsonIsDeterministicAndSorted) {
  auto build = [] {
    obs::Registry registry;
    registry.SetCounter("z.last", 1);
    registry.SetCounter("a.first", 2);
    registry.SetGauge("m.middle", 0.25);
    registry.SetLabel("schema", "test.v1");
    return registry.ToJson();
  };
  std::string json = build();
  EXPECT_EQ(json, build());  // byte-identical run to run
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"labels\""), std::string::npos);
}

TEST(RegistryTest, PublishEngineStatsCoversEveryField) {
  cp::EngineStats stats;
  stats.ospf_rounds = 2;
  stats.bgp_rounds = 9;
  stats.shards_executed = 4;
  stats.compute_seconds = 0.5;
  stats.modeled_seconds = 1.5;
  stats.total_best_routes = 123;
  obs::Registry registry;
  core::PublishEngineStats(stats, registry);
  EXPECT_EQ(registry.counter("engine.ospf_rounds"), 2);
  EXPECT_EQ(registry.counter("engine.bgp_rounds"), 9);
  EXPECT_EQ(registry.counter("engine.shards_executed"), 4);
  EXPECT_DOUBLE_EQ(registry.gauge("engine.compute_seconds"), 0.5);
  EXPECT_DOUBLE_EQ(registry.gauge("engine.modeled_seconds"), 1.5);
  EXPECT_EQ(registry.counter("engine.total_best_routes"), 123);
}

// --------------------------------------------------- minimal JSON parser
//
// Just enough of RFC 8259 to schema-check the trace and report exports
// without pulling in a dependency. Strict where it matters: balanced
// structure, quoted keys, no trailing commas.

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool Is(Kind k) const { return kind == k; }
  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue& out) {
    bool ok = Value(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool String(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': case 'f': out.push_back('?'); break;
          case 'u':
            if (pos_ + 4 > text_.size()) return false;
            pos_ += 4;
            out.push_back('?');
            break;
          default: return false;
        }
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number(double& out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    try {
      out = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    return true;
  }

  bool Value(JsonValue& out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind = JsonValue::kObject;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') { ++pos_; return true; }
      for (;;) {
        SkipSpace();
        std::string key;
        if (!String(key)) return false;
        SkipSpace();
        if (pos_ >= text_.size() || text_[pos_++] != ':') return false;
        JsonValue value;
        if (!Value(value)) return false;
        out.object.emplace(std::move(key), std::move(value));
        SkipSpace();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') { ++pos_; continue; }
        if (text_[pos_] == '}') { ++pos_; return true; }
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out.kind = JsonValue::kArray;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') { ++pos_; return true; }
      for (;;) {
        JsonValue value;
        if (!Value(value)) return false;
        out.array.push_back(std::move(value));
        SkipSpace();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') { ++pos_; continue; }
        if (text_[pos_] == ']') { ++pos_; return true; }
        return false;
      }
    }
    if (c == '"') {
      out.kind = JsonValue::kString;
      return String(out.str);
    }
    if (c == 't') { out.kind = JsonValue::kBool; out.boolean = true;
                    return Literal("true"); }
    if (c == 'f') { out.kind = JsonValue::kBool; out.boolean = false;
                    return Literal("false"); }
    if (c == 'n') { out.kind = JsonValue::kNull; return Literal("null"); }
    out.kind = JsonValue::kNumber;
    return Number(out.number);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ------------------------------------------------- end-to-end acceptance

// A fig6-style run: FatTree k=4 configs parsed from text, 2 workers,
// prefix sharding on, 2 DP lanes, one reachability query — the setup that
// exercises every instrumented phase.
core::VerifyResult TracedFig6Run(core::S2Verifier& verifier) {
  topo::FatTreeParams params;
  params.k = 4;
  topo::Network net = topo::MakeFatTree(params);
  std::vector<std::string> texts = config::SynthesizeConfigs(net);
  auto parsed = config::ParseNetwork(texts);
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  query.sources = {parsed.graph.FindByName("edge-0-0")};
  query.destinations = {parsed.graph.FindByName("edge-1-0")};
  return verifier.Verify(texts, {query});
}

dist::ControllerOptions Fig6Options() {
  dist::ControllerOptions options;
  options.num_workers = 2;
  options.num_shards = 4;
  options.dp_lanes = 2;
  return options;
}

TEST(ObsAcceptanceTest, Fig6TraceIsValidChromeJsonWithAllPhaseSpans) {
  TracerGuard guard;
  obs::Tracer::Get().Enable();
  core::S2Verifier verifier(Fig6Options());
  core::VerifyResult result = TracedFig6Run(verifier);
  obs::Tracer::Get().Disable();
  ASSERT_TRUE(result.ok()) << result.failure_detail;

  std::string json = obs::Tracer::Get().ToChromeJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(root)) << "trace is not valid JSON";
  ASSERT_TRUE(root.Is(JsonValue::kObject));
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->Is(JsonValue::kArray));
  ASSERT_FALSE(events->array.empty());

  std::map<std::string, int> by_name;
  for (const JsonValue& event : events->array) {
    ASSERT_TRUE(event.Is(JsonValue::kObject));
    const JsonValue* name = event.Find("name");
    const JsonValue* cat = event.Find("cat");
    const JsonValue* ph = event.Find("ph");
    const JsonValue* ts = event.Find("ts");
    const JsonValue* dur = event.Find("dur");
    const JsonValue* pid = event.Find("pid");
    const JsonValue* tid = event.Find("tid");
    ASSERT_NE(name, nullptr);
    ASSERT_TRUE(name->Is(JsonValue::kString));
    ASSERT_NE(cat, nullptr);
    ASSERT_TRUE(cat->Is(JsonValue::kString));
    ASSERT_NE(ph, nullptr);
    ASSERT_EQ(ph->str, "X");  // complete events only
    ASSERT_NE(ts, nullptr);
    ASSERT_TRUE(ts->Is(JsonValue::kNumber));
    EXPECT_GE(ts->number, 0.0);
    ASSERT_NE(dur, nullptr);
    ASSERT_TRUE(dur->Is(JsonValue::kNumber));
    EXPECT_GE(dur->number, 0.0);
    ASSERT_NE(pid, nullptr);
    ASSERT_TRUE(pid->Is(JsonValue::kNumber));
    ASSERT_NE(tid, nullptr);
    ASSERT_TRUE(tid->Is(JsonValue::kNumber));
    const JsonValue* args = event.Find("args");
    if (args != nullptr) {
      ASSERT_TRUE(args->Is(JsonValue::kObject));
    }
    ++by_name[name->str];
  }

  // Every Controller phase, the parse phase (text overload), per-shard CP
  // passes, per-round CP barriers, per-lane DP rounds, and sidecar drains.
  for (const char* required :
       {"controller.parse", "controller.partition",
        "controller.control_plane", "controller.dp_build",
        "controller.query", "cp.shard", "cp.round", "dp.worker_build",
        "dp.round", "dp.lane.round", "sidecar.drain"}) {
    EXPECT_GT(by_name[required], 0) << "missing span " << required;
  }
  // One cp.shard span per shard in the plan.
  EXPECT_EQ(by_name["cp.shard"], 4);
  // cp.shard spans carry their shard index as an arg.
  for (const JsonValue& event : events->array) {
    if (event.Find("name")->str != "cp.shard") continue;
    const JsonValue* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    ASSERT_NE(args->Find("shard"), nullptr);
  }
}

TEST(ObsAcceptanceTest, RunReportCoversAllMetricCounters) {
  core::S2Verifier verifier(Fig6Options());
  core::VerifyResult result = TracedFig6Run(verifier);
  ASSERT_TRUE(result.ok()) << result.failure_detail;

  std::string json = verifier.RunReportJson(result);
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(root)) << "report is not valid JSON";
  const JsonValue* counters = root.Find("counters");
  const JsonValue* gauges = root.Find("gauges");
  const JsonValue* labels = root.Find("labels");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(labels, nullptr);

  // Every RoundMetrics field, for every phase.
  for (const char* phase : {"cp", "dp_build", "dp_forward"}) {
    for (const char* field :
         {".rounds", ".comm_bytes", ".comm_messages", ".bdd_cache_hits",
          ".bdd_cache_misses", ".bdd_cache_evictions"}) {
      EXPECT_NE(counters->Find(std::string(phase) + field), nullptr)
          << phase << field;
    }
    for (const char* field : {".wall_seconds", ".modeled_seconds"}) {
      EXPECT_NE(gauges->Find(std::string(phase) + field), nullptr)
          << phase << field;
    }
  }
  // Memory, routes, comm, transport, fabric, per-shard CP metrics.
  for (const char* key :
       {"mem.max_worker_peak_bytes", "mem.worker_peak_bytes.w0",
        "mem.worker_peak_bytes.w1", "routes.total_best", "comm.total_bytes",
        "dp.forwarding_steps", "transport.retransmits",
        "transport.frames_dropped", "transport.duplicates_suppressed",
        "controller.worker_recoveries", "queries.count",
        "controller.num_workers", "fabric.total_bytes",
        "fabric.bytes_sent.w0", "fabric.max_queue_depth.w0",
        "cp.shards_run", "cp.shard.0.rounds", "cp.shard.3.rounds"}) {
    EXPECT_NE(counters->Find(key), nullptr) << key;
  }
  for (const char* key : {"parse.seconds", "partition.seconds"}) {
    EXPECT_NE(gauges->Find(key), nullptr) << key;
  }
  const JsonValue* schema = labels->Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->str, "s2.run_report.v1");
  const JsonValue* status = labels->Find("run.status");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->str, "ok");

  // Counter values agree with the result they were published from.
  EXPECT_EQ(static_cast<int64_t>(counters->Find("routes.total_best")->number),
            static_cast<int64_t>(result.total_best_routes));
  EXPECT_EQ(static_cast<int64_t>(counters->Find("cp.rounds")->number),
            result.control_plane.rounds);
}

}  // namespace
}  // namespace s2
