// AttrPool / AttrHandle tests: the flyweight must be behaviorally
// invisible (interned routes decide and serialize exactly like routes
// whose handles share nothing), the refcount/eviction bookkeeping must
// balance, handles must be safe to outlive their pool, and concurrent
// intern/copy/release must be race-free (run under -DS2_SANITIZE=thread
// via the chaos label).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cp/attr.h"
#include "cp/route.h"
#include "util/memory_tracker.h"
#include "util/rng.h"

namespace s2::cp {
namespace {

AttrTuple RandomTuple(util::Rng& rng) {
  AttrTuple tuple;
  // Small value ranges on purpose: collisions are the interesting case.
  tuple.local_pref = 100 + 10 * static_cast<uint32_t>(rng.Below(3));
  tuple.med = static_cast<uint32_t>(rng.Below(3));
  tuple.origin = static_cast<uint8_t>(rng.Below(3));
  size_t hops = rng.Below(4);
  for (size_t i = 0; i < hops; ++i) {
    tuple.as_path.push_back(65001 + static_cast<uint32_t>(rng.Below(4)));
  }
  size_t tags = rng.Below(3);
  for (size_t i = 0; i < tags; ++i) {
    tuple.AddCommunity(900 + static_cast<uint32_t>(rng.Below(4)));
  }
  return tuple;
}

Route RandomRoute(util::Rng& rng, AttrPool& pool) {
  Route r;
  r.prefix = util::Ipv4Prefix(
      util::Ipv4Address((10u << 24) | static_cast<uint32_t>(rng.Below(16))
                                          << 8),
      24);
  r.protocol = rng.Below(8) == 0 ? Protocol::kOspf : Protocol::kBgp;
  r.metric = static_cast<uint32_t>(rng.Below(3));
  r.origin_node = static_cast<topo::NodeId>(rng.Below(6));
  r.learned_from = static_cast<topo::NodeId>(rng.Below(6));
  r.attrs = pool.Intern(RandomTuple(rng));
  return r;
}

// ------------------------------------------------------------ invisibility
//
// The decision process and the wire bytes must not care whether two
// routes share a pool entry. Re-interning the same values into a second
// pool defeats every SameEntry fast path, so comparing the shared-pool
// answers against the split-pool answers proves the fast paths change
// nothing — on 10k random pairs drawn from a deliberately collision-heavy
// value space.
TEST(AttrInvisibilityTest, SharedAndSplitPoolRoutesDecideIdentically) {
  util::Rng rng(0x5EED);
  AttrPool shared;
  for (int i = 0; i < 10000; ++i) {
    Route a = RandomRoute(rng, shared);
    Route b = RandomRoute(rng, shared);
    b.prefix = a.prefix;  // decisions only make sense per prefix

    // The same routes with attrs re-interned into private pools: equal
    // values, never the same entry.
    AttrPool pool_a, pool_b;
    Route plain_a = a, plain_b = b;
    plain_a.attrs = pool_a.Intern(a.attrs.get());
    plain_b.attrs = pool_b.Intern(b.attrs.get());
    ASSERT_TRUE(plain_a.attrs.null() ||
                !plain_a.attrs.SameEntry(plain_b.attrs));

    EXPECT_EQ(BetterRoute(a, b), BetterRoute(plain_a, plain_b)) << "pair " << i;
    EXPECT_EQ(BetterRoute(b, a), BetterRoute(plain_b, plain_a)) << "pair " << i;
    EXPECT_EQ(EcmpEquivalent(a, b), EcmpEquivalent(plain_a, plain_b))
        << "pair " << i;
    EXPECT_EQ(a == b, plain_a == plain_b) << "pair " << i;
    // Exactly one of better(a,b) / better(b,a) / equal-decision holds —
    // the order stays strict-weak under sharing.
    EXPECT_FALSE(BetterRoute(a, b) && BetterRoute(b, a)) << "pair " << i;

    // Wire bytes are a pure function of route values, not of sharing.
    std::vector<RouteUpdate> batch{{a.prefix, false, a}, {b.prefix, false, b}};
    std::vector<RouteUpdate> plain_batch{{plain_a.prefix, false, plain_a},
                                         {plain_b.prefix, false, plain_b}};
    std::vector<uint8_t> bytes, plain_bytes;
    SerializeRoutes(batch, bytes);
    SerializeRoutes(plain_batch, plain_bytes);
    EXPECT_EQ(bytes, plain_bytes) << "pair " << i;
  }
}

TEST(AttrInvisibilityTest, WireRoundTripPreservesValues) {
  util::Rng rng(0xCAFE);
  AttrPool sender;
  std::vector<RouteUpdate> batch;
  for (int i = 0; i < 1000; ++i) {
    Route r = RandomRoute(rng, sender);
    batch.push_back(RouteUpdate{r.prefix, false, r});
  }
  std::vector<uint8_t> bytes;
  SerializeRoutes(batch, bytes);
  AttrPool receiver;
  auto decoded = DeserializeRoutes(bytes, receiver);
  ASSERT_EQ(decoded.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(decoded[i].prefix, batch[i].prefix);
    EXPECT_EQ(decoded[i].route, batch[i].route) << "route " << i;
  }
  // The receiver interned at most as many entries as the sender holds
  // live — the table dedup carries across the boundary.
  EXPECT_LE(receiver.live_entries(), sender.live_entries());
}

// --------------------------------------------------------------- refcounts
TEST(AttrPoolTest, RefcountDrivesEvictionExactly) {
  util::MemoryTracker tracker("attr");
  AttrPool pool(&tracker);
  AttrTuple tuple;
  tuple.as_path = {65001, 65002};
  const size_t bytes = tuple.SharedBytes();

  AttrHandle h1 = pool.Intern(tuple);
  ASSERT_FALSE(h1.null());
  EXPECT_EQ(pool.live_entries(), 1u);
  EXPECT_EQ(tracker.live_bytes(), bytes);

  // Copies and re-interns share the entry; nothing new is charged.
  AttrHandle h2 = h1;
  AttrHandle h3 = pool.Intern(tuple);
  EXPECT_TRUE(h2.SameEntry(h1));
  EXPECT_TRUE(h3.SameEntry(h1));
  EXPECT_EQ(pool.live_entries(), 1u);
  EXPECT_EQ(tracker.live_bytes(), bytes);

  // Dropping all but the last changes nothing; the last drop evicts.
  h1.Reset();
  h2.Reset();
  EXPECT_EQ(pool.live_entries(), 1u);
  h3.Reset();
  EXPECT_EQ(pool.live_entries(), 0u);
  EXPECT_EQ(tracker.live_bytes(), 0u);
  EXPECT_EQ(pool.stats().evictions, 1u);

  // Re-interning after eviction recreates (and recharges) the entry.
  AttrHandle h4 = pool.Intern(tuple);
  EXPECT_EQ(pool.live_entries(), 1u);
  EXPECT_EQ(tracker.live_bytes(), bytes);
  auto stats = pool.stats();
  EXPECT_EQ(stats.misses, 2u);  // initial intern + post-eviction intern
  EXPECT_EQ(stats.hits, 1u);    // h3
}

TEST(AttrPoolTest, DefaultTupleInternsToNullAndCostsNothing) {
  util::MemoryTracker tracker("attr");
  AttrPool pool(&tracker);
  AttrHandle h = pool.Intern(AttrTuple{});
  EXPECT_TRUE(h.null());
  EXPECT_EQ(pool.live_entries(), 0u);
  EXPECT_EQ(tracker.live_bytes(), 0u);
  // Null still dereferences to the default values and compares equal to a
  // value-equal entry from any pool.
  EXPECT_EQ(h->local_pref, 100u);
  AttrPool other;
  AttrTuple nearly;
  nearly.local_pref = 100;
  AttrHandle other_h = other.Intern(nearly);
  EXPECT_TRUE(other_h.null());  // normalized there too
  EXPECT_TRUE(h == other_h);
}

TEST(AttrPoolTest, HandlesMayOutliveThePool) {
  // Engine results are copied into plain containers that outlive the
  // verifier (differential baselines, chaos outcomes); the orphaned
  // entries must stay readable and free cleanly with the last handle.
  util::MemoryTracker tracker("attr");
  std::vector<Route> survivors;
  {
    AttrPool pool(&tracker);
    util::Rng rng(7);
    for (int i = 0; i < 64; ++i) survivors.push_back(RandomRoute(rng, pool));
  }
  // The pool released its shared bytes when it died.
  EXPECT_EQ(tracker.live_bytes(), 0u);
  for (const Route& r : survivors) {
    EXPECT_GE(r.local_pref(), 100u);
    EXPECT_EQ(r.attrs.pool(), nullptr);
  }
  Route copy = survivors.front();  // refcounting still works orphaned
  survivors.clear();
  EXPECT_GE(copy.as_path().size(), 0u);
}

// ------------------------------------------------------------- concurrency
//
// Hammers one pool from many threads with interleaved intern / copy /
// release on a tiny value space, so the same entries cycle through the
// 1 -> 0 -> resurrect transition constantly. Run under TSan via the chaos
// label; single-threaded builds still check the final bookkeeping.
TEST(AttrChaosTest, ConcurrentInternCopyRelease) {
  util::MemoryTracker tracker("attr");
  AttrPool pool(&tracker);
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::atomic<uint64_t> checksum{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(0x1000u + static_cast<uint64_t>(t));
      std::vector<AttrHandle> held;
      for (int i = 0; i < kIters; ++i) {
        switch (rng.Below(4)) {
          case 0:
          case 1:
            held.push_back(pool.Intern(RandomTuple(rng)));
            break;
          case 2:
            if (!held.empty()) held.push_back(held[rng.Below(held.size())]);
            break;
          default:
            if (!held.empty()) {
              size_t victim = rng.Below(held.size());
              held[victim] = std::move(held.back());
              held.pop_back();
            }
        }
        if (!held.empty()) {
          // Read through a handle while others churn the pool.
          const AttrHandle& h = held[rng.Below(held.size())];
          checksum.fetch_add(h->local_pref + h->as_path.size(),
                             std::memory_order_relaxed);
        }
        if (held.size() > 256) held.resize(128);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_GT(checksum.load(), 0u);
  // All handles dropped: the pool must be empty and the tracker balanced.
  EXPECT_EQ(pool.live_entries(), 0u);
  EXPECT_EQ(tracker.live_bytes(), 0u);
  EXPECT_EQ(tracker.underflow_count(), 0u);
  auto stats = pool.stats();
  EXPECT_EQ(stats.evictions, stats.misses);  // every entry created died
}

}  // namespace
}  // namespace s2::cp
