// Symbolic packet forwarding (paper §4.3).
//
// One ForwardingEngine runs per BDD domain: the monolithic verifier has a
// single engine over all nodes; S2 gives each worker its own engine (and
// manager), and packets crossing workers are emitted through a callback,
// serialized, and re-encoded on the receiving side (§4.3, option 2).
//
// A packet is processed at a node as (Eq. 1):
//   pkt & acl_in(ingress port), then per egress port
//   pkt & fwd(port) & acl_out(port)
// with final states Arrive / Exit / Blackhole (ACL drop, Null0, no route) /
// Loop (hop budget exhausted). ECMP replicates the matching part to every
// next hop — the exhaustive all-path exploration of Fig. 11.
//
// Packet coalescing: the Eq. 1 transformation distributes over set union,
// so packets meeting at the same node with the same source and hop count
// are merged exactly (keeping the ingress port distinct only when the
// node has an ingress ACL on it). The queue is processed in ascending hop
// levels so copies fanning out over ECMP re-merge instead of exploding
// exponentially with the path count — all paths are still explored; their
// effects are shared.
#pragma once

#include <climits>
#include <functional>
#include <map>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "dp/predicates.h"

namespace s2::dp {

enum class FinalState : uint8_t { kArrive, kExit, kBlackhole, kLoop };

const char* FinalStateName(FinalState state);

struct InFlightPacket {
  topo::NodeId at = topo::kInvalidNode;    // current node
  topo::NodeId from = topo::kInvalidNode;  // ingress neighbor
  topo::NodeId src = topo::kInvalidNode;   // injection source
  int hops = 0;
  bdd::Bdd set;
  // Nodes traversed so far; maintained only in path-recording mode
  // (Fig 11: enumerate concrete forwarding paths to spot path-specific
  // anomalies such as forwarding valleys).
  std::vector<topo::NodeId> path;
};

struct FinalPacket {
  topo::NodeId src;   // injection source
  topo::NodeId node;  // where the final state was reached
  FinalState state;
  bdd::Bdd set;
  std::vector<topo::NodeId> path;  // path-recording mode only
};

class ForwardingEngine {
 public:
  struct Options {
    // TTL stand-in: a packet still in flight after this many hops is
    // declared to loop.
    int max_hops = 24;
  };

  ForwardingEngine(PacketCodec codec, Options options)
      : codec_(codec), options_(options) {}

  // Registers a node owned by this domain.
  void AddNode(topo::NodeId id, NodePredicates preds);
  bool Owns(topo::NodeId id) const { return nodes_.count(id) != 0; }

  // The registered predicates of a local node (fault checkpoints hash and
  // serialize these; bdd_io's canonical encoding makes the bytes a stable
  // fingerprint of the FIB semantics).
  const NodePredicates& node_predicates(topo::NodeId id) const {
    return nodes_.at(id);
  }

  // Installs the waypoint write rule: packets traversing `node` get
  // metadata bit `meta_bit` set (§4.4).
  void SetWaypointBit(topo::NodeId node, uint32_t meta_bit);

  // Injects a fresh symbolic packet at a local node.
  void Inject(topo::NodeId at, const bdd::Bdd& set);

  // Enqueues a packet arriving from another domain.
  void Accept(InFlightPacket packet);

  // Processes the queue to quiescence. Packets whose next hop is not local
  // go through `emit` (must be non-null if any neighbor is remote).
  using RemoteEmit = std::function<void(const InFlightPacket&)>;
  void Run(const RemoteEmit& emit);

  // Level-stepped interface used by the parallel data plane: the lowest
  // hop level with pending packets (kIdle if the queue is empty), and a
  // drain of exactly that level. Forwarding only moves packets to higher
  // levels, so draining level h enqueues only at h+1 and the exact-merge
  // invariant (all copies at a level merge before the level is processed)
  // holds as long as callers drain levels in ascending order — which is
  // what lets multiple lanes run DrainLevel in lockstep and exchange
  // cross-lane packets between levels. Run() is the sequential special
  // case.
  static constexpr int kIdle = INT_MAX;
  int NextLevel() const;
  void DrainLevel(int level, const RemoteEmit& emit);

  const std::vector<FinalPacket>& finals() const { return finals_; }
  const PacketCodec& codec() const { return codec_; }

  // Clears per-query state (queue, finals, waypoint rules, step counter)
  // while keeping the registered node predicates, so consecutive queries
  // reuse the precomputed predicates as real verifiers do.
  void ResetQueryState();

  // Path-recording mode: every packet carries its node path and finals
  // report it. Coalescing is disabled (copies with different histories
  // must stay distinct), so this costs the full path-enumeration blowup —
  // meant for targeted diagnostic queries, not all-pair sweeps.
  void set_record_paths(bool record) { record_paths_ = record; }
  bool record_paths() const { return record_paths_; }

  // Union of packet sets that arrived at `node` (Zero if none).
  bdd::Bdd ArrivedAt(topo::NodeId node) const;

  size_t steps() const { return steps_; }

 private:
  // Coalescing key: (node, effective ingress, injection source). The
  // effective ingress is kInvalidNode unless the node applies an ingress
  // ACL on that port (the only way `from` can influence processing).
  using QueueKey = std::tuple<topo::NodeId, topo::NodeId, topo::NodeId>;

  void Enqueue(const InFlightPacket& packet);
  void Process(InFlightPacket packet, const RemoteEmit& emit);
  void Final(const InFlightPacket& packet, FinalState state, bdd::Bdd set);

  PacketCodec codec_;
  Options options_;
  std::unordered_map<topo::NodeId, NodePredicates> nodes_;
  std::unordered_map<topo::NodeId, uint32_t> waypoint_bits_;
  // hop level -> merged packets at that level.
  std::map<int, std::map<QueueKey, bdd::Bdd>> queue_;
  // Path-recording mode keeps distinct packets instead (no coalescing).
  std::map<int, std::vector<InFlightPacket>> path_queue_;
  std::vector<FinalPacket> finals_;
  size_t steps_ = 0;
  bool record_paths_ = false;
};

}  // namespace s2::dp
