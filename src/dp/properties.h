// Property checking (paper §4.4).
//
// A query is (H, Vs, Vd, Vt): header space, sources, destinations,
// transits. The forwarding engine(s) inject H at every source and run to
// quiescence; verdicts are then computed from the final packets, gathered
// into a single BDD domain. Supported properties: reachability, waypoint,
// multi-path consistency, loop-free, blackhole-free.
#pragma once

#include <vector>

#include "dp/forwarding.h"

namespace s2::dp {

struct Query {
  HeaderSpaceSpec header_space;
  std::vector<topo::NodeId> sources;
  std::vector<topo::NodeId> destinations;
  std::vector<topo::NodeId> transits;  // waypoints, one metadata bit each
  // Enumerate concrete forwarding paths (disables packet coalescing) and
  // check them for forwarding valleys — the Fig 11 path-specific anomaly.
  // Meant for targeted diagnostics; costs the full path blowup.
  bool record_paths = false;
};

struct ReachabilityPair {
  topo::NodeId src;
  topo::NodeId dst;
  // Fraction of the destination's own announced space (within H) that
  // arrives from src; reachable means the whole of it arrives.
  double fraction = 0.0;
  bool reachable = false;
};

struct MultipathViolation {
  topo::NodeId src;
  FinalState state_a;
  FinalState state_b;
};

struct WaypointResult {
  topo::NodeId transit;
  bool always_traversed = false;  // every arriving packet visited it
};

// A forwarding valley: a path that descends the topology's layers and
// climbs back up (e.g. edge→agg→edge→agg→core…, Fig 11's
// E6→A4→C0→A8→E10→A9→C3→… example). Valid Clos forwarding goes up then
// down exactly once.
struct ForwardingValley {
  topo::NodeId src;
  std::vector<topo::NodeId> path;
};

// Scans a recorded path for a down-then-up layer transition.
bool IsForwardingValley(const std::vector<topo::NodeId>& path,
                        const topo::Graph& graph);

struct QueryResult {
  std::vector<ReachabilityPair> reachability;
  size_t reachable_pairs = 0;
  size_t unreachable_pairs = 0;
  bool loop_free = true;
  bool blackhole_free = true;
  size_t loop_finals = 0;
  size_t blackhole_finals = 0;
  std::vector<MultipathViolation> multipath_violations;
  std::vector<WaypointResult> waypoints;
  // Filled only for record_paths queries.
  size_t paths_recorded = 0;
  std::vector<ForwardingValley> valleys;
};

// Evaluates verdicts over finals that all live in `codec`'s manager.
// `network` supplies each destination's announced prefixes. `waypoint_bit`
// maps query.transits[i] to metadata bit i.
QueryResult EvaluateQuery(const Query& query, const PacketCodec& codec,
                          const std::vector<FinalPacket>& finals,
                          const config::ParsedNetwork& network);

}  // namespace s2::dp
