// IPv4 address and prefix value types.
//
// These are the fundamental identifiers threaded through the whole system:
// configuration models, routes, RIBs, FIBs and BDD predicate construction
// all key on Ipv4Prefix. Both types are trivially copyable and ordered so
// they can be used directly as map keys and serialized as raw integers.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>

namespace s2::util {

// A single IPv4 address. Stored host-order so arithmetic and comparisons
// are natural ("10.0.0.1" < "10.0.0.2").
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(uint32_t bits) : bits_(bits) {}

  // Parses dotted-quad notation; returns nullopt on malformed input.
  static std::optional<Ipv4Address> Parse(const std::string& text);

  constexpr uint32_t bits() const { return bits_; }
  std::string ToString() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  uint32_t bits_ = 0;
};

// A CIDR prefix, canonicalized: host bits below the mask are always zero.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  Ipv4Prefix(Ipv4Address addr, uint8_t length);

  // Parses "a.b.c.d/len"; returns nullopt on malformed input.
  static std::optional<Ipv4Prefix> Parse(const std::string& text);

  constexpr Ipv4Address address() const { return addr_; }
  constexpr uint8_t length() const { return len_; }

  // The netmask as a 32-bit value (e.g. /24 -> 0xffffff00).
  constexpr uint32_t Mask() const {
    return len_ == 0 ? 0u : ~uint32_t{0} << (32 - len_);
  }

  // True if `addr` falls inside this prefix.
  bool Contains(Ipv4Address addr) const;
  // True if `other` is fully covered by this prefix (this is the same
  // length or shorter). A prefix contains itself.
  bool Contains(const Ipv4Prefix& other) const;

  std::string ToString() const;

  friend auto operator<=>(const Ipv4Prefix&, const Ipv4Prefix&) = default;

 private:
  Ipv4Address addr_;
  uint8_t len_ = 0;
};

// Convenience literal-ish constructors used pervasively by generators and
// tests. Aborts on malformed text: these are for trusted inputs only.
Ipv4Address MustParseAddress(const std::string& text);
Ipv4Prefix MustParsePrefix(const std::string& text);

}  // namespace s2::util

template <>
struct std::hash<s2::util::Ipv4Address> {
  size_t operator()(s2::util::Ipv4Address a) const noexcept {
    return std::hash<uint32_t>{}(a.bits());
  }
};

template <>
struct std::hash<s2::util::Ipv4Prefix> {
  size_t operator()(const s2::util::Ipv4Prefix& p) const noexcept {
    return std::hash<uint64_t>{}(
        (uint64_t{p.address().bits()} << 8) | p.length());
  }
};
