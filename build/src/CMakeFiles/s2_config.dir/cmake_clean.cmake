file(REMOVE_RECURSE
  "CMakeFiles/s2_config.dir/config/parser.cc.o"
  "CMakeFiles/s2_config.dir/config/parser.cc.o.d"
  "CMakeFiles/s2_config.dir/config/vendor.cc.o"
  "CMakeFiles/s2_config.dir/config/vendor.cc.o.d"
  "CMakeFiles/s2_config.dir/config/vi_model.cc.o"
  "CMakeFiles/s2_config.dir/config/vi_model.cc.o.d"
  "libs2_config.a"
  "libs2_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
