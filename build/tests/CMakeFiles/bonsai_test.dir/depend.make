# Empty dependencies file for bonsai_test.
# This may be replaced when dependencies are built.
