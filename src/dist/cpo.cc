#include "dist/cpo.h"

#include <algorithm>

#include "util/status.h"
#include "util/stopwatch.h"

namespace s2::dist {

void RoundMetrics::Add(const RoundMetrics& other) {
  rounds += other.rounds;
  wall_seconds += other.wall_seconds;
  modeled_seconds += other.modeled_seconds;
  comm_bytes += other.comm_bytes;
  comm_messages += other.comm_messages;
}

Cpo::Cpo(std::vector<std::unique_ptr<Worker>>* workers,
         SidecarFabric* fabric, util::ThreadPool* pool, CostModelParams cost,
         int max_rounds)
    : workers_(workers),
      fabric_(fabric),
      pool_(pool),
      cost_(cost),
      max_rounds_(max_rounds) {}

double Cpo::GcPenalty() const {
  double worst = 0;
  for (const auto& worker : *workers_) {
    worst = std::max(worst,
                     util::GcPenaltySeconds(worker->tracker(), cost_));
  }
  return worst;
}

RoundMetrics Cpo::RunRounds() {
  RoundMetrics metrics;
  util::Stopwatch wall;
  size_t num_workers = workers_->size();
  std::vector<char> produced(num_workers, 0);
  for (;;) {
    // Phase A (barrier): every worker computes its nodes' round and ships
    // outboxes through its sidecar.
    size_t bytes_before = fabric_->total_bytes();
    pool_->ParallelFor(num_workers, [&](size_t w) {
      produced[w] = (*workers_)[w]->ComputeAndShip() ? 1 : 0;
    });
    double busy_a = 0;
    bool any = false;
    for (size_t w = 0; w < num_workers; ++w) {
      busy_a = std::max(busy_a, (*workers_)[w]->last_phase_seconds());
      any = any || produced[w];
    }
    if (!any) break;  // global fix point

    // Phase B (barrier): deliver and merge.
    pool_->ParallelFor(num_workers,
                       [&](size_t w) { (*workers_)[w]->Deliver(); });
    double busy_b = 0;
    for (size_t w = 0; w < num_workers; ++w) {
      busy_b = std::max(busy_b, (*workers_)[w]->last_phase_seconds());
    }
    size_t bytes_after = fabric_->total_bytes();
    metrics.comm_bytes += bytes_after - bytes_before;
    metrics.modeled_seconds +=
        busy_a + busy_b +
        double(bytes_after - bytes_before) / double(num_workers) /
            cost_.bandwidth_bytes_per_sec +
        GcPenalty() + cost_.round_latency_seconds;
    if (++metrics.rounds > max_rounds_) {
      throw util::SimulatedTimeout(
          "distributed control plane did not converge within " +
          std::to_string(metrics.rounds) + " rounds");
    }
  }
  metrics.wall_seconds = wall.ElapsedSeconds();
  return metrics;
}

size_t Cpo::MaxWorkerPeakNow() const {
  size_t peak = 0;
  for (const auto& worker : *workers_) {
    peak = std::max(peak, worker->tracker().peak_bytes());
  }
  return peak;
}

RoundMetrics Cpo::Run(bool any_ospf, const cp::ShardPlan* plan,
                      cp::RibStore* store) {
  RoundMetrics total;
  shard_metrics_.clear();
  observed_peak_ = 0;
  if (any_ospf) {
    pool_->ParallelFor(workers_->size(),
                       [&](size_t w) { (*workers_)[w]->BeginOspf(); });
    total.Add(RunRounds());
    pool_->ParallelFor(workers_->size(),
                       [&](size_t w) { (*workers_)[w]->FinishOspf(); });
  }
  if (plan != nullptr) {
    for (size_t shard = 0; shard < plan->shards.size(); ++shard) {
      const cp::PrefixSet* prefixes = &plan->shards[shard];
      // Reset per-worker peaks so the shard's own peak is attributable
      // (the paper's per-round peak memory, Fig 9).
      observed_peak_ = std::max(observed_peak_, MaxWorkerPeakNow());
      for (const auto& worker : *workers_) worker->tracker().ResetPeak();
      pool_->ParallelFor(workers_->size(), [&](size_t w) {
        (*workers_)[w]->BeginBgp(prefixes);
      });
      ShardMetrics metrics;
      metrics.rounds = RunRounds();
      total.Add(metrics.rounds);
      // End of shard round: spill to persistent storage, freeing worker
      // memory before the next shard (§4.5).
      pool_->ParallelFor(workers_->size(), [&](size_t w) {
        (*workers_)[w]->SpillBgp(*store, static_cast<int>(shard));
      });
      metrics.max_worker_peak = MaxWorkerPeakNow();
      observed_peak_ = std::max(observed_peak_, metrics.max_worker_peak);
      shard_metrics_.push_back(metrics);
    }
  } else {
    pool_->ParallelFor(workers_->size(),
                       [&](size_t w) { (*workers_)[w]->BeginBgp(nullptr); });
    total.Add(RunRounds());
    pool_->ParallelFor(workers_->size(),
                       [&](size_t w) { (*workers_)[w]->RetainBgp(); });
  }
  return total;
}

}  // namespace s2::dist
