#include "dp/predicates.h"

namespace s2::dp {

bdd::Bdd AclPredicate(const config::Acl& acl, const PacketCodec& codec) {
  bdd::Manager* manager = codec.manager();
  bdd::Bdd permitted = manager->Zero();
  bdd::Bdd unmatched = manager->One();
  for (const config::AclEntry& entry : acl.entries) {
    bdd::Bdd match = manager->One();
    if (entry.dst) match &= codec.DstIn(*entry.dst);
    if (entry.src) {
      // Source matching requires src bits in the layout; an entry with a
      // src constraint under a dst-only layout matches nothing (the
      // header space under analysis carries no source information).
      if (codec.layout().src_bits == 32) {
        match &= codec.SrcIn(*entry.src);
      } else {
        match = manager->Zero();
      }
    }
    bdd::Bdd firing = match & unmatched;  // first match wins
    if (entry.permit) permitted |= firing;
    unmatched = unmatched.Diff(match);
  }
  return permitted;
}

NodePredicates BuildPredicates(const config::ParsedNetwork& network,
                               topo::NodeId self, const Fib& fib,
                               const PacketCodec& codec) {
  bdd::Manager* manager = codec.manager();
  const config::ViConfig& config = network.configs[self];

  NodePredicates preds;
  preds.arrive = manager->Zero();
  preds.exit = manager->Zero();
  preds.discard = manager->Zero();

  // LPM scan: entries are sorted longest-first; each entry claims the part
  // of the destination space no longer entry claimed before it.
  bdd::Bdd unmatched = manager->One();
  for (const FibEntry& entry : fib.entries) {
    if (unmatched.IsZero()) break;
    bdd::Bdd match = codec.DstIn(entry.prefix) & unmatched;
    if (match.IsZero()) continue;
    unmatched = unmatched.Diff(match);
    switch (entry.action) {
      case FibAction::kForward:
        for (topo::NodeId hop : entry.next_hops) {
          auto it = preds.forward.find(hop);
          if (it == preds.forward.end()) {
            preds.forward.emplace(hop, match);
          } else {
            it->second |= match;
          }
        }
        break;
      case FibAction::kArrive:
        preds.arrive |= match;
        break;
      case FibAction::kExit:
        preds.exit |= match;
        break;
      case FibAction::kDiscard:
        preds.discard |= match;
        break;
    }
  }
  // Destinations with no route at all blackhole here.
  preds.discard |= unmatched;

  // ACL predicates per neighbor port.
  for (const config::Interface& iface : config.interfaces) {
    auto port = network.address_book.find(iface.address.bits() ^ 1u);
    if (port == network.address_book.end()) continue;
    topo::NodeId peer = port->second.first;
    if (const config::Acl* acl = config.FindAcl(iface.acl_in)) {
      preds.acl_in.emplace(peer, AclPredicate(*acl, codec));
    }
    if (const config::Acl* acl = config.FindAcl(iface.acl_out)) {
      preds.acl_out.emplace(peer, AclPredicate(*acl, codec));
    }
  }
  return preds;
}

}  // namespace s2::dp
