file(REMOVE_RECURSE
  "CMakeFiles/dcn_policy_check.dir/dcn_policy_check.cpp.o"
  "CMakeFiles/dcn_policy_check.dir/dcn_policy_check.cpp.o.d"
  "dcn_policy_check"
  "dcn_policy_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_policy_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
