#include "cp/route.h"

#include <algorithm>
#include <cstdlib>

namespace s2::cp {

uint32_t AdminDistance(Protocol protocol) {
  switch (protocol) {
    case Protocol::kConnected:
      return 0;
    case Protocol::kLocal:
      return 5;
    case Protocol::kBgp:
      return 20;
    case Protocol::kOspf:
      return 110;
  }
  return 255;
}

bool Route::HasCommunity(uint32_t community) const {
  return std::binary_search(communities.begin(), communities.end(),
                            community);
}

void Route::AddCommunity(uint32_t community) {
  auto it = std::lower_bound(communities.begin(), communities.end(),
                             community);
  if (it == communities.end() || *it != community) {
    communities.insert(it, community);
  }
}

size_t Route::EstimateBytes() const {
  return 150 + 4 * as_path.size() + 4 * communities.size();
}

bool BetterRoute(const Route& a, const Route& b) {
  uint32_t ad_a = AdminDistance(a.protocol), ad_b = AdminDistance(b.protocol);
  if (ad_a != ad_b) return ad_a < ad_b;
  if (a.protocol == Protocol::kOspf && b.protocol == Protocol::kOspf) {
    if (a.metric != b.metric) return a.metric < b.metric;
  }
  if (a.local_pref != b.local_pref) return a.local_pref > b.local_pref;
  if (a.as_path.size() != b.as_path.size()) {
    return a.as_path.size() < b.as_path.size();
  }
  if (a.origin != b.origin) return a.origin < b.origin;
  if (a.med != b.med) return a.med < b.med;
  if (a.learned_from != b.learned_from) return a.learned_from < b.learned_from;
  if (a.origin_node != b.origin_node) return a.origin_node < b.origin_node;
  return a.as_path < b.as_path;
}

bool EcmpEquivalent(const Route& a, const Route& b) {
  return AdminDistance(a.protocol) == AdminDistance(b.protocol) &&
         a.local_pref == b.local_pref &&
         a.as_path.size() == b.as_path.size() && a.origin == b.origin &&
         a.med == b.med && a.metric == b.metric;
}

void PutWireU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t GetWireU32(const std::vector<uint8_t>& in, size_t& pos) {
  if (pos + 4 > in.size()) std::abort();
  uint32_t v = uint32_t{in[pos]} | (uint32_t{in[pos + 1]} << 8) |
               (uint32_t{in[pos + 2]} << 16) | (uint32_t{in[pos + 3]} << 24);
  pos += 4;
  return v;
}

namespace {

void PutU32(std::vector<uint8_t>& out, uint32_t v) { PutWireU32(out, v); }

uint32_t GetU32(const std::vector<uint8_t>& in, size_t& pos) {
  return GetWireU32(in, pos);
}

void PutU32List(std::vector<uint8_t>& out, const std::vector<uint32_t>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (uint32_t x : v) PutU32(out, x);
}

std::vector<uint32_t> GetU32List(const std::vector<uint8_t>& in,
                                 size_t& pos) {
  uint32_t n = GetU32(in, pos);
  std::vector<uint32_t> v;
  v.reserve(n);
  for (uint32_t i = 0; i < n; ++i) v.push_back(GetU32(in, pos));
  return v;
}

}  // namespace

void SerializeRoutes(const std::vector<RouteUpdate>& updates,
                     std::vector<uint8_t>& out) {
  PutU32(out, static_cast<uint32_t>(updates.size()));
  for (const RouteUpdate& update : updates) {
    PutU32(out, update.prefix.address().bits());
    out.push_back(update.prefix.length());
    out.push_back(update.withdraw ? 1 : 0);
    if (update.withdraw) continue;
    const Route& r = update.route;
    out.push_back(static_cast<uint8_t>(r.protocol));
    out.push_back(r.origin);
    PutU32(out, r.local_pref);
    PutU32(out, r.med);
    PutU32(out, r.metric);
    PutU32(out, r.origin_node);
    PutU32(out, r.learned_from);
    PutU32List(out, r.as_path);
    PutU32List(out, r.communities);
  }
}

std::vector<RouteUpdate> DeserializeRoutes(
    const std::vector<uint8_t>& bytes) {
  size_t pos = 0;
  uint32_t count = GetU32(bytes, pos);
  std::vector<RouteUpdate> updates;
  updates.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    RouteUpdate update;
    uint32_t addr = GetU32(bytes, pos);
    if (pos + 2 > bytes.size()) std::abort();
    uint8_t length = bytes[pos++];
    update.prefix = util::Ipv4Prefix(util::Ipv4Address(addr), length);
    update.withdraw = bytes[pos++] != 0;
    if (!update.withdraw) {
      if (pos + 2 > bytes.size()) std::abort();
      Route& r = update.route;
      r.prefix = update.prefix;
      r.protocol = static_cast<Protocol>(bytes[pos++]);
      r.origin = bytes[pos++];
      r.local_pref = GetU32(bytes, pos);
      r.med = GetU32(bytes, pos);
      r.metric = GetU32(bytes, pos);
      r.origin_node = GetU32(bytes, pos);
      r.learned_from = GetU32(bytes, pos);
      r.as_path = GetU32List(bytes, pos);
      r.communities = GetU32List(bytes, pos);
    }
    updates.push_back(std::move(update));
  }
  return updates;
}

void PutRoutesSection(std::vector<uint8_t>& out,
                      const std::vector<RouteUpdate>& updates) {
  std::vector<uint8_t> chunk;
  SerializeRoutes(updates, chunk);
  PutWireU32(out, static_cast<uint32_t>(chunk.size()));
  out.insert(out.end(), chunk.begin(), chunk.end());
}

std::vector<RouteUpdate> GetRoutesSection(const std::vector<uint8_t>& bytes,
                                          size_t& pos) {
  uint32_t len = GetWireU32(bytes, pos);
  if (pos + len > bytes.size()) std::abort();
  std::vector<uint8_t> chunk(bytes.data() + pos, bytes.data() + pos + len);
  pos += len;
  return DeserializeRoutes(chunk);
}

}  // namespace s2::cp
