// What-if analysis tests: link removal, device failure, reachability
// diffing, and the FatTree resilience properties they should expose
// (ECMP tolerates single link failures; cutting a rack's uplinks does not).
#include <gtest/gtest.h>

#include "core/mono.h"
#include "core/whatif.h"
#include "test_networks.h"
#include "topo/fattree.h"

namespace s2::core {
namespace {

dp::Query EdgeQuery(const config::ParsedNetwork& net) {
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  for (topo::NodeId id = 0; id < net.graph.size(); ++id) {
    if (net.graph.node(id).role == topo::Role::kEdge) {
      query.sources.push_back(id);
      query.destinations.push_back(id);
    }
  }
  return query;
}

dp::QueryResult Verify(const config::ParsedNetwork& net,
                    const dp::Query& query) {
  MonoVerifier verifier{MonoOptions{}};
  VerifyResult result = verifier.Verify(net, {query});
  EXPECT_TRUE(result.ok()) << result.failure_detail;
  return result.queries.at(0);
}

TEST(RemoveLinkTest, RemovesInterfacesSessionsAndEdges) {
  auto net = testing::Parse(testing::MakeDiamond());
  auto cut = RemoveLink(net, 0, 1);
  EXPECT_EQ(cut.graph.edge_count(), net.graph.edge_count() - 1);
  EXPECT_EQ(cut.configs[0].interfaces.size(),
            net.configs[0].interfaces.size() - 1);
  EXPECT_EQ(cut.configs[0].bgp.neighbors.size(),
            net.configs[0].bgp.neighbors.size() - 1);
  EXPECT_EQ(cut.configs[1].interfaces.size(),
            net.configs[1].interfaces.size() - 1);
  // Unrelated devices untouched.
  EXPECT_EQ(cut.configs[2].interfaces, net.configs[2].interfaces);
  // The original is unmodified (pure copy semantics).
  EXPECT_EQ(net.configs[0].interfaces.size(), 2u);
}

TEST(RemoveLinkTest, NoSuchLinkIsAPureCopy) {
  auto net = testing::Parse(testing::MakeChain(3));
  auto copy = RemoveLink(net, 0, 2);  // r0 and r2 are not adjacent
  EXPECT_EQ(copy.graph.edge_count(), net.graph.edge_count());
  EXPECT_EQ(copy.configs[0].interfaces, net.configs[0].interfaces);
}

TEST(RemoveLinkTest, EcmpAbsorbsSingleFatTreeLinkLoss) {
  topo::FatTreeParams params;
  params.k = 4;
  auto net = testing::Parse(topo::MakeFatTree(params));
  dp::Query query = EdgeQuery(net);
  dp::QueryResult before = Verify(net, query);

  // Fail one edge->aggregation uplink: the other uplink carries on.
  auto cut = RemoveLink(net, net.graph.FindByName("edge-0-0"),
                        net.graph.FindByName("agg-0-0"));
  dp::QueryResult after = Verify(cut, query);
  EXPECT_EQ(after.unreachable_pairs, 0u);
  EXPECT_TRUE(DiffReachability(before, after).empty());
}

TEST(RemoveLinkTest, CuttingBothUplinksIsolatesTheRack) {
  topo::FatTreeParams params;
  params.k = 4;
  auto net = testing::Parse(topo::MakeFatTree(params));
  dp::Query query = EdgeQuery(net);
  dp::QueryResult before = Verify(net, query);

  topo::NodeId victim = net.graph.FindByName("edge-0-0");
  auto cut = RemoveLink(net, victim, net.graph.FindByName("agg-0-0"));
  cut = RemoveLink(cut, victim, net.graph.FindByName("agg-0-1"));
  dp::QueryResult after = Verify(cut, query);
  auto changes = DiffReachability(before, after);
  // Every pair touching the victim flipped to unreachable: 7 as source +
  // 7 as destination.
  EXPECT_EQ(changes.size(), 14u);
  for (const ReachabilityChange& change : changes) {
    EXPECT_TRUE(change.src == victim || change.dst == victim);
    EXPECT_TRUE(change.was_reachable);
    EXPECT_FALSE(change.now_reachable);
  }
}

TEST(FailNodeTest, CoreLossIsAbsorbedAggLossIsNotFatal) {
  topo::FatTreeParams params;
  params.k = 4;
  auto net = testing::Parse(topo::MakeFatTree(params));
  dp::Query query = EdgeQuery(net);
  dp::QueryResult before = Verify(net, query);

  // Any single core can fail without losing reachability.
  auto no_core = FailNode(net, net.graph.FindByName("core-0-0"));
  EXPECT_TRUE(DiffReachability(before, Verify(no_core, query)).empty());

  // A single aggregation switch is also survivable in FatTree(4).
  auto no_agg = FailNode(net, net.graph.FindByName("agg-0-0"));
  EXPECT_TRUE(DiffReachability(before, Verify(no_agg, query)).empty());

  // Failing an edge switch kills exactly its pairs.
  topo::NodeId victim = net.graph.FindByName("edge-1-1");
  auto no_edge = FailNode(net, victim);
  auto changes = DiffReachability(before, Verify(no_edge, query));
  EXPECT_EQ(changes.size(), 14u);
}

TEST(FailNodeTest, FailedDeviceKeepsItsIdForStableDiffs) {
  auto net = testing::Parse(testing::MakeChain(3));
  auto failed = FailNode(net, 1);
  EXPECT_EQ(failed.graph.size(), net.graph.size());  // ids stable
  EXPECT_TRUE(failed.configs[1].interfaces.empty());
  EXPECT_TRUE(failed.configs[1].bgp.neighbors.empty());
  EXPECT_EQ(failed.graph.edge_count(), 0u);  // chain fully severed
}

TEST(DiffReachabilityTest, ReportsBothDirectionsOfChange) {
  dp::QueryResult before, after;
  before.reachability = {{0, 1, 1.0, true}, {1, 0, 0.0, false}};
  after.reachability = {{0, 1, 0.0, false}, {1, 0, 1.0, true}};
  auto changes = DiffReachability(before, after);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_FALSE(changes[0].now_reachable);  // (0,1) lost
  EXPECT_TRUE(changes[1].now_reachable);   // (1,0) gained
}

TEST(DiffReachabilityTest, NewPairsCountAsGained) {
  dp::QueryResult before, after;
  after.reachability = {{2, 3, 1.0, true}};
  auto changes = DiffReachability(before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_FALSE(changes[0].was_reachable);
  EXPECT_TRUE(changes[0].now_reachable);
}

}  // namespace
}  // namespace s2::core
