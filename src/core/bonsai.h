// BonsaiVerifier — the control-plane-compression baseline (paper §5.2/§5.4,
// DESIGN.md substitution S7).
//
// Bonsai compresses a network *per destination*: for a synthesized FatTree
// and one destination prefix, the abstraction collapses to 6 nodes
// (paper footnote 3): the destination edge switch, one edge and one
// aggregation switch of the same pod, one core, and one aggregation + one
// edge switch of a different pod. All-pair reachability is checked by
// compressing for every destination and simulating each compressed
// instance, destinations fanned across the logical server's cores.
//
// The scaling shape this reproduces (Fig 5): memory stays tiny (compressed
// instances are constant-size) but per-destination compression scans the
// whole topology, so total time grows with (#destinations x network size)
// / cores and hits the 2-hour wall before S2 does.
#pragma once

#include "core/results.h"
#include "topo/graph.h"

namespace s2::core {

struct BonsaiOptions {
  int cores = 15;                  // paper: 15-core logical server
  double timeout_seconds = 7200;   // the 2-hour deadline
  size_t memory_budget = 0;
  int max_rounds = 100;
  // Modeled cost of the compression pass, per topology node per
  // destination. Real Bonsai's abstraction computation is much heavier
  // than our stand-in scan; this deterministic term reproduces the paper's
  // "compression time grows with FatTree size" scaling independent of the
  // host machine. Benchmarks pair it with a scaled-down deadline.
  double modeled_seconds_per_scan_node = 0.0;
};

class BonsaiVerifier {
 public:
  explicit BonsaiVerifier(BonsaiOptions options) : options_(options) {}

  // All-pair reachability over a synthesized FatTree `network` (generator
  // intents are required to build compressed instances). Modeled time
  // divides the per-destination work across `cores`; exceeding the
  // deadline yields a kTimeout result, as in Fig 5.
  VerifyResult Verify(const topo::Network& network);

 private:
  BonsaiOptions options_;
};

}  // namespace s2::core
