#include "topo/graph.h"

#include <cstdlib>

namespace s2::topo {

const char* RoleName(Role role) {
  switch (role) {
    case Role::kEdge:
      return "edge";
    case Role::kAggregation:
      return "aggregation";
    case Role::kCore:
      return "core";
    case Role::kBorder:
      return "border";
  }
  return "?";
}

NodeId Graph::AddNode(NodeInfo info) {
  nodes_.push_back(std::move(info));
  adjacency_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

size_t Graph::AddEdge(NodeId a, NodeId b) {
  edges_.push_back(Edge{a, b});
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  return edges_.size() - 1;
}

NodeId Graph::FindByName(const std::string& name) const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].name == name) return id;
  }
  return kInvalidNode;
}

void AssignLinkAddresses(Network& network) {
  // Precondition: not yet addressed. A second call would duplicate every
  // interface (it appends one record per edge endpoint).
  for (const NodeIntent& intent : network.intents) {
    if (!intent.interfaces.empty()) std::abort();
  }
  // Each edge consumes one /31 from 10.128.0.0/9: base + 2 * edge_index.
  const uint32_t base = util::MustParseAddress("10.128.0.0").bits();
  for (size_t e = 0; e < network.graph.edge_count(); ++e) {
    const Edge& edge = network.graph.edge(e);
    uint32_t subnet = base + static_cast<uint32_t>(2 * e);
    auto if_name = [&](NodeId self) {
      return "eth" +
             std::to_string(network.intents[self].interfaces.size());
    };
    std::string name_a = if_name(edge.a);
    std::string name_b = if_name(edge.b);
    InterfaceIntent side_a, side_b;
    side_a.name = name_a;
    side_a.address = util::Ipv4Address(subnet);
    side_a.peer = edge.b;
    side_a.peer_interface = name_b;
    side_b.name = name_b;
    side_b.address = util::Ipv4Address(subnet + 1);
    side_b.peer = edge.a;
    side_b.peer_interface = name_a;
    network.intents[edge.a].interfaces.push_back(std::move(side_a));
    network.intents[edge.b].interfaces.push_back(std::move(side_b));
  }
}

}  // namespace s2::topo
