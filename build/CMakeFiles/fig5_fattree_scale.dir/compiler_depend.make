# Empty compiler generated dependencies file for fig5_fattree_scale.
# This may be replaced when dependencies are built.
