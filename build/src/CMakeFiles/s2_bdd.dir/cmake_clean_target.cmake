file(REMOVE_RECURSE
  "libs2_bdd.a"
)
