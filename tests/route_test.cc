// Route value-type tests: the BGP decision process ordering, ECMP
// equivalence, communities, and wire serialization — all through the
// interned-attribute handles.
#include <gtest/gtest.h>

#include "cp/attr.h"
#include "cp/route.h"

namespace s2::cp {
namespace {

// Leaked so routes held in static test state can never outlive it.
AttrPool& TestPool() {
  static AttrPool* pool = new AttrPool();
  return *pool;
}

Route BaseRoute() {
  Route r;
  r.prefix = util::MustParsePrefix("10.1.2.0/24");
  r.protocol = Protocol::kBgp;
  AttrTuple tuple;
  tuple.as_path = {65001, 65002};
  r.attrs = TestPool().Intern(std::move(tuple));
  r.origin_node = 7;
  r.learned_from = 3;
  return r;
}

TEST(RouteTest, AdminDistances) {
  EXPECT_EQ(AdminDistance(Protocol::kConnected), 0u);
  EXPECT_EQ(AdminDistance(Protocol::kLocal), 5u);
  EXPECT_EQ(AdminDistance(Protocol::kBgp), 20u);
  EXPECT_EQ(AdminDistance(Protocol::kOspf), 110u);
}

TEST(RouteTest, PrivateAsnRange) {
  EXPECT_FALSE(IsPrivateAsn(64511));
  EXPECT_TRUE(IsPrivateAsn(64512));
  EXPECT_TRUE(IsPrivateAsn(65534));
  EXPECT_FALSE(IsPrivateAsn(65535));
}

TEST(RouteTest, CommunitiesStaySortedUnique) {
  Route r = BaseRoute();
  r.MutateAttrs(TestPool(), [](AttrTuple& t) {
    t.AddCommunity(300);
    t.AddCommunity(100);
    t.AddCommunity(200);
    t.AddCommunity(100);  // duplicate
  });
  EXPECT_EQ(r.communities(), (std::vector<uint32_t>{100, 200, 300}));
  EXPECT_TRUE(r.HasCommunity(200));
  EXPECT_FALSE(r.HasCommunity(150));
}

TEST(BetterRouteTest, DecisionProcessOrder) {
  Route base = BaseRoute();

  // Lower admin distance wins regardless of anything else.
  Route local = base;
  local.protocol = Protocol::kLocal;
  local.MutateAttrs(TestPool(), [](AttrTuple& t) { t.local_pref = 1; });
  EXPECT_TRUE(BetterRoute(local, base));

  // Higher local-pref wins.
  Route preferred = base;
  preferred.MutateAttrs(TestPool(), [](AttrTuple& t) { t.local_pref = 200; });
  EXPECT_TRUE(BetterRoute(preferred, base));
  EXPECT_FALSE(BetterRoute(base, preferred));

  // Shorter AS path wins.
  Route shorter = base;
  shorter.MutateAttrs(TestPool(), [](AttrTuple& t) { t.as_path = {65001}; });
  EXPECT_TRUE(BetterRoute(shorter, base));

  // Lower origin wins.
  Route igp = base;
  Route incomplete = base;
  incomplete.MutateAttrs(TestPool(), [](AttrTuple& t) { t.origin = 2; });
  EXPECT_TRUE(BetterRoute(igp, incomplete));

  // Lower MED wins.
  Route low_med = base;
  Route high_med = base;
  high_med.MutateAttrs(TestPool(), [](AttrTuple& t) { t.med = 50; });
  EXPECT_TRUE(BetterRoute(low_med, high_med));

  // Tie-break: lower learned_from.
  Route other_neighbor = base;
  other_neighbor.learned_from = 9;
  EXPECT_TRUE(BetterRoute(base, other_neighbor));
}

TEST(BetterRouteTest, StrictWeakOrdering) {
  Route a = BaseRoute();
  EXPECT_FALSE(BetterRoute(a, a));  // irreflexive
  Route b = BaseRoute();
  b.MutateAttrs(TestPool(), [](AttrTuple& t) { t.local_pref = 200; });
  EXPECT_NE(BetterRoute(a, b), BetterRoute(b, a));  // asymmetric
}

TEST(BetterRouteTest, SameEntrySkipMatchesValueComparison) {
  // Two routes holding distinct handles with equal attribute values must
  // order exactly like two routes sharing one handle.
  AttrPool other;
  Route a = BaseRoute();
  Route b = a;
  AttrTuple copy = a.attrs.get();
  b.attrs = other.Intern(std::move(copy));
  EXPECT_FALSE(a.attrs.SameEntry(b.attrs));
  EXPECT_EQ(a.attrs, b.attrs);  // deep equality
  EXPECT_FALSE(BetterRoute(a, b));
  EXPECT_FALSE(BetterRoute(b, a));
  EXPECT_TRUE(EcmpEquivalent(a, b));
}

TEST(BetterRouteTest, OspfComparesMetric) {
  Route a = BaseRoute(), b = BaseRoute();
  a.protocol = b.protocol = Protocol::kOspf;
  a.metric = 2;
  b.metric = 5;
  EXPECT_TRUE(BetterRoute(a, b));
}

TEST(EcmpEquivalentTest, MultipathAttributes) {
  Route a = BaseRoute(), b = BaseRoute();
  b.learned_from = 9;  // different neighbor is fine
  b.MutateAttrs(TestPool(), [](AttrTuple& t) {
    t.as_path = {65009, 65010};  // different content, same length
  });
  EXPECT_TRUE(EcmpEquivalent(a, b));
  b.MutateAttrs(TestPool(), [](AttrTuple& t) { t.as_path = {65009}; });
  EXPECT_FALSE(EcmpEquivalent(a, b));  // different length
  b = BaseRoute();
  b.MutateAttrs(TestPool(), [](AttrTuple& t) { t.local_pref = 200; });
  EXPECT_FALSE(EcmpEquivalent(a, b));
  b = BaseRoute();
  b.MutateAttrs(TestPool(), [](AttrTuple& t) { t.med = 1; });
  EXPECT_FALSE(EcmpEquivalent(a, b));
}

TEST(RouteSerializationTest, RoundTripsAnnouncesAndWithdrawals) {
  Route r = BaseRoute();
  r.MutateAttrs(TestPool(), [](AttrTuple& t) {
    t.AddCommunity(999);
    t.med = 42;
  });
  std::vector<RouteUpdate> updates;
  updates.push_back(RouteUpdate{r.prefix, false, r});
  updates.push_back(RouteUpdate{util::MustParsePrefix("0.0.0.0/0"), true,
                                Route{}});
  std::vector<uint8_t> bytes;
  SerializeRoutes(updates, bytes);
  AttrPool receiver;
  auto decoded = DeserializeRoutes(bytes, receiver);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_FALSE(decoded[0].withdraw);
  EXPECT_EQ(decoded[0].route, r);
  EXPECT_TRUE(decoded[1].withdraw);
  EXPECT_EQ(decoded[1].prefix, util::MustParsePrefix("0.0.0.0/0"));
}

TEST(RouteSerializationTest, EmptyBatch) {
  std::vector<uint8_t> bytes;
  SerializeRoutes({}, bytes);
  AttrPool receiver;
  EXPECT_TRUE(DeserializeRoutes(bytes, receiver).empty());
}

TEST(RouteSerializationTest, SharedTuplesWrittenOnce) {
  // 16 updates sharing one attribute tuple: the batch carries the tuple
  // once in the table and 4-byte references in the body.
  Route r = BaseRoute();
  std::vector<RouteUpdate> updates(16, RouteUpdate{r.prefix, false, r});
  std::vector<uint8_t> bytes;
  SerializeRoutes(updates, bytes, &TestPool());
  AttrPool receiver;
  auto decoded = DeserializeRoutes(bytes, receiver);
  ASSERT_EQ(decoded.size(), 16u);
  for (const auto& update : decoded) EXPECT_EQ(update.route, r);
  // All 16 decoded routes share one entry in the receiving pool.
  for (const auto& update : decoded) {
    EXPECT_TRUE(update.route.attrs.SameEntry(decoded[0].route.attrs));
  }
  EXPECT_EQ(receiver.live_entries(), 1u);
}

TEST(RouteTest, EstimateBytesGrowsWithAttributes) {
  Route small = BaseRoute();
  small.MutateAttrs(TestPool(), [](AttrTuple& t) {
    t.as_path.clear();
    t.communities.clear();
  });
  Route big = BaseRoute();
  big.MutateAttrs(TestPool(), [](AttrTuple& t) {
    for (uint32_t i = 0; i < 10; ++i) t.AddCommunity(i);
  });
  EXPECT_GT(big.EstimateBytes(), small.EstimateBytes());
}

}  // namespace
}  // namespace s2::cp
