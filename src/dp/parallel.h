// Intra-worker parallel symbolic forwarding (lane model).
//
// A worker's node set is sub-partitioned across L *lanes*, each a
// shared-nothing (Manager, PacketCodec, ForwardingEngine) triple — the same
// isolation S2 uses between workers (one BDD table per worker, §4.3 option
// 2), pushed one level down. Lanes never touch each other's managers;
// packets crossing lanes travel as canonical bdd_io bytes, exactly like
// packets crossing workers.
//
// Execution is level-lockstep, which is what preserves the exact-merge
// invariant of forwarding.h under parallelism:
//
//   while any lane has pending packets:
//     h  <- min over lanes of NextLevel()
//     1. every lane with work at h drains level h in parallel; emissions
//        (always at level h+1) are serialized into a lane-private outbox
//     2. outboxes are merged sequentially in lane order: cross-lane frames
//        go to the owning lane's inbox, off-worker frames to the remote
//        callback (so the cross-worker send order is deterministic)
//     3. lanes deserialize and enqueue their inboxes in parallel
//
// Every copy of a packet that can reach level h+1 — locally forwarded or
// cross-lane — is enqueued (and therefore coalesced by the engine's
// QueueKey map) before any lane processes level h+1, so the merge is as
// exact as the sequential engine's. With lanes == 1 the engine runs its
// plain sequential Run() and is bit-identical to the seed behavior; the
// differential-oracle tests pin lanes > 1 against that oracle.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "dp/forwarding.h"
#include "util/thread_pool.h"

namespace s2::dp {

// A symbolic packet in manager-independent wire form; the unit that
// crosses lane and worker boundaries.
struct WirePacket {
  topo::NodeId at = topo::kInvalidNode;
  topo::NodeId from = topo::kInvalidNode;
  topo::NodeId src = topo::kInvalidNode;
  int hops = 0;
  std::vector<topo::NodeId> path;  // path-recording queries only
  std::vector<uint8_t> set;        // bdd_io canonical bytes

  size_t WireBytes() const { return 16 + set.size() + 4 * path.size(); }
};

class ParallelForwarding {
 public:
  struct Options {
    uint32_t lanes = 1;
    int max_hops = 24;
    HeaderLayout layout;
    // Per-lane manager configuration (node-table cap, tracker, op-cache
    // size). The tracker may be shared across lanes: MemoryTracker is
    // atomic, so concurrent lane charges are race-free.
    bdd::Manager::Options manager;
  };

  explicit ParallelForwarding(Options options);

  // ---------------------------------------------------------- registration
  // Nodes are assigned to lanes round-robin in registration order — a
  // deterministic rule, so a restored worker that re-registers the same
  // nodes in the same order reproduces the same lane layout.
  //
  // BeginNode assigns (or looks up) the owning lane and returns its codec;
  // the caller builds the node's predicates in that codec's manager and
  // hands them over with AddNode.
  const PacketCodec& BeginNode(topo::NodeId id);
  void AddNode(topo::NodeId id, NodePredicates preds);

  bool Owns(topo::NodeId id) const { return lane_of_.count(id) != 0; }
  size_t LaneOf(topo::NodeId id) const { return lane_of_.at(id); }
  const NodePredicates& node_predicates(topo::NodeId id) const;

  // ------------------------------------------------------------ per query
  void SetWaypointBit(topo::NodeId node, uint32_t meta_bit);
  void Inject(topo::NodeId at, const HeaderSpaceSpec& spec);
  void set_record_paths(bool record);
  void ResetQueryState();

  // Enqueues a packet arriving from another worker.
  void Accept(const WirePacket& packet);

  // Drains all lanes to quiescence. Off-worker packets go through `remote`
  // in deterministic (lane-major) order. `pool` may be null — lanes then
  // run sequentially with identical results; the pool only changes the
  // schedule, never the outcome.
  using RemoteEmit = std::function<void(const WirePacket&)>;
  void Run(util::ThreadPool* pool, const RemoteEmit& remote);

  // ------------------------------------------------------------- plumbing
  size_t lanes() const { return lanes_.size(); }
  const ForwardingEngine& lane_engine(size_t lane) const {
    return *lanes_[lane].engine;
  }
  // Total forwarding steps across lanes.
  size_t steps() const;
  // Summed op-cache behavior across the lanes' managers.
  bdd::Manager::CacheStats cache_stats() const;

 private:
  struct Lane {
    std::unique_ptr<bdd::Manager> manager;
    std::unique_ptr<PacketCodec> codec;
    std::unique_ptr<ForwardingEngine> engine;
    bdd::Bdd header_space;  // per-query cached injection set
  };

  WirePacket ToWire(const InFlightPacket& packet) const;
  void AcceptAt(size_t lane, const WirePacket& packet);

  Options options_;
  std::vector<Lane> lanes_;
  std::unordered_map<topo::NodeId, uint32_t> lane_of_;
  uint32_t next_lane_ = 0;
};

}  // namespace s2::dp
