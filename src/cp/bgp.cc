#include "cp/bgp.h"

#include <algorithm>

#include "cp/policy.h"

namespace s2::cp {

std::optional<Route> TransformForExport(const Route& best,
                                        const config::ViConfig& config,
                                        const config::BgpNeighbor& session) {
  PolicyResult result = ApplyRouteMap(
      config.FindRouteMap(session.export_route_map), best, config.bgp.asn);
  if (!result.accepted) return std::nullopt;
  Route route = std::move(result.route);

  // AS_PATH: the overwrite set action already produced [own ASN] and
  // supersedes both remove-private-as and the prepend. Otherwise,
  // remove-private-as applies to the path as learned — before the local
  // prepend — which is where the §2.1 "ASNs preceding the first
  // non-private one" semantics reads from; then the exporter's ASN is
  // prepended.
  if (!result.as_path_overwritten) {
    if (session.remove_private_as) {
      RemovePrivateAs(route.as_path, config.vendor);
    }
    route.as_path.insert(route.as_path.begin(), config.bgp.asn);
  }
  // eBGP scrubbing: LOCAL_PREF is local to the receiving AS.
  route.local_pref = 100;
  route.protocol = Protocol::kBgp;
  return route;
}

std::optional<Route> ProcessImport(const Route& received,
                                   const config::ViConfig& config,
                                   const config::BgpNeighbor& session,
                                   topo::NodeId from) {
  // eBGP loop prevention: reject paths containing our own ASN.
  if (std::find(received.as_path.begin(), received.as_path.end(),
                config.bgp.asn) != received.as_path.end()) {
    return std::nullopt;
  }
  PolicyResult result = ApplyRouteMap(
      config.FindRouteMap(session.import_route_map), received,
      config.bgp.asn);
  if (!result.accepted) return std::nullopt;
  Route route = std::move(result.route);
  route.learned_from = from;
  route.protocol = Protocol::kBgp;
  return route;
}

bool SuppressedByAggregate(const util::Ipv4Prefix& prefix,
                           const config::ViConfig& config) {
  for (const config::BgpAggregate& agg : config.bgp.aggregates) {
    if (agg.summary_only && agg.prefix != prefix &&
        agg.prefix.Contains(prefix)) {
      return true;
    }
  }
  return false;
}

}  // namespace s2::cp
