// MonoVerifier — the monolithic simulation-based baseline ("Batfish" in
// the paper's figures): one process/domain holds every node, one BDD node
// table serves all data-plane work, and the per-domain memory budget makes
// the single-server OOM wall observable. Optionally runs with prefix
// sharding ("Batfish + prefix sharding", Fig 4), which the paper shows is
// what lets the monolithic verifier survive the real DCN.
//
// It shares the exact switch model (cp::Node) and property machinery
// (dp::*) with S2 — the integration tests rely on this to pin down the
// RIB/verdict equivalence invariant.
#pragma once

#include "core/results.h"
#include "cp/engine.h"

namespace s2::core {

struct MonoOptions {
  // Memory budget of the single domain (0 = unlimited).
  size_t memory_budget = 0;
  // 0 disables prefix sharding.
  int num_shards = 0;
  // Single shared BDD node table capacity (0 = unbounded). The paper notes
  // centralized DPV is bounded by the 2^32 node table (§2.2).
  size_t max_bdd_nodes = 0;
  dp::HeaderLayout layout;
  int max_hops = 24;
  int max_rounds = 1000;
  uint64_t seed = 1;
  util::CostModelParams cost;
};

class MonoVerifier {
 public:
  explicit MonoVerifier(MonoOptions options) : options_(options) {}

  VerifyResult Verify(const config::ParsedNetwork& network,
                      const std::vector<dp::Query>& queries);

  // The engine of the last Verify (valid until the next call); integration
  // tests read its converged RIBs.
  cp::MonoEngine* last_engine() { return engine_.get(); }

 private:
  MonoOptions options_;
  // Tracker outlives the engine: nodes release their accounted memory on
  // destruction.
  std::unique_ptr<util::MemoryTracker> tracker_;
  std::unique_ptr<cp::MonoEngine> engine_;
};

}  // namespace s2::core
