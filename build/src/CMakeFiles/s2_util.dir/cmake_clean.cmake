file(REMOVE_RECURSE
  "CMakeFiles/s2_util.dir/util/ip.cc.o"
  "CMakeFiles/s2_util.dir/util/ip.cc.o.d"
  "CMakeFiles/s2_util.dir/util/logging.cc.o"
  "CMakeFiles/s2_util.dir/util/logging.cc.o.d"
  "CMakeFiles/s2_util.dir/util/memory_tracker.cc.o"
  "CMakeFiles/s2_util.dir/util/memory_tracker.cc.o.d"
  "CMakeFiles/s2_util.dir/util/string_util.cc.o"
  "CMakeFiles/s2_util.dir/util/string_util.cc.o.d"
  "CMakeFiles/s2_util.dir/util/thread_pool.cc.o"
  "CMakeFiles/s2_util.dir/util/thread_pool.cc.o.d"
  "libs2_util.a"
  "libs2_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
