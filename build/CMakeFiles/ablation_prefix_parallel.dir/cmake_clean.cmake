file(REMOVE_RECURSE
  "CMakeFiles/ablation_prefix_parallel.dir/bench/ablation_prefix_parallel.cc.o"
  "CMakeFiles/ablation_prefix_parallel.dir/bench/ablation_prefix_parallel.cc.o.d"
  "bench/ablation_prefix_parallel"
  "bench/ablation_prefix_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prefix_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
