#include "util/memory_tracker.h"

#include <cassert>

namespace s2::util {

void MemoryTracker::Charge(size_t bytes) {
  // Reserve with a CAS loop instead of fetch_add-then-rollback: the old
  // scheme briefly published an over-budget live_ before throwing, so a
  // concurrent Charge on another thread could see the inflated value and
  // throw a spurious SimulatedOom even though its own charge fit. With the
  // reservation loop, live_ never exceeds the budget.
  size_t prev = live_.load(std::memory_order_relaxed);
  size_t next;
  do {
    next = prev + bytes;
    if (budget_ != 0 && next > budget_) {
      throw SimulatedOom(domain_, bytes, budget_);
    }
  } while (!live_.compare_exchange_weak(prev, next,
                                        std::memory_order_relaxed));
  size_t prev_peak = peak_.load(std::memory_order_relaxed);
  while (next > prev_peak &&
         !peak_.compare_exchange_weak(prev_peak, next,
                                      std::memory_order_relaxed)) {
  }
}

void MemoryTracker::Release(size_t bytes) {
  size_t prev = live_.load(std::memory_order_relaxed);
  size_t next;
  do {
    next = prev >= bytes ? prev - bytes : 0;
  } while (!live_.compare_exchange_weak(prev, next,
                                        std::memory_order_relaxed));
  if (prev < bytes) {
    // An underflowing release means some module released bytes it never
    // charged — its accounting (and thus every peak/OOM figure) is off.
    // Clamping keeps release-estimate asymmetries from wedging production
    // runs, but the count is surfaced and debug builds fail loudly.
    underflows_.fetch_add(1, std::memory_order_relaxed);
    assert(false && "MemoryTracker::Release of more bytes than are live");
  }
}

void MemoryTracker::ReleaseAll() { live_.store(0, std::memory_order_relaxed); }

double MemoryTracker::pressure() const {
  if (budget_ == 0) return 0.0;
  return static_cast<double>(live_bytes()) / static_cast<double>(budget_);
}

}  // namespace s2::util
