#include "config/vendor.h"

#include <set>
#include <sstream>

namespace s2::config {

namespace {

std::string CommunityList(const std::vector<uint32_t>& communities) {
  std::string out;
  for (size_t i = 0; i < communities.size(); ++i) {
    if (i) out += " ";
    out += std::to_string(communities[i]);
  }
  return out;
}

// ------------------------------------------------------------ Alpha emit

void EmitAlphaAcl(std::ostringstream& os, const Acl& acl) {
  os << "ip access-list " << acl.name << "\n";
  for (const AclEntry& entry : acl.entries) {
    os << " " << (entry.permit ? "permit" : "deny") << " "
       << (entry.src ? entry.src->ToString() : std::string("any")) << " "
       << (entry.dst ? entry.dst->ToString() : std::string("any")) << "\n";
  }
  os << "!\n";
}

void EmitAlphaRouteMap(std::ostringstream& os, const RouteMap& map) {
  int seq = 10;
  for (const RouteMapClause& clause : map.clauses) {
    os << "route-map " << map.name << " "
       << (clause.permit ? "permit" : "deny") << " " << seq << "\n";
    if (clause.match_covered_by) {
      os << " match ip-prefix " << clause.match_covered_by->ToString()
         << "\n";
    }
    if (!clause.match_any_community.empty()) {
      os << " match community " << CommunityList(clause.match_any_community)
         << "\n";
    }
    if (clause.set_local_pref) {
      os << " set local-preference " << *clause.set_local_pref << "\n";
    }
    if (clause.set_med) os << " set med " << *clause.set_med << "\n";
    if (!clause.add_communities.empty()) {
      os << " set community " << CommunityList(clause.add_communities)
         << " additive\n";
    }
    if (!clause.delete_communities.empty()) {
      os << " set comm-list " << CommunityList(clause.delete_communities)
         << " delete\n";
    }
    if (clause.as_path_prepend > 0) {
      os << " set as-path prepend " << clause.as_path_prepend << "\n";
    }
    if (clause.set_as_path_overwrite) os << " set as-path overwrite\n";
    if (clause.continue_next) os << " continue\n";
    seq += 10;
  }
  os << "!\n";
}

std::string EmitAlpha(const ViConfig& config) {
  std::ostringstream os;
  os << "hostname " << config.hostname << "\n!\n";
  os << "interface lo0\n ip address " << config.loopback.ToString()
     << "\n!\n";
  for (const Interface& iface : config.interfaces) {
    os << "interface " << iface.name << "\n ip address "
       << iface.address.ToString() << "/" << int(iface.prefix_length)
       << "\n";
    if (!iface.acl_in.empty()) {
      os << " ip access-group " << iface.acl_in << " in\n";
    }
    if (!iface.acl_out.empty()) {
      os << " ip access-group " << iface.acl_out << " out\n";
    }
    os << "!\n";
  }
  // Deterministic order: ACLs/route-maps in neighbor order were inserted
  // into hash maps; re-emit in interface order for stability, each object
  // once even when several references share it.
  std::set<std::string> emitted;
  for (const Interface& iface : config.interfaces) {
    for (const std::string& name : {iface.acl_in, iface.acl_out}) {
      if (const Acl* acl = config.FindAcl(name)) {
        if (emitted.insert(name).second) EmitAlphaAcl(os, *acl);
      }
    }
  }
  for (const BgpNeighbor& neighbor : config.bgp.neighbors) {
    for (const std::string& name :
         {neighbor.import_route_map, neighbor.export_route_map}) {
      if (const RouteMap* map = config.FindRouteMap(name)) {
        if (emitted.insert(name).second) EmitAlphaRouteMap(os, *map);
      }
    }
  }
  if (config.ospf.enabled) {
    os << "router ospf\n network all\n!\n";
  }
  if (config.bgp.enabled) {
    os << "router bgp " << config.bgp.asn << "\n";
    os << " maximum-paths " << config.bgp.max_paths << "\n";
    if (config.bgp.redistribute_ospf) os << " redistribute ospf\n";
    for (const auto& network : config.bgp.networks) {
      os << " network " << network.ToString() << "\n";
    }
    for (const BgpAggregate& agg : config.bgp.aggregates) {
      os << " aggregate-address " << agg.prefix.ToString();
      if (agg.summary_only) os << " summary-only";
      if (!agg.communities.empty()) {
        os << " community " << CommunityList(agg.communities);
      }
      os << "\n";
    }
    for (const BgpCondAdv& cond : config.bgp.cond_advs) {
      os << " advertise-conditional " << cond.advertise.ToString() << " "
         << (cond.advertise_if_present ? "exist" : "non-exist") << " "
         << cond.watch.ToString() << "\n";
    }
    for (const BgpNeighbor& neighbor : config.bgp.neighbors) {
      std::string peer = neighbor.peer_address.ToString();
      os << " neighbor " << peer << " remote-as " << neighbor.remote_as
         << "\n";
      os << " neighbor " << peer << " update-source "
         << neighbor.via_interface << "\n";
      if (!neighbor.import_route_map.empty()) {
        os << " neighbor " << peer << " route-map "
           << neighbor.import_route_map << " in\n";
      }
      if (!neighbor.export_route_map.empty()) {
        os << " neighbor " << peer << " route-map "
           << neighbor.export_route_map << " out\n";
      }
      if (neighbor.remove_private_as) {
        os << " neighbor " << peer << " remove-private-as\n";
      }
    }
    os << "!\n";
  }
  return os.str();
}

// ------------------------------------------------------------- Beta emit

void EmitBetaRouteMap(std::ostringstream& os, const RouteMap& map) {
  int seq = 10;
  for (const RouteMapClause& clause : map.clauses) {
    std::string head = "set policy-options policy " + map.name + " term " +
                       std::to_string(seq) + " ";
    os << head << (clause.permit ? "permit" : "deny") << "\n";
    if (clause.match_covered_by) {
      os << head << "from prefix " << clause.match_covered_by->ToString()
         << "\n";
    }
    for (uint32_t community : clause.match_any_community) {
      os << head << "from community " << community << "\n";
    }
    if (clause.set_local_pref) {
      os << head << "then local-preference " << *clause.set_local_pref
         << "\n";
    }
    if (clause.set_med) os << head << "then med " << *clause.set_med << "\n";
    for (uint32_t community : clause.add_communities) {
      os << head << "then community add " << community << "\n";
    }
    for (uint32_t community : clause.delete_communities) {
      os << head << "then community delete " << community << "\n";
    }
    if (clause.as_path_prepend > 0) {
      os << head << "then as-path-prepend " << clause.as_path_prepend
         << "\n";
    }
    if (clause.set_as_path_overwrite) os << head << "then as-path-overwrite\n";
    if (clause.continue_next) os << head << "then next-term\n";
    seq += 10;
  }
}

std::string EmitBeta(const ViConfig& config) {
  std::ostringstream os;
  os << "set system host-name " << config.hostname << "\n";
  os << "set interfaces lo0 address " << config.loopback.ToString() << "\n";
  for (const Interface& iface : config.interfaces) {
    os << "set interfaces " << iface.name << " address "
       << iface.address.ToString() << "/" << int(iface.prefix_length)
       << "\n";
    if (!iface.acl_in.empty()) {
      os << "set interfaces " << iface.name << " filter input "
         << iface.acl_in << "\n";
    }
    if (!iface.acl_out.empty()) {
      os << "set interfaces " << iface.name << " filter output "
         << iface.acl_out << "\n";
    }
  }
  std::set<std::string> emitted;
  for (const Interface& iface : config.interfaces) {
    for (const std::string& name : {iface.acl_in, iface.acl_out}) {
      const Acl* acl = config.FindAcl(name);
      if (!acl || !emitted.insert(name).second) continue;
      int term = 10;
      for (const AclEntry& entry : acl->entries) {
        os << "set firewall filter " << acl->name << " term " << term << " "
           << (entry.permit ? "permit" : "deny") << " from "
           << (entry.src ? entry.src->ToString() : std::string("any"))
           << " to "
           << (entry.dst ? entry.dst->ToString() : std::string("any"))
           << "\n";
        term += 10;
      }
    }
  }
  for (const BgpNeighbor& neighbor : config.bgp.neighbors) {
    for (const std::string& name :
         {neighbor.import_route_map, neighbor.export_route_map}) {
      if (const RouteMap* map = config.FindRouteMap(name)) {
        if (emitted.insert(name).second) EmitBetaRouteMap(os, *map);
      }
    }
  }
  if (config.ospf.enabled) os << "set protocols ospf enable\n";
  if (config.bgp.enabled) {
    os << "set protocols bgp local-as " << config.bgp.asn << "\n";
    os << "set protocols bgp multipath " << config.bgp.max_paths << "\n";
    if (config.bgp.redistribute_ospf) {
      os << "set protocols bgp redistribute-ospf\n";
    }
    for (const auto& network : config.bgp.networks) {
      os << "set protocols bgp network " << network.ToString() << "\n";
    }
    for (const BgpAggregate& agg : config.bgp.aggregates) {
      os << "set protocols bgp aggregate " << agg.prefix.ToString();
      if (agg.summary_only) os << " summary-only";
      if (!agg.communities.empty()) {
        os << " community " << CommunityList(agg.communities);
      }
      os << "\n";
    }
    for (const BgpCondAdv& cond : config.bgp.cond_advs) {
      os << "set protocols bgp conditional-advertise "
         << cond.advertise.ToString() << " "
         << (cond.advertise_if_present ? "exist" : "non-exist") << " "
         << cond.watch.ToString() << "\n";
    }
    for (const BgpNeighbor& neighbor : config.bgp.neighbors) {
      std::string head =
          "set protocols bgp neighbor " + neighbor.peer_address.ToString() +
          " ";
      os << head << "peer-as " << neighbor.remote_as << "\n";
      os << head << "local-interface " << neighbor.via_interface << "\n";
      if (!neighbor.import_route_map.empty()) {
        os << head << "import " << neighbor.import_route_map << "\n";
      }
      if (!neighbor.export_route_map.empty()) {
        os << head << "export " << neighbor.export_route_map << "\n";
      }
      if (neighbor.remove_private_as) os << head << "remove-private\n";
    }
  }
  return os.str();
}

}  // namespace

// --------------------------------------------------------------- compile

ViConfig CompileIntent(const topo::Network& network, topo::NodeId id) {
  const topo::NodeIntent& intent = network.intents[id];
  const topo::NodeInfo& info = network.graph.node(id);
  ViConfig config;
  config.hostname = info.name;
  config.vendor = intent.vendor;
  config.loopback = intent.loopback;

  config.bgp.enabled = true;
  config.bgp.asn = intent.asn;
  config.bgp.max_paths = intent.max_ecmp_paths;
  config.bgp.networks = intent.announced;
  config.bgp.redistribute_ospf = intent.redistribute_ospf_into_bgp;
  config.ospf.enabled = intent.enable_ospf;
  for (const topo::AggregateIntent& agg : intent.aggregates) {
    config.bgp.aggregates.push_back(
        BgpAggregate{agg.prefix, agg.summary_only, agg.communities});
  }
  for (const topo::CondAdvIntent& cond : intent.cond_advs) {
    config.bgp.cond_advs.push_back(
        BgpCondAdv{cond.advertise, cond.watch, cond.advertise_if_present});
  }

  for (const topo::InterfaceIntent& iface : intent.interfaces) {
    Interface vi_iface;
    vi_iface.name = iface.name;
    vi_iface.address = iface.address;
    vi_iface.prefix_length = iface.prefix_length;

    // ACLs.
    auto compile_acl = [&](const std::vector<topo::AclRuleIntent>& rules,
                           const std::string& name) -> std::string {
      if (rules.empty()) return "";
      Acl acl;
      acl.name = name;
      for (const topo::AclRuleIntent& rule : rules) {
        acl.entries.push_back(AclEntry{rule.permit, rule.src, rule.dst});
      }
      acl.entries.push_back(AclEntry{true, std::nullopt, std::nullopt});
      config.acls.emplace(acl.name, acl);
      return name;
    };
    vi_iface.acl_in = compile_acl(iface.acl_in, "ACLI_" + iface.name);
    vi_iface.acl_out = compile_acl(iface.acl_out, "ACLO_" + iface.name);
    config.interfaces.push_back(vi_iface);

    // BGP neighbor over this interface. /31 point-to-point: the peer holds
    // the other address of the pair.
    BgpNeighbor neighbor;
    neighbor.peer_address = util::Ipv4Address(iface.address.bits() ^ 1u);
    neighbor.remote_as = network.intents[iface.peer].asn;
    neighbor.via_interface = iface.name;
    neighbor.remove_private_as = intent.remove_private_as;

    // Import policy: local-pref and ingress tags.
    if (iface.import_local_pref != 100 ||
        !iface.import_tag_communities.empty()) {
      RouteMap map;
      map.name = "IMP_" + iface.name;
      RouteMapClause clause;
      clause.permit = true;
      if (iface.import_local_pref != 100) {
        clause.set_local_pref = iface.import_local_pref;
      }
      clause.add_communities = iface.import_tag_communities;
      map.clauses.push_back(clause);
      config.route_maps.emplace(map.name, map);
      neighbor.import_route_map = map.name;
    }

    // Export policy: denies, permit-only filter, tag-and-continue clauses,
    // then a final permit (with downward AS_PATH overwrite).
    const topo::PeerPolicyIntent& policy = iface.export_policy;
    bool overwrite_down =
        intent.overwrite_as_path &&
        network.graph.node(iface.peer).layer < info.layer;
    if (!policy.deny_export_communities.empty() ||
        !policy.permit_only_communities.empty() ||
        !policy.tag_matching.empty() || policy.as_path_prepend > 0 ||
        overwrite_down) {
      RouteMap map;
      map.name = "EXP_" + iface.name;
      if (!policy.deny_export_communities.empty()) {
        RouteMapClause deny;
        deny.permit = false;
        deny.match_any_community = policy.deny_export_communities;
        map.clauses.push_back(deny);
      }
      if (!policy.permit_only_communities.empty()) {
        RouteMapClause only;
        only.permit = true;
        only.match_any_community = policy.permit_only_communities;
        only.set_as_path_overwrite = overwrite_down;
        map.clauses.push_back(only);
        // No final permit: everything else hits the implicit deny.
      } else {
        for (const auto& [prefix, community] : policy.tag_matching) {
          RouteMapClause tag;
          tag.permit = true;
          tag.continue_next = true;
          tag.match_covered_by = prefix;
          tag.add_communities = {community};
          map.clauses.push_back(tag);
        }
        RouteMapClause all;
        all.permit = true;
        all.set_as_path_overwrite = overwrite_down;
        all.as_path_prepend = policy.as_path_prepend;
        map.clauses.push_back(all);
      }
      config.route_maps.emplace(map.name, map);
      neighbor.export_route_map = map.name;
    }
    config.bgp.neighbors.push_back(std::move(neighbor));
  }
  return config;
}

std::string EmitConfig(const ViConfig& config) {
  return config.vendor == topo::Vendor::kAlpha ? EmitAlpha(config)
                                               : EmitBeta(config);
}

std::vector<std::string> SynthesizeConfigs(const topo::Network& network) {
  std::vector<std::string> configs;
  configs.reserve(network.graph.size());
  for (topo::NodeId id = 0; id < network.graph.size(); ++id) {
    configs.push_back(EmitConfig(CompileIntent(network, id)));
  }
  return configs;
}

}  // namespace s2::config
