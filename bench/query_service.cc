// Standalone verification-as-a-service benchmark + CI gate: converge the
// default DCN once, publish a snapshot, serve 1000 queries. See
// query_service_bench.h for what is measured and gated (warm >= 3x cold,
// verdict fidelity vs batch, svc.* counters in the run report).
//
// Flags: --serves=N (default 1000) plus the shared --trace_out/--report_out.
#include "query_service_bench.h"

using namespace s2;
using namespace s2::bench;

int main(int argc, char** argv) {
  size_t serves = 1000;
  std::vector<char*> rest = {argv[0]};
  const std::string kServes = "--serves=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.compare(0, kServes.size(), kServes) == 0) {
      serves = static_cast<size_t>(std::stoull(arg.substr(kServes.size())));
    } else {
      rest.push_back(argv[i]);
    }
  }
  ObsOptions obs = ParseObsFlags(static_cast<int>(rest.size()), rest.data());
  int rc = RunQueryServiceMode(serves);
  FinishObs(obs);
  return rc;
}
