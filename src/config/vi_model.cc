#include "config/vi_model.h"

namespace s2::config {

const Interface* ViConfig::FindInterface(const std::string& name) const {
  for (const Interface& iface : interfaces) {
    if (iface.name == name) return &iface;
  }
  return nullptr;
}

const RouteMap* ViConfig::FindRouteMap(const std::string& name) const {
  auto it = route_maps.find(name);
  return it == route_maps.end() ? nullptr : &it->second;
}

const Acl* ViConfig::FindAcl(const std::string& name) const {
  auto it = acls.find(name);
  return it == acls.end() ? nullptr : &it->second;
}

util::Ipv4Prefix ViConfig::ConnectedPrefix(const Interface& iface) {
  return util::Ipv4Prefix(iface.address, iface.prefix_length);
}

}  // namespace s2::config
