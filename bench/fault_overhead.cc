// Overhead of the reliable-delivery envelope at zero fault rate (ISSUE
// acceptance: < 10% on the fig6 workload). Runs the k=8 fat-tree all-pair
// verification with the default direct fabric and again with sequence
// numbers, cumulative acks, and retransmit timers armed but no injector —
// the steady-state cost a real deployment would pay for fault tolerance.
//
// Also reports, for context, a faulty run (10% drop + duplication +
// reordering + two worker crashes) to show convergence still holds when
// the protocol earns its keep.
#include "bench_util.h"

namespace s2::bench {
namespace {

constexpr int kRepeats = 5;

struct Sample {
  double wall_seconds = 0;
  core::VerifyResult result;
};

void MeasureOnce(const ObsOptions& obs, const BuiltNetwork& built,
                 const dp::Query& query,
                 const dist::ControllerOptions& options, int repeat,
                 Sample& best) {
  core::S2Verifier verifier(options);
  util::Stopwatch watch;
  core::VerifyResult result = verifier.Verify(built.parsed, {query});
  double seconds = watch.ElapsedSeconds();
  CaptureReport(obs, verifier, result);
  if (repeat == 0 || seconds < best.wall_seconds) {
    best.wall_seconds = seconds;
    best.result = std::move(result);
  }
}

int Main(const ObsOptions& obs) {
  BuiltNetwork built = BuildFatTree(8);
  dp::Query query = AllPairQuery(built.parsed);

  dist::ControllerOptions direct = S2Options(8, kShards);
  dist::ControllerOptions reliable = direct;
  reliable.reliable_delivery = true;

  dist::ControllerOptions chaotic = direct;
  fault::FaultPlan plan;
  plan.seed = 11;
  plan.default_link.drop = 0.10;
  plan.default_link.duplicate = 0.05;
  plan.default_link.reorder = 0.05;
  plan.crashes.push_back({fault::CrashPhase::kControlPlaneRound, 3, 1});
  plan.crashes.push_back({fault::CrashPhase::kControlPlaneRound, 6, 5});
  chaotic.fault_plan = plan;

  std::printf("fault_overhead: %s, 8 workers, %d shards, best of %d\n\n",
              PaperSize(8), kShards, kRepeats);
  // Interleave the modes so slow drift in machine load (shared runners)
  // biases neither side of the comparison.
  Sample base, envelope, faulty;
  for (int r = 0; r < kRepeats; ++r) {
    MeasureOnce(obs, built, query, direct, r, base);
    MeasureOnce(obs, built, query, reliable, r, envelope);
    MeasureOnce(obs, built, query, chaotic, r, faulty);
  }

  std::printf("%-22s %10s %12s %12s %12s %10s\n", "mode", "status", "wall",
              "retransmits", "dropped", "recovered");
  auto row = [](const char* label, const Sample& sample) {
    std::printf("%-22s %10s %12s %12zu %12zu %10zu\n", label,
                core::RunStatusName(sample.result.status),
                core::HumanSeconds(sample.wall_seconds).c_str(),
                sample.result.retransmits, sample.result.frames_dropped,
                sample.result.worker_recoveries);
  };
  row("direct", base);
  row("reliable (0 faults)", envelope);
  row("10% drop + 2 crashes", faulty);

  double overhead =
      (envelope.wall_seconds - base.wall_seconds) / base.wall_seconds;
  std::printf("\nreliable-envelope overhead at zero fault rate: %+.1f%%"
              " (target < 10%%)\n",
              overhead * 100.0);

  bool same_verdicts =
      base.result.ok() && faulty.result.ok() &&
      base.result.queries[0].reachable_pairs ==
          faulty.result.queries[0].reachable_pairs &&
      base.result.queries[0].unreachable_pairs ==
          faulty.result.queries[0].unreachable_pairs &&
      base.result.total_best_routes == faulty.result.total_best_routes;
  std::printf("faulty run verdicts match direct run: %s\n",
              same_verdicts ? "yes" : "NO — protocol bug");
  return (overhead < 0.10 && same_verdicts) ? 0 : 1;
}

}  // namespace
}  // namespace s2::bench

int main(int argc, char** argv) {
  s2::bench::ObsOptions obs = s2::bench::ParseObsFlags(argc, argv);
  int rc = s2::bench::Main(obs);
  s2::bench::FinishObs(obs);
  return rc;
}
