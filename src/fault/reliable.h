// Reliable-delivery envelope over dist::Message (the protocol a real
// sidecar deployment needs: gRPC in the paper's testbed can lose, delay,
// duplicate, and reorder whole RPCs when links or processes misbehave).
//
// Per directed (sender worker, receiver worker) channel:
//   - data frames carry a monotonically increasing sequence number;
//   - the receiver delivers strictly in sequence order, buffering
//     out-of-order arrivals and suppressing duplicates, so the application
//     sees each shipped message exactly once, in order;
//   - the receiver returns cumulative acks; unacked frames are
//     retransmitted on a round-based timeout with capped exponential
//     backoff (fresh injector randomness per attempt, so a lossy link
//     cannot swallow a frame forever).
//
// Logical time is the global drain round: every worker drains its sidecar
// exactly once per orchestrator round (CPO phase B / DPO forward round),
// so `drains / num_workers` advances identically in every run regardless
// of thread interleaving. All methods are called under the owning
// SidecarFabric's lock; the class itself is not synchronized.
//
// For crash recovery the transport also keeps, per receiver, a replay log
// of delivered messages tagged with their delivery round, truncated at
// checkpoint barriers (fault/checkpoint.h).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "dist/message.h"
#include "fault/injector.h"

namespace s2::fault {

// One delivered message as remembered for post-crash replay.
struct LoggedDelivery {
  int round = 0;
  dist::Message message;
};

class ReliableTransport {
 public:
  struct Stats {
    size_t data_frames = 0;       // first transmissions
    size_t retransmits = 0;
    size_t acks = 0;
    size_t wire_bytes = 0;        // payload bytes incl. retransmits
    size_t dropped = 0;           // injector-dropped frames (any kind)
    size_t duplicated = 0;
    size_t delayed = 0;
    size_t reordered = 0;
    size_t duplicates_suppressed = 0;  // receiver-side
    size_t out_of_order = 0;           // buffered for resequencing
  };

  // `injector` may be null (pure reliability, zero faults); `tuning`
  // provides the RTO parameters either way.
  ReliableTransport(uint32_t num_workers, const FaultPlan& tuning,
                    const FaultInjector* injector, bool keep_replay_log);

  // Sender path: assigns the next channel sequence number, buffers the
  // message for retransmission, and enqueues frames through the injector.
  void Ship(uint32_t from, uint32_t to, dist::Message message);

  // Receiver path: advances logical time, retransmits expired frames,
  // processes acks, and returns the in-order new messages for `worker`.
  std::vector<dist::Message> Drain(uint32_t worker);

  // True while any frame is queued (including delayed ones) or any data
  // frame is unacked — the fabric-level quiescence test.
  bool HasPending() const;

  size_t QueueDepth(uint32_t worker) const {
    return queues_[worker].size();
  }
  size_t MaxQueueDepth(uint32_t worker) const {
    return max_queue_depth_[worker];
  }

  // Completed global drain rounds (drains / num_workers).
  int CurrentRound() const {
    return static_cast<int>(drains_ / num_workers_);
  }

  // ------------------------------------------------------------ recovery
  void MarkCheckpoint(uint32_t worker) { replay_logs_[worker].clear(); }
  std::vector<LoggedDelivery> ReplayLog(uint32_t worker) const {
    return replay_logs_[worker];
  }

  const Stats& stats() const { return stats_; }

 private:
  // Frames are headers only: payloads stay in the sender's custody buffer
  // (`Pending`) until the first in-order delivery moves them out, so the
  // fault-free path copies nothing — a frame whose payload is gone can only
  // be a retransmit or duplicate the receiver suppresses by seq alone.
  struct Frame {
    enum class Kind : uint8_t { kData, kAck };
    Kind kind = Kind::kData;
    uint32_t from = 0;
    uint32_t to = 0;
    uint64_t seq = 0;  // data: channel sequence; ack: cumulative ack
    int ready_round = 0;
    bool demoted = false;  // reorder fault: deliver after the batch
  };

  struct Pending {
    dist::Message message;   // moved out at first delivery
    size_t wire_bytes = 0;   // cached for retransmit accounting
    uint32_t attempts = 0;
    int next_retry_round = 0;
  };

  struct Channel {
    // Sender side.
    uint64_t next_seq = 0;  // last assigned (sequences start at 1)
    std::map<uint64_t, Pending> unacked;
    // Receiver side.
    uint64_t delivered_cum = 0;  // highest contiguously delivered
    std::map<uint64_t, dist::Message> resequence;
    uint64_t ack_counter = 0;  // randomness stream for ack frames
    bool ack_due = false;      // data activity since the last ack
  };

  Channel& ChannelFor(uint32_t from, uint32_t to) {
    return channels_[from * num_workers_ + to];
  }
  int RtoRounds(uint32_t attempts) const;
  void Enqueue(Frame frame);
  // Runs `frame` through the injector and enqueues the surviving copies.
  // `wire_bytes` is the payload size this transmission accounts for.
  void Transmit(Frame frame, uint64_t fate_seq, uint32_t attempt, int round,
                size_t wire_bytes);
  void DeliverData(const Frame& frame, int round,
                   std::vector<dist::Message>& out);

  uint32_t num_workers_;
  int initial_rto_;
  int max_rto_;
  const FaultInjector* injector_;
  bool keep_replay_log_;

  std::vector<std::vector<Frame>> queues_;  // per receiving worker
  std::vector<Channel> channels_;           // from * n + to
  std::vector<std::vector<LoggedDelivery>> replay_logs_;
  std::vector<size_t> max_queue_depth_;
  uint64_t drains_ = 0;
  Stats stats_;
};

}  // namespace s2::fault
