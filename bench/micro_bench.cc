// Microbenchmarks (google-benchmark) for the hot substrate operations
// underneath the figure harnesses: BDD apply/serialize, route
// serialization, route-map evaluation, best-path selection, the
// partitioner, and config parsing.
#include <benchmark/benchmark.h>

#include "bdd/bdd_io.h"
#include "config/parser.h"
#include "config/vendor.h"
#include "cp/policy.h"
#include "cp/rib.h"
#include "dp/packet.h"
#include "obs/trace.h"
#include "topo/fattree.h"
#include "topo/partition.h"

namespace {

using namespace s2;

// ------------------------------------------------------------- tracing

// The cost contract instrumented hot paths rely on: a disabled Span is one
// relaxed atomic load plus trivial construction (ISSUE budget: <2% on any
// instrumented loop).
void BM_TracerDisabledSpan(benchmark::State& state) {
  obs::Tracer::Get().Disable();
  for (auto _ : state) {
    obs::Span span("bench", "bench.disabled");
    span.Arg("i", 1);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_TracerDisabledSpan);

void BM_TracerEnabledSpan(benchmark::State& state) {
  obs::Tracer::Get().Enable();
  size_t i = 0;
  for (auto _ : state) {
    // Re-Enable (which clears the buffer) periodically so the event vector
    // doesn't grow without bound across iterations.
    if ((++i & 0x3FFF) == 0) obs::Tracer::Get().Enable();
    obs::Span span("bench", "bench.enabled");
    span.Arg("i", 1);
    benchmark::DoNotOptimize(&span);
  }
  obs::Tracer::Get().Disable();
  obs::Tracer::Get().Clear();
}
BENCHMARK(BM_TracerEnabledSpan);

// ------------------------------------------------------------------ BDD

void BM_BddPrefixMatch(benchmark::State& state) {
  bdd::Manager manager(32);
  dp::PacketCodec codec(&manager, dp::HeaderLayout{32, 0, 0});
  uint32_t i = 0;
  for (auto _ : state) {
    auto prefix = util::Ipv4Prefix(
        util::Ipv4Address((10u << 24) | ((i++ % 4096) << 8)), 24);
    benchmark::DoNotOptimize(codec.DstIn(prefix));
  }
}
BENCHMARK(BM_BddPrefixMatch);

void BM_BddUnionOfPrefixes(benchmark::State& state) {
  bdd::Manager manager(32);
  dp::PacketCodec codec(&manager, dp::HeaderLayout{32, 0, 0});
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    bdd::Bdd acc = manager.Zero();
    for (int i = 0; i < n; ++i) {
      acc |= codec.DstIn(util::Ipv4Prefix(
          util::Ipv4Address((10u << 24) | (uint32_t(i) << 8)), 24));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BddUnionOfPrefixes)->Arg(16)->Arg(64)->Arg(256);

void BM_BddSerializeRoundTrip(benchmark::State& state) {
  bdd::Manager a(32), b(32);
  dp::PacketCodec codec(&a, dp::HeaderLayout{32, 0, 0});
  bdd::Bdd f = a.Zero();
  for (int i = 0; i < 64; ++i) {
    f |= codec.DstIn(util::Ipv4Prefix(
        util::Ipv4Address((10u << 24) | (uint32_t(i) << 8)), 24));
  }
  for (auto _ : state) {
    auto bytes = bdd::Serialize(f);
    benchmark::DoNotOptimize(bdd::DeserializeInto(b, bytes));
  }
}
BENCHMARK(BM_BddSerializeRoundTrip);

// ---------------------------------------------------------------- routes

// Benchmark routes intern into a process-lifetime pool (leaked so handles
// in static benchmark state can never outlive it).
cp::AttrPool& BenchPool() {
  static cp::AttrPool* pool = new cp::AttrPool();
  return *pool;
}

cp::AttrTuple BenchTuple() {
  cp::AttrTuple tuple;
  tuple.as_path = {65001, 65002, 65003, 65004};
  tuple.communities = {100, 200, 500};
  return tuple;
}

cp::Route BenchRoute() {
  cp::Route r;
  r.prefix = util::MustParsePrefix("10.1.2.0/24");
  r.attrs = BenchPool().Intern(BenchTuple());
  r.learned_from = 3;
  return r;
}

void BM_RouteSerializeBatch(benchmark::State& state) {
  std::vector<cp::RouteUpdate> updates(
      static_cast<size_t>(state.range(0)),
      cp::RouteUpdate{BenchRoute().prefix, false, BenchRoute()});
  for (auto _ : state) {
    std::vector<uint8_t> bytes;
    cp::SerializeRoutes(updates, bytes);
    benchmark::DoNotOptimize(cp::DeserializeRoutes(bytes, BenchPool()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RouteSerializeBatch)->Arg(64)->Arg(1024);

void BM_RouteMapEvaluation(benchmark::State& state) {
  config::RouteMap map;
  map.name = "RM";
  config::RouteMapClause deny;
  deny.permit = false;
  deny.match_any_community = {999};
  config::RouteMapClause tag;
  tag.permit = true;
  tag.continue_next = true;
  tag.match_covered_by = util::MustParsePrefix("10.0.0.0/8");
  tag.add_communities = {200};
  config::RouteMapClause all;
  all.permit = true;
  map.clauses = {deny, tag, all};
  cp::Route route = BenchRoute();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cp::ApplyRouteMap(&map, route, 65000, BenchPool()));
  }
}
BENCHMARK(BM_RouteMapEvaluation);

void BM_BestPathSelection(benchmark::State& state) {
  cp::Rib rib(nullptr);
  const int candidates = static_cast<int>(state.range(0));
  // Three attribute variants, interned once — the loop measures RIB work,
  // not interning.
  std::vector<cp::Route> variants;
  for (uint32_t v = 0; v < 3; ++v) {
    cp::Route r = BenchRoute();
    r.MutateAttrs(BenchPool(),
                  [&](cp::AttrTuple& t) { t.as_path[0] = 65001 + v; });
    variants.push_back(std::move(r));
  }
  for (auto _ : state) {
    for (int n = 0; n < candidates; ++n) {
      cp::Route r = variants[static_cast<size_t>(n) % 3];
      r.learned_from = static_cast<topo::NodeId>(n);
      rib.Upsert(r.learned_from, r);
    }
    benchmark::DoNotOptimize(rib.RecomputeDirty(64));
  }
  state.SetItemsProcessed(state.iterations() * candidates);
}
BENCHMARK(BM_BestPathSelection)->Arg(8)->Arg(64);

// ------------------------------------------------------- attribute pool

// Hit path: the tuple is already interned; Intern hashes, takes the pool
// lock, and bumps a refcount.
void BM_AttrInternHit(benchmark::State& state) {
  cp::AttrPool pool;
  cp::AttrHandle keep = pool.Intern(BenchTuple());
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Intern(BenchTuple()));
  }
}
BENCHMARK(BM_AttrInternHit);

// Miss path: every iteration interns a tuple the pool has never seen and
// immediately drops it, so the cycle is insert + refcount-zero eviction.
void BM_AttrInternMissEvict(benchmark::State& state) {
  cp::AttrPool pool;
  uint32_t n = 0;
  for (auto _ : state) {
    cp::AttrTuple tuple = BenchTuple();
    tuple.med = ++n;
    benchmark::DoNotOptimize(pool.Intern(std::move(tuple)));
  }
}
BENCHMARK(BM_AttrInternMissEvict);

// Copying an interned Route is a handle copy (one relaxed atomic add) —
// versus the deep vector copy every Route copy paid before interning.
void BM_RouteHandleCopy(benchmark::State& state) {
  cp::Route route = BenchRoute();
  for (auto _ : state) {
    cp::Route copy = route;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_RouteHandleCopy);

void BM_RouteDeepAttrCopy(benchmark::State& state) {
  cp::AttrTuple tuple = BenchTuple();
  for (auto _ : state) {
    cp::AttrTuple copy = tuple;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_RouteDeepAttrCopy);

// RIB upsert throughput with interned candidates: the common converged
// iteration re-offers an identical route (handle-identity equality).
void BM_RibUpsertSteadyState(benchmark::State& state) {
  cp::Rib rib(nullptr);
  cp::Route route = BenchRoute();
  rib.Upsert(route.learned_from, route);
  rib.RecomputeDirty(64);
  for (auto _ : state) {
    rib.Upsert(route.learned_from, route);
    benchmark::DoNotOptimize(rib.RecomputeDirty(64));
  }
}
BENCHMARK(BM_RibUpsertSteadyState);

// ----------------------------------------------------- parse & partition

void BM_ParseFatTreeConfigs(benchmark::State& state) {
  topo::FatTreeParams params;
  params.k = 6;
  auto configs = config::SynthesizeConfigs(topo::MakeFatTree(params));
  for (auto _ : state) {
    benchmark::DoNotOptimize(config::ParseNetwork(configs));
  }
  state.SetItemsProcessed(state.iterations() * configs.size());
}
BENCHMARK(BM_ParseFatTreeConfigs);

void BM_MetisLikePartition(benchmark::State& state) {
  topo::FatTreeParams params;
  params.k = static_cast<int>(state.range(0));
  topo::Network net = topo::MakeFatTree(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::Partition(
        net.graph, 8, topo::PartitionScheme::kMetisLike));
  }
}
BENCHMARK(BM_MetisLikePartition)->Arg(8)->Arg(16);

}  // namespace
