#include "fault/checkpoint.h"

#include <algorithm>

#include "bdd/bdd_io.h"
#include "cp/route.h"
#include "util/status.h"

namespace s2::fault {

namespace {

void PutBddSection(std::vector<uint8_t>& out, const bdd::Bdd& f) {
  std::vector<uint8_t> chunk = bdd::Serialize(f);
  cp::PutWireU32(out, static_cast<uint32_t>(chunk.size()));
  out.insert(out.end(), chunk.begin(), chunk.end());
}

bdd::Bdd GetBddSection(bdd::Manager& manager,
                       const std::vector<uint8_t>& bytes, size_t& pos) {
  uint32_t len = cp::GetWireU32(bytes, pos);
  if (len > bytes.size() - pos) {
    throw util::WireFormatError("BDD section exceeds checkpoint bytes");
  }
  std::vector<uint8_t> chunk(bytes.data() + pos, bytes.data() + pos + len);
  pos += len;
  return bdd::DeserializeInto(manager, chunk);
}

// Per-port predicate maps are unordered; serialize in sorted neighbor
// order so equal predicates always produce equal bytes.
void PutPortMap(std::vector<uint8_t>& out,
                const std::unordered_map<topo::NodeId, bdd::Bdd>& ports) {
  std::vector<topo::NodeId> ids;
  ids.reserve(ports.size());
  for (const auto& [id, f] : ports) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  cp::PutWireU32(out, static_cast<uint32_t>(ids.size()));
  for (topo::NodeId id : ids) {
    cp::PutWireU32(out, id);
    PutBddSection(out, ports.at(id));
  }
}

std::unordered_map<topo::NodeId, bdd::Bdd> GetPortMap(
    bdd::Manager& manager, const std::vector<uint8_t>& bytes, size_t& pos) {
  std::unordered_map<topo::NodeId, bdd::Bdd> ports;
  uint32_t count = cp::GetWireU32(bytes, pos);
  // Each entry is at least an id plus an empty BDD section (two u32s).
  if (count > (bytes.size() - pos) / 8) {
    throw util::WireFormatError("port map count exceeds checkpoint bytes");
  }
  for (uint32_t i = 0; i < count; ++i) {
    topo::NodeId id = cp::GetWireU32(bytes, pos);
    ports.emplace(id, GetBddSection(manager, bytes, pos));
  }
  return ports;
}

}  // namespace

size_t WorkerCheckpoint::TotalBytes() const {
  size_t total = 0;
  for (const auto& [node, bytes] : node_state) total += bytes.size();
  for (const auto& [node, bytes] : predicate_state) total += bytes.size();
  return total;
}

std::vector<uint8_t> SerializePredicates(const dp::NodePredicates& preds) {
  std::vector<uint8_t> out;
  PutBddSection(out, preds.arrive);
  PutBddSection(out, preds.exit);
  PutBddSection(out, preds.discard);
  PutPortMap(out, preds.forward);
  PutPortMap(out, preds.acl_in);
  PutPortMap(out, preds.acl_out);
  return out;
}

dp::NodePredicates DeserializePredicates(bdd::Manager& manager,
                                         const std::vector<uint8_t>& bytes) {
  dp::NodePredicates preds;
  size_t pos = 0;
  preds.arrive = GetBddSection(manager, bytes, pos);
  preds.exit = GetBddSection(manager, bytes, pos);
  preds.discard = GetBddSection(manager, bytes, pos);
  preds.forward = GetPortMap(manager, bytes, pos);
  preds.acl_in = GetPortMap(manager, bytes, pos);
  preds.acl_out = GetPortMap(manager, bytes, pos);
  return preds;
}

}  // namespace s2::fault
