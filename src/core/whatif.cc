#include "core/whatif.h"

#include <algorithm>
#include <map>

namespace s2::core {

namespace {

// Removes the interface with `address` from `config`, together with the
// BGP session riding on it.
void RemoveInterface(config::ViConfig& config, util::Ipv4Address address) {
  config.interfaces.erase(
      std::remove_if(config.interfaces.begin(), config.interfaces.end(),
                     [&](const config::Interface& iface) {
                       return iface.address == address;
                     }),
      config.interfaces.end());
  util::Ipv4Address peer_address(address.bits() ^ 1u);
  auto& neighbors = config.bgp.neighbors;
  neighbors.erase(std::remove_if(neighbors.begin(), neighbors.end(),
                                 [&](const config::BgpNeighbor& neighbor) {
                                   return neighbor.peer_address ==
                                          peer_address;
                                 }),
                  neighbors.end());
}

}  // namespace

config::ParsedNetwork RemoveLink(const config::ParsedNetwork& network,
                                 topo::NodeId a, topo::NodeId b) {
  config::ParsedNetwork copy = network;
  // Collect the /31 endpoints joining a and b (possibly several parallel
  // links) before mutating anything.
  std::vector<util::Ipv4Address> a_side, b_side;
  for (const config::Interface& iface : copy.configs[a].interfaces) {
    auto other =
        copy.address_book.find(iface.address.bits() ^ 1u);
    if (other != copy.address_book.end() && other->second.first == b) {
      a_side.push_back(iface.address);
      b_side.push_back(util::Ipv4Address(iface.address.bits() ^ 1u));
    }
  }
  for (util::Ipv4Address address : a_side) {
    RemoveInterface(copy.configs[a], address);
  }
  for (util::Ipv4Address address : b_side) {
    RemoveInterface(copy.configs[b], address);
  }
  config::ReindexParsedNetwork(copy);
  return copy;
}

config::ParsedNetwork FailNode(const config::ParsedNetwork& network,
                               topo::NodeId node) {
  config::ParsedNetwork copy = network;
  // Detach every neighbor's side first (while the address book still
  // resolves), then strip the device itself.
  std::vector<std::pair<topo::NodeId, util::Ipv4Address>> remote_sides;
  for (const config::Interface& iface : copy.configs[node].interfaces) {
    auto other = copy.address_book.find(iface.address.bits() ^ 1u);
    if (other != copy.address_book.end()) {
      remote_sides.emplace_back(
          other->second.first, util::Ipv4Address(iface.address.bits() ^ 1u));
    }
  }
  for (const auto& [peer, address] : remote_sides) {
    RemoveInterface(copy.configs[peer], address);
  }
  copy.configs[node].interfaces.clear();
  copy.configs[node].bgp.neighbors.clear();
  config::ReindexParsedNetwork(copy);
  return copy;
}

std::vector<ReachabilityChange> DiffReachability(
    const dp::QueryResult& before, const dp::QueryResult& after) {
  std::map<std::pair<topo::NodeId, topo::NodeId>, bool> was, now;
  for (const dp::ReachabilityPair& pair : before.reachability) {
    was[{pair.src, pair.dst}] = pair.reachable;
  }
  for (const dp::ReachabilityPair& pair : after.reachability) {
    now[{pair.src, pair.dst}] = pair.reachable;
  }
  std::vector<ReachabilityChange> changes;
  auto collect = [&](const auto& keys) {
    for (const auto& [key, unused] : keys) {
      auto was_it = was.find(key);
      auto now_it = now.find(key);
      bool before_ok = was_it != was.end() && was_it->second;
      bool after_ok = now_it != now.end() && now_it->second;
      if (before_ok != after_ok) {
        changes.push_back(ReachabilityChange{key.first, key.second,
                                             before_ok, after_ok});
      }
    }
  };
  collect(was);
  // Pairs only present after (new ownership): report those too.
  for (const auto& [key, reachable] : now) {
    if (!was.count(key)) {
      bool after_ok = reachable;
      if (after_ok) {
        changes.push_back(
            ReachabilityChange{key.first, key.second, false, true});
      }
    }
  }
  std::sort(changes.begin(), changes.end(),
            [](const ReachabilityChange& x, const ReachabilityChange& y) {
              return std::tie(x.src, x.dst) < std::tie(y.src, y.dst);
            });
  return changes;
}

}  // namespace s2::core
