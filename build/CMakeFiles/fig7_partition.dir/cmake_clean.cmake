file(REMOVE_RECURSE
  "CMakeFiles/fig7_partition.dir/bench/fig7_partition.cc.o"
  "CMakeFiles/fig7_partition.dir/bench/fig7_partition.cc.o.d"
  "bench/fig7_partition"
  "bench/fig7_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
