file(REMOVE_RECURSE
  "CMakeFiles/cpo_dpo_test.dir/cpo_dpo_test.cc.o"
  "CMakeFiles/cpo_dpo_test.dir/cpo_dpo_test.cc.o.d"
  "cpo_dpo_test"
  "cpo_dpo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpo_dpo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
