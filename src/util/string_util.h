// Small string helpers shared by the config emitters/parsers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace s2::util {

// Splits on any run of characters in `delims`; empty tokens are dropped.
std::vector<std::string> SplitTokens(std::string_view text,
                                     std::string_view delims = " \t");

// Splits into lines (on '\n'); keeps empty lines out.
std::vector<std::string> SplitLines(std::string_view text);

std::string Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);

// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

}  // namespace s2::util
