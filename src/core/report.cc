#include "core/report.h"

#include <fstream>
#include <sstream>

namespace s2::core {

namespace {

void AppendMetrics(std::ostringstream& os, const char* name,
                   const dist::RoundMetrics& metrics) {
  os << "\"" << name << "\":{"
     << "\"rounds\":" << metrics.rounds << ","
     << "\"wall_seconds\":" << metrics.wall_seconds << ","
     << "\"modeled_seconds\":" << metrics.modeled_seconds << ","
     << "\"comm_bytes\":" << metrics.comm_bytes << "}";
}

void AppendQuery(std::ostringstream& os, const dp::QueryResult& query) {
  os << "{\"reachable_pairs\":" << query.reachable_pairs
     << ",\"unreachable_pairs\":" << query.unreachable_pairs
     << ",\"loop_free\":" << (query.loop_free ? "true" : "false")
     << ",\"blackhole_free\":" << (query.blackhole_free ? "true" : "false")
     << ",\"loop_finals\":" << query.loop_finals
     << ",\"blackhole_finals\":" << query.blackhole_finals
     << ",\"multipath_violations\":" << query.multipath_violations.size()
     << ",\"paths_recorded\":" << query.paths_recorded
     << ",\"valleys\":" << query.valleys.size();
  os << ",\"waypoints\":[";
  for (size_t i = 0; i < query.waypoints.size(); ++i) {
    if (i) os << ",";
    os << "{\"transit\":" << query.waypoints[i].transit
       << ",\"always_traversed\":"
       << (query.waypoints[i].always_traversed ? "true" : "false") << "}";
  }
  os << "],\"unreachable\":[";
  bool first = true;
  for (const dp::ReachabilityPair& pair : query.reachability) {
    if (pair.reachable) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"src\":" << pair.src << ",\"dst\":" << pair.dst
       << ",\"fraction\":" << pair.fraction << "}";
  }
  os << "]}";
}

}  // namespace

std::string ToJson(const VerifyResult& result) {
  std::ostringstream os;
  os << "{\"status\":\"" << RunStatusName(result.status) << "\"";
  if (!result.ok()) {
    // Escape the failure detail minimally (quotes and backslashes).
    os << ",\"failure\":\"";
    for (char c : result.failure_detail) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
    os << "\"";
  }
  os << ",\"total_best_routes\":" << result.total_best_routes
     << ",\"peak_memory_bytes\":" << result.peak_memory_bytes
     << ",\"comm_bytes\":" << result.comm_bytes
     << ",\"forwarding_steps\":" << result.forwarding_steps
     << ",\"parse_seconds\":" << result.parse_seconds
     << ",\"partition_seconds\":" << result.partition_seconds << ",";
  AppendMetrics(os, "control_plane", result.control_plane);
  os << ",";
  AppendMetrics(os, "dp_build", result.dp_build);
  os << ",";
  AppendMetrics(os, "dp_forward", result.dp_forward);
  os << ",\"worker_peaks\":[";
  for (size_t i = 0; i < result.worker_peaks.size(); ++i) {
    if (i) os << ",";
    os << result.worker_peaks[i];
  }
  os << "],\"queries\":[";
  for (size_t i = 0; i < result.queries.size(); ++i) {
    if (i) os << ",";
    AppendQuery(os, result.queries[i]);
  }
  os << "]}";
  return os.str();
}

bool WriteJsonReport(const VerifyResult& result, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  out << ToJson(result) << "\n";
  return static_cast<bool>(out);
}

void PublishRoundMetrics(const std::string& prefix,
                         const dist::RoundMetrics& metrics,
                         obs::Registry& registry) {
  registry.SetCounter(prefix + ".rounds", metrics.rounds);
  registry.SetGauge(prefix + ".wall_seconds", metrics.wall_seconds);
  registry.SetGauge(prefix + ".modeled_seconds", metrics.modeled_seconds);
  registry.SetCounter(prefix + ".comm_bytes",
                      static_cast<int64_t>(metrics.comm_bytes));
  registry.SetCounter(prefix + ".comm_messages",
                      static_cast<int64_t>(metrics.comm_messages));
  registry.SetCounter(prefix + ".bdd_cache_hits",
                      static_cast<int64_t>(metrics.bdd_cache_hits));
  registry.SetCounter(prefix + ".bdd_cache_misses",
                      static_cast<int64_t>(metrics.bdd_cache_misses));
  registry.SetCounter(prefix + ".bdd_cache_evictions",
                      static_cast<int64_t>(metrics.bdd_cache_evictions));
}

void PublishVerifyResult(const VerifyResult& result,
                         obs::Registry& registry) {
  registry.SetLabel("run.status", RunStatusName(result.status));
  if (!result.ok()) registry.SetLabel("run.failure", result.failure_detail);
  registry.SetGauge("parse.seconds", result.parse_seconds);
  registry.SetGauge("partition.seconds", result.partition_seconds);
  PublishRoundMetrics("cp", result.control_plane, registry);
  PublishRoundMetrics("dp_build", result.dp_build, registry);
  PublishRoundMetrics("dp_forward", result.dp_forward, registry);
  registry.SetCounter("mem.max_worker_peak_bytes",
                      static_cast<int64_t>(result.peak_memory_bytes));
  for (size_t w = 0; w < result.worker_peaks.size(); ++w) {
    registry.SetCounter("mem.worker_peak_bytes.w" + std::to_string(w),
                        static_cast<int64_t>(result.worker_peaks[w]));
  }
  registry.SetCounter("routes.total_best",
                      static_cast<int64_t>(result.total_best_routes));
  registry.SetCounter("comm.total_bytes",
                      static_cast<int64_t>(result.comm_bytes));
  registry.SetCounter("dp.forwarding_steps",
                      static_cast<int64_t>(result.forwarding_steps));
  registry.SetCounter("transport.retransmits",
                      static_cast<int64_t>(result.retransmits));
  registry.SetCounter("transport.frames_dropped",
                      static_cast<int64_t>(result.frames_dropped));
  registry.SetCounter(
      "transport.duplicates_suppressed",
      static_cast<int64_t>(result.duplicates_suppressed));
  registry.SetCounter("controller.worker_recoveries",
                      static_cast<int64_t>(result.worker_recoveries));
  registry.SetCounter("queries.count",
                      static_cast<int64_t>(result.queries.size()));
}

void PublishEngineStats(const cp::EngineStats& stats,
                        obs::Registry& registry) {
  registry.SetCounter("engine.ospf_rounds", stats.ospf_rounds);
  registry.SetCounter("engine.bgp_rounds", stats.bgp_rounds);
  registry.SetCounter("engine.shards_executed", stats.shards_executed);
  registry.SetGauge("engine.compute_seconds", stats.compute_seconds);
  registry.SetGauge("engine.modeled_seconds", stats.modeled_seconds);
  registry.SetCounter("engine.total_best_routes",
                      static_cast<int64_t>(stats.total_best_routes));
}

}  // namespace s2::core
