# One binary per figure of the paper's evaluation (§5), plus a
# google-benchmark microbenchmark suite for the hot substrate operations.
# All binaries land directly in ${CMAKE_BINARY_DIR}/bench.

function(s2_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE s2_core)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

s2_bench(fig4_dcn)
s2_bench(fig5_fattree_scale)
s2_bench(fig6_workers)
s2_bench(fig7_partition)
s2_bench(fig8_sharding)
s2_bench(fig9_shard_count)
s2_bench(fig10_dpv)
# Not a paper figure: the verification-as-a-service serving-mode gate
# (snapshot + query service; also reachable via fig10_dpv --serve_queries).
s2_bench(query_service)

add_executable(micro_bench ${CMAKE_SOURCE_DIR}/bench/micro_bench.cc)
target_link_libraries(micro_bench PRIVATE s2_core benchmark::benchmark
                      benchmark::benchmark_main)
set_target_properties(micro_bench PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
s2_bench(ablation_prefix_parallel)
s2_bench(fault_overhead)
s2_bench(attr_intern)
