file(REMOVE_RECURSE
  "CMakeFiles/bonsai_test.dir/bonsai_test.cc.o"
  "CMakeFiles/bonsai_test.dir/bonsai_test.cc.o.d"
  "bonsai_test"
  "bonsai_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bonsai_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
