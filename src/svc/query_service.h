// Verification-as-a-service, part 2: the query frontend.
//
// A QueryService answers dp::Query requests against the SnapshotRegistry's
// current epoch without ever re-running the control plane. Three layers:
//
//  Admission scoping — before executing, a reachability pre-pass over the
//  snapshot's FIB forward-edge index computes which workers the query's
//  header space can possibly touch: BFS from the query sources over edges
//  whose entry prefix intersects the destination space. Forwarding
//  predicates are subsets of the union of forward-entry prefixes, so the
//  reached set over-approximates every node a symbolic packet can visit —
//  excluded workers provably see no packets, and skipping their domains
//  cannot change a verdict. If a packet does cross into an unscoped worker
//  (possible only when the edge index is incomplete, e.g. a recovered
//  worker), the domain is built lazily mid-query and a scope_fallbacks
//  counter records the miss — scoping degrades to a perf hint, never a
//  soundness risk.
//
//  Serving lanes — each lane owns persistent per-epoch, per-worker
//  (Manager, ForwardingEngine) domains rebuilt from the snapshot's
//  canonical predicate bytes, the same construction Dpo::RunQueries uses
//  per query. Unlike RunQueries, the domains live across queries with GC
//  held (bdd::Manager::PauseGc), so the hash-consed node ids of the
//  predicate roots — and the op/ITE cache entries over them — are stable
//  from query to query: a repeated query replays almost entirely out of
//  the op caches. Explicit collections run every gc_interval_queries to
//  bound table growth. Queries are dispatched to lanes by a key hash, so
//  identical queries always land on the lane that has them warm.
//
//  Predicate cache — per lane, keyed on (epoch, header-space BDD root id
//  in the lane's gather manager, sources, transits, record_paths). The
//  root id is stable because the gather manager is persistent and
//  hash-conses: equal header spaces get equal ids, and the cached entry
//  holds the Bdd handle so the id can never be recycled. Destinations are
//  deliberately NOT part of the key — forwarding is destination-
//  independent — so queries that differ only in destinations share one
//  forwarding execution. The cached value is the serialized finals;
//  verdicts are re-evaluated per query against its own destinations,
//  keeping served results byte-identical to batch execution.
#pragma once

#include <optional>

#include "dist/worker.h"
#include "svc/snapshot.h"

namespace s2::svc {

class QueryService {
 public:
  struct Options {
    // Serving lanes: independent domain sets that can execute queries
    // concurrently. Dispatch is by query-key hash (sticky).
    size_t lanes = 1;
    // Per-lane predicate-cache capacity in entries; 0 disables caching.
    size_t result_cache_entries = 256;
    // Explicit GC cadence per lane (queries between collections); 0 never
    // collects — tables then grow with distinct-query churn.
    size_t gc_interval_queries = 64;
    // Admission scoping on/off (off = every query runs on all workers).
    bool scope_admission = true;
  };

  struct Served {
    dp::QueryResult result;
    uint64_t epoch = 0;        // snapshot epoch this was served against
    bool cache_hit = false;    // answered from the predicate cache
    size_t scoped_workers = 0;  // domains the admission pass admitted
    size_t total_workers = 0;
    size_t rounds = 0;        // cross-domain ferry rounds (miss path only)
    size_t gather_bytes = 0;  // serialized finals decoded for evaluation
  };

  struct Stats {
    size_t queries = 0;
    size_t batches = 0;  // compatible groups executed by ServeBatch
    size_t cache_hits = 0;
    size_t cache_misses = 0;
    size_t cache_evictions = 0;
    size_t domains_built = 0;
    size_t epoch_rebuilds = 0;
    size_t scope_fallbacks = 0;    // lazily built out-of-scope domains
    size_t workers_scoped = 0;     // summed over executed (miss) queries
    size_t workers_total = 0;
    size_t snapshot_misses = 0;  // serves with nothing published
  };

  QueryService(SnapshotRegistry* registry, Options options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Serves one query against the current epoch. If nothing is published,
  // returns a default Served with epoch 0. Thread-safe; concurrent calls
  // on different lanes proceed in parallel.
  Served Serve(const dp::Query& query);

  // Serves a batch: queries are grouped by (lane, admitted worker set) and
  // each compatible group executes back to back on its lane — scoped
  // domains stay hot within the group. Results come back in input order,
  // all against one consistent epoch.
  std::vector<Served> ServeBatch(const std::vector<dp::Query>& queries);

  Stats stats() const;

  // Summed op/ITE cache counters across every lane's serving domains —
  // the cross-query reuse signal (satellite: repeated identical queries
  // must replay >90% out of these caches).
  bdd::Manager::CacheStats OpCacheStats() const;

  // svc.* counters (cache hit/miss/evict, scoping, domain builds).
  void PublishMetrics(obs::Registry& registry) const;

 private:
  struct CacheEntry {
    uint64_t epoch = 0;
    bdd::Bdd header;  // pins the key root id in the lane's gather manager
    std::vector<topo::NodeId> sources;
    std::vector<topo::NodeId> transits;
    bool record_paths = false;
    std::vector<dist::SerializedFinal> finals;
    uint64_t stamp = 0;  // LRU clock
  };

  struct Lane {
    std::mutex mutex;
    uint64_t epoch = 0;  // 0 = not bound yet
    // Destruction order matters: cache entries hold handles into
    // gather_manager and engines hold handles into managers, so members
    // are declared owner-first (reverse destruction runs users first).
    std::unique_ptr<bdd::Manager> gather_manager;
    std::optional<dp::PacketCodec> gather_codec;
    std::vector<std::unique_ptr<bdd::Manager>> managers;    // per worker
    std::vector<std::unique_ptr<dp::ForwardingEngine>> engines;
    std::vector<CacheEntry> cache;
    uint64_t stamp = 0;
    size_t queries_since_gc = 0;
  };

  size_t LaneFor(const dp::Query& query) const;
  Served ServeLocked(Lane& lane, const SnapshotRef& ref,
                     const dp::Query& query);
  void BindEpoch(Lane& lane, const Snapshot& snapshot);
  void EnsureDomain(Lane& lane, const Snapshot& snapshot, uint32_t w);
  void PrepareEngine(Lane& lane, const dp::Query& query, uint32_t w);
  std::vector<uint32_t> ScopeWorkers(const Snapshot& snapshot,
                                     const dp::Query& query) const;
  CacheEntry* FindCached(Lane& lane, uint64_t epoch, const bdd::Bdd& header,
                         const dp::Query& query);
  std::vector<dist::SerializedFinal> Execute(Lane& lane,
                                             const Snapshot& snapshot,
                                             const dp::Query& query,
                                             std::vector<uint32_t>& scope,
                                             Served& served);
  void MaybeCollect(Lane& lane);

  SnapshotRegistry* registry_;
  Options options_;
  std::vector<std::unique_ptr<Lane>> lanes_;

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

}  // namespace s2::svc
