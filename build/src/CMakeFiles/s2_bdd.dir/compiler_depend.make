# Empty compiler generated dependencies file for s2_bdd.
# This may be replaced when dependencies are built.
