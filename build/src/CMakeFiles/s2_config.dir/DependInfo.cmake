
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/parser.cc" "src/CMakeFiles/s2_config.dir/config/parser.cc.o" "gcc" "src/CMakeFiles/s2_config.dir/config/parser.cc.o.d"
  "/root/repo/src/config/vendor.cc" "src/CMakeFiles/s2_config.dir/config/vendor.cc.o" "gcc" "src/CMakeFiles/s2_config.dir/config/vendor.cc.o.d"
  "/root/repo/src/config/vi_model.cc" "src/CMakeFiles/s2_config.dir/config/vi_model.cc.o" "gcc" "src/CMakeFiles/s2_config.dir/config/vi_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s2_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s2_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
