// Figure 7: network partition schemes — total time, peak memory, control
// plane simulation time, and data plane verification time under random /
// expert / metis partitions, plus the paper's two pathological probes
// (load-imbalanced and communication-heaviest).
//
// Paper shape to reproduce: random/expert/metis differ only slightly
// (S2 is balance-bound, not communication-bound); the imbalanced
// partition is far worse; comm-heavy is slightly worse than random.
#include "bench_util.h"
#include "topo/dcn.h"
#include "topo/partition.h"

using namespace s2;
using namespace s2::bench;

namespace {

void RunNetwork(const ObsOptions& obs, const char* label,
                const config::ParsedNetwork& parsed,
                const dp::Query& query) {
  std::printf("--- %s (%zu switches, 8 workers) ---\n", label,
              parsed.graph.size());
  std::printf("%-12s %9s %12s %12s %12s %12s\n", "scheme", "status",
              "total", "cp-time", "dpv-time", "peak-mem");
  for (auto scheme :
       {topo::PartitionScheme::kRandom, topo::PartitionScheme::kExpert,
        topo::PartitionScheme::kMetisLike,
        topo::PartitionScheme::kImbalanced,
        topo::PartitionScheme::kCommHeavy}) {
    dist::ControllerOptions options = S2Options(8, kShards);
    options.worker_memory_budget = 0;  // measure, don't kill
    options.scheme = scheme;
    core::S2Verifier verifier(options);
    core::VerifyResult result = verifier.Verify(parsed, {query});
    CaptureReport(obs, verifier, result);
    double cp = result.control_plane.modeled_seconds;
    double dpv = result.dp_build.modeled_seconds +
                 result.dp_forward.modeled_seconds;
    std::printf("%-12s %9s %12s %12s %12s %12s\n",
                topo::PartitionSchemeName(scheme),
                core::RunStatusName(result.status),
                core::HumanSeconds(result.TotalModeledSeconds()).c_str(),
                core::HumanSeconds(cp).c_str(),
                core::HumanSeconds(dpv).c_str(),
                core::HumanBytes(result.peak_memory_bytes).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  ObsOptions obs = ParseObsFlags(argc, argv);
  std::printf("=== Figure 7: partition schemes ===\n\n");

  BuiltNetwork fattree = BuildFatTree(8);
  RunNetwork(obs, PaperSize(8), fattree.parsed,
             AllPairQuery(fattree.parsed));

  topo::DcnParams params;
  params.small_clusters = 3;
  params.big_clusters = 1;
  params.tors_per_pod = 6;
  params.leafs_per_pod = 3;
  params.pods_per_cluster = 2;
  topo::Network dcn = topo::MakeDcn(params);
  auto parsed = config::ParseNetwork(config::SynthesizeConfigs(dcn));
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  for (topo::NodeId id = 0; id < parsed.graph.size(); ++id) {
    if (parsed.graph.node(id).name.find("-tor") != std::string::npos) {
      query.sources.push_back(id);
      query.destinations.push_back(id);
    }
  }
  RunNetwork(obs, "DCN", parsed, query);

  std::printf(
      "expected shape: random/expert/metis within a small factor of each\n"
      "other; imbalanced much worse (one worker carries 3/4 of the\n"
      "network); comm-heavy slightly worse than random.\n");
  FinishObs(obs);
  return 0;
}
