// Serialization tests: the wire format sidecars use to move symbolic
// packets between per-worker BDD managers.
#include <gtest/gtest.h>

#include "bdd/bdd_io.h"
#include "util/rng.h"

namespace s2::bdd {
namespace {

TEST(BddIoTest, RoundTripsWithinOneManager) {
  Manager m(8);
  Bdd f = (m.Var(0) & m.Var(3)) | ((!m.Var(1)) & m.Var(7));
  Bdd g = DeserializeInto(m, Serialize(f));
  EXPECT_EQ(f, g);  // canonical: same manager means same node id
}

TEST(BddIoTest, RoundTripsTerminals) {
  Manager m(4);
  EXPECT_EQ(DeserializeInto(m, Serialize(m.Zero())), m.Zero());
  EXPECT_EQ(DeserializeInto(m, Serialize(m.One())), m.One());
}

TEST(BddIoTest, TransfersAcrossManagers) {
  Manager a(8), b(8);
  Bdd fa = (a.Var(2) ^ a.Var(5)) & !a.Var(0);
  Bdd fb = DeserializeInto(b, Serialize(fa));
  // Same function: identical satisfying fractions and identical behavior
  // under restriction on every variable.
  EXPECT_DOUBLE_EQ(a.SatFraction(fa), b.SatFraction(fb));
  for (uint32_t v : {0u, 2u, 5u}) {
    for (bool value : {false, true}) {
      EXPECT_DOUBLE_EQ(a.SatFraction(a.Restrict(fa, v, value)),
                       b.SatFraction(b.Restrict(fb, v, value)));
    }
  }
}

TEST(BddIoTest, ReceivingManagerMayHaveMoreVars) {
  Manager a(4), b(16);
  Bdd fa = a.Var(1) | a.Var(3);
  Bdd fb = DeserializeInto(b, Serialize(fa));
  EXPECT_DOUBLE_EQ(b.SatFraction(fb), a.SatFraction(fa));
}

TEST(BddIoTest, SharedStructureStaysShared) {
  Manager a(8), b(8);
  // A function whose BDD shares subgraphs heavily (parity).
  Bdd parity = a.Zero();
  for (uint32_t i = 0; i < 8; ++i) parity = parity ^ a.Var(i);
  size_t before = b.allocated_nodes();
  Bdd moved = DeserializeInto(b, Serialize(parity));
  // Parity over n vars has 2n-1 internal nodes; re-encoding must not blow
  // that up (canonicalization through MakeNode rebuilds shared nodes).
  EXPECT_LE(b.allocated_nodes() - before, 2 * 8);
  EXPECT_DOUBLE_EQ(b.SatFraction(moved), 0.5);
}

TEST(BddIoTest, WireSizeIsLinearInNodes) {
  Manager m(16);
  Bdd cube = m.Cube(0, 16, 0xABCD);
  auto bytes = Serialize(cube);
  // Header (16B) + 16 nodes x 12B.
  EXPECT_EQ(bytes.size(), 16u + 16u * 12u);
}

// Parameterized fuzz: random functions round-trip across managers with the
// receiving side re-canonicalizing to the same function.
class BddIoFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BddIoFuzzTest, RandomFunctionRoundTrip) {
  util::Rng rng(GetParam());
  Manager a(10), b(10);
  Bdd f = a.Zero();
  for (int i = 0; i < 12; ++i) {
    Bdd cube = a.One();
    for (int j = 0; j < 3; ++j) {
      uint32_t var = static_cast<uint32_t>(rng.Below(10));
      cube &= rng.Below(2) ? a.Var(var) : !a.Var(var);
    }
    f |= cube;
  }
  Bdd g = DeserializeInto(b, Serialize(f));
  // Move it back: must hit the identical node in the original manager.
  Bdd back = DeserializeInto(a, Serialize(g));
  EXPECT_EQ(back, f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddIoFuzzTest,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace s2::bdd
