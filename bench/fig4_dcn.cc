// Figure 4: verifying the (synthesized stand-in for the) real DCN with
// Batfish, Batfish + prefix sharding, S2 without prefix sharding, and S2.
//
// Paper shape to reproduce:
//   - vanilla Batfish runs out of memory during route computation;
//   - Batfish + sharding finishes but stays near the memory limit;
//   - S2 (16 workers) finishes comfortably; without sharding it uses more
//     memory than with, but sharding costs extra time when memory is
//     plentiful (Fig 4a discussion).
#include "bench_util.h"
#include "topo/dcn.h"

using namespace s2;
using namespace s2::bench;

namespace {

topo::DcnParams BenchDcn() {
  // Scaled-down stand-in for the 16K-switch production DCN (DESIGN.md S1):
  // 3 three-layer + 2 five-layer clusters under a shared core.
  topo::DcnParams params;
  params.small_clusters = 3;
  params.big_clusters = 2;
  params.tors_per_pod = 6;
  params.leafs_per_pod = 3;
  params.pods_per_cluster = 2;
  params.spines_per_cluster = 3;
  params.fabrics_per_cluster = 3;
  params.cores = 6;
  params.borders = 2;
  return params;
}

dp::Query TorQuery(const config::ParsedNetwork& parsed) {
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  for (topo::NodeId id = 0; id < parsed.graph.size(); ++id) {
    if (parsed.graph.node(id).name.find("-tor") != std::string::npos) {
      query.sources.push_back(id);
      query.destinations.push_back(id);
    }
  }
  return query;
}

}  // namespace

int main(int argc, char** argv) {
  ObsOptions obs = ParseObsFlags(argc, argv);
  std::printf("=== Figure 4: real-DCN stand-in — time and peak memory ===\n");
  topo::Network network = topo::MakeDcn(BenchDcn());
  auto parsed = config::ParseNetwork(config::SynthesizeConfigs(network));
  dp::Query query = TorQuery(parsed);
  std::printf("DCN: %zu switches, %zu links, %zu TORs, "
              "per-worker budget %s\n\n",
              parsed.graph.size(), parsed.graph.edge_count(),
              query.sources.size(), core::HumanBytes(kWorkerBudget).c_str());
  PrintHeader("verifier");

  {
    core::MonoVerifier mono(MonoWithBudget());
    PrintRow("batfish", mono.Verify(parsed, {query}));
  }
  {
    core::MonoVerifier mono(MonoWithBudget(kShards));
    PrintRow("batfish+sharding", mono.Verify(parsed, {query}));
  }
  {
    core::S2Verifier verifier(S2Options(16, 0));
    PrintRow("s2-16w (no sharding)", verifier.Verify(parsed, {query}));
  }
  {
    core::S2Verifier verifier(S2Options(16, kShards));
    core::VerifyResult result = verifier.Verify(parsed, {query});
    CaptureReport(obs, verifier, result);
    PrintRow("s2-16w", result);
  }

  std::printf(
      "\nexpected shape: batfish OOM; batfish+sharding finishes near the\n"
      "budget; S2 finishes well under it; S2 without sharding uses more\n"
      "memory but (with memory plentiful) less time than sharded S2.\n");
  FinishObs(obs);
  return 0;
}
