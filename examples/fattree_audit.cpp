// FatTree audit: the operator workflow from the paper's motivation —
// verify a fabric before and after a (mis)configuration change.
//
// Builds FatTree(6), verifies it clean, then injects two classic faults:
//   1. an edge switch stops announcing its host prefix (lost VLAN), and
//   2. an aggregation switch gains an over-broad summary-only aggregate
//      that blackholes unannounced space it covers;
// and shows how S2 surfaces both.
//
//   ./fattree_audit [k]
#include <cstdio>
#include <cstdlib>

#include "config/vendor.h"
#include "core/s2.h"
#include "topo/fattree.h"

using namespace s2;

namespace {

dp::Query AllPairs(const topo::Network& network) {
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  for (topo::NodeId id = 0; id < network.graph.size(); ++id) {
    if (network.graph.node(id).role == topo::Role::kEdge) {
      query.sources.push_back(id);
      query.destinations.push_back(id);
    }
  }
  return query;
}

core::VerifyResult Verify(const topo::Network& network,
                          const dp::Query& query) {
  dist::ControllerOptions options;
  options.num_workers = 4;
  options.num_shards = 8;
  core::S2Verifier verifier(options);
  return verifier.Verify(config::SynthesizeConfigs(network), {query});
}

void Report(const char* label, const core::VerifyResult& result) {
  std::printf("--- %s ---\n", label);
  if (!result.ok()) {
    std::printf("status: %s (%s)\n", core::RunStatusName(result.status),
                result.failure_detail.c_str());
    return;
  }
  const dp::QueryResult& q = result.queries[0];
  std::printf("pairs: %zu reachable / %zu unreachable\n",
              q.reachable_pairs, q.unreachable_pairs);
  std::printf("loop-free: %s, blackhole finals: %zu, "
              "multipath violations: %zu\n",
              q.loop_free ? "yes" : "NO", q.blackhole_finals,
              q.multipath_violations.size());
  for (const dp::ReachabilityPair& pair : q.reachability) {
    if (!pair.reachable) {
      std::printf("  UNREACHABLE: node %u -> node %u (%.0f%% of the "
                  "destination space arrives)\n",
                  pair.src, pair.dst, 100 * pair.fraction);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  int k = argc > 1 ? std::atoi(argv[1]) : 6;
  topo::FatTreeParams params;
  params.k = k;

  topo::Network clean = topo::MakeFatTree(params);
  dp::Query query = AllPairs(clean);
  Report("clean fabric", Verify(clean, query));

  // Fault 1: a botched export filter on edge-0-0's uplinks denies all of
  // its announcements — its prefixes never leave the rack.
  topo::Network filtered = topo::MakeFatTree(params);
  topo::NodeId victim = filtered.graph.FindByName("edge-0-0");
  for (topo::InterfaceIntent& iface : filtered.intents[victim].interfaces) {
    // Permit only routes tagged with a community nothing carries.
    iface.export_policy.permit_only_communities = {424242};
  }
  Report("fault: edge-0-0 uplink filter denies all exports",
         Verify(filtered, query));

  // Fault 2: agg-1-0 aggregates the whole pod-1 space summary-only,
  // including /24s no edge announces — covered-but-unannounced packets now
  // die at its Null0 instead of being dropped at the source edge.
  topo::Network overbroad = topo::MakeFatTree(params);
  topo::NodeId agg = overbroad.graph.FindByName("agg-1-0");
  overbroad.intents[agg].aggregates.push_back(topo::AggregateIntent{
      util::MustParsePrefix("10.1.0.0/16"), true, {600}});
  core::VerifyResult result = Verify(overbroad, query);
  Report("fault: agg-1-0 adds summary-only 10.1.0.0/16", result);
  std::printf(
      "\nnote: the aggregate suppressed pod 1's specifics on export, so\n"
      "remote edges route pod-1 traffic via the /16 and unannounced\n"
      "10.1.x.0/24 space blackholes inside the fabric (%zu blackhole "
      "finals).\n",
      result.ok() ? result.queries[0].blackhole_finals : 0);

  // Fault 3: local-pref misconfiguration creating a forwarding valley
  // (the Fig 11 path anomaly): traffic still arrives, but dips through a
  // rack on the way up. Found with a path-recording diagnostic query.
  topo::Network valley = topo::MakeFatTree(params);
  auto prefer = [&](const char* node, const char* peer, uint32_t pref) {
    topo::NodeId id = valley.graph.FindByName(node);
    topo::NodeId peer_id = valley.graph.FindByName(peer);
    for (topo::InterfaceIntent& iface : valley.intents[id].interfaces) {
      if (iface.peer == peer_id) iface.import_local_pref = pref;
    }
  };
  prefer("edge-0-0", "agg-0-0", 300);
  prefer("agg-0-0", "edge-0-1", 300);
  prefer("edge-0-1", "agg-0-1", 110);
  dp::Query diagnostic;
  diagnostic.header_space.dst = util::MustParsePrefix("10.1.0.0/24");
  diagnostic.sources = {valley.graph.FindByName("edge-0-0")};
  diagnostic.destinations = {valley.graph.FindByName("edge-1-0")};
  diagnostic.record_paths = true;
  core::VerifyResult diag = Verify(valley, diagnostic);
  std::printf("\n--- fault: local-pref valley, diagnosed with "
              "record_paths ---\n");
  if (diag.ok()) {
    const dp::QueryResult& q = diag.queries[0];
    std::printf("paths enumerated: %zu, forwarding valleys: %zu\n",
                q.paths_recorded, q.valleys.size());
    for (const dp::ForwardingValley& v : q.valleys) {
      std::printf("  VALLEY from node %u via:", v.src);
      for (topo::NodeId node : v.path) {
        std::printf(" %s", valley.graph.node(node).name.c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
