# Empty dependencies file for dcn_policy_check.
# This may be replaced when dependencies are built.
