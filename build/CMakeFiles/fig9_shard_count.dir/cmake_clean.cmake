file(REMOVE_RECURSE
  "CMakeFiles/fig9_shard_count.dir/bench/fig9_shard_count.cc.o"
  "CMakeFiles/fig9_shard_count.dir/bench/fig9_shard_count.cc.o.d"
  "bench/fig9_shard_count"
  "bench/fig9_shard_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_shard_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
