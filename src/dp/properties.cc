#include "dp/properties.h"

#include <map>

namespace s2::dp {

namespace {

// Existentially quantifies the metadata (waypoint) bits away so packet
// sets can be compared on their header content alone.
bdd::Bdd DropMeta(const bdd::Bdd& set, const PacketCodec& codec) {
  if (codec.layout().meta_bits == 0) return set;
  std::vector<uint32_t> vars;
  for (uint32_t i = 0; i < codec.layout().meta_bits; ++i) {
    vars.push_back(codec.layout().MetaVar(i));
  }
  return codec.manager()->Exists(set, vars);
}

}  // namespace

bool IsForwardingValley(const std::vector<topo::NodeId>& path,
                        const topo::Graph& graph) {
  bool descended = false;
  for (size_t i = 1; i < path.size(); ++i) {
    int prev = graph.node(path[i - 1]).layer;
    int next = graph.node(path[i]).layer;
    if (next < prev) descended = true;
    if (next > prev && descended) return true;  // down, then up again
  }
  return false;
}

QueryResult EvaluateQuery(const Query& query, const PacketCodec& codec,
                          const std::vector<FinalPacket>& finals,
                          const config::ParsedNetwork& network) {
  bdd::Manager* manager = codec.manager();
  QueryResult result;
  bdd::Bdd header_space = query.header_space.ToBdd(codec);

  // ----------------------------------------------------------- gathering
  // Arrive sets per (src, dst); loop/blackhole totals; per-src state
  // unions for multipath consistency.
  std::map<std::pair<topo::NodeId, topo::NodeId>, bdd::Bdd> arrived;
  std::map<std::pair<topo::NodeId, FinalState>, bdd::Bdd> by_src_state;
  for (const FinalPacket& final : finals) {
    bdd::Bdd content = DropMeta(final.set, codec);
    auto state_key = std::make_pair(final.src, final.state);
    auto state_it = by_src_state.find(state_key);
    if (state_it == by_src_state.end()) {
      by_src_state.emplace(state_key, content);
    } else {
      state_it->second |= content;
    }
    switch (final.state) {
      case FinalState::kArrive: {
        auto key = std::make_pair(final.src, final.node);
        auto it = arrived.find(key);
        if (it == arrived.end()) {
          arrived.emplace(key, content);
        } else {
          it->second |= content;
        }
        break;
      }
      case FinalState::kLoop:
        ++result.loop_finals;
        result.loop_free = false;
        break;
      case FinalState::kBlackhole:
        ++result.blackhole_finals;
        result.blackhole_free = false;
        break;
      case FinalState::kExit:
        break;
    }
  }

  // -------------------------------------------------------- reachability
  for (topo::NodeId src : query.sources) {
    for (topo::NodeId dst : query.destinations) {
      if (src == dst) continue;
      // The destination's own space: its announced prefixes within H.
      bdd::Bdd own = manager->Zero();
      for (const util::Ipv4Prefix& prefix :
           network.configs[dst].bgp.networks) {
        own |= codec.DstIn(prefix);
      }
      own &= header_space;
      if (own.IsZero()) continue;  // dst owns nothing in this header space
      ReachabilityPair pair;
      pair.src = src;
      pair.dst = dst;
      auto it = arrived.find(std::make_pair(src, dst));
      if (it != arrived.end()) {
        bdd::Bdd got = it->second & own;
        pair.fraction =
            manager->SatFraction(got) / manager->SatFraction(own);
        pair.reachable = got == own;
      }
      (pair.reachable ? result.reachable_pairs : result.unreachable_pairs)++;
      result.reachability.push_back(pair);
    }
  }

  // ------------------------------------------------------------ waypoint
  // A transit is always traversed when every packet arriving at a queried
  // destination has its metadata bit set: pkt & bit == pkt.
  for (size_t i = 0; i < query.transits.size(); ++i) {
    WaypointResult waypoint;
    waypoint.transit = query.transits[i];
    waypoint.always_traversed = true;
    bdd::Bdd bit = codec.MetaBit(static_cast<uint32_t>(i), true);
    for (const FinalPacket& final : finals) {
      if (final.state != FinalState::kArrive) continue;
      bool is_dst = false;
      for (topo::NodeId dst : query.destinations) is_dst |= dst == final.node;
      if (!is_dst) continue;
      if (!((final.set & bit) == final.set)) {
        waypoint.always_traversed = false;
        break;
      }
    }
    result.waypoints.push_back(waypoint);
  }

  // --------------------------------------------------------------- paths
  if (query.record_paths) {
    for (const FinalPacket& final : finals) {
      if (final.path.empty()) continue;
      ++result.paths_recorded;
      if (IsForwardingValley(final.path, network.graph)) {
        result.valleys.push_back(ForwardingValley{final.src, final.path});
      }
    }
  }

  // ------------------------------------------------- multipath consistency
  // Overlapping packets from the same source with different final states.
  static constexpr FinalState kStates[] = {
      FinalState::kArrive, FinalState::kExit, FinalState::kBlackhole,
      FinalState::kLoop};
  for (topo::NodeId src : query.sources) {
    for (size_t a = 0; a < 4; ++a) {
      auto it_a = by_src_state.find(std::make_pair(src, kStates[a]));
      if (it_a == by_src_state.end()) continue;
      for (size_t b = a + 1; b < 4; ++b) {
        auto it_b = by_src_state.find(std::make_pair(src, kStates[b]));
        if (it_b == by_src_state.end()) continue;
        if (it_a->second.Intersects(it_b->second)) {
          result.multipath_violations.push_back(
              MultipathViolation{src, kStates[a], kStates[b]});
        }
      }
    }
  }
  return result;
}

}  // namespace s2::dp
