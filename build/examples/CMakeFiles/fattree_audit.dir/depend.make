# Empty dependencies file for fattree_audit.
# This may be replaced when dependencies are built.
