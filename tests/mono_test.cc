// MonoVerifier ("Batfish" baseline) tests: full-pipeline verdicts, OOM and
// BDD-table overflow as results, sharded-mode equivalence, and phase
// metric population.
#include <gtest/gtest.h>

#include "core/mono.h"
#include "test_networks.h"
#include "topo/fattree.h"

namespace s2::core {
namespace {

dp::Query EdgeQuery(const config::ParsedNetwork& net) {
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  for (topo::NodeId id = 0; id < net.graph.size(); ++id) {
    if (net.graph.node(id).role == topo::Role::kEdge) {
      query.sources.push_back(id);
      query.destinations.push_back(id);
    }
  }
  return query;
}

TEST(MonoVerifierTest, FatTreeAllPairsReachable) {
  topo::FatTreeParams params;
  params.k = 4;
  auto net = testing::Parse(topo::MakeFatTree(params));
  MonoVerifier verifier{MonoOptions{}};
  VerifyResult result = verifier.Verify(net, {EdgeQuery(net)});
  ASSERT_TRUE(result.ok()) << result.failure_detail;
  EXPECT_EQ(result.queries[0].reachable_pairs, 56u);
  EXPECT_EQ(result.queries[0].unreachable_pairs, 0u);
  EXPECT_TRUE(result.queries[0].loop_free);
  // Route entries (ECMP sets count per path): more than the 560 prefix
  // entries of FatTree4.
  EXPECT_GT(result.total_best_routes, 28u * 20u);
  EXPECT_GT(result.peak_memory_bytes, 0u);
  EXPECT_GT(result.forwarding_steps, 0u);
}

TEST(MonoVerifierTest, ShardedProducesSameVerdicts) {
  topo::FatTreeParams params;
  params.k = 4;
  auto net = testing::Parse(topo::MakeFatTree(params));
  MonoVerifier plain{MonoOptions{}};
  VerifyResult base = plain.Verify(net, {EdgeQuery(net)});
  MonoOptions sharded_options;
  sharded_options.num_shards = 6;
  MonoVerifier sharded(sharded_options);
  VerifyResult result = sharded.Verify(net, {EdgeQuery(net)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.queries[0].reachable_pairs,
            base.queries[0].reachable_pairs);
  EXPECT_EQ(result.total_best_routes, base.total_best_routes);
  EXPECT_LT(result.peak_memory_bytes, base.peak_memory_bytes);
}

TEST(MonoVerifierTest, MemoryBudgetBecomesOomVerdict) {
  topo::FatTreeParams params;
  params.k = 4;
  auto net = testing::Parse(topo::MakeFatTree(params));
  MonoOptions options;
  options.memory_budget = 50'000;
  MonoVerifier verifier(options);
  VerifyResult result = verifier.Verify(net, {});
  EXPECT_EQ(result.status, RunStatus::kOutOfMemory);
  EXPECT_FALSE(result.ok());
  // Peak reflects where it died, close to the budget.
  EXPECT_LE(result.peak_memory_bytes, 50'000u);
}

TEST(MonoVerifierTest, BddNodeTableOverflowIsOom) {
  topo::FatTreeParams params;
  params.k = 4;
  auto net = testing::Parse(topo::MakeFatTree(params));
  MonoOptions options;
  options.max_bdd_nodes = 64;  // absurdly small single shared table
  MonoVerifier verifier(options);
  VerifyResult result = verifier.Verify(net, {EdgeQuery(net)});
  EXPECT_EQ(result.status, RunStatus::kOutOfMemory);
  EXPECT_NE(result.failure_detail.find("bdd-node-table"),
            std::string::npos);
}

TEST(MonoVerifierTest, NonConvergenceIsTimeoutVerdict) {
  topo::Network net = testing::MakeChain(2);
  auto p = util::MustParsePrefix("203.0.113.0/24");
  net.intents[0].cond_advs.push_back(topo::CondAdvIntent{p, p, false});
  auto parsed = testing::Parse(net);
  MonoOptions options;
  options.max_rounds = 20;
  MonoVerifier verifier(options);
  VerifyResult result = verifier.Verify(parsed, {});
  EXPECT_EQ(result.status, RunStatus::kTimeout);
}

TEST(MonoVerifierTest, RunStatusNamesAndFormatters) {
  EXPECT_STREQ(RunStatusName(RunStatus::kOk), "ok");
  EXPECT_STREQ(RunStatusName(RunStatus::kOutOfMemory), "OOM");
  EXPECT_STREQ(RunStatusName(RunStatus::kTimeout), "timeout");
  EXPECT_EQ(HumanBytes(1500), "1.5 KB");
  EXPECT_EQ(HumanBytes(2'500'000), "2.5 MB");
  EXPECT_EQ(HumanBytes(3'200'000'000ull), "3.20 GB");
  EXPECT_EQ(HumanBytes(17), "17 B");
  EXPECT_EQ(HumanSeconds(7200), "2.00 h");
  EXPECT_EQ(HumanSeconds(90), "1.5 min");
  EXPECT_EQ(HumanSeconds(2.5), "2.50 s");
  EXPECT_EQ(HumanSeconds(0.0171), "17.1 ms");
}

TEST(MonoVerifierTest, MultipleQueriesAccumulate) {
  auto net = testing::Parse(testing::MakeChain(3));
  dp::Query q1, q2;
  q1.header_space.dst = util::MustParsePrefix("10.0.2.0/24");
  q1.sources = {0};
  q1.destinations = {2};
  q2.header_space.dst = util::MustParsePrefix("10.0.0.0/24");
  q2.sources = {2};
  q2.destinations = {0};
  MonoVerifier verifier{MonoOptions{}};
  VerifyResult result = verifier.Verify(net, {q1, q2});
  ASSERT_EQ(result.queries.size(), 2u);
  EXPECT_EQ(result.queries[0].reachable_pairs, 1u);
  EXPECT_EQ(result.queries[1].reachable_pairs, 1u);
}

}  // namespace
}  // namespace s2::core
