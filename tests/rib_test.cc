// RIB tests: candidate bookkeeping, best/ECMP selection, dirty tracking,
// aggregate contributor scans, memory accounting, and the on-disk RIB
// store used by prefix sharding.
#include <gtest/gtest.h>

#include "cp/attr.h"
#include "cp/rib.h"

namespace s2::cp {
namespace {

AttrPool& TestPool() {
  static AttrPool* pool = new AttrPool();
  return *pool;
}

Route MakeRoute(const std::string& prefix, uint32_t local_pref,
                size_t path_len, topo::NodeId from) {
  Route r;
  r.prefix = util::MustParsePrefix(prefix);
  r.protocol = Protocol::kBgp;
  AttrTuple tuple;
  tuple.local_pref = local_pref;
  tuple.as_path.assign(path_len, 65000);
  r.attrs = TestPool().Intern(std::move(tuple));
  r.learned_from = from;
  r.origin_node = from;
  return r;
}

TEST(RibTest, UpsertSelectsBest) {
  Rib rib(nullptr);
  rib.Upsert(1, MakeRoute("10.0.0.0/24", 100, 3, 1));
  rib.Upsert(2, MakeRoute("10.0.0.0/24", 200, 5, 2));
  auto changed = rib.RecomputeDirty(1);
  ASSERT_EQ(changed.size(), 1u);
  const auto* best = rib.Best(util::MustParsePrefix("10.0.0.0/24"));
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->front().learned_from, 2u);  // higher local-pref
}

TEST(RibTest, EcmpKeepsUpToMaxPaths) {
  Rib rib(nullptr);
  for (topo::NodeId n = 1; n <= 5; ++n) {
    rib.Upsert(n, MakeRoute("10.0.0.0/24", 100, 2, n));
  }
  rib.RecomputeDirty(3);
  const auto* best = rib.Best(util::MustParsePrefix("10.0.0.0/24"));
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->size(), 3u);  // capped
  // Deterministic order: lowest neighbor ids first.
  EXPECT_EQ(best->at(0).learned_from, 1u);
  EXPECT_EQ(best->at(1).learned_from, 2u);
}

TEST(RibTest, EcmpExcludesNonEquivalent) {
  Rib rib(nullptr);
  rib.Upsert(1, MakeRoute("10.0.0.0/24", 100, 2, 1));
  rib.Upsert(2, MakeRoute("10.0.0.0/24", 100, 4, 2));  // longer path
  rib.RecomputeDirty(8);
  EXPECT_EQ(rib.Best(util::MustParsePrefix("10.0.0.0/24"))->size(), 1u);
}

TEST(RibTest, WithdrawRemovesCandidate) {
  Rib rib(nullptr);
  auto p = util::MustParsePrefix("10.0.0.0/24");
  rib.Upsert(1, MakeRoute("10.0.0.0/24", 100, 2, 1));
  rib.Upsert(2, MakeRoute("10.0.0.0/24", 100, 1, 2));
  rib.RecomputeDirty(1);
  EXPECT_EQ(rib.Best(p)->front().learned_from, 2u);
  rib.Withdraw(2, p);
  auto changed = rib.RecomputeDirty(1);
  EXPECT_EQ(changed.size(), 1u);
  EXPECT_EQ(rib.Best(p)->front().learned_from, 1u);
  rib.Withdraw(1, p);
  rib.RecomputeDirty(1);
  EXPECT_EQ(rib.Best(p), nullptr);
  // Withdrawing something absent is a no-op, not an error.
  rib.Withdraw(9, p);
  EXPECT_TRUE(rib.RecomputeDirty(1).size() <= 1);
}

TEST(RibTest, UnchangedUpsertDoesNotDirty) {
  Rib rib(nullptr);
  Route r = MakeRoute("10.0.0.0/24", 100, 2, 1);
  rib.Upsert(1, r);
  rib.RecomputeDirty(1);
  rib.Upsert(1, r);  // identical
  EXPECT_TRUE(rib.RecomputeDirty(1).empty());
}

TEST(RibTest, RecomputeReportsOnlyBestChanges) {
  Rib rib(nullptr);
  rib.Upsert(1, MakeRoute("10.0.0.0/24", 200, 2, 1));
  rib.RecomputeDirty(1);
  // A strictly worse candidate dirties the prefix but can't change best.
  rib.Upsert(2, MakeRoute("10.0.0.0/24", 100, 2, 2));
  EXPECT_TRUE(rib.RecomputeDirty(1).empty());
}

TEST(RibTest, ContainsAndContributors) {
  Rib rib(nullptr);
  rib.Upsert(1, MakeRoute("10.1.2.0/24", 100, 2, 1));
  rib.Upsert(1, MakeRoute("10.1.3.0/24", 100, 2, 1));
  rib.RecomputeDirty(1);
  auto agg = util::MustParsePrefix("10.1.0.0/16");
  EXPECT_FALSE(rib.Contains(agg));
  EXPECT_TRUE(rib.HasContributor(agg));
  EXPECT_FALSE(rib.HasContributor(util::MustParsePrefix("10.2.0.0/16")));
  // The aggregate itself is not its own contributor.
  Rib rib2(nullptr);
  rib2.Upsert(1, MakeRoute("10.1.0.0/16", 100, 2, 1));
  rib2.RecomputeDirty(1);
  EXPECT_FALSE(rib2.HasContributor(agg));
  EXPECT_TRUE(rib2.Contains(agg));
}

TEST(RibTest, MemoryAccountingBalances) {
  util::MemoryTracker tracker("rib");
  {
    Rib rib(&tracker);
    for (topo::NodeId n = 1; n <= 4; ++n) {
      rib.Upsert(n, MakeRoute("10.0.0.0/24", 100, 2, n));
    }
    rib.RecomputeDirty(4);
    EXPECT_GT(tracker.live_bytes(), 0u);
    rib.Clear();
    EXPECT_EQ(tracker.live_bytes(), 0u);
  }
}

TEST(RibTest, BudgetOverflowThrows) {
  util::MemoryTracker tracker("rib", 1000);
  Rib rib(&tracker);
  EXPECT_THROW(
      {
        for (topo::NodeId n = 1; n <= 100; ++n) {
          rib.Upsert(n, MakeRoute("10.0.0.0/24", 100, 2, n));
        }
      },
      util::SimulatedOom);
}

TEST(RibStoreTest, WriteReadRoundTrip) {
  RibStore store;
  std::map<util::Ipv4Prefix, std::vector<Route>> best;
  best[util::MustParsePrefix("10.0.0.0/24")] = {
      MakeRoute("10.0.0.0/24", 100, 2, 1),
      MakeRoute("10.0.0.0/24", 100, 2, 2)};
  best[util::MustParsePrefix("10.0.1.0/24")] = {
      MakeRoute("10.0.1.0/24", 100, 3, 3)};
  store.Write(0, 7, best);
  EXPECT_GT(store.bytes_written(), 0u);
  EXPECT_EQ(store.routes_written(), 3u);
  auto merged = store.ReadAll(7, TestPool());
  EXPECT_EQ(merged, best);
  EXPECT_TRUE(store.ReadAll(8, TestPool()).empty());
}

TEST(RibStoreTest, MergesAcrossShards) {
  RibStore store;
  std::map<util::Ipv4Prefix, std::vector<Route>> shard0, shard1;
  shard0[util::MustParsePrefix("10.0.0.0/24")] = {
      MakeRoute("10.0.0.0/24", 100, 2, 1)};
  shard1[util::MustParsePrefix("10.0.1.0/24")] = {
      MakeRoute("10.0.1.0/24", 100, 2, 2)};
  store.Write(0, 3, shard0);
  store.Write(1, 3, shard1);
  auto merged = store.ReadAll(3, TestPool());
  EXPECT_EQ(merged.size(), 2u);
}

}  // namespace
}  // namespace s2::cp
