// Direct orchestrator tests: the CPO's round/shard bookkeeping (per-shard
// metrics, observed peaks, round barriers in the cost model) and the DPO's
// gather path — the pieces the end-to-end suites exercise only indirectly.
#include <gtest/gtest.h>

#include "dist/controller.h"
#include "test_networks.h"
#include "topo/fattree.h"

namespace s2::dist {
namespace {

config::ParsedNetwork FatTree4() {
  topo::FatTreeParams params;
  params.k = 4;
  return testing::Parse(topo::MakeFatTree(params));
}

TEST(CpoTest, PerShardMetricsCoverThePlan) {
  auto net = FatTree4();
  ControllerOptions options;
  options.num_workers = 2;
  options.num_shards = 6;
  Controller controller(net, options);
  controller.Setup();
  ASSERT_TRUE(controller.shard_plan().has_value());
  RoundMetrics total = controller.RunControlPlane();

  const std::vector<ShardMetrics>& shards = controller.shard_metrics();
  ASSERT_EQ(shards.size(), controller.shard_plan()->num_shards());
  int rounds = 0;
  double modeled = 0;
  for (const ShardMetrics& shard : shards) {
    EXPECT_GT(shard.rounds.rounds, 0);
    EXPECT_GT(shard.max_worker_peak, 0u);
    rounds += shard.rounds.rounds;
    modeled += shard.rounds.modeled_seconds;
  }
  EXPECT_EQ(rounds, total.rounds);
  EXPECT_NEAR(modeled, total.modeled_seconds, 1e-9);
}

TEST(CpoTest, ObservedPeakIsMaxOfShardPeaks) {
  auto net = FatTree4();
  ControllerOptions options;
  options.num_workers = 2;
  options.num_shards = 4;
  Controller controller(net, options);
  controller.Setup();
  controller.RunControlPlane();
  size_t max_shard_peak = 0;
  for (const ShardMetrics& shard : controller.shard_metrics()) {
    max_shard_peak = std::max(max_shard_peak, shard.max_worker_peak);
  }
  EXPECT_EQ(controller.MaxWorkerPeakBytes(), max_shard_peak);
}

TEST(CpoTest, UnshardedRunsHaveNoShardMetrics) {
  auto net = FatTree4();
  ControllerOptions options;
  options.num_workers = 2;
  Controller controller(net, options);
  controller.Setup();
  controller.RunControlPlane();
  EXPECT_TRUE(controller.shard_metrics().empty());
  EXPECT_GT(controller.MaxWorkerPeakBytes(), 0u);
}

TEST(CpoTest, RoundLatencyEntersModeledTime) {
  auto net = FatTree4();
  double with = 0, without = 0;
  for (double latency : {0.0, 0.01}) {
    ControllerOptions options;
    options.num_workers = 2;
    options.cost.round_latency_seconds = latency;
    Controller controller(net, options);
    controller.Setup();
    RoundMetrics metrics = controller.RunControlPlane();
    (latency > 0 ? with : without) = metrics.modeled_seconds;
    if (latency > 0) {
      // The latency term contributes exactly rounds x latency.
      EXPECT_NEAR(with - without, metrics.rounds * latency, 0.05);
    }
  }
  EXPECT_GT(with, without);
}

TEST(CpoTest, TotalBestRoutesMatchesStoreOrNodes) {
  auto net = FatTree4();
  size_t sharded_total = 0, unsharded_total = 0;
  for (int shards : {0, 5}) {
    ControllerOptions options;
    options.num_workers = 2;
    options.num_shards = shards;
    Controller controller(net, options);
    controller.Setup();
    controller.RunControlPlane();
    (shards ? sharded_total : unsharded_total) =
        controller.TotalBestRoutes();
  }
  EXPECT_EQ(sharded_total, unsharded_total);
  EXPECT_GT(sharded_total, 0u);
}

TEST(DpoTest, GatherMovesFinalsToTheControllerDomain) {
  auto net = FatTree4();
  ControllerOptions options;
  options.num_workers = 4;
  Controller controller(net, options);
  controller.Setup();
  controller.RunControlPlane();
  controller.BuildDataPlanes();

  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/24");
  query.sources = {net.graph.FindByName("edge-1-0")};
  query.destinations = {net.graph.FindByName("edge-0-0")};
  Controller::QueryOutcome outcome = controller.RunQuery(query);
  EXPECT_GT(outcome.gather_bytes, 0u);  // finals were serialized back
  EXPECT_EQ(outcome.result.reachable_pairs, 1u);
  EXPECT_GT(outcome.forwarding_steps, 0u);
}

TEST(RoundMetricsTest, AddAccumulates) {
  RoundMetrics a, b;
  a.rounds = 3;
  a.wall_seconds = 1.0;
  a.modeled_seconds = 2.0;
  a.comm_bytes = 10;
  b.rounds = 2;
  b.wall_seconds = 0.5;
  b.modeled_seconds = 0.25;
  b.comm_bytes = 5;
  a.Add(b);
  EXPECT_EQ(a.rounds, 5);
  EXPECT_DOUBLE_EQ(a.wall_seconds, 1.5);
  EXPECT_DOUBLE_EQ(a.modeled_seconds, 2.25);
  EXPECT_EQ(a.comm_bytes, 15u);
}

}  // namespace
}  // namespace s2::dist
