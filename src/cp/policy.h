// Route-map evaluation: the policy half of the switch model. Applies a
// vendor-independent RouteMap to a route, implementing first-match-wins
// with continue/next-term accumulation and the implicit trailing deny.
//
// Evaluation is tuple-level and copy-on-write: set actions edit a scratch
// AttrTuple copied lazily on the first modification, and the caller
// interns the result only when something actually changed — an accepted
// route with no set actions keeps its existing interned handle and never
// touches the pool.
#pragma once

#include "config/vi_model.h"
#include "cp/route.h"

namespace s2::cp {

// The tuple-level result. When `accepted` and `attrs_modified`, `tuple`
// holds the transformed attributes awaiting interning; when accepted but
// unmodified the input route's handle is reusable as-is.
struct PolicyEval {
  bool accepted = false;
  // True when a matched clause applied set as-path overwrite; exporters
  // must then skip the usual AS prepend.
  bool as_path_overwritten = false;
  bool attrs_modified = false;
  AttrTuple tuple;
};

// Evaluates `map` against `route`. `own_asn` feeds prepend/overwrite sets.
// A null map accepts the route unchanged (no policy configured).
PolicyEval EvalRouteMap(const config::RouteMap* map, const Route& route,
                        uint32_t own_asn);

struct PolicyResult {
  bool accepted = false;
  bool as_path_overwritten = false;
  Route route;  // the transformed route when accepted
};

// Route-level convenience over EvalRouteMap: interns a modified tuple
// into `pool`, reuses the input handle otherwise.
PolicyResult ApplyRouteMap(const config::RouteMap* map, const Route& route,
                           uint32_t own_asn, AttrPool& pool);

// remove-private-as with vendor-specific semantics (§2.1):
//   Alpha strips every private ASN from the path;
//   Beta strips only the private ASNs preceding the first public one.
void RemovePrivateAs(std::vector<uint32_t>& as_path, topo::Vendor vendor);

}  // namespace s2::cp
