file(REMOVE_RECURSE
  "CMakeFiles/fig8_sharding.dir/bench/fig8_sharding.cc.o"
  "CMakeFiles/fig8_sharding.dir/bench/fig8_sharding.cc.o.d"
  "bench/fig8_sharding"
  "bench/fig8_sharding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_sharding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
