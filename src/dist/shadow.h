// Shadow nodes (paper §3.1/§4.2).
//
// A worker wraps every *remote* switch adjacent to one of its own as a
// shadow node exposing the same pull interface as the real node
// (TakeUpdatesFor). Local nodes pull from neighbors without knowing
// whether they are real or shadows — the decoupling that lets S2 reuse the
// switch model unmodified. A shadow's updates materialize when the sidecar
// delivers the remote real node's exports (serialized route batches).
#pragma once

#include <map>
#include <vector>

#include "cp/route.h"

namespace s2::dist {

class ShadowNode {
 public:
  explicit ShadowNode(topo::NodeId id) : id_(id) {}

  topo::NodeId id() const { return id_; }

  // Sidecar delivery: updates the remote real node addressed to `local`.
  void Deliver(topo::NodeId local, std::vector<cp::RouteUpdate> updates);

  // The pull interface local nodes use — identical to cp::Node's.
  std::vector<cp::RouteUpdate> TakeUpdatesFor(topo::NodeId local);

  bool HasPending() const { return !inbox_.empty(); }

 private:
  topo::NodeId id_;
  std::map<topo::NodeId, std::vector<cp::RouteUpdate>> inbox_;
};

}  // namespace s2::dist
