#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace s2::obs {

namespace {

uint32_t ThisThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();  // leaked: spans may outlive main
  return *tracer;
}

void Tracer::Enable() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    epoch_ = std::chrono::steady_clock::now();
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

void Tracer::Record(Event event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<Tracer::Event> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

double Tracer::NowMicros() const {
  if (epoch_ == std::chrono::steady_clock::time_point{}) return 0;
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::string Tracer::ToChromeJson() const {
  std::vector<Event> snapshot = events();
  // Stable viewing order (the record order is schedule-dependent).
  std::stable_sort(snapshot.begin(), snapshot.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_us < b.ts_us;
                   });
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[64];
  bool first = true;
  for (const Event& event : snapshot) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += event.name;
    out += "\",\"cat\":\"";
    out += event.category;
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%u", event.tid);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f",
                  event.ts_us, event.dur_us);
    out += buf;
    if (!event.args.empty()) {
      out += ",\"args\":{";
      for (size_t i = 0; i < event.args.size(); ++i) {
        if (i) out += ",";
        out += "\"";
        out += event.args[i].first;
        std::snprintf(buf, sizeof(buf), "\":%lld",
                      static_cast<long long>(event.args[i].second));
        out += buf;
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string json = ToChromeJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  return std::fclose(f) == 0 && written == json.size();
}

std::string Tracer::Summary() const {
  struct Row {
    size_t count = 0;
    double total_us = 0;
    double max_us = 0;
  };
  std::map<std::pair<std::string, std::string>, Row> rows;
  for (const Event& event : events()) {
    Row& row = rows[{event.category, event.name}];
    ++row.count;
    row.total_us += event.dur_us;
    row.max_us = std::max(row.max_us, event.dur_us);
  }
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-10s %-28s %8s %12s %12s\n",
                "category", "span", "count", "total-ms", "max-ms");
  out += line;
  for (const auto& [key, row] : rows) {
    std::snprintf(line, sizeof(line), "%-10s %-28s %8zu %12.3f %12.3f\n",
                  key.first.c_str(), key.second.c_str(), row.count,
                  row.total_us / 1e3, row.max_us / 1e3);
    out += line;
  }
  return out;
}

void Span::Begin(const char* category, const char* name) {
  event_.name = name;
  event_.category = category;
  event_.tid = ThisThreadId();
  event_.ts_us = Tracer::Get().NowMicros();
}

void Span::End() {
  Tracer& tracer = Tracer::Get();
  // A span that straddles Disable() is dropped rather than recorded with
  // a clock from the stale epoch.
  if (!tracer.enabled()) return;
  event_.dur_us = tracer.NowMicros() - event_.ts_us;
  tracer.Record(std::move(event_));
}

}  // namespace s2::obs
