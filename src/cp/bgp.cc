#include "cp/bgp.h"

#include <algorithm>

#include "cp/policy.h"

namespace s2::cp {

std::optional<Route> TransformForExport(const Route& best,
                                        const config::ViConfig& config,
                                        const config::BgpNeighbor& session,
                                        AttrPool& pool) {
  PolicyEval eval = EvalRouteMap(config.FindRouteMap(session.export_route_map),
                                 best, config.bgp.asn);
  if (!eval.accepted) return std::nullopt;
  // Work on one scratch tuple through the whole export pipeline and
  // intern exactly once at the end.
  AttrTuple tuple =
      eval.attrs_modified ? std::move(eval.tuple) : best.attrs.get();

  // AS_PATH: the overwrite set action already produced [own ASN] and
  // supersedes both remove-private-as and the prepend. Otherwise,
  // remove-private-as applies to the path as learned — before the local
  // prepend — which is where the §2.1 "ASNs preceding the first
  // non-private one" semantics reads from; then the exporter's ASN is
  // prepended.
  if (!eval.as_path_overwritten) {
    if (session.remove_private_as) {
      RemovePrivateAs(tuple.as_path, config.vendor);
    }
    tuple.as_path.insert(tuple.as_path.begin(), config.bgp.asn);
  }
  // eBGP scrubbing: LOCAL_PREF is local to the receiving AS.
  tuple.local_pref = 100;

  Route route = best;
  route.protocol = Protocol::kBgp;
  route.attrs = pool.Intern(std::move(tuple));
  return route;
}

std::optional<Route> ProcessImport(const Route& received,
                                   const config::ViConfig& config,
                                   const config::BgpNeighbor& session,
                                   topo::NodeId from, AttrPool& pool) {
  // eBGP loop prevention: reject paths containing our own ASN.
  const std::vector<uint32_t>& as_path = received.as_path();
  if (std::find(as_path.begin(), as_path.end(), config.bgp.asn) !=
      as_path.end()) {
    return std::nullopt;
  }
  PolicyEval eval = EvalRouteMap(config.FindRouteMap(session.import_route_map),
                                 received, config.bgp.asn);
  if (!eval.accepted) return std::nullopt;
  Route route = received;
  if (eval.attrs_modified) {
    route.attrs = pool.Intern(std::move(eval.tuple));
  }
  route.learned_from = from;
  route.protocol = Protocol::kBgp;
  return route;
}

bool SuppressedByAggregate(const util::Ipv4Prefix& prefix,
                           const config::ViConfig& config) {
  for (const config::BgpAggregate& agg : config.bgp.aggregates) {
    if (agg.summary_only && agg.prefix != prefix &&
        agg.prefix.Contains(prefix)) {
      return true;
    }
  }
  return false;
}

}  // namespace s2::cp
