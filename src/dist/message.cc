#include "dist/message.h"

#include "cp/route.h"
#include "util/status.h"

namespace s2::dist {

void EncodePacketBatch(const std::vector<dp::WirePacket>& frames,
                       std::vector<uint8_t>& payload) {
  cp::PutWireU32(payload, static_cast<uint32_t>(frames.size()));
  for (const dp::WirePacket& frame : frames) {
    cp::PutWireU32(payload, frame.at);
    cp::PutWireU32(payload, frame.from);
    cp::PutWireU32(payload, frame.src);
    cp::PutWireU32(payload, static_cast<uint32_t>(frame.hops));
    cp::PutWireU32(payload, static_cast<uint32_t>(frame.path.size()));
    for (topo::NodeId node : frame.path) cp::PutWireU32(payload, node);
    cp::PutWireU32(payload, static_cast<uint32_t>(frame.set.size()));
    payload.insert(payload.end(), frame.set.begin(), frame.set.end());
  }
}

std::vector<dp::WirePacket> DecodePacketBatch(
    const std::vector<uint8_t>& payload) {
  std::vector<dp::WirePacket> frames;
  size_t pos = 0;
  uint32_t count = cp::GetWireU32(payload, pos);
  // Each frame is at least 6 u32s; validate before reserving so a corrupt
  // count field can't balloon the allocation.
  constexpr size_t kMinFrameBytes = 24;
  if (count > (payload.size() - pos) / kMinFrameBytes) {
    throw util::WireFormatError("packet batch count exceeds payload");
  }
  frames.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    dp::WirePacket frame;
    frame.at = cp::GetWireU32(payload, pos);
    frame.from = cp::GetWireU32(payload, pos);
    frame.src = cp::GetWireU32(payload, pos);
    frame.hops = static_cast<int>(cp::GetWireU32(payload, pos));
    uint32_t path_len = cp::GetWireU32(payload, pos);
    if (path_len > (payload.size() - pos) / 4) {
      throw util::WireFormatError("packet path length exceeds payload");
    }
    frame.path.reserve(path_len);
    for (uint32_t p = 0; p < path_len; ++p) {
      frame.path.push_back(cp::GetWireU32(payload, pos));
    }
    uint32_t set_len = cp::GetWireU32(payload, pos);
    if (set_len > payload.size() - pos) {
      throw util::WireFormatError("packet BDD section exceeds payload");
    }
    frame.set.assign(payload.begin() + pos, payload.begin() + pos + set_len);
    pos += set_len;
    frames.push_back(std::move(frame));
  }
  return frames;
}

}  // namespace s2::dist
