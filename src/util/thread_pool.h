// A small fixed-size thread pool.
//
// Workers in dist/ use this to run their per-round node computations. On a
// many-core host this yields real parallelism; on the 1-core benchmark box
// it degrades to sequential execution, which is why the cost model
// (DESIGN.md §3) reports modeled parallel time from per-worker busy-time
// counters rather than relying on wall-clock speedup.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace s2::util {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; the returned future resolves when it completes.
  std::future<void> Submit(std::function<void()> task);

  // Runs `task(i)` for i in [0, count) across the pool and blocks until
  // every iteration has finished. Exceptions from tasks are rethrown
  // (the first one observed).
  //
  // Re-entrant: the calling thread participates in the loop (iterations are
  // claimed from a shared atomic cursor), so nesting a ParallelFor inside a
  // ParallelFor task on the same pool cannot deadlock — the inner call makes
  // progress on the caller's own thread even when every pool thread is
  // blocked in an outer iteration. dist/ relies on this: DPO fans out over
  // workers on the pool, and each worker's data plane fans out again over
  // its lanes/queries on the same pool.
  void ParallelFor(size_t count, const std::function<void(size_t)>& task);

  size_t size() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutting_down_ = false;
};

}  // namespace s2::util
