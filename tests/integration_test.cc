// End-to-end integration tests on the DCN-like network (the substitute for
// the paper's production datacenter): the full config -> parse ->
// distributed CP -> distributed DPV -> property pipeline, intact and with
// injected misconfigurations.
#include <gtest/gtest.h>

#include "config/vendor.h"
#include "core/mono.h"
#include "core/s2.h"
#include "topo/dcn.h"

namespace s2 {
namespace {

struct DcnFixture {
  topo::Network net;
  config::ParsedNetwork parsed;

  explicit DcnFixture(topo::DcnParams params = topo::DcnParams{})
      : net(topo::MakeDcn(params)),
        parsed(config::ParseNetwork(config::SynthesizeConfigs(net))) {}

  std::vector<topo::NodeId> Tors() const {
    std::vector<topo::NodeId> tors;
    for (topo::NodeId id = 0; id < parsed.graph.size(); ++id) {
      if (parsed.graph.node(id).name.find("-tor") != std::string::npos) {
        tors.push_back(id);
      }
    }
    return tors;
  }
};

dp::Query TorToTorQuery(const DcnFixture& fx) {
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  query.sources = fx.Tors();
  query.destinations = fx.Tors();
  return query;
}

TEST(IntegrationTest, DcnAllTorPairsReachableDistributed) {
  DcnFixture fx;
  dist::ControllerOptions options;
  options.num_workers = 4;
  options.num_shards = 6;
  core::S2Verifier verifier(options);
  core::VerifyResult result = verifier.Verify(fx.parsed,
                                              {TorToTorQuery(fx)});
  ASSERT_TRUE(result.ok()) << result.failure_detail;
  EXPECT_EQ(result.queries[0].unreachable_pairs, 0u);
  EXPECT_GT(result.queries[0].reachable_pairs, 0u);
  EXPECT_TRUE(result.queries[0].loop_free);
  EXPECT_TRUE(result.queries[0].multipath_violations.empty());
}

TEST(IntegrationTest, WaypointThroughCoreHoldsCrossCluster) {
  DcnFixture fx;
  // Cross-cluster traffic must transit the core layer. Use one TOR in
  // cluster 0 and one in cluster 2 (the big cluster), with every core as
  // a waypoint alternative — check per-core bits individually: traffic
  // spreads over cores, so no single core is always traversed, but at
  // least one core waypoint must be hit by inspecting the union. Here we
  // verify the simpler directional claim on a single-core DCN.
  topo::DcnParams params;
  params.cores = 1;
  DcnFixture single(params);
  auto src = single.parsed.graph.FindByName("c0p0-tor0");
  auto dst = single.parsed.graph.FindByName("c2p0-tor0");
  auto core0 = single.parsed.graph.FindByName("core0");
  ASSERT_NE(src, topo::kInvalidNode);
  ASSERT_NE(dst, topo::kInvalidNode);
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.2.0.0/24");
  query.sources = {src};
  query.destinations = {dst};
  query.transits = {core0};
  dist::ControllerOptions options;
  options.num_workers = 3;
  options.layout.meta_bits = 1;
  core::S2Verifier verifier(options);
  core::VerifyResult result = verifier.Verify(single.parsed, {query});
  ASSERT_TRUE(result.ok()) << result.failure_detail;
  ASSERT_EQ(result.queries[0].waypoints.size(), 1u);
  EXPECT_TRUE(result.queries[0].waypoints[0].always_traversed);
  EXPECT_EQ(result.queries[0].unreachable_pairs, 0u);
}

TEST(IntegrationTest, ManagementSpaceFilteredBetweenBorders) {
  DcnFixture fx;
  auto b0 = fx.parsed.graph.FindByName("border0");
  auto b1 = fx.parsed.graph.FindByName("border1");
  ASSERT_NE(b0, topo::kInvalidNode);
  // Loopback space injected at border0 toward border1's loopback: the
  // border-border ACL (and community filters) must keep management space
  // from transiting; expect no clean arrival of the full space.
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("172.16.0.0/12");
  query.sources = {b0};
  query.destinations = {b1};
  core::MonoVerifier mono{core::MonoOptions{}};
  core::VerifyResult result = mono.Verify(fx.parsed, {query});
  ASSERT_TRUE(result.ok());
  // border1's loopback is still reachable via the fabric (cores), but the
  // direct border-border link drops management traffic — the query stays
  // loop-free and produces blackhole finals from the ACL drop.
  EXPECT_TRUE(result.queries[0].loop_free);
}

TEST(IntegrationTest, DroppedAnnouncementDetectedAsUnreachable) {
  DcnFixture fx;
  // Misconfiguration: one TOR forgets to announce its VLAN prefix.
  topo::Network broken = fx.net;
  auto victim = broken.graph.FindByName("c0p0-tor1");
  ASSERT_NE(victim, topo::kInvalidNode);
  auto& announced = broken.intents[victim].announced;
  ASSERT_EQ(announced.size(), 2u);
  announced.pop_back();  // drop the VLAN /24, keep the loopback
  auto parsed = config::ParseNetwork(config::SynthesizeConfigs(broken));

  DcnFixture helper;
  dp::Query query = TorToTorQuery(helper);
  dist::ControllerOptions options;
  options.num_workers = 4;
  core::S2Verifier verifier(options);
  core::VerifyResult result = verifier.Verify(parsed, {query});
  ASSERT_TRUE(result.ok()) << result.failure_detail;
  // Every other TOR now fails to reach the victim's prefix... the victim
  // announces nothing in 10/8, so pairs toward it vanish from the
  // reachability report entirely; compare pair counts against the intact
  // network.
  core::S2Verifier intact_verifier(options);
  core::VerifyResult intact = intact_verifier.Verify(fx.parsed, {query});
  EXPECT_LT(result.queries[0].reachable_pairs,
            intact.queries[0].reachable_pairs);
}

TEST(IntegrationTest, BrokenAggregateBlackholesCoveredSpace) {
  DcnFixture fx;
  // Misconfiguration: the big cluster's spines aggregate a /15 that also
  // covers cluster 3's never-announced space — packets to that space now
  // follow the aggregate and die at the spine's Null0.
  topo::Network broken = fx.net;
  for (topo::NodeId id = 0; id < broken.graph.size(); ++id) {
    for (auto& agg : broken.intents[id].aggregates) {
      if (agg.prefix == util::MustParsePrefix("10.2.0.0/16")) {
        agg.prefix = util::MustParsePrefix("10.2.0.0/15");
      }
    }
  }
  auto parsed = config::ParseNetwork(config::SynthesizeConfigs(broken));
  auto src = parsed.graph.FindByName("c0p0-tor0");
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.3.0.0/16");
  query.sources = {src};
  core::MonoVerifier mono{core::MonoOptions{}};
  core::VerifyResult result = mono.Verify(parsed, {query});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.queries[0].blackhole_free);
  EXPECT_GT(result.queries[0].blackhole_finals, 0u);
}

TEST(IntegrationTest, RemovePrivateAsVisibleAtBorders) {
  DcnFixture fx;
  core::MonoVerifier mono{core::MonoOptions{}};
  core::VerifyResult result = mono.Verify(fx.parsed, {});
  ASSERT_TRUE(result.ok());
  // border0 learned routes from border1 (public ASN 60000, strips private
  // ASNs): any such route's AS path must contain no private ASN.
  auto border0 = fx.parsed.graph.FindByName("border0");
  auto border1 = fx.parsed.graph.FindByName("border1");
  const auto& rib = mono.last_engine()->node(border0).bgp_routes();
  size_t from_peer_border = 0;
  for (const auto& [prefix, routes] : rib) {
    for (const cp::Route& route : routes) {
      if (route.learned_from == border1) {
        ++from_peer_border;
        for (uint32_t asn : route.as_path()) {
          EXPECT_FALSE(cp::IsPrivateAsn(asn))
              << prefix.ToString() << " carries private ASN " << asn;
        }
      }
    }
  }
  EXPECT_GT(from_peer_border, 0u);
}

TEST(IntegrationTest, ConditionalDefaultPropagatesEverywhere) {
  DcnFixture fx;
  core::MonoVerifier mono{core::MonoOptions{}};
  core::VerifyResult result = mono.Verify(fx.parsed, {});
  ASSERT_TRUE(result.ok());
  auto dflt = util::MustParsePrefix("0.0.0.0/0");
  auto backup = util::MustParsePrefix("198.51.100.0/24");
  for (const auto& node : mono.last_engine()->nodes()) {
    EXPECT_TRUE(node->bgp_routes().count(dflt))
        << node->config().hostname << " lacks the conditional default";
    // The absent-watch backup prefix must NOT have fired.
    EXPECT_FALSE(node->bgp_routes().count(backup))
        << node->config().hostname;
  }
}

}  // namespace
}  // namespace s2
