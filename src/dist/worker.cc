#include "dist/worker.h"

#include "bdd/bdd_io.h"
#include "dp/fib.h"

namespace s2::dist {

Worker::Worker(uint32_t index, const config::ParsedNetwork& network,
               SidecarFabric* fabric, Options options)
    : index_(index),
      network_(&network),
      fabric_(fabric),
      options_(options),
      tracker_("worker-" + std::to_string(index), options.memory_budget),
      attr_pool_(&tracker_) {
  for (topo::NodeId id = 0; id < network.configs.size(); ++id) {
    if (fabric_->WorkerOf(id) == index_) {
      local_.push_back(id);
      nodes_.emplace(id, std::make_unique<cp::Node>(id, network, &tracker_,
                                                    &attr_pool_));
    }
  }
  // Shadow every remote switch adjacent to a local one.
  for (topo::NodeId id : local_) {
    for (const cp::Node::Session& session : nodes_.at(id)->sessions()) {
      if (!IsLocal(session.peer) && !shadows_.count(session.peer)) {
        shadows_.emplace(session.peer, ShadowNode(session.peer));
      }
    }
  }
}

// ---------------------------------------------------------- control plane

void Worker::BeginOspf() {
  for (topo::NodeId id : local_) nodes_.at(id)->BeginOspf();
}

void Worker::FinishOspf() {
  for (topo::NodeId id : local_) nodes_.at(id)->FinishOspf();
}

void Worker::BeginBgp(const cp::PrefixSet* shard) {
  for (topo::NodeId id : local_) nodes_.at(id)->BeginBgp(shard);
}

bool Worker::ComputeAndShip() { return ComputeAndShipImpl(false); }

bool Worker::ComputeAndShipImpl(bool suppress_remote) {
  util::Stopwatch watch;
  bool any = false;
  for (topo::NodeId id : local_) {
    any = nodes_.at(id)->ComputeRound() || any;
  }
  // Ship outboxes: local deliveries are buffered for phase B; remote ones
  // are serialized and sent through the sidecar. During post-crash replay
  // remote sends are suppressed — they were shipped before the crash and
  // live on in the surviving sidecar — but outboxes are still drained.
  for (topo::NodeId id : local_) {
    cp::Node& node = *nodes_.at(id);
    for (const cp::Node::Session& session : node.sessions()) {
      std::vector<cp::RouteUpdate> updates =
          node.TakeUpdatesFor(session.peer);
      if (updates.empty()) continue;
      if (IsLocal(session.peer)) {
        auto& box = local_pending_[{session.peer, id}];
        box.insert(box.end(), std::make_move_iterator(updates.begin()),
                   std::make_move_iterator(updates.end()));
      } else if (!suppress_remote) {
        Message message;
        message.type = MessageType::kRouteUpdates;
        message.to_node = session.peer;
        message.from_node = id;
        cp::SerializeRoutes(updates, message.payload, &attr_pool_);
        fabric_->Send(index_, std::move(message));
      }
    }
  }
  last_phase_seconds_ = watch.ElapsedSeconds();
  return any;
}

void Worker::Deliver() {
  util::Stopwatch watch;
  DeliverBatch(fabric_->Drain(index_));
  last_phase_seconds_ += watch.ElapsedSeconds();
}

void Worker::DeliverBatch(std::vector<Message> messages) {
  for (Message& message : messages) {
    if (message.type != MessageType::kRouteUpdates) continue;
    // Re-intern into this worker's pool: each distinct tuple in the batch
    // crossed the boundary once and costs one intern here.
    shadows_.at(message.from_node)
        .Deliver(message.to_node,
                 cp::DeserializeRoutes(message.payload, attr_pool_));
  }
  // Every local node pulls from each neighbor, agnostic of whether the
  // neighbor is a real node (same worker) or a shadow (paper Alg. 1).
  for (topo::NodeId id : local_) {
    cp::Node& node = *nodes_.at(id);
    for (const cp::Node::Session& session : node.sessions()) {
      std::vector<cp::RouteUpdate> updates;
      if (IsLocal(session.peer)) {
        auto it = local_pending_.find({id, session.peer});
        if (it != local_pending_.end()) {
          updates = std::move(it->second);
          local_pending_.erase(it);
        }
      } else {
        updates = shadows_.at(session.peer).TakeUpdatesFor(id);
      }
      if (!updates.empty()) node.ReceiveUpdates(session.peer, updates);
    }
  }
}

void Worker::SpillBgp(cp::RibStore& store, int shard) {
  for (topo::NodeId id : local_) nodes_.at(id)->SpillBgp(store, shard);
}

void Worker::RetainBgp() {
  for (topo::NodeId id : local_) nodes_.at(id)->RetainBgp();
}

// ------------------------------------------------------------- data plane

dp::ParallelForwarding::Options Worker::DataPlaneOptions() {
  dp::ParallelForwarding::Options dp_options;
  dp_options.lanes = options_.dp_lanes;
  dp_options.max_hops = options_.max_hops;
  dp_options.layout = options_.layout;
  dp_options.manager.max_nodes = options_.max_bdd_nodes;
  dp_options.manager.tracker = &tracker_;
  return dp_options;
}

void Worker::BuildDataPlane(const cp::RibStore* store) {
  util::Stopwatch watch;
  dp_ = std::make_unique<dp::ParallelForwarding>(DataPlaneOptions());
  for (topo::NodeId id : local_) {
    const cp::Node& node = *nodes_.at(id);
    std::map<util::Ipv4Prefix, std::vector<cp::Route>> from_store;
    const auto* bgp = &node.bgp_routes();
    if (store != nullptr) {
      from_store = store->ReadAll(id, attr_pool_);
      bgp = &from_store;
    }
    dp::Fib fib = dp::Fib::Build(*network_, id, *bgp, node.ospf_routes(),
                                 &tracker_);
    fib_bytes_ += fib.EstimateBytes();
    fib_edges_[id] = fib.ForwardEdges();
    // Predicates are built in the owning lane's manager.
    const dp::PacketCodec& codec = dp_->BeginNode(id);
    dp_->AddNode(id, dp::BuildPredicates(*network_, id, fib, codec));
  }
  predicate_seconds_ += watch.ElapsedSeconds();
  last_phase_seconds_ = watch.ElapsedSeconds();
}

void Worker::PrepareQuery(const dp::Query& query) {
  dp_->ResetQueryState();
  dp_->set_record_paths(query.record_paths);
  for (size_t i = 0; i < query.transits.size(); ++i) {
    if (IsLocal(query.transits[i])) {
      dp_->SetWaypointBit(query.transits[i], static_cast<uint32_t>(i));
    }
  }
  for (topo::NodeId src : query.sources) {
    if (IsLocal(src)) dp_->Inject(src, query.header_space);
  }
}

bool Worker::AcceptPackets() {
  util::Stopwatch watch;
  bool any = false;
  for (Message& message : fabric_->Drain(index_)) {
    if (message.type == MessageType::kPacketBatch) {
      for (dp::WirePacket& frame : DecodePacketBatch(message.payload)) {
        dp_->Accept(frame);
        any = true;
      }
      continue;
    }
    if (message.type != MessageType::kSymbolicPacket) continue;
    dp::WirePacket frame;
    frame.at = message.to_node;
    frame.from = message.from_node;
    frame.src = message.packet_src;
    frame.hops = message.packet_hops;
    frame.path = std::move(message.packet_path);
    frame.set = std::move(message.payload);
    dp_->Accept(frame);
    any = true;
  }
  last_phase_seconds_ = watch.ElapsedSeconds();
  return any;
}

bool Worker::ForwardAndShip() {
  util::Stopwatch watch;
  size_t steps_before = dp_->steps();
  // Buffer emissions per destination worker; one kPacketBatch per
  // destination amortizes the message envelope, and sending after the run
  // (in ascending destination order) keeps the fabric order deterministic
  // regardless of the lane schedule.
  std::map<uint32_t, std::vector<dp::WirePacket>> outgoing;
  dp_->Run(options_.pool, [&](const dp::WirePacket& frame) {
    outgoing[fabric_->WorkerOf(frame.at)].push_back(frame);
  });
  for (auto& [dest, frames] : outgoing) {
    Message message;
    message.type = MessageType::kPacketBatch;
    message.to_node = frames.front().at;
    message.from_node = frames.front().from;
    EncodePacketBatch(frames, message.payload);
    fabric_->Send(index_, std::move(message));
  }
  last_phase_seconds_ += watch.ElapsedSeconds();
  return dp_->steps() != steps_before;
}

std::vector<SerializedFinal> Worker::TakeFinals() {
  std::vector<SerializedFinal> out;
  for (size_t lane = 0; lane < dp_->lanes(); ++lane) {
    for (const dp::FinalPacket& final : dp_->lane_engine(lane).finals()) {
      SerializedFinal serialized;
      serialized.src = final.src;
      serialized.node = final.node;
      serialized.state = final.state;
      serialized.path = final.path;
      serialized.set = bdd::Serialize(final.set);
      out.push_back(std::move(serialized));
    }
  }
  return out;
}

std::map<topo::NodeId, std::vector<uint8_t>> Worker::SnapshotPredicates()
    const {
  std::map<topo::NodeId, std::vector<uint8_t>> snapshot;
  for (topo::NodeId id : local_) {
    snapshot[id] = fault::SerializePredicates(dp_->node_predicates(id));
  }
  return snapshot;
}

void Worker::ResetDataPlane() {
  dp_.reset();
  fib_edges_.clear();
  if (fib_bytes_ > 0) {
    tracker_.Release(fib_bytes_);
    fib_bytes_ = 0;
  }
}

// ---------------------------------------------- crash recovery (src/fault)

fault::WorkerCheckpoint Worker::Checkpoint(int shard) const {
  fault::WorkerCheckpoint checkpoint;
  checkpoint.shard = shard;
  for (topo::NodeId id : local_) {
    nodes_.at(id)->SerializeState(checkpoint.node_state[id]);
  }
  return checkpoint;
}

void Worker::CheckpointDataPlane(fault::WorkerCheckpoint& checkpoint) const {
  checkpoint.has_data_plane = true;
  checkpoint.fib_bytes = fib_bytes_;
  checkpoint.predicate_state.clear();
  for (topo::NodeId id : local_) {
    checkpoint.predicate_state[id] =
        fault::SerializePredicates(dp_->node_predicates(id));
  }
}

void Worker::Restore(const fault::WorkerCheckpoint& checkpoint,
                     const cp::PrefixSet* shard) {
  for (topo::NodeId id : local_) {
    nodes_.at(id)->RestoreState(checkpoint.node_state.at(id), shard);
  }
}

void Worker::ReplayDelivered(int from_round, int to_round,
                             const std::vector<fault::LoggedDelivery>& log) {
  size_t i = 0;
  for (int round = from_round; round < to_round; ++round) {
    ComputeAndShipImpl(/*suppress_remote=*/true);
    std::vector<Message> batch;
    while (i < log.size() && log[i].round <= round) {
      batch.push_back(log[i++].message);
    }
    DeliverBatch(std::move(batch));
  }
}

void Worker::RestoreDataPlane(const fault::WorkerCheckpoint& checkpoint) {
  util::Stopwatch watch;
  dp_ = std::make_unique<dp::ParallelForwarding>(DataPlaneOptions());
  // Checkpoints carry predicate bytes, not FIBs, so the forward-edge index
  // is lost on recovery (see fib_edges() in the header).
  fib_edges_.clear();
  // local_ is rebuilt in the same order by the constructor, so BeginNode
  // reproduces the pre-crash lane assignment exactly.
  for (topo::NodeId id : local_) {
    const dp::PacketCodec& codec = dp_->BeginNode(id);
    dp_->AddNode(id, fault::DeserializePredicates(
                         *codec.manager(), checkpoint.predicate_state.at(id)));
  }
  fib_bytes_ = checkpoint.fib_bytes;
  tracker_.Charge(fib_bytes_);
  predicate_seconds_ += watch.ElapsedSeconds();
}

}  // namespace s2::dist
