// Switch-model (cp::Node) tests: origination, the pull-based round
// protocol, aggregation activation/deactivation, conditional
// advertisement, split horizon, and result retention.
#include <gtest/gtest.h>

#include "cp/node.h"
#include "test_networks.h"

namespace s2::cp {
namespace {

// Drives a set of nodes through synchronous rounds until the fix point.
int Converge(std::vector<std::unique_ptr<Node>>& nodes, int max_rounds = 50) {
  int rounds = 0;
  for (;;) {
    bool any = false;
    for (auto& node : nodes) any = node->ComputeRound() || any;
    if (!any) break;
    for (auto& node : nodes) {
      for (const Node::Session& session : node->sessions()) {
        auto updates = nodes[session.peer]->TakeUpdatesFor(node->id());
        if (!updates.empty()) node->ReceiveUpdates(session.peer, updates);
      }
    }
    if (++rounds > max_rounds) ADD_FAILURE() << "did not converge";
    if (rounds > max_rounds) break;
  }
  return rounds;
}

AttrPool& TestPool() {
  static AttrPool* pool = new AttrPool();
  return *pool;
}

std::vector<std::unique_ptr<Node>> MakeNodes(
    const config::ParsedNetwork& net) {
  std::vector<std::unique_ptr<Node>> nodes;
  for (topo::NodeId id = 0; id < net.configs.size(); ++id) {
    nodes.push_back(std::make_unique<Node>(id, net, nullptr, &TestPool()));
  }
  return nodes;
}

TEST(NodeTest, SessionsResolvePeers) {
  auto net = testing::Parse(testing::MakeChain(3));
  Node middle(1, net, nullptr, &TestPool());
  ASSERT_EQ(middle.sessions().size(), 2u);
  EXPECT_EQ(middle.sessions()[0].peer, 0u);
  EXPECT_EQ(middle.sessions()[1].peer, 2u);
}

TEST(NodeTest, ChainConvergesWithFullRibs) {
  auto net = testing::Parse(testing::MakeChain(4));
  auto nodes = MakeNodes(net);
  for (auto& node : nodes) node->BeginBgp(nullptr);
  Converge(nodes);
  for (auto& node : nodes) node->RetainBgp();
  // Every node holds all 8 prefixes (4 loopbacks + 4 /24s).
  for (auto& node : nodes) {
    EXPECT_EQ(node->bgp_routes().size(), 8u) << "node " << node->id();
  }
  // AS paths grow with distance: r0's route to 10.0.3.0/24 went through
  // r1, r2, r3.
  auto p3 = util::MustParsePrefix("10.0.3.0/24");
  EXPECT_EQ(nodes[0]->bgp_routes().at(p3).front().as_path().size(), 3u);
  EXPECT_EQ(nodes[0]->bgp_routes().at(p3).front().learned_from, 1u);
}

TEST(NodeTest, DiamondProducesEcmp) {
  auto net = testing::Parse(testing::MakeDiamond());
  auto nodes = MakeNodes(net);
  for (auto& node : nodes) node->BeginBgp(nullptr);
  Converge(nodes);
  for (auto& node : nodes) node->RetainBgp();
  auto p3 = util::MustParsePrefix("10.0.3.0/24");
  const auto& paths = nodes[0]->bgp_routes().at(p3);
  ASSERT_EQ(paths.size(), 2u);  // via r1 and via r2
  EXPECT_EQ(paths[0].learned_from, 1u);
  EXPECT_EQ(paths[1].learned_from, 2u);
}

TEST(NodeTest, EcmpRespectsMaxPaths) {
  topo::Network net = testing::MakeDiamond();
  net.intents[0].max_ecmp_paths = 1;
  auto parsed = testing::Parse(net);
  auto nodes = MakeNodes(parsed);
  for (auto& node : nodes) node->BeginBgp(nullptr);
  Converge(nodes);
  for (auto& node : nodes) node->RetainBgp();
  EXPECT_EQ(
      nodes[0]->bgp_routes().at(util::MustParsePrefix("10.0.3.0/24")).size(),
      1u);
}

TEST(NodeTest, AsPathPrependSteersTrafficAway) {
  // Diamond: r1 prepends twice on its exports toward r0, so r0 routes to
  // r3's prefix via r2 only — the classic traffic-engineering move.
  topo::Network net = testing::MakeDiamond();
  for (topo::InterfaceIntent& iface : net.intents[1].interfaces) {
    if (iface.peer == 0) iface.export_policy.as_path_prepend = 2;
  }
  auto parsed = testing::Parse(net);
  auto nodes = MakeNodes(parsed);
  for (auto& node : nodes) node->BeginBgp(nullptr);
  Converge(nodes);
  for (auto& node : nodes) node->RetainBgp();
  const auto& paths =
      nodes[0]->bgp_routes().at(util::MustParsePrefix("10.0.3.0/24"));
  ASSERT_EQ(paths.size(), 1u);  // prepended path no longer ECMP-equal
  EXPECT_EQ(paths[0].learned_from, 2u);
  // The de-preferred path is still a candidate with the longer AS path.
  const auto& direct =
      nodes[0]->bgp_routes().at(util::MustParsePrefix("10.0.1.0/24"));
  EXPECT_EQ(direct.front().as_path().size(), 3u);  // 1 real + 2 prepended
}

TEST(NodeTest, ShardRestrictsOrigination) {
  auto net = testing::Parse(testing::MakeChain(3));
  auto nodes = MakeNodes(net);
  PrefixSet shard = {util::MustParsePrefix("10.0.0.0/24"),
                     util::MustParsePrefix("10.0.2.0/24")};
  for (auto& node : nodes) node->BeginBgp(&shard);
  Converge(nodes);
  for (auto& node : nodes) node->RetainBgp();
  for (auto& node : nodes) {
    EXPECT_EQ(node->bgp_routes().size(), 2u);
    for (const auto& [prefix, routes] : node->bgp_routes()) {
      EXPECT_TRUE(shard.count(prefix));
    }
  }
}

TEST(NodeTest, AggregateActivatesWithContributor) {
  topo::Network net = testing::MakeChain(3);
  // r1 aggregates r2's announcement space.
  net.intents[1].aggregates.push_back(topo::AggregateIntent{
      util::MustParsePrefix("10.0.2.0/23"), true, {777}});
  auto parsed = testing::Parse(net);
  auto nodes = MakeNodes(parsed);
  for (auto& node : nodes) node->BeginBgp(nullptr);
  Converge(nodes);
  for (auto& node : nodes) node->RetainBgp();
  auto agg = util::MustParsePrefix("10.0.2.0/23");
  auto specific = util::MustParsePrefix("10.0.2.0/24");
  // r0 sees the aggregate (tagged) but NOT the suppressed specific.
  ASSERT_TRUE(nodes[0]->bgp_routes().count(agg));
  EXPECT_TRUE(nodes[0]->bgp_routes().at(agg).front().HasCommunity(777));
  EXPECT_FALSE(nodes[0]->bgp_routes().count(specific));
  // r1 keeps the specific in its own RIB (needed for forwarding).
  EXPECT_TRUE(nodes[1]->bgp_routes().count(specific));
  // r2, the contributor itself, does not hear its own specific suppressed
  // but does receive the aggregate.
  EXPECT_TRUE(nodes[2]->bgp_routes().count(agg));
}

TEST(NodeTest, AggregateInactiveWithoutContributor) {
  topo::Network net = testing::MakeChain(2);
  net.intents[1].aggregates.push_back(topo::AggregateIntent{
      util::MustParsePrefix("192.168.0.0/16"), true, {}});
  auto parsed = testing::Parse(net);
  auto nodes = MakeNodes(parsed);
  for (auto& node : nodes) node->BeginBgp(nullptr);
  Converge(nodes);
  for (auto& node : nodes) node->RetainBgp();
  EXPECT_FALSE(
      nodes[0]->bgp_routes().count(util::MustParsePrefix("192.168.0.0/16")));
}

TEST(NodeTest, ConditionalAdvertisementPresent) {
  topo::Network net = testing::MakeChain(2);
  // r1 advertises a default route only while it has r0's /24.
  net.intents[1].cond_advs.push_back(topo::CondAdvIntent{
      util::MustParsePrefix("0.0.0.0/0"),
      util::MustParsePrefix("10.0.0.0/24"), true});
  auto parsed = testing::Parse(net);
  auto nodes = MakeNodes(parsed);
  for (auto& node : nodes) node->BeginBgp(nullptr);
  Converge(nodes);
  for (auto& node : nodes) node->RetainBgp();
  EXPECT_TRUE(
      nodes[0]->bgp_routes().count(util::MustParsePrefix("0.0.0.0/0")));
}

TEST(NodeTest, ConditionalAdvertisementAbsentWatch) {
  topo::Network net = testing::MakeChain(2);
  // Advertise a backup prefix only if a never-announced prefix is absent:
  // fires.
  net.intents[1].cond_advs.push_back(topo::CondAdvIntent{
      util::MustParsePrefix("198.51.100.0/24"),
      util::MustParsePrefix("203.0.113.0/24"), false});
  auto parsed = testing::Parse(net);
  auto nodes = MakeNodes(parsed);
  for (auto& node : nodes) node->BeginBgp(nullptr);
  Converge(nodes);
  for (auto& node : nodes) node->RetainBgp();
  EXPECT_TRUE(nodes[0]->bgp_routes().count(
      util::MustParsePrefix("198.51.100.0/24")));
}

TEST(NodeTest, SplitHorizonKeepsOutboxesLean) {
  auto net = testing::Parse(testing::MakeChain(2));
  auto nodes = MakeNodes(net);
  for (auto& node : nodes) node->BeginBgp(nullptr);
  Converge(nodes);
  // After convergence a fresh ComputeRound must produce nothing — in
  // particular no echo of routes back to the neighbor they came from.
  EXPECT_FALSE(nodes[0]->ComputeRound());
  EXPECT_TRUE(nodes[0]->TakeUpdatesFor(1).empty());
}

TEST(NodeTest, OspfPassComputesShortestPaths) {
  topo::Network net = testing::MakeChain(4);
  for (auto& intent : net.intents) intent.enable_ospf = true;
  auto parsed = testing::Parse(net);
  auto nodes = MakeNodes(parsed);
  for (auto& node : nodes) node->BeginOspf();
  Converge(nodes);
  for (auto& node : nodes) node->FinishOspf();
  // r0's OSPF route to r3's loopback has metric 3.
  auto lo3 = util::MustParsePrefix("172.16.0.3/32");
  ASSERT_TRUE(nodes[0]->ospf_routes().count(lo3));
  EXPECT_EQ(nodes[0]->ospf_routes().at(lo3).front().metric, 3u);
}

TEST(NodeTest, RedistributesOspfIntoBgp) {
  topo::Network net = testing::MakeChain(3);
  // Only r0 and r1 run OSPF; r1 redistributes into BGP toward r2.
  net.intents[0].enable_ospf = true;
  net.intents[1].enable_ospf = true;
  net.intents[1].redistribute_ospf_into_bgp = true;
  // Remove r0's loopback from its own BGP announcements so the only way
  // r2 can learn it is via redistribution at r1.
  net.intents[0].announced.clear();
  auto parsed = testing::Parse(net);
  auto nodes = MakeNodes(parsed);
  for (auto& node : nodes) node->BeginOspf();
  Converge(nodes);
  for (auto& node : nodes) node->FinishOspf();
  for (auto& node : nodes) node->BeginBgp(nullptr);
  Converge(nodes);
  for (auto& node : nodes) node->RetainBgp();
  auto lo0 = util::MustParsePrefix("172.16.0.0/32");
  ASSERT_TRUE(nodes[2]->bgp_routes().count(lo0));
  EXPECT_EQ(nodes[2]->bgp_routes().at(lo0).front().origin(),
            2u);  // incomplete
}

}  // namespace
}  // namespace s2::cp
