// Monolithic engine tests: protocol sequencing, fixed-point convergence on
// reference topologies, sharded-vs-unsharded equivalence, and the
// non-convergence timeout.
#include <gtest/gtest.h>

#include "config/vendor.h"
#include "cp/engine.h"
#include "test_networks.h"
#include "topo/fattree.h"

namespace s2::cp {
namespace {

TEST(MonoEngineTest, FatTree4AllPrefixesEverywhere) {
  topo::FatTreeParams params;
  params.k = 4;
  auto parsed = testing::Parse(topo::MakeFatTree(params));
  MonoEngine engine(parsed, nullptr);
  engine.Run(nullptr, nullptr);
  // 20 loopbacks + 8 host prefixes on every one of the 20 switches.
  size_t route_entries = 0;
  for (const auto& node : engine.nodes()) {
    EXPECT_EQ(node->bgp_routes().size(), 28u);
    for (const auto& [prefix, routes] : node->bgp_routes()) {
      route_entries += routes.size();
    }
  }
  // Route entries exceed prefix entries: ECMP sets count per path.
  EXPECT_EQ(engine.stats().total_best_routes, route_entries);
  EXPECT_GT(route_entries, 28u * 20u);
  EXPECT_GT(engine.stats().bgp_rounds, 0);
  EXPECT_EQ(engine.stats().shards_executed, 1);
}

TEST(MonoEngineTest, FatTreeShortestPathsAndEcmp) {
  topo::FatTreeParams params;
  params.k = 4;
  auto parsed = testing::Parse(topo::MakeFatTree(params));
  MonoEngine engine(parsed, nullptr);
  engine.Run(nullptr, nullptr);
  topo::NodeId e00 = parsed.graph.FindByName("edge-0-0");
  topo::NodeId e10 = parsed.graph.FindByName("edge-1-0");
  ASSERT_NE(e00, topo::kInvalidNode);
  // Cross-pod route: AS-path length 4 (agg, core, agg, edge), ECMP over
  // the 2 aggregation uplinks.
  auto p = util::MustParsePrefix("10.1.0.0/24");
  const auto& routes = engine.node(e00).bgp_routes().at(p);
  EXPECT_EQ(routes.front().as_path().size(), 4u);
  EXPECT_EQ(routes.size(), 2u);
  EXPECT_EQ(routes.front().origin_node, e10);
  // Same-pod route: length 2, also ECMP 2.
  auto same_pod = util::MustParsePrefix("10.0.1.0/24");
  EXPECT_EQ(
      engine.node(e00).bgp_routes().at(same_pod).front().as_path().size(),
      2u);
}

TEST(MonoEngineTest, ShardedMatchesUnshardedExactly) {
  topo::FatTreeParams params;
  params.k = 4;
  auto parsed = testing::Parse(topo::MakeFatTree(params));

  MonoEngine direct(parsed, nullptr);
  direct.Run(nullptr, nullptr);

  ShardPlan plan = BuildShardPlan(parsed, 6);
  RibStore store;
  MonoEngine sharded(parsed, nullptr);
  sharded.Run(&plan, &store);

  for (topo::NodeId id = 0; id < parsed.configs.size(); ++id) {
    EXPECT_EQ(store.ReadAll(id, sharded.attr_pool()),
              direct.node(id).bgp_routes())
        << "node " << parsed.configs[id].hostname;
  }
}

TEST(MonoEngineTest, OspfRunsBeforeBgp) {
  topo::Network net = testing::MakeChain(3);
  for (auto& intent : net.intents) {
    intent.enable_ospf = true;
    intent.redistribute_ospf_into_bgp = true;
  }
  auto parsed = testing::Parse(net);
  MonoEngine engine(parsed, nullptr);
  engine.Run(nullptr, nullptr);
  EXPECT_GT(engine.stats().ospf_rounds, 0);
  EXPECT_GT(engine.stats().bgp_rounds, 0);
  // OSPF results feed the FIB path later; here just check they exist.
  EXPECT_FALSE(engine.node(0).ospf_routes().empty());
}

TEST(MonoEngineTest, OscillatingConditionalAdvertisementTimesOut) {
  topo::Network net = testing::MakeChain(2);
  // Pathological: advertise P iff P is absent — flips every round.
  auto p = util::MustParsePrefix("203.0.113.0/24");
  net.intents[0].cond_advs.push_back(topo::CondAdvIntent{p, p, false});
  auto parsed = testing::Parse(net);
  EngineOptions options;
  options.max_rounds_per_pass = 30;
  MonoEngine engine(parsed, nullptr, options);
  EXPECT_THROW(engine.Run(nullptr, nullptr), util::SimulatedTimeout);
}

TEST(MonoEngineTest, RemovePrivateAsOnPrivateFabricBreaksConvergence) {
  // A documented real-world foot-gun the model reproduces: stripping
  // private ASNs on a fabric whose ASNs are all private erases the loop
  // prevention state from the AS_PATH, so a node can re-learn its own
  // prefix through a neighbor and the route computation counts to
  // infinity. The verifier reports it as non-convergence, not a hang.
  // A 3-ring with private ASNs, built before link addressing so the
  // closing edge gets interfaces too.
  topo::Network net;
  net.name = "ring3";
  for (int i = 0; i < 3; ++i) {
    net.graph.AddNode(topo::NodeInfo{"r" + std::to_string(i),
                                     topo::Role::kEdge, 0, -1, 1.0});
  }
  net.graph.AddEdge(0, 1);
  net.graph.AddEdge(1, 2);
  net.graph.AddEdge(2, 0);
  net.intents.resize(3);
  for (int i = 0; i < 3; ++i) {
    topo::NodeIntent& intent = net.intents[i];
    intent.asn = 65001 + static_cast<uint32_t>(i);
    ASSERT_TRUE(IsPrivateAsn(intent.asn));
    intent.remove_private_as = true;
    intent.loopback = util::Ipv4Prefix(
        util::Ipv4Address((172u << 24) | (16u << 16) | uint32_t(i)), 32);
    intent.announced.push_back(intent.loopback);
  }
  topo::AssignLinkAddresses(net);
  auto parsed = testing::Parse(net);
  EngineOptions options;
  options.max_rounds_per_pass = 60;
  MonoEngine engine(parsed, nullptr, options);
  EXPECT_THROW(engine.Run(nullptr, nullptr), util::SimulatedTimeout);
}

TEST(MonoEngineTest, TracksMemoryAgainstBudget) {
  topo::FatTreeParams params;
  params.k = 4;
  auto parsed = testing::Parse(topo::MakeFatTree(params));
  util::MemoryTracker tight("mono", 50'000);  // far below what k=4 needs
  MonoEngine engine(parsed, &tight);
  EXPECT_THROW(engine.Run(nullptr, nullptr), util::SimulatedOom);
}

TEST(MonoEngineTest, ShardingLowersPeakMemory) {
  topo::FatTreeParams params;
  params.k = 4;
  auto parsed = testing::Parse(topo::MakeFatTree(params));

  util::MemoryTracker unsharded("a");
  MonoEngine direct(parsed, &unsharded);
  direct.Run(nullptr, nullptr);

  util::MemoryTracker shardtrack("b");
  ShardPlan plan = BuildShardPlan(parsed, 8);
  RibStore store;
  MonoEngine sharded(parsed, &shardtrack);
  sharded.Run(&plan, &store);

  EXPECT_LT(shardtrack.peak_bytes(), unsharded.peak_bytes());
}

}  // namespace
}  // namespace s2::cp
