#include "core/report.h"

#include <fstream>
#include <sstream>

namespace s2::core {

namespace {

void AppendMetrics(std::ostringstream& os, const char* name,
                   const dist::RoundMetrics& metrics) {
  os << "\"" << name << "\":{"
     << "\"rounds\":" << metrics.rounds << ","
     << "\"wall_seconds\":" << metrics.wall_seconds << ","
     << "\"modeled_seconds\":" << metrics.modeled_seconds << ","
     << "\"comm_bytes\":" << metrics.comm_bytes << "}";
}

void AppendQuery(std::ostringstream& os, const dp::QueryResult& query) {
  os << "{\"reachable_pairs\":" << query.reachable_pairs
     << ",\"unreachable_pairs\":" << query.unreachable_pairs
     << ",\"loop_free\":" << (query.loop_free ? "true" : "false")
     << ",\"blackhole_free\":" << (query.blackhole_free ? "true" : "false")
     << ",\"loop_finals\":" << query.loop_finals
     << ",\"blackhole_finals\":" << query.blackhole_finals
     << ",\"multipath_violations\":" << query.multipath_violations.size()
     << ",\"paths_recorded\":" << query.paths_recorded
     << ",\"valleys\":" << query.valleys.size();
  os << ",\"waypoints\":[";
  for (size_t i = 0; i < query.waypoints.size(); ++i) {
    if (i) os << ",";
    os << "{\"transit\":" << query.waypoints[i].transit
       << ",\"always_traversed\":"
       << (query.waypoints[i].always_traversed ? "true" : "false") << "}";
  }
  os << "],\"unreachable\":[";
  bool first = true;
  for (const dp::ReachabilityPair& pair : query.reachability) {
    if (pair.reachable) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"src\":" << pair.src << ",\"dst\":" << pair.dst
       << ",\"fraction\":" << pair.fraction << "}";
  }
  os << "]}";
}

}  // namespace

std::string ToJson(const VerifyResult& result) {
  std::ostringstream os;
  os << "{\"status\":\"" << RunStatusName(result.status) << "\"";
  if (!result.ok()) {
    // Escape the failure detail minimally (quotes and backslashes).
    os << ",\"failure\":\"";
    for (char c : result.failure_detail) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
    os << "\"";
  }
  os << ",\"total_best_routes\":" << result.total_best_routes
     << ",\"peak_memory_bytes\":" << result.peak_memory_bytes
     << ",\"comm_bytes\":" << result.comm_bytes
     << ",\"forwarding_steps\":" << result.forwarding_steps
     << ",\"parse_seconds\":" << result.parse_seconds
     << ",\"partition_seconds\":" << result.partition_seconds << ",";
  AppendMetrics(os, "control_plane", result.control_plane);
  os << ",";
  AppendMetrics(os, "dp_build", result.dp_build);
  os << ",";
  AppendMetrics(os, "dp_forward", result.dp_forward);
  os << ",\"worker_peaks\":[";
  for (size_t i = 0; i < result.worker_peaks.size(); ++i) {
    if (i) os << ",";
    os << result.worker_peaks[i];
  }
  os << "],\"queries\":[";
  for (size_t i = 0; i < result.queries.size(); ++i) {
    if (i) os << ",";
    AppendQuery(os, result.queries[i]);
  }
  os << "]}";
  return os.str();
}

bool WriteJsonReport(const VerifyResult& result, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  out << ToJson(result) << "\n";
  return static_cast<bool>(out);
}

}  // namespace s2::core
