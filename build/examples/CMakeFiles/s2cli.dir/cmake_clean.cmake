file(REMOVE_RECURSE
  "CMakeFiles/s2cli.dir/s2cli.cpp.o"
  "CMakeFiles/s2cli.dir/s2cli.cpp.o.d"
  "s2cli"
  "s2cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
