// BGP export/import transformation tests: AS prepend vs overwrite, eBGP
// attribute scrubbing, loop rejection, and aggregate suppression.
#include <gtest/gtest.h>

#include "cp/attr.h"
#include "cp/bgp.h"

namespace s2::cp {
namespace {

AttrPool& TestPool() {
  static AttrPool* pool = new AttrPool();
  return *pool;
}

config::ViConfig DeviceWithAsn(uint32_t asn, topo::Vendor vendor) {
  config::ViConfig config;
  config.hostname = "dev";
  config.vendor = vendor;
  config.bgp.enabled = true;
  config.bgp.asn = asn;
  return config;
}

config::BgpNeighbor Session() {
  config::BgpNeighbor neighbor;
  neighbor.peer_address = util::MustParseAddress("10.128.0.1");
  neighbor.remote_as = 65002;
  return neighbor;
}

Route LearnedRoute() {
  Route r;
  r.prefix = util::MustParsePrefix("10.1.0.0/24");
  r.protocol = Protocol::kBgp;
  AttrTuple tuple;
  tuple.local_pref = 200;  // import policy had raised it
  tuple.as_path = {65009};
  r.attrs = TestPool().Intern(std::move(tuple));
  r.learned_from = 4;
  return r;
}

TEST(TransformForExportTest, PrependsAndScrubsLocalPref) {
  auto config = DeviceWithAsn(65001, topo::Vendor::kAlpha);
  auto exported =
      TransformForExport(LearnedRoute(), config, Session(), TestPool());
  ASSERT_TRUE(exported.has_value());
  EXPECT_EQ(exported->as_path(), (std::vector<uint32_t>{65001, 65009}));
  EXPECT_EQ(exported->local_pref(), 100u);  // LOCAL_PREF not sent over eBGP
}

TEST(TransformForExportTest, OverwriteReplacesInsteadOfPrepending) {
  auto config = DeviceWithAsn(64600, topo::Vendor::kAlpha);
  config::RouteMap map;
  map.name = "EXP";
  config::RouteMapClause clause;
  clause.permit = true;
  clause.set_as_path_overwrite = true;
  map.clauses.push_back(clause);
  config.route_maps.emplace(map.name, map);
  auto session = Session();
  session.export_route_map = "EXP";
  auto exported =
      TransformForExport(LearnedRoute(), config, session, TestPool());
  ASSERT_TRUE(exported.has_value());
  EXPECT_EQ(exported->as_path(), (std::vector<uint32_t>{64600}));
}

TEST(TransformForExportTest, DenyYieldsNullopt) {
  auto config = DeviceWithAsn(65001, topo::Vendor::kAlpha);
  config::RouteMap map;
  map.name = "EXP";
  config::RouteMapClause deny;
  deny.permit = false;
  map.clauses.push_back(deny);
  config.route_maps.emplace(map.name, map);
  auto session = Session();
  session.export_route_map = "EXP";
  EXPECT_FALSE(TransformForExport(LearnedRoute(), config, session,
                                  TestPool()));
}

TEST(TransformForExportTest, RemovePrivateAsUsesVendorSemantics) {
  Route r = LearnedRoute();
  r.MutateAttrs(TestPool(),
                [](AttrTuple& t) { t.as_path = {64512, 7018, 64513}; });
  auto session = Session();
  session.remove_private_as = true;

  // remove-private-as runs on the learned path, before the local prepend.
  // Alpha removes every private ASN.
  auto alpha = DeviceWithAsn(60000, topo::Vendor::kAlpha);
  auto ea = TransformForExport(r, alpha, session, TestPool());
  ASSERT_TRUE(ea.has_value());
  EXPECT_EQ(ea->as_path(), (std::vector<uint32_t>{60000, 7018}));

  // Beta removes only the leading private run (64512), leaving the
  // private ASN behind the first public one (64513) in place — the §2.1
  // vendor divergence, observable on the wire.
  auto beta = DeviceWithAsn(60000, topo::Vendor::kBeta);
  auto eb = TransformForExport(r, beta, session, TestPool());
  ASSERT_TRUE(eb.has_value());
  EXPECT_EQ(eb->as_path(), (std::vector<uint32_t>{60000, 7018, 64513}));
}

TEST(ProcessImportTest, RejectsOwnAsnInPath) {
  auto config = DeviceWithAsn(65001, topo::Vendor::kAlpha);
  Route r = LearnedRoute();
  r.MutateAttrs(TestPool(), [](AttrTuple& t) {
    t.as_path = {65009, 65001, 65003};  // contains our ASN
  });
  EXPECT_FALSE(ProcessImport(r, config, Session(), 4, TestPool()));
}

TEST(ProcessImportTest, AppliesImportPolicyAndProvenance) {
  auto config = DeviceWithAsn(65001, topo::Vendor::kAlpha);
  config::RouteMap map;
  map.name = "IMP";
  config::RouteMapClause clause;
  clause.permit = true;
  clause.set_local_pref = 200;
  clause.add_communities = {999};
  map.clauses.push_back(clause);
  config.route_maps.emplace(map.name, map);
  auto session = Session();
  session.import_route_map = "IMP";
  auto imported =
      ProcessImport(LearnedRoute(), config, session, 9, TestPool());
  ASSERT_TRUE(imported.has_value());
  EXPECT_EQ(imported->learned_from, 9u);
  EXPECT_EQ(imported->local_pref(), 200u);
  EXPECT_TRUE(imported->HasCommunity(999));
}

TEST(ProcessImportTest, ImportAcceptReusesHandleWhenUnmodified) {
  // No import policy: the accepted route must share the sender's interned
  // entry rather than re-interning an identical tuple.
  auto config = DeviceWithAsn(65001, topo::Vendor::kAlpha);
  Route learned = LearnedRoute();
  auto imported = ProcessImport(learned, config, Session(), 9, TestPool());
  ASSERT_TRUE(imported.has_value());
  EXPECT_TRUE(imported->attrs.SameEntry(learned.attrs));
}

TEST(ProcessImportTest, ImportDenyRejects) {
  auto config = DeviceWithAsn(65001, topo::Vendor::kAlpha);
  config::RouteMap map;
  map.name = "IMP";
  config::RouteMapClause deny;
  deny.permit = false;
  deny.match_covered_by = util::MustParsePrefix("10.0.0.0/8");
  map.clauses.push_back(deny);
  config.route_maps.emplace(map.name, map);
  auto session = Session();
  session.import_route_map = "IMP";
  EXPECT_FALSE(ProcessImport(LearnedRoute(), config, session, 9,
                             TestPool()));
}

TEST(SuppressedByAggregateTest, OnlySummaryOnlyCoveredStrictly) {
  auto config = DeviceWithAsn(65001, topo::Vendor::kAlpha);
  config::BgpAggregate agg;
  agg.prefix = util::MustParsePrefix("10.1.0.0/16");
  agg.summary_only = true;
  config.bgp.aggregates.push_back(agg);
  EXPECT_TRUE(
      SuppressedByAggregate(util::MustParsePrefix("10.1.2.0/24"), config));
  // The aggregate itself is never suppressed.
  EXPECT_FALSE(
      SuppressedByAggregate(util::MustParsePrefix("10.1.0.0/16"), config));
  // Outside the aggregate.
  EXPECT_FALSE(
      SuppressedByAggregate(util::MustParsePrefix("10.2.0.0/24"), config));
  // Non-summary-only aggregates do not suppress.
  config.bgp.aggregates[0].summary_only = false;
  EXPECT_FALSE(
      SuppressedByAggregate(util::MustParsePrefix("10.1.2.0/24"), config));
}

}  // namespace
}  // namespace s2::cp
