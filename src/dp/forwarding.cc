#include "dp/forwarding.h"

#include <algorithm>
#include <cstdlib>

namespace s2::dp {

const char* FinalStateName(FinalState state) {
  switch (state) {
    case FinalState::kArrive:
      return "arrive";
    case FinalState::kExit:
      return "exit";
    case FinalState::kBlackhole:
      return "blackhole";
    case FinalState::kLoop:
      return "loop";
  }
  return "?";
}

void ForwardingEngine::AddNode(topo::NodeId id, NodePredicates preds) {
  // The registered predicates are the domain's immutable-after-converge
  // snapshot surface: the engine keeps them alive for its whole lifetime,
  // and pinning makes any GC that would free one assert instead of
  // silently corrupting later queries (bdd.h, PinRoot).
  bdd::Manager* manager = codec_.manager();
  manager->PinRoot(preds.arrive);
  manager->PinRoot(preds.exit);
  manager->PinRoot(preds.discard);
  for (const auto& [port, pred] : preds.forward) manager->PinRoot(pred);
  for (const auto& [port, pred] : preds.acl_in) manager->PinRoot(pred);
  for (const auto& [port, pred] : preds.acl_out) manager->PinRoot(pred);
  nodes_.emplace(id, std::move(preds));
}

void ForwardingEngine::ResetQueryState() {
  queue_.clear();
  path_queue_.clear();
  finals_.clear();
  waypoint_bits_.clear();
  steps_ = 0;
}

void ForwardingEngine::SetWaypointBit(topo::NodeId node, uint32_t meta_bit) {
  waypoint_bits_[node] = meta_bit;
}

void ForwardingEngine::Inject(topo::NodeId at, const bdd::Bdd& set) {
  InFlightPacket packet;
  packet.at = at;
  packet.src = at;
  packet.set = set;
  Enqueue(packet);
}

void ForwardingEngine::Accept(InFlightPacket packet) { Enqueue(packet); }

void ForwardingEngine::Enqueue(const InFlightPacket& packet) {
  if (record_paths_) {
    // Distinct histories must stay distinct: no coalescing.
    path_queue_[packet.hops].push_back(packet);
    return;
  }
  // Coalesce: ingress port only matters when this node filters on it.
  topo::NodeId from_eff = topo::kInvalidNode;
  auto node = nodes_.find(packet.at);
  if (node != nodes_.end() &&
      node->second.acl_in.count(packet.from) != 0) {
    from_eff = packet.from;
  }
  QueueKey key{packet.at, from_eff, packet.src};
  auto& level = queue_[packet.hops];
  auto it = level.find(key);
  if (it == level.end()) {
    level.emplace(key, packet.set);
  } else {
    it->second |= packet.set;
  }
}

int ForwardingEngine::NextLevel() const {
  int next = kIdle;
  if (!path_queue_.empty()) next = std::min(next, path_queue_.begin()->first);
  if (!queue_.empty()) next = std::min(next, queue_.begin()->first);
  return next;
}

void ForwardingEngine::DrainLevel(int level, const RemoteEmit& emit) {
  auto path_it = path_queue_.find(level);
  if (path_it != path_queue_.end()) {
    std::vector<InFlightPacket> pending = std::move(path_it->second);
    path_queue_.erase(path_it);
    for (InFlightPacket& packet : pending) {
      Process(std::move(packet), emit);
    }
  }
  auto level_it = queue_.find(level);
  if (level_it != queue_.end()) {
    std::map<QueueKey, bdd::Bdd> pending = std::move(level_it->second);
    queue_.erase(level_it);
    for (auto& [key, set] : pending) {
      InFlightPacket packet;
      packet.at = std::get<0>(key);
      packet.from = std::get<1>(key);
      packet.src = std::get<2>(key);
      packet.hops = level;
      packet.set = std::move(set);
      Process(std::move(packet), emit);
    }
  }
}

void ForwardingEngine::Run(const RemoteEmit& emit) {
  // Ascending hop levels: every copy that can merge has merged before its
  // level is processed (forwarding only moves packets to higher levels).
  for (int level = NextLevel(); level != kIdle; level = NextLevel()) {
    DrainLevel(level, emit);
  }
}

void ForwardingEngine::Final(const InFlightPacket& packet, FinalState state,
                             bdd::Bdd set) {
  if (set.IsZero()) return;
  finals_.push_back(FinalPacket{packet.src, packet.at, state,
                                std::move(set), packet.path});
}

void ForwardingEngine::Process(InFlightPacket packet,
                               const RemoteEmit& emit) {
  auto node_it = nodes_.find(packet.at);
  if (node_it == nodes_.end()) std::abort();  // misrouted remote packet
  const NodePredicates& preds = node_it->second;
  ++steps_;
  if (record_paths_) packet.path.push_back(packet.at);

  bdd::Bdd set = packet.set;

  // Ingress ACL (p1^in of Eq. 1).
  if (packet.from != topo::kInvalidNode) {
    auto acl = preds.acl_in.find(packet.from);
    if (acl != preds.acl_in.end()) {
      Final(packet, FinalState::kBlackhole, set.Diff(acl->second));
      set &= acl->second;
    }
  }
  if (set.IsZero()) return;

  // Waypoint write rule.
  auto waypoint = waypoint_bits_.find(packet.at);
  if (waypoint != waypoint_bits_.end()) {
    set = codec_.SetMetaBit(set, waypoint->second);
  }

  // Local final states.
  Final(packet, FinalState::kArrive, set & preds.arrive);
  Final(packet, FinalState::kExit, set & preds.exit);
  Final(packet, FinalState::kBlackhole, set & preds.discard);

  // TTL: whatever would keep forwarding past the hop budget loops.
  if (packet.hops >= options_.max_hops) {
    bdd::Bdd forwarding = codec_.manager()->Zero();
    for (const auto& [hop, pred] : preds.forward) forwarding |= pred;
    Final(packet, FinalState::kLoop, set & forwarding);
    return;
  }

  // Egress: pkt & fwd(p2) & acl_out(p2) per port (Eq. 1); the part an
  // egress ACL kills blackholes here.
  for (const auto& [hop, pred] : preds.forward) {
    bdd::Bdd out = set & pred;
    if (out.IsZero()) continue;
    auto acl = preds.acl_out.find(hop);
    if (acl != preds.acl_out.end()) {
      Final(packet, FinalState::kBlackhole, out.Diff(acl->second));
      out &= acl->second;
      if (out.IsZero()) continue;
    }
    InFlightPacket next;
    next.at = hop;
    next.from = packet.at;
    next.src = packet.src;
    next.hops = packet.hops + 1;
    next.set = std::move(out);
    next.path = packet.path;
    if (nodes_.count(hop)) {
      Enqueue(next);
    } else {
      if (!emit) std::abort();  // remote hop without a transport
      emit(next);
    }
  }
}

bdd::Bdd ForwardingEngine::ArrivedAt(topo::NodeId node) const {
  bdd::Bdd result = codec_.manager()->Zero();
  for (const FinalPacket& final : finals_) {
    if (final.node == node && final.state == FinalState::kArrive) {
      result |= final.set;
    }
  }
  return result;
}

}  // namespace s2::dp
