// Prefix sharding (paper §4.5).
//
// Route computations for different prefixes are mostly independent; the
// exceptions are (a) aggregates, which activate based on contributing
// (covered) prefixes, and (b) conditional advertisements, which watch
// another prefix. Both become edges of the directed prefix dependency
// graph (DPDG). Shards are built from the DPDG's weakly connected
// components with a largest-first greedy packing; components of equal size
// are shuffled so shards don't end up dominated by prefixes originating
// from switches on the same worker (the paper's balance note).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "config/parser.h"
#include "cp/node.h"

namespace s2::cp {

// A partition of the BGP prefix universe into shards. Mutations go through
// Assign/Erase/Merge so the prefix->shard index stays consistent: ShardOf
// is O(1), which is what keeps ValidateShardPlan/RepairShardPlan linear in
// the number of dependency pairs (a linear-scan ShardOf made them
// superquadratic on real prefix counts).
class ShardPlan {
 public:
  size_t num_shards() const { return shards_.size(); }
  const std::vector<PrefixSet>& shards() const { return shards_; }
  const PrefixSet& shard(size_t i) const { return shards_[i]; }
  bool empty() const { return shards_.empty(); }

  // Every prefix lives in exactly one shard.
  size_t total_prefixes() const { return index_.size(); }

  // Index of the shard containing `prefix`, or -1.
  int ShardOf(const util::Ipv4Prefix& prefix) const {
    auto it = index_.find(prefix);
    return it == index_.end() ? -1 : it->second;
  }

  // Sets the shard count. Prefixes in shards beyond the new count (when
  // shrinking) are dropped from the plan.
  void ResizeShards(size_t n);

  // Puts `prefix` into `shard`, moving it out of its current shard if it
  // is already assigned elsewhere.
  void Assign(size_t shard, const util::Ipv4Prefix& prefix);

  // Removes `prefix` from the plan entirely (no-op when absent).
  void Erase(const util::Ipv4Prefix& prefix);

  // Merges the shards containing `a` and `b` into the lower-indexed one
  // and erases the higher-indexed shard (shards above it shift down).
  // Returns the merged shard's index, or -1 when the prefixes already
  // share a shard or either is unassigned.
  int Merge(const util::Ipv4Prefix& a, const util::Ipv4Prefix& b);

  friend bool operator==(const ShardPlan& lhs, const ShardPlan& rhs) {
    return lhs.shards_ == rhs.shards_;
  }

 private:
  std::vector<PrefixSet> shards_;
  std::unordered_map<util::Ipv4Prefix, int> index_;
};

// The BGP prefix universe: network statements, aggregates, conditional
// advertisements (both sides), and — for devices redistributing OSPF —
// the prefixes OSPF can contribute (loopbacks of OSPF-enabled devices),
// mirroring the paper's redistribution closure.
std::vector<util::Ipv4Prefix> CollectBgpPrefixes(
    const config::ParsedNetwork& network);

// Builds `num_shards` shards (fewer if there are fewer components).
ShardPlan BuildShardPlan(const config::ParsedNetwork& network, int num_shards,
                         uint64_t seed = 1);

// The §7 unforeseen-dependency fallback: merges the shards containing two
// prefixes discovered to depend on each other at runtime; the merged shard
// replaces the lower-indexed one. Returns the index of the merged shard,
// or -1 when the prefixes already share a shard.
int MergeShards(ShardPlan& plan, const util::Ipv4Prefix& a,
                const util::Ipv4Prefix& b);

// A dependency between two prefixes that a shard plan fails to respect
// (they sit in different shards, or one is missing entirely).
struct ShardViolation {
  util::Ipv4Prefix dependent;  // aggregate / advertised prefix
  util::Ipv4Prefix required;   // contributor / watched prefix
};

// Checks that `plan` co-locates every dependent pair the configurations
// induce: each aggregate with its potential contributors, each conditional
// advertisement with its watch. The same check the paper's §7 extension
// performs at runtime; with plans built by BuildShardPlan it never fires,
// but plans can also come from users or stale caches.
std::vector<ShardViolation> ValidateShardPlan(
    const config::ParsedNetwork& network, const ShardPlan& plan);

// Repairs `plan` in place by merging shards (and inserting missing
// prefixes into the dependent's shard) until ValidateShardPlan is clean —
// the paper's merge-and-recompute fallback. Returns the number of fixes.
int RepairShardPlan(const config::ParsedNetwork& network, ShardPlan& plan);

}  // namespace s2::cp
