// Vendor-specific configuration synthesis.
//
// The paper's input is a directory of vendor config files; its parser
// (Batfish's) turns them into vendor-independent models. We reproduce that
// pipeline: generators produce intents (topo/), CompileIntent turns an
// intent into the VI model, and EmitConfig renders the VI model in one of
// two pseudo-vendor dialects:
//
//   Vendor Alpha — IOS-flavoured block syntax ("router bgp", route-maps).
//   Vendor Beta  — flat "set ..." syntax (JunOS set-mode flavoured).
//
// The dialects also differ in one *behaviour*: remove-private-as on Alpha
// strips every private ASN from the AS_PATH, on Beta only the private ASNs
// preceding the first public one — the paper's §2.1 VSB example. The
// control plane honours the difference (cp/bgp.cc).
#pragma once

#include <string>
#include <vector>

#include "config/vi_model.h"
#include "topo/graph.h"

namespace s2::config {

// Compiles a node's intent into the vendor-independent model: composes the
// per-neighbor import/export route-maps (valley guards, cluster filters,
// class tagging, AS_PATH overwrite direction), ACLs and the BGP process.
// Exposed so tests can check Parse(Emit(vi)) == vi.
ViConfig CompileIntent(const topo::Network& network, topo::NodeId id);

// Renders `config` as configuration text in its vendor's dialect.
std::string EmitConfig(const ViConfig& config);

// Full pipeline for a synthesized network: one config file per device.
std::vector<std::string> SynthesizeConfigs(const topo::Network& network);

}  // namespace s2::config
