#include "dist/message.h"

// Message is a plain struct; this TU exists so the target has a home for
// future wire-format evolution (versioning, compression).
