file(REMOVE_RECURSE
  "libs2_cp.a"
)
