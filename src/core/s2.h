// S2Verifier — the library's public entry point for distributed
// verification (the paper's system, end to end).
//
// Typical use:
//
//   auto network = s2::config::ParseNetwork(config_texts);
//   s2::dist::ControllerOptions options;
//   options.num_workers = 8;
//   options.num_shards = 20;
//   s2::core::S2Verifier verifier(options);
//   s2::core::VerifyResult result = verifier.Verify(std::move(network),
//                                                   queries);
//
// Simulated resource exhaustion (per-worker memory budget, BDD node-table
// capacity) and non-convergence become result statuses, never crashes.
#pragma once

#include <optional>

#include "core/results.h"
#include "dist/controller.h"
#include "svc/snapshot.h"

namespace s2::core {

class S2Verifier {
 public:
  explicit S2Verifier(dist::ControllerOptions options)
      : options_(options) {}

  // Full workflow: partition -> distributed control plane -> distributed
  // data plane -> queries. With `queries` empty the data plane (FIBs +
  // predicates) is still built unless skip_data_plane_without_queries is
  // set — the control-plane-only mode Figures 8/9 measure.
  bool skip_data_plane_without_queries = false;

  VerifyResult Verify(config::ParsedNetwork network,
                      const std::vector<dp::Query>& queries);

  // Convenience: parse raw config texts first (parse time is reported).
  VerifyResult Verify(const std::vector<std::string>& config_texts,
                      const std::vector<dp::Query>& queries);

  // The controller of the last Verify call (valid until the next call);
  // exposes partition/shard-plan details for diagnostics and benchmarks.
  dist::Controller* last_controller() { return controller_.get(); }

  // Captures the last Verify's converged state as an immutable servable
  // snapshot (svc/snapshot.h) for the query service: publish it to a
  // SnapshotRegistry and serve queries without re-running the pipeline.
  // nullopt if no run converged with a data plane (failed run, or the
  // control-plane-only mode).
  std::optional<svc::Snapshot> ExportSnapshot() const;

  // One RunReport JSON object combining `result`'s phase metrics with the
  // last controller's live counters (per-worker fabric traffic, per-shard
  // control-plane metrics, reliable-transport stats). Deterministic key
  // order; schema label "s2.run_report.v1".
  std::string RunReportJson(const VerifyResult& result) const;
  // Writes RunReportJson(result) to `path`; false on I/O failure.
  bool WriteRunReport(const VerifyResult& result,
                      const std::string& path) const;

 private:
  dist::ControllerOptions options_;
  std::unique_ptr<dist::Controller> controller_;
};

}  // namespace s2::core
