# Empty compiler generated dependencies file for s2_topo.
# This may be replaced when dependencies are built.
