file(REMOVE_RECURSE
  "libs2_dist.a"
)
