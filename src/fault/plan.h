// Fault plan: the declarative description of everything that can go wrong
// in the sidecar fabric (paper §3.2 runs on a real 5-server testbed where
// RPCs are lost, delayed, duplicated, and workers die mid-phase; this
// subsystem makes those behaviours expressible in-process).
//
// A FaultPlan is pure data — probabilities per link, scheduled crash
// events, and protocol tuning. A seeded FaultInjector (fault/injector.h)
// turns it into deterministic per-frame decisions, so any fault schedule
// is exactly replayable from (plan, seed).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace s2::fault {

// Fault probabilities of one directed worker->worker link. Applied per
// transmitted frame (including retransmissions, each with independent
// randomness — a retransmit of a dropped frame is not doomed to drop).
struct LinkFaults {
  double drop = 0.0;       // frame never arrives
  double duplicate = 0.0;  // frame arrives twice
  double reorder = 0.0;    // frame is delivered after later frames of the
                           // same drain batch
  int max_delay_rounds = 0;  // uniform extra delay in [0, max] rounds

  bool Any() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || max_delay_rounds > 0;
  }
};

// Where in the verification workflow a scheduled crash fires. Crashes are
// injected at barriers only — the points where the paper's controller
// observes worker liveness.
enum class CrashPhase : uint8_t {
  // After phase B of the given cumulative control-plane round (rounds are
  // counted across the OSPF pass and every BGP shard).
  kControlPlaneRound,
  // After the distributed FIB/predicate build, before any query runs.
  kDataPlaneBuild,
};

struct CrashEvent {
  CrashPhase phase = CrashPhase::kControlPlaneRound;
  int round = 0;  // meaningful for kControlPlaneRound; ignored otherwise
  uint32_t worker = 0;
};

struct FaultPlan {
  uint64_t seed = 1;

  // Default faults for every directed link; per_link overrides win.
  LinkFaults default_link;
  std::map<std::pair<uint32_t, uint32_t>, LinkFaults> per_link;

  std::vector<CrashEvent> crashes;

  // --------------------------------------------- reliability protocol tuning
  // Retransmit timeout in rounds for the first attempt; doubles per attempt
  // up to max_rto_rounds (capped exponential backoff).
  int initial_rto_rounds = 2;
  int max_rto_rounds = 16;

  // Control-plane rounds between worker checkpoints (checkpoints are also
  // taken at every pass/shard begin barrier). Must be >= 1.
  int checkpoint_interval = 4;

  const LinkFaults& LinkFor(uint32_t from, uint32_t to) const {
    auto it = per_link.find({from, to});
    return it == per_link.end() ? default_link : it->second;
  }

  // True when the plan can actually perturb a run (any probability, delay,
  // or scheduled crash). A disabled plan still exercises the reliability
  // envelope when installed — that is what bench/fault_overhead measures.
  bool Enabled() const {
    if (default_link.Any() || !crashes.empty()) return true;
    for (const auto& [link, faults] : per_link) {
      if (faults.Any()) return true;
    }
    return false;
  }
};

}  // namespace s2::fault
