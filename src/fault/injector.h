// FaultInjector: turns a FaultPlan into deterministic per-frame decisions.
//
// Determinism is the design constraint: workers send concurrently from a
// thread pool, so consuming a shared RNG stream in call order would make
// the fault schedule depend on thread interleaving. Instead every decision
// is a pure SplitMix64 hash of (seed, from, to, channel sequence number,
// attempt) — the same frame always meets the same fate in every run, and a
// retransmission (attempt+1) rolls fresh dice, so a lossy link cannot
// swallow a frame forever.
#pragma once

#include <cstddef>
#include <vector>

#include "fault/plan.h"

namespace s2::fault {

// What happens to one transmitted frame.
struct FrameFate {
  bool drop = false;
  bool duplicate = false;  // deliver a second copy (with its own delay)
  bool reorder = false;    // demote behind the rest of its drain batch
  int delay_rounds = 0;
  int duplicate_delay_rounds = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  const FaultPlan& plan() const { return plan_; }

  // The fate of attempt #`attempt` at shipping frame `seq` of channel
  // from->to. Pure function of the arguments and the plan seed.
  FrameFate Classify(uint32_t from, uint32_t to, uint64_t seq,
                     uint32_t attempt) const;

  // Scheduled crashes due at this barrier; each event fires exactly once.
  // Thread-compatible: called from orchestrator barriers only.
  std::vector<uint32_t> TakeCrashes(CrashPhase phase, int round);

  size_t crashes_fired() const { return crashes_fired_; }

 private:
  FaultPlan plan_;
  std::vector<bool> fired_ = std::vector<bool>(plan_.crashes.size(), false);
  size_t crashes_fired_ = 0;
};

}  // namespace s2::fault
