# Empty dependencies file for fig10_dpv.
# This may be replaced when dependencies are built.
