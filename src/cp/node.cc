#include "cp/node.h"

#include "cp/ospf.h"
#include "util/status.h"

namespace s2::cp {

Node::Node(topo::NodeId id, const config::ParsedNetwork& network,
           util::MemoryTracker* tracker, AttrPool* pool)
    : id_(id),
      network_(&network),
      tracker_(tracker),
      pool_(pool),
      rib_(tracker, pool) {
  for (const config::BgpNeighbor& neighbor : config().bgp.neighbors) {
    Session session;
    session.neighbor = &neighbor;
    session.peer = network.FindByAddress(neighbor.peer_address);
    if (session.peer == topo::kInvalidNode) continue;  // dangling neighbor
    sessions_.push_back(session);
  }
}

void Node::BeginOspf() {
  pass_ = Pass::kOspf;
  shard_ = nullptr;
  if (!config().ospf.enabled) return;
  Route loopback = OspfOriginate(config().loopback, id_);
  rib_.Upsert(topo::kInvalidNode, loopback);
}

Node::~Node() {
  ReleaseResults(ospf_results_);
  ReleaseResults(bgp_results_);
}

void Node::ChargeResult(const Route& route) {
  if (tracker_) tracker_->Charge(route.UniqueBytes());
  if (pool_) pool_->ChargePlain(route.PlainBytes());
}

void Node::ReleaseResults(
    std::map<util::Ipv4Prefix, std::vector<Route>>& results) {
  for (const auto& [prefix, routes] : results) {
    for (const Route& r : routes) {
      if (tracker_) tracker_->Release(r.UniqueBytes());
      if (pool_) pool_->ReleasePlain(r.PlainBytes());
    }
  }
  results.clear();
}

void Node::FinishOspf() {
  ReleaseResults(ospf_results_);
  for (const auto& [prefix, routes] : rib_.all_best()) {
    ospf_results_[prefix] = routes;
    for (const Route& r : routes) ChargeResult(r);
  }
  rib_.Clear();
  outbox_.clear();
  pass_ = Pass::kIdle;
}

void Node::BeginBgp(const PrefixSet* shard) {
  pass_ = Pass::kBgp;
  shard_ = shard;
  OriginateStatic();
}

void Node::OriginateStatic() {
  if (!config().bgp.enabled) return;
  // Redistribution first; an explicit network statement for the same
  // prefix overrides it.
  if (config().bgp.redistribute_ospf) {
    for (const auto& [prefix, routes] : ospf_results_) {
      if (!InShard(prefix)) continue;
      Route route;
      route.prefix = prefix;
      route.protocol = Protocol::kLocal;
      AttrTuple tuple;
      tuple.origin = 2;  // incomplete
      tuple.med = routes.front().metric;
      route.attrs = pool_->Intern(std::move(tuple));
      route.origin_node = id_;
      rib_.Upsert(topo::kInvalidNode, route);
    }
  }
  for (const util::Ipv4Prefix& prefix : config().bgp.networks) {
    if (!InShard(prefix)) continue;
    // Default attributes (origin IGP) — the null handle, no intern needed.
    Route route;
    route.prefix = prefix;
    route.protocol = Protocol::kLocal;
    route.origin_node = id_;
    rib_.Upsert(topo::kInvalidNode, route);
  }
}

void Node::RefreshConditional() {
  for (const config::BgpAggregate& agg : config().bgp.aggregates) {
    if (!InShard(agg.prefix)) continue;
    if (rib_.HasContributor(agg.prefix)) {
      Route route;
      route.prefix = agg.prefix;
      route.protocol = Protocol::kLocal;
      route.origin_node = id_;
      if (!agg.communities.empty()) {
        AttrTuple tuple;
        for (uint32_t community : agg.communities) {
          tuple.AddCommunity(community);
        }
        route.attrs = pool_->Intern(std::move(tuple));
      }
      rib_.Upsert(topo::kInvalidNode, route);
    } else {
      rib_.Withdraw(topo::kInvalidNode, agg.prefix);
    }
  }
  for (const config::BgpCondAdv& cond : config().bgp.cond_advs) {
    if (!InShard(cond.advertise)) continue;
    bool active = rib_.Contains(cond.watch) == cond.advertise_if_present;
    if (active) {
      Route route;
      route.prefix = cond.advertise;
      route.protocol = Protocol::kLocal;
      route.origin_node = id_;
      rib_.Upsert(topo::kInvalidNode, route);
    } else {
      rib_.Withdraw(topo::kInvalidNode, cond.advertise);
    }
  }
}

bool Node::ComputeRound() {
  if (pass_ == Pass::kIdle) return false;
  if (pass_ == Pass::kBgp) RefreshConditional();
  std::vector<util::Ipv4Prefix> changed =
      rib_.RecomputeDirty(config().bgp.max_paths);
  if (changed.empty()) return false;

  bool produced = false;
  for (const util::Ipv4Prefix& prefix : changed) {
    const std::vector<Route>* best = rib_.Best(prefix);
    for (const Session& session : sessions_) {
      RouteUpdate update;
      update.prefix = prefix;
      update.withdraw = true;
      if (best != nullptr) {
        const Route& top = best->front();
        bool suppressed = pass_ == Pass::kBgp &&
                          SuppressedByAggregate(prefix, config());
        bool split_horizon = top.learned_from == session.peer;
        if (!suppressed && !split_horizon) {
          if (pass_ == Pass::kBgp) {
            auto exported =
                TransformForExport(top, config(), *session.neighbor, *pool_);
            if (exported) {
              update.withdraw = false;
              update.route = std::move(*exported);
            }
          } else {
            update.withdraw = false;
            update.route = OspfExport(top);
          }
        }
      }
      outbox_[session.peer].push_back(std::move(update));
      produced = true;
    }
  }
  return produced;
}

std::vector<RouteUpdate> Node::TakeUpdatesFor(topo::NodeId neighbor) {
  auto it = outbox_.find(neighbor);
  if (it == outbox_.end()) return {};
  std::vector<RouteUpdate> updates = std::move(it->second);
  outbox_.erase(it);
  return updates;
}

void Node::ReceiveUpdates(topo::NodeId from,
                          const std::vector<RouteUpdate>& updates) {
  const config::BgpNeighbor* session = nullptr;
  if (pass_ == Pass::kBgp) {
    for (const Session& s : sessions_) {
      if (s.peer == from) session = s.neighbor;
    }
    if (session == nullptr) return;  // not a neighbor of ours
  }
  for (const RouteUpdate& update : updates) {
    if (update.withdraw) {
      rib_.Withdraw(from, update.prefix);
      continue;
    }
    if (pass_ == Pass::kBgp) {
      auto imported =
          ProcessImport(update.route, config(), *session, from, *pool_);
      if (imported) {
        rib_.Upsert(from, *imported);
      } else {
        // A rejected announcement implicitly withdraws any previous
        // candidate from this neighbor.
        rib_.Withdraw(from, update.prefix);
      }
    } else {
      Route route = update.route;
      route.learned_from = from;
      rib_.Upsert(from, route);
    }
  }
}

namespace {

// Flattens a best-route map to announcements (prefix-major, rank-minor) —
// the same shape RibStore::Write uses — and back.
std::vector<RouteUpdate> FlattenResults(
    const std::map<util::Ipv4Prefix, std::vector<Route>>& results) {
  std::vector<RouteUpdate> updates;
  for (const auto& [prefix, routes] : results) {
    for (const Route& route : routes) {
      updates.push_back(RouteUpdate{prefix, false, route});
    }
  }
  return updates;
}

}  // namespace

void Node::SerializeState(std::vector<uint8_t>& out) const {
  // One attribute table for the whole blob, shared by every route section
  // (candidates, best sets, results): serialize the sections into a
  // scratch body while the builder collects distinct tuples, then emit
  // table followed by body.
  AttrTableBuilder table;
  std::vector<uint8_t> body;
  body.push_back(static_cast<uint8_t>(pass_));
  rib_.SerializeState(body, table);
  PutRoutesSection(body, FlattenResults(ospf_results_), table);
  PutRoutesSection(body, FlattenResults(bgp_results_), table);
  table.Serialize(out);
  out.insert(out.end(), body.begin(), body.end());
}

void Node::RestoreState(const std::vector<uint8_t>& bytes,
                        const PrefixSet* shard) {
  size_t pos = 0;
  AttrTable table = AttrTable::Read(bytes, pos, *pool_);
  if (pos >= bytes.size()) {
    throw util::WireFormatError("truncated node checkpoint");
  }
  pass_ = static_cast<Pass>(bytes[pos++]);
  shard_ = pass_ == Pass::kBgp ? shard : nullptr;
  rib_.RestoreState(bytes, pos, table);
  auto restore_results =
      [&](std::map<util::Ipv4Prefix, std::vector<Route>>& results) {
        for (RouteUpdate& update : GetRoutesSection(bytes, pos, table)) {
          ChargeResult(update.route);
          results[update.prefix].push_back(std::move(update.route));
        }
      };
  restore_results(ospf_results_);
  restore_results(bgp_results_);
}

void Node::SpillBgp(RibStore& store, int shard) {
  store.Write(shard, id_, rib_.all_best(), pool_);
  rib_.Clear();
  outbox_.clear();
  pass_ = Pass::kIdle;
}

void Node::RetainBgp() {
  for (const auto& [prefix, routes] : rib_.all_best()) {
    bgp_results_[prefix] = routes;
    for (const Route& r : routes) ChargeResult(r);
  }
  rib_.Clear();
  outbox_.clear();
  pass_ = Pass::kIdle;
}

}  // namespace s2::cp
