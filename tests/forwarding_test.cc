// Symbolic forwarding engine tests: final states, Eq. 1 transformations,
// ECMP replication, waypoint write rules, TTL loop detection, and the
// remote-emission boundary.
#include <gtest/gtest.h>

#include "cp/engine.h"
#include "dp/forwarding.h"
#include "test_networks.h"
#include "topo/fattree.h"

namespace s2::dp {
namespace {

struct Fixture {
  config::ParsedNetwork net;
  std::unique_ptr<bdd::Manager> manager;
  std::unique_ptr<PacketCodec> codec;
  std::unique_ptr<ForwardingEngine> engine;

  explicit Fixture(const topo::Network& network, int max_hops = 24,
                   uint32_t meta_bits = 0) {
    net = testing::Parse(network);
    cp::MonoEngine cp_engine(net, nullptr);
    cp_engine.Run(nullptr, nullptr);
    manager = std::make_unique<bdd::Manager>(32 + meta_bits);
    codec = std::make_unique<PacketCodec>(manager.get(),
                                          HeaderLayout{32, 0, meta_bits});
    ForwardingEngine::Options options;
    options.max_hops = max_hops;
    engine = std::make_unique<ForwardingEngine>(*codec, options);
    for (const auto& node : cp_engine.nodes()) {
      Fib fib = Fib::Build(net, node->id(), node->bgp_routes(),
                           node->ospf_routes(), nullptr);
      engine->AddNode(node->id(),
                      BuildPredicates(net, node->id(), fib, *codec));
    }
  }

  size_t CountFinals(FinalState state) const {
    size_t n = 0;
    for (const FinalPacket& f : engine->finals()) n += f.state == state;
    return n;
  }
};

TEST(ForwardingTest, ChainDeliversToDestination) {
  Fixture fx(testing::MakeChain(4));
  fx.engine->Inject(0, fx.codec->DstIn(util::MustParsePrefix("10.0.3.0/24")));
  fx.engine->Run(nullptr);
  ASSERT_EQ(fx.engine->finals().size(), 1u);
  const FinalPacket& final = fx.engine->finals()[0];
  EXPECT_EQ(final.state, FinalState::kArrive);
  EXPECT_EQ(final.node, 3u);
  EXPECT_EQ(final.src, 0u);
  EXPECT_EQ(fx.engine->steps(), 4u);  // visited r0..r3
}

TEST(ForwardingTest, UnroutedSpaceBlackholesAtSource) {
  Fixture fx(testing::MakeChain(2));
  fx.engine->Inject(
      0, fx.codec->DstIn(util::MustParsePrefix("198.18.0.0/15")));
  fx.engine->Run(nullptr);
  ASSERT_EQ(fx.engine->finals().size(), 1u);
  EXPECT_EQ(fx.engine->finals()[0].state, FinalState::kBlackhole);
  EXPECT_EQ(fx.engine->finals()[0].node, 0u);
}

TEST(ForwardingTest, EcmpExploresAllPaths) {
  Fixture fx(testing::MakeDiamond());
  fx.engine->Inject(0, fx.codec->DstIn(util::MustParsePrefix("10.0.3.0/24")));
  fx.engine->Run(nullptr);
  // The packet fans over both ECMP paths (r1 and r2 are both processed)
  // and the copies re-merge at r3 into one arrival covering the space.
  EXPECT_EQ(fx.CountFinals(FinalState::kArrive), 1u);
  EXPECT_EQ(fx.engine->steps(), 4u);  // r0, r1, r2, merged r3
  EXPECT_EQ(fx.engine->ArrivedAt(3),
            fx.codec->DstIn(util::MustParsePrefix("10.0.3.0/24")));
}

TEST(ForwardingTest, SymbolicPacketSplitsPerDestination) {
  Fixture fx(testing::MakeDiamond());
  // Inject the whole announced space at r0: parts arrive at each node.
  bdd::Bdd space = fx.codec->DstIn(util::MustParsePrefix("10.0.0.0/14"));
  fx.engine->Inject(0, space);
  fx.engine->Run(nullptr);
  for (topo::NodeId dst = 0; dst < 4; ++dst) {
    bdd::Bdd own = fx.codec->DstIn(util::Ipv4Prefix(
        util::Ipv4Address((10u << 24) | (dst << 8)), 24));
    if (dst == 0) {
      // Arrives locally without a forwarding step: recorded at injection.
      EXPECT_TRUE(own.Implies(fx.engine->ArrivedAt(0)));
    } else {
      EXPECT_TRUE(own.Implies(fx.engine->ArrivedAt(dst))) << dst;
    }
  }
}

TEST(ForwardingTest, TtlTurnsForwardingIntoLoopFinal) {
  // A forwarding loop built by hand: two nodes pointing at each other.
  bdd::Manager manager(32);
  PacketCodec codec(&manager, HeaderLayout{32, 0, 0});
  ForwardingEngine::Options options;
  options.max_hops = 6;
  ForwardingEngine engine(codec, options);
  bdd::Bdd everything = manager.One();
  NodePredicates a, b;
  a.arrive = a.exit = a.discard = manager.Zero();
  a.forward.emplace(1, everything);
  b.arrive = b.exit = b.discard = manager.Zero();
  b.forward.emplace(0, everything);
  engine.AddNode(0, std::move(a));
  engine.AddNode(1, std::move(b));
  engine.Inject(0, codec.DstIn(util::MustParsePrefix("10.0.0.0/24")));
  engine.Run(nullptr);
  ASSERT_EQ(engine.finals().size(), 1u);
  EXPECT_EQ(engine.finals()[0].state, FinalState::kLoop);
}

TEST(ForwardingTest, WaypointBitRecordsTraversal) {
  Fixture fx(testing::MakeChain(3), 24, /*meta_bits=*/1);
  fx.engine->SetWaypointBit(1, 0);  // r1 is the waypoint
  fx.engine->Inject(0, fx.codec->DstIn(util::MustParsePrefix("10.0.2.0/24")) &
                           fx.codec->MetaBit(0, false));
  fx.engine->Run(nullptr);
  ASSERT_EQ(fx.CountFinals(FinalState::kArrive), 1u);
  const FinalPacket& final = fx.engine->finals()[0];
  // The packet that arrived must carry the waypoint bit.
  EXPECT_EQ(final.set & fx.codec->MetaBit(0, true), final.set);
}

TEST(ForwardingTest, IngressAclDropsBecomeBlackholes) {
  topo::Network net = testing::MakeChain(2);
  net.intents[1].interfaces[0].acl_in.push_back(topo::AclRuleIntent{
      false, std::nullopt, util::MustParsePrefix("10.0.1.0/24")});
  Fixture fx(net);
  fx.engine->Inject(0, fx.codec->DstIn(util::MustParsePrefix("10.0.1.0/24")));
  fx.engine->Run(nullptr);
  ASSERT_EQ(fx.engine->finals().size(), 1u);
  EXPECT_EQ(fx.engine->finals()[0].state, FinalState::kBlackhole);
  EXPECT_EQ(fx.engine->finals()[0].node, 1u);  // dropped at ingress of r1
}

TEST(ForwardingTest, RemoteHopsGoThroughEmit) {
  auto net = testing::Parse(testing::MakeChain(3));
  cp::MonoEngine cp_engine(net, nullptr);
  cp_engine.Run(nullptr, nullptr);
  bdd::Manager manager(32);
  PacketCodec codec(&manager, HeaderLayout{32, 0, 0});
  ForwardingEngine engine(codec, ForwardingEngine::Options{});
  // Only r0 and r1 are local; r2 is "on another worker".
  for (topo::NodeId id : {0u, 1u}) {
    Fib fib = Fib::Build(net, id, cp_engine.node(id).bgp_routes(),
                         cp_engine.node(id).ospf_routes(), nullptr);
    engine.AddNode(id, BuildPredicates(net, id, fib, codec));
  }
  std::vector<InFlightPacket> emitted;
  engine.Inject(0, codec.DstIn(util::MustParsePrefix("10.0.2.0/24")));
  engine.Run([&](const InFlightPacket& packet) {
    emitted.push_back(packet);
  });
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].at, 2u);
  EXPECT_EQ(emitted[0].from, 1u);
  EXPECT_EQ(emitted[0].hops, 2);
  EXPECT_TRUE(engine.finals().empty());
}

TEST(ForwardingTest, ResetQueryStateKeepsPredicates) {
  Fixture fx(testing::MakeChain(2));
  fx.engine->Inject(0, fx.codec->DstIn(util::MustParsePrefix("10.0.1.0/24")));
  fx.engine->Run(nullptr);
  EXPECT_FALSE(fx.engine->finals().empty());
  fx.engine->ResetQueryState();
  EXPECT_TRUE(fx.engine->finals().empty());
  EXPECT_EQ(fx.engine->steps(), 0u);
  fx.engine->Inject(0, fx.codec->DstIn(util::MustParsePrefix("10.0.1.0/24")));
  fx.engine->Run(nullptr);
  EXPECT_EQ(fx.engine->finals().size(), 1u);
}

TEST(ForwardingTest, FatTreeAllPairArriveCounts) {
  topo::FatTreeParams params;
  params.k = 4;
  Fixture fx(topo::MakeFatTree(params));
  // Inject the host space at every edge.
  for (topo::NodeId id = 0; id < fx.net.graph.size(); ++id) {
    if (fx.net.graph.node(id).role == topo::Role::kEdge) {
      fx.engine->Inject(id,
                        fx.codec->DstIn(util::MustParsePrefix("10.0.0.0/8")));
    }
  }
  fx.engine->Run(nullptr);
  // Every (src, dst) edge pair is connected: each dst's /24 fully arrives
  // from each of the 8 sources.
  for (topo::NodeId dst = 0; dst < fx.net.graph.size(); ++dst) {
    if (fx.net.graph.node(dst).role != topo::Role::kEdge) continue;
    bdd::Bdd arrived = fx.engine->ArrivedAt(dst);
    for (const auto& prefix : fx.net.configs[dst].bgp.networks) {
      if (prefix.length() == 24) {
        EXPECT_TRUE(fx.codec->DstIn(prefix).Implies(arrived));
      }
    }
  }
  EXPECT_EQ(fx.CountFinals(FinalState::kLoop), 0u);
}

}  // namespace
}  // namespace s2::dp
