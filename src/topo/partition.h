// Network partitioning (paper §4.1, evaluated in §5.6).
//
// Splits the device graph into `num_parts` segments, one per worker. Per
// the paper, workload balance is the primary objective and edge cut
// (inter-worker communication) the secondary one — the opposite priority
// of classic network-emulation partitioners.
//
// Schemes (§5.6):
//   kMetisLike  multilevel heavy-edge-matching coarsening, greedy initial
//               partition, Kernighan–Lin refinement (our stand-in for
//               METIS; DESIGN.md substitution S6)
//   kRandom     shuffle nodes, deal them round-robin
//   kExpert     FatTree: whole pods per segment, cores dealt round-robin;
//               generally: sort by (pod, name) and cut into load-balanced
//               contiguous blocks
//   kImbalanced 3/4 of all nodes in segment 0 (the paper's pathological
//               load-imbalance probe)
//   kCommHeavy  deliberately maximizes cut: alternating layers land in
//               different segments
#pragma once

#include <cstdint>
#include <vector>

#include "topo/graph.h"
#include "util/rng.h"

namespace s2::topo {

enum class PartitionScheme {
  kMetisLike,
  kRandom,
  kExpert,
  kImbalanced,
  kCommHeavy,
};

const char* PartitionSchemeName(PartitionScheme scheme);

struct PartitionResult {
  // assignment[node] = segment in [0, num_parts).
  std::vector<uint32_t> assignment;
  uint32_t num_parts = 0;

  // Evaluation helpers.
  // Max segment load divided by mean segment load (1.0 = perfect balance).
  double LoadImbalance(const Graph& graph) const;
  // Number of edges whose endpoints are in different segments.
  size_t EdgeCut(const Graph& graph) const;
};

// Partitions `graph` into `num_parts` segments using `scheme`. Node loads
// come from NodeInfo::load (the §4.1 estimates). Deterministic for a given
// seed.
PartitionResult Partition(const Graph& graph, uint32_t num_parts,
                          PartitionScheme scheme, uint64_t seed = 1);

}  // namespace s2::topo
