// BDD engine tests: boolean algebra, canonicity, quantification, counting,
// garbage collection, and the node-table capacity failure mode — plus a
// property sweep checking the engine against brute-force truth tables on
// random expressions.
#include <gtest/gtest.h>

#include "bdd/bdd.h"
#include "util/rng.h"
#include "util/status.h"

namespace s2::bdd {
namespace {

TEST(BddTest, TerminalBasics) {
  Manager m(4);
  EXPECT_TRUE(m.Zero().IsZero());
  EXPECT_TRUE(m.One().IsOne());
  EXPECT_FALSE(m.Zero().IsOne());
  EXPECT_EQ(m.Zero(), m.Zero());
  EXPECT_NE(m.Zero().id(), m.One().id());
}

TEST(BddTest, VarAndNotVar) {
  Manager m(4);
  Bdd x = m.Var(0);
  EXPECT_EQ(!x, m.NotVar(0));
  EXPECT_EQ(x & m.NotVar(0), m.Zero());
  EXPECT_EQ(x | m.NotVar(0), m.One());
}

TEST(BddTest, AlgebraIdentities) {
  Manager m(6);
  Bdd a = m.Var(0), b = m.Var(1), c = m.Var(2);
  EXPECT_EQ(a & m.One(), a);
  EXPECT_EQ(a & m.Zero(), m.Zero());
  EXPECT_EQ(a | m.Zero(), a);
  EXPECT_EQ(a | m.One(), m.One());
  EXPECT_EQ(a ^ a, m.Zero());
  EXPECT_EQ(a & b, b & a);
  EXPECT_EQ((a & b) & c, a & (b & c));
  // De Morgan.
  EXPECT_EQ(!(a & b), !a | !b);
  EXPECT_EQ(!(a | b), !a & !b);
  // Distribution.
  EXPECT_EQ(a & (b | c), (a & b) | (a & c));
}

TEST(BddTest, CanonicityMakesEqualityStructural) {
  Manager m(5);
  Bdd a = m.Var(0), b = m.Var(1);
  Bdd f = (a & b) | (a & !b);  // == a
  EXPECT_EQ(f, a);
  EXPECT_EQ(f.id(), a.id());
}

TEST(BddTest, IteMatchesDefinition) {
  Manager m(6);
  Bdd f = m.Var(0), g = m.Var(1), h = m.Var(2);
  EXPECT_EQ(m.Ite(f, g, h), (f & g) | (!f & h));
  EXPECT_EQ(m.Ite(m.One(), g, h), g);
  EXPECT_EQ(m.Ite(m.Zero(), g, h), h);
  EXPECT_EQ(m.Ite(f, m.One(), m.Zero()), f);
  EXPECT_EQ(m.Ite(f, m.Zero(), m.One()), !f);
}

TEST(BddTest, RestrictCofactors) {
  Manager m(4);
  Bdd a = m.Var(0), b = m.Var(1);
  Bdd f = a & b;
  EXPECT_EQ(m.Restrict(f, 0, true), b);
  EXPECT_EQ(m.Restrict(f, 0, false), m.Zero());
  EXPECT_EQ(m.Restrict(f, 3, true), f);  // absent variable: no-op
}

TEST(BddTest, ExistsQuantifies) {
  Manager m(4);
  Bdd a = m.Var(0), b = m.Var(1);
  EXPECT_EQ(m.Exists(a & b, {0}), b);
  EXPECT_EQ(m.Exists(a & b, {0, 1}), m.One());
  EXPECT_EQ(m.Exists(m.Zero(), {0}), m.Zero());
}

TEST(BddTest, CubeEncodesValue) {
  Manager m(8);
  // Cube over vars [2,6) with value 0b1010: var2 (bit0=0), var3 (bit1=1)...
  Bdd cube = m.Cube(2, 4, 0b1010);
  EXPECT_EQ(cube & m.NotVar(2), cube);  // bit0 = 0
  EXPECT_EQ(cube & m.Var(3), cube);     // bit1 = 1
  EXPECT_EQ(cube & m.NotVar(4), cube);
  EXPECT_EQ(cube & m.Var(5), cube);
  EXPECT_DOUBLE_EQ(m.SatFraction(cube), 1.0 / 16.0);
}

TEST(BddTest, MaskedMatchIsMsbFirstPrefixMatch) {
  Manager m(8);
  // 8-bit field at vars [0,8): match value 0b10100000 under /3 mask.
  Bdd f = m.MaskedMatch(0, 8, 0b10100000, 0b11100000);
  // var0 is the MSB: must be 1; var1 = 0; var2 = 1; rest free.
  EXPECT_EQ(f & m.Var(0), f);
  EXPECT_EQ(f & m.NotVar(1), f);
  EXPECT_EQ(f & m.Var(2), f);
  EXPECT_DOUBLE_EQ(m.SatFraction(f), 1.0 / 8.0);
  // Empty mask matches everything.
  EXPECT_EQ(m.MaskedMatch(0, 8, 0, 0), m.One());
}

TEST(BddTest, SatFraction) {
  Manager m(4);
  EXPECT_DOUBLE_EQ(m.SatFraction(m.Zero()), 0.0);
  EXPECT_DOUBLE_EQ(m.SatFraction(m.One()), 1.0);
  EXPECT_DOUBLE_EQ(m.SatFraction(m.Var(0)), 0.5);
  EXPECT_DOUBLE_EQ(m.SatFraction(m.Var(0) & m.Var(1)), 0.25);
  EXPECT_DOUBLE_EQ(m.SatFraction(m.Var(0) | m.Var(1)), 0.75);
}

TEST(BddTest, AnySatReturnsSatisfyingPath) {
  Manager m(4);
  Bdd f = m.Var(0) & !m.Var(2);
  auto assignment = m.AnySat(f);
  // Apply the assignment: restricting by it must give One.
  Bdd g = f;
  for (auto [var, value] : assignment) g = m.Restrict(g, var, value);
  EXPECT_TRUE(g.IsOne());
}

TEST(BddTest, DiffImpliesIntersects) {
  Manager m(4);
  Bdd a = m.Var(0), b = m.Var(0) & m.Var(1);
  EXPECT_TRUE(b.Implies(a));
  EXPECT_FALSE(a.Implies(b));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(!a));
  EXPECT_EQ(a.Diff(b), m.Var(0) & !m.Var(1));
}

TEST(BddTest, HandleCopySemantics) {
  Manager m(4);
  Bdd a = m.Var(0);
  Bdd copy = a;
  Bdd moved = std::move(copy);
  EXPECT_EQ(moved, a);
  EXPECT_FALSE(copy.valid());  // NOLINT(bugprone-use-after-move)
  copy = moved;
  EXPECT_EQ(copy, a);
  a = a;  // self-assignment safe
  EXPECT_TRUE(a.valid());
}

TEST(BddTest, GarbageCollectionFreesDeadNodes) {
  Manager m(16);
  size_t baseline = m.allocated_nodes();
  {
    Bdd junk = m.One();
    for (uint32_t i = 0; i < 16; ++i) junk &= (m.Var(i) | m.Var((i + 1) % 16));
    EXPECT_GT(m.allocated_nodes(), baseline);
  }
  m.GarbageCollect();
  EXPECT_EQ(m.live_nodes(), 0u);
  // Live handles survive GC and keep working.
  Bdd keep = m.Var(3) & m.Var(5);
  m.GarbageCollect();
  EXPECT_EQ(keep, m.Var(3) & m.Var(5));
}

TEST(BddTest, NodeTableCapacityThrowsSimulatedOom) {
  Manager::Options options;
  options.max_nodes = 16;  // tiny table: terminals + a handful
  Manager m(32, options);
  EXPECT_THROW(
      {
        Bdd f = m.Zero();
        for (uint32_t i = 0; i < 32; i += 2) {
          f = f | (m.Var(i) & m.Var(i + 1));
        }
      },
      util::SimulatedOom);
}

TEST(BddTest, AutomaticGcKeepsChurnBounded) {
  // Build and drop thousands of transient functions: the threshold-driven
  // GC must keep the node table from growing with the churn.
  Manager m(32);
  size_t high_water = 0;
  for (int round = 0; round < 2000; ++round) {
    Bdd f = m.Cube(0, 16, static_cast<uint64_t>(round) * 2654435761u);
    f &= m.Var(16 + round % 16);
    high_water = std::max(high_water, m.allocated_nodes());
  }
  // Each round allocates ~17 nodes; without GC the table would hold
  // ~34000. The watermark trigger keeps it near twice the live set.
  EXPECT_LT(high_water, 12000u);
  m.GarbageCollect();
  EXPECT_EQ(m.live_nodes(), 0u);
}

TEST(BddTest, PauseGcSuppressesAutomaticCollection) {
  // With GC held (the query service's serving-domain mode), the same churn
  // that trips the watermark in AutomaticGcKeepsChurnBounded must not
  // collect: the table grows and the generation never advances.
  Manager m(32);
  m.PauseGc();
  EXPECT_TRUE(m.gc_paused());
  uint32_t generation = m.generation();
  for (int round = 0; round < 2000; ++round) {
    Bdd f = m.Cube(0, 16, static_cast<uint64_t>(round) * 2654435761u);
    f &= m.Var(16 + round % 16);
  }
  EXPECT_EQ(m.generation(), generation);
  EXPECT_GT(m.allocated_nodes(), 12000u);
  // Explicit collection still works while held.
  m.GarbageCollect();
  EXPECT_EQ(m.live_nodes(), 0u);
  EXPECT_EQ(m.generation(), generation + 1);
  // Resume rearms the automatic trigger.
  m.ResumeGc();
  EXPECT_FALSE(m.gc_paused());
  size_t high_water = 0;
  for (int round = 0; round < 2000; ++round) {
    Bdd f = m.Cube(0, 16, static_cast<uint64_t>(round) * 2654435761u);
    f &= m.Var(16 + round % 16);
    high_water = std::max(high_water, m.allocated_nodes());
  }
  EXPECT_GT(m.generation(), generation + 1);
}

TEST(BddTest, PinnedRootsSurviveExplicitGc) {
  // PinRoot marks a node as part of an immutable snapshot surface; GC with
  // the root still referenced is fine, and the debug sweep assertion
  // (never reclaim a pinned slot) stays quiet.
  Manager m(16);
  Bdd root = (m.Var(0) & m.Var(1)) | m.Var(2);
  m.PinRoot(root);
  EXPECT_EQ(m.pinned_roots(), 1u);
  m.PinRoot(root);  // idempotent
  EXPECT_EQ(m.pinned_roots(), 1u);
  // Terminals and foreign/invalid handles are never pinned.
  m.PinRoot(m.One());
  m.PinRoot(Bdd());
  EXPECT_EQ(m.pinned_roots(), 1u);
  {
    Bdd junk = m.Cube(0, 12, 0x5a5a);
  }
  m.GarbageCollect();
  EXPECT_EQ(root, (m.Var(0) & m.Var(1)) | m.Var(2));
}

TEST(BddTest, FreedSlotsAreReused) {
  Manager m(8);
  {
    Bdd junk = m.Var(0) & m.Var(1) & m.Var(2);
  }
  m.GarbageCollect();
  size_t after_gc = m.allocated_nodes();
  EXPECT_EQ(after_gc, 2u);  // only the terminals survive
  Bdd again = m.Var(0) & m.Var(1) & m.Var(2);
  // Rebuilding the same function (3 var nodes + 3 conjunction nodes) must
  // reuse freed slots: the slab never grows past its previous peak.
  EXPECT_EQ(m.allocated_nodes(), after_gc + 6);
  EXPECT_LE(m.allocated_nodes(), m.peak_nodes());
}

TEST(BddTest, TrackerAccountsNodeBytes) {
  util::MemoryTracker tracker("bdd");
  Manager::Options options;
  options.tracker = &tracker;
  {
    Manager m(8, options);
    Bdd f = m.Var(0) & m.Var(1) & m.Var(2);
    EXPECT_GE(tracker.live_bytes(), 3 * Manager::kNodeBytes);
  }
  EXPECT_EQ(tracker.live_bytes(), 0u);  // manager teardown releases
}

// Property sweep: evaluate random expression trees both through the BDD
// engine and by brute-force truth-table enumeration.
class RandomExpressionTest : public ::testing::TestWithParam<uint64_t> {};

struct Expr {
  // 0..2: op and/or/xor, 3: not, 4: leaf var
  int kind;
  uint32_t var = 0;
  std::unique_ptr<Expr> lhs, rhs;
};

std::unique_ptr<Expr> RandomExpr(util::Rng& rng, int depth,
                                 uint32_t num_vars) {
  auto e = std::make_unique<Expr>();
  if (depth == 0 || rng.Below(4) == 0) {
    e->kind = 4;
    e->var = static_cast<uint32_t>(rng.Below(num_vars));
    return e;
  }
  e->kind = static_cast<int>(rng.Below(4));
  e->lhs = RandomExpr(rng, depth - 1, num_vars);
  if (e->kind != 3) e->rhs = RandomExpr(rng, depth - 1, num_vars);
  return e;
}

Bdd ToBdd(const Expr& e, Manager& m) {
  switch (e.kind) {
    case 0:
      return ToBdd(*e.lhs, m) & ToBdd(*e.rhs, m);
    case 1:
      return ToBdd(*e.lhs, m) | ToBdd(*e.rhs, m);
    case 2:
      return ToBdd(*e.lhs, m) ^ ToBdd(*e.rhs, m);
    case 3:
      return !ToBdd(*e.lhs, m);
    default:
      return m.Var(e.var);
  }
}

bool Eval(const Expr& e, uint32_t assignment) {
  switch (e.kind) {
    case 0:
      return Eval(*e.lhs, assignment) && Eval(*e.rhs, assignment);
    case 1:
      return Eval(*e.lhs, assignment) || Eval(*e.rhs, assignment);
    case 2:
      return Eval(*e.lhs, assignment) != Eval(*e.rhs, assignment);
    case 3:
      return !Eval(*e.lhs, assignment);
    default:
      return (assignment >> e.var) & 1;
  }
}

TEST_P(RandomExpressionTest, MatchesTruthTable) {
  constexpr uint32_t kVars = 6;
  util::Rng rng(GetParam());
  Manager m(kVars);
  auto expr = RandomExpr(rng, 5, kVars);
  Bdd f = ToBdd(*expr, m);
  size_t sat = 0;
  for (uint32_t assignment = 0; assignment < (1u << kVars); ++assignment) {
    bool expected = Eval(*expr, assignment);
    // Restrict the BDD by the assignment; the result must be the matching
    // terminal. Note Var(i) is the BDD "bit i is 1", and our assignment
    // packs var i at bit i.
    Bdd g = f;
    for (uint32_t v = 0; v < kVars; ++v) {
      g = m.Restrict(g, v, (assignment >> v) & 1);
    }
    ASSERT_TRUE(g.IsOne() || g.IsZero());
    EXPECT_EQ(g.IsOne(), expected) << "assignment " << assignment;
    sat += expected;
  }
  EXPECT_DOUBLE_EQ(m.SatFraction(f),
                   double(sat) / double(1u << kVars));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExpressionTest,
                         ::testing::Range<uint64_t>(0, 20));

// ------------------------------------------------------------ op caches
// The generational fixed-size bin/ITE caches: hit/miss/eviction counters,
// GC purge semantics (entries over live nodes survive, entries over freed
// slots are dropped), and randomized equivalence under forced eviction and
// mid-operation GC schedules.

TEST(OpCacheTest, RepeatedOperationsHitTheCache) {
  Manager m(8);
  Bdd a = m.Var(0), b = m.Var(1);
  Bdd f = a & b;
  EXPECT_GT(m.cache_stats().misses, 0u);  // first computation missed
  size_t misses = m.cache_stats().misses;
  size_t hits = m.cache_stats().hits;
  Bdd g = a & b;  // same operands, same op: served from the cache
  EXPECT_EQ(f, g);
  EXPECT_GT(m.cache_stats().hits, hits);
  EXPECT_EQ(m.cache_stats().misses, misses);
}

TEST(OpCacheTest, GenerationAdvancesPerGc) {
  Manager m(4);
  uint32_t before = m.generation();
  m.GarbageCollect();
  EXPECT_EQ(m.generation(), before + 1);
}

TEST(OpCacheTest, GcKeepsEntriesOverLiveNodes) {
  Manager m(8);
  Bdd a = m.Var(0), b = m.Var(1);
  Bdd f = a & b;       // caches (a, b, and) -> f
  m.GarbageCollect();  // every referenced node is live: entry survives
  EXPECT_GT(m.cache_stats().gc_kept, 0u);
  size_t hits = m.cache_stats().hits;
  EXPECT_EQ(a & b, f);  // still served from the preserved entry
  EXPECT_GT(m.cache_stats().hits, hits);
}

TEST(OpCacheTest, GcDropsEntriesOverFreedSlots) {
  Manager m(8);
  {
    Bdd junk = m.Var(0) & m.Var(1) & m.Var(2);
  }
  m.GarbageCollect();  // the conjunction nodes died with the handle
  EXPECT_GT(m.cache_stats().gc_dropped, 0u);
  // A dropped entry must recompute — and the result is still correct.
  EXPECT_EQ(m.Restrict(m.Var(0) & m.Var(1), 0, true), m.Var(1));
}

std::unique_ptr<Expr> Leaf(uint32_t var) {
  auto e = std::make_unique<Expr>();
  e->kind = 4;
  e->var = var;
  return e;
}

std::unique_ptr<Expr> Combine(int kind, std::unique_ptr<Expr> lhs,
                              std::unique_ptr<Expr> rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

// A random expression XOR-ed with the parity of all variables — parity has
// no small BDD, so the formula is guaranteed substantial regardless of how
// quickly RandomExpr bottomed out (the cache-pressure and GC-schedule
// assertions below need a formula whose restricts actually do work).
std::unique_ptr<Expr> RandomDeepExpr(util::Rng& rng, uint32_t num_vars) {
  std::unique_ptr<Expr> parity = Leaf(0);
  for (uint32_t v = 1; v < num_vars; ++v) {
    parity = Combine(2, std::move(parity), Leaf(v));
  }
  return Combine(2, RandomExpr(rng, 5, num_vars), std::move(parity));
}

// Forced eviction: a 16-entry cache under an 8-variable random formula
// churns constantly, yet every operation must stay truth-table exact —
// evicting can only cost recomputation, never correctness.
class RandomCachePressureTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomCachePressureTest, TinyCacheMatchesTruthTable) {
  constexpr uint32_t kVars = 8;
  util::Rng rng(GetParam());
  Manager::Options options;
  options.op_cache_entries = 16;
  Manager m(kVars, options);
  auto expr = RandomDeepExpr(rng, kVars);
  Bdd f = ToBdd(*expr, m);
  for (uint32_t assignment = 0; assignment < (1u << kVars); ++assignment) {
    Bdd g = f;
    for (uint32_t v = 0; v < kVars; ++v) {
      g = m.Restrict(g, v, (assignment >> v) & 1);
    }
    ASSERT_TRUE(g.IsOne() || g.IsZero());
    EXPECT_EQ(g.IsOne(), Eval(*expr, assignment))
        << "assignment " << assignment;
  }
  EXPECT_GT(m.cache_stats().evictions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCachePressureTest,
                         ::testing::Range<uint64_t>(100, 110));

// Builds the expression with GarbageCollect() interleaved into the
// recursion — a hostile GC schedule firing while operand handles are live
// on the construction stack.
Bdd ToBddWithGc(const Expr& e, Manager& m, int& countdown) {
  if (--countdown <= 0) {
    m.GarbageCollect();
    countdown = 3;
  }
  switch (e.kind) {
    case 0:
      return ToBddWithGc(*e.lhs, m, countdown) &
             ToBddWithGc(*e.rhs, m, countdown);
    case 1:
      return ToBddWithGc(*e.lhs, m, countdown) |
             ToBddWithGc(*e.rhs, m, countdown);
    case 2:
      return ToBddWithGc(*e.lhs, m, countdown) ^
             ToBddWithGc(*e.rhs, m, countdown);
    case 3:
      return !ToBddWithGc(*e.lhs, m, countdown);
    default:
      return m.Var(e.var);
  }
}

class RandomGcScheduleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGcScheduleTest, MidOperationGcMatchesTruthTable) {
  constexpr uint32_t kVars = 8;
  util::Rng rng(GetParam());
  Manager m(kVars);
  auto expr = RandomDeepExpr(rng, kVars);
  int countdown = 2 + static_cast<int>(rng.Below(4));
  Bdd f = ToBddWithGc(*expr, m, countdown);
  EXPECT_GT(m.generation(), 1u);  // the schedule actually fired
  for (uint32_t assignment = 0; assignment < (1u << kVars); ++assignment) {
    Bdd g = f;
    for (uint32_t v = 0; v < kVars; ++v) {
      g = m.Restrict(g, v, (assignment >> v) & 1);
      if (assignment % 64 == 63) m.GarbageCollect();  // mid-restrict GC too
    }
    ASSERT_TRUE(g.IsOne() || g.IsZero());
    EXPECT_EQ(g.IsOne(), Eval(*expr, assignment))
        << "assignment " << assignment;
  }
  EXPECT_GT(m.cache_stats().hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGcScheduleTest,
                         ::testing::Range<uint64_t>(200, 210));

}  // namespace
}  // namespace s2::bdd
