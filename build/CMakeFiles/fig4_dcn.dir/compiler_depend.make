# Empty compiler generated dependencies file for fig4_dcn.
# This may be replaced when dependencies are built.
