# Empty compiler generated dependencies file for s2_dist.
# This may be replaced when dependencies are built.
