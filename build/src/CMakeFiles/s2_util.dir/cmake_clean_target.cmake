file(REMOVE_RECURSE
  "libs2_util.a"
)
