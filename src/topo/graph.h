// Network graph and synthesis "intent" types.
//
// Generators (fattree.h, dcn.h) produce a Network: a physical graph plus a
// per-node NodeIntent describing what the device should be configured to
// do. The config layer renders intents into vendor-specific configuration
// text and parses that text back into vendor-independent models — the same
// pipeline the paper drives through Batfish's parsers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/ip.h"

namespace s2::topo {

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = ~NodeId{0};

// Coarse device role, used by load estimation (§4.1) and the "expert"
// partition scheme (§5.6).
enum class Role {
  kEdge,         // FatTree edge / DCN TOR (layer 0)
  kAggregation,  // FatTree aggregation / DCN leaf-or-pod layers
  kCore,         // FatTree core / DCN top spine
  kBorder,       // DCN border (connects to backbone)
};

const char* RoleName(Role role);

struct NodeInfo {
  std::string name;
  Role role = Role::kEdge;
  int layer = 0;    // 0 = bottom (TOR/edge)
  int pod = -1;     // FatTree pod / DCN cluster index; -1 if global
  // Estimated route-processing load for the partitioner (§4.1). FatTree
  // uses the paper's k^3/2 / k^3/2 / k^3/4 role estimates; DCN is uniform.
  double load = 1.0;
};

struct Edge {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
};

// An undirected multigraph of devices. Node ids are dense [0, size).
class Graph {
 public:
  NodeId AddNode(NodeInfo info);
  // Adds an undirected edge; returns its index.
  size_t AddEdge(NodeId a, NodeId b);

  size_t size() const { return nodes_.size(); }
  size_t edge_count() const { return edges_.size(); }

  const NodeInfo& node(NodeId id) const { return nodes_[id]; }
  NodeInfo& node(NodeId id) { return nodes_[id]; }
  const Edge& edge(size_t index) const { return edges_[index]; }

  const std::vector<NodeId>& neighbors(NodeId id) const {
    return adjacency_[id];
  }

  // Node id by name; kInvalidNode if absent. O(n) — lookup tables are the
  // caller's business for hot paths.
  NodeId FindByName(const std::string& name) const;

 private:
  std::vector<NodeInfo> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<NodeId>> adjacency_;
};

// ----------------------------------------------------------------- intent

// Which pseudo-vendor dialect a device speaks. The two dialects differ in
// syntax and in one behaviour (remove-private-as semantics), modeling the
// paper's VSB motivation (§2.1).
enum class Vendor { kAlpha, kBeta };

// Per-neighbor export policy (compiled to a route-map by the vendor
// renderer). All clauses apply on export to that neighbor only.
struct PeerPolicyIntent {
  // Drop routes carrying any of these communities.
  std::vector<uint32_t> deny_export_communities;
  // If set, only routes carrying this community pass (aggregates tagged at
  // origination carry it); everything else is denied.
  std::vector<uint32_t> permit_only_communities;
  // Attach `second` to routes covered by `first` (prefix match, any more
  // specific length).
  std::vector<std::pair<util::Ipv4Prefix, uint32_t>> tag_matching;
  // Prepend the exporter's ASN this many extra times (traffic
  // engineering: de-prefer paths through this link).
  uint32_t as_path_prepend = 0;
};

// One packet-filter rule; unset prefixes match anything. First match wins;
// renderers append an explicit permit-any terminator.
struct AclRuleIntent {
  bool permit = true;
  std::optional<util::Ipv4Prefix> src;
  std::optional<util::Ipv4Prefix> dst;
};

struct InterfaceIntent {
  std::string name;            // e.g. "eth0"
  util::Ipv4Address address;   // this end's address on the p2p subnet
  uint8_t prefix_length = 31;  // p2p links use /31
  NodeId peer = kInvalidNode;  // other end of the link
  std::string peer_interface;
  PeerPolicyIntent export_policy;
  // Import policy for routes learned from this neighbor: local preference
  // (DC fabrics prefer routes from lower layers) and communities stamped on
  // ingress (used to enforce valley-freedom: routes from above are tagged
  // and the tag is denied on upward export).
  uint32_t import_local_pref = 100;
  std::vector<uint32_t> import_tag_communities;
  // Packet filters applied by data-plane verification (paper Eq. 1).
  std::vector<AclRuleIntent> acl_in, acl_out;
};

struct AggregateIntent {
  util::Ipv4Prefix prefix;
  bool summary_only = true;            // suppress contributing routes
  std::vector<uint32_t> communities;   // tags attached to the aggregate
};

// Conditional advertisement (Cisco advertise-map style, the paper's DPDG
// dependency source [1]): announce `advertise` iff `watch` is present
// (advertise_if_present) or absent in the RIB.
struct CondAdvIntent {
  util::Ipv4Prefix advertise;
  util::Ipv4Prefix watch;
  bool advertise_if_present = true;
};

struct NodeIntent {
  uint32_t asn = 0;
  Vendor vendor = Vendor::kAlpha;
  util::Ipv4Prefix loopback;                  // /32, announced into BGP
  std::vector<InterfaceIntent> interfaces;
  std::vector<util::Ipv4Prefix> announced;    // BGP network statements
  std::vector<AggregateIntent> aggregates;
  std::vector<CondAdvIntent> cond_advs;
  // Overwrite the AS_PATH of routes exported to lower-layer neighbors with
  // the node's own ASN (§2.3: prevents drops when layers share ASNs while
  // keeping upward loop prevention intact).
  bool overwrite_as_path = false;
  // Strip private ASNs on export (vendor-specific semantics, §2.1).
  bool remove_private_as = false;
  int max_ecmp_paths = 64;
  // IGP underlay: run single-area OSPF on all interfaces, advertising the
  // loopback; optionally redistribute OSPF routes into BGP. Used by small
  // mixed-protocol topologies (the S2 CPO schedules IGP before EGP).
  bool enable_ospf = false;
  bool redistribute_ospf_into_bgp = false;
};

// A synthesized network: graph, per-node intent (indexed by NodeId), and a
// human-readable name for reports.
struct Network {
  std::string name;
  Graph graph;
  std::vector<NodeIntent> intents;
};

// Assigns /31 point-to-point subnets and interface names to every edge of
// `network`, filling each node's InterfaceIntent list. Subnets are carved
// from 10.128.0.0/9 in edge order. Generators call this after building the
// graph.
void AssignLinkAddresses(Network& network);

}  // namespace s2::topo
