file(REMOVE_RECURSE
  "CMakeFiles/fig10_dpv.dir/bench/fig10_dpv.cc.o"
  "CMakeFiles/fig10_dpv.dir/bench/fig10_dpv.cc.o.d"
  "bench/fig10_dpv"
  "bench/fig10_dpv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dpv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
