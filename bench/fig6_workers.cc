// Figure 6: scale-out — S2 on a fixed FatTree with 1..16 workers.
//
// Paper shape to reproduce: time and per-worker peak memory both fall as
// workers are added, steeply up to ~8 workers and flattening after, since
// per-worker resources stop being the bottleneck.
#include "bench_util.h"

using namespace s2;
using namespace s2::bench;

int main(int argc, char** argv) {
  ObsOptions obs = ParseObsFlags(argc, argv);
  const int k = 8;  // ~ FatTree60, the paper's Figure 6 subject
  std::printf("=== Figure 6: S2 scale-out on k=%d (%s) ===\n\n", k,
              PaperSize(k));
  BuiltNetwork built = BuildFatTree(k);
  dp::Query query = AllPairQuery(built.parsed);

  std::printf("%-8s %9s %14s %14s %12s %12s\n", "workers", "status",
              "modeled-time", "wall-time", "peak-mem", "comm");
  for (uint32_t workers : {1u, 2u, 4u, 8u, 12u, 16u}) {
    // No per-worker budget here: Figure 6 measures resource use, not OOM.
    dist::ControllerOptions options = S2Options(workers, kShards);
    options.worker_memory_budget = 0;
    core::S2Verifier verifier(options);
    core::VerifyResult result = verifier.Verify(built.parsed, {query});
    CaptureReport(obs, verifier, result);
    std::printf("%-8u %9s %14s %14s %12s %12s\n", workers,
                core::RunStatusName(result.status),
                core::HumanSeconds(result.TotalModeledSeconds()).c_str(),
                core::HumanSeconds(result.TotalWallSeconds()).c_str(),
                core::HumanBytes(result.peak_memory_bytes).c_str(),
                core::HumanBytes(result.comm_bytes).c_str());
  }
  std::printf(
      "\nexpected shape: modeled time and per-worker peak fall steeply to\n"
      "~8 workers, then flatten (per-worker resources stop binding).\n");
  FinishObs(obs);
  return 0;
}
