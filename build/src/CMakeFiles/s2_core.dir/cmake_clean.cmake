file(REMOVE_RECURSE
  "CMakeFiles/s2_core.dir/core/bonsai.cc.o"
  "CMakeFiles/s2_core.dir/core/bonsai.cc.o.d"
  "CMakeFiles/s2_core.dir/core/mono.cc.o"
  "CMakeFiles/s2_core.dir/core/mono.cc.o.d"
  "CMakeFiles/s2_core.dir/core/report.cc.o"
  "CMakeFiles/s2_core.dir/core/report.cc.o.d"
  "CMakeFiles/s2_core.dir/core/results.cc.o"
  "CMakeFiles/s2_core.dir/core/results.cc.o.d"
  "CMakeFiles/s2_core.dir/core/s2.cc.o"
  "CMakeFiles/s2_core.dir/core/s2.cc.o.d"
  "CMakeFiles/s2_core.dir/core/whatif.cc.o"
  "CMakeFiles/s2_core.dir/core/whatif.cc.o.d"
  "libs2_core.a"
  "libs2_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
