// Figure 10: distributed data plane verification — time to check all-pair
// and single-pair reachability with Batfish vs S2, split into the
// predicate-computation phase and the forwarding/checking phase.
//
// Paper shape to reproduce: S2 is faster in both phases; the predicate
// phase parallelizes best (up to ~#workers); the speedup grows with
// FatTree size; even single-pair checking benefits because the packet
// fans out across all workers (Fig 11 discussion).
#include "bench_util.h"

using namespace s2;
using namespace s2::bench;

namespace {

dp::Query SinglePair(const config::ParsedNetwork& parsed) {
  // Two edge switches in different pods (the paper's E6 -> E19 pattern).
  dp::Query query;
  topo::NodeId src = parsed.graph.FindByName("edge-0-0");
  topo::NodeId dst = parsed.graph.FindByName("edge-1-0");
  query.sources = {src};
  query.destinations = {dst};
  query.header_space.dst = util::MustParsePrefix("10.1.0.0/24");
  return query;
}

struct Phases {
  const char* status;
  double predicates;
  double forwarding;
};

Phases RunMono(const config::ParsedNetwork& parsed, const dp::Query& query) {
  core::MonoOptions options;
  options.cost = BenchCost();
  core::MonoVerifier mono(options);
  core::VerifyResult result = mono.Verify(parsed, {query});
  return {core::RunStatusName(result.status),
          result.dp_build.modeled_seconds,
          result.dp_forward.modeled_seconds};
}

Phases RunS2(const config::ParsedNetwork& parsed, const dp::Query& query,
             uint32_t workers) {
  dist::ControllerOptions options = S2Options(workers, kShards);
  options.worker_memory_budget = 0;
  core::S2Verifier verifier(options);
  core::VerifyResult result = verifier.Verify(parsed, {query});
  return {core::RunStatusName(result.status),
          result.dp_build.modeled_seconds,
          result.dp_forward.modeled_seconds};
}

}  // namespace

int main() {
  std::printf("=== Figure 10: DPV — all-pair and single-pair "
              "reachability ===\n\n");
  for (int k : {6, 8, 10}) {
    BuiltNetwork built = BuildFatTree(k);
    std::printf("--- k=%d (%s) ---\n", k, PaperSize(k));
    std::printf("%-26s %9s %14s %14s\n", "configuration", "status",
                "predicates", "fwd+check");
    struct Row {
      std::string label;
      Phases phases;
    };
    dp::Query all = AllPairQuery(built.parsed);
    dp::Query single = SinglePair(built.parsed);
    Row rows[] = {
        {"batfish all-pair", RunMono(built.parsed, all)},
        {"s2-8w   all-pair", RunS2(built.parsed, all, 8)},
        {"batfish single-pair", RunMono(built.parsed, single)},
        {"s2-8w   single-pair", RunS2(built.parsed, single, 8)},
    };
    for (const Row& row : rows) {
      std::printf("%-26s %9s %14s %14s\n", row.label.c_str(),
                  row.phases.status,
                  core::HumanSeconds(row.phases.predicates).c_str(),
                  core::HumanSeconds(row.phases.forwarding).c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape: s2 beats batfish in both phases; the predicate\n"
      "phase speedup approaches the worker count; the gap widens with k;\n"
      "single-pair checks also speed up (packets fan across workers).\n");
  return 0;
}
