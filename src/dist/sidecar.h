// Sidecars (paper §3.2): the communication fabric between workers.
//
// Each worker (and the controller) owns a sidecar; every sidecar holds the
// node->worker assignment so a message addressed to a node is routed to
// the worker hosting it. This in-process stand-in for the paper's
// RPC-connected sidecar processes keeps the observable contract: messages
// are serialized bytes, queues are drained at phase boundaries, and
// per-worker sent/received byte counters feed the cost model
// (DESIGN.md substitution S3).
//
// Two delivery modes:
//   - direct (default): a perfect, loss-free queue — zero overhead;
//   - reliable: every message runs through fault::ReliableTransport
//     (sequence numbers, acks, retransmits) with an optional
//     FaultInjector perturbing frames. The sidecar survives worker
//     crashes — like the paper's separate sidecar process — so its
//     channel state and replay logs are what recovery builds on.
//
// Locking: direct mode shards the lock per destination queue, so senders
// to different workers never contend (they only meet on the receiver's
// queue, exactly like N independent sidecar processes). Reliable mode
// keeps one transport-wide lock: ReliableTransport owns cross-channel
// state — a global round clock and cumulative per-channel acks whose
// retransmit decisions observe every channel — so per-queue locks would
// not make its operations independent.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "dist/message.h"
#include "fault/reliable.h"

namespace s2::dist {

class SidecarFabric {
 public:
  // `assignment[node]` = worker index hosting that node.
  SidecarFabric(uint32_t num_workers, std::vector<uint32_t> assignment);

  uint32_t num_workers() const { return num_workers_; }
  uint32_t WorkerOf(topo::NodeId node) const { return assignment_[node]; }

  // Switches the fabric to reliable delivery. `injector` (may be null for
  // pure reliability) must outlive the fabric; `keep_replay_log` enables
  // the per-worker delivery log crash recovery needs. Call before any
  // traffic flows.
  void EnableReliableDelivery(const fault::FaultPlan& tuning,
                              const fault::FaultInjector* injector,
                              bool keep_replay_log);
  bool reliable() const { return transport_ != nullptr; }

  // Routes `message` to the sidecar of the worker hosting its to_node.
  // Thread-safe: workers send concurrently during parallel phases, and in
  // direct mode sends to distinct destinations do not serialize.
  void Send(uint32_t from_worker, Message message);

  // Drains the inbound queue of `worker`. In reliable mode this advances
  // logical time: every worker must drain exactly once per orchestrator
  // round.
  std::vector<Message> Drain(uint32_t worker);

  // True if any message is undelivered (reliable mode: also while any
  // data frame is delayed or unacked).
  bool HasPending() const;

  size_t bytes_sent_by(uint32_t worker) const;
  size_t messages_sent_by(uint32_t worker) const;
  size_t total_bytes() const;

  // High-water mark of `worker`'s inbound queue since construction (or the
  // last ResetCounters in direct mode).
  size_t max_queue_depth(uint32_t worker) const;

  // Resets the per-worker counters (between phases/experiments).
  void ResetCounters();

  // Test-only: invoked with the destination worker inside the per-queue
  // critical section of a direct-mode Send. Lets concurrency tests prove
  // that holding one destination's lock does not block sends to another.
  // Not thread-safe to set while traffic flows.
  void set_send_hook(std::function<void(uint32_t)> hook) {
    send_hook_ = std::move(hook);
  }

  // ------------------------------------------------ recovery (reliable mode)
  // Truncates the replay log of `worker` (taken together with a worker
  // checkpoint at a barrier).
  void MarkCheckpoint(uint32_t worker);
  // Messages delivered to `worker` since its last checkpoint mark, tagged
  // with their delivery round.
  std::vector<fault::LoggedDelivery> ReplayLog(uint32_t worker) const;
  // Completed global drain rounds (0 in direct mode).
  int CurrentRound() const;
  fault::ReliableTransport::Stats transport_stats() const;

 private:
  // One inbound queue per worker with its own lock. unique_ptr because
  // std::mutex is immovable and the vector is sized at construction.
  struct QueueShard {
    std::mutex mutex;
    std::vector<Message> queue;
  };

  uint32_t num_workers_;
  std::vector<uint32_t> assignment_;
  std::vector<std::unique_ptr<QueueShard>> queues_;  // per receiving worker
  // Counters are atomics so concurrent senders never race, even where no
  // queue lock is held.
  std::vector<std::atomic<size_t>> bytes_sent_;    // per sending worker
  std::vector<std::atomic<size_t>> messages_sent_;
  std::vector<std::atomic<size_t>> max_queue_depth_;
  std::function<void(uint32_t)> send_hook_;

  // Reliable mode only: one lock for the whole transport (see header
  // comment for why it cannot be sharded per queue).
  mutable std::mutex transport_mutex_;
  std::unique_ptr<fault::ReliableTransport> transport_;
};

}  // namespace s2::dist
