#include "svc/query_service.h"

#include <algorithm>
#include <map>
#include <utility>

#include "bdd/bdd_io.h"
#include "fault/checkpoint.h"
#include "obs/trace.h"

namespace s2::svc {

namespace {

// FNV-1a over the parts of a query that determine its forwarding work
// (everything but the destinations — see the cache-key rationale in the
// header). Used only for lane stickiness, so collisions are harmless.
uint64_t QueryKeyHash(const dp::Query& query) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t value) {
    h ^= value;
    h *= 1099511628211ULL;
  };
  if (query.header_space.dst) {
    mix(query.header_space.dst->address().bits());
    mix(query.header_space.dst->length());
  }
  if (query.header_space.src) {
    mix(query.header_space.src->address().bits());
    mix(query.header_space.src->length());
  }
  for (topo::NodeId src : query.sources) mix(src);
  for (topo::NodeId transit : query.transits) mix(transit);
  mix(query.record_paths ? 1 : 0);
  return h;
}

// Sound intersection test for admission scoping: two prefixes intersect
// iff one contains the other. A missing dst constraint matches everything.
bool IntersectsDst(const util::Ipv4Prefix& prefix,
                   const std::optional<util::Ipv4Prefix>& dst) {
  if (!dst) return true;
  return prefix.Contains(*dst) || dst->Contains(prefix);
}

}  // namespace

QueryService::QueryService(SnapshotRegistry* registry, Options options)
    : registry_(registry), options_(options) {
  if (options_.lanes == 0) options_.lanes = 1;
  for (size_t i = 0; i < options_.lanes; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
}

QueryService::~QueryService() = default;

size_t QueryService::LaneFor(const dp::Query& query) const {
  return static_cast<size_t>(QueryKeyHash(query) % lanes_.size());
}

QueryService::Served QueryService::Serve(const dp::Query& query) {
  SnapshotRef ref = registry_->Acquire();
  if (!ref) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.snapshot_misses;
    return Served{};
  }
  Lane& lane = *lanes_[LaneFor(query)];
  std::lock_guard<std::mutex> lock(lane.mutex);
  return ServeLocked(lane, ref, query);
}

std::vector<QueryService::Served> QueryService::ServeBatch(
    const std::vector<dp::Query>& queries) {
  std::vector<Served> served(queries.size());
  if (queries.empty()) return served;
  SnapshotRef ref = registry_->Acquire();
  if (!ref) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.snapshot_misses += queries.size();
    return served;
  }
  // Group compatible queries: same lane (domain affinity) and same
  // admitted worker set execute back to back, so the group's scoped
  // domains and op caches stay hot. Keys are ordered for determinism.
  struct Group {
    std::vector<size_t> indices;
  };
  std::map<std::pair<size_t, std::vector<uint32_t>>, Group> groups;
  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<uint32_t> scope;
    if (options_.scope_admission) {
      scope = ScopeWorkers(*ref, queries[q]);
    }
    groups[{LaneFor(queries[q]), std::move(scope)}].indices.push_back(q);
  }
  for (auto& [key, group] : groups) {
    Lane& lane = *lanes_[key.first];
    std::lock_guard<std::mutex> lock(lane.mutex);
    for (size_t q : group.indices) {
      served[q] = ServeLocked(lane, ref, queries[q]);
    }
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.batches;
  }
  return served;
}

QueryService::Served QueryService::ServeLocked(Lane& lane,
                                               const SnapshotRef& ref,
                                               const dp::Query& query) {
  obs::Span span("svc", "svc.serve");
  const Snapshot& snapshot = *ref;
  if (lane.epoch != snapshot.epoch) BindEpoch(lane, snapshot);

  Served served;
  served.epoch = snapshot.epoch;
  served.total_workers = snapshot.num_workers;

  // Cache first: the warm path is hash + finals decode + verdict, no
  // scoping and no forwarding.
  bdd::Bdd header = query.header_space.ToBdd(*lane.gather_codec);
  CacheEntry* hit = FindCached(lane, snapshot.epoch, header, query);
  std::vector<dist::SerializedFinal> computed;
  const std::vector<dist::SerializedFinal>* finals_bytes = nullptr;
  if (hit != nullptr) {
    served.cache_hit = true;
    hit->stamp = ++lane.stamp;
    finals_bytes = &hit->finals;
  } else {
    std::vector<uint32_t> scope;
    if (options_.scope_admission) {
      scope = ScopeWorkers(snapshot, query);
    } else {
      scope.resize(snapshot.num_workers);
      for (uint32_t w = 0; w < snapshot.num_workers; ++w) scope[w] = w;
    }
    served.scoped_workers = scope.size();
    computed = Execute(lane, snapshot, query, scope, served);
    served.scoped_workers = scope.size();  // include fallback growth
    if (options_.result_cache_entries > 0) {
      if (lane.cache.size() >= options_.result_cache_entries) {
        auto victim = std::min_element(
            lane.cache.begin(), lane.cache.end(),
            [](const CacheEntry& a, const CacheEntry& b) {
              return a.stamp < b.stamp;
            });
        lane.cache.erase(victim);
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.cache_evictions;
      }
      CacheEntry entry;
      entry.epoch = snapshot.epoch;
      entry.header = header;
      entry.sources = query.sources;
      entry.transits = query.transits;
      entry.record_paths = query.record_paths;
      entry.finals = computed;
      entry.stamp = ++lane.stamp;
      lane.cache.push_back(std::move(entry));
    }
    finals_bytes = &computed;
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.workers_scoped += served.scoped_workers;
      stats_.workers_total += snapshot.num_workers;
    }
  }

  // Decode into the lane's gather domain and evaluate against this
  // query's own destinations — the step that makes destination-disjoint
  // queries shareable upstream.
  std::vector<dp::FinalPacket> finals;
  finals.reserve(finals_bytes->size());
  for (const dist::SerializedFinal& final : *finals_bytes) {
    served.gather_bytes += final.WireBytes();
    dp::FinalPacket packet;
    packet.src = final.src;
    packet.node = final.node;
    packet.state = final.state;
    packet.path = final.path;
    packet.set = bdd::DeserializeInto(*lane.gather_manager, final.set);
    finals.push_back(std::move(packet));
  }
  served.result =
      dp::EvaluateQuery(query, *lane.gather_codec, finals, *snapshot.network);

  MaybeCollect(lane);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries;
    if (options_.result_cache_entries > 0) {
      if (served.cache_hit) {
        ++stats_.cache_hits;
      } else {
        ++stats_.cache_misses;
      }
    }
  }
  return served;
}

void QueryService::BindEpoch(Lane& lane, const Snapshot& snapshot) {
  // Order matters: cache entries hold handles into the gather manager and
  // engines into their managers — drop users before owners.
  lane.cache.clear();
  lane.engines.clear();
  lane.managers.clear();
  lane.gather_codec.reset();
  lane.gather_manager =
      std::make_unique<bdd::Manager>(snapshot.layout.total_bits());
  // Serving domains hold GC: dead intermediates (and the op-cache entries
  // over them) persist between queries; MaybeCollect runs explicit sweeps
  // on a query-count cadence instead.
  lane.gather_manager->PauseGc();
  lane.gather_codec.emplace(lane.gather_manager.get(), snapshot.layout);
  lane.managers.resize(snapshot.num_workers);
  lane.engines.resize(snapshot.num_workers);
  lane.epoch = snapshot.epoch;
  lane.queries_since_gc = 0;
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.epoch_rebuilds;
}

void QueryService::EnsureDomain(Lane& lane, const Snapshot& snapshot,
                                uint32_t w) {
  if (lane.engines[w] != nullptr) return;
  obs::Span span("svc", "svc.domain_build");
  span.Arg("worker", static_cast<int64_t>(w));
  bdd::Manager::Options manager_options;
  manager_options.max_nodes = snapshot.max_bdd_nodes;
  auto manager = std::make_unique<bdd::Manager>(snapshot.layout.total_bits(),
                                                manager_options);
  manager->PauseGc();
  dp::PacketCodec codec(manager.get(), snapshot.layout);
  dp::ForwardingEngine::Options engine_options;
  engine_options.max_hops = snapshot.max_hops;
  auto engine =
      std::make_unique<dp::ForwardingEngine>(codec, engine_options);
  for (const auto& [id, bytes] : snapshot.predicates[w]) {
    // AddNode pins the predicate roots: this epoch's snapshot surface is
    // immutable for the domain's lifetime (bdd.h, PinRoot).
    engine->AddNode(id, fault::DeserializePredicates(*manager, bytes));
  }
  lane.managers[w] = std::move(manager);
  lane.engines[w] = std::move(engine);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.domains_built;
}

void QueryService::PrepareEngine(Lane& lane, const dp::Query& query,
                                 uint32_t w) {
  dp::ForwardingEngine& engine = *lane.engines[w];
  engine.ResetQueryState();
  engine.set_record_paths(query.record_paths);
  for (size_t i = 0; i < query.transits.size(); ++i) {
    if (engine.Owns(query.transits[i])) {
      engine.SetWaypointBit(query.transits[i], static_cast<uint32_t>(i));
    }
  }
  bdd::Bdd header = query.header_space.ToBdd(engine.codec());
  for (topo::NodeId src : query.sources) {
    if (engine.Owns(src)) engine.Inject(src, header);
  }
}

std::vector<uint32_t> QueryService::ScopeWorkers(
    const Snapshot& snapshot, const dp::Query& query) const {
  size_t num_nodes = snapshot.worker_of.size();
  std::vector<char> reached(num_nodes, 0);
  std::vector<topo::NodeId> frontier;
  for (topo::NodeId src : query.sources) {
    if (src < num_nodes && !reached[src]) {
      reached[src] = 1;
      frontier.push_back(src);
    }
  }
  while (!frontier.empty()) {
    topo::NodeId at = frontier.back();
    frontier.pop_back();
    auto it = snapshot.fib_edges.find(at);
    if (it == snapshot.fib_edges.end()) continue;
    for (const auto& [prefix, next] : it->second) {
      if (next >= num_nodes || reached[next]) continue;
      if (!IntersectsDst(prefix, query.header_space.dst)) continue;
      reached[next] = 1;
      frontier.push_back(next);
    }
  }
  std::vector<uint32_t> scope;
  for (topo::NodeId id = 0; id < num_nodes; ++id) {
    if (!reached[id]) continue;
    uint32_t w = snapshot.worker_of[id];
    if (!std::binary_search(scope.begin(), scope.end(), w)) {
      scope.insert(std::upper_bound(scope.begin(), scope.end(), w), w);
    }
  }
  return scope;
}

QueryService::CacheEntry* QueryService::FindCached(Lane& lane,
                                                   uint64_t epoch,
                                                   const bdd::Bdd& header,
                                                   const dp::Query& query) {
  if (options_.result_cache_entries == 0) return nullptr;
  for (CacheEntry& entry : lane.cache) {
    if (entry.epoch != epoch) continue;
    // Hash-consing makes the root id a complete fingerprint of the header
    // space; the entry's handle keeps the id from being recycled.
    if (entry.header.id() != header.id()) continue;
    if (entry.record_paths != query.record_paths) continue;
    if (entry.sources != query.sources) continue;
    if (entry.transits != query.transits) continue;
    return &entry;
  }
  return nullptr;
}

std::vector<dist::SerializedFinal> QueryService::Execute(
    Lane& lane, const Snapshot& snapshot, const dp::Query& query,
    std::vector<uint32_t>& scope, Served& served) {
  obs::Span span("svc", "svc.execute");
  for (uint32_t w : scope) EnsureDomain(lane, snapshot, w);
  for (uint32_t w : scope) PrepareEngine(lane, query, w);

  // The Dpo::RunQueries round loop over the scoped domains: run every
  // engine to quiescence in ascending worker order, ferry the serialized
  // crossing packets, repeat until silent. Identical structure keeps the
  // finals — and therefore the verdicts — byte-identical to batch mode.
  std::vector<dp::WirePacket> crossing;
  for (;;) {
    size_t steps_before = 0, steps_after = 0;
    for (size_t i = 0; i < scope.size(); ++i) {
      dp::ForwardingEngine& engine = *lane.engines[scope[i]];
      steps_before += engine.steps();
      engine.Run([&](const dp::InFlightPacket& packet) {
        dp::WirePacket wire;
        wire.at = packet.at;
        wire.from = packet.from;
        wire.src = packet.src;
        wire.hops = packet.hops;
        wire.path = packet.path;
        wire.set = bdd::Serialize(packet.set);
        crossing.push_back(std::move(wire));
      });
      steps_after += engine.steps();
    }
    ++served.rounds;
    if (crossing.empty()) {
      if (steps_after == steps_before) break;
      continue;
    }
    for (const dp::WirePacket& wire : crossing) {
      uint32_t dest = snapshot.worker_of[wire.at];
      if (!std::binary_search(scope.begin(), scope.end(), dest)) {
        // Admission under-scoped (incomplete forward-edge index): build
        // the domain lazily and keep going — scoping is a perf hint, not
        // a correctness gate.
        EnsureDomain(lane, snapshot, dest);
        PrepareEngine(lane, query, dest);
        scope.insert(std::upper_bound(scope.begin(), scope.end(), dest),
                     dest);
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.scope_fallbacks;
      }
      dp::InFlightPacket packet;
      packet.at = wire.at;
      packet.from = wire.from;
      packet.src = wire.src;
      packet.hops = wire.hops;
      packet.path = wire.path;
      packet.set = bdd::DeserializeInto(*lane.managers[dest], wire.set);
      lane.engines[dest]->Accept(std::move(packet));
    }
    crossing.clear();
  }

  // Finals in ascending worker order — the worker-major order batch mode
  // gathers in (unscoped workers contribute nothing by construction).
  std::vector<dist::SerializedFinal> out;
  for (uint32_t w : scope) {
    for (const dp::FinalPacket& final : lane.engines[w]->finals()) {
      dist::SerializedFinal serialized;
      serialized.src = final.src;
      serialized.node = final.node;
      serialized.state = final.state;
      serialized.path = final.path;
      serialized.set = bdd::Serialize(final.set);
      out.push_back(std::move(serialized));
    }
  }
  return out;
}

void QueryService::MaybeCollect(Lane& lane) {
  if (options_.gc_interval_queries == 0) return;
  if (++lane.queries_since_gc < options_.gc_interval_queries) return;
  lane.queries_since_gc = 0;
  // Explicit sweeps on the held-GC serving domains: dead intermediates
  // accumulated across the interval are freed (and their op-cache entries
  // purged); pinned predicate roots and cached header handles survive.
  for (const auto& manager : lane.managers) {
    if (manager) manager->GarbageCollect();
  }
  lane.gather_manager->GarbageCollect();
}

QueryService::Stats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

bdd::Manager::CacheStats QueryService::OpCacheStats() const {
  bdd::Manager::CacheStats total;
  for (const auto& lane : lanes_) {
    std::lock_guard<std::mutex> lock(lane->mutex);
    auto add = [&total](const bdd::Manager* manager) {
      if (manager == nullptr) return;
      const bdd::Manager::CacheStats& stats = manager->cache_stats();
      total.hits += stats.hits;
      total.misses += stats.misses;
      total.evictions += stats.evictions;
      total.gc_kept += stats.gc_kept;
      total.gc_dropped += stats.gc_dropped;
    };
    for (const auto& manager : lane->managers) add(manager.get());
    add(lane->gather_manager.get());
  }
  return total;
}

void QueryService::PublishMetrics(obs::Registry& registry) const {
  Stats s = stats();
  registry.SetCounter("svc.queries", static_cast<int64_t>(s.queries));
  registry.SetCounter("svc.batches", static_cast<int64_t>(s.batches));
  registry.SetCounter("svc.cache.hits", static_cast<int64_t>(s.cache_hits));
  registry.SetCounter("svc.cache.misses",
                      static_cast<int64_t>(s.cache_misses));
  registry.SetCounter("svc.cache.evictions",
                      static_cast<int64_t>(s.cache_evictions));
  registry.SetCounter("svc.domains_built",
                      static_cast<int64_t>(s.domains_built));
  registry.SetCounter("svc.epoch_rebuilds",
                      static_cast<int64_t>(s.epoch_rebuilds));
  registry.SetCounter("svc.scope.fallbacks",
                      static_cast<int64_t>(s.scope_fallbacks));
  registry.SetCounter("svc.scope.workers_scoped",
                      static_cast<int64_t>(s.workers_scoped));
  registry.SetCounter("svc.scope.workers_total",
                      static_cast<int64_t>(s.workers_total));
  registry.SetCounter("svc.snapshot_misses",
                      static_cast<int64_t>(s.snapshot_misses));
  size_t entries = 0;
  for (const auto& lane : lanes_) {
    std::lock_guard<std::mutex> lock(lane->mutex);
    entries += lane->cache.size();
  }
  registry.SetCounter("svc.cache.entries", static_cast<int64_t>(entries));
  bdd::Manager::CacheStats op = OpCacheStats();
  registry.SetCounter("svc.opcache.hits", static_cast<int64_t>(op.hits));
  registry.SetCounter("svc.opcache.misses", static_cast<int64_t>(op.misses));
  registry.SetCounter("svc.opcache.evictions",
                      static_cast<int64_t>(op.evictions));
}

}  // namespace s2::svc
