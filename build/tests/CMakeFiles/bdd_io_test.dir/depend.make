# Empty dependencies file for bdd_io_test.
# This may be replaced when dependencies are built.
