// Wall-clock stopwatch used for the measured component of the cost model
// (per-worker busy time) and for benchmark phase timings.
#pragma once

#include <chrono>
#include <ctime>

namespace s2::util {

// CPU time consumed by the calling thread, in seconds. On a machine with
// fewer cores than runnable lanes, wall clock charges a lane for time it
// spent descheduled; per-thread CPU time is what the cost model's modeled
// parallel schedule needs (DESIGN.md §3).
inline double ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
  }
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace s2::util
