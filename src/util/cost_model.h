// The explicit cost model (DESIGN.md §3) shared by the distributed
// orchestrators and the monolithic baseline.
//
// Measured per-phase busy time is real wall time; the model adds (a) a
// serialization-bandwidth term for sidecar traffic and (b) a GC-pressure
// penalty once a domain's live bytes approach its budget — reproducing the
// paper's observation that prefix sharding speeds simulation up when
// memory is tight and slows it down when memory is plentiful (Fig 4a/9a).
#pragma once

#include "util/memory_tracker.h"

namespace s2::util {

struct CostModelParams {
  // Modeled sidecar serialization bandwidth (bytes/second).
  double bandwidth_bytes_per_sec = 1e9;
  // Memory pressure (live/budget) beyond which GC pauses are modeled.
  double gc_pressure_threshold = 0.7;
  // Modeled GC pause per live GB per round once past the threshold.
  double gc_seconds_per_gb = 1.0;
  // Modeled orchestration latency per synchronous round (the CPO/DPO RPC
  // barrier across workers). This is the per-shard overhead that makes
  // prefix sharding a net slowdown when memory is plentiful (Fig 4a) and
  // the rising arm of Fig 9's U-shape.
  double round_latency_seconds = 0.0;
};

// Per-round GC penalty of one domain under the model.
inline double GcPenaltySeconds(const MemoryTracker& tracker,
                               const CostModelParams& params) {
  if (tracker.pressure() <= params.gc_pressure_threshold) return 0.0;
  return params.gc_seconds_per_gb *
         (static_cast<double>(tracker.live_bytes()) / 1e9);
}

}  // namespace s2::util
