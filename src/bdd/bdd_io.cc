#include "bdd/bdd_io.h"

#include <cstring>
#include <string>
#include <unordered_map>

#include "util/status.h"

namespace s2::bdd {

namespace {

constexpr uint32_t kMagic = 0x53324244;  // 'S2BD'

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t GetU32(const std::vector<uint8_t>& in, size_t& pos) {
  if (pos + 4 > in.size()) {
    throw util::WireFormatError("truncated BDD blob at offset " +
                                std::to_string(pos));
  }
  uint32_t v = uint32_t{in[pos]} | (uint32_t{in[pos + 1]} << 8) |
               (uint32_t{in[pos + 2]} << 16) | (uint32_t{in[pos + 3]} << 24);
  pos += 4;
  return v;
}

}  // namespace

std::vector<uint8_t> Serialize(const Bdd& f) {
  Manager* m = f.manager();
  // Collect reachable internal nodes children-first (post-order DFS).
  std::unordered_map<uint32_t, uint32_t> index;  // node id -> wire index
  std::vector<uint32_t> order;                   // node ids, children first
  index.emplace(Manager::kZero, 0);
  index.emplace(Manager::kOne, 1);
  std::vector<std::pair<uint32_t, bool>> stack;  // (node, children_done)
  if (f.id() > Manager::kOne) stack.emplace_back(f.id(), false);
  while (!stack.empty()) {
    auto [node, children_done] = stack.back();
    stack.pop_back();
    if (index.count(node)) continue;
    const auto& rec = m->nodes_[node];
    if (children_done) {
      index.emplace(node, static_cast<uint32_t>(order.size() + 2));
      order.push_back(node);
    } else {
      stack.emplace_back(node, true);
      if (rec.high > Manager::kOne && !index.count(rec.high)) {
        stack.emplace_back(rec.high, false);
      }
      if (rec.low > Manager::kOne && !index.count(rec.low)) {
        stack.emplace_back(rec.low, false);
      }
    }
  }

  std::vector<uint8_t> out;
  out.reserve(16 + order.size() * 12);
  PutU32(out, kMagic);
  PutU32(out, m->num_vars());
  PutU32(out, static_cast<uint32_t>(order.size()));
  PutU32(out, index.at(f.id()));
  for (uint32_t node : order) {
    const auto& rec = m->nodes_[node];
    PutU32(out, rec.var);
    PutU32(out, index.at(rec.low));
    PutU32(out, index.at(rec.high));
  }
  return out;
}

Bdd DeserializeInto(Manager& manager, const std::vector<uint8_t>& bytes) {
  size_t pos = 0;
  if (GetU32(bytes, pos) != kMagic) {
    throw util::WireFormatError("bad BDD blob magic");
  }
  uint32_t wire_vars = GetU32(bytes, pos);
  if (wire_vars > manager.num_vars()) {
    throw util::WireFormatError("BDD blob var count " +
                                std::to_string(wire_vars) +
                                " exceeds manager's " +
                                std::to_string(manager.num_vars()));
  }
  uint32_t count = GetU32(bytes, pos);
  uint32_t root = GetU32(bytes, pos);
  // Each node record is 12 bytes; validate against the bytes actually
  // present before allocating — an absurd count must error, not OOM.
  if (count > (bytes.size() - pos) / 12) {
    throw util::WireFormatError("BDD blob node count " +
                                std::to_string(count) +
                                " exceeds remaining bytes");
  }

  std::vector<uint32_t> local(count + 2);
  local[0] = Manager::kZero;
  local[1] = Manager::kOne;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t var = GetU32(bytes, pos);
    uint32_t low = GetU32(bytes, pos);
    uint32_t high = GetU32(bytes, pos);
    if (var >= manager.num_vars() || low >= i + 2 || high >= i + 2) {
      throw util::WireFormatError("malformed BDD node record " +
                                  std::to_string(i));
    }
    local[i + 2] = manager.MakeNode(var, local[low], local[high]);
  }
  if (root >= count + 2) {
    throw util::WireFormatError("BDD blob root index out of range");
  }
  return Bdd(&manager, local[root]);
}

}  // namespace s2::bdd
