#include "dp/parallel.h"

#include <algorithm>
#include <cstdlib>

#include "bdd/bdd_io.h"
#include "obs/trace.h"

namespace s2::dp {

ParallelForwarding::ParallelForwarding(Options options)
    : options_(options) {
  uint32_t count = std::max<uint32_t>(1, options_.lanes);
  lanes_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Lane lane;
    lane.manager = std::make_unique<bdd::Manager>(
        options_.layout.total_bits(), options_.manager);
    lane.codec =
        std::make_unique<PacketCodec>(lane.manager.get(), options_.layout);
    ForwardingEngine::Options engine_options;
    engine_options.max_hops = options_.max_hops;
    lane.engine =
        std::make_unique<ForwardingEngine>(*lane.codec, engine_options);
    lanes_.push_back(std::move(lane));
  }
}

const PacketCodec& ParallelForwarding::BeginNode(topo::NodeId id) {
  auto it = lane_of_.find(id);
  if (it == lane_of_.end()) {
    it = lane_of_.emplace(id, next_lane_).first;
    next_lane_ = (next_lane_ + 1) % static_cast<uint32_t>(lanes_.size());
  }
  return *lanes_[it->second].codec;
}

void ParallelForwarding::AddNode(topo::NodeId id, NodePredicates preds) {
  lanes_[lane_of_.at(id)].engine->AddNode(id, std::move(preds));
}

const NodePredicates& ParallelForwarding::node_predicates(
    topo::NodeId id) const {
  return lanes_[lane_of_.at(id)].engine->node_predicates(id);
}

void ParallelForwarding::SetWaypointBit(topo::NodeId node,
                                        uint32_t meta_bit) {
  lanes_[lane_of_.at(node)].engine->SetWaypointBit(node, meta_bit);
}

void ParallelForwarding::Inject(topo::NodeId at, const HeaderSpaceSpec& spec) {
  Lane& lane = lanes_[lane_of_.at(at)];
  if (!lane.header_space.valid()) {
    lane.header_space = spec.ToBdd(*lane.codec);
  }
  lane.engine->Inject(at, lane.header_space);
}

void ParallelForwarding::set_record_paths(bool record) {
  for (Lane& lane : lanes_) lane.engine->set_record_paths(record);
}

void ParallelForwarding::ResetQueryState() {
  for (Lane& lane : lanes_) {
    lane.engine->ResetQueryState();
    lane.header_space = bdd::Bdd();
  }
}

WirePacket ParallelForwarding::ToWire(const InFlightPacket& packet) const {
  WirePacket wire;
  wire.at = packet.at;
  wire.from = packet.from;
  wire.src = packet.src;
  wire.hops = packet.hops;
  wire.path = packet.path;
  wire.set = bdd::Serialize(packet.set);
  return wire;
}

void ParallelForwarding::AcceptAt(size_t lane, const WirePacket& packet) {
  InFlightPacket in;
  in.at = packet.at;
  in.from = packet.from;
  in.src = packet.src;
  in.hops = packet.hops;
  in.path = packet.path;
  in.set = bdd::DeserializeInto(*lanes_[lane].manager, packet.set);
  lanes_[lane].engine->Accept(std::move(in));
}

void ParallelForwarding::Accept(const WirePacket& packet) {
  AcceptAt(lane_of_.at(packet.at), packet);
}

void ParallelForwarding::Run(util::ThreadPool* pool,
                             const RemoteEmit& remote) {
  if (lanes_.size() == 1) {
    // Sequential special case: no lockstep machinery, bit-identical to the
    // pre-lane engine (the differential oracle's baseline). One span for
    // the whole drain — there are no per-level rounds to attribute.
    obs::Span span("dp", "dp.lane.run");
    span.Arg("lane", 0);
    ForwardingEngine::RemoteEmit emit;
    if (remote) {
      emit = [&](const InFlightPacket& packet) { remote(ToWire(packet)); };
    }
    lanes_[0].engine->Run(emit);
    return;
  }

  size_t count = lanes_.size();
  std::vector<std::vector<WirePacket>> outboxes(count);
  std::vector<std::vector<WirePacket>> inboxes(count);
  for (;;) {
    int level = ForwardingEngine::kIdle;
    for (Lane& lane : lanes_) {
      level = std::min(level, lane.engine->NextLevel());
    }
    if (level == ForwardingEngine::kIdle) break;

    // 1. Parallel drain of one hop level. Each lane only touches its own
    // manager; emissions are serialized inside the producing task.
    auto drain = [&](size_t i) {
      Lane& lane = lanes_[i];
      if (lane.engine->NextLevel() != level) return;
      obs::Span span("dp", "dp.lane.round");
      span.Arg("lane", static_cast<int64_t>(i));
      span.Arg("level", level);
      lane.engine->DrainLevel(level, [&](const InFlightPacket& packet) {
        outboxes[i].push_back(ToWire(packet));
      });
    };
    if (pool != nullptr) {
      pool->ParallelFor(count, drain);
    } else {
      for (size_t i = 0; i < count; ++i) drain(i);
    }

    // 2. Sequential merge in lane order: deterministic routing of every
    // emitted frame, including the off-worker send order.
    for (size_t i = 0; i < count; ++i) {
      for (WirePacket& wire : outboxes[i]) {
        auto owner = lane_of_.find(wire.at);
        if (owner != lane_of_.end()) {
          inboxes[owner->second].push_back(std::move(wire));
        } else {
          if (!remote) std::abort();  // remote hop without a transport
          remote(wire);
        }
      }
      outboxes[i].clear();
    }

    // 3. Parallel per-lane enqueue. Every level-(h+1) copy lands before
    // any lane processes h+1 — the exact-merge invariant.
    auto deliver = [&](size_t i) {
      for (const WirePacket& wire : inboxes[i]) AcceptAt(i, wire);
      inboxes[i].clear();
    };
    if (pool != nullptr) {
      pool->ParallelFor(count, deliver);
    } else {
      for (size_t i = 0; i < count; ++i) deliver(i);
    }
  }
}

size_t ParallelForwarding::steps() const {
  size_t total = 0;
  for (const Lane& lane : lanes_) total += lane.engine->steps();
  return total;
}

bdd::Manager::CacheStats ParallelForwarding::cache_stats() const {
  bdd::Manager::CacheStats total;
  for (const Lane& lane : lanes_) {
    const bdd::Manager::CacheStats& stats = lane.manager->cache_stats();
    total.hits += stats.hits;
    total.misses += stats.misses;
    total.evictions += stats.evictions;
    total.gc_kept += stats.gc_kept;
    total.gc_dropped += stats.gc_dropped;
  }
  return total;
}

}  // namespace s2::dp
