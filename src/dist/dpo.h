// Data Plane Orchestrator (paper §3.2/§4.3).
//
// Workflow: first every worker computes FIBs and forwarding/ACL predicates
// for its nodes in parallel (each in its own BDD manager — the design that
// gives Fig 10 its predicate-phase speedup), then queries run as rounds of
// distributed symbolic forwarding: workers forward to local quiescence,
// cross-worker packets travel serialized through the sidecars, and the
// round loop continues until no worker moves a packet. Finals are gathered
// (serialized) into the controller's BDD domain for verdict computation.
#pragma once

#include "dist/cpo.h"  // CostModelParams, RoundMetrics
#include "dp/properties.h"

namespace s2::dist {

class Dpo {
 public:
  Dpo(std::vector<std::unique_ptr<Worker>>* workers, SidecarFabric* fabric,
      util::ThreadPool* pool, CostModelParams cost,
      Worker::Options worker_options = {});

  // Parallel FIB + predicate computation (reads spilled RIBs from `store`
  // when the CP ran sharded).
  RoundMetrics BuildDataPlanes(const cp::RibStore* store);

  struct QueryRun {
    RoundMetrics metrics;
    // Finals re-encoded in the controller's manager via `gather_codec`.
    std::vector<dp::FinalPacket> finals;
    size_t gather_bytes = 0;
  };

  QueryRun RunQuery(const dp::Query& query,
                    const dp::PacketCodec& gather_codec);

  // Query-level parallelism: independent queries run concurrently, each on
  // a private set of per-worker BDD domains rebuilt from the workers'
  // canonical predicate bytes (SnapshotPredicates) — managers stay
  // shared-nothing, per-query and per-worker. Each query replicates the
  // sequential round structure over a query-private exchange, so its
  // finals match RunQuery's byte for byte (pinned by the differential
  // tests). `lanes` bounds the modeled concurrency: per-query busy is
  // measured as thread-CPU time and the aggregate's modeled_seconds is the
  // LPT makespan of those busies over `lanes` slots (DESIGN.md §3 — this
  // 1-core box interleaves; the model reports what an L-thread box would).
  struct MultiQueryRun {
    std::vector<QueryRun> runs;  // per query, in input order
    RoundMetrics aggregate;
  };
  MultiQueryRun RunQueries(const std::vector<dp::Query>& queries,
                           const dp::PacketCodec& gather_codec,
                           size_t lanes);

 private:
  std::vector<std::unique_ptr<Worker>>* workers_;
  SidecarFabric* fabric_;
  util::ThreadPool* pool_;
  CostModelParams cost_;
  Worker::Options worker_options_;
};

}  // namespace s2::dist
