// FIB construction: converged RIBs -> forwarding entries (paper §3.3,
// "real nodes convert their RIBs into FIBs").
//
// Protocols merge by admin distance per prefix; each entry resolves to a
// forwarding action:
//   kForward  to one or more ECMP next-hop devices
//   kArrive   locally announced (network statement / loopback) — the
//             packet reached its destination
//   kExit     conditionally advertised edge prefixes (default route at a
//             border): the packet leaves the modeled network
//   kDiscard  locally originated aggregates resolve to Null0 — covered
//             packets without a more-specific route blackhole, as on real
//             devices
#pragma once

#include <map>
#include <vector>

#include "config/parser.h"
#include "cp/route.h"
#include "util/memory_tracker.h"

namespace s2::dp {

enum class FibAction : uint8_t { kForward, kArrive, kExit, kDiscard };

struct FibEntry {
  util::Ipv4Prefix prefix;
  FibAction action = FibAction::kForward;
  std::vector<topo::NodeId> next_hops;  // kForward only

  size_t EstimateBytes() const { return 48 + 8 * next_hops.size(); }
};

struct Fib {
  // Longest prefix first; ties by address. Predicate construction walks
  // this order to build first-match (LPM) port predicates.
  std::vector<FibEntry> entries;

  // Builds the FIB of device `self` from its converged per-protocol
  // results (BGP best map, OSPF best map) plus connected/loopback routes
  // from the config. Charges entry bytes to `tracker` (released by the
  // caller domain when it drops the FIB).
  static Fib Build(
      const config::ParsedNetwork& network, topo::NodeId self,
      const std::map<util::Ipv4Prefix, std::vector<cp::Route>>& bgp,
      const std::map<util::Ipv4Prefix, std::vector<cp::Route>>& ospf,
      util::MemoryTracker* tracker);

  size_t EstimateBytes() const;

  // (prefix, next hop) of every kForward entry, one pair per ECMP next
  // hop. This is the admission-scoping index (svc/query_service.h): a
  // packet can only leave this node toward a next hop whose entry prefix
  // intersects the packet's destination space, so a reachability pre-pass
  // over these edges soundly over-approximates the workers a query can
  // touch.
  std::vector<std::pair<util::Ipv4Prefix, topo::NodeId>> ForwardEdges()
      const;
};

}  // namespace s2::dp
