#include "bdd/bdd.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "obs/trace.h"

namespace s2::bdd {

namespace {
// Slot marker for entries on the free list.
constexpr uint32_t kFreeVar = ~uint32_t{0} - 1;
}  // namespace

// ---------------------------------------------------------------- handles

Bdd::Bdd(Manager* manager, uint32_t node) : manager_(manager), node_(node) {
  manager_->Ref(node_);
}

Bdd::Bdd(const Bdd& other) : manager_(other.manager_), node_(other.node_) {
  if (manager_) manager_->Ref(node_);
}

Bdd::Bdd(Bdd&& other) noexcept
    : manager_(other.manager_), node_(other.node_) {
  other.manager_ = nullptr;
  other.node_ = 0;
}

Bdd& Bdd::operator=(const Bdd& other) {
  if (this == &other) return *this;
  if (other.manager_) other.manager_->Ref(other.node_);
  if (manager_) manager_->Deref(node_);
  manager_ = other.manager_;
  node_ = other.node_;
  return *this;
}

Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this == &other) return *this;
  if (manager_) manager_->Deref(node_);
  manager_ = other.manager_;
  node_ = other.node_;
  other.manager_ = nullptr;
  other.node_ = 0;
  return *this;
}

Bdd::~Bdd() {
  if (manager_) manager_->Deref(node_);
}

bool Bdd::IsZero() const { return manager_ && node_ == Manager::kZero; }
bool Bdd::IsOne() const { return manager_ && node_ == Manager::kOne; }

Bdd Bdd::operator&(const Bdd& rhs) const { return manager_->And(*this, rhs); }
Bdd Bdd::operator|(const Bdd& rhs) const { return manager_->Or(*this, rhs); }
Bdd Bdd::operator^(const Bdd& rhs) const { return manager_->Xor(*this, rhs); }
Bdd Bdd::operator!() const { return manager_->Not(*this); }

Bdd& Bdd::operator&=(const Bdd& rhs) { return *this = *this & rhs; }
Bdd& Bdd::operator|=(const Bdd& rhs) { return *this = *this | rhs; }

Bdd Bdd::Diff(const Bdd& rhs) const { return *this & !rhs; }

bool Bdd::Intersects(const Bdd& rhs) const {
  return !(*this & rhs).IsZero();
}

bool Bdd::Implies(const Bdd& rhs) const { return Diff(rhs).IsZero(); }

// ---------------------------------------------------------------- manager

Manager::Manager(uint32_t num_vars, Options options)
    : num_vars_(num_vars), options_(options) {
  // Terminals occupy slots 0 and 1 and are permanently referenced.
  nodes_.push_back(Node{kTerminalVar, kZero, kZero});
  nodes_.push_back(Node{kTerminalVar, kOne, kOne});
  refcounts_.assign(2, 1);
  peak_nodes_ = 2;
  bin_cache_.Init(options_.op_cache_entries);
  ite_cache_.Init(options_.op_cache_entries);
}

// --------------------------------------------------------------- op cache

void Manager::OpCache::Init(size_t entries) {
  size_t sets = 8;  // 16 entries minimum at 2 ways per set
  while (sets * 2 < entries) sets *= 2;
  set_mask_ = sets - 1;
  slots_.assign(sets * 2, OpCacheEntry{});
}

size_t Manager::OpCache::SetOf(uint32_t a, uint32_t b, uint32_t c) const {
  uint64_t h = a;
  h = h * 0x9e3779b97f4a7c15ULL + b;
  h = h * 0x9e3779b97f4a7c15ULL + c;
  h ^= h >> 32;
  return static_cast<size_t>(h) & set_mask_;
}

uint32_t Manager::OpCache::Lookup(uint32_t a, uint32_t b, uint32_t c,
                                  uint32_t gen, CacheStats& stats) {
  size_t base = SetOf(a, b, c) * 2;
  for (size_t way = 0; way < 2; ++way) {
    OpCacheEntry& e = slots_[base + way];
    if (e.a == a && e.b == b && e.c == c && e.a != kEmptySlot) {
      e.gen = gen;  // hot entries survive the next generational eviction
      ++stats.hits;
      return e.result;
    }
  }
  ++stats.misses;
  return kEmptySlot;
}

void Manager::OpCache::Insert(uint32_t a, uint32_t b, uint32_t c,
                              uint32_t result, uint32_t gen,
                              CacheStats& stats) {
  size_t base = SetOf(a, b, c) * 2;
  size_t victim = base;
  for (size_t way = 0; way < 2; ++way) {
    OpCacheEntry& e = slots_[base + way];
    if (e.a == kEmptySlot || (e.a == a && e.b == b && e.c == c)) {
      victim = base + way;
      break;
    }
    // Prefer displacing the colder (older-generation) way.
    if (e.gen < slots_[victim].gen) victim = base + way;
  }
  OpCacheEntry& e = slots_[victim];
  if (e.a != kEmptySlot && !(e.a == a && e.b == b && e.c == c)) {
    ++stats.evictions;
  }
  e = OpCacheEntry{a, b, c, result, gen};
}

Manager::~Manager() {
  // Free-list slots were already released by the sweep that freed them;
  // releasing them again here would underflow the tracker.
  if (options_.tracker && allocated_nodes() > 2) {
    options_.tracker->Release((allocated_nodes() - 2) * kNodeBytes);
  }
}

Bdd Manager::Zero() { return Bdd(this, kZero); }
Bdd Manager::One() { return Bdd(this, kOne); }

Bdd Manager::Var(uint32_t index) {
  return Bdd(this, MakeNode(index, kZero, kOne));
}

Bdd Manager::NotVar(uint32_t index) {
  return Bdd(this, MakeNode(index, kOne, kZero));
}

void Manager::Ref(uint32_t node) {
  if (IsTerminal(node)) return;
  if (refcounts_[node]++ == 0) --dead_count_;
}

void Manager::Deref(uint32_t node) {
  if (IsTerminal(node)) return;
  if (--refcounts_[node] == 0) ++dead_count_;
}

uint32_t Manager::AllocateSlot() {
  if (!free_list_.empty()) {
    // A recycled slot re-enters the live set, so it costs budget again —
    // the GC released its bytes when the slot was freed. Charge before
    // popping so a SimulatedOom leaves the free list intact.
    if (options_.tracker) options_.tracker->Charge(kNodeBytes);
    uint32_t slot = free_list_.back();
    free_list_.pop_back();
    --free_count_;
    return slot;
  }
  if (options_.max_nodes != 0 && nodes_.size() >= options_.max_nodes) {
    throw util::SimulatedOom("bdd-node-table", kNodeBytes,
                             options_.max_nodes * kNodeBytes);
  }
  if (options_.tracker) options_.tracker->Charge(kNodeBytes);
  nodes_.push_back(Node{});
  refcounts_.push_back(0);
  return static_cast<uint32_t>(nodes_.size() - 1);
}

uint32_t Manager::MakeNode(uint32_t var, uint32_t low, uint32_t high) {
  if (low == high) return low;
  UniqueKey key{var, low, high};
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  uint32_t slot = AllocateSlot();
  nodes_[slot] = Node{var, low, high};
  refcounts_[slot] = 0;
  ++dead_count_;  // alive once somebody references it
  Ref(low);
  Ref(high);
  unique_.emplace(key, slot);
  peak_nodes_ = std::max(peak_nodes_, allocated_nodes());
  return slot;
}

size_t Manager::live_nodes() const {
  return allocated_nodes() - dead_count_ - 2;  // exclude the terminals
}

void Manager::PinRoot(const Bdd& root) {
  if (!root.valid() || root.manager() != this) return;
  if (root.node_ <= kOne) return;  // terminals are never swept
  pinned_.insert(root.node_);
}

void Manager::MaybeGc() {
  if (gc_hold_ > 0) return;
  size_t allocated = allocated_nodes();
  if (allocated <= 4096) return;
  // Two triggers: many dead roots, or the table outgrew its watermark.
  // The second matters because dead_count_ only sees dereferenced roots —
  // their interior nodes stay internally referenced until a sweep
  // cascades, so churn-heavy workloads grow the table without ever
  // raising the dead fraction.
  bool dead_heavy = static_cast<double>(dead_count_) >
                    options_.gc_dead_fraction * static_cast<double>(allocated);
  if (dead_heavy || allocated >= gc_watermark_) {
    GarbageCollect();
    // Next growth-triggered sweep when the table doubles over the live set.
    gc_watermark_ = std::max<size_t>(2 * 4096, 2 * allocated_nodes());
  }
}

void Manager::GarbageCollect() {
  obs::Span span("bdd", "bdd.gc");
  span.Arg("allocated", static_cast<int64_t>(allocated_nodes()));
  span.Arg("dead", static_cast<int64_t>(dead_count_));
  // Entries inserted (or hit) after this sweep carry the new generation;
  // entries untouched since the previous sweep become eviction victims.
  ++generation_;
  // Sweep with a worklist: freeing a node drops its children's internal
  // references, which can cascade.
  std::vector<uint32_t> worklist;
  for (uint32_t id = 2; id < nodes_.size(); ++id) {
    if (nodes_[id].var != kFreeVar && refcounts_[id] == 0) {
      worklist.push_back(id);
    }
  }
  size_t freed = 0;
  while (!worklist.empty()) {
    uint32_t id = worklist.back();
    worklist.pop_back();
    if (nodes_[id].var == kFreeVar || refcounts_[id] != 0) continue;
    // A pinned node is part of a published snapshot surface; its owner
    // holds a reference for the snapshot's lifetime, so reaching it with
    // refcount 0 means a handle was dropped behind the snapshot's back.
    assert(pinned_.find(id) == pinned_.end() &&
           "BDD GC reclaimed a pinned snapshot root");
    Node& n = nodes_[id];
    unique_.erase(UniqueKey{n.var, n.low, n.high});
    uint32_t low = n.low, high = n.high;
    n.var = kFreeVar;
    free_list_.push_back(id);
    ++free_count_;
    ++freed;
    --dead_count_;
    for (uint32_t child : {low, high}) {
      if (!IsTerminal(child)) {
        if (--refcounts_[child] == 0) {
          ++dead_count_;
          if (nodes_[child].var != kFreeVar) worklist.push_back(child);
        }
      }
    }
  }
  if (options_.tracker && freed > 0) {
    options_.tracker->Release(freed * kNodeBytes);
  }
  // Keep memoized results that only touch surviving nodes; drop entries
  // referencing freed slots. A freed slot is reused by a later MakeNode for
  // a different function, so a stale entry would silently corrupt results.
  // free_list_ is only refilled during this sweep and consumed afterwards,
  // so purging here precedes any reuse.
  auto gone = [&](uint32_t id) {
    return id > kOne && nodes_[id].var == kFreeVar;
  };
  bin_cache_.Purge(
      [&](const OpCacheEntry& e) {
        if (gone(e.a) || gone(e.result)) return true;
        // For kRestrict0, `b` packs (var << 1) | value, not a node id.
        return e.c != kRestrict0 && gone(e.b);
      },
      cache_stats_);
  ite_cache_.Purge(
      [&](const OpCacheEntry& e) {
        return gone(e.a) || gone(e.b) || gone(e.c) || gone(e.result);
      },
      cache_stats_);
}

uint32_t Manager::ApplyBin(BinOp op, uint32_t a, uint32_t b) {
  // Terminal rules.
  switch (op) {
    case kAnd:
      if (a == kZero || b == kZero) return kZero;
      if (a == kOne) return b;
      if (b == kOne) return a;
      if (a == b) return a;
      break;
    case kOr:
      if (a == kOne || b == kOne) return kOne;
      if (a == kZero) return b;
      if (b == kZero) return a;
      if (a == b) return a;
      break;
    case kXor:
      if (a == b) return kZero;
      if (a == kZero) return b;
      if (b == kZero) return a;
      if (a == kOne && b == kOne) return kZero;
      break;
    case kRestrict0:
      break;  // handled in RestrictRec
  }
  if (op != kRestrict0 && a > b) std::swap(a, b);  // commutative
  uint32_t cached = bin_cache_.Lookup(a, b, op, generation_, cache_stats_);
  if (cached != kEmptySlot) return cached;

  uint32_t va = VarOf(a), vb = VarOf(b);
  uint32_t top = std::min(va, vb);
  uint32_t a0 = (va == top) ? nodes_[a].low : a;
  uint32_t a1 = (va == top) ? nodes_[a].high : a;
  uint32_t b0 = (vb == top) ? nodes_[b].low : b;
  uint32_t b1 = (vb == top) ? nodes_[b].high : b;
  uint32_t low = ApplyBin(op, a0, b0);
  uint32_t high = ApplyBin(op, a1, b1);
  uint32_t result = MakeNode(top, low, high);
  bin_cache_.Insert(a, b, op, result, generation_, cache_stats_);
  return result;
}

Bdd Manager::And(const Bdd& a, const Bdd& b) {
  MaybeGc();
  return Bdd(this, ApplyBin(kAnd, a.node_, b.node_));
}

Bdd Manager::Or(const Bdd& a, const Bdd& b) {
  MaybeGc();
  return Bdd(this, ApplyBin(kOr, a.node_, b.node_));
}

Bdd Manager::Xor(const Bdd& a, const Bdd& b) {
  MaybeGc();
  return Bdd(this, ApplyBin(kXor, a.node_, b.node_));
}

Bdd Manager::Not(const Bdd& a) {
  MaybeGc();
  return Bdd(this, ApplyBin(kXor, a.node_, kOne));
}

uint32_t Manager::IteRec(uint32_t f, uint32_t g, uint32_t h) {
  if (f == kOne) return g;
  if (f == kZero) return h;
  if (g == h) return g;
  if (g == kOne && h == kZero) return f;
  if (g == kZero && h == kOne) return ApplyBin(kXor, f, kOne);
  uint32_t cached = ite_cache_.Lookup(f, g, h, generation_, cache_stats_);
  if (cached != kEmptySlot) return cached;

  uint32_t top = std::min({VarOf(f), VarOf(g), VarOf(h)});
  auto cofactor = [&](uint32_t n, bool hi) {
    return VarOf(n) == top ? (hi ? nodes_[n].high : nodes_[n].low) : n;
  };
  uint32_t low = IteRec(cofactor(f, false), cofactor(g, false),
                        cofactor(h, false));
  uint32_t high =
      IteRec(cofactor(f, true), cofactor(g, true), cofactor(h, true));
  uint32_t result = MakeNode(top, low, high);
  ite_cache_.Insert(f, g, h, result, generation_, cache_stats_);
  return result;
}

Bdd Manager::Ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  MaybeGc();
  return Bdd(this, IteRec(f.node_, g.node_, h.node_));
}

uint32_t Manager::RestrictRec(uint32_t f, uint32_t var, bool value) {
  if (IsTerminal(f) || VarOf(f) > var) return f;
  if (VarOf(f) == var) return value ? nodes_[f].high : nodes_[f].low;
  uint32_t packed = (var << 1) | (value ? 1u : 0u);
  uint32_t cached =
      bin_cache_.Lookup(f, packed, kRestrict0, generation_, cache_stats_);
  if (cached != kEmptySlot) return cached;
  uint32_t low = RestrictRec(nodes_[f].low, var, value);
  uint32_t high = RestrictRec(nodes_[f].high, var, value);
  uint32_t result = MakeNode(VarOf(f), low, high);
  bin_cache_.Insert(f, packed, kRestrict0, result, generation_, cache_stats_);
  return result;
}

Bdd Manager::Restrict(const Bdd& f, uint32_t var, bool value) {
  MaybeGc();
  return Bdd(this, RestrictRec(f.node_, var, value));
}

Bdd Manager::Exists(const Bdd& f, const std::vector<uint32_t>& vars) {
  Bdd result = f;
  for (uint32_t var : vars) {
    Bdd lo = Restrict(result, var, false);
    Bdd hi = Restrict(result, var, true);
    result = Or(lo, hi);
  }
  return result;
}

Bdd Manager::Cube(uint32_t first_var, uint32_t n, uint64_t value) {
  uint32_t node = kOne;
  for (uint32_t i = n; i-- > 0;) {
    uint32_t var = first_var + i;
    bool bit = (value >> i) & 1;
    node = bit ? MakeNode(var, kZero, node) : MakeNode(var, node, kZero);
  }
  return Bdd(this, node);
}

Bdd Manager::MaskedMatch(uint32_t first_var, uint32_t n, uint64_t value,
                         uint64_t mask) {
  uint32_t node = kOne;
  // Build from the LSB (deepest variable) up so children always have
  // strictly larger variable indices.
  for (uint32_t p = 0; p < n; ++p) {
    if (!((mask >> p) & 1)) continue;
    uint32_t var = first_var + (n - 1 - p);
    bool bit = (value >> p) & 1;
    node = bit ? MakeNode(var, kZero, node) : MakeNode(var, node, kZero);
  }
  return Bdd(this, node);
}

double Manager::SatFractionRec(uint32_t f,
                               std::unordered_map<uint32_t, double>& memo) {
  if (f == kZero) return 0.0;
  if (f == kOne) return 1.0;
  auto it = memo.find(f);
  if (it != memo.end()) return it->second;
  double result = 0.5 * (SatFractionRec(nodes_[f].low, memo) +
                         SatFractionRec(nodes_[f].high, memo));
  memo.emplace(f, result);
  return result;
}

double Manager::SatFraction(const Bdd& f) {
  std::unordered_map<uint32_t, double> memo;
  return SatFractionRec(f.node_, memo);
}

std::vector<std::pair<uint32_t, bool>> Manager::AnySat(const Bdd& f) {
  std::vector<std::pair<uint32_t, bool>> assignment;
  if (f.node_ == kZero) std::abort();  // precondition: satisfiable
  uint32_t node = f.node_;
  while (!IsTerminal(node)) {
    const Node& n = nodes_[node];
    if (n.high != kZero) {
      assignment.emplace_back(n.var, true);
      node = n.high;
    } else {
      assignment.emplace_back(n.var, false);
      node = n.low;
    }
  }
  return assignment;
}

}  // namespace s2::bdd
