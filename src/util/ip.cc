#include "util/ip.h"

#include <cstdio>
#include <cstdlib>

namespace s2::util {

std::optional<Ipv4Address> Ipv4Address::Parse(const std::string& text) {
  unsigned a, b, c, d;
  char trailing;
  int n = std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d,
                      &trailing);
  if (n != 4 || a > 255 || b > 255 || c > 255 || d > 255) return std::nullopt;
  return Ipv4Address((a << 24) | (b << 16) | (c << 8) | d);
}

std::string Ipv4Address::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", bits_ >> 24,
                (bits_ >> 16) & 0xff, (bits_ >> 8) & 0xff, bits_ & 0xff);
  return buf;
}

Ipv4Prefix::Ipv4Prefix(Ipv4Address addr, uint8_t length) : len_(length) {
  if (len_ > 32) len_ = 32;
  addr_ = Ipv4Address(addr.bits() & Mask());
}

std::optional<Ipv4Prefix> Ipv4Prefix::Parse(const std::string& text) {
  auto slash = text.find('/');
  if (slash == std::string::npos) return std::nullopt;
  auto addr = Ipv4Address::Parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  char* end = nullptr;
  long len = std::strtol(text.c_str() + slash + 1, &end, 10);
  if (end == text.c_str() + slash + 1 || *end != '\0' || len < 0 || len > 32) {
    return std::nullopt;
  }
  return Ipv4Prefix(*addr, static_cast<uint8_t>(len));
}

bool Ipv4Prefix::Contains(Ipv4Address addr) const {
  return (addr.bits() & Mask()) == addr_.bits();
}

bool Ipv4Prefix::Contains(const Ipv4Prefix& other) const {
  return other.len_ >= len_ && Contains(other.addr_);
}

std::string Ipv4Prefix::ToString() const {
  return addr_.ToString() + "/" + std::to_string(len_);
}

Ipv4Address MustParseAddress(const std::string& text) {
  auto a = Ipv4Address::Parse(text);
  if (!a) std::abort();
  return *a;
}

Ipv4Prefix MustParsePrefix(const std::string& text) {
  auto p = Ipv4Prefix::Parse(text);
  if (!p) std::abort();
  return *p;
}

}  // namespace s2::util
