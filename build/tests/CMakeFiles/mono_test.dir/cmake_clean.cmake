file(REMOVE_RECURSE
  "CMakeFiles/mono_test.dir/mono_test.cc.o"
  "CMakeFiles/mono_test.dir/mono_test.cc.o.d"
  "mono_test"
  "mono_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mono_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
