#include "core/s2.h"

#include <fstream>

#include "core/report.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace s2::core {

VerifyResult S2Verifier::Verify(const std::vector<std::string>& config_texts,
                                const std::vector<dp::Query>& queries) {
  util::Stopwatch watch;
  config::ParsedNetwork network;
  {
    obs::Span span("controller", "controller.parse");
    span.Arg("configs", static_cast<int64_t>(config_texts.size()));
    network = config::ParseNetwork(config_texts);
  }
  double parse_seconds = watch.ElapsedSeconds();
  VerifyResult result = Verify(std::move(network), queries);
  result.parse_seconds = parse_seconds;
  return result;
}

VerifyResult S2Verifier::Verify(config::ParsedNetwork network,
                                const std::vector<dp::Query>& queries) {
  VerifyResult result;
  controller_ =
      std::make_unique<dist::Controller>(std::move(network), options_);
  try {
    util::Stopwatch watch;
    controller_->Setup();
    result.partition_seconds = watch.ElapsedSeconds();

    result.control_plane = controller_->RunControlPlane();
    if (queries.empty() && skip_data_plane_without_queries) {
      result.peak_memory_bytes = controller_->MaxWorkerPeakBytes();
      result.worker_peaks = controller_->WorkerPeakBytes();
      result.comm_bytes += controller_->TotalCommBytes();
      result.total_best_routes = controller_->TotalBestRoutes();
      if (controller_->fabric().reliable()) {
        fault::ReliableTransport::Stats stats =
            controller_->fabric().transport_stats();
        result.retransmits = stats.retransmits;
        result.frames_dropped = stats.dropped;
        result.duplicates_suppressed = stats.duplicates_suppressed;
        result.worker_recoveries = controller_->worker_recoveries();
      }
      return result;
    }
    result.dp_build = controller_->BuildDataPlanes();
    if (options_.query_lanes > 1 && queries.size() > 1) {
      // Query-level parallelism: all queries at once; dp_forward carries
      // the aggregate (modeled = LPT makespan over the query lanes).
      dist::Controller::MultiQueryOutcome multi =
          controller_->RunQueries(queries);
      result.dp_forward.Add(multi.aggregate);
      for (dist::Controller::QueryOutcome& outcome : multi.outcomes) {
        result.comm_bytes += outcome.gather_bytes;
        result.queries.push_back(std::move(outcome.result));
      }
    } else {
      for (const dp::Query& query : queries) {
        dist::Controller::QueryOutcome outcome = controller_->RunQuery(query);
        result.dp_forward.Add(outcome.metrics);
        result.comm_bytes += outcome.gather_bytes;
        result.forwarding_steps = outcome.forwarding_steps;
        result.queries.push_back(std::move(outcome.result));
      }
    }
  } catch (const util::SimulatedOom& oom) {
    result.status = RunStatus::kOutOfMemory;
    result.failure_detail = oom.what();
  } catch (const util::SimulatedTimeout& timeout) {
    result.status = RunStatus::kTimeout;
    result.failure_detail = timeout.what();
  }
  result.peak_memory_bytes = controller_->MaxWorkerPeakBytes();
  result.worker_peaks = controller_->WorkerPeakBytes();
  result.comm_bytes += controller_->TotalCommBytes();
  result.total_best_routes = controller_->TotalBestRoutes();
  if (controller_->fabric().reliable()) {
    fault::ReliableTransport::Stats stats =
        controller_->fabric().transport_stats();
    result.retransmits = stats.retransmits;
    result.frames_dropped = stats.dropped;
    result.duplicates_suppressed = stats.duplicates_suppressed;
    result.worker_recoveries = controller_->worker_recoveries();
  }
  return result;
}

std::optional<svc::Snapshot> S2Verifier::ExportSnapshot() const {
  if (!controller_) return std::nullopt;
  for (size_t w = 0; w < controller_->num_workers(); ++w) {
    if (!controller_->worker(w).has_data_plane()) return std::nullopt;
  }
  if (controller_->num_workers() == 0) return std::nullopt;
  return svc::CaptureSnapshot(*controller_);
}

std::string S2Verifier::RunReportJson(const VerifyResult& result) const {
  obs::Registry registry;
  registry.SetLabel("schema", "s2.run_report.v1");
  PublishVerifyResult(result, registry);
  if (controller_) controller_->PublishMetrics(registry);
  return registry.ToJson();
}

bool S2Verifier::WriteRunReport(const VerifyResult& result,
                                const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  out << RunReportJson(result) << "\n";
  return static_cast<bool>(out);
}

}  // namespace s2::core
