file(REMOVE_RECURSE
  "CMakeFiles/bdd_io_test.dir/bdd_io_test.cc.o"
  "CMakeFiles/bdd_io_test.dir/bdd_io_test.cc.o.d"
  "bdd_io_test"
  "bdd_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdd_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
