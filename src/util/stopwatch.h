// Wall-clock stopwatch used for the measured component of the cost model
// (per-worker busy time) and for benchmark phase timings.
#pragma once

#include <chrono>

namespace s2::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace s2::util
