// Failure sweep: what-if analysis over every single link and device
// failure of a FatTree — the resilience audit an operator runs before
// maintenance windows.
//
//   ./failure_sweep [k]
//
// For each failure, re-verifies all-pair reachability and reports which
// pairs change. On a healthy FatTree, every single link failure and every
// single aggregation/core failure is absorbed by ECMP; only edge (rack)
// failures lose pairs — and exactly the victim's.
#include <cstdio>
#include <cstdlib>

#include "config/vendor.h"
#include "core/mono.h"
#include "core/whatif.h"
#include "topo/fattree.h"

using namespace s2;

namespace {

dp::QueryResult Verify(const config::ParsedNetwork& net,
                       const dp::Query& query) {
  core::MonoVerifier verifier{core::MonoOptions{}};
  core::VerifyResult result = verifier.Verify(net, {query});
  if (!result.ok()) {
    std::fprintf(stderr, "verification failed: %s\n",
                 result.failure_detail.c_str());
    std::exit(1);
  }
  return result.queries[0];
}

}  // namespace

int main(int argc, char** argv) {
  int k = argc > 1 ? std::atoi(argv[1]) : 4;
  topo::FatTreeParams params;
  params.k = k;
  auto net = config::ParseNetwork(
      config::SynthesizeConfigs(topo::MakeFatTree(params)));

  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  for (topo::NodeId id = 0; id < net.graph.size(); ++id) {
    if (net.graph.node(id).role == topo::Role::kEdge) {
      query.sources.push_back(id);
      query.destinations.push_back(id);
    }
  }
  std::printf("FatTree%d: %zu switches, %zu links — baseline...\n", k,
              net.graph.size(), net.graph.edge_count());
  dp::QueryResult baseline = Verify(net, query);
  std::printf("baseline: %zu/%zu pairs reachable\n\n",
              baseline.reachable_pairs,
              baseline.reachable_pairs + baseline.unreachable_pairs);

  std::printf("--- single link failures (%zu) ---\n",
              net.graph.edge_count());
  size_t absorbed_links = 0;
  for (size_t e = 0; e < net.graph.edge_count(); ++e) {
    const topo::Edge& edge = net.graph.edge(e);
    auto cut = core::RemoveLink(net, edge.a, edge.b);
    auto changes = core::DiffReachability(baseline, Verify(cut, query));
    if (changes.empty()) {
      ++absorbed_links;
    } else {
      std::printf("  %s -- %s: %zu pairs change\n",
                  net.graph.node(edge.a).name.c_str(),
                  net.graph.node(edge.b).name.c_str(), changes.size());
    }
  }
  std::printf("%zu/%zu link failures fully absorbed by ECMP\n\n",
              absorbed_links, net.graph.edge_count());

  std::printf("--- single device failures (%zu) ---\n", net.graph.size());
  size_t absorbed_nodes = 0;
  for (topo::NodeId id = 0; id < net.graph.size(); ++id) {
    auto failed = core::FailNode(net, id);
    auto changes = core::DiffReachability(baseline, Verify(failed, query));
    if (changes.empty()) {
      ++absorbed_nodes;
    } else {
      std::printf("  %s down: %zu pairs lost\n",
                  net.graph.node(id).name.c_str(), changes.size());
    }
  }
  std::printf("%zu/%zu device failures fully absorbed\n", absorbed_nodes,
              net.graph.size());
  return 0;
}
