// Monolithic control-plane simulation engine — the "Batfish" baseline:
// every node lives in one process/domain, rounds run over all of them,
// and (optionally) prefix sharding splits the computation into rounds per
// shard (the paper also evaluates "Batfish + prefix sharding", Fig 4).
//
// The round structure is the synchronous two-phase exchange described in
// cp/node.h; the distributed engine (dist/) runs the *same* phases with
// barriers across workers, which is why the two produce identical RIBs —
// the invariant the integration tests pin down.
#pragma once

#include <memory>
#include <vector>

#include "cp/node.h"
#include "cp/shard.h"
#include "util/cost_model.h"
#include "util/memory_tracker.h"
#include "util/stopwatch.h"

namespace s2::cp {

struct EngineOptions {
  // Fixed-point safety valve: exceeding this raises SimulatedTimeout
  // (the paper's §7 limitation: a non-converging control plane).
  int max_rounds_per_pass = 1000;
  // The GC-pressure cost model (DESIGN.md §3), applied per round against
  // the engine's tracker to produce modeled_seconds.
  util::CostModelParams cost;
};

struct EngineStats {
  int ospf_rounds = 0;
  int bgp_rounds = 0;       // summed over shards
  int shards_executed = 0;
  double compute_seconds = 0;  // wall time spent in node computation
  double modeled_seconds = 0;  // wall + per-round GC penalties
  size_t total_best_routes = 0;
};

class MonoEngine {
 public:
  MonoEngine(const config::ParsedNetwork& network,
             util::MemoryTracker* tracker, EngineOptions options = {});

  // Runs the full protocol sequence (IGP before EGP, §4.2): an OSPF pass
  // if any device enables OSPF, then BGP. With `plan`, BGP runs one shard
  // at a time; converged shard results are spilled to `store` (which must
  // then be non-null). Without a plan, results are retained in the nodes.
  void Run(const ShardPlan* plan, RibStore* store);

  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }
  Node& node(topo::NodeId id) { return *nodes_[id]; }
  const EngineStats& stats() const { return stats_; }

  // The engine's attribute-interning domain (diagnostics / benchmarks).
  const AttrPool& attr_pool() const { return pool_; }
  AttrPool& attr_pool() { return pool_; }

 private:
  // Runs synchronous rounds until the fix point; returns rounds executed.
  int RunRounds();

  const config::ParsedNetwork* network_;
  util::MemoryTracker* tracker_;
  EngineOptions options_;
  // Declared before nodes_: nodes release their interned handles on
  // destruction, so the pool must be destroyed last.
  AttrPool pool_;
  std::vector<std::unique_ptr<Node>> nodes_;
  EngineStats stats_;
};

}  // namespace s2::cp
