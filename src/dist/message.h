// Wire messages exchanged between sidecars (paper §3.2).
//
// Two kinds cross worker boundaries: batched route updates during control
// plane simulation and serialized symbolic packets during data plane
// verification. Payloads are real serialized bytes (cp/route.cc wire
// format, bdd/bdd_io.cc wire format) so the cost the paper attributes to
// cross-worker communication — serialization + deserialization — is
// actually paid.
#pragma once

#include <cstdint>
#include <vector>

#include "dp/parallel.h"
#include "topo/graph.h"

namespace s2::dist {

// kPacketBatch carries many symbolic-packet frames in one payload: the
// parallel data plane emits packets per hop level, so a worker typically
// has several frames for the same destination worker per round — batching
// them amortizes the per-message envelope (paper §3.2, sidecars stream
// packet pages, not single packets). kSymbolicPacket remains for
// single-packet sends.
enum class MessageType : uint8_t {
  kRouteUpdates,
  kSymbolicPacket,
  kPacketBatch,
};

struct Message {
  MessageType type = MessageType::kRouteUpdates;
  topo::NodeId to_node = topo::kInvalidNode;
  topo::NodeId from_node = topo::kInvalidNode;
  // Symbolic packets carry their injection source and hop count alongside
  // the serialized BDD.
  topo::NodeId packet_src = topo::kInvalidNode;
  int packet_hops = 0;
  // Node path of the packet so far (path-recording queries only).
  std::vector<topo::NodeId> packet_path;
  std::vector<uint8_t> payload;

  size_t WireBytes() const {
    return 24 + payload.size() + 4 * packet_path.size();
  }
};

// Packet-batch payload codec. Every frame in a batch must target nodes of
// the same worker (the fabric routes the whole message by
// WorkerOf(to_node), which callers set to the first frame's destination).
void EncodePacketBatch(const std::vector<dp::WirePacket>& frames,
                       std::vector<uint8_t>& payload);
std::vector<dp::WirePacket> DecodePacketBatch(
    const std::vector<uint8_t>& payload);

}  // namespace s2::dist
