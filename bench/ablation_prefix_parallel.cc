// Ablation (paper §7, "Parallel and Distributed Strategies"): prefix
// parallelism. S2 executes prefix shards in sequential rounds; the paper
// sketches an alternative where each switch gets one node replica per
// shard so all shards run concurrently. Because shards are
// computationally independent, the alternative's cost is derivable
// exactly from per-shard records of the sequential run:
//
//   time(parallel)   = max over shards of shard time
//   memory(parallel) = sum over shards of per-worker shard peaks
//
// — the classic time/memory trade the paper leaves as future work. This
// harness quantifies it across shard counts.
#include "bench_util.h"

using namespace s2;
using namespace s2::bench;

int main(int argc, char** argv) {
  ObsOptions obs = ParseObsFlags(argc, argv);
  const int k = 8;
  std::printf("=== Ablation: sequential vs parallel shard execution "
              "(k=%d, %s, 4 workers) ===\n\n",
              k, PaperSize(k));
  BuiltNetwork built = BuildFatTree(k);

  std::printf("%-8s | %14s %12s | %14s %12s\n", "shards", "seq-time",
              "seq-peak", "par-time", "par-peak");
  for (int shards : {2, 5, 10, 20, 40}) {
    dist::ControllerOptions options = S2Options(4, shards);
    options.worker_memory_budget = 0;
    core::S2Verifier verifier(options);
    verifier.skip_data_plane_without_queries = true;
    core::VerifyResult result = verifier.Verify(built.parsed, {});
    CaptureReport(obs, verifier, result);
    if (!result.ok()) {
      std::printf("%-8d %s\n", shards, core::RunStatusName(result.status));
      continue;
    }
    const auto& per_shard = verifier.last_controller()->shard_metrics();
    double parallel_time = 0;
    size_t parallel_peak = 0;
    size_t sequential_peak = 0;
    for (const dist::ShardMetrics& shard : per_shard) {
      parallel_time = std::max(parallel_time,
                               shard.rounds.modeled_seconds);
      parallel_peak += shard.max_worker_peak;
      sequential_peak = std::max(sequential_peak, shard.max_worker_peak);
    }
    std::printf("%-8d | %14s %12s | %14s %12s\n", shards,
                core::HumanSeconds(result.control_plane.modeled_seconds)
                    .c_str(),
                core::HumanBytes(sequential_peak).c_str(),
                core::HumanSeconds(parallel_time).c_str(),
                core::HumanBytes(parallel_peak).c_str());
  }
  std::printf(
      "\nreading: parallel shard execution collapses the time to roughly\n"
      "one shard's worth but pays the summed per-shard memory — it gives\n"
      "back most of what sharding saved. Worth it only when time, not\n"
      "memory, is the binding constraint.\n");
  FinishObs(obs);
  return 0;
}
