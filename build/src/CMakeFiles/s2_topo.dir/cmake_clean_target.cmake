file(REMOVE_RECURSE
  "libs2_topo.a"
)
