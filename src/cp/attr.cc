#include "cp/attr.h"

#include <algorithm>

namespace s2::cp {

bool AttrTuple::HasCommunity(uint32_t community) const {
  return std::binary_search(communities.begin(), communities.end(),
                            community);
}

void AttrTuple::AddCommunity(uint32_t community) {
  auto it = std::lower_bound(communities.begin(), communities.end(),
                             community);
  if (it == communities.end() || *it != community) {
    communities.insert(it, community);
  }
}

size_t AttrTuple::Hash() const {
  // FNV-1a over the tuple's value; collision handling is the pool's
  // deep-compare, so quality only affects bucket sizes.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(local_pref);
  mix(med);
  mix(origin);
  mix(as_path.size());
  for (uint32_t asn : as_path) mix(asn);
  mix(communities.size());
  for (uint32_t community : communities) mix(community);
  return static_cast<size_t>(h);
}

const AttrTuple& DefaultAttrTuple() {
  static const AttrTuple kDefault;
  return kDefault;
}

void AttrHandle::Reset() {
  if (entry_ == nullptr) return;
  internal::AttrEntry* entry = entry_;
  entry_ = nullptr;
  // Lock-free fast path while other references exist. The decrement that
  // could hit zero must NOT happen here: if it did, a concurrent Intern
  // could resurrect and re-kill the entry, leaving two threads racing to
  // evict the same pointer — one of them after the other freed it. So a
  // possible last-out decrement is handed to the pool, which performs it
  // under the intern lock (ReleaseLast).
  uint64_t refs = entry->refs.load(std::memory_order_acquire);
  while (refs > 1) {
    if (entry->refs.compare_exchange_weak(refs, refs - 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
      return;
    }
  }
  AttrPool* pool = entry->pool.load(std::memory_order_acquire);
  if (pool) {
    pool->ReleaseLast(entry);
  } else if (entry->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    delete entry;  // orphaned: the pool died first, we were last out
  }
}

double AttrPool::Stats::DedupRatio() const {
  uint64_t total = hits + misses;
  return total == 0 ? 0.0 : double(hits) / double(total);
}

AttrPool::~AttrPool() {
  // Surviving entries are still referenced by handles that outlive the
  // pool (e.g. RIB snapshots copied out of an engine). Orphan them — the
  // last handle frees the entry — but release their shared bytes now:
  // the accounting domain closes with the pool.
  for (auto& [hash, bucket] : buckets_) {
    for (internal::AttrEntry* entry : bucket) {
      if (tracker_) tracker_->Release(entry->tuple.SharedBytes());
      if (entry->refs.load(std::memory_order_acquire) == 0) {
        delete entry;
      } else {
        entry->pool.store(nullptr, std::memory_order_release);
      }
    }
  }
}

AttrHandle AttrPool::Intern(AttrTuple tuple) {
  if (tuple == DefaultAttrTuple()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++hits_;
    return AttrHandle();
  }
  size_t hash = tuple.Hash();
  std::lock_guard<std::mutex> lock(mutex_);
  auto& bucket = buckets_[hash];
  for (internal::AttrEntry* entry : bucket) {
    if (entry->tuple == tuple) {
      // The increment happens under the lock; the only decrement that can
      // reach zero (ReleaseLast) also runs under it and deletes the entry
      // in the same critical section, so this entry is alive.
      entry->refs.fetch_add(1, std::memory_order_relaxed);
      ++hits_;
      return AttrHandle(entry);
    }
  }
  // Charge before inserting: a SimulatedOom leaves the pool unchanged.
  size_t bytes = tuple.SharedBytes();
  if (tracker_) tracker_->Charge(bytes);
  auto* entry = new internal::AttrEntry;
  entry->tuple = std::move(tuple);
  entry->refs.store(1, std::memory_order_relaxed);
  entry->hash = hash;
  entry->pool.store(this, std::memory_order_release);
  bucket.push_back(entry);
  ++misses_;
  ++live_entries_;
  peak_entries_ = std::max(peak_entries_, live_entries_);
  shared_bytes_ += bytes;
  peak_shared_bytes_ = std::max(peak_shared_bytes_, shared_bytes_);
  return AttrHandle(entry);
}

void AttrPool::ReleaseLast(internal::AttrEntry* entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  // The caller saw refcount 1, but a concurrent Intern may have taken a
  // new reference before we acquired the lock — then this is an ordinary
  // decrement. Because every zero-reaching decrement happens under this
  // mutex and is followed by removal+delete in the same critical section,
  // no Intern can ever observe (or resurrect) a zero-ref entry.
  if (entry->refs.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  auto bucket_it = buckets_.find(entry->hash);
  auto& bucket = bucket_it->second;
  bucket.erase(std::find(bucket.begin(), bucket.end(), entry));
  if (bucket.empty()) buckets_.erase(bucket_it);
  ++evictions_;
  --live_entries_;
  size_t bytes = entry->tuple.SharedBytes();
  shared_bytes_ -= bytes;
  if (tracker_) tracker_->Release(bytes);
  delete entry;
}

AttrPool::Stats AttrPool::stats() const {
  Stats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.hits = hits_;
    stats.misses = misses_;
    stats.evictions = evictions_;
    stats.live_entries = live_entries_;
    stats.peak_entries = peak_entries_;
    stats.shared_bytes = shared_bytes_;
    stats.peak_shared_bytes = peak_shared_bytes_;
  }
  stats.plain_bytes = plain_live_.load(std::memory_order_relaxed);
  stats.peak_plain_bytes = plain_peak_.load(std::memory_order_relaxed);
  stats.wire_tuples_written =
      wire_tuples_written_.load(std::memory_order_relaxed);
  stats.wire_tuples_reused =
      wire_tuples_reused_.load(std::memory_order_relaxed);
  stats.wire_bytes_saved = wire_bytes_saved_.load(std::memory_order_relaxed);
  return stats;
}

size_t AttrPool::live_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_entries_;
}

void AttrPool::ChargePlain(size_t bytes) {
  size_t now = plain_live_.fetch_add(bytes, std::memory_order_relaxed) +
               bytes;
  size_t peak = plain_peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !plain_peak_.compare_exchange_weak(peak, now,
                                            std::memory_order_relaxed)) {
  }
}

void AttrPool::ReleasePlain(size_t bytes) {
  plain_live_.fetch_sub(bytes, std::memory_order_relaxed);
}

void AttrPool::NoteWireSavings(uint64_t written, uint64_t reused,
                               uint64_t saved) {
  wire_tuples_written_.fetch_add(written, std::memory_order_relaxed);
  wire_tuples_reused_.fetch_add(reused, std::memory_order_relaxed);
  wire_bytes_saved_.fetch_add(saved, std::memory_order_relaxed);
}

}  // namespace s2::cp
