#include "util/thread_pool.h"

#include <exception>

namespace s2::util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& task) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    futures.push_back(Submit([&task, i] { task(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions propagate through the packaged_task's future
  }
}

}  // namespace s2::util
