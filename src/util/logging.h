// Leveled logging with a process-global minimum level. The verifier is a
// batch tool, so logging goes to stderr and stays line-oriented.
#pragma once

#include <sstream>
#include <string>

namespace s2::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Sets / reads the global minimum level. Defaults to kWarn so tests and
// benchmarks stay quiet unless asked.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void Emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace s2::util

#define S2_LOG(level)                                       \
  if (::s2::util::LogLevel::level < ::s2::util::GetLogLevel()) { \
  } else                                                    \
    ::s2::util::internal::LogLine(::s2::util::LogLevel::level)
