file(REMOVE_RECURSE
  "CMakeFiles/fig6_workers.dir/bench/fig6_workers.cc.o"
  "CMakeFiles/fig6_workers.dir/bench/fig6_workers.cc.o.d"
  "bench/fig6_workers"
  "bench/fig6_workers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
