// Machine-readable result export: serializes a VerifyResult (status,
// phase metrics, memory, property verdicts) as JSON for dashboards and CI
// gates. Hand-rolled emitter — the schema is small and the repo carries no
// third-party JSON dependency.
#pragma once

#include <string>

#include "core/results.h"

namespace s2::core {

// JSON object string (no trailing newline). Stable key order.
std::string ToJson(const VerifyResult& result);

// Convenience: writes ToJson(result) to `path`; returns false on I/O
// failure.
bool WriteJsonReport(const VerifyResult& result, const std::string& path);

}  // namespace s2::core
