// Shared helpers for hand-built miniature networks used across the
// control-plane and data-plane tests.
#pragma once

#include "config/parser.h"
#include "config/vendor.h"
#include "topo/graph.h"

namespace s2::testing {

// A chain r0 - r1 - ... - r(n-1) of eBGP routers; router i announces
// 10.0.i.0/24 and its loopback 172.16.0.i/32.
inline topo::Network MakeChain(int n) {
  topo::Network net;
  net.name = "chain" + std::to_string(n);
  for (int i = 0; i < n; ++i) {
    net.graph.AddNode(topo::NodeInfo{"r" + std::to_string(i),
                                     topo::Role::kEdge, 0, -1, 1.0});
  }
  for (int i = 0; i + 1 < n; ++i) net.graph.AddEdge(i, i + 1);
  net.intents.resize(n);
  for (int i = 0; i < n; ++i) {
    topo::NodeIntent& intent = net.intents[i];
    intent.asn = 65001 + static_cast<uint32_t>(i);
    intent.loopback = util::Ipv4Prefix(
        util::Ipv4Address((172u << 24) | (16u << 16) | uint32_t(i)), 32);
    intent.announced.push_back(intent.loopback);
    intent.announced.push_back(util::Ipv4Prefix(
        util::Ipv4Address((10u << 24) | (uint32_t(i) << 8)), 24));
    intent.max_ecmp_paths = 4;
  }
  topo::AssignLinkAddresses(net);
  return net;
}

// A diamond: r0 at the bottom, r1/r2 in the middle, r3 at the top — two
// equal-cost paths between r0 and r3 (the minimal ECMP fixture).
inline topo::Network MakeDiamond() {
  topo::Network net;
  net.name = "diamond";
  for (int i = 0; i < 4; ++i) {
    net.graph.AddNode(topo::NodeInfo{"r" + std::to_string(i),
                                     topo::Role::kEdge, 0, -1, 1.0});
  }
  net.graph.AddEdge(0, 1);
  net.graph.AddEdge(0, 2);
  net.graph.AddEdge(1, 3);
  net.graph.AddEdge(2, 3);
  net.intents.resize(4);
  for (int i = 0; i < 4; ++i) {
    topo::NodeIntent& intent = net.intents[i];
    intent.asn = 65001 + static_cast<uint32_t>(i);
    intent.loopback = util::Ipv4Prefix(
        util::Ipv4Address((172u << 24) | (16u << 16) | uint32_t(i)), 32);
    intent.announced.push_back(intent.loopback);
    intent.announced.push_back(util::Ipv4Prefix(
        util::Ipv4Address((10u << 24) | (uint32_t(i) << 8)), 24));
    intent.max_ecmp_paths = 4;
  }
  topo::AssignLinkAddresses(net);
  return net;
}

inline config::ParsedNetwork Parse(const topo::Network& net) {
  return config::ParseNetwork(config::SynthesizeConfigs(net));
}

}  // namespace s2::testing
