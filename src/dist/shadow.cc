#include "dist/shadow.h"

namespace s2::dist {

void ShadowNode::Deliver(topo::NodeId local,
                         std::vector<cp::RouteUpdate> updates) {
  auto& box = inbox_[local];
  if (box.empty()) {
    box = std::move(updates);
  } else {
    box.insert(box.end(), std::make_move_iterator(updates.begin()),
               std::make_move_iterator(updates.end()));
  }
}

std::vector<cp::RouteUpdate> ShadowNode::TakeUpdatesFor(topo::NodeId local) {
  auto it = inbox_.find(local);
  if (it == inbox_.end()) return {};
  std::vector<cp::RouteUpdate> updates = std::move(it->second);
  inbox_.erase(it);
  return updates;
}

}  // namespace s2::dist
