file(REMOVE_RECURSE
  "libs2_config.a"
)
