file(REMOVE_RECURSE
  "CMakeFiles/s2_dp.dir/dp/fib.cc.o"
  "CMakeFiles/s2_dp.dir/dp/fib.cc.o.d"
  "CMakeFiles/s2_dp.dir/dp/forwarding.cc.o"
  "CMakeFiles/s2_dp.dir/dp/forwarding.cc.o.d"
  "CMakeFiles/s2_dp.dir/dp/packet.cc.o"
  "CMakeFiles/s2_dp.dir/dp/packet.cc.o.d"
  "CMakeFiles/s2_dp.dir/dp/predicates.cc.o"
  "CMakeFiles/s2_dp.dir/dp/predicates.cc.o.d"
  "CMakeFiles/s2_dp.dir/dp/properties.cc.o"
  "CMakeFiles/s2_dp.dir/dp/properties.cc.o.d"
  "libs2_dp.a"
  "libs2_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
