#include "dist/dpo.h"

#include <algorithm>

#include "bdd/bdd_io.h"
#include "util/stopwatch.h"

namespace s2::dist {

Dpo::Dpo(std::vector<std::unique_ptr<Worker>>* workers,
         SidecarFabric* fabric, util::ThreadPool* pool, CostModelParams cost)
    : workers_(workers), fabric_(fabric), pool_(pool), cost_(cost) {}

RoundMetrics Dpo::BuildDataPlanes(const cp::RibStore* store) {
  RoundMetrics metrics;
  util::Stopwatch wall;
  pool_->ParallelFor(workers_->size(), [&](size_t w) {
    (*workers_)[w]->BuildDataPlane(store);
  });
  for (const auto& worker : *workers_) {
    metrics.modeled_seconds =
        std::max(metrics.modeled_seconds, worker->last_phase_seconds());
  }
  metrics.wall_seconds = wall.ElapsedSeconds();
  metrics.rounds = 1;
  return metrics;
}

Dpo::QueryRun Dpo::RunQuery(const dp::Query& query,
                            const dp::PacketCodec& gather_codec) {
  QueryRun run;
  util::Stopwatch wall;
  pool_->ParallelFor(workers_->size(), [&](size_t w) {
    (*workers_)[w]->PrepareQuery(query);
  });

  size_t num_workers = workers_->size();
  std::vector<char> moved(num_workers, 0);
  for (;;) {
    size_t bytes_before = fabric_->total_bytes();
    pool_->ParallelFor(num_workers, [&](size_t w) {
      moved[w] = (*workers_)[w]->ForwardRound() ? 1 : 0;
    });
    bool any = false;
    double busy = 0;
    for (size_t w = 0; w < num_workers; ++w) {
      any = any || moved[w];
      busy = std::max(busy, (*workers_)[w]->last_phase_seconds());
    }
    size_t bytes_after = fabric_->total_bytes();
    // No per-round latency term here: unlike control-plane rounds, packet
    // forwarding is asynchronous in S2's design (sidecars stream packets;
    // the DPO only detects quiescence) — the in-process round loop is an
    // implementation artifact, not a modeled barrier.
    run.metrics.comm_bytes += bytes_after - bytes_before;
    run.metrics.modeled_seconds +=
        busy + double(bytes_after - bytes_before) / double(num_workers) /
                   cost_.bandwidth_bytes_per_sec;
    ++run.metrics.rounds;
    if (!any && !fabric_->HasPending()) break;
  }

  // Gather finals into the controller's domain (serialized BDD transfer).
  for (const auto& worker : *workers_) {
    for (SerializedFinal& final : worker->TakeFinals()) {
      run.gather_bytes += final.WireBytes();
      dp::FinalPacket packet;
      packet.src = final.src;
      packet.node = final.node;
      packet.state = final.state;
      packet.path = std::move(final.path);
      packet.set =
          bdd::DeserializeInto(*gather_codec.manager(), final.set);
      run.finals.push_back(std::move(packet));
    }
  }
  run.metrics.wall_seconds = wall.ElapsedSeconds();
  return run;
}

}  // namespace s2::dist
