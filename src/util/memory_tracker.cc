#include "util/memory_tracker.h"

namespace s2::util {

void MemoryTracker::Charge(size_t bytes) {
  size_t now = live_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (budget_ != 0 && now > budget_) {
    live_.fetch_sub(bytes, std::memory_order_relaxed);
    throw SimulatedOom(domain_, bytes, budget_);
  }
  size_t prev_peak = peak_.load(std::memory_order_relaxed);
  while (now > prev_peak &&
         !peak_.compare_exchange_weak(prev_peak, now,
                                      std::memory_order_relaxed)) {
  }
}

void MemoryTracker::Release(size_t bytes) {
  size_t prev = live_.load(std::memory_order_relaxed);
  size_t next;
  do {
    next = prev >= bytes ? prev - bytes : 0;
  } while (!live_.compare_exchange_weak(prev, next,
                                        std::memory_order_relaxed));
}

void MemoryTracker::ReleaseAll() { live_.store(0, std::memory_order_relaxed); }

double MemoryTracker::pressure() const {
  if (budget_ == 0) return 0.0;
  return static_cast<double>(live_bytes()) / static_cast<double>(budget_);
}

}  // namespace s2::util
