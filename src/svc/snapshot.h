// Verification-as-a-service, part 1: the servable artifact.
//
// A converged S2 run (control plane + data planes) is captured as an
// immutable Snapshot: per-worker canonical predicate bytes (the FIB BDD
// roots in bdd_io's structural encoding), the per-node forward-edge index
// for admission scoping, the partition map, and shared handles to the
// parsed network and the RIB spill store. Everything a QueryService needs
// to answer reachability/loop/waypoint queries without re-running the
// control plane.
//
// The SnapshotRegistry publishes snapshots under monotonically increasing
// epochs with epoch-based reclaim: a republish makes the new epoch current
// immediately, while in-flight queries keep the epoch they pinned (an RAII
// SnapshotRef) alive until they finish. A non-current epoch with zero pins
// is reclaimed; the current epoch is never reclaimed. Use-after-reclaim is
// structurally impossible — a ref holds shared ownership — but the
// registry's pin counts make the reclaim protocol observable and testable.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "config/parser.h"
#include "cp/rib.h"
#include "dp/packet.h"
#include "obs/registry.h"

namespace s2::dist {
class Controller;
}

namespace s2::svc {

struct Snapshot {
  // Stamped by SnapshotRegistry::Publish; 0 = never published.
  uint64_t epoch = 0;

  // Domain parameters of the run that converged (serving domains must
  // rebuild predicates under the same header layout).
  dp::HeaderLayout layout;
  int max_hops = 24;
  size_t max_bdd_nodes = 0;

  size_t num_workers = 0;
  // worker_of[node] = owning worker (the partition assignment).
  std::vector<uint32_t> worker_of;

  // Shared, read-only after convergence: the parsed network (verdict
  // evaluation needs announced prefixes) and the per-shard RIB spills
  // (null when sharding was off).
  std::shared_ptr<const config::ParsedNetwork> network;
  std::shared_ptr<const cp::RibStore> rib_spills;

  // Per worker, per local node: canonical predicate bytes (bdd_io
  // structural encoding — equal bytes mean equal forwarding semantics).
  std::vector<std::map<topo::NodeId, std::vector<uint8_t>>> predicates;

  // Per node: (prefix, next hop) FIB forward edges — the admission-scoping
  // index. May be empty for recovered workers (see Worker::fib_edges).
  std::map<topo::NodeId,
           std::vector<std::pair<util::Ipv4Prefix, topo::NodeId>>>
      fib_edges;

  size_t total_best_routes = 0;

  size_t TotalBytes() const;
};

// Captures the controller's converged state. Requires RunControlPlane and
// BuildDataPlanes to have completed (every worker holds a data plane).
Snapshot CaptureSnapshot(const dist::Controller& controller);

class SnapshotRegistry;

// RAII pin on one published epoch. Copyable (re-pins); the pinned
// snapshot stays readable for the ref's lifetime even across republish
// and reclaim of its epoch.
class SnapshotRef {
 public:
  SnapshotRef() = default;
  ~SnapshotRef() { Release(); }
  SnapshotRef(const SnapshotRef& other);
  SnapshotRef(SnapshotRef&& other) noexcept;
  SnapshotRef& operator=(const SnapshotRef& other);
  SnapshotRef& operator=(SnapshotRef&& other) noexcept;

  explicit operator bool() const { return snapshot_ != nullptr; }
  const Snapshot& operator*() const { return *snapshot_; }
  const Snapshot* operator->() const { return snapshot_.get(); }
  const Snapshot* get() const { return snapshot_.get(); }
  uint64_t epoch() const { return snapshot_ ? snapshot_->epoch : 0; }

  // Drops the pin early (idempotent).
  void Release();

 private:
  friend class SnapshotRegistry;
  SnapshotRef(SnapshotRegistry* registry,
              std::shared_ptr<const Snapshot> snapshot)
      : registry_(registry), snapshot_(std::move(snapshot)) {}

  SnapshotRegistry* registry_ = nullptr;
  std::shared_ptr<const Snapshot> snapshot_;
};

class SnapshotRegistry {
 public:
  struct Stats {
    uint64_t current_epoch = 0;  // 0 = nothing published yet
    size_t published = 0;        // total Publish calls
    size_t reclaimed = 0;        // epochs whose entry was dropped
    size_t live_epochs = 0;      // entries still held by the registry
    size_t pinned_refs = 0;      // outstanding pins across all epochs
  };

  // Publishes `snapshot` as the new current epoch and returns the epoch.
  // Non-current epochs with no outstanding pins are reclaimed here (and on
  // every unpin), so republish coexists with in-flight queries.
  uint64_t Publish(Snapshot snapshot);

  // Pins the current epoch; an empty ref if nothing is published.
  SnapshotRef Acquire();

  Stats stats() const;

  // svc.snapshots.* counters.
  void PublishMetrics(obs::Registry& registry) const;

 private:
  friend class SnapshotRef;
  void Pin(uint64_t epoch);
  void Unpin(uint64_t epoch);
  void ReclaimLocked();

  struct Entry {
    std::shared_ptr<const Snapshot> snapshot;
    size_t pins = 0;
  };

  mutable std::mutex mutex_;
  std::map<uint64_t, Entry> entries_;
  uint64_t current_ = 0;
  uint64_t next_epoch_ = 1;
  size_t published_ = 0;
  size_t reclaimed_ = 0;
};

}  // namespace s2::svc
