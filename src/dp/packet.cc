#include "dp/packet.h"

#include <cstdlib>

namespace s2::dp {

bdd::Bdd PacketCodec::DstIn(const util::Ipv4Prefix& prefix) const {
  if (layout_.dst_bits != 32) std::abort();
  return manager_->MaskedMatch(layout_.DstVar(0), 32,
                               prefix.address().bits(), prefix.Mask());
}

bdd::Bdd PacketCodec::SrcIn(const util::Ipv4Prefix& prefix) const {
  if (layout_.src_bits != 32) std::abort();
  return manager_->MaskedMatch(layout_.SrcVar(0), 32,
                               prefix.address().bits(), prefix.Mask());
}

bdd::Bdd PacketCodec::MetaBit(uint32_t i, bool value) const {
  uint32_t var = layout_.MetaVar(i);
  return value ? manager_->Var(var) : manager_->NotVar(var);
}

bdd::Bdd PacketCodec::SetMetaBit(const bdd::Bdd& packet, uint32_t i) const {
  uint32_t var = layout_.MetaVar(i);
  bdd::Bdd forgotten = manager_->Exists(packet, {var});
  return forgotten & manager_->Var(var);
}

bdd::Bdd HeaderSpaceSpec::ToBdd(const PacketCodec& codec) const {
  bdd::Bdd result = codec.manager()->One();
  if (dst) result &= codec.DstIn(*dst);
  if (src) result &= codec.SrcIn(*src);
  return result;
}

}  // namespace s2::dp
