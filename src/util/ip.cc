#include "util/ip.h"

#include <cstdio>
#include <cstdlib>

namespace s2::util {

namespace {

// Strict decimal parse of text[pos..): 1-3 digits, value <= `max`, no
// sign, no whitespace, no leading zeros ("0" is fine, "00"/"01" are not —
// some tools read a leading 0 as octal, so the form is ambiguous).
// Advances `pos` past the digits; returns nullopt without a digit.
std::optional<uint32_t> ParseStrictDecimal(const std::string& text,
                                           size_t& pos, uint32_t max) {
  size_t start = pos;
  uint32_t value = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    if (pos - start >= 3) return std::nullopt;
    value = value * 10 + static_cast<uint32_t>(text[pos] - '0');
    ++pos;
  }
  if (pos == start) return std::nullopt;
  if (text[start] == '0' && pos - start > 1) return std::nullopt;
  if (value > max) return std::nullopt;
  return value;
}

}  // namespace

std::optional<Ipv4Address> Ipv4Address::Parse(const std::string& text) {
  // sscanf("%u") is too forgiving here: it accepts leading whitespace,
  // '+'/'-' signs, and wraps values past UINT_MAX — so garbage like
  // " 1.2.3.4" or "1.2.3.4294967299" used to parse. Exactly four strict
  // dot-separated octets, nothing else.
  size_t pos = 0;
  uint32_t bits = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (octet > 0) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
    std::optional<uint32_t> value = ParseStrictDecimal(text, pos, 255);
    if (!value) return std::nullopt;
    bits = (bits << 8) | *value;
  }
  if (pos != text.size()) return std::nullopt;
  return Ipv4Address(bits);
}

std::string Ipv4Address::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", bits_ >> 24,
                (bits_ >> 16) & 0xff, (bits_ >> 8) & 0xff, bits_ & 0xff);
  return buf;
}

Ipv4Prefix::Ipv4Prefix(Ipv4Address addr, uint8_t length) : len_(length) {
  if (len_ > 32) len_ = 32;
  addr_ = Ipv4Address(addr.bits() & Mask());
}

std::optional<Ipv4Prefix> Ipv4Prefix::Parse(const std::string& text) {
  auto slash = text.find('/');
  if (slash == std::string::npos) return std::nullopt;
  auto addr = Ipv4Address::Parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  // strtol would accept "/ 8" and "/+8"; require bare strict digits.
  size_t pos = slash + 1;
  std::optional<uint32_t> len = ParseStrictDecimal(text, pos, 32);
  if (!len || pos != text.size()) return std::nullopt;
  return Ipv4Prefix(*addr, static_cast<uint8_t>(*len));
}

bool Ipv4Prefix::Contains(Ipv4Address addr) const {
  return (addr.bits() & Mask()) == addr_.bits();
}

bool Ipv4Prefix::Contains(const Ipv4Prefix& other) const {
  return other.len_ >= len_ && Contains(other.addr_);
}

std::string Ipv4Prefix::ToString() const {
  return addr_.ToString() + "/" + std::to_string(len_);
}

Ipv4Address MustParseAddress(const std::string& text) {
  auto a = Ipv4Address::Parse(text);
  if (!a) std::abort();
  return *a;
}

Ipv4Prefix MustParsePrefix(const std::string& text) {
  auto p = Ipv4Prefix::Parse(text);
  if (!p) std::abort();
  return *p;
}

}  // namespace s2::util
