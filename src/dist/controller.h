// The S2 Controller (paper §3.2): parser + partitioner + CPO + DPO.
//
// Owns the parsed network, the partition, the sidecar fabric, the workers
// and their thread pool, and exposes the verification workflow phase by
// phase so the core facade (core/s2.h) and the benchmarks can time and
// meter each stage exactly as the paper's figures slice them.
#pragma once

#include <memory>
#include <optional>

#include "dist/dpo.h"
#include "fault/plan.h"
#include "obs/registry.h"
#include "topo/partition.h"

namespace s2::dist {

struct ControllerOptions {
  uint32_t num_workers = 4;
  topo::PartitionScheme scheme = topo::PartitionScheme::kMetisLike;
  // 0 disables prefix sharding.
  int num_shards = 0;
  // Per-worker memory budget in bytes (0 = unlimited): the knob that makes
  // the paper's OOM crossovers observable at laptop scale.
  size_t worker_memory_budget = 0;
  size_t max_bdd_nodes = 0;
  dp::HeaderLayout layout;
  int max_hops = 24;
  int max_rounds = 1000;
  uint64_t seed = 1;
  CostModelParams cost;
  // Thread pool size; 0 = min(num_workers, hardware concurrency).
  size_t pool_threads = 0;
  // Intra-worker data-plane lanes (dp/parallel.h); 1 keeps the sequential
  // per-worker engine.
  uint32_t dp_lanes = 1;
  // Query-level parallelism for RunQueries: how many queries the modeled
  // schedule may run concurrently (0 = one per query, capped at 8).
  size_t query_lanes = 0;

  // Fault injection (src/fault): when set, the fabric runs the reliable-
  // delivery envelope perturbed by this plan, workers are checkpointed at
  // barriers, and scheduled crashes are recovered via RecoverWorker.
  std::optional<fault::FaultPlan> fault_plan;
  // Run the reliability envelope (sequence numbers, acks, retransmit
  // timers) even without a fault plan — what bench/fault_overhead.cc
  // measures against the default direct fabric.
  bool reliable_delivery = false;
};

class Controller {
 public:
  Controller(config::ParsedNetwork network, ControllerOptions options);
  ~Controller();

  // Partition the network, set up workers (real + shadow nodes), and build
  // the shard plan when sharding is on.
  void Setup();

  // Distributed control-plane simulation (sharded per options).
  RoundMetrics RunControlPlane();

  // Distributed FIB + predicate computation.
  RoundMetrics BuildDataPlanes();

  struct QueryOutcome {
    dp::QueryResult result;
    RoundMetrics metrics;
    size_t gather_bytes = 0;
    size_t forwarding_steps = 0;
  };
  QueryOutcome RunQuery(const dp::Query& query);

  // Runs independent queries concurrently (Dpo::RunQueries): per-query
  // rebuilt worker domains, finals gathered and evaluated in input order.
  // `aggregate.modeled_seconds` is the LPT makespan over query_lanes.
  struct MultiQueryOutcome {
    std::vector<QueryOutcome> outcomes;  // per query, in input order
    RoundMetrics aggregate;
  };
  MultiQueryOutcome RunQueries(const std::vector<dp::Query>& queries);

  // ------------------------------------------------------------- metrics
  // Highest per-worker peak memory (the paper's "per-worker peak memory").
  size_t MaxWorkerPeakBytes() const;
  std::vector<size_t> WorkerPeakBytes() const;
  size_t TotalCommBytes() const { return fabric_->total_bytes(); }
  // Converged best-route count across the network (prefix entries; an ECMP
  // set counts once per route when sharded/spilled, once per prefix when
  // retained — benchmarks report the same measure across verifiers).
  size_t TotalBestRoutes() const;

  const topo::PartitionResult& partition() const { return partition_; }
  const std::optional<cp::ShardPlan>& shard_plan() const { return plan_; }
  // Per-shard control-plane metrics of the last run (§7 prefix-parallelism
  // analysis; empty for unsharded runs).
  const std::vector<ShardMetrics>& shard_metrics() const {
    return cpo_->shard_metrics();
  }
  const config::ParsedNetwork& network() const { return network_; }
  const ControllerOptions& options() const { return options_; }
  Worker& worker(size_t index) { return *workers_[index]; }
  const Worker& worker(size_t index) const { return *workers_[index]; }
  size_t num_workers() const { return workers_.size(); }
  // The converged RIB spill store (null when sharding is off). Shared so a
  // published svc::Snapshot can keep the spills alive past this
  // controller's lifetime; the store is read-only after convergence.
  std::shared_ptr<const cp::RibStore> rib_store() const { return store_; }

  // ------------------------------------------------ fault tolerance
  // Rebuilds worker `w` from its latest checkpoint and replays the rounds
  // it lost (fault/checkpoint.h). Called by the CPO's barrier hook for
  // scheduled crashes; public so tests can crash workers directly.
  void RecoverWorker(uint32_t w);

  // Snapshots every worker (also truncates the fabric replay logs).
  void CheckpointWorkers(int shard);

  const fault::FaultInjector* injector() const { return injector_.get(); }
  size_t worker_recoveries() const { return worker_recoveries_; }
  const SidecarFabric& fabric() const { return *fabric_; }

  // Publishes everything the controller can observe into `registry`:
  // per-worker peaks and fabric counters (bytes/messages/queue depth),
  // per-shard control-plane metrics, reliable-transport stats, and
  // recovery counts. The facade combines this with the per-phase
  // RoundMetrics into the RunReport (core/report.h).
  void PublishMetrics(obs::Registry& registry) const;

 private:
  config::ParsedNetwork network_;
  ControllerOptions options_;
  Worker::Options worker_options_;

  topo::PartitionResult partition_;
  std::optional<cp::ShardPlan> plan_;
  std::shared_ptr<cp::RibStore> store_;
  std::unique_ptr<SidecarFabric> fabric_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<Cpo> cpo_;
  std::unique_ptr<Dpo> dpo_;

  // The controller's own BDD domain for verdict computation over gathered
  // finals.
  std::unique_ptr<bdd::Manager> gather_manager_;

  // Fault machinery (null/empty without a fault plan).
  std::unique_ptr<fault::FaultInjector> injector_;
  std::vector<fault::WorkerCheckpoint> checkpoints_;
  size_t worker_recoveries_ = 0;
};

}  // namespace s2::dist
