// Attribute hash-consing on the paper's DCN: what the flyweight buys.
//
// Runs the default topo::MakeDcn() control plane through a MonoEngine
// with a MemoryTracker and compares the amortized accounting (every route
// copy at Route::UniqueBytes + each distinct attribute tuple charged once,
// DESIGN.md §4) against the pool's shadow counters for the pre-flyweight
// layout (Route::PlainBytes per copy). The shadow peak is what the same
// run would have cost before interning, so peak_ratio is the memory
// reduction the candidate/best tables see — the EXPERIMENTS.md claim is
// peak_ratio >= 2. Also reports the intern dedup ratio and the wire-side
// attribute-table savings. Writes BENCH_attr_intern.json.
//
//   ./attr_intern
#include <cstdio>

#include "config/parser.h"
#include "config/vendor.h"
#include "core/s2.h"
#include "cp/engine.h"
#include "topo/dcn.h"
#include "util/memory_tracker.h"

using namespace s2;

int main() {
  topo::Network network = topo::MakeDcn(topo::DcnParams{});
  auto parsed = config::ParseNetwork(config::SynthesizeConfigs(network));
  std::printf("=== attribute interning: default DCN (%zu switches, %zu "
              "links) ===\n\n",
              parsed.graph.size(), parsed.graph.edge_count());

  util::MemoryTracker tracker("attr-bench");
  cp::MonoEngine engine(parsed, &tracker);
  engine.Run(nullptr, nullptr);

  const cp::AttrPool::Stats stats = engine.attr_pool().stats();
  const size_t interned_peak = tracker.peak_bytes();
  const size_t plain_peak = stats.peak_plain_bytes;
  const double peak_ratio =
      interned_peak > 0 ? double(plain_peak) / double(interned_peak) : 0.0;

  std::printf("%-38s %zu\n", "best routes at the fixed point:",
              engine.stats().total_best_routes);
  std::printf("%-38s %s\n", "candidate-table peak (interned):",
              core::HumanBytes(interned_peak).c_str());
  std::printf("%-38s %s\n", "candidate-table peak (pre-flyweight):",
              core::HumanBytes(plain_peak).c_str());
  std::printf("%-38s %.2fx\n", "peak-memory reduction:", peak_ratio);
  std::printf("%-38s %llu hits / %llu misses (%.4f)\n",
              "intern dedup (hits/misses/ratio):",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              stats.DedupRatio());
  std::printf("%-38s %zu (peak %zu, %s shared)\n",
              "distinct live tuples:", stats.live_entries,
              stats.peak_entries,
              core::HumanBytes(stats.peak_shared_bytes).c_str());
  std::printf("%-38s %llu written / %llu reused / %s saved\n",
              "wire attr tables (spill batches):",
              static_cast<unsigned long long>(stats.wire_tuples_written),
              static_cast<unsigned long long>(stats.wire_tuples_reused),
              core::HumanBytes(stats.wire_bytes_saved).c_str());

  std::FILE* json = std::fopen("BENCH_attr_intern.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n"
        "  \"benchmark\": \"attr_intern_dcn\",\n"
        "  \"topology\": \"dcn-default\",\n"
        "  \"switches\": %zu,\n"
        "  \"best_routes\": %zu,\n"
        "  \"interned_peak_bytes\": %zu,\n"
        "  \"plain_equivalent_peak_bytes\": %zu,\n"
        "  \"peak_reduction_ratio\": %.3f,\n"
        "  \"intern_hits\": %llu,\n"
        "  \"intern_misses\": %llu,\n"
        "  \"dedup_ratio\": %.6f,\n"
        "  \"peak_distinct_tuples\": %zu,\n"
        "  \"peak_shared_bytes\": %zu,\n"
        "  \"wire_tuples_written\": %llu,\n"
        "  \"wire_tuples_reused\": %llu,\n"
        "  \"wire_bytes_saved\": %llu\n"
        "}\n",
        parsed.graph.size(), engine.stats().total_best_routes,
        interned_peak, plain_peak, peak_ratio,
        static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.misses), stats.DedupRatio(),
        stats.peak_entries, stats.peak_shared_bytes,
        static_cast<unsigned long long>(stats.wire_tuples_written),
        static_cast<unsigned long long>(stats.wire_tuples_reused),
        static_cast<unsigned long long>(stats.wire_bytes_saved));
    std::fclose(json);
    std::printf("\nwrote BENCH_attr_intern.json\n");
  }

  if (peak_ratio < 2.0) {
    std::printf("FAIL: expected >= 2x peak-memory reduction\n");
    return 1;
  }
  return 0;
}
