#include "cp/engine.h"

#include "util/status.h"

namespace s2::cp {

MonoEngine::MonoEngine(const config::ParsedNetwork& network,
                       util::MemoryTracker* tracker, EngineOptions options)
    : network_(&network), tracker_(tracker), options_(options),
      pool_(tracker) {
  nodes_.reserve(network.configs.size());
  for (topo::NodeId id = 0; id < network.configs.size(); ++id) {
    nodes_.push_back(std::make_unique<Node>(id, network, tracker, &pool_));
  }
}

int MonoEngine::RunRounds() {
  int rounds = 0;
  for (;;) {
    util::Stopwatch round_watch;
    // Phase A: every node computes and fills outboxes.
    bool any = false;
    for (auto& node : nodes_) any = node->ComputeRound() || any;
    if (!any) {
      stats_.compute_seconds += round_watch.ElapsedSeconds();
      stats_.modeled_seconds += round_watch.ElapsedSeconds();
      break;
    }
    // Phase B: every node pulls from each neighbor (paper Alg. 1).
    for (auto& node : nodes_) {
      for (const Node::Session& session : node->sessions()) {
        std::vector<RouteUpdate> updates =
            nodes_[session.peer]->TakeUpdatesFor(node->id());
        if (!updates.empty()) node->ReceiveUpdates(session.peer, updates);
      }
    }
    double round_seconds = round_watch.ElapsedSeconds();
    stats_.compute_seconds += round_seconds;
    // The monolithic engine pays the same per-round costs the cost model
    // charges a single worker: a thread barrier and (when memory is
    // tight) GC pauses.
    stats_.modeled_seconds +=
        round_seconds + options_.cost.round_latency_seconds;
    if (tracker_) {
      stats_.modeled_seconds +=
          util::GcPenaltySeconds(*tracker_, options_.cost);
    }
    if (++rounds > options_.max_rounds_per_pass) {
      throw util::SimulatedTimeout("control plane did not converge within " +
                                   std::to_string(rounds) + " rounds");
    }
  }
  return rounds;
}

void MonoEngine::Run(const ShardPlan* plan, RibStore* store) {
  // IGP pass first (§4.2: IGP protocols before EGP).
  bool any_ospf = false;
  for (const config::ViConfig& config : network_->configs) {
    any_ospf = any_ospf || config.ospf.enabled;
  }
  if (any_ospf) {
    for (auto& node : nodes_) node->BeginOspf();
    stats_.ospf_rounds = RunRounds();
    for (auto& node : nodes_) node->FinishOspf();
  }

  if (plan != nullptr) {
    for (size_t shard = 0; shard < plan->num_shards(); ++shard) {
      for (auto& node : nodes_) node->BeginBgp(&plan->shard(shard));
      stats_.bgp_rounds += RunRounds();
      ++stats_.shards_executed;
      for (auto& node : nodes_) {
        node->SpillBgp(*store, static_cast<int>(shard));
      }
    }
  } else {
    for (auto& node : nodes_) node->BeginBgp(nullptr);
    stats_.bgp_rounds = RunRounds();
    ++stats_.shards_executed;
    for (auto& node : nodes_) node->RetainBgp();
  }

  // Count route entries (an ECMP set contributes one per path), matching
  // the RibStore's routes_written measure.
  for (auto& node : nodes_) {
    for (const auto& [prefix, routes] : node->bgp_routes()) {
      stats_.total_best_routes += routes.size();
    }
  }
}

}  // namespace s2::cp
