#include "obs/registry.h"

#include <cstdio>

namespace s2::obs {

namespace {

void AppendEscaped(std::string& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

void Registry::SetCounter(const std::string& name, int64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] = value;
}

void Registry::AddCounter(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void Registry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

void Registry::SetLabel(const std::string& name, const std::string& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  labels_[name] = value;
}

int64_t Registry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Registry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

std::string Registry::label(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = labels_.find(name);
  return it == labels_.end() ? std::string() : it->second;
}

bool Registry::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.count(name) != 0 || gauges_.count(name) != 0 ||
         labels_.count(name) != 0;
}

size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + labels_.size();
}

void Registry::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  labels_.clear();
}

std::string Registry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  char buf[64];
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendEscaped(out, name);
    std::snprintf(buf, sizeof(buf), "\":%lld",
                  static_cast<long long>(value));
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendEscaped(out, name);
    std::snprintf(buf, sizeof(buf), "\":%.9g", value);
    out += buf;
  }
  out += "},\"labels\":{";
  first = true;
  for (const auto& [name, value] : labels_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendEscaped(out, name);
    out += "\":\"";
    AppendEscaped(out, value);
    out += "\"";
  }
  out += "}}";
  return out;
}

bool Registry::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string json = ToJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  return std::fclose(f) == 0 && written == json.size();
}

}  // namespace s2::obs
