#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace s2::util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& task) {
  if (count == 0) return;

  // Shared between the caller and any helper tasks. Helpers hold the state
  // via shared_ptr so a helper that starts after the caller has already
  // finished (because the caller claimed every iteration itself) touches
  // only valid memory.
  struct State {
    const std::function<void(size_t)>* task;
    size_t count;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr first_error;

    void RunLoop() {
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          (*task)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          if (!first_error) first_error = std::current_exception();
        }
        if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
          std::lock_guard<std::mutex> lock(mutex);
          cv.notify_all();
        }
      }
    }
  };
  auto state = std::make_shared<State>();
  state->task = &task;
  state->count = count;

  // Enlist at most pool-size helpers; the caller is the (n+1)-th runner.
  size_t helpers = std::min(count > 0 ? count - 1 : 0, threads_.size());
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state] { state->RunLoop(); });
  }
  state->RunLoop();

  std::exception_ptr first_error;
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == count;
    });
    // Take sole ownership of the exception before rethrowing: helpers may
    // destroy their shared State reference after the caller has returned,
    // and the exception object must not be co-owned by that late release
    // while the caller's catch block is still reading it.
    first_error = std::move(state->first_error);
    state->first_error = nullptr;
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions propagate through the packaged_task's future
  }
}

}  // namespace s2::util
