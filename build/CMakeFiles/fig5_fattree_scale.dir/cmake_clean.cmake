file(REMOVE_RECURSE
  "CMakeFiles/fig5_fattree_scale.dir/bench/fig5_fattree_scale.cc.o"
  "CMakeFiles/fig5_fattree_scale.dir/bench/fig5_fattree_scale.cc.o.d"
  "bench/fig5_fattree_scale"
  "bench/fig5_fattree_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_fattree_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
