// Chaos tests: the full verifier under the fault injector. The contract
// (ISSUE: fault-injection fabric) is that a run with ≥10% frame drops plus
// scheduled worker crashes converges to results identical to the
// fault-free run — same verdicts, same RIBs, same FIB semantics — because
// the reliable-delivery envelope and checkpoint/replay recovery hide every
// injected fault from the application.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "core/s2.h"
#include "test_networks.h"
#include "topo/fattree.h"

namespace s2::dist {
namespace {

dp::Query AllPairQuery(const config::ParsedNetwork& net) {
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  for (topo::NodeId id = 0; id < net.graph.size(); ++id) {
    if (net.graph.node(id).role == topo::Role::kEdge) {
      query.sources.push_back(id);
      query.destinations.push_back(id);
    }
  }
  return query;
}

// ≥10% drops on every link, plus duplication, reordering, delay, and two
// scheduled worker crashes at control-plane barriers.
fault::FaultPlan ChaosPlan() {
  fault::FaultPlan plan;
  plan.seed = 2025;
  plan.default_link.drop = 0.12;
  plan.default_link.duplicate = 0.05;
  plan.default_link.reorder = 0.10;
  plan.default_link.max_delay_rounds = 1;
  plan.checkpoint_interval = 2;
  plan.crashes.push_back({fault::CrashPhase::kControlPlaneRound, 2, 1});
  plan.crashes.push_back({fault::CrashPhase::kControlPlaneRound, 4, 2});
  return plan;
}

// Canonical per-node predicate bytes — equal bytes mean equal forwarding
// semantics (bdd_io's encoding is structural), so this is the FIB hash.
std::map<topo::NodeId, std::vector<uint8_t>> FibHashes(
    Controller* controller) {
  std::map<topo::NodeId, std::vector<uint8_t>> hashes;
  for (size_t w = 0; w < controller->num_workers(); ++w) {
    fault::WorkerCheckpoint checkpoint;
    controller->worker(w).CheckpointDataPlane(checkpoint);
    for (auto& [node, bytes] : checkpoint.predicate_state) {
      hashes[node] = std::move(bytes);
    }
  }
  return hashes;
}

struct RunOutcome {
  core::VerifyResult result;
  std::map<topo::NodeId,
           std::map<util::Ipv4Prefix, std::vector<cp::Route>>>
      ribs;
  std::map<topo::NodeId, std::vector<uint8_t>> fib_hashes;
};

RunOutcome RunVerifier(const config::ParsedNetwork& net, const dp::Query& query,
               int shards, std::optional<fault::FaultPlan> plan) {
  ControllerOptions options;
  options.num_workers = 4;
  options.num_shards = shards;
  options.fault_plan = std::move(plan);
  core::S2Verifier verifier(options);
  RunOutcome outcome;
  outcome.result = verifier.Verify(net, {query});
  Controller* controller = verifier.last_controller();
  if (shards == 0) {
    for (size_t w = 0; w < controller->num_workers(); ++w) {
      Worker& worker = controller->worker(w);
      for (topo::NodeId id : worker.local_nodes()) {
        outcome.ribs[id] = worker.node(id).bgp_routes();
      }
    }
  }
  outcome.fib_hashes = FibHashes(controller);
  return outcome;
}

void ExpectSameVerdicts(const core::VerifyResult& a,
                        const core::VerifyResult& b) {
  ASSERT_TRUE(a.ok()) << a.failure_detail;
  ASSERT_TRUE(b.ok()) << b.failure_detail;
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].reachable_pairs, b.queries[i].reachable_pairs);
    EXPECT_EQ(a.queries[i].unreachable_pairs,
              b.queries[i].unreachable_pairs);
    EXPECT_EQ(a.queries[i].loop_free, b.queries[i].loop_free);
    EXPECT_EQ(a.queries[i].blackhole_finals, b.queries[i].blackhole_finals);
  }
  EXPECT_EQ(a.total_best_routes, b.total_best_routes);
}

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    topo::FatTreeParams params;
    params.k = 4;
    net_ = new config::ParsedNetwork(
        testing::Parse(topo::MakeFatTree(params)));
  }
  static void TearDownTestSuite() {
    delete net_;
    net_ = nullptr;
  }
  static config::ParsedNetwork* net_;
};

config::ParsedNetwork* ChaosTest::net_ = nullptr;

// ISSUE acceptance criterion: ≥10% drop + 2 scheduled crashes produce
// results identical to the fault-free run.
TEST_F(ChaosTest, DropsAndCrashesAreInvisibleToVerdicts) {
  dp::Query query = AllPairQuery(*net_);
  RunOutcome clean = RunVerifier(*net_, query, /*shards=*/0, std::nullopt);
  RunOutcome chaotic = RunVerifier(*net_, query, /*shards=*/0, ChaosPlan());

  ExpectSameVerdicts(chaotic.result, clean.result);
  EXPECT_EQ(chaotic.ribs, clean.ribs);          // same final RIBs
  EXPECT_EQ(chaotic.fib_hashes, clean.fib_hashes);  // same FIB semantics

  // The faults actually happened — this was not a quiet run.
  EXPECT_EQ(chaotic.result.worker_recoveries, 2u);
  EXPECT_GT(chaotic.result.frames_dropped, 0u);
  EXPECT_GT(chaotic.result.retransmits, 0u);
  EXPECT_EQ(clean.result.worker_recoveries, 0u);
  EXPECT_EQ(clean.result.frames_dropped, 0u);
}

TEST_F(ChaosTest, ShardedRunSurvivesChaosToo) {
  dp::Query query = AllPairQuery(*net_);
  RunOutcome clean = RunVerifier(*net_, query, /*shards=*/5, std::nullopt);
  RunOutcome chaotic = RunVerifier(*net_, query, /*shards=*/5, ChaosPlan());
  ExpectSameVerdicts(chaotic.result, clean.result);
  EXPECT_EQ(chaotic.fib_hashes, clean.fib_hashes);
  EXPECT_EQ(chaotic.result.worker_recoveries, 2u);
}

TEST_F(ChaosTest, DataPlaneCrashRestoresFromPredicateCheckpoint) {
  dp::Query query = AllPairQuery(*net_);
  RunOutcome clean = RunVerifier(*net_, query, /*shards=*/0, std::nullopt);
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.default_link.drop = 0.10;
  plan.crashes.push_back({fault::CrashPhase::kDataPlaneBuild, 0, 3});
  RunOutcome chaotic = RunVerifier(*net_, query, /*shards=*/0, plan);
  ExpectSameVerdicts(chaotic.result, clean.result);
  EXPECT_EQ(chaotic.fib_hashes, clean.fib_hashes);
  EXPECT_EQ(chaotic.result.worker_recoveries, 1u);
}

// Same plan + same seed ⇒ bit-identical fault schedule and results.
TEST_F(ChaosTest, FaultScheduleReplaysDeterministically) {
  dp::Query query = AllPairQuery(*net_);
  RunOutcome first = RunVerifier(*net_, query, /*shards=*/0, ChaosPlan());
  RunOutcome second = RunVerifier(*net_, query, /*shards=*/0, ChaosPlan());
  ExpectSameVerdicts(first.result, second.result);
  EXPECT_EQ(first.ribs, second.ribs);
  EXPECT_EQ(first.fib_hashes, second.fib_hashes);
  EXPECT_EQ(first.result.frames_dropped, second.result.frames_dropped);
  EXPECT_EQ(first.result.retransmits, second.result.retransmits);
  EXPECT_EQ(first.result.duplicates_suppressed,
            second.result.duplicates_suppressed);
  EXPECT_EQ(first.result.comm_bytes, second.result.comm_bytes);
}

// Pure reliability (no injector): the envelope itself must not change any
// result relative to the direct fabric.
TEST_F(ChaosTest, ReliableEnvelopeAloneChangesNothing) {
  dp::Query query = AllPairQuery(*net_);
  RunOutcome direct = RunVerifier(*net_, query, /*shards=*/0, std::nullopt);

  ControllerOptions options;
  options.num_workers = 4;
  options.reliable_delivery = true;
  core::S2Verifier verifier(options);
  core::VerifyResult result = verifier.Verify(*net_, {query});
  ExpectSameVerdicts(result, direct.result);
  EXPECT_EQ(FibHashes(verifier.last_controller()), direct.fib_hashes);
  EXPECT_EQ(result.retransmits, 0u);
  EXPECT_EQ(result.frames_dropped, 0u);
  EXPECT_EQ(result.worker_recoveries, 0u);
}

}  // namespace
}  // namespace s2::dist
