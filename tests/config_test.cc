// Config pipeline tests: intent compilation, both vendor dialects'
// emit -> parse round-trips, dialect sniffing, error reporting, and L3
// topology inference (the controller's parser stage, §3.2).
#include <gtest/gtest.h>

#include "config/parser.h"
#include "config/vendor.h"
#include "test_networks.h"
#include "topo/dcn.h"
#include "topo/fattree.h"

namespace s2::config {
namespace {

topo::Network SmallFatTree() {
  topo::FatTreeParams params;
  params.k = 4;
  return topo::MakeFatTree(params);
}

bool SameViConfig(const ViConfig& a, const ViConfig& b) {
  return a.hostname == b.hostname && a.vendor == b.vendor &&
         a.loopback == b.loopback && a.interfaces == b.interfaces &&
         a.route_maps == b.route_maps && a.acls == b.acls &&
         a.bgp == b.bgp && a.ospf == b.ospf;
}

class RoundTripTest
    : public ::testing::TestWithParam<std::tuple<topo::Vendor, int>> {};

TEST_P(RoundTripTest, EmitThenParseIsIdentity) {
  auto [vendor, node_index] = GetParam();
  // DCN configs exercise every feature: route maps with every clause kind,
  // ACLs, aggregates, conditional advertisements, remove-private-as.
  topo::Network net = topo::MakeDcn(topo::DcnParams{});
  topo::NodeId id = static_cast<topo::NodeId>(node_index) %
                    static_cast<topo::NodeId>(net.graph.size());
  net.intents[id].vendor = vendor;  // force the dialect under test
  ViConfig original = CompileIntent(net, id);
  auto reparsed = ParseConfig(EmitConfig(original));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error();
  EXPECT_TRUE(SameViConfig(original, reparsed.value()))
      << "round-trip mismatch for " << original.hostname;
}

INSTANTIATE_TEST_SUITE_P(
    VendorsAndNodes, RoundTripTest,
    ::testing::Combine(::testing::Values(topo::Vendor::kAlpha,
                                         topo::Vendor::kBeta),
                       ::testing::Range(0, 54, 7)));

TEST(CompileIntentTest, ComposesExportPolicy) {
  topo::Network net = topo::MakeDcn(topo::DcnParams{});
  // A core switch: downward exports overwrite AS_PATH and deny the
  // destination cluster's tag.
  topo::NodeId core = net.graph.FindByName("core0");
  ASSERT_NE(core, topo::kInvalidNode);
  ViConfig config = CompileIntent(net, core);
  EXPECT_TRUE(config.bgp.enabled);
  bool saw_overwrite = false, saw_cluster_deny = false;
  for (const auto& [name, map] : config.route_maps) {
    for (const RouteMapClause& clause : map.clauses) {
      saw_overwrite = saw_overwrite || clause.set_as_path_overwrite;
      if (!clause.permit) {
        for (uint32_t c : clause.match_any_community) {
          saw_cluster_deny =
              saw_cluster_deny || (c >= 100 && c < 100 + 8);
        }
      }
    }
  }
  EXPECT_TRUE(saw_overwrite);
  EXPECT_TRUE(saw_cluster_deny);
}

TEST(CompileIntentTest, NeighborsMatchInterfaces) {
  topo::Network net = SmallFatTree();
  ViConfig config = CompileIntent(net, 0);
  ASSERT_EQ(config.bgp.neighbors.size(), config.interfaces.size());
  for (size_t i = 0; i < config.interfaces.size(); ++i) {
    EXPECT_EQ(config.bgp.neighbors[i].peer_address.bits(),
              config.interfaces[i].address.bits() ^ 1u);
    EXPECT_EQ(config.bgp.neighbors[i].via_interface,
              config.interfaces[i].name);
  }
}

// Golden snapshots: the emitted text is the on-the-wire compatibility
// surface (operators keep config files around), so pin it exactly.
TEST(EmitConfigTest, GoldenAlpha) {
  topo::Network net = testing::MakeChain(2);
  net.intents[0].vendor = topo::Vendor::kAlpha;
  EXPECT_EQ(EmitConfig(CompileIntent(net, 0)),
            "hostname r0\n"
            "!\n"
            "interface lo0\n"
            " ip address 172.16.0.0/32\n"
            "!\n"
            "interface eth0\n"
            " ip address 10.128.0.0/31\n"
            "!\n"
            "router bgp 65001\n"
            " maximum-paths 4\n"
            " network 172.16.0.0/32\n"
            " network 10.0.0.0/24\n"
            " neighbor 10.128.0.1 remote-as 65002\n"
            " neighbor 10.128.0.1 update-source eth0\n"
            "!\n");
}

TEST(EmitConfigTest, GoldenBeta) {
  topo::Network net = testing::MakeChain(2);
  net.intents[1].vendor = topo::Vendor::kBeta;
  EXPECT_EQ(EmitConfig(CompileIntent(net, 1)),
            "set system host-name r1\n"
            "set interfaces lo0 address 172.16.0.1/32\n"
            "set interfaces eth0 address 10.128.0.1/31\n"
            "set protocols bgp local-as 65002\n"
            "set protocols bgp multipath 4\n"
            "set protocols bgp network 172.16.0.1/32\n"
            "set protocols bgp network 10.0.1.0/24\n"
            "set protocols bgp neighbor 10.128.0.0 peer-as 65001\n"
            "set protocols bgp neighbor 10.128.0.0 local-interface eth0\n");
}

// Every route-map feature in one synthetic config, round-tripped through
// both dialects (the DCN exercises most but not all clause kinds).
class AllClauseFeaturesTest : public ::testing::TestWithParam<topo::Vendor> {
};

TEST_P(AllClauseFeaturesTest, RoundTrips) {
  ViConfig config;
  config.hostname = "kitchen-sink";
  config.vendor = GetParam();
  config.loopback = util::MustParsePrefix("172.16.0.9/32");
  Interface iface;
  iface.name = "eth0";
  iface.address = util::MustParseAddress("10.128.0.0");
  iface.prefix_length = 31;
  config.interfaces.push_back(iface);

  RouteMap map;
  map.name = "SINK";
  RouteMapClause everything;
  everything.permit = true;
  everything.continue_next = true;
  everything.match_covered_by = util::MustParsePrefix("10.0.0.0/8");
  everything.match_any_community = {11, 22};
  everything.set_local_pref = 150;
  everything.set_med = 42;
  everything.add_communities = {33, 44};
  everything.delete_communities = {55};
  everything.as_path_prepend = 2;
  RouteMapClause overwrite;
  overwrite.permit = true;
  overwrite.set_as_path_overwrite = true;
  RouteMapClause deny;
  deny.permit = false;
  map.clauses = {everything, overwrite, deny};
  config.route_maps.emplace(map.name, map);

  BgpNeighbor neighbor;
  neighbor.peer_address = util::MustParseAddress("10.128.0.1");
  neighbor.remote_as = 65002;
  neighbor.via_interface = "eth0";
  neighbor.import_route_map = "SINK";
  neighbor.export_route_map = "SINK";
  neighbor.remove_private_as = true;
  config.bgp.enabled = true;
  config.bgp.asn = 65001;
  config.bgp.max_paths = 8;
  config.bgp.networks = {util::MustParsePrefix("10.9.0.0/24")};
  config.bgp.neighbors.push_back(neighbor);

  auto reparsed = ParseConfig(EmitConfig(config));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error();
  EXPECT_TRUE(SameViConfig(config, reparsed.value()));
}

INSTANTIATE_TEST_SUITE_P(Vendors, AllClauseFeaturesTest,
                         ::testing::Values(topo::Vendor::kAlpha,
                                           topo::Vendor::kBeta));

TEST(ParseConfigTest, SniffsDialects) {
  auto alpha = ParseConfig("hostname x\n!\nrouter bgp 1\n!\n");
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ(alpha.value().vendor, topo::Vendor::kAlpha);
  auto beta = ParseConfig("set system host-name x\n");
  ASSERT_TRUE(beta.ok());
  EXPECT_EQ(beta.value().vendor, topo::Vendor::kBeta);
}

TEST(ParseConfigTest, ReportsErrors) {
  EXPECT_FALSE(ParseConfig("").ok());
  EXPECT_FALSE(ParseConfig("hostname x\nfrobnicate\n").ok());
  EXPECT_FALSE(ParseConfig("set bogus thing\n").ok());
  auto r = ParseConfig("hostname x\ninterface eth0\n garbage here\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("interface"), std::string::npos);
}

TEST(ParseConfigTest, ConsecutiveRouteMapClauses) {
  auto r = ParseConfig(
      "hostname x\n"
      "route-map RM deny 10\n"
      " match community 999\n"
      "route-map RM permit 20\n"
      " set local-preference 150\n"
      "!\n");
  ASSERT_TRUE(r.ok()) << r.error();
  const RouteMap* map = r.value().FindRouteMap("RM");
  ASSERT_NE(map, nullptr);
  ASSERT_EQ(map->clauses.size(), 2u);
  EXPECT_FALSE(map->clauses[0].permit);
  EXPECT_TRUE(map->clauses[1].permit);
  EXPECT_EQ(map->clauses[1].set_local_pref, 150u);
}

TEST(ParseNetworkTest, InfersFatTreeTopology) {
  topo::Network net = SmallFatTree();
  ParsedNetwork parsed = ParseNetwork(SynthesizeConfigs(net));
  ASSERT_EQ(parsed.graph.size(), net.graph.size());
  EXPECT_EQ(parsed.graph.edge_count(), net.graph.edge_count());
  // Role/pod/load reconstruction from names.
  for (topo::NodeId id = 0; id < net.graph.size(); ++id) {
    EXPECT_EQ(parsed.graph.node(id).name, net.graph.node(id).name);
    EXPECT_EQ(parsed.graph.node(id).role, net.graph.node(id).role);
    EXPECT_EQ(parsed.graph.node(id).pod, net.graph.node(id).pod);
    EXPECT_DOUBLE_EQ(parsed.graph.node(id).load, net.graph.node(id).load);
  }
}

TEST(ParseNetworkTest, AddressBookResolvesNeighbors) {
  topo::Network net = SmallFatTree();
  ParsedNetwork parsed = ParseNetwork(SynthesizeConfigs(net));
  for (topo::NodeId id = 0; id < parsed.configs.size(); ++id) {
    for (const BgpNeighbor& neighbor : parsed.configs[id].bgp.neighbors) {
      topo::NodeId peer = parsed.FindByAddress(neighbor.peer_address);
      ASSERT_NE(peer, topo::kInvalidNode);
      // remote-as in the config matches the peer device's ASN.
      EXPECT_EQ(neighbor.remote_as, parsed.configs[peer].bgp.asn);
    }
  }
  EXPECT_EQ(parsed.FindByAddress(util::MustParseAddress("203.0.113.9")),
            topo::kInvalidNode);
}

TEST(ParseNetworkTest, DcnUsesUniformLoads) {
  topo::Network net = topo::MakeDcn(topo::DcnParams{});
  ParsedNetwork parsed = ParseNetwork(SynthesizeConfigs(net));
  for (topo::NodeId id = 0; id < parsed.graph.size(); ++id) {
    EXPECT_DOUBLE_EQ(parsed.graph.node(id).load, 1.0);
  }
}

TEST(ViConfigTest, Lookups) {
  topo::Network net = SmallFatTree();
  ViConfig config = CompileIntent(net, 0);
  EXPECT_NE(config.FindInterface("eth0"), nullptr);
  EXPECT_EQ(config.FindInterface("nope"), nullptr);
  EXPECT_EQ(config.FindRouteMap("nope"), nullptr);
  EXPECT_EQ(config.FindAcl("nope"), nullptr);
  Interface iface;
  iface.address = util::MustParseAddress("10.128.0.5");
  iface.prefix_length = 31;
  EXPECT_EQ(ViConfig::ConnectedPrefix(iface),
            util::MustParsePrefix("10.128.0.4/31"));
}

}  // namespace
}  // namespace s2::config
