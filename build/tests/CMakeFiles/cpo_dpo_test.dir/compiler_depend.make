# Empty compiler generated dependencies file for cpo_dpo_test.
# This may be replaced when dependencies are built.
