// Shared scaffolding for the figure-reproduction benchmarks.
//
// Scale-down calibration (DESIGN.md substitution S8): the paper's testbed
// gives every worker 100 GB; exceeding it is an OOM. We run FatTree
// k ∈ {6, 8, 10, 12} against an 8 MB per-worker budget chosen so the OOM
// and timeout crossovers land at the same *relative* points as the paper:
//
//   paper            here            what happens at the budget
//   FatTree40 (2000) k=6  (45 sw)    Batfish fits (3.5 MB)
//   FatTree60 (4500) k=8  (80 sw)    Batfish OOMs (13 MB), S2-1w fits
//   FatTree80 (8000) k=10 (125 sw)   S2-8w fits (~5 MB/worker)
//   FatTree90 (10K)  k=12 (180 sw)   only S2-16w + sharding fits
//
// Bonsai's modeled compression cost and deadline are scaled the same way
// (the 2-hour wall becomes kBonsaiDeadline).
#pragma once

#include <cstdio>
#include <string>

#include "config/vendor.h"
#include "core/bonsai.h"
#include "core/mono.h"
#include "core/s2.h"
#include "obs/trace.h"
#include "topo/fattree.h"

namespace s2::bench {

inline constexpr size_t kWorkerBudget = 9u << 20;  // 9 MB ~ paper's 100 GB
inline constexpr double kBonsaiScanCost = 2e-3;    // s per node per dest
inline constexpr double kBonsaiDeadline = 0.6;     // s ~ paper's 2 hours
inline constexpr int kShards = 20;                 // the paper's default

// Paper-size label for a scaled k.
inline const char* PaperSize(int k) {
  switch (k) {
    case 6:
      return "FatTree40";
    case 8:
      return "FatTree60";
    case 10:
      return "FatTree80";
    case 12:
      return "FatTree90";
    default:
      return "FatTree??";
  }
}

// Cost model used across benchmarks: GC pressure dominated, matching the
// paper's memory-bound regime (DESIGN.md §3). gc_seconds_per_gb is scaled
// to MB-sized budgets the same way the budget itself is scaled.
inline util::CostModelParams BenchCost() {
  util::CostModelParams cost;
  cost.bandwidth_bytes_per_sec = 200e6;
  cost.gc_pressure_threshold = 0.6;
  cost.gc_seconds_per_gb = 200.0;     // scaled with the MB-sized budgets
  cost.round_latency_seconds = 5e-3;  // CPO/DPO barrier across workers
  return cost;
}

struct BuiltNetwork {
  topo::Network network;
  config::ParsedNetwork parsed;
};

inline BuiltNetwork BuildFatTree(int k) {
  topo::FatTreeParams params;
  params.k = k;
  BuiltNetwork built;
  built.network = topo::MakeFatTree(params);
  built.parsed =
      config::ParseNetwork(config::SynthesizeConfigs(built.network));
  return built;
}

// All-pair reachability over the edge host space (the paper's default
// verification task, §5.2).
inline dp::Query AllPairQuery(const config::ParsedNetwork& parsed) {
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  for (topo::NodeId id = 0; id < parsed.graph.size(); ++id) {
    if (parsed.graph.node(id).role == topo::Role::kEdge) {
      query.sources.push_back(id);
      query.destinations.push_back(id);
    }
  }
  return query;
}

inline core::MonoOptions MonoWithBudget(int shards = 0) {
  core::MonoOptions options;
  options.memory_budget = kWorkerBudget;
  options.num_shards = shards;
  options.cost = BenchCost();
  return options;
}

inline dist::ControllerOptions S2Options(uint32_t workers, int shards) {
  dist::ControllerOptions options;
  options.num_workers = workers;
  options.num_shards = shards;
  options.worker_memory_budget = kWorkerBudget;
  options.cost = BenchCost();
  return options;
}

// ---------------------------------------------------------- observability
// Every figure benchmark accepts:
//   --trace_out=<path>   capture a Chrome trace-event JSON of the whole
//                        program (all runs of the sweep);
//   --report_out=<path>  write the RunReport JSON of the benchmark's last
//                        captured S2 run (each CaptureReport call
//                        overwrites the file, so the final run wins).
struct ObsOptions {
  std::string trace_out;
  std::string report_out;
};

inline ObsOptions ParseObsFlags(int argc, char** argv) {
  ObsOptions options;
  const std::string kTrace = "--trace_out=";
  const std::string kReport = "--report_out=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.compare(0, kTrace.size(), kTrace) == 0) {
      options.trace_out = arg.substr(kTrace.size());
    } else if (arg.compare(0, kReport.size(), kReport) == 0) {
      options.report_out = arg.substr(kReport.size());
    } else {
      std::fprintf(stderr, "ignoring unknown flag: %s\n", arg.c_str());
    }
  }
  if (!options.trace_out.empty()) obs::Tracer::Get().Enable();
  return options;
}

inline void CaptureReport(const ObsOptions& options,
                          const core::S2Verifier& verifier,
                          const core::VerifyResult& result) {
  if (options.report_out.empty()) return;
  if (!verifier.WriteRunReport(result, options.report_out)) {
    std::fprintf(stderr, "failed to write %s\n", options.report_out.c_str());
  }
}

// Call once at program end: stops the tracer and writes the trace file.
inline void FinishObs(const ObsOptions& options) {
  if (options.trace_out.empty()) return;
  obs::Tracer& tracer = obs::Tracer::Get();
  tracer.Disable();
  if (tracer.WriteChromeJson(options.trace_out)) {
    std::printf("\ntrace: %zu events -> %s\n", tracer.event_count(),
                options.trace_out.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", options.trace_out.c_str());
  }
}

// A result row in the shared table format.
inline void PrintHeader(const char* series_label) {
  std::printf("%-28s %9s %12s %12s %10s\n", series_label, "status",
              "time", "peak-mem", "routes");
}

inline void PrintRow(const std::string& label,
                     const core::VerifyResult& result) {
  std::printf("%-28s %9s %12s %12s %10zu\n", label.c_str(),
              core::RunStatusName(result.status),
              result.ok()
                  ? core::HumanSeconds(result.TotalModeledSeconds()).c_str()
                  : "-",
              core::HumanBytes(result.peak_memory_bytes).c_str(),
              result.total_best_routes);
}

}  // namespace s2::bench
