// Route value types and their wire serialization.
//
// Routes are the unit of control-plane state: nodes hold candidate routes
// per (prefix, neighbor), exchange best routes in synchronous rounds, and
// spill converged shard results to persistent storage (paper §3.1/§4.5).
// The serialization here is what sidecars ship across worker boundaries
// and what the RIB store writes to disk.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/graph.h"
#include "util/ip.h"

namespace s2::cp {

enum class Protocol : uint8_t {
  kConnected = 0,
  kLocal = 1,  // locally originated BGP state: network / aggregate / cond-adv
  kBgp = 2,
  kOspf = 3,
};

// Route preference between protocols (lower wins), Cisco-flavoured:
// connected 0, local 5, eBGP 20, OSPF 110.
uint32_t AdminDistance(Protocol protocol);

// The private 2-byte ASN range, used by remove-private-as (§2.1 VSB).
inline constexpr uint32_t kPrivateAsnFirst = 64512;
inline constexpr uint32_t kPrivateAsnLast = 65534;
inline bool IsPrivateAsn(uint32_t asn) {
  return asn >= kPrivateAsnFirst && asn <= kPrivateAsnLast;
}

struct Route {
  util::Ipv4Prefix prefix;
  Protocol protocol = Protocol::kBgp;

  // BGP attributes.
  uint32_t local_pref = 100;
  std::vector<uint32_t> as_path;
  std::vector<uint32_t> communities;  // sorted, unique
  uint8_t origin = 0;                 // 0=IGP < 1=EGP < 2=incomplete
  uint32_t med = 0;

  // OSPF metric.
  uint32_t metric = 0;

  // Provenance: the node that originated the prefix and the neighbor this
  // node learned it from (kInvalidNode = locally originated). The FIB
  // derives the output interface from learned_from.
  topo::NodeId origin_node = topo::kInvalidNode;
  topo::NodeId learned_from = topo::kInvalidNode;

  bool operator==(const Route&) const = default;

  bool HasCommunity(uint32_t community) const;
  void AddCommunity(uint32_t community);  // keeps the set sorted/unique

  // Bytes this route is accounted as in MemoryTrackers. Sized after the
  // JVM footprint of a Batfish BGP route so memory curves land in the same
  // regime as the paper's (DESIGN.md S4).
  size_t EstimateBytes() const;
};

// Deterministic BGP decision process over two candidates of the same
// prefix: returns true when `a` is strictly preferred over `b`.
// Order: protocol admin distance, local-pref, AS-path length, origin, MED,
// then deterministic tie-breaks (learned_from, origin_node, AS-path
// lexicographic) so results never depend on arrival order.
bool BetterRoute(const Route& a, const Route& b);

// True when `a` and `b` tie on every multipath-relevant attribute (equal
// admin distance, local-pref, AS-path length, origin, MED, metric) and may
// share the FIB entry under ECMP.
bool EcmpEquivalent(const Route& a, const Route& b);

// One entry of a route exchange: an announcement or a withdrawal.
struct RouteUpdate {
  util::Ipv4Prefix prefix;
  bool withdraw = false;
  Route route;  // meaningful unless withdraw
};

// Wire format used by sidecars and the RIB store.
void SerializeRoutes(const std::vector<RouteUpdate>& updates,
                     std::vector<uint8_t>& out);
std::vector<RouteUpdate> DeserializeRoutes(const std::vector<uint8_t>& bytes);

// Little-endian wire primitives shared by the route, RIB-state, and fault
// checkpoint serializers.
void PutWireU32(std::vector<uint8_t>& out, uint32_t v);
uint32_t GetWireU32(const std::vector<uint8_t>& bytes, size_t& pos);

// A length-prefixed SerializeRoutes chunk, embeddable in composite formats
// (node checkpoints) that continue reading past it.
void PutRoutesSection(std::vector<uint8_t>& out,
                      const std::vector<RouteUpdate>& updates);
std::vector<RouteUpdate> GetRoutesSection(const std::vector<uint8_t>& bytes,
                                          size_t& pos);

}  // namespace s2::cp
