
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/properties_test.cc" "tests/CMakeFiles/properties_test.dir/properties_test.cc.o" "gcc" "tests/CMakeFiles/properties_test.dir/properties_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s2_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s2_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s2_cp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s2_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s2_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s2_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s2_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
