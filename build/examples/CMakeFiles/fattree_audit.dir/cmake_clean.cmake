file(REMOVE_RECURSE
  "CMakeFiles/fattree_audit.dir/fattree_audit.cpp.o"
  "CMakeFiles/fattree_audit.dir/fattree_audit.cpp.o.d"
  "fattree_audit"
  "fattree_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fattree_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
