// Minimal error-or-value plumbing used at module boundaries where a
// failure is an expected outcome (parse errors, simulated OOM, timeouts)
// rather than a programming error.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace s2::util {

// Thrown by MemoryTracker when a domain exceeds its simulated budget.
// Verifier facades catch this and report an OOM verdict, mirroring the
// paper's out-of-memory bars in Figures 4/5/8.
class SimulatedOom : public std::runtime_error {
 public:
  SimulatedOom(std::string domain, size_t requested, size_t budget)
      : std::runtime_error("simulated OOM in domain '" + domain +
                           "': requested " + std::to_string(requested) +
                           " bytes against budget " + std::to_string(budget)),
        domain_(std::move(domain)) {}

  const std::string& domain() const { return domain_; }

 private:
  std::string domain_;
};

// Thrown by engines when the modeled runtime exceeds a configured deadline
// (mirrors the paper's 2-hour timeout on Bonsai / Batfish).
class SimulatedTimeout : public std::runtime_error {
 public:
  explicit SimulatedTimeout(const std::string& what)
      : std::runtime_error("simulated timeout: " + what) {}
};

// Thrown by the wire deserializers (cp/route.cc, dist/message.cc,
// fault/checkpoint.cc) on truncated input or length fields that exceed the
// remaining bytes. Internally produced bytes never trip this; it exists so
// corrupt or hostile input fails with a catchable error instead of an
// abort or an absurd-length allocation.
class WireFormatError : public std::runtime_error {
 public:
  explicit WireFormatError(const std::string& what)
      : std::runtime_error("malformed wire bytes: " + what) {}
};

// A value-or-error result. Kept deliberately tiny; only the handful of
// fallible boundaries use it (config parsing chiefly).
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  static Result Error(std::string message) {
    return Result(ErrorTag{}, std::move(message));
  }

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& { return std::get<T>(v_); }
  T& value() & { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

  const std::string& error() const { return std::get<ErrorString>(v_).msg; }

 private:
  struct ErrorTag {};
  struct ErrorString {
    std::string msg;
  };
  Result(ErrorTag, std::string message)
      : v_(ErrorString{std::move(message)}) {}

  std::variant<T, ErrorString> v_;
};

}  // namespace s2::util
