file(REMOVE_RECURSE
  "CMakeFiles/s2_cp.dir/cp/bgp.cc.o"
  "CMakeFiles/s2_cp.dir/cp/bgp.cc.o.d"
  "CMakeFiles/s2_cp.dir/cp/engine.cc.o"
  "CMakeFiles/s2_cp.dir/cp/engine.cc.o.d"
  "CMakeFiles/s2_cp.dir/cp/node.cc.o"
  "CMakeFiles/s2_cp.dir/cp/node.cc.o.d"
  "CMakeFiles/s2_cp.dir/cp/ospf.cc.o"
  "CMakeFiles/s2_cp.dir/cp/ospf.cc.o.d"
  "CMakeFiles/s2_cp.dir/cp/policy.cc.o"
  "CMakeFiles/s2_cp.dir/cp/policy.cc.o.d"
  "CMakeFiles/s2_cp.dir/cp/rib.cc.o"
  "CMakeFiles/s2_cp.dir/cp/rib.cc.o.d"
  "CMakeFiles/s2_cp.dir/cp/route.cc.o"
  "CMakeFiles/s2_cp.dir/cp/route.cc.o.d"
  "CMakeFiles/s2_cp.dir/cp/shard.cc.o"
  "CMakeFiles/s2_cp.dir/cp/shard.cc.o.d"
  "libs2_cp.a"
  "libs2_cp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_cp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
