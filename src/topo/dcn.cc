#include "topo/dcn.h"

#include <cstdlib>

namespace s2::topo {

namespace {

// Same-layer switches share an ASN (§2.3). Fabric layers use private ASNs
// so the border's remove-private-as policy has something to strip.
constexpr uint32_t kLayerAsnBase = 64512;  // layer L -> 64512 + L
constexpr uint32_t kCoreAsn = 64600;
constexpr uint32_t kBorderAsn = 60000;  // public

struct Builder {
  Network net;
  const DcnParams& params;

  explicit Builder(const DcnParams& p) : params(p) {}

  NodeId AddSwitch(const std::string& name, Role role, int layer,
                   int cluster, uint32_t asn) {
    NodeId id = net.graph.AddNode(NodeInfo{name, role, layer, cluster, 1.0});
    net.intents.resize(net.graph.size());
    NodeIntent& intent = net.intents[id];
    intent.asn = asn;
    intent.vendor = (params.mixed_vendors && id % 2 == 1) ? Vendor::kBeta
                                                          : Vendor::kAlpha;
    // Loopbacks: cluster c uses 172.(16+c).0.0/16; cores and borders use
    // 172.30.0.0/16. Index within the space is the global node id (dense
    // enough at synthesis scale).
    uint32_t second = cluster >= 0 ? uint32_t(16 + cluster) : 30u;
    intent.loopback = util::Ipv4Prefix(
        util::Ipv4Address((172u << 24) | (second << 16) | id), 32);
    intent.announced.push_back(intent.loopback);
    return id;
  }
};

// Full bipartite links between two layers of switches.
void Connect(Graph& graph, const std::vector<NodeId>& lower,
             const std::vector<NodeId>& upper) {
  for (NodeId l : lower) {
    for (NodeId u : upper) graph.AddEdge(l, u);
  }
}

}  // namespace

Network MakeDcn(const DcnParams& params) {
  Builder b(params);
  b.net.name = "DCN";
  Graph& graph = b.net.graph;

  const int n_clusters = params.small_clusters + params.big_clusters;
  if (n_clusters > 8) std::abort();  // loopback space allows 8 clusters

  std::vector<std::vector<NodeId>> cluster_tops(n_clusters);
  std::vector<std::vector<NodeId>> cluster_tors(n_clusters);

  // --- clusters ---------------------------------------------------------
  for (int c = 0; c < n_clusters; ++c) {
    const bool big = c >= params.small_clusters;
    const std::string cname = "c" + std::to_string(c);
    int tor_counter = 0;

    std::vector<NodeId> pod_tops;  // highest pod-local layer per pod
    for (int p = 0; p < params.pods_per_cluster; ++p) {
      const std::string pname = cname + "p" + std::to_string(p);
      std::vector<NodeId> tors, leafs;
      for (int t = 0; t < params.tors_per_pod; ++t) {
        NodeId id = b.AddSwitch(pname + "-tor" + std::to_string(t),
                                Role::kEdge, 0, c, kLayerAsnBase + 0);
        // Each TOR announces one business (VLAN) /24: 10.c.t.0/24.
        b.net.intents[id].announced.push_back(util::Ipv4Prefix(
            util::Ipv4Address((10u << 24) | (uint32_t(c) << 16) |
                              (uint32_t(tor_counter) << 8)),
            24));
        ++tor_counter;
        b.net.intents[id].max_ecmp_paths = 16;
        tors.push_back(id);
        cluster_tors[c].push_back(id);
      }
      for (int l = 0; l < params.leafs_per_pod; ++l) {
        NodeId id = b.AddSwitch(pname + "-leaf" + std::to_string(l),
                                Role::kAggregation, 1, c, kLayerAsnBase + 1);
        b.net.intents[id].max_ecmp_paths = 32;
        leafs.push_back(id);
      }
      Connect(graph, tors, leafs);

      if (big) {
        // Big clusters interpose a pod-spine layer (L2) between pod leafs
        // and the cluster-wide fabric.
        std::vector<NodeId> podspines;
        for (int s = 0; s < params.leafs_per_pod; ++s) {
          NodeId id =
              b.AddSwitch(pname + "-pspine" + std::to_string(s),
                          Role::kAggregation, 2, c, kLayerAsnBase + 2);
          podspines.push_back(id);
        }
        Connect(graph, leafs, podspines);
        for (NodeId id : podspines) pod_tops.push_back(id);
      } else {
        for (NodeId id : leafs) pod_tops.push_back(id);
      }
    }

    // Cluster top layer: L2 spines for small clusters, L3 fabrics + L4
    // spines for big ones.
    std::vector<NodeId> tops;
    if (big) {
      std::vector<NodeId> fabrics;
      for (int f = 0; f < params.fabrics_per_cluster; ++f) {
        fabrics.push_back(b.AddSwitch(cname + "-fabric" + std::to_string(f),
                                      Role::kAggregation, 3, c,
                                      kLayerAsnBase + 3));
      }
      Connect(graph, pod_tops, fabrics);
      for (int s = 0; s < params.spines_per_cluster; ++s) {
        tops.push_back(b.AddSwitch(cname + "-spine" + std::to_string(s),
                                   Role::kCore, 4, c, kLayerAsnBase + 4));
      }
      Connect(graph, fabrics, tops);
    } else {
      for (int s = 0; s < params.spines_per_cluster; ++s) {
        tops.push_back(b.AddSwitch(cname + "-spine" + std::to_string(s),
                                   Role::kCore, 2, c, kLayerAsnBase + 2));
      }
      Connect(graph, pod_tops, tops);
    }
    cluster_tops[c] = tops;
  }

  // --- core and border layers --------------------------------------------
  std::vector<NodeId> cores, borders;
  for (int i = 0; i < params.cores; ++i) {
    cores.push_back(
        b.AddSwitch("core" + std::to_string(i), Role::kCore, 10, -1,
                    kCoreAsn));
  }
  for (int c = 0; c < n_clusters; ++c) Connect(graph, cluster_tops[c], cores);
  for (int i = 0; i < params.borders; ++i) {
    // Borders carry unique public ASNs (they face the backbone and peer
    // with each other over eBGP; a shared ASN would self-reject).
    borders.push_back(
        b.AddSwitch("border" + std::to_string(i), Role::kBorder, 11, -1,
                    kBorderAsn + static_cast<uint32_t>(i)));
  }
  Connect(graph, cores, borders);
  // Borders exchange routes with each other (§2.3 top-layer filtering).
  for (size_t i = 0; i + 1 < borders.size(); ++i) {
    graph.AddEdge(borders[i], borders[i + 1]);
  }

  // --- policies -----------------------------------------------------------
  auto& intents = b.net.intents;
  for (int c = 0; c < n_clusters; ++c) {
    const bool big = c >= params.small_clusters;
    const util::Ipv4Prefix vlan_space(
        util::Ipv4Address((10u << 24) | (uint32_t(c) << 16)), 16);
    const util::Ipv4Prefix loop_space(
        util::Ipv4Address((172u << 24) | (uint32_t(16 + c) << 16)), 16);
    for (NodeId top : cluster_tops[c]) {
      NodeIntent& intent = intents[top];
      if (big) {
        // Layer >= 3 aggregation (§2.3): per-cluster VLAN and loopback
        // aggregates, tagged with cluster + class communities.
        intent.aggregates.push_back(AggregateIntent{
            vlan_space, true,
            {ClusterTag(c), kVlanAggCommunity, kVlanClassCommunity}});
        intent.aggregates.push_back(AggregateIntent{
            loop_space, true,
            {ClusterTag(c), kLoopbackAggCommunity, kLoopbackClassCommunity}});
      }
    }
  }
  // AS_PATH overwrite (§2.3): every non-TOR layer overwrites the path with
  // its own ASN when exporting toward lower layers, so shared same-layer
  // ASNs do not cause loop-prevention drops on the way down. (The model
  // applies overwrite_as_path to lower-layer exports only; see cp/bgp.)
  for (NodeId id = 0; id < graph.size(); ++id) {
    if (graph.node(id).layer > 0) intents[id].overwrite_as_path = true;
  }
  for (NodeId border : borders) {
    NodeIntent& intent = intents[border];
    intent.remove_private_as = true;
    // Backbone prefix, and a default route advertised only while the
    // backbone prefix is present (conditional advertisement, §4.5).
    util::Ipv4Prefix backbone = util::MustParsePrefix("192.0.2.0/24");
    util::Ipv4Prefix dflt = util::MustParsePrefix("0.0.0.0/0");
    intent.announced.push_back(backbone);
    intent.cond_advs.push_back(CondAdvIntent{dflt, backbone, true});
    // Backup prefix advertised only if the default is absent (never fires
    // at the converged state; exists to exercise absent-dependencies).
    intent.cond_advs.push_back(CondAdvIntent{
        util::MustParsePrefix("198.51.100.0/24"), dflt, false});
  }

  // Interfaces must exist before per-interface policies can be attached.
  AssignLinkAddresses(b.net);

  // Per-interface policies: layered local-pref, valley guard, overwrite
  // direction, cluster-tag filtering and class tagging.
  for (NodeId id = 0; id < graph.size(); ++id) {
    NodeIntent& intent = intents[id];
    const NodeInfo& info = graph.node(id);
    for (InterfaceIntent& iface : intent.interfaces) {
      const NodeInfo& peer = graph.node(iface.peer);
      if (peer.layer < info.layer) {
        iface.import_local_pref = 200;  // prefer routes from below
      } else if (peer.layer == info.layer) {
        iface.import_local_pref = 150;
      } else {
        iface.import_local_pref = 100;
      }
      if (peer.layer >= info.layer) {
        // Valley guard: tag what comes from above/sideways; never export
        // such routes back up or sideways.
        iface.import_tag_communities.push_back(kFromAboveCommunity);
        iface.export_policy.deny_export_communities.push_back(
            kFromAboveCommunity);
      }
      // Cluster tops exporting up: tag route classes, and stamp the
      // cluster tag so cores can avoid reflecting routes back into their
      // origin cluster.
      if (info.role == Role::kCore && info.pod >= 0 &&
          peer.layer > info.layer) {
        iface.export_policy.tag_matching.push_back(
            {util::MustParsePrefix("10.0.0.0/8"), kVlanClassCommunity});
        iface.export_policy.tag_matching.push_back(
            {util::MustParsePrefix("172.16.0.0/12"),
             kLoopbackClassCommunity});
        iface.export_policy.tag_matching.push_back(
            {util::MustParsePrefix("0.0.0.0/0"), ClusterTag(info.pod)});
      }
      // Cores exporting down: never send a cluster its own routes back
      // (prevents spine<->core preference cycles).
      if (info.layer == 10 && peer.layer < 10 && peer.pod >= 0) {
        iface.export_policy.deny_export_communities.push_back(
            ClusterTag(peer.pod));
      }
      // Borders exchanging with each other filter management routes
      // (loopback class and loopback aggregates stay inside the DCN).
      if (info.role == Role::kBorder && peer.role == Role::kBorder) {
        iface.export_policy.deny_export_communities.push_back(
            kLoopbackClassCommunity);
        iface.export_policy.deny_export_communities.push_back(
            kLoopbackAggCommunity);
        // Management traffic must not transit between borders either:
        // outbound packet filter on the border-to-border link.
        iface.acl_out.push_back(AclRuleIntent{
            false, std::nullopt, util::MustParsePrefix("172.16.0.0/12")});
      }
    }
  }

  return b.net;
}

}  // namespace s2::topo
