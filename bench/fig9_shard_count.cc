// Figure 9: time and peak memory of S2 simulating a fixed FatTree with a
// varying number of prefix shards.
//
// Paper shape to reproduce: peak memory falls monotonically with shard
// count; time is U-shaped — while memory is tight, more shards avoid
// costly GC (time falls); once memory is comfortable, the per-shard
// sequential overhead dominates (time rises).
#include "bench_util.h"

using namespace s2;
using namespace s2::bench;

int main(int argc, char** argv) {
  ObsOptions obs = ParseObsFlags(argc, argv);
  const int k = 8;
  std::printf("=== Figure 9: shard-count sweep on k=%d (%s) ===\n\n", k,
              PaperSize(k));
  BuiltNetwork built = BuildFatTree(k);
  // Budget chosen so the low-shard configurations run under GC pressure —
  // the regime where the paper's time curve falls with shard count.
  dist::ControllerOptions base = S2Options(4, 0);
  base.worker_memory_budget = 4u << 20;
  // A lower GC threshold widens the memory-pressured regime so the
  // falling arm of the U spans several shard counts, as in the paper.
  base.cost.gc_pressure_threshold = 0.3;

  std::printf("%-8s %9s %14s %14s %12s\n", "shards", "status",
              "modeled-time", "wall-time", "peak-mem");
  for (int shards : {1, 2, 5, 10, 15, 20, 30, 40}) {
    dist::ControllerOptions options = base;
    options.num_shards = shards;
    core::S2Verifier verifier(options);
    verifier.skip_data_plane_without_queries = true;
    core::VerifyResult result = verifier.Verify(built.parsed, {});
    CaptureReport(obs, verifier, result);
    std::printf("%-8d %9s %14s %14s %12s\n", shards,
                core::RunStatusName(result.status),
                result.ok()
                    ? core::HumanSeconds(result.TotalModeledSeconds())
                          .c_str()
                    : "-",
                result.ok()
                    ? core::HumanSeconds(result.TotalWallSeconds()).c_str()
                    : "-",
                core::HumanBytes(result.peak_memory_bytes).c_str());
  }
  std::printf(
      "\nexpected shape: peak memory falls monotonically; modeled time is\n"
      "U-shaped with its minimum where GC pressure disappears.\n");
  FinishObs(obs);
  return 0;
}
