#include "core/results.h"

#include <cstdio>

namespace s2::core {

const char* RunStatusName(RunStatus status) {
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kOutOfMemory:
      return "OOM";
    case RunStatus::kTimeout:
      return "timeout";
  }
  return "?";
}

double VerifyResult::TotalWallSeconds() const {
  return parse_seconds + partition_seconds + control_plane.wall_seconds +
         dp_build.wall_seconds + dp_forward.wall_seconds;
}

double VerifyResult::TotalModeledSeconds() const {
  return parse_seconds + partition_seconds + control_plane.modeled_seconds +
         dp_build.modeled_seconds + dp_forward.modeled_seconds;
}

std::string HumanBytes(size_t bytes) {
  char buf[32];
  double b = static_cast<double>(bytes);
  if (b >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / 1e9);
  } else if (b >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", b / 1e6);
  } else if (b >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", b / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

std::string HumanSeconds(double seconds) {
  char buf[32];
  if (seconds >= 3600) {
    std::snprintf(buf, sizeof(buf), "%.2f h", seconds / 3600);
  } else if (seconds >= 60) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60);
  } else if (seconds >= 1) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  }
  return buf;
}

}  // namespace s2::core
