# Empty dependencies file for mono_test.
# This may be replaced when dependencies are built.
