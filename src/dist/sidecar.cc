#include "dist/sidecar.h"

namespace s2::dist {

SidecarFabric::SidecarFabric(uint32_t num_workers,
                             std::vector<uint32_t> assignment)
    : num_workers_(num_workers),
      assignment_(std::move(assignment)),
      queues_(num_workers),
      bytes_sent_(num_workers, 0),
      messages_sent_(num_workers, 0) {}

void SidecarFabric::Send(uint32_t from_worker, Message message) {
  uint32_t to_worker = WorkerOf(message.to_node);
  std::lock_guard<std::mutex> lock(mutex_);
  bytes_sent_[from_worker] += message.WireBytes();
  messages_sent_[from_worker] += 1;
  queues_[to_worker].push_back(std::move(message));
}

std::vector<Message> SidecarFabric::Drain(uint32_t worker) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Message> out = std::move(queues_[worker]);
  queues_[worker].clear();
  return out;
}

bool SidecarFabric::HasPending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& queue : queues_) {
    if (!queue.empty()) return true;
  }
  return false;
}

size_t SidecarFabric::bytes_sent_by(uint32_t worker) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_sent_[worker];
}

size_t SidecarFabric::messages_sent_by(uint32_t worker) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return messages_sent_[worker];
}

size_t SidecarFabric::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (size_t b : bytes_sent_) total += b;
  return total;
}

void SidecarFabric::ResetCounters() {
  std::lock_guard<std::mutex> lock(mutex_);
  bytes_sent_.assign(num_workers_, 0);
  messages_sent_.assign(num_workers_, 0);
}

}  // namespace s2::dist
