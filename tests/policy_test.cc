// Route-map evaluation tests — including the paper's §2.1 VSB example:
// the two vendors' divergent remove-private-as semantics.
#include <gtest/gtest.h>

#include "cp/attr.h"
#include "cp/policy.h"

namespace s2::cp {
namespace {

AttrPool& TestPool() {
  static AttrPool* pool = new AttrPool();
  return *pool;
}

Route TestRoute() {
  Route r;
  r.prefix = util::MustParsePrefix("10.1.2.0/24");
  AttrTuple tuple;
  tuple.as_path = {65001};
  r.attrs = TestPool().Intern(std::move(tuple));
  return r;
}

config::RouteMap MapOf(std::vector<config::RouteMapClause> clauses) {
  config::RouteMap map;
  map.name = "RM";
  map.clauses = std::move(clauses);
  return map;
}

TEST(ApplyRouteMapTest, NullMapPermitsUnchanged) {
  Route r = TestRoute();
  PolicyResult result = ApplyRouteMap(nullptr, r, 65000, TestPool());
  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(result.route, r);
  // The untouched route keeps its interned handle — no new pool entry.
  EXPECT_TRUE(result.route.attrs.SameEntry(r.attrs));
}

TEST(ApplyRouteMapTest, ImplicitDenyWhenNothingMatches) {
  config::RouteMapClause clause;
  clause.permit = true;
  clause.match_covered_by = util::MustParsePrefix("192.168.0.0/16");
  auto map = MapOf({clause});
  EXPECT_FALSE(ApplyRouteMap(&map, TestRoute(), 65000, TestPool()).accepted);
}

TEST(ApplyRouteMapTest, FirstMatchWins) {
  config::RouteMapClause deny;
  deny.permit = false;
  deny.match_covered_by = util::MustParsePrefix("10.0.0.0/8");
  config::RouteMapClause permit;
  permit.permit = true;
  auto map = MapOf({deny, permit});
  EXPECT_FALSE(ApplyRouteMap(&map, TestRoute(), 65000, TestPool()).accepted);
  // Reorder: permit-all first.
  auto map2 = MapOf({permit, deny});
  EXPECT_TRUE(ApplyRouteMap(&map2, TestRoute(), 65000, TestPool()).accepted);
}

TEST(ApplyRouteMapTest, CommunityMatchIsAnyOf) {
  config::RouteMapClause clause;
  clause.permit = true;
  clause.match_any_community = {111, 222};
  auto map = MapOf({clause});
  Route r = TestRoute();
  EXPECT_FALSE(ApplyRouteMap(&map, r, 65000, TestPool()).accepted);
  r.MutateAttrs(TestPool(), [](AttrTuple& t) { t.AddCommunity(222); });
  EXPECT_TRUE(ApplyRouteMap(&map, r, 65000, TestPool()).accepted);
}

TEST(ApplyRouteMapTest, SetsApplyOnPermit) {
  config::RouteMapClause clause;
  clause.permit = true;
  clause.set_local_pref = 250;
  clause.add_communities = {42, 7};
  auto map = MapOf({clause});
  PolicyResult result = ApplyRouteMap(&map, TestRoute(), 65000, TestPool());
  ASSERT_TRUE(result.accepted);
  EXPECT_EQ(result.route.local_pref(), 250u);
  EXPECT_EQ(result.route.communities(), (std::vector<uint32_t>{7, 42}));
  EXPECT_FALSE(result.as_path_overwritten);
}

TEST(ApplyRouteMapTest, AsPathOverwriteSetsFlagAndPath) {
  config::RouteMapClause clause;
  clause.permit = true;
  clause.set_as_path_overwrite = true;
  auto map = MapOf({clause});
  PolicyResult result = ApplyRouteMap(&map, TestRoute(), 64600, TestPool());
  ASSERT_TRUE(result.accepted);
  EXPECT_TRUE(result.as_path_overwritten);
  EXPECT_EQ(result.route.as_path(), (std::vector<uint32_t>{64600}));
}

TEST(ApplyRouteMapTest, ContinueAccumulatesAcrossClauses) {
  // Tag-and-continue (the DCN class-tagging pattern), then final permit.
  config::RouteMapClause tag;
  tag.permit = true;
  tag.continue_next = true;
  tag.match_covered_by = util::MustParsePrefix("10.0.0.0/8");
  tag.add_communities = {200};
  config::RouteMapClause tag2 = tag;
  tag2.match_covered_by = util::MustParsePrefix("0.0.0.0/0");
  tag2.add_communities = {77};
  config::RouteMapClause all;
  all.permit = true;
  all.set_local_pref = 130;
  auto map = MapOf({tag, tag2, all});
  PolicyResult result = ApplyRouteMap(&map, TestRoute(), 65000, TestPool());
  ASSERT_TRUE(result.accepted);
  EXPECT_TRUE(result.route.HasCommunity(200));
  EXPECT_TRUE(result.route.HasCommunity(77));
  EXPECT_EQ(result.route.local_pref(), 130u);
}

TEST(ApplyRouteMapTest, DenyAfterContinueRejects) {
  config::RouteMapClause tag;
  tag.permit = true;
  tag.continue_next = true;
  tag.add_communities = {5};
  config::RouteMapClause deny;
  deny.permit = false;
  deny.match_any_community = {5};  // matches the freshly-tagged route
  auto map = MapOf({tag, deny});
  EXPECT_FALSE(ApplyRouteMap(&map, TestRoute(), 65000, TestPool()).accepted);
}

TEST(ApplyRouteMapTest, SetMedAndDeleteCommunities) {
  config::RouteMapClause clause;
  clause.permit = true;
  clause.set_med = 77;
  clause.delete_communities = {100, 500};
  auto map = MapOf({clause});
  Route r = TestRoute();
  r.MutateAttrs(TestPool(), [](AttrTuple& t) {
    t.AddCommunity(100);
    t.AddCommunity(200);
    t.AddCommunity(500);
  });
  PolicyResult result = ApplyRouteMap(&map, r, 65000, TestPool());
  ASSERT_TRUE(result.accepted);
  EXPECT_EQ(result.route.med(), 77u);
  EXPECT_EQ(result.route.communities(), (std::vector<uint32_t>{200}));
}

TEST(ApplyRouteMapTest, DeleteOfAbsentCommunityIsANoop) {
  config::RouteMapClause clause;
  clause.permit = true;
  clause.delete_communities = {42};
  auto map = MapOf({clause});
  PolicyResult result = ApplyRouteMap(&map, TestRoute(), 65000, TestPool());
  ASSERT_TRUE(result.accepted);
  EXPECT_TRUE(result.route.communities().empty());
}

TEST(ApplyRouteMapTest, AsPathPrependLengthensThePath) {
  config::RouteMapClause clause;
  clause.permit = true;
  clause.as_path_prepend = 3;
  auto map = MapOf({clause});
  PolicyResult result = ApplyRouteMap(&map, TestRoute(), 64999, TestPool());
  ASSERT_TRUE(result.accepted);
  EXPECT_EQ(result.route.as_path(),
            (std::vector<uint32_t>{64999, 64999, 64999, 65001}));
  EXPECT_FALSE(result.as_path_overwritten);  // prepend is not overwrite
}

// The §2.1 vendor-specific behaviour: Alpha removes all private ASNs,
// Beta only those preceding the first public one.
TEST(RemovePrivateAsTest, VendorSemanticsDiverge) {
  std::vector<uint32_t> path = {64512, 64513, 7018, 65000, 3356};
  auto alpha = path;
  RemovePrivateAs(alpha, topo::Vendor::kAlpha);
  EXPECT_EQ(alpha, (std::vector<uint32_t>{7018, 3356}));
  auto beta = path;
  RemovePrivateAs(beta, topo::Vendor::kBeta);
  EXPECT_EQ(beta, (std::vector<uint32_t>{7018, 65000, 3356}));
}

TEST(RemovePrivateAsTest, AllPrivatePath) {
  std::vector<uint32_t> path = {64512, 65000};
  auto alpha = path;
  RemovePrivateAs(alpha, topo::Vendor::kAlpha);
  EXPECT_TRUE(alpha.empty());
  auto beta = path;
  RemovePrivateAs(beta, topo::Vendor::kBeta);
  EXPECT_TRUE(beta.empty());
}

TEST(RemovePrivateAsTest, AllPublicUntouched) {
  std::vector<uint32_t> path = {7018, 3356};
  auto copy = path;
  RemovePrivateAs(copy, topo::Vendor::kAlpha);
  EXPECT_EQ(copy, path);
  RemovePrivateAs(copy, topo::Vendor::kBeta);
  EXPECT_EQ(copy, path);
}

}  // namespace
}  // namespace s2::cp
