// Per-node RIB: candidate routes per (prefix, neighbor), selected best /
// ECMP sets, and the on-disk RIB store used by prefix sharding.
//
// The candidate table is the memory hog the paper's per-worker accounting
// is about: every insert/replace/erase is charged to the owning domain's
// MemoryTracker, so per-worker peaks and simulated OOM fall out of real
// bookkeeping rather than a formula.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cp/route.h"
#include "util/memory_tracker.h"

namespace s2::cp {

// A RIB for one protocol on one node. Neighbors contribute at most one
// candidate per prefix (standard BGP advertises only its best); locally
// originated state uses learned_from = kInvalidNode.
//
// With hash-consed attributes each stored Route is charged only its fixed
// footprint (Route::UniqueBytes) — the shared tuple bytes are the owning
// AttrPool's to account. The pool pointer (may be null) additionally
// mirrors every charge into the pool's shadow pre-flyweight counters so
// benchmarks can report the reduction (DESIGN.md §4).
class Rib {
 public:
  explicit Rib(util::MemoryTracker* tracker, AttrPool* pool = nullptr)
      : tracker_(tracker), pool_(pool) {}
  ~Rib() { Clear(); }

  Rib(const Rib&) = delete;
  Rib& operator=(const Rib&) = delete;

  // Inserts/replaces the candidate from `from` for route.prefix. Marks the
  // prefix dirty if the candidate actually changed.
  void Upsert(topo::NodeId from, const Route& route);

  // Removes the candidate from `from` for `prefix` (no-op if absent).
  void Withdraw(topo::NodeId from, const util::Ipv4Prefix& prefix);

  // Recomputes best/ECMP sets for all dirty prefixes. Returns the prefixes
  // whose *best set* changed (these feed the next round's exports). ECMP
  // sets keep up to `max_paths` EcmpEquivalent routes, deterministically
  // ordered; element 0 is the single best route.
  std::vector<util::Ipv4Prefix> RecomputeDirty(int max_paths);

  // Best/ECMP set for a prefix; nullptr if no route.
  const std::vector<Route>* Best(const util::Ipv4Prefix& prefix) const;

  // True if a route for exactly `prefix` is present (conditional
  // advertisement's existence test).
  bool Contains(const util::Ipv4Prefix& prefix) const {
    return best_.count(prefix) != 0;
  }

  // True if any strictly-more-specific prefix covered by `prefix` has a
  // best route (aggregate activation test).
  bool HasContributor(const util::Ipv4Prefix& prefix) const;

  const std::map<util::Ipv4Prefix, std::vector<Route>>& all_best() const {
    return best_;
  }

  size_t candidate_count() const { return candidate_count_; }

  // Full candidate table (fault checkpoints and diagnostics).
  const std::map<util::Ipv4Prefix, std::map<topo::NodeId, Route>>&
  candidates() const {
    return candidates_;
  }

  // ------------------------------------------------ checkpoint (src/fault)
  // Byte-exact snapshot of candidates, best sets, AND dirty marks: restoring
  // all three makes post-crash replay reproduce the exact export deltas of
  // the lost rounds (restoring candidates alone would lose the pending
  // withdrawals of prefixes that went bestless just before a barrier).
  // The attribute table is the enclosing blob's (one per node checkpoint),
  // shared across all its route sections.
  void SerializeState(std::vector<uint8_t>& out,
                      AttrTableBuilder& table) const;
  // Restores into an empty RIB, charging the tracker for every route.
  void RestoreState(const std::vector<uint8_t>& bytes, size_t& pos,
                    const AttrTable& table);

  // Drops all state (end of a shard round: results were spilled), releasing
  // the accounted memory.
  void Clear();

 private:
  void ChargeRoute(const Route& route);
  void ReleaseRoute(const Route& route);

  util::MemoryTracker* tracker_;
  AttrPool* pool_;
  // prefix -> neighbor -> candidate. Ordered maps keep iteration (and thus
  // everything downstream) deterministic.
  std::map<util::Ipv4Prefix, std::map<topo::NodeId, Route>> candidates_;
  std::map<util::Ipv4Prefix, std::vector<Route>> best_;
  std::unordered_set<util::Ipv4Prefix> dirty_;
  size_t candidate_count_ = 0;
};

// Persistent storage for converged shard results (paper §3.1: "when this
// round ends, we write it to persistent storage"). One file per
// (shard, node) under a unique temp directory; files are real so the spill
// path costs real I/O.
class RibStore {
 public:
  // Creates a fresh directory under the system temp dir.
  RibStore();
  ~RibStore();

  RibStore(const RibStore&) = delete;
  RibStore& operator=(const RibStore&) = delete;

  // Thread-safe: workers spill concurrently; each (shard, node) pair is
  // written by exactly one worker, so only the bookkeeping is shared.
  // `stats_pool` (may be null) is credited with the batch's attribute
  // dedup effect.
  void Write(int shard, topo::NodeId node,
             const std::map<util::Ipv4Prefix, std::vector<Route>>& best,
             AttrPool* stats_pool = nullptr);

  // Reads every shard's routes for `node`, merged into one map; attribute
  // tuples are re-interned into `pool` (the reading domain's).
  std::map<util::Ipv4Prefix, std::vector<Route>> ReadAll(
      topo::NodeId node, AttrPool& pool) const;

  size_t bytes_written() const { return bytes_written_; }
  size_t routes_written() const { return routes_written_; }

 private:
  std::filesystem::path dir_;
  mutable std::mutex mutex_;  // guards the counters and entries_
  size_t bytes_written_ = 0;
  size_t routes_written_ = 0;
  std::vector<std::pair<int, topo::NodeId>> entries_;
};

}  // namespace s2::cp
