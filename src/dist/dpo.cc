#include "dist/dpo.h"

#include <algorithm>
#include <functional>

#include "bdd/bdd_io.h"
#include "fault/checkpoint.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace s2::dist {

namespace {

// Summed op-cache counters across every worker's data-plane lanes; used to
// report per-phase deltas in RoundMetrics.
bdd::Manager::CacheStats SumWorkerCacheStats(
    const std::vector<std::unique_ptr<Worker>>& workers) {
  bdd::Manager::CacheStats total;
  for (const auto& worker : workers) {
    bdd::Manager::CacheStats stats = worker->bdd_cache_stats();
    total.hits += stats.hits;
    total.misses += stats.misses;
    total.evictions += stats.evictions;
  }
  return total;
}

void RecordCacheDelta(RoundMetrics& metrics,
                      const bdd::Manager::CacheStats& before,
                      const bdd::Manager::CacheStats& after) {
  metrics.bdd_cache_hits += after.hits - before.hits;
  metrics.bdd_cache_misses += after.misses - before.misses;
  metrics.bdd_cache_evictions += after.evictions - before.evictions;
}

}  // namespace

Dpo::Dpo(std::vector<std::unique_ptr<Worker>>* workers,
         SidecarFabric* fabric, util::ThreadPool* pool, CostModelParams cost,
         Worker::Options worker_options)
    : workers_(workers),
      fabric_(fabric),
      pool_(pool),
      cost_(cost),
      worker_options_(worker_options) {}

RoundMetrics Dpo::BuildDataPlanes(const cp::RibStore* store) {
  RoundMetrics metrics;
  util::Stopwatch wall;
  pool_->ParallelFor(workers_->size(), [&](size_t w) {
    obs::Span span("dp", "dp.worker_build");
    span.Arg("worker", static_cast<int64_t>(w));
    (*workers_)[w]->BuildDataPlane(store);
  });
  for (const auto& worker : *workers_) {
    metrics.modeled_seconds =
        std::max(metrics.modeled_seconds, worker->last_phase_seconds());
  }
  RecordCacheDelta(metrics, bdd::Manager::CacheStats{},
                   SumWorkerCacheStats(*workers_));
  metrics.wall_seconds = wall.ElapsedSeconds();
  metrics.rounds = 1;
  return metrics;
}

Dpo::QueryRun Dpo::RunQuery(const dp::Query& query,
                            const dp::PacketCodec& gather_codec) {
  QueryRun run;
  util::Stopwatch wall;
  bdd::Manager::CacheStats cache_before = SumWorkerCacheStats(*workers_);
  pool_->ParallelFor(workers_->size(), [&](size_t w) {
    (*workers_)[w]->PrepareQuery(query);
  });

  size_t num_workers = workers_->size();
  std::vector<char> moved(num_workers, 0);
  for (;;) {
    obs::Span round_span("dp", "dp.round");
    round_span.Arg("round", run.metrics.rounds);
    size_t bytes_before = fabric_->total_bytes();
    // Two barrier phases per round (like the CPO's rounds): packets a
    // worker ships in phase B are only accepted in the NEXT round's phase
    // A, so the round partitioning is schedule-independent — without the
    // barrier, whether worker B sees worker A's frames this round or next
    // depends on thread timing, and batching/coalescing (and therefore
    // comm_bytes and finals fragmentation) becomes nondeterministic.
    std::vector<char> accepted(num_workers, 0);
    pool_->ParallelFor(num_workers, [&](size_t w) {
      accepted[w] = (*workers_)[w]->AcceptPackets() ? 1 : 0;
    });
    pool_->ParallelFor(num_workers, [&](size_t w) {
      moved[w] = (*workers_)[w]->ForwardAndShip() ? 1 : 0;
    });
    bool any = false;
    double busy = 0;
    for (size_t w = 0; w < num_workers; ++w) {
      any = any || accepted[w] || moved[w];
      busy = std::max(busy, (*workers_)[w]->last_phase_seconds());
    }
    size_t bytes_after = fabric_->total_bytes();
    // No per-round latency term here: unlike control-plane rounds, packet
    // forwarding is asynchronous in S2's design (sidecars stream packets;
    // the DPO only detects quiescence) — the in-process round loop is an
    // implementation artifact, not a modeled barrier.
    run.metrics.comm_bytes += bytes_after - bytes_before;
    run.metrics.modeled_seconds +=
        busy + double(bytes_after - bytes_before) / double(num_workers) /
                   cost_.bandwidth_bytes_per_sec;
    ++run.metrics.rounds;
    if (!any && !fabric_->HasPending()) break;
  }

  // Gather finals into the controller's domain (serialized BDD transfer).
  for (const auto& worker : *workers_) {
    for (SerializedFinal& final : worker->TakeFinals()) {
      run.gather_bytes += final.WireBytes();
      dp::FinalPacket packet;
      packet.src = final.src;
      packet.node = final.node;
      packet.state = final.state;
      packet.path = std::move(final.path);
      packet.set =
          bdd::DeserializeInto(*gather_codec.manager(), final.set);
      run.finals.push_back(std::move(packet));
    }
  }
  RecordCacheDelta(run.metrics, cache_before, SumWorkerCacheStats(*workers_));
  run.metrics.wall_seconds = wall.ElapsedSeconds();
  return run;
}

Dpo::MultiQueryRun Dpo::RunQueries(const std::vector<dp::Query>& queries,
                                   const dp::PacketCodec& gather_codec,
                                   size_t lanes) {
  MultiQueryRun multi;
  multi.runs.resize(queries.size());
  if (queries.empty()) return multi;
  if (lanes == 0) lanes = 1;
  util::Stopwatch wall;

  size_t num_workers = workers_->size();

  // One snapshot of every worker's canonical predicate bytes, shared
  // read-only by all query tasks (bdd_io encodes structurally, so each
  // task can rebuild an equivalent domain in a private manager).
  std::vector<std::map<topo::NodeId, std::vector<uint8_t>>> snapshots(
      num_workers);
  pool_->ParallelFor(num_workers, [&](size_t w) {
    snapshots[w] = (*workers_)[w]->SnapshotPredicates();
  });

  struct QueryOutput {
    std::vector<SerializedFinal> finals;  // worker-major, deterministic
    double busy_seconds = 0;              // thread-CPU time of the task
  };
  std::vector<QueryOutput> outputs(queries.size());

  pool_->ParallelFor(queries.size(), [&](size_t q) {
    obs::Span query_span("dp", "dp.query");
    query_span.Arg("query", static_cast<int64_t>(q));
    const dp::Query& query = queries[q];
    RoundMetrics& metrics = multi.runs[q].metrics;
    double cpu_start = util::ThreadCpuSeconds();

    // Per-query, per-worker shared-nothing domains; node bytes are charged
    // to the owning worker's tracker (atomic, so concurrent queries are
    // race-free and per-worker budgets still bind).
    std::vector<std::unique_ptr<bdd::Manager>> managers;
    std::vector<std::unique_ptr<dp::ForwardingEngine>> engines;
    bdd::Manager::Options manager_options;
    manager_options.max_nodes = worker_options_.max_bdd_nodes;
    for (size_t w = 0; w < num_workers; ++w) {
      manager_options.tracker = &(*workers_)[w]->tracker();
      managers.push_back(std::make_unique<bdd::Manager>(
          worker_options_.layout.total_bits(), manager_options));
      dp::PacketCodec codec(managers[w].get(), worker_options_.layout);
      dp::ForwardingEngine::Options engine_options;
      engine_options.max_hops = worker_options_.max_hops;
      engines.push_back(
          std::make_unique<dp::ForwardingEngine>(codec, engine_options));
      for (const auto& [id, bytes] : snapshots[w]) {
        engines[w]->AddNode(
            id, fault::DeserializePredicates(*managers[w], bytes));
      }
    }

    // PrepareQuery, per domain.
    for (size_t w = 0; w < num_workers; ++w) {
      engines[w]->set_record_paths(query.record_paths);
      for (size_t i = 0; i < query.transits.size(); ++i) {
        if (engines[w]->Owns(query.transits[i])) {
          engines[w]->SetWaypointBit(query.transits[i],
                                     static_cast<uint32_t>(i));
        }
      }
      bdd::Bdd header_space = query.header_space.ToBdd(engines[w]->codec());
      for (topo::NodeId src : query.sources) {
        if (engines[w]->Owns(src)) engines[w]->Inject(src, header_space);
      }
    }

    // The sequential fabric round loop, replayed over a query-private
    // exchange: run every domain to quiescence, ferry the crossing packets
    // (serialized, like the sidecars would), repeat until silent.
    std::vector<dp::WirePacket> crossing;
    for (;;) {
      size_t steps_before = 0, steps_after = 0;
      for (size_t w = 0; w < num_workers; ++w) {
        steps_before += engines[w]->steps();
        engines[w]->Run([&](const dp::InFlightPacket& packet) {
          dp::WirePacket wire;
          wire.at = packet.at;
          wire.from = packet.from;
          wire.src = packet.src;
          wire.hops = packet.hops;
          wire.path = packet.path;
          wire.set = bdd::Serialize(packet.set);
          crossing.push_back(std::move(wire));
        });
        steps_after += engines[w]->steps();
      }
      ++metrics.rounds;
      if (crossing.empty()) {
        if (steps_after == steps_before) break;
        continue;
      }
      for (const dp::WirePacket& wire : crossing) {
        metrics.comm_bytes += wire.WireBytes();
        ++metrics.comm_messages;
        uint32_t dest = fabric_->WorkerOf(wire.at);
        dp::InFlightPacket packet;
        packet.at = wire.at;
        packet.from = wire.from;
        packet.src = wire.src;
        packet.hops = wire.hops;
        packet.path = wire.path;
        packet.set = bdd::DeserializeInto(*managers[dest], wire.set);
        engines[dest]->Accept(std::move(packet));
      }
      crossing.clear();
    }

    // Finals in worker-major order — the order RunQuery gathers in.
    for (size_t w = 0; w < num_workers; ++w) {
      for (const dp::FinalPacket& final : engines[w]->finals()) {
        SerializedFinal serialized;
        serialized.src = final.src;
        serialized.node = final.node;
        serialized.state = final.state;
        serialized.path = final.path;
        serialized.set = bdd::Serialize(final.set);
        outputs[q].finals.push_back(std::move(serialized));
      }
    }
    bdd::Manager::CacheStats cache;
    for (const auto& manager : managers) {
      cache.hits += manager->cache_stats().hits;
      cache.misses += manager->cache_stats().misses;
      cache.evictions += manager->cache_stats().evictions;
    }
    RecordCacheDelta(metrics, bdd::Manager::CacheStats{}, cache);
    outputs[q].busy_seconds = util::ThreadCpuSeconds() - cpu_start;
    metrics.modeled_seconds =
        outputs[q].busy_seconds +
        double(metrics.comm_bytes) / cost_.bandwidth_bytes_per_sec;
  });

  // Gather sequentially: the controller's manager is shared, and (query,
  // worker) order keeps the result deterministic.
  for (size_t q = 0; q < queries.size(); ++q) {
    QueryRun& run = multi.runs[q];
    for (SerializedFinal& final : outputs[q].finals) {
      run.gather_bytes += final.WireBytes();
      dp::FinalPacket packet;
      packet.src = final.src;
      packet.node = final.node;
      packet.state = final.state;
      packet.path = std::move(final.path);
      packet.set = bdd::DeserializeInto(*gather_codec.manager(), final.set);
      run.finals.push_back(std::move(packet));
    }
    multi.aggregate.rounds =
        std::max(multi.aggregate.rounds, run.metrics.rounds);
    multi.aggregate.comm_bytes += run.metrics.comm_bytes;
    multi.aggregate.comm_messages += run.metrics.comm_messages;
    multi.aggregate.bdd_cache_hits += run.metrics.bdd_cache_hits;
    multi.aggregate.bdd_cache_misses += run.metrics.bdd_cache_misses;
    multi.aggregate.bdd_cache_evictions += run.metrics.bdd_cache_evictions;
  }

  // Modeled parallel time: LPT makespan of per-query busy over `lanes`
  // slots (queries are independent; a real L-thread box would greedily
  // pack them).
  std::vector<double> busy;
  busy.reserve(queries.size());
  for (const QueryOutput& output : outputs) {
    busy.push_back(output.busy_seconds);
  }
  std::sort(busy.begin(), busy.end(), std::greater<double>());
  std::vector<double> slots(std::min(lanes, busy.size()), 0.0);
  if (slots.empty()) slots.push_back(0.0);
  for (double b : busy) {
    *std::min_element(slots.begin(), slots.end()) += b;
  }
  multi.aggregate.modeled_seconds =
      *std::max_element(slots.begin(), slots.end()) +
      double(multi.aggregate.comm_bytes) / double(num_workers) /
          cost_.bandwidth_bytes_per_sec;
  multi.aggregate.wall_seconds = wall.ElapsedSeconds();
  return multi;
}

}  // namespace s2::dist
