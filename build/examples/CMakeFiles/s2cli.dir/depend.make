# Empty dependencies file for s2cli.
# This may be replaced when dependencies are built.
