// Control Plane Orchestrator (paper §3.2/§4.2, Algorithm 1).
//
// Schedules protocols in sequence (IGP before EGP), and for BGP runs the
// distributed fix-point computation one prefix shard at a time. Each round
// is two barrier-synchronized phases across workers (compute+ship, then
// deliver+merge); phases run on a thread pool, one task per worker.
//
// The CPO also accumulates the cost model's raw measurements: per-round
// critical-path worker busy time, serialized bytes, and GC-pressure
// penalties (DESIGN.md §3 — how 1-core hardware reports the parallel
// time a real deployment would see).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cp/shard.h"
#include "dist/worker.h"
#include "fault/injector.h"
#include "util/cost_model.h"
#include "util/thread_pool.h"

namespace s2::dist {

using CostModelParams = util::CostModelParams;

struct RoundMetrics {
  int rounds = 0;
  double wall_seconds = 0;     // real elapsed time on this machine
  double modeled_seconds = 0;  // Σ_rounds (max_w busy + comm + gc)
  size_t comm_bytes = 0;       // total sidecar traffic
  size_t comm_messages = 0;
  // BDD op-cache behavior during the phase, summed across the managers
  // involved (per-worker lanes for distributed phases, the single manager
  // for mono runs). Deltas, not lifetime totals.
  size_t bdd_cache_hits = 0;
  size_t bdd_cache_misses = 0;
  size_t bdd_cache_evictions = 0;

  void Add(const RoundMetrics& other);
};

// Metrics of one shard's round set, recorded for the §7 prefix-parallelism
// analysis: since shards are computationally independent, executing them
// in parallel (one node replica per shard) would take max-over-shards time
// at sum-over-shards memory — both derivable from these records.
struct ShardMetrics {
  RoundMetrics rounds;
  size_t max_worker_peak = 0;  // highest per-worker peak within the shard
};

// Barrier callbacks wiring the CPO into the controller's fault machinery
// (src/fault). Inactive when no fault plan is installed.
struct FaultHooks {
  fault::FaultInjector* injector = nullptr;
  // Control-plane rounds between periodic checkpoints; checkpoints are
  // also taken at every pass/shard begin barrier.
  int checkpoint_interval = 0;
  std::function<void(int shard)> checkpoint;      // snapshot every worker
  std::function<void(uint32_t worker)> recover;   // rebuild a crashed one
  bool active() const { return injector != nullptr; }
};

class Cpo {
 public:
  Cpo(std::vector<std::unique_ptr<Worker>>* workers, SidecarFabric* fabric,
      util::ThreadPool* pool, CostModelParams cost, int max_rounds,
      FaultHooks hooks = {});

  // Full control-plane simulation: an OSPF pass when any device enables
  // OSPF, then BGP — one round set per shard of `plan` (spilling converged
  // results to `store`), or a single unsharded pass retaining results in
  // the nodes.
  RoundMetrics Run(bool any_ospf, const cp::ShardPlan* plan,
                   cp::RibStore* store);

  // Per-shard records of the last Run (empty for unsharded runs).
  const std::vector<ShardMetrics>& shard_metrics() const {
    return shard_metrics_;
  }
  // Highest per-worker peak observed across the whole run (worker peaks
  // are reset per shard to attribute them, so callers combine this with
  // the trackers' current peaks).
  size_t observed_peak() const { return observed_peak_; }

  // Cumulative control-plane rounds across passes and shards of the last
  // Run — the clock CrashEvent::round is scheduled against.
  int total_rounds() const { return cp_round_total_; }

 private:
  RoundMetrics RunRounds();
  void AtBarrier();  // end-of-round checkpoints and scheduled crashes
  double GcPenalty() const;
  size_t MaxWorkerPeakNow() const;

  std::vector<std::unique_ptr<Worker>>* workers_;
  SidecarFabric* fabric_;
  util::ThreadPool* pool_;
  CostModelParams cost_;
  int max_rounds_;
  FaultHooks hooks_;
  std::vector<ShardMetrics> shard_metrics_;
  size_t observed_peak_ = 0;
  int cp_round_total_ = 0;
  int current_shard_ = -1;
};

}  // namespace s2::dist
