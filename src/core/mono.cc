#include "core/mono.h"

#include "dp/fib.h"
#include "util/stopwatch.h"

namespace s2::core {

VerifyResult MonoVerifier::Verify(const config::ParsedNetwork& network,
                                  const std::vector<dp::Query>& queries) {
  VerifyResult result;
  engine_.reset();  // previous run's nodes release into the old tracker
  tracker_ = std::make_unique<util::MemoryTracker>("mono",
                                                   options_.memory_budget);
  util::MemoryTracker& tracker = *tracker_;
  std::optional<cp::ShardPlan> plan;
  std::unique_ptr<cp::RibStore> store;

  try {
    // ------------------------------------------------------ control plane
    cp::EngineOptions engine_options;
    engine_options.max_rounds_per_pass = options_.max_rounds;
    engine_options.cost = options_.cost;
    engine_ = std::make_unique<cp::MonoEngine>(network, &tracker,
                                               engine_options);
    if (options_.num_shards > 0) {
      plan = cp::BuildShardPlan(network, options_.num_shards, options_.seed);
      cp::RepairShardPlan(network, *plan);  // §7 fallback, normally a no-op
      store = std::make_unique<cp::RibStore>();
    }
    util::Stopwatch cp_watch;
    engine_->Run(plan ? &*plan : nullptr, store.get());
    result.control_plane.wall_seconds = cp_watch.ElapsedSeconds();
    result.control_plane.modeled_seconds = engine_->stats().modeled_seconds;
    result.control_plane.rounds = engine_->stats().bgp_rounds;
    result.total_best_routes =
        store ? store->routes_written() : [&] {
          size_t total = 0;
          for (const auto& node : engine_->nodes()) {
            for (const auto& [prefix, routes] : node->bgp_routes()) {
              total += routes.size();
            }
          }
          return total;
        }();

    // --------------------------------------------------------- data plane
    // One manager, one node table, for the whole network — the §2.2
    // "all switches share a single BDD data structure" regime.
    util::Stopwatch build_watch;
    bdd::Manager::Options bdd_options;
    bdd_options.max_nodes = options_.max_bdd_nodes;
    bdd_options.tracker = &tracker;
    bdd::Manager manager(options_.layout.total_bits(), bdd_options);
    dp::PacketCodec codec(&manager, options_.layout);
    dp::ForwardingEngine::Options engine_opts;
    engine_opts.max_hops = options_.max_hops;
    dp::ForwardingEngine forwarding(codec, engine_opts);
    for (const auto& node : engine_->nodes()) {
      std::map<util::Ipv4Prefix, std::vector<cp::Route>> from_store;
      const auto* bgp = &node->bgp_routes();
      if (store) {
        from_store = store->ReadAll(node->id(), engine_->attr_pool());
        bgp = &from_store;
      }
      dp::Fib fib = dp::Fib::Build(network, node->id(), *bgp,
                                   node->ospf_routes(), &tracker);
      forwarding.AddNode(node->id(),
                         dp::BuildPredicates(network, node->id(), fib,
                                             codec));
    }
    result.dp_build.wall_seconds = build_watch.ElapsedSeconds();
    result.dp_build.modeled_seconds = result.dp_build.wall_seconds;
    result.dp_build.rounds = 1;
    bdd::Manager::CacheStats build_cache = manager.cache_stats();
    result.dp_build.bdd_cache_hits = build_cache.hits;
    result.dp_build.bdd_cache_misses = build_cache.misses;
    result.dp_build.bdd_cache_evictions = build_cache.evictions;

    // ------------------------------------------------------------ queries
    for (const dp::Query& query : queries) {
      util::Stopwatch query_watch;
      forwarding.ResetQueryState();
      forwarding.set_record_paths(query.record_paths);
      for (size_t i = 0; i < query.transits.size(); ++i) {
        forwarding.SetWaypointBit(query.transits[i],
                                  static_cast<uint32_t>(i));
      }
      bdd::Bdd header_space = query.header_space.ToBdd(codec);
      for (topo::NodeId src : query.sources) {
        forwarding.Inject(src, header_space);
      }
      forwarding.Run(nullptr);  // every node is local
      result.queries.push_back(dp::EvaluateQuery(
          query, codec, forwarding.finals(), network));
      result.dp_forward.wall_seconds += query_watch.ElapsedSeconds();
      result.forwarding_steps = forwarding.steps();
    }
    result.dp_forward.modeled_seconds = result.dp_forward.wall_seconds;
    result.dp_forward.rounds = static_cast<int>(queries.size());
    bdd::Manager::CacheStats total_cache = manager.cache_stats();
    result.dp_forward.bdd_cache_hits = total_cache.hits - build_cache.hits;
    result.dp_forward.bdd_cache_misses =
        total_cache.misses - build_cache.misses;
    result.dp_forward.bdd_cache_evictions =
        total_cache.evictions - build_cache.evictions;
  } catch (const util::SimulatedOom& oom) {
    result.status = RunStatus::kOutOfMemory;
    result.failure_detail = oom.what();
  } catch (const util::SimulatedTimeout& timeout) {
    result.status = RunStatus::kTimeout;
    result.failure_detail = timeout.what();
  }

  result.peak_memory_bytes = tracker.peak_bytes();
  result.worker_peaks = {tracker.peak_bytes()};
  return result;
}

}  // namespace s2::core
