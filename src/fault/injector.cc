#include "fault/injector.h"

namespace s2::fault {

namespace {

// SplitMix64 finalizer (same constants as util::Rng) over a running state.
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// A deterministic per-(frame, purpose) uniform double in [0,1).
double Roll(uint64_t key, uint32_t purpose) {
  uint64_t h = Mix(key + purpose * 0x9e3779b97f4a7c15ULL);
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

uint64_t FrameKey(uint64_t seed, uint32_t from, uint32_t to, uint64_t seq,
                  uint32_t attempt) {
  uint64_t key = seed;
  key = Mix(key ^ (uint64_t{from} << 32 | to));
  key = Mix(key ^ seq);
  key = Mix(key ^ attempt);
  return key;
}

}  // namespace

FrameFate FaultInjector::Classify(uint32_t from, uint32_t to, uint64_t seq,
                                  uint32_t attempt) const {
  FrameFate fate;
  const LinkFaults& link = plan_.LinkFor(from, to);
  if (!link.Any()) return fate;
  uint64_t key = FrameKey(plan_.seed, from, to, seq, attempt);
  fate.drop = Roll(key, 1) < link.drop;
  if (fate.drop) return fate;
  fate.duplicate = Roll(key, 2) < link.duplicate;
  fate.reorder = Roll(key, 3) < link.reorder;
  if (link.max_delay_rounds > 0) {
    fate.delay_rounds = static_cast<int>(
        Roll(key, 4) * (link.max_delay_rounds + 1));
    fate.duplicate_delay_rounds = static_cast<int>(
        Roll(key, 5) * (link.max_delay_rounds + 1));
  }
  return fate;
}

std::vector<uint32_t> FaultInjector::TakeCrashes(CrashPhase phase,
                                                 int round) {
  std::vector<uint32_t> due;
  for (size_t i = 0; i < plan_.crashes.size(); ++i) {
    const CrashEvent& event = plan_.crashes[i];
    if (fired_[i] || event.phase != phase) continue;
    // Control-plane crashes fire at the first barrier at or past their
    // round — fault-induced retransmit rounds shift convergence, so exact
    // matching would make schedules brittle. Events past the last round a
    // run reaches stay pending (tests assert crashes_fired()).
    if (phase == CrashPhase::kControlPlaneRound && event.round > round) {
      continue;
    }
    fired_[i] = true;
    ++crashes_fired_;
    due.push_back(event.worker);
  }
  return due;
}

}  // namespace s2::fault
