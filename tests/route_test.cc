// Route value-type tests: the BGP decision process ordering, ECMP
// equivalence, communities, and wire serialization.
#include <gtest/gtest.h>

#include "cp/route.h"

namespace s2::cp {
namespace {

Route BaseRoute() {
  Route r;
  r.prefix = util::MustParsePrefix("10.1.2.0/24");
  r.protocol = Protocol::kBgp;
  r.local_pref = 100;
  r.as_path = {65001, 65002};
  r.origin = 0;
  r.med = 0;
  r.origin_node = 7;
  r.learned_from = 3;
  return r;
}

TEST(RouteTest, AdminDistances) {
  EXPECT_EQ(AdminDistance(Protocol::kConnected), 0u);
  EXPECT_EQ(AdminDistance(Protocol::kLocal), 5u);
  EXPECT_EQ(AdminDistance(Protocol::kBgp), 20u);
  EXPECT_EQ(AdminDistance(Protocol::kOspf), 110u);
}

TEST(RouteTest, PrivateAsnRange) {
  EXPECT_FALSE(IsPrivateAsn(64511));
  EXPECT_TRUE(IsPrivateAsn(64512));
  EXPECT_TRUE(IsPrivateAsn(65534));
  EXPECT_FALSE(IsPrivateAsn(65535));
}

TEST(RouteTest, CommunitiesStaySortedUnique) {
  Route r = BaseRoute();
  r.AddCommunity(300);
  r.AddCommunity(100);
  r.AddCommunity(200);
  r.AddCommunity(100);  // duplicate
  EXPECT_EQ(r.communities, (std::vector<uint32_t>{100, 200, 300}));
  EXPECT_TRUE(r.HasCommunity(200));
  EXPECT_FALSE(r.HasCommunity(150));
}

TEST(BetterRouteTest, DecisionProcessOrder) {
  Route base = BaseRoute();

  // Lower admin distance wins regardless of anything else.
  Route local = base;
  local.protocol = Protocol::kLocal;
  local.local_pref = 1;
  EXPECT_TRUE(BetterRoute(local, base));

  // Higher local-pref wins.
  Route preferred = base;
  preferred.local_pref = 200;
  EXPECT_TRUE(BetterRoute(preferred, base));
  EXPECT_FALSE(BetterRoute(base, preferred));

  // Shorter AS path wins.
  Route shorter = base;
  shorter.as_path = {65001};
  EXPECT_TRUE(BetterRoute(shorter, base));

  // Lower origin wins.
  Route igp = base;
  Route incomplete = base;
  incomplete.origin = 2;
  EXPECT_TRUE(BetterRoute(igp, incomplete));

  // Lower MED wins.
  Route low_med = base;
  Route high_med = base;
  high_med.med = 50;
  EXPECT_TRUE(BetterRoute(low_med, high_med));

  // Tie-break: lower learned_from.
  Route other_neighbor = base;
  other_neighbor.learned_from = 9;
  EXPECT_TRUE(BetterRoute(base, other_neighbor));
}

TEST(BetterRouteTest, StrictWeakOrdering) {
  Route a = BaseRoute();
  EXPECT_FALSE(BetterRoute(a, a));  // irreflexive
  Route b = BaseRoute();
  b.local_pref = 200;
  EXPECT_NE(BetterRoute(a, b), BetterRoute(b, a));  // asymmetric
}

TEST(BetterRouteTest, OspfComparesMetric) {
  Route a = BaseRoute(), b = BaseRoute();
  a.protocol = b.protocol = Protocol::kOspf;
  a.metric = 2;
  b.metric = 5;
  EXPECT_TRUE(BetterRoute(a, b));
}

TEST(EcmpEquivalentTest, MultipathAttributes) {
  Route a = BaseRoute(), b = BaseRoute();
  b.learned_from = 9;  // different neighbor is fine
  b.as_path = {65009, 65010};  // different content, same length
  EXPECT_TRUE(EcmpEquivalent(a, b));
  b.as_path = {65009};
  EXPECT_FALSE(EcmpEquivalent(a, b));  // different length
  b = BaseRoute();
  b.local_pref = 200;
  EXPECT_FALSE(EcmpEquivalent(a, b));
  b = BaseRoute();
  b.med = 1;
  EXPECT_FALSE(EcmpEquivalent(a, b));
}

TEST(RouteSerializationTest, RoundTripsAnnouncesAndWithdrawals) {
  Route r = BaseRoute();
  r.AddCommunity(999);
  r.med = 42;
  std::vector<RouteUpdate> updates;
  updates.push_back(RouteUpdate{r.prefix, false, r});
  updates.push_back(RouteUpdate{util::MustParsePrefix("0.0.0.0/0"), true,
                                Route{}});
  std::vector<uint8_t> bytes;
  SerializeRoutes(updates, bytes);
  auto decoded = DeserializeRoutes(bytes);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_FALSE(decoded[0].withdraw);
  EXPECT_EQ(decoded[0].route, r);
  EXPECT_TRUE(decoded[1].withdraw);
  EXPECT_EQ(decoded[1].prefix, util::MustParsePrefix("0.0.0.0/0"));
}

TEST(RouteSerializationTest, EmptyBatch) {
  std::vector<uint8_t> bytes;
  SerializeRoutes({}, bytes);
  EXPECT_TRUE(DeserializeRoutes(bytes).empty());
}

TEST(RouteTest, EstimateBytesGrowsWithAttributes) {
  Route small = BaseRoute();
  small.as_path.clear();
  small.communities.clear();
  Route big = BaseRoute();
  for (uint32_t i = 0; i < 10; ++i) big.AddCommunity(i);
  EXPECT_GT(big.EstimateBytes(), small.EstimateBytes());
}

}  // namespace
}  // namespace s2::cp
