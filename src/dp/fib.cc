#include "dp/fib.h"

#include <algorithm>

namespace s2::dp {

namespace {

FibAction ClassifyLocal(const config::ViConfig& config,
                        const util::Ipv4Prefix& prefix) {
  for (const util::Ipv4Prefix& network : config.bgp.networks) {
    if (network == prefix) return FibAction::kArrive;
  }
  for (const config::BgpCondAdv& cond : config.bgp.cond_advs) {
    if (cond.advertise == prefix) return FibAction::kExit;
  }
  for (const config::BgpAggregate& agg : config.bgp.aggregates) {
    if (agg.prefix == prefix) return FibAction::kDiscard;
  }
  return FibAction::kArrive;  // OSPF loopback / connected
}

}  // namespace

size_t Fib::EstimateBytes() const {
  size_t bytes = 0;
  for (const FibEntry& entry : entries) bytes += entry.EstimateBytes();
  return bytes;
}

std::vector<std::pair<util::Ipv4Prefix, topo::NodeId>> Fib::ForwardEdges()
    const {
  std::vector<std::pair<util::Ipv4Prefix, topo::NodeId>> edges;
  for (const FibEntry& entry : entries) {
    if (entry.action != FibAction::kForward) continue;
    for (topo::NodeId next : entry.next_hops) {
      edges.emplace_back(entry.prefix, next);
    }
  }
  return edges;
}

Fib Fib::Build(
    const config::ParsedNetwork& network, topo::NodeId self,
    const std::map<util::Ipv4Prefix, std::vector<cp::Route>>& bgp,
    const std::map<util::Ipv4Prefix, std::vector<cp::Route>>& ospf,
    util::MemoryTracker* tracker) {
  const config::ViConfig& config = network.configs[self];

  // Merge protocols by admin distance per prefix.
  std::map<util::Ipv4Prefix, const std::vector<cp::Route>*> chosen;
  for (const auto& [prefix, routes] : bgp) chosen[prefix] = &routes;
  for (const auto& [prefix, routes] : ospf) {
    auto it = chosen.find(prefix);
    if (it == chosen.end() ||
        cp::AdminDistance(routes.front().protocol) <
            cp::AdminDistance(it->second->front().protocol)) {
      chosen[prefix] = &routes;
    }
  }

  Fib fib;
  bool have_loopback = false;
  for (const auto& [prefix, routes] : chosen) {
    FibEntry entry;
    entry.prefix = prefix;
    if (routes->front().learned_from == topo::kInvalidNode) {
      entry.action = ClassifyLocal(config, prefix);
    } else {
      entry.action = FibAction::kForward;
      for (const cp::Route& route : *routes) {
        if (std::find(entry.next_hops.begin(), entry.next_hops.end(),
                      route.learned_from) == entry.next_hops.end()) {
          entry.next_hops.push_back(route.learned_from);
        }
      }
    }
    if (prefix == config.loopback) have_loopback = true;
    fib.entries.push_back(std::move(entry));
  }
  if (!have_loopback) {
    fib.entries.push_back(FibEntry{config.loopback, FibAction::kArrive, {}});
  }

  std::sort(fib.entries.begin(), fib.entries.end(),
            [](const FibEntry& a, const FibEntry& b) {
              if (a.prefix.length() != b.prefix.length()) {
                return a.prefix.length() > b.prefix.length();
              }
              return a.prefix < b.prefix;
            });
  if (tracker) tracker->Charge(fib.EstimateBytes());
  return fib;
}

}  // namespace s2::dp
