// The switch model — the paper's "real node".
//
// A Node wraps one device's VI configuration and simulates its route
// computation through synchronous rounds:
//
//   phase A  ComputeRound(): refresh origination (aggregates and
//            conditional advertisements can (de)activate as the RIB
//            evolves), recompute best routes for dirty prefixes, and fill
//            per-neighbor outboxes with export deltas;
//   phase B  neighbors pull with TakeUpdatesFor() (paper Alg. 1
//            ExchangeRoutes) and merge with ReceiveUpdates().
//
// The same class runs unmodified under the monolithic engine (cp/engine)
// and inside distributed workers (dist/worker); remote neighbors pull via
// shadow nodes + sidecars without this class knowing — the decoupling the
// paper gets by sub-classing Batfish's node (§3.1/§4.2).
#pragma once

#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "config/parser.h"
#include "cp/bgp.h"
#include "cp/rib.h"

namespace s2::cp {

// The set of prefixes active in the current shard round; null = all.
using PrefixSet = std::unordered_set<util::Ipv4Prefix>;

class Node {
 public:
  // `network`, `tracker` and `pool` must outlive the node. Tracker and
  // pool are the owning domain's (worker or monolithic process): every
  // route the node holds is charged to the tracker, every attribute tuple
  // it creates is interned in the pool.
  Node(topo::NodeId id, const config::ParsedNetwork& network,
       util::MemoryTracker* tracker, AttrPool* pool);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  topo::NodeId id() const { return id_; }
  const config::ViConfig& config() const { return network_->configs[id_]; }

  // A resolved BGP session: the config entry plus the peer's device id.
  struct Session {
    const config::BgpNeighbor* neighbor = nullptr;
    topo::NodeId peer = topo::kInvalidNode;
  };
  const std::vector<Session>& sessions() const { return sessions_; }

  // ------------------------------------------------------------ lifecycle
  enum class Pass { kIdle, kOspf, kBgp };

  // Starts an OSPF pass (no-op producing no work if OSPF is disabled).
  void BeginOspf();

  // Starts a BGP pass restricted to `shard` (null = every prefix).
  // Requires any OSPF pass to have been finished (FinishOspf).
  void BeginBgp(const PrefixSet* shard);

  // Saves the OSPF results for redistribution/FIB and frees the working
  // RIB.
  void FinishOspf();

  // Spills the converged BGP shard results to `store` and frees the
  // working RIB (the §4.5 end-of-round write to persistent storage).
  void SpillBgp(RibStore& store, int shard);

  // Keeps the converged BGP results in memory (no-sharding mode): moves
  // them into the accumulated result map.
  void RetainBgp();

  // ----------------------------------------------------------- the round
  // Phase A. Returns true if any update was produced (the node has not
  // yet converged this round).
  bool ComputeRound();

  // Phase B pull interface: drains updates addressed to `neighbor`.
  std::vector<RouteUpdate> TakeUpdatesFor(topo::NodeId neighbor);

  // Phase B merge of updates pulled from `from`.
  void ReceiveUpdates(topo::NodeId from, const std::vector<RouteUpdate>&
                                             updates);

  // ------------------------------------------------------------- results
  // OSPF best routes (after FinishOspf).
  const std::map<util::Ipv4Prefix, std::vector<Route>>& ospf_routes() const {
    return ospf_results_;
  }
  // BGP best routes accumulated by RetainBgp (no-sharding mode).
  const std::map<util::Ipv4Prefix, std::vector<Route>>& bgp_routes() const {
    return bgp_results_;
  }
  // The live working RIB (tests / diagnostics).
  const Rib& rib() const { return rib_; }

  // ------------------------------------------------ checkpoint (src/fault)
  // Serializes the full control-plane state (pass, working RIB including
  // dirty marks, accumulated OSPF/BGP results) with the cp/route.cc wire
  // format. Taken at phase barriers, where outboxes are always empty.
  void SerializeState(std::vector<uint8_t>& out) const;

  // Restores SerializeState bytes into a freshly constructed node. `shard`
  // must be the prefix shard that was active when the checkpoint was taken
  // (null for OSPF / unsharded / idle).
  void RestoreState(const std::vector<uint8_t>& bytes, const PrefixSet* shard);

 private:
  void OriginateStatic();      // network statements + redistribution
  void RefreshConditional();   // aggregates + conditional advertisements
  void ChargeResult(const Route& route);
  void ReleaseResults(std::map<util::Ipv4Prefix, std::vector<Route>>&
                          results);
  bool InShard(const util::Ipv4Prefix& prefix) const {
    return shard_ == nullptr || shard_->count(prefix) != 0;
  }

  topo::NodeId id_;
  const config::ParsedNetwork* network_;
  util::MemoryTracker* tracker_;
  AttrPool* pool_;
  std::vector<Session> sessions_;

  Pass pass_ = Pass::kIdle;
  const PrefixSet* shard_ = nullptr;
  Rib rib_;
  std::map<topo::NodeId, std::vector<RouteUpdate>> outbox_;

  std::map<util::Ipv4Prefix, std::vector<Route>> ospf_results_;
  std::map<util::Ipv4Prefix, std::vector<Route>> bgp_results_;
};

}  // namespace s2::cp
