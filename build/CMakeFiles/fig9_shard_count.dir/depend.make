# Empty dependencies file for fig9_shard_count.
# This may be replaced when dependencies are built.
