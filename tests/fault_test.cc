// Fault subsystem unit tests: injector determinism, the reliable-delivery
// protocol (exactly-once, in-order under drop/duplicate/reorder/delay),
// and the checkpoint serializers recovery is built on.
#include <gtest/gtest.h>

#include <tuple>

#include "bdd/bdd.h"
#include "cp/rib.h"
#include "fault/checkpoint.h"
#include "fault/injector.h"
#include "fault/reliable.h"

namespace s2::fault {
namespace {

// ------------------------------------------------------------- injector

FaultPlan LossyPlan(uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.default_link.drop = 0.3;
  plan.default_link.duplicate = 0.2;
  plan.default_link.reorder = 0.2;
  plan.default_link.max_delay_rounds = 2;
  return plan;
}

std::tuple<bool, bool, bool, int, int> FateTuple(const FrameFate& fate) {
  return {fate.drop, fate.duplicate, fate.reorder, fate.delay_rounds,
          fate.duplicate_delay_rounds};
}

TEST(FaultInjectorTest, ClassifyIsPureAndSeeded) {
  FaultInjector a(LossyPlan(42));
  FaultInjector b(LossyPlan(42));
  FaultInjector c(LossyPlan(43));
  bool any_difference = false;
  for (uint64_t seq = 1; seq <= 200; ++seq) {
    FrameFate fa = a.Classify(0, 1, seq, 0);
    EXPECT_EQ(FateTuple(fa), FateTuple(a.Classify(0, 1, seq, 0)));
    EXPECT_EQ(FateTuple(fa), FateTuple(b.Classify(0, 1, seq, 0)));
    if (FateTuple(fa) != FateTuple(c.Classify(0, 1, seq, 0))) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);  // the seed actually matters
}

TEST(FaultInjectorTest, RetransmitAttemptsRollFreshDice) {
  // With drop = 0.5, some attempt of every frame must survive within a
  // handful of retries — attempts are independent coin flips, so a frame
  // cannot be doomed forever.
  FaultPlan plan;
  plan.seed = 7;
  plan.default_link.drop = 0.5;
  FaultInjector injector(plan);
  for (uint64_t seq = 1; seq <= 100; ++seq) {
    bool survived = false;
    for (uint32_t attempt = 0; attempt < 32 && !survived; ++attempt) {
      survived = !injector.Classify(0, 1, seq, attempt).drop;
    }
    EXPECT_TRUE(survived) << "seq " << seq;
  }
}

TEST(FaultInjectorTest, ZeroPlanNeverFaults) {
  FaultInjector injector(FaultPlan{});
  for (uint64_t seq = 1; seq <= 50; ++seq) {
    FrameFate fate = injector.Classify(2, 3, seq, 0);
    EXPECT_FALSE(fate.drop);
    EXPECT_FALSE(fate.duplicate);
    EXPECT_FALSE(fate.reorder);
    EXPECT_EQ(fate.delay_rounds, 0);
  }
}

TEST(FaultInjectorTest, PerLinkOverridesDefault) {
  FaultPlan plan;
  plan.default_link.drop = 1.0;
  plan.per_link[{0, 1}] = LinkFaults{};  // this link is perfect
  FaultInjector injector(plan);
  EXPECT_FALSE(injector.Classify(0, 1, 1, 0).drop);
  EXPECT_TRUE(injector.Classify(1, 0, 1, 0).drop);
}

TEST(FaultInjectorTest, CrashesFireOnceAtOrPastTheirRound) {
  FaultPlan plan;
  plan.crashes.push_back({CrashPhase::kControlPlaneRound, 3, 1});
  plan.crashes.push_back({CrashPhase::kControlPlaneRound, 5, 2});
  plan.crashes.push_back({CrashPhase::kDataPlaneBuild, 0, 0});
  FaultInjector injector(plan);

  EXPECT_TRUE(injector.TakeCrashes(CrashPhase::kControlPlaneRound, 2).empty());
  EXPECT_EQ(injector.TakeCrashes(CrashPhase::kControlPlaneRound, 3),
            (std::vector<uint32_t>{1}));
  // Already fired: not returned again.
  EXPECT_TRUE(injector.TakeCrashes(CrashPhase::kControlPlaneRound, 3).empty());
  // A barrier past the scheduled round still fires the event (fault-induced
  // retransmit rounds shift convergence, so exact matches would be brittle).
  EXPECT_EQ(injector.TakeCrashes(CrashPhase::kControlPlaneRound, 9),
            (std::vector<uint32_t>{2}));
  EXPECT_EQ(injector.TakeCrashes(CrashPhase::kDataPlaneBuild, 0),
            (std::vector<uint32_t>{0}));
  EXPECT_EQ(injector.crashes_fired(), 3u);
}

// ------------------------------------------------------------ transport

dist::Message Msg(uint8_t tag) {
  dist::Message m;
  m.to_node = tag;
  m.payload = {tag};
  return m;
}

// Drains every worker once per round until quiescent; returns the messages
// worker `watch` received, in delivery order.
std::vector<dist::Message> DriveToQuiescence(ReliableTransport& transport,
                                             uint32_t num_workers,
                                             uint32_t watch,
                                             int max_rounds = 500) {
  std::vector<dist::Message> delivered;
  for (int round = 0; round < max_rounds; ++round) {
    for (uint32_t w = 0; w < num_workers; ++w) {
      auto batch = transport.Drain(w);
      if (w == watch) {
        delivered.insert(delivered.end(), batch.begin(), batch.end());
      }
    }
    if (!transport.HasPending()) break;
  }
  return delivered;
}

TEST(ReliableTransportTest, ZeroFaultDeliveryIsInOrderAndQuiescent) {
  ReliableTransport transport(2, FaultPlan{}, nullptr, false);
  for (uint8_t i = 0; i < 20; ++i) transport.Ship(0, 1, Msg(i));
  auto delivered = DriveToQuiescence(transport, 2, 1);
  ASSERT_EQ(delivered.size(), 20u);
  for (uint8_t i = 0; i < 20; ++i) EXPECT_EQ(delivered[i].payload[0], i);
  EXPECT_FALSE(transport.HasPending());
  EXPECT_EQ(transport.stats().retransmits, 0u);
  EXPECT_EQ(transport.stats().dropped, 0u);
  EXPECT_EQ(transport.stats().data_frames, 20u);
}

TEST(ReliableTransportTest, ExactlyOnceInOrderUnderHeavyFaults) {
  FaultPlan plan = LossyPlan(99);
  FaultInjector injector(plan);
  ReliableTransport transport(3, plan, &injector, false);
  constexpr int kCount = 60;
  for (int i = 0; i < kCount; ++i) {
    transport.Ship(0, 1, Msg(static_cast<uint8_t>(i)));
    transport.Ship(2, 1, Msg(static_cast<uint8_t>(100 + i)));
  }
  auto delivered = DriveToQuiescence(transport, 3, 1);
  EXPECT_FALSE(transport.HasPending());

  // Exactly once, in order, per channel.
  std::vector<uint8_t> from0, from2;
  for (const auto& m : delivered) {
    (m.payload[0] < 100 ? from0 : from2).push_back(m.payload[0]);
  }
  ASSERT_EQ(from0.size(), size_t(kCount));
  ASSERT_EQ(from2.size(), size_t(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(from0[i], i);
    EXPECT_EQ(from2[i], 100 + i);
  }
  // The plan is lossy enough that the protocol actually worked for a living.
  EXPECT_GT(transport.stats().dropped, 0u);
  EXPECT_GT(transport.stats().retransmits, 0u);
  EXPECT_GT(transport.stats().duplicates_suppressed, 0u);
}

TEST(ReliableTransportTest, IdenticalRunsProduceIdenticalStats) {
  auto run = [] {
    FaultPlan plan = LossyPlan(1234);
    FaultInjector injector(plan);
    ReliableTransport transport(2, plan, &injector, false);
    for (int i = 0; i < 40; ++i) {
      transport.Ship(0, 1, Msg(static_cast<uint8_t>(i)));
      transport.Ship(1, 0, Msg(static_cast<uint8_t>(i)));
    }
    DriveToQuiescence(transport, 2, 0);
    const auto& s = transport.stats();
    return std::tuple(s.data_frames, s.retransmits, s.acks, s.wire_bytes,
                      s.dropped, s.duplicated, s.delayed, s.reordered,
                      s.duplicates_suppressed, s.out_of_order);
  };
  EXPECT_EQ(run(), run());
}

TEST(ReliableTransportTest, ReplayLogRecordsDeliveriesUntilCheckpoint) {
  ReliableTransport transport(2, FaultPlan{}, nullptr,
                              /*keep_replay_log=*/true);
  transport.Ship(0, 1, Msg(1));
  transport.Ship(0, 1, Msg(2));
  DriveToQuiescence(transport, 2, 1);
  auto log = transport.ReplayLog(1);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].message.payload[0], 1);
  EXPECT_EQ(log[1].message.payload[0], 2);
  EXPECT_GE(log[0].round, 0);
  transport.MarkCheckpoint(1);
  EXPECT_TRUE(transport.ReplayLog(1).empty());
  // Later deliveries accumulate again.
  transport.Ship(0, 1, Msg(3));
  DriveToQuiescence(transport, 2, 1);
  ASSERT_EQ(transport.ReplayLog(1).size(), 1u);
}

TEST(ReliableTransportTest, TracksMaxQueueDepth) {
  ReliableTransport transport(2, FaultPlan{}, nullptr, false);
  for (uint8_t i = 0; i < 5; ++i) transport.Ship(0, 1, Msg(i));
  EXPECT_GE(transport.MaxQueueDepth(1), 5u);
  DriveToQuiescence(transport, 2, 1);
  EXPECT_EQ(transport.QueueDepth(1), 0u);
  EXPECT_GE(transport.MaxQueueDepth(1), 5u);  // high-water sticks
}

// ----------------------------------------------------------- checkpoints

cp::AttrPool& TestPool() {
  static cp::AttrPool* pool = new cp::AttrPool();
  return *pool;
}

cp::Route MakeRoute(const std::string& prefix, uint32_t local_pref,
                    size_t path_len, topo::NodeId from) {
  cp::Route r;
  r.prefix = util::MustParsePrefix(prefix);
  r.protocol = cp::Protocol::kBgp;
  cp::AttrTuple tuple;
  tuple.local_pref = local_pref;
  tuple.as_path.assign(path_len, 65000);
  r.attrs = TestPool().Intern(std::move(tuple));
  r.learned_from = from;
  r.origin_node = from;
  return r;
}

// Snapshots a RIB the way node checkpoints do: attribute table first,
// then the route sections referencing it.
std::vector<uint8_t> SnapshotRib(const cp::Rib& rib) {
  cp::AttrTableBuilder builder;
  std::vector<uint8_t> body;
  rib.SerializeState(body, builder);
  std::vector<uint8_t> bytes;
  builder.Serialize(bytes);
  bytes.insert(bytes.end(), body.begin(), body.end());
  return bytes;
}

TEST(CheckpointTest, RibStateRoundTripsExactly) {
  cp::Rib rib(nullptr);
  rib.Upsert(1, MakeRoute("10.0.0.0/24", 100, 3, 1));
  rib.Upsert(2, MakeRoute("10.0.0.0/24", 200, 5, 2));
  rib.Upsert(1, MakeRoute("10.0.1.0/24", 100, 2, 1));
  rib.RecomputeDirty(4);
  // Leave a pending (dirty, not yet recomputed) withdrawal in the snapshot:
  // the exact situation where restoring candidates alone would lose the
  // withdrawal the replay must re-emit.
  rib.Withdraw(1, util::MustParsePrefix("10.0.1.0/24"));

  std::vector<uint8_t> bytes = SnapshotRib(rib);

  cp::Rib restored(nullptr);
  size_t pos = 0;
  cp::AttrTable table = cp::AttrTable::Read(bytes, pos, TestPool());
  restored.RestoreState(bytes, pos, table);
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(restored.candidates(), rib.candidates());
  EXPECT_EQ(restored.all_best(), rib.all_best());
  EXPECT_EQ(restored.candidate_count(), rib.candidate_count());

  // The dirty set came along: both emit the same recompute delta.
  auto changed_original = rib.RecomputeDirty(4);
  auto changed_restored = restored.RecomputeDirty(4);
  EXPECT_EQ(changed_original, changed_restored);
  ASSERT_EQ(changed_restored.size(), 1u);
  EXPECT_EQ(changed_restored[0], util::MustParsePrefix("10.0.1.0/24"));

  // And re-serializing yields byte-identical state.
  EXPECT_EQ(SnapshotRib(rib), SnapshotRib(restored));
}

TEST(CheckpointTest, RoutesSectionEmbedsInCompositeBuffers) {
  std::vector<cp::RouteUpdate> updates(2);
  updates[0].prefix = util::MustParsePrefix("10.0.0.0/24");
  updates[0].route = MakeRoute("10.0.0.0/24", 100, 2, 3);
  updates[1].prefix = util::MustParsePrefix("10.0.1.0/24");
  updates[1].withdraw = true;
  // Composite layout: attribute table up front, sections and plain fields
  // interleaved after it.
  cp::AttrTableBuilder builder;
  std::vector<uint8_t> body;
  cp::PutWireU32(body, 7);  // leading field
  cp::PutRoutesSection(body, updates, builder);
  cp::PutWireU32(body, 9);  // trailing field survives the section read
  std::vector<uint8_t> out;
  builder.Serialize(out);
  out.insert(out.end(), body.begin(), body.end());
  size_t pos = 0;
  cp::AttrTable table = cp::AttrTable::Read(out, pos, TestPool());
  EXPECT_EQ(cp::GetWireU32(out, pos), 7u);
  auto round_trip = cp::GetRoutesSection(out, pos, table);
  ASSERT_EQ(round_trip.size(), 2u);
  EXPECT_EQ(round_trip[0].route, updates[0].route);
  EXPECT_TRUE(round_trip[1].withdraw);
  EXPECT_EQ(cp::GetWireU32(out, pos), 9u);
  EXPECT_EQ(pos, out.size());
}

TEST(CheckpointTest, PredicatesRoundTripAcrossManagers) {
  bdd::Manager source(8);
  dp::NodePredicates preds;
  preds.arrive = source.Var(0) & source.Var(1);
  preds.exit = source.Var(2) | source.NotVar(3);
  preds.discard = !preds.arrive;
  preds.forward[4] = source.Var(4) ^ source.Var(5);
  preds.forward[9] = source.NotVar(6);
  preds.acl_in[4] = source.One();
  preds.acl_out[9] = source.Var(7);

  std::vector<uint8_t> bytes = SerializePredicates(preds);

  bdd::Manager target(8);
  dp::NodePredicates restored = DeserializePredicates(target, bytes);
  // bdd_io's encoding is structural, so re-serialized bytes are equal iff
  // the Boolean functions are — the property chaos tests lean on to compare
  // FIB semantics across runs.
  EXPECT_EQ(SerializePredicates(restored), bytes);
  ASSERT_EQ(restored.forward.size(), 2u);
  EXPECT_EQ(restored.forward.at(4),
            target.Var(4) ^ target.Var(5));
  EXPECT_EQ(restored.arrive, target.Var(0) & target.Var(1));
  EXPECT_EQ(restored.acl_in.at(4), target.One());
}

TEST(CheckpointTest, TotalBytesSumsSections) {
  WorkerCheckpoint checkpoint;
  checkpoint.node_state[1] = std::vector<uint8_t>(10);
  checkpoint.node_state[2] = std::vector<uint8_t>(20);
  checkpoint.predicate_state[1] = std::vector<uint8_t>(5);
  EXPECT_EQ(checkpoint.TotalBytes(), 35u);
}

}  // namespace
}  // namespace s2::fault
