#include "cp/rib.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace s2::cp {

void Rib::ChargeRoute(const Route& route) {
  // Amortized accounting: the copy's fixed footprint only — the shared
  // tuple bytes are charged once by the AttrPool on first intern. The
  // pool's shadow counters track what the pre-flyweight layout would
  // have charged (DESIGN.md §4).
  if (tracker_) tracker_->Charge(route.UniqueBytes());
  if (pool_) pool_->ChargePlain(route.PlainBytes());
}

void Rib::ReleaseRoute(const Route& route) {
  if (tracker_) tracker_->Release(route.UniqueBytes());
  if (pool_) pool_->ReleasePlain(route.PlainBytes());
}

void Rib::Upsert(topo::NodeId from, const Route& route) {
  auto& per_neighbor = candidates_[route.prefix];
  auto it = per_neighbor.find(from);
  if (it != per_neighbor.end() && it->second == route) return;  // unchanged
  // Charge before mutating: a SimulatedOom mid-upsert must leave the maps
  // and the accounting consistent, or Clear() releases bytes that were
  // never charged (caught by the assertions CI leg).
  ChargeRoute(route);
  if (it != per_neighbor.end()) {
    ReleaseRoute(it->second);
    it->second = route;
  } else {
    per_neighbor.emplace(from, route);
    ++candidate_count_;
  }
  dirty_.insert(route.prefix);
}

void Rib::Withdraw(topo::NodeId from, const util::Ipv4Prefix& prefix) {
  auto it = candidates_.find(prefix);
  if (it == candidates_.end()) return;
  auto candidate = it->second.find(from);
  if (candidate == it->second.end()) return;
  ReleaseRoute(candidate->second);
  it->second.erase(candidate);
  --candidate_count_;
  if (it->second.empty()) candidates_.erase(it);
  dirty_.insert(prefix);
}

std::vector<util::Ipv4Prefix> Rib::RecomputeDirty(int max_paths) {
  std::vector<util::Ipv4Prefix> changed;
  for (const util::Ipv4Prefix& prefix : dirty_) {
    std::vector<Route> selected;
    auto it = candidates_.find(prefix);
    if (it != candidates_.end() && !it->second.empty()) {
      // Deterministic order: gather and sort by the full decision process.
      std::vector<const Route*> all;
      all.reserve(it->second.size());
      for (const auto& [from, route] : it->second) all.push_back(&route);
      std::sort(all.begin(), all.end(), [](const Route* a, const Route* b) {
        return BetterRoute(*a, *b);
      });
      selected.push_back(*all[0]);
      for (size_t i = 1;
           i < all.size() && selected.size() < size_t(max_paths); ++i) {
        if (EcmpEquivalent(*all[i], *all[0])) selected.push_back(*all[i]);
      }
    }
    auto best_it = best_.find(prefix);
    const bool had = best_it != best_.end();
    if (selected.empty()) {
      if (had) {
        for (const Route& r : best_it->second) ReleaseRoute(r);
        best_.erase(best_it);
        changed.push_back(prefix);
      }
    } else if (!had || best_it->second != selected) {
      // Charge the new set before releasing the old: on SimulatedOom the
      // partial charges are rolled back and best_ is untouched.
      size_t charged = 0;
      try {
        for (; charged < selected.size(); ++charged) {
          ChargeRoute(selected[charged]);
        }
      } catch (...) {
        for (size_t i = 0; i < charged; ++i) ReleaseRoute(selected[i]);
        throw;
      }
      if (had) {
        for (const Route& r : best_it->second) ReleaseRoute(r);
      }
      best_[prefix] = std::move(selected);
      changed.push_back(prefix);
    }
  }
  dirty_.clear();
  // Sort for determinism: callers iterate this to build exports.
  std::sort(changed.begin(), changed.end());
  return changed;
}

const std::vector<Route>* Rib::Best(const util::Ipv4Prefix& prefix) const {
  auto it = best_.find(prefix);
  return it == best_.end() ? nullptr : &it->second;
}

bool Rib::HasContributor(const util::Ipv4Prefix& prefix) const {
  // best_ is ordered by (address, length); covered prefixes sort at or
  // after the aggregate's own position.
  for (auto it = best_.lower_bound(prefix); it != best_.end(); ++it) {
    if (!prefix.Contains(it->first)) {
      if (it->first.address().bits() > (prefix.address().bits() |
                                        ~prefix.Mask())) {
        break;  // past the covered address range
      }
      continue;
    }
    if (it->first != prefix) return true;
  }
  return false;
}

void Rib::SerializeState(std::vector<uint8_t>& out,
                         AttrTableBuilder& table) const {
  // Candidates, grouped by contributing neighbor (map order on both levels
  // keeps the bytes deterministic).
  std::map<topo::NodeId, std::vector<RouteUpdate>> by_neighbor;
  for (const auto& [prefix, per_neighbor] : candidates_) {
    for (const auto& [from, route] : per_neighbor) {
      by_neighbor[from].push_back(RouteUpdate{prefix, false, route});
    }
  }
  PutWireU32(out, static_cast<uint32_t>(by_neighbor.size()));
  for (const auto& [from, updates] : by_neighbor) {
    PutWireU32(out, from);
    PutRoutesSection(out, updates, table);
  }
  // Best/ECMP sets, flattened in (prefix, rank) order.
  std::vector<RouteUpdate> best;
  for (const auto& [prefix, routes] : best_) {
    for (const Route& route : routes) {
      best.push_back(RouteUpdate{prefix, false, route});
    }
  }
  PutRoutesSection(out, best, table);
  // Dirty prefixes, encoded as withdraw entries (sorted: the set itself is
  // unordered and checkpoint bytes should not depend on hashing).
  std::vector<util::Ipv4Prefix> dirty(dirty_.begin(), dirty_.end());
  std::sort(dirty.begin(), dirty.end());
  std::vector<RouteUpdate> marks;
  marks.reserve(dirty.size());
  for (const util::Ipv4Prefix& prefix : dirty) {
    marks.push_back(RouteUpdate{prefix, true, Route{}});
  }
  PutRoutesSection(out, marks, table);
}

void Rib::RestoreState(const std::vector<uint8_t>& bytes, size_t& pos,
                       const AttrTable& table) {
  uint32_t groups = GetWireU32(bytes, pos);
  for (uint32_t g = 0; g < groups; ++g) {
    topo::NodeId from = GetWireU32(bytes, pos);
    for (RouteUpdate& update : GetRoutesSection(bytes, pos, table)) {
      ChargeRoute(update.route);
      candidates_[update.prefix].emplace(from, std::move(update.route));
      ++candidate_count_;
    }
  }
  for (RouteUpdate& update : GetRoutesSection(bytes, pos, table)) {
    ChargeRoute(update.route);
    best_[update.prefix].push_back(std::move(update.route));
  }
  for (const RouteUpdate& update : GetRoutesSection(bytes, pos, table)) {
    dirty_.insert(update.prefix);
  }
}

void Rib::Clear() {
  if (tracker_) {
    for (const auto& [prefix, per_neighbor] : candidates_) {
      for (const auto& [from, route] : per_neighbor) ReleaseRoute(route);
    }
    for (const auto& [prefix, routes] : best_) {
      for (const Route& r : routes) ReleaseRoute(r);
    }
  }
  candidates_.clear();
  best_.clear();
  dirty_.clear();
  candidate_count_ = 0;
}

// ------------------------------------------------------------- RibStore

RibStore::RibStore() {
  static std::atomic<uint64_t> counter{0};
  dir_ = std::filesystem::temp_directory_path() /
         ("s2-ribstore-" + std::to_string(::getpid()) + "-" +
          std::to_string(counter.fetch_add(1)));
  std::filesystem::create_directories(dir_);
}

RibStore::~RibStore() {
  std::error_code ec;
  std::filesystem::remove_all(dir_, ec);
}

void RibStore::Write(
    int shard, topo::NodeId node,
    const std::map<util::Ipv4Prefix, std::vector<Route>>& best,
    AttrPool* stats_pool) {
  std::vector<RouteUpdate> updates;
  for (const auto& [prefix, routes] : best) {
    for (const Route& route : routes) {
      updates.push_back(RouteUpdate{prefix, false, route});
    }
  }
  std::vector<uint8_t> bytes;
  SerializeRoutes(updates, bytes, stats_pool);
  auto path = dir_ / (std::to_string(shard) + "-" + std::to_string(node) +
                      ".rib");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) std::abort();  // disk trouble is not a recoverable verdict
  std::lock_guard<std::mutex> lock(mutex_);
  bytes_written_ += bytes.size();
  routes_written_ += updates.size();
  entries_.emplace_back(shard, node);
}

std::map<util::Ipv4Prefix, std::vector<Route>> RibStore::ReadAll(
    topo::NodeId node, AttrPool& pool) const {
  std::map<util::Ipv4Prefix, std::vector<Route>> merged;
  std::vector<std::pair<int, topo::NodeId>> entries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries = entries_;
  }
  // Shards hold disjoint prefixes, so each merged[prefix] is filled from a
  // single file and the entry order cannot change the result.
  for (const auto& [shard, entry_node] : entries) {
    if (entry_node != node) continue;
    auto path = dir_ / (std::to_string(shard) + "-" +
                        std::to_string(entry_node) + ".rib");
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) std::abort();
    std::vector<uint8_t> bytes(static_cast<size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    for (RouteUpdate& update : DeserializeRoutes(bytes, pool)) {
      merged[update.prefix].push_back(std::move(update.route));
    }
  }
  return merged;
}

}  // namespace s2::cp
