
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bonsai.cc" "src/CMakeFiles/s2_core.dir/core/bonsai.cc.o" "gcc" "src/CMakeFiles/s2_core.dir/core/bonsai.cc.o.d"
  "/root/repo/src/core/mono.cc" "src/CMakeFiles/s2_core.dir/core/mono.cc.o" "gcc" "src/CMakeFiles/s2_core.dir/core/mono.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/s2_core.dir/core/report.cc.o" "gcc" "src/CMakeFiles/s2_core.dir/core/report.cc.o.d"
  "/root/repo/src/core/results.cc" "src/CMakeFiles/s2_core.dir/core/results.cc.o" "gcc" "src/CMakeFiles/s2_core.dir/core/results.cc.o.d"
  "/root/repo/src/core/s2.cc" "src/CMakeFiles/s2_core.dir/core/s2.cc.o" "gcc" "src/CMakeFiles/s2_core.dir/core/s2.cc.o.d"
  "/root/repo/src/core/whatif.cc" "src/CMakeFiles/s2_core.dir/core/whatif.cc.o" "gcc" "src/CMakeFiles/s2_core.dir/core/whatif.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s2_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s2_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s2_cp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s2_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s2_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s2_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s2_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
