#include "cp/ospf.h"

namespace s2::cp {

Route OspfOriginate(const util::Ipv4Prefix& prefix, topo::NodeId node) {
  Route route;
  route.prefix = prefix;
  route.protocol = Protocol::kOspf;
  route.metric = 0;
  route.origin_node = node;
  route.learned_from = topo::kInvalidNode;
  return route;
}

Route OspfExport(const Route& best) {
  Route route = best;
  route.metric += 1;
  return route;
}

}  // namespace s2::cp
