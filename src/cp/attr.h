// Hash-consed route attributes (flyweight pattern).
//
// In a Clos DCN the universe of distinct BGP attribute tuples —
// (local_pref, med, origin, as_path, communities) — is tiny relative to
// the route count (per-layer ASNs and a handful of community tags, §2.3),
// while routes are what scale to the hundreds of millions the paper's
// per-worker accounting is about (§4.5). AttrPool interns each distinct
// tuple once per verifier domain (monolithic engine or worker) and hands
// out refcounted AttrHandle flyweights; cp::Route holds a handle instead
// of owned vectors, so candidate tables, best/ECMP sets and result maps
// share one copy of each attribute tuple instead of deep-copying it.
// LIGHTYEAR and ACORN (PAPERS.md) exploit the same attribute-redundancy
// structure to scale BGP verification.
//
// Memory accounting is amortized to match: the pool charges its domain's
// MemoryTracker the full tuple bytes once per distinct live tuple
// (AttrTuple::SharedBytes, on first intern), every Route copy is charged
// only its fixed footprint (Route::UniqueBytes), and the tuple bytes are
// released when the last handle drops. The pool also keeps the
// pre-flyweight ("plain") accounting as shadow counters so benchmarks can
// report the reduction without re-running old code (DESIGN.md §4).
//
// Thread safety: handle copy is an atomic increment and non-final
// releases are an atomic CAS decrement; the decrement that could hit
// zero is performed under the pool mutex (AttrPool::ReleaseLast), in the
// same critical section as the eviction. Intern's bucket-hit increment
// takes the same mutex, so no thread can ever observe — let alone
// resurrect — a zero-reference entry.
//
// Determinism: intern order (and thus entry identity) depends on
// execution order, so identity is used only for equality fast paths and
// never for route ordering — BetterRoute falls back to attribute-value
// comparisons whenever two handles differ.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/memory_tracker.h"

namespace s2::cp {

class AttrPool;

// The interned value: every BGP attribute a route carries that is shared
// verbatim between copies. Provenance (origin_node, learned_from) and the
// OSPF metric stay inline in Route — they differ per copy.
struct AttrTuple {
  uint32_t local_pref = 100;
  uint32_t med = 0;
  uint8_t origin = 0;  // 0=IGP < 1=EGP < 2=incomplete
  std::vector<uint32_t> as_path;
  std::vector<uint32_t> communities;  // sorted, unique

  bool operator==(const AttrTuple&) const = default;

  bool HasCommunity(uint32_t community) const;
  void AddCommunity(uint32_t community);  // keeps the set sorted/unique

  // Bytes one distinct tuple is accounted as in MemoryTrackers: charged
  // once per live pool entry, not per route copy (DESIGN.md §4).
  size_t SharedBytes() const {
    return 48 + 4 * as_path.size() + 4 * communities.size();
  }

  size_t Hash() const;
};

// The tuple every default-constructed (null) handle dereferences to:
// local_pref 100, med 0, origin IGP, empty AS path, no communities.
const AttrTuple& DefaultAttrTuple();

namespace internal {
struct AttrEntry {
  AttrTuple tuple;
  std::atomic<uint64_t> refs{0};
  size_t hash = 0;
  // The owning pool, or null once the pool died with this entry still
  // referenced (the last handle then frees the entry itself).
  std::atomic<AttrPool*> pool{nullptr};
};
}  // namespace internal

// A refcounted flyweight reference to an interned tuple. Null handles are
// valid and denote the default tuple (the pool normalizes Intern of the
// default tuple to a null handle, so the dominant trivial tuple costs
// nothing). Handles may outlive their pool: the pool's destructor orphans
// still-referenced entries, and the last handle frees an orphaned entry —
// so Route remains value-semantic when results are copied out of an
// engine whose pool is then destroyed.
class AttrHandle {
 public:
  AttrHandle() = default;
  AttrHandle(const AttrHandle& other) : entry_(other.entry_) {
    if (entry_) entry_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  AttrHandle(AttrHandle&& other) noexcept : entry_(other.entry_) {
    other.entry_ = nullptr;
  }
  AttrHandle& operator=(AttrHandle other) noexcept {
    std::swap(entry_, other.entry_);
    return *this;
  }
  ~AttrHandle() { Reset(); }

  void Reset();

  bool null() const { return entry_ == nullptr; }

  const AttrTuple& get() const {
    return entry_ ? entry_->tuple : DefaultAttrTuple();
  }
  const AttrTuple& operator*() const { return get(); }
  const AttrTuple* operator->() const { return &get(); }

  // Same pool entry (or both null/default). An identity check only — a
  // valid fast path for equality and for skipping attribute comparisons,
  // never an ordering key (entry identity is intern-order dependent).
  bool SameEntry(const AttrHandle& other) const {
    return entry_ == other.entry_;
  }

  // The pool this handle's entry lives in; null for null handles and for
  // entries orphaned by pool destruction.
  AttrPool* pool() const {
    return entry_ ? entry_->pool.load(std::memory_order_acquire) : nullptr;
  }

  // Deep equality: identity fast path, then tuple value comparison. A
  // null handle compares equal to any handle holding the default tuple,
  // and handles from different pools compare by value.
  friend bool operator==(const AttrHandle& a, const AttrHandle& b) {
    return a.entry_ == b.entry_ || a.get() == b.get();
  }

 private:
  friend class AttrPool;
  explicit AttrHandle(internal::AttrEntry* entry) : entry_(entry) {}

  internal::AttrEntry* entry_ = nullptr;
};

// The per-domain hash-consing table.
class AttrPool {
 public:
  struct Stats {
    uint64_t hits = 0;       // Intern found an existing entry (or default)
    uint64_t misses = 0;     // Intern created a new entry
    uint64_t evictions = 0;  // entries freed on refcount zero
    size_t live_entries = 0;
    size_t peak_entries = 0;
    size_t shared_bytes = 0;  // live interned tuple bytes
    size_t peak_shared_bytes = 0;
    // Shadow pre-flyweight accounting (Route::PlainBytes per live copy).
    size_t plain_bytes = 0;
    size_t peak_plain_bytes = 0;
    // Wire attribute-table effect (SerializeRoutes batches).
    uint64_t wire_tuples_written = 0;
    uint64_t wire_tuples_reused = 0;
    uint64_t wire_bytes_saved = 0;

    // hits / (hits + misses); 0 when no interns happened.
    double DedupRatio() const;
  };

  // `tracker` (may be null) is charged SharedBytes per distinct live
  // tuple; it must outlive the pool. Handles may outlive the pool (their
  // entries are orphaned, see AttrHandle), but all interning must stop
  // before the pool is destroyed.
  explicit AttrPool(util::MemoryTracker* tracker = nullptr)
      : tracker_(tracker) {}
  ~AttrPool();

  AttrPool(const AttrPool&) = delete;
  AttrPool& operator=(const AttrPool&) = delete;

  // Interns `tuple`, returning a handle to the canonical copy. The
  // default tuple interns to a null handle (see AttrHandle).
  AttrHandle Intern(AttrTuple tuple);

  Stats stats() const;
  size_t live_entries() const;

  // Shadow accounting of what the pre-flyweight layout would have used
  // (callers mirror their UniqueBytes charges with PlainBytes here).
  void ChargePlain(size_t bytes);
  void ReleasePlain(size_t bytes);
  size_t plain_peak_bytes() const {
    return plain_peak_.load(std::memory_order_relaxed);
  }

  // Serializer feedback: `written` distinct tuples emitted into a batch's
  // attribute table, `reused` route references that shared one, `saved`
  // wire bytes relative to the inline-per-route encoding.
  void NoteWireSavings(uint64_t written, uint64_t reused, uint64_t saved);

 private:
  friend class AttrHandle;

  // Performs a decrement that may be the last (observed refcount 1) under
  // the intern lock, evicting the entry when it really hits zero.
  void ReleaseLast(internal::AttrEntry* entry);

  util::MemoryTracker* tracker_;
  mutable std::mutex mutex_;
  // Value hash -> entries with that hash (collisions resolved by deep
  // compare; buckets are tiny).
  std::unordered_map<size_t, std::vector<internal::AttrEntry*>> buckets_;

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  size_t live_entries_ = 0;
  size_t peak_entries_ = 0;
  size_t shared_bytes_ = 0;
  size_t peak_shared_bytes_ = 0;

  std::atomic<size_t> plain_live_{0};
  std::atomic<size_t> plain_peak_{0};
  std::atomic<uint64_t> wire_tuples_written_{0};
  std::atomic<uint64_t> wire_tuples_reused_{0};
  std::atomic<uint64_t> wire_bytes_saved_{0};
};

}  // namespace s2::cp
