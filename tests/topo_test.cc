// Topology synthesis tests: FatTree structure per the ACORN construction,
// DCN structure per the paper's §2.3 description, and link addressing.
#include <gtest/gtest.h>

#include <set>

#include "topo/dcn.h"
#include "topo/fattree.h"

namespace s2::topo {
namespace {

TEST(GraphTest, NodesEdgesAdjacency) {
  Graph g;
  NodeId a = g.AddNode(NodeInfo{"a", Role::kEdge, 0, 0, 1.0});
  NodeId b = g.AddNode(NodeInfo{"b", Role::kCore, 1, -1, 2.0});
  g.AddEdge(a, b);
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.neighbors(a), std::vector<NodeId>{b});
  EXPECT_EQ(g.neighbors(b), std::vector<NodeId>{a});
  EXPECT_EQ(g.FindByName("b"), b);
  EXPECT_EQ(g.FindByName("zzz"), kInvalidNode);
}

class FatTreeSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeSizeTest, StructureMatchesTheConstruction) {
  int k = GetParam();
  FatTreeParams params;
  params.k = k;
  Network net = MakeFatTree(params);
  // 5k^2/4 switches; k^3/2 + (k/2)^2 * k = (3/4)k^3... edges:
  // k pods x (k/2 edges x k/2 aggs) + (k/2 aggs x k/2 cores per pod).
  EXPECT_EQ(int(net.graph.size()), FatTreeSwitchCount(k));
  EXPECT_EQ(net.graph.edge_count(), size_t(k) * (k / 2) * (k / 2) * 2);

  int edges = 0, aggs = 0, cores = 0;
  for (NodeId id = 0; id < net.graph.size(); ++id) {
    switch (net.graph.node(id).role) {
      case Role::kEdge:
        ++edges;
        EXPECT_GE(net.graph.node(id).pod, 0);
        break;
      case Role::kAggregation:
        ++aggs;
        break;
      case Role::kCore:
        ++cores;
        EXPECT_EQ(net.graph.node(id).pod, -1);
        break;
      default:
        FAIL();
    }
    // Every switch has degree k/2 (edge: up only in this model) or k
    // (aggregation: k/2 down + k/2 up); cores have k.
    size_t degree = net.graph.neighbors(id).size();
    if (net.graph.node(id).role == Role::kAggregation) {
      EXPECT_EQ(degree, size_t(k));
    } else if (net.graph.node(id).role == Role::kCore) {
      EXPECT_EQ(degree, size_t(k));
    } else {
      EXPECT_EQ(degree, size_t(k) / 2);
    }
  }
  EXPECT_EQ(edges, k * k / 2);
  EXPECT_EQ(aggs, k * k / 2);
  EXPECT_EQ(cores, k * k / 4);
}

INSTANTIATE_TEST_SUITE_P(Ks, FatTreeSizeTest, ::testing::Values(2, 4, 6, 8));

TEST(FatTreeTest, UniqueAsnsAndPrefixes) {
  FatTreeParams params;
  params.k = 4;
  Network net = MakeFatTree(params);
  std::set<uint32_t> asns;
  std::set<util::Ipv4Prefix> announced;
  for (const NodeIntent& intent : net.intents) {
    EXPECT_TRUE(asns.insert(intent.asn).second) << "duplicate ASN";
    for (const auto& prefix : intent.announced) {
      EXPECT_TRUE(announced.insert(prefix).second)
          << "duplicate prefix " << prefix.ToString();
    }
  }
  // 20 loopbacks + 8 edge host prefixes.
  EXPECT_EQ(announced.size(), 28u);
}

TEST(FatTreeTest, LoadEstimatesFollowThePaper) {
  FatTreeParams params;
  params.k = 6;
  Network net = MakeFatTree(params);
  double k3 = 6.0 * 6.0 * 6.0;
  for (NodeId id = 0; id < net.graph.size(); ++id) {
    const NodeInfo& info = net.graph.node(id);
    EXPECT_DOUBLE_EQ(info.load,
                     info.role == Role::kEdge ? k3 / 4.0 : k3 / 2.0);
  }
}

TEST(FatTreeTest, ExtraPrefixesPerEdge) {
  FatTreeParams params;
  params.k = 4;
  params.extra_prefixes_per_edge = 2;
  Network net = MakeFatTree(params);
  for (NodeId id = 0; id < net.graph.size(); ++id) {
    if (net.graph.node(id).role == Role::kEdge) {
      // loopback + host /24 + 2 extra
      EXPECT_EQ(net.intents[id].announced.size(), 4u);
    }
  }
}

TEST(FatTreeTest, RejectsOddK) {
  FatTreeParams params;
  params.k = 5;
  EXPECT_DEATH(MakeFatTree(params), "");
}

TEST(LinkAddressTest, DoubleAssignmentAborts) {
  FatTreeParams params;
  params.k = 4;
  Network net = MakeFatTree(params);  // already addressed by the generator
  EXPECT_DEATH(AssignLinkAddresses(net), "");
}

TEST(LinkAddressTest, PairsShareSlash31) {
  FatTreeParams params;
  params.k = 4;
  Network net = MakeFatTree(params);
  size_t interface_count = 0;
  for (NodeId id = 0; id < net.graph.size(); ++id) {
    for (const InterfaceIntent& iface : net.intents[id].interfaces) {
      ++interface_count;
      EXPECT_EQ(iface.prefix_length, 31);
      // The peer's matching interface holds the XOR-1 address.
      bool found = false;
      for (const InterfaceIntent& peer_iface :
           net.intents[iface.peer].interfaces) {
        if (peer_iface.name == iface.peer_interface) {
          EXPECT_EQ(peer_iface.address.bits(), iface.address.bits() ^ 1u);
          EXPECT_EQ(peer_iface.peer, id);
          found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
  EXPECT_EQ(interface_count, 2 * net.graph.edge_count());
}

// ------------------------------------------------------------------- DCN

TEST(DcnTest, StructureAndHeterogeneity) {
  DcnParams params;  // defaults: 2 small + 1 big cluster
  Network net = MakeDcn(params);

  int tors = 0, borders = 0, cores = 0, spines = 0, fabrics = 0;
  std::set<int> layers;
  for (NodeId id = 0; id < net.graph.size(); ++id) {
    const NodeInfo& info = net.graph.node(id);
    layers.insert(info.layer);
    const std::string& name = info.name;
    if (name.find("-tor") != std::string::npos) ++tors;
    if (name.find("border") == 0) ++borders;
    if (name.find("core") == 0) ++cores;
    if (name.find("-spine") != std::string::npos) ++spines;
    if (name.find("-fabric") != std::string::npos) ++fabrics;
  }
  EXPECT_EQ(tors, 3 * params.pods_per_cluster * params.tors_per_pod);
  EXPECT_EQ(borders, params.borders);
  EXPECT_EQ(cores, params.cores);
  EXPECT_EQ(spines, 3 * params.spines_per_cluster);
  EXPECT_EQ(fabrics, params.fabrics_per_cluster);  // only the big cluster
  // Mixed layer depths: 3-layer clusters (0,1,2) and 5-layer (0..4), plus
  // core (10) and border (11).
  EXPECT_TRUE(layers.count(4));
  EXPECT_TRUE(layers.count(10));
  EXPECT_TRUE(layers.count(11));
}

TEST(DcnTest, SameLayerSharesAsn) {
  Network net = MakeDcn(DcnParams{});
  std::map<int, std::set<uint32_t>> asns_by_layer;
  for (NodeId id = 0; id < net.graph.size(); ++id) {
    asns_by_layer[net.graph.node(id).layer].insert(net.intents[id].asn);
  }
  for (const auto& [layer, asns] : asns_by_layer) {
    if (layer == 11) {
      // Borders are the exception: backbone-facing devices carry unique
      // public ASNs (they eBGP-peer with each other).
      EXPECT_EQ(asns.size(), 2u);
    } else {
      EXPECT_EQ(asns.size(), 1u) << "layer " << layer;
    }
  }
}

TEST(DcnTest, AggregationOnlyInBigClusterTops) {
  DcnParams params;
  Network net = MakeDcn(params);
  for (NodeId id = 0; id < net.graph.size(); ++id) {
    const std::string& name = net.graph.node(id).name;
    bool big_spine = name.rfind("c2-spine", 0) == 0;  // cluster 2 is big
    if (big_spine) {
      EXPECT_EQ(net.intents[id].aggregates.size(), 2u) << name;
      for (const AggregateIntent& agg : net.intents[id].aggregates) {
        EXPECT_TRUE(agg.summary_only);
        EXPECT_FALSE(agg.communities.empty());
      }
    } else {
      EXPECT_TRUE(net.intents[id].aggregates.empty()) << name;
    }
  }
}

TEST(DcnTest, BordersGetVsbsCondAdvAndAcl) {
  Network net = MakeDcn(DcnParams{});
  int borders_seen = 0;
  for (NodeId id = 0; id < net.graph.size(); ++id) {
    if (net.graph.node(id).role != Role::kBorder) continue;
    ++borders_seen;
    const NodeIntent& intent = net.intents[id];
    EXPECT_TRUE(intent.remove_private_as);
    ASSERT_EQ(intent.cond_advs.size(), 2u);
    EXPECT_TRUE(intent.cond_advs[0].advertise_if_present);
    EXPECT_FALSE(intent.cond_advs[1].advertise_if_present);
    // The border-border session carries the management packet filter.
    bool has_acl = false;
    for (const InterfaceIntent& iface : intent.interfaces) {
      if (net.graph.node(iface.peer).role == Role::kBorder) {
        has_acl = has_acl || !iface.acl_out.empty();
      }
    }
    EXPECT_TRUE(has_acl);
  }
  EXPECT_EQ(borders_seen, 2);
}

TEST(DcnTest, LayeredLocalPrefAndValleyGuard) {
  Network net = MakeDcn(DcnParams{});
  for (NodeId id = 0; id < net.graph.size(); ++id) {
    int layer = net.graph.node(id).layer;
    for (const InterfaceIntent& iface : net.intents[id].interfaces) {
      int peer_layer = net.graph.node(iface.peer).layer;
      if (peer_layer < layer) {
        EXPECT_EQ(iface.import_local_pref, 200u);
      } else {
        // Routes from above/sideways get the valley-guard tag which is
        // denied on this very interface's exports.
        EXPECT_EQ(iface.import_tag_communities.size(), 1u);
        EXPECT_EQ(iface.import_tag_communities[0], kFromAboveCommunity);
        bool denied = false;
        for (uint32_t c : iface.export_policy.deny_export_communities) {
          denied = denied || c == kFromAboveCommunity;
        }
        EXPECT_TRUE(denied);
      }
    }
  }
}

TEST(DcnTest, MixedVendors) {
  Network net = MakeDcn(DcnParams{});
  int alpha = 0, beta = 0;
  for (const NodeIntent& intent : net.intents) {
    (intent.vendor == Vendor::kAlpha ? alpha : beta)++;
  }
  EXPECT_GT(alpha, 0);
  EXPECT_GT(beta, 0);
}

}  // namespace
}  // namespace s2::topo
