file(REMOVE_RECURSE
  "CMakeFiles/fib_test.dir/fib_test.cc.o"
  "CMakeFiles/fib_test.dir/fib_test.cc.o.d"
  "fib_test"
  "fib_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
