// Randomized differential oracle: seeded random topologies pushed through
// every verifier configuration — MonoVerifier (the monolithic baseline),
// S2 at 1/2/4 workers with both sequential (dp_lanes=1) and lane-parallel
// (dp_lanes>1) data planes, the query-parallel RunQueries path, and the
// Bonsai compression baseline — asserting that all of them converge to
// identical best-route RIBs, identical canonical FIB bytes (the
// fault::SerializePredicates fingerprint), and identical query verdicts.
//
// This is the pin that holds the intra-worker parallel forwarding and the
// BDD op-cache overhaul in place: any nondeterminism in lane merge order,
// any cache entry surviving a GC with a stale result, or any divergence in
// the per-query rebuilt domains shows up here as a byte-level mismatch.
#include <gtest/gtest.h>

#include "core/bonsai.h"
#include "core/mono.h"
#include "core/s2.h"
#include "dp/fib.h"
#include "fault/checkpoint.h"
#include "svc/query_service.h"
#include "test_networks.h"
#include "topo/dcn.h"
#include "topo/fattree.h"
#include "util/rng.h"

namespace s2 {
namespace {

using dist::ControllerOptions;

// One random instance: a generated topology plus the seed that shaped it
// (kept in the label so a failure names its reproduction).
struct Instance {
  std::string label;
  topo::Network net;
};

std::vector<Instance> RandomFatTrees(int count, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Instance> instances;
  for (int i = 0; i < count; ++i) {
    topo::FatTreeParams params;
    params.k = 4;
    params.max_ecmp_paths = static_cast<int>(rng.Between(2, 64));
    params.extra_prefixes_per_edge = static_cast<int>(rng.Between(0, 2));
    params.mixed_vendors = (rng.Next() & 1) != 0;
    instances.push_back({"fattree/seed" + std::to_string(seed) + "/i" +
                             std::to_string(i),
                         topo::MakeFatTree(params)});
  }
  return instances;
}

std::vector<Instance> RandomDcns(int count, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Instance> instances;
  for (int i = 0; i < count; ++i) {
    topo::DcnParams params;
    params.small_clusters = static_cast<int>(rng.Between(1, 2));
    params.big_clusters = 1;
    params.tors_per_pod = static_cast<int>(rng.Between(2, 4));
    params.cores = static_cast<int>(rng.Between(2, 4));
    params.mixed_vendors = (rng.Next() & 1) != 0;
    instances.push_back({"dcn/seed" + std::to_string(seed) + "/i" +
                             std::to_string(i),
                         topo::MakeDcn(params)});
  }
  return instances;
}

dp::Query AllPairQuery(const config::ParsedNetwork& net) {
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  for (topo::NodeId id = 0; id < net.graph.size(); ++id) {
    if (net.graph.node(id).role == topo::Role::kEdge) {
      query.sources.push_back(id);
      query.destinations.push_back(id);
    }
  }
  return query;
}

// The oracle: monolithic run, plus its RIBs and the canonical FIB bytes of
// every node (rebuilt from the converged RIBs exactly the way the worker
// data planes build theirs).
struct Oracle {
  core::VerifyResult result;
  std::vector<std::map<util::Ipv4Prefix, std::vector<cp::Route>>> ribs;
  std::map<topo::NodeId, std::vector<uint8_t>> fib_bytes;
};

Oracle RunOracle(const config::ParsedNetwork& net, const dp::Query& query) {
  Oracle oracle;
  core::MonoVerifier mono{core::MonoOptions{}};
  oracle.result = mono.Verify(net, {query});
  util::MemoryTracker tracker("oracle-fib", 0);
  bdd::Manager manager(dp::HeaderLayout{}.total_bits());
  dp::PacketCodec codec(&manager, dp::HeaderLayout{});
  for (const auto& node : mono.last_engine()->nodes()) {
    oracle.ribs.push_back(node->bgp_routes());
    dp::Fib fib = dp::Fib::Build(net, node->id(), node->bgp_routes(),
                                 node->ospf_routes(), &tracker);
    oracle.fib_bytes[node->id()] = fault::SerializePredicates(
        dp::BuildPredicates(net, node->id(), fib, codec));
  }
  return oracle;
}

void ExpectSameVerdict(const dp::QueryResult& got,
                       const dp::QueryResult& want,
                       const std::string& label) {
  EXPECT_EQ(got.reachable_pairs, want.reachable_pairs) << label;
  EXPECT_EQ(got.unreachable_pairs, want.unreachable_pairs) << label;
  EXPECT_EQ(got.loop_free, want.loop_free) << label;
  EXPECT_EQ(got.blackhole_free, want.blackhole_free) << label;
  EXPECT_EQ(got.loop_finals, want.loop_finals) << label;
  EXPECT_EQ(got.blackhole_finals, want.blackhole_finals) << label;
  EXPECT_EQ(got.multipath_violations.size(),
            want.multipath_violations.size())
      << label;
}

// S2 at `workers` workers / `dp_lanes` lanes must reproduce the oracle's
// verdicts, RIBs, and FIB bytes exactly. Final *counts* (loop/blackhole
// finals) are compared exactly only at workers == 1: a set crossing a
// worker boundary is recorded as one final per worker-side fragment, so
// multi-worker counts legitimately exceed the monolithic count — the
// boolean verdicts and the pair counts must still agree bit for bit.
void CheckS2AgainstOracle(const config::ParsedNetwork& net,
                          const dp::Query& query, const Oracle& oracle,
                          uint32_t workers, uint32_t dp_lanes,
                          const std::string& label) {
  ControllerOptions options;
  options.num_workers = workers;
  options.dp_lanes = dp_lanes;
  core::S2Verifier verifier(options);
  core::VerifyResult result = verifier.Verify(net, {query});
  ASSERT_TRUE(result.ok()) << label << ": " << result.failure_detail;
  ASSERT_EQ(result.queries.size(), 1u) << label;
  const dp::QueryResult& got = result.queries[0];
  const dp::QueryResult& want = oracle.result.queries[0];
  if (workers == 1) {
    ExpectSameVerdict(got, want, label);
  } else {
    EXPECT_EQ(got.reachable_pairs, want.reachable_pairs) << label;
    EXPECT_EQ(got.unreachable_pairs, want.unreachable_pairs) << label;
    EXPECT_EQ(got.loop_free, want.loop_free) << label;
    EXPECT_EQ(got.blackhole_free, want.blackhole_free) << label;
    EXPECT_EQ(got.loop_finals > 0, want.loop_finals > 0) << label;
    EXPECT_EQ(got.blackhole_finals > 0, want.blackhole_finals > 0) << label;
  }
  EXPECT_EQ(result.total_best_routes, oracle.result.total_best_routes)
      << label;

  dist::Controller* controller = verifier.last_controller();
  for (size_t w = 0; w < controller->num_workers(); ++w) {
    dist::Worker& worker = controller->worker(w);
    for (topo::NodeId id : worker.local_nodes()) {
      EXPECT_EQ(worker.node(id).bgp_routes(), oracle.ribs[id])
          << label << " RIB of node " << id;
    }
    for (const auto& [id, bytes] : worker.SnapshotPredicates()) {
      EXPECT_EQ(bytes, oracle.fib_bytes.at(id))
          << label << " FIB bytes of node " << id;
    }
  }
}

void RunDifferential(const std::vector<Instance>& instances) {
  for (const Instance& instance : instances) {
    config::ParsedNetwork net = testing::Parse(instance.net);
    dp::Query query = AllPairQuery(net);
    Oracle oracle = RunOracle(net, query);
    ASSERT_TRUE(oracle.result.ok())
        << instance.label << ": " << oracle.result.failure_detail;
    // Worker counts 1/2/4; lane count varies with the worker count so both
    // the sequential fast path (lanes=1) and the level-lockstep parallel
    // path (lanes=2,3) are differentially pinned on every instance.
    CheckS2AgainstOracle(net, query, oracle, 1, 1, instance.label + "/1w1l");
    CheckS2AgainstOracle(net, query, oracle, 2, 2, instance.label + "/2w2l");
    CheckS2AgainstOracle(net, query, oracle, 4, 3, instance.label + "/4w3l");
  }
}

TEST(DifferentialOracleTest, RandomFatTreesAgreeAcrossEngines) {
  RunDifferential(RandomFatTrees(5, /*seed=*/11));
}

TEST(DifferentialOracleTest, RandomDcnsAgreeAcrossEngines) {
  RunDifferential(RandomDcns(5, /*seed=*/23));
}

// The query-parallel path (Dpo::RunQueries at query_lanes>1) must agree
// with the classic sequential per-query fabric rounds, query by query.
TEST(DifferentialOracleTest, ParallelQueryPathMatchesSequential) {
  for (Instance& instance : RandomFatTrees(2, /*seed=*/37)) {
    config::ParsedNetwork net = testing::Parse(instance.net);
    std::vector<dp::Query> queries;
    queries.push_back(AllPairQuery(net));
    dp::Query single;
    single.sources = {net.graph.FindByName("edge-0-0")};
    single.destinations = {net.graph.FindByName("edge-1-0")};
    single.header_space.dst = util::MustParsePrefix("10.1.0.0/24");
    queries.push_back(single);

    ControllerOptions sequential;
    sequential.num_workers = 2;
    core::S2Verifier seq_verifier(sequential);
    core::VerifyResult seq = seq_verifier.Verify(net, queries);
    ASSERT_TRUE(seq.ok()) << instance.label << ": " << seq.failure_detail;

    ControllerOptions parallel = sequential;
    parallel.query_lanes = 2;
    parallel.dp_lanes = 2;
    core::S2Verifier par_verifier(parallel);
    core::VerifyResult par = par_verifier.Verify(net, queries);
    ASSERT_TRUE(par.ok()) << instance.label << ": " << par.failure_detail;

    ASSERT_EQ(par.queries.size(), seq.queries.size()) << instance.label;
    for (size_t q = 0; q < queries.size(); ++q) {
      ExpectSameVerdict(par.queries[q], seq.queries[q],
                        instance.label + "/q" + std::to_string(q));
    }
  }
}

// The query service must be a perfect stand-in for batch execution: every
// field of the verdict — reachability pairs with fractions, loop/blackhole
// finals, waypoints, multipath — byte-identical between a served query
// (cold and warm, scoped and unscoped) and the same query run through
// Verify on the same converged state. Sharded RIB spills are on so the
// snapshot's rib_spills handle is exercised too.
TEST(DifferentialOracleTest, ServedQueriesMatchBatchExecution) {
  std::vector<Instance> instances = RandomFatTrees(2, /*seed=*/71);
  for (Instance& dcn : RandomDcns(1, /*seed=*/79)) {
    instances.push_back(std::move(dcn));
  }
  for (const Instance& instance : instances) {
    config::ParsedNetwork net = testing::Parse(instance.net);
    std::vector<dp::Query> queries;
    queries.push_back(AllPairQuery(net));
    dp::Query single = queries[0];
    single.sources = {queries[0].sources.front()};
    single.destinations = {queries[0].destinations.back()};
    queries.push_back(single);

    ControllerOptions options;
    options.num_workers = 4;
    options.num_shards = 8;  // exercise RIB spills behind the snapshot
    core::S2Verifier verifier(options);
    core::VerifyResult batch = verifier.Verify(net, queries);
    ASSERT_TRUE(batch.ok()) << instance.label << ": " << batch.failure_detail;
    std::optional<svc::Snapshot> snapshot = verifier.ExportSnapshot();
    ASSERT_TRUE(snapshot.has_value()) << instance.label;

    svc::SnapshotRegistry registry;
    registry.Publish(*snapshot);
    for (bool scoped : {true, false}) {
      svc::QueryService::Options svc_options;
      svc_options.scope_admission = scoped;
      svc::QueryService service(&registry, svc_options);
      for (size_t q = 0; q < queries.size(); ++q) {
        std::string label = instance.label + (scoped ? "/scoped" : "/full") +
                            "/q" + std::to_string(q);
        svc::QueryService::Served cold = service.Serve(queries[q]);
        EXPECT_FALSE(cold.cache_hit) << label;
        svc::QueryService::Served warm = service.Serve(queries[q]);
        EXPECT_TRUE(warm.cache_hit) << label;
        for (const auto& [mode, served] :
             {std::pair<const char*, const svc::QueryService::Served&>(
                  "cold", cold),
              {"warm", warm}}) {
          const dp::QueryResult& got = served.result;
          const dp::QueryResult& want = batch.queries[q];
          std::string full = label + "/" + mode;
          ExpectSameVerdict(got, want, full);
          ASSERT_EQ(got.reachability.size(), want.reachability.size())
              << full;
          for (size_t i = 0; i < got.reachability.size(); ++i) {
            EXPECT_EQ(got.reachability[i].src, want.reachability[i].src)
                << full;
            EXPECT_EQ(got.reachability[i].dst, want.reachability[i].dst)
                << full;
            EXPECT_EQ(got.reachability[i].reachable,
                      want.reachability[i].reachable)
                << full;
            EXPECT_DOUBLE_EQ(got.reachability[i].fraction,
                             want.reachability[i].fraction)
                << full;
          }
          ASSERT_EQ(got.waypoints.size(), want.waypoints.size()) << full;
          for (size_t i = 0; i < got.waypoints.size(); ++i) {
            EXPECT_EQ(got.waypoints[i].transit, want.waypoints[i].transit)
                << full;
            EXPECT_EQ(got.waypoints[i].always_traversed,
                      want.waypoints[i].always_traversed)
                << full;
          }
          EXPECT_EQ(got.paths_recorded, want.paths_recorded) << full;
          EXPECT_EQ(got.valleys.size(), want.valleys.size()) << full;
        }
      }
    }
  }
}

// Bonsai checks reachability per destination over compressed instances, so
// only its full-reachability verdict is comparable: on a healthy FatTree
// both Bonsai and the oracle must report zero unreachable, and Bonsai must
// have visited every edge host prefix.
TEST(DifferentialOracleTest, BonsaiAgreesOnFatTreeReachability) {
  util::Rng rng(53);
  for (int i = 0; i < 2; ++i) {
    topo::FatTreeParams params;
    params.k = 4;
    params.max_ecmp_paths = static_cast<int>(rng.Between(2, 64));
    params.mixed_vendors = (rng.Next() & 1) != 0;
    std::string label = "bonsai/fattree/i" + std::to_string(i);
    topo::Network raw = topo::MakeFatTree(params);
    config::ParsedNetwork net = testing::Parse(raw);
    Oracle oracle = RunOracle(net, AllPairQuery(net));
    ASSERT_TRUE(oracle.result.ok()) << label;

    core::BonsaiVerifier bonsai{core::BonsaiOptions{}};
    core::VerifyResult result = bonsai.Verify(raw);
    ASSERT_TRUE(result.ok()) << label << ": " << result.failure_detail;
    ASSERT_EQ(result.queries.size(), 1u) << label;
    EXPECT_EQ(result.queries[0].unreachable_pairs, 0u) << label;
    EXPECT_EQ(oracle.result.queries[0].unreachable_pairs, 0u) << label;
    // k=4: one destination verdict per edge switch host prefix.
    EXPECT_EQ(result.queries[0].reachable_pairs, 8u) << label;
  }
}

}  // namespace
}  // namespace s2
