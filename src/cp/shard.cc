#include "cp/shard.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "util/rng.h"

namespace s2::cp {

namespace {

// Union-find over dense indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

int ShardPlan::ShardOf(const util::Ipv4Prefix& prefix) const {
  for (size_t i = 0; i < shards.size(); ++i) {
    if (shards[i].count(prefix)) return static_cast<int>(i);
  }
  return -1;
}

std::vector<util::Ipv4Prefix> CollectBgpPrefixes(
    const config::ParsedNetwork& network) {
  PrefixSet universe;
  // OSPF-contributed prefixes (the redistribution closure): loopbacks of
  // OSPF speakers can appear in any redistributing device's BGP RIB.
  PrefixSet ospf_prefixes;
  bool any_redistributes = false;
  for (const config::ViConfig& config : network.configs) {
    if (config.ospf.enabled) ospf_prefixes.insert(config.loopback);
    if (config.bgp.redistribute_ospf) any_redistributes = true;
  }
  for (const config::ViConfig& config : network.configs) {
    for (const util::Ipv4Prefix& p : config.bgp.networks) universe.insert(p);
    for (const config::BgpAggregate& agg : config.bgp.aggregates) {
      universe.insert(agg.prefix);
    }
    for (const config::BgpCondAdv& cond : config.bgp.cond_advs) {
      universe.insert(cond.advertise);
      universe.insert(cond.watch);
    }
  }
  if (any_redistributes) {
    universe.insert(ospf_prefixes.begin(), ospf_prefixes.end());
  }
  std::vector<util::Ipv4Prefix> out(universe.begin(), universe.end());
  std::sort(out.begin(), out.end());
  return out;
}

ShardPlan BuildShardPlan(const config::ParsedNetwork& network, int num_shards,
                         uint64_t seed) {
  std::vector<util::Ipv4Prefix> prefixes = CollectBgpPrefixes(network);
  std::map<util::Ipv4Prefix, size_t> index;
  for (size_t i = 0; i < prefixes.size(); ++i) index[prefixes[i]] = i;

  // DPDG edges -> weakly connected components via union-find. Directions
  // don't matter for components, so edges are unioned directly.
  UnionFind uf(prefixes.size());
  for (const config::ViConfig& config : network.configs) {
    for (const config::BgpAggregate& agg : config.bgp.aggregates) {
      size_t a = index.at(agg.prefix);
      // An aggregate depends on every (potential) contributing prefix.
      for (size_t i = 0; i < prefixes.size(); ++i) {
        if (prefixes[i] != agg.prefix && agg.prefix.Contains(prefixes[i])) {
          uf.Union(a, i);
        }
      }
    }
    for (const config::BgpCondAdv& cond : config.bgp.cond_advs) {
      uf.Union(index.at(cond.advertise), index.at(cond.watch));
    }
  }

  // Components, largest first; shuffle equal sizes (paper §4.5).
  std::map<size_t, std::vector<size_t>> components;
  for (size_t i = 0; i < prefixes.size(); ++i) {
    components[uf.Find(i)].push_back(i);
  }
  std::vector<std::vector<size_t>> ccs;
  ccs.reserve(components.size());
  for (auto& [root, members] : components) ccs.push_back(std::move(members));
  util::Rng rng(seed);
  rng.Shuffle(ccs);
  std::stable_sort(ccs.begin(), ccs.end(),
                   [](const auto& a, const auto& b) {
                     return a.size() > b.size();
                   });

  ShardPlan plan;
  size_t shard_count = std::max<size_t>(
      1, std::min<size_t>(static_cast<size_t>(num_shards), ccs.size()));
  plan.shards.resize(shard_count);
  for (const std::vector<size_t>& cc : ccs) {
    size_t smallest = 0;
    for (size_t s = 1; s < plan.shards.size(); ++s) {
      if (plan.shards[s].size() < plan.shards[smallest].size()) smallest = s;
    }
    for (size_t i : cc) plan.shards[smallest].insert(prefixes[i]);
  }
  return plan;
}

int MergeShards(ShardPlan& plan, const util::Ipv4Prefix& a,
                const util::Ipv4Prefix& b) {
  int sa = plan.ShardOf(a), sb = plan.ShardOf(b);
  if (sa < 0 || sb < 0 || sa == sb) return -1;
  int lo = std::min(sa, sb), hi = std::max(sa, sb);
  plan.shards[lo].insert(plan.shards[hi].begin(), plan.shards[hi].end());
  plan.shards.erase(plan.shards.begin() + hi);
  return lo;
}

namespace {

// Visits every (dependent, required) prefix pair the configs induce.
template <typename Fn>
void ForEachDependency(const config::ParsedNetwork& network,
                       const std::vector<util::Ipv4Prefix>& universe,
                       Fn&& fn) {
  for (const config::ViConfig& config : network.configs) {
    for (const config::BgpAggregate& agg : config.bgp.aggregates) {
      for (const util::Ipv4Prefix& prefix : universe) {
        if (prefix != agg.prefix && agg.prefix.Contains(prefix)) {
          fn(agg.prefix, prefix);
        }
      }
    }
    for (const config::BgpCondAdv& cond : config.bgp.cond_advs) {
      fn(cond.advertise, cond.watch);
    }
  }
}

}  // namespace

std::vector<ShardViolation> ValidateShardPlan(
    const config::ParsedNetwork& network, const ShardPlan& plan) {
  std::vector<ShardViolation> violations;
  auto universe = CollectBgpPrefixes(network);
  ForEachDependency(network, universe,
                    [&](const util::Ipv4Prefix& dependent,
                        const util::Ipv4Prefix& required) {
                      int sd = plan.ShardOf(dependent);
                      int sr = plan.ShardOf(required);
                      if (sd < 0 || sr < 0 || sd != sr) {
                        violations.push_back(
                            ShardViolation{dependent, required});
                      }
                    });
  return violations;
}

int RepairShardPlan(const config::ParsedNetwork& network, ShardPlan& plan) {
  int fixes = 0;
  // Each merge can invalidate previously-clean pairs' indices, so iterate
  // to a fixed point; the plan only ever shrinks, so this terminates.
  for (;;) {
    std::vector<ShardViolation> violations =
        ValidateShardPlan(network, plan);
    if (violations.empty()) return fixes;
    for (const ShardViolation& violation : violations) {
      int sd = plan.ShardOf(violation.dependent);
      int sr = plan.ShardOf(violation.required);
      if (sd < 0 && sr < 0) {
        if (plan.shards.empty()) plan.shards.emplace_back();
        plan.shards[0].insert(violation.dependent);
        plan.shards[0].insert(violation.required);
        ++fixes;
      } else if (sd < 0) {
        plan.shards[sr].insert(violation.dependent);
        ++fixes;
      } else if (sr < 0) {
        plan.shards[sd].insert(violation.required);
        ++fixes;
      } else if (sd != sr) {
        MergeShards(plan, violation.dependent, violation.required);
        ++fixes;
        break;  // indices shifted; re-validate
      }
    }
  }
}

}  // namespace s2::cp
