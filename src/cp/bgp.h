// BGP halves of the switch model: export transformation (policy, AS_PATH
// prepend/overwrite, remove-private-as, eBGP attribute scrubbing) and
// import processing (loop rejection, import policy). Free functions so the
// Node stays an orchestrator and these stay unit-testable.
#pragma once

#include <optional>

#include "config/vi_model.h"
#include "cp/route.h"

namespace s2::cp {

// Transforms `best` for export over `session` (the neighbor's config entry
// on the exporting device `config`). Returns nullopt when the export
// policy denies the route. Applies, in order: export route-map (sets may
// overwrite the AS_PATH), AS prepend (unless overwritten), remove-private-as
// with the exporter's vendor semantics, and eBGP attribute scrubbing
// (LOCAL_PREF is not transmitted across eBGP). The transformed attribute
// tuple is interned into `pool` (the exporting domain's) — once, after
// every edit is applied.
std::optional<Route> TransformForExport(const Route& best,
                                        const config::ViConfig& config,
                                        const config::BgpNeighbor& session,
                                        AttrPool& pool);

// Processes a route received from `session` on the importing device
// `config`. Returns nullopt when rejected (AS-path loop or import policy
// deny) — which callers must treat as a withdrawal of any previous
// candidate from that neighbor. `from` is the sending device. With no
// import policy edits the received route's interned handle is reused
// without touching `pool`.
std::optional<Route> ProcessImport(const Route& received,
                                   const config::ViConfig& config,
                                   const config::BgpNeighbor& session,
                                   topo::NodeId from, AttrPool& pool);

// True if `prefix` must be suppressed on export because a summary-only
// aggregate on `config` covers it (strictly more specific than the
// aggregate itself).
bool SuppressedByAggregate(const util::Ipv4Prefix& prefix,
                           const config::ViConfig& config);

}  // namespace s2::cp
