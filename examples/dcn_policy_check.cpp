// DCN policy check: exercises the production-style policies of the paper's
// §2.3 on the synthesized DCN — route aggregation with community tagging,
// AS_PATH overwrite across shared-ASN layers, vendor-divergent
// remove-private-as at the borders, conditional default origination,
// management-plane filtering, and a waypoint query through the core.
//
//   ./dcn_policy_check
#include <cstdio>

#include "config/vendor.h"
#include "core/mono.h"
#include "core/s2.h"
#include "topo/dcn.h"

using namespace s2;

int main() {
  topo::DcnParams params;
  params.cores = 1;  // single core layer makes the waypoint query crisp
  topo::Network network = topo::MakeDcn(params);
  auto parsed = config::ParseNetwork(config::SynthesizeConfigs(network));
  std::printf("DCN: %zu switches (%d small + %d big clusters), %zu links\n",
              parsed.graph.size(), params.small_clusters,
              params.big_clusters, parsed.graph.edge_count());

  // --- Query 1: TOR-to-TOR reachability across clusters, with the core
  // as a waypoint and multipath-consistency checking.
  auto src = parsed.graph.FindByName("c0p0-tor0");
  auto dst = parsed.graph.FindByName("c2p1-tor3");
  auto core0 = parsed.graph.FindByName("core0");
  dp::Query crossing;
  crossing.header_space.dst = util::MustParsePrefix("10.2.0.0/16");
  crossing.sources = {src};
  crossing.destinations = {dst};
  crossing.transits = {core0};

  dist::ControllerOptions options;
  options.num_workers = 4;
  options.num_shards = 6;
  options.layout.meta_bits = 1;
  core::S2Verifier verifier(options);
  core::VerifyResult result = verifier.Verify(parsed, {crossing});
  if (!result.ok()) {
    std::printf("verification failed: %s\n", result.failure_detail.c_str());
    return 1;
  }
  const dp::QueryResult& q = result.queries[0];
  std::printf("\ncross-cluster c0p0-tor0 -> c2p1-tor3:\n");
  std::printf("  reachable pairs: %zu / %zu\n", q.reachable_pairs,
              q.reachable_pairs + q.unreachable_pairs);
  std::printf("  waypoint core0 always traversed: %s\n",
              q.waypoints[0].always_traversed ? "yes" : "NO");
  std::printf("  multipath consistent: %s\n",
              q.multipath_violations.empty() ? "yes" : "NO");

  // --- Inspect the control plane for the policy effects (via the
  // monolithic verifier, which exposes RIBs directly).
  core::MonoVerifier mono{core::MonoOptions{}};
  core::VerifyResult mono_result = mono.Verify(parsed, {});
  auto& engine = *mono.last_engine();

  // Aggregation: the TOR sees the big cluster as one tagged /16, not its
  // individual /24s (the §2.3 route-count reduction).
  const auto& tor_rib = engine.node(src).bgp_routes();
  auto big_agg = util::MustParsePrefix("10.2.0.0/16");
  auto big_specific = util::MustParsePrefix("10.2.0.0/24");
  std::printf("\naggregation at big-cluster spines:\n");
  std::printf("  c0p0-tor0 has 10.2.0.0/16 aggregate: %s (communities:",
              tor_rib.count(big_agg) ? "yes" : "NO");
  if (tor_rib.count(big_agg)) {
    for (uint32_t c : tor_rib.at(big_agg).front().communities()) {
      std::printf(" %u", c);
    }
  }
  std::printf(")\n  c0p0-tor0 has suppressed specific 10.2.0.0/24: %s\n",
              tor_rib.count(big_specific) ? "YES (bug!)" : "no");
  std::printf("  TOR RIB size: %zu prefixes\n", tor_rib.size());

  // Conditional default from the borders.
  std::printf("\nconditional advertisement at borders:\n");
  std::printf("  c0p0-tor0 has 0.0.0.0/0: %s\n",
              tor_rib.count(util::MustParsePrefix("0.0.0.0/0")) ? "yes"
                                                                : "NO");

  // AS_PATH overwrite: the TOR's cross-cluster route has a short path even
  // though it crossed 6+ devices.
  if (tor_rib.count(big_agg)) {
    std::printf("  AS path of the cross-cluster aggregate (length %zu):",
                tor_rib.at(big_agg).front().as_path().size());
    for (uint32_t asn : tor_rib.at(big_agg).front().as_path()) {
      std::printf(" %u", asn);
    }
    std::printf("\n");
  }

  // Management filtering between borders (ACL + community deny).
  auto b0 = parsed.graph.FindByName("border0");
  dp::Query mgmt;
  mgmt.header_space.dst = util::MustParsePrefix("172.16.0.0/12");
  mgmt.sources = {b0};
  core::MonoVerifier mono2{core::MonoOptions{}};
  core::VerifyResult mgmt_result = mono2.Verify(parsed, {mgmt});
  std::printf("\nmanagement space injected at border0: %zu blackhole "
              "finals (filters at work), loop-free: %s\n",
              mgmt_result.queries[0].blackhole_finals,
              mgmt_result.queries[0].loop_free ? "yes" : "NO");

  std::printf("\nper-worker peak memory (S2, 4 workers): %s\n",
              core::HumanBytes(result.peak_memory_bytes).c_str());
  return 0;
}
