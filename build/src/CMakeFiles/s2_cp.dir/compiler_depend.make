# Empty compiler generated dependencies file for s2_cp.
# This may be replaced when dependencies are built.
