// s2cli — the operator-facing command line.
//
//   s2cli synth fattree <k> <outdir>       write FatTree(k) config files
//   s2cli synth dcn <outdir>               write the DCN-like config files
//   s2cli verify <configdir> [options]     verify a directory of configs
//
// verify options:
//   --workers N     worker count (default 4)
//   --shards N      prefix shards (default 0 = off)
//   --budget MB     per-worker memory budget in MB (default unlimited)
//   --scheme S      partition scheme: metis|random|expert (default metis)
//   --baseline      use the monolithic verifier instead of S2
//   --json PATH     also write the machine-readable JSON report
//
// The query is all-pair reachability between devices announcing
// non-loopback prefixes, over 10.0.0.0/8.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "config/vendor.h"
#include "core/mono.h"
#include "core/report.h"
#include "core/s2.h"
#include "topo/dcn.h"
#include "topo/fattree.h"

using namespace s2;
namespace fs = std::filesystem;

namespace {

int WriteConfigs(const topo::Network& network, const std::string& outdir) {
  fs::create_directories(outdir);
  std::vector<std::string> configs = config::SynthesizeConfigs(network);
  for (topo::NodeId id = 0; id < network.graph.size(); ++id) {
    fs::path path = fs::path(outdir) / (network.graph.node(id).name + ".cfg");
    std::ofstream out(path);
    out << configs[id];
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
  }
  std::printf("wrote %zu config files to %s\n", configs.size(),
              outdir.c_str());
  return 0;
}

int Synth(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[0], "fattree") == 0 && argc >= 3) {
    topo::FatTreeParams params;
    params.k = std::atoi(argv[1]);
    return WriteConfigs(topo::MakeFatTree(params), argv[2]);
  }
  if (argc >= 2 && std::strcmp(argv[0], "dcn") == 0) {
    return WriteConfigs(topo::MakeDcn(topo::DcnParams{}), argv[1]);
  }
  std::fprintf(stderr, "usage: s2cli synth fattree <k> <outdir>\n"
                       "       s2cli synth dcn <outdir>\n");
  return 2;
}

int Verify(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "usage: s2cli verify <configdir> [options]\n");
    return 2;
  }
  std::string dir = argv[0];
  uint32_t workers = 4;
  int shards = 0;
  size_t budget = 0;
  bool baseline = false;
  std::string json_path;
  topo::PartitionScheme scheme = topo::PartitionScheme::kMetisLike;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (std::strcmp(argv[i], "--workers") == 0) {
      workers = static_cast<uint32_t>(std::atoi(next()));
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards = std::atoi(next());
    } else if (std::strcmp(argv[i], "--budget") == 0) {
      budget = static_cast<size_t>(std::atof(next()) * (1 << 20));
    } else if (std::strcmp(argv[i], "--scheme") == 0) {
      const char* name = next();
      if (std::strcmp(name, "random") == 0) {
        scheme = topo::PartitionScheme::kRandom;
      } else if (std::strcmp(name, "expert") == 0) {
        scheme = topo::PartitionScheme::kExpert;
      }
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      baseline = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = next();
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 2;
    }
  }

  // Load configs; parse individually first so a malformed file is
  // reported with its name.
  std::vector<std::string> texts;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& path : paths) {
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    auto parsed = config::ParseConfig(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   parsed.error().c_str());
      return 1;
    }
    texts.push_back(std::move(text));
  }
  if (texts.empty()) {
    std::fprintf(stderr, "no config files in %s\n", dir.c_str());
    return 1;
  }
  config::ParsedNetwork network = config::ParseNetwork(texts);
  std::printf("parsed %zu devices, inferred %zu links\n",
              network.configs.size(), network.graph.edge_count());

  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  for (topo::NodeId id = 0; id < network.configs.size(); ++id) {
    for (const auto& prefix : network.configs[id].bgp.networks) {
      if (prefix != network.configs[id].loopback) {
        query.sources.push_back(id);
        query.destinations.push_back(id);
        break;
      }
    }
  }
  std::printf("query: all-pair reachability over %zu endpoints\n",
              query.sources.size());

  core::VerifyResult result;
  if (baseline) {
    core::MonoOptions options;
    options.memory_budget = budget;
    options.num_shards = shards;
    core::MonoVerifier verifier(options);
    result = verifier.Verify(network, {query});
  } else {
    dist::ControllerOptions options;
    options.num_workers = workers;
    options.num_shards = shards;
    options.worker_memory_budget = budget;
    options.scheme = scheme;
    core::S2Verifier verifier(options);
    result = verifier.Verify(network, {query});  // copy: names used below
  }

  if (!json_path.empty() &&
      !core::WriteJsonReport(result, json_path)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("status: %s\n", core::RunStatusName(result.status));
  if (!result.ok()) {
    std::printf("  %s\n", result.failure_detail.c_str());
    return 1;
  }
  const dp::QueryResult& q = result.queries[0];
  std::printf("routes: %zu   per-worker peak: %s   wall: %s\n",
              result.total_best_routes,
              core::HumanBytes(result.peak_memory_bytes).c_str(),
              core::HumanSeconds(result.TotalWallSeconds()).c_str());
  std::printf("reachability: %zu/%zu pairs   loop-free: %s   "
              "blackhole finals: %zu\n",
              q.reachable_pairs, q.reachable_pairs + q.unreachable_pairs,
              q.loop_free ? "yes" : "NO", q.blackhole_finals);
  for (const dp::ReachabilityPair& pair : q.reachability) {
    if (!pair.reachable) {
      std::printf("  UNREACHABLE: %s -> %s (%.0f%%)\n",
                  network.graph.node(pair.src).name.c_str(),
                  network.graph.node(pair.dst).name.c_str(),
                  100 * pair.fraction);
    }
  }
  return q.unreachable_pairs == 0 ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "synth") == 0) {
    return Synth(argc - 2, argv + 2);
  }
  if (argc >= 2 && std::strcmp(argv[1], "verify") == 0) {
    return Verify(argc - 2, argv + 2);
  }
  std::fprintf(stderr,
               "usage: s2cli synth fattree <k> <outdir>\n"
               "       s2cli synth dcn <outdir>\n"
               "       s2cli verify <configdir> [--workers N] [--shards N]"
               " [--budget MB] [--scheme metis|random|expert]"
               " [--baseline]\n");
  return 2;
}
