# Empty dependencies file for s2_config.
# This may be replaced when dependencies are built.
