// Partitioner tests (§4.1 algorithm, §5.6 schemes): coverage, determinism,
// the balance-first objective, and the relative quality ordering of the
// schemes the paper compares.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "topo/dcn.h"
#include "topo/fattree.h"
#include "topo/partition.h"

namespace s2::topo {
namespace {

Network TestFatTree(int k) {
  FatTreeParams params;
  params.k = k;
  return MakeFatTree(params);
}

using SchemeParts = std::tuple<PartitionScheme, uint32_t>;

class EverySchemeTest : public ::testing::TestWithParam<SchemeParts> {};

TEST_P(EverySchemeTest, AssignsEveryNodeWithinRange) {
  auto [scheme, parts] = GetParam();
  Network net = TestFatTree(8);
  PartitionResult result = Partition(net.graph, parts, scheme);
  ASSERT_EQ(result.assignment.size(), net.graph.size());
  std::map<uint32_t, int> sizes;
  for (uint32_t part : result.assignment) {
    ASSERT_LT(part, parts);
    sizes[part]++;
  }
  if (scheme != PartitionScheme::kImbalanced) {
    // Every segment is used (the imbalanced probe intentionally isn't
    // balanced but still uses all parts when nodes remain).
    EXPECT_EQ(sizes.size(), parts);
  }
}

TEST_P(EverySchemeTest, DeterministicForSeed) {
  auto [scheme, parts] = GetParam();
  Network net = TestFatTree(6);
  auto a = Partition(net.graph, parts, scheme, 7);
  auto b = Partition(net.graph, parts, scheme, 7);
  EXPECT_EQ(a.assignment, b.assignment);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndParts, EverySchemeTest,
    ::testing::Combine(::testing::Values(PartitionScheme::kMetisLike,
                                         PartitionScheme::kRandom,
                                         PartitionScheme::kExpert,
                                         PartitionScheme::kImbalanced,
                                         PartitionScheme::kCommHeavy),
                       ::testing::Values(1u, 2u, 4u, 8u)));

TEST(PartitionTest, SinglePartIsAllZero) {
  Network net = TestFatTree(4);
  auto result =
      Partition(net.graph, 1, PartitionScheme::kMetisLike);
  for (uint32_t part : result.assignment) EXPECT_EQ(part, 0u);
  EXPECT_EQ(result.EdgeCut(net.graph), 0u);
  EXPECT_DOUBLE_EQ(result.LoadImbalance(net.graph), 1.0);
}

TEST(PartitionTest, MetisBalancesLoad) {
  Network net = TestFatTree(8);
  auto result = Partition(net.graph, 4, PartitionScheme::kMetisLike);
  // Balance is the primary objective (paper §4.1): within 10% of ideal.
  EXPECT_LT(result.LoadImbalance(net.graph), 1.10);
}

TEST(PartitionTest, ExpertBalancesLoad) {
  Network net = TestFatTree(8);
  auto result = Partition(net.graph, 4, PartitionScheme::kExpert);
  EXPECT_LT(result.LoadImbalance(net.graph), 1.10);
}

TEST(PartitionTest, ExpertKeepsPodsTogether) {
  Network net = TestFatTree(8);
  auto result = Partition(net.graph, 4, PartitionScheme::kExpert);
  std::map<int, std::set<uint32_t>> parts_of_pod;
  for (NodeId id = 0; id < net.graph.size(); ++id) {
    int pod = net.graph.node(id).pod;
    if (pod >= 0) parts_of_pod[pod].insert(result.assignment[id]);
  }
  for (const auto& [pod, parts] : parts_of_pod) {
    EXPECT_EQ(parts.size(), 1u) << "pod " << pod << " split";
  }
}

TEST(PartitionTest, MetisCutsLessThanRandom) {
  Network net = TestFatTree(8);
  auto metis = Partition(net.graph, 4, PartitionScheme::kMetisLike);
  auto random = Partition(net.graph, 4, PartitionScheme::kRandom);
  EXPECT_LT(metis.EdgeCut(net.graph), random.EdgeCut(net.graph));
}

TEST(PartitionTest, CommHeavyCutsMoreThanExpert) {
  Network net = TestFatTree(8);
  auto heavy = Partition(net.graph, 4, PartitionScheme::kCommHeavy);
  auto expert = Partition(net.graph, 4, PartitionScheme::kExpert);
  EXPECT_GT(heavy.EdgeCut(net.graph), expert.EdgeCut(net.graph));
}

TEST(PartitionTest, ImbalancedIsImbalanced) {
  Network net = TestFatTree(8);
  auto result = Partition(net.graph, 4, PartitionScheme::kImbalanced);
  // ~3/4 of nodes in segment 0 -> imbalance near 3x.
  EXPECT_GT(result.LoadImbalance(net.graph), 2.0);
}

TEST(PartitionTest, WorksOnDcnToo) {
  Network net = MakeDcn(DcnParams{});
  for (auto scheme : {PartitionScheme::kMetisLike, PartitionScheme::kExpert,
                      PartitionScheme::kRandom}) {
    auto result = Partition(net.graph, 4, scheme);
    EXPECT_EQ(result.assignment.size(), net.graph.size());
    // DCN loads are uniform; every scheme should stay reasonable.
    EXPECT_LT(result.LoadImbalance(net.graph), 1.5)
        << PartitionSchemeName(scheme);
  }
}

TEST(PartitionTest, SchemeNames) {
  EXPECT_STREQ(PartitionSchemeName(PartitionScheme::kMetisLike), "metis");
  EXPECT_STREQ(PartitionSchemeName(PartitionScheme::kRandom), "random");
  EXPECT_STREQ(PartitionSchemeName(PartitionScheme::kExpert), "expert");
  EXPECT_STREQ(PartitionSchemeName(PartitionScheme::kImbalanced),
               "imbalanced");
  EXPECT_STREQ(PartitionSchemeName(PartitionScheme::kCommHeavy),
               "comm-heavy");
}

}  // namespace
}  // namespace s2::topo
