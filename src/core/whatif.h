// What-if analysis: re-verify under hypothetical failures.
//
// Simulation-based verifiers reason about one concrete network state; the
// operator workflow for failure questions is to edit the model and
// re-verify (the paper's §6.2 contrast with analysis-based verifiers that
// reason about arbitrary failures symbolically). These helpers produce the
// edited models: a parsed network minus a link or minus a device, plus a
// reachability diff between two verification results.
#pragma once

#include "config/parser.h"
#include "dp/properties.h"

namespace s2::core {

// A copy of `network` with the link between `a` and `b` removed: both
// ends' interfaces on the shared /31(s) and the BGP sessions over them
// disappear, and the topology graph is re-inferred. Parallel links between
// the same pair are all removed. No-op copy if no such link exists.
config::ParsedNetwork RemoveLink(const config::ParsedNetwork& network,
                                 topo::NodeId a, topo::NodeId b);

// A copy of `network` with device `node` failed: all of its interfaces
// and sessions are removed (the device is kept, isolated, so node ids
// remain stable for queries and diffs).
config::ParsedNetwork FailNode(const config::ParsedNetwork& network,
                               topo::NodeId node);

// A (src, dst) pair whose reachability differs between two results.
struct ReachabilityChange {
  topo::NodeId src;
  topo::NodeId dst;
  bool was_reachable;
  bool now_reachable;
};

// Pairs whose verdicts changed from `before` to `after` (same query).
std::vector<ReachabilityChange> DiffReachability(
    const dp::QueryResult& before, const dp::QueryResult& after);

}  // namespace s2::core
