// Span-based tracing (the observability layer every perf PR reads its
// evidence from).
//
// A Span is an RAII region marker: construction stamps a begin time,
// destruction records a complete event into the process-global Tracer.
// Spans carry a category (a coarse subsystem bucket: "controller", "cp",
// "dp", "bdd", "comms"), a name, and small integer args (worker / lane /
// shard / round ids) — exactly the per-phase, per-worker breakdown the
// paper's §7 evaluation slices by.
//
// Cost discipline: the tracer is disabled by default, and a disabled Span
// is one relaxed atomic load plus trivially-constructed members — no
// clock reads, no allocation, no locking. All span names and arg keys are
// string literals, so an *enabled* span allocates only when its arg vector
// spills. This keeps instrumentation safe to leave on hot paths
// (forwarding rounds, BDD GC, sidecar drains); micro_bench pins the
// disabled cost.
//
// Tracing never feeds back into verification: spans only read the steady
// clock, so results are byte-identical with tracing on or off
// (determinism_test pins this).
//
// Export formats:
//   - ToChromeJson(): Chrome trace-event JSON ("X" complete events),
//     loadable in chrome://tracing / Perfetto;
//   - Summary(): a plain-text per-(category, name) table of count and
//     total/max duration, for terminal use.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace s2::obs {

class Tracer {
 public:
  // One complete ("X") trace event. `name`/`category`/arg keys must be
  // string literals (static storage): events outlive the spans that made
  // them and are recorded without copying.
  struct Event {
    const char* name = "";
    const char* category = "";
    double ts_us = 0;   // microseconds since Enable()
    double dur_us = 0;
    uint32_t tid = 0;   // small per-thread id, assigned on first use
    std::vector<std::pair<const char*, int64_t>> args;
  };

  // The process-global tracer every Span records into.
  static Tracer& Get();

  // Starts capture: clears any previous events and resets the time epoch.
  void Enable();
  // Stops capture; recorded events remain readable until Enable/Clear.
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void Clear();

  void Record(Event event);

  size_t event_count() const;
  std::vector<Event> events() const;  // snapshot copy

  // Chrome trace-event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string ToChromeJson() const;
  // Writes ToChromeJson() to `path`; false on I/O failure.
  bool WriteChromeJson(const std::string& path) const;

  // Per-(category, name) plain-text table: count, total ms, max ms.
  std::string Summary() const;

  // Microseconds since the Enable() epoch (0 when never enabled).
  double NowMicros() const;

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::chrono::steady_clock::time_point epoch_{};
};

// RAII span. Usage:
//   obs::Span span("cp", "cp.shard");
//   span.Arg("shard", shard_index);
class Span {
 public:
  Span(const char* category, const char* name)
      : active_(Tracer::Get().enabled()) {
    if (active_) Begin(category, name);
  }
  ~Span() {
    if (active_) End();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Attaches a small integer argument; `key` must be a string literal.
  void Arg(const char* key, int64_t value) {
    if (active_) event_.args.emplace_back(key, value);
  }

 private:
  void Begin(const char* category, const char* name);
  void End();

  bool active_;
  Tracer::Event event_;
};

}  // namespace s2::obs
