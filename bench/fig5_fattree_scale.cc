// Figure 5: running time and peak memory of Batfish, Bonsai, and S2
// (1, 8, 16 workers) across FatTree sizes.
//
// Paper shape to reproduce: Batfish OOMs first (between FatTree40 and 50);
// Bonsai stays memory-light but hits the deadline (between FatTree70 and
// 80) because per-destination compression scales with network size; S2
// scales furthest, with the reachable size growing with worker count, and
// per-worker peak memory falling as workers are added.
#include "bench_util.h"

using namespace s2;
using namespace s2::bench;

int main(int argc, char** argv) {
  ObsOptions obs = ParseObsFlags(argc, argv);
  std::printf(
      "=== Figure 5: FatTree scaling — Batfish vs Bonsai vs S2 ===\n");
  // Tighter than kWorkerBudget: S2's peaks are CP-dominated (per-shard
  // routes), so the worker-count ladder sits lower than the monolith's
  // all-routes-at-once wall.
  const size_t budget = 4u << 20;
  std::printf("per-worker budget %s, %d prefix shards, bonsai deadline "
              "%.1fs\n\n",
              core::HumanBytes(budget).c_str(), kShards, kBonsaiDeadline);

  for (int k : {6, 8, 10, 12}) {
    BuiltNetwork built = BuildFatTree(k);
    dp::Query query = AllPairQuery(built.parsed);
    std::printf("--- k=%d (%zu switches) ~ %s ---\n", k,
                built.parsed.graph.size(), PaperSize(k));
    PrintHeader("verifier");

    {
      core::MonoOptions mono_options = MonoWithBudget();
      mono_options.memory_budget = budget;
      core::MonoVerifier mono(mono_options);
      PrintRow("batfish", mono.Verify(built.parsed, {query}));
    }
    {
      core::BonsaiOptions options;
      options.modeled_seconds_per_scan_node = kBonsaiScanCost;
      options.timeout_seconds = kBonsaiDeadline;
      core::BonsaiVerifier bonsai(options);
      core::VerifyResult result = bonsai.Verify(built.network);
      PrintRow("bonsai", result);
    }
    for (uint32_t workers : {1u, 8u, 16u}) {
      dist::ControllerOptions options = S2Options(workers, kShards);
      options.worker_memory_budget = budget;
      core::S2Verifier verifier(options);
      core::VerifyResult result = verifier.Verify(built.parsed, {query});
      CaptureReport(obs, verifier, result);
      PrintRow("s2-" + std::to_string(workers) + "w", result);
    }
    std::printf("\n");
  }

  std::printf(
      "expected shape: batfish hits the memory wall first (OOM from\n"
      "~FatTree60); bonsai stays memory-flat but times out from\n"
      "~FatTree80; s2-1w outlives batfish by two sizes thanks to prefix\n"
      "sharding before hitting the wall itself; adding workers divides\n"
      "the per-worker peak and extends the reach to the largest size.\n");
  FinishObs(obs);
  return 0;
}
