# Empty dependencies file for s2_dp.
# This may be replaced when dependencies are built.
