// JSON report tests: schema stability, verdict content, escaping, and the
// file-writing path, checked by string inspection (the schema is small
// enough to pin directly).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/mono.h"
#include "core/report.h"
#include "test_networks.h"

namespace s2::core {
namespace {

VerifyResult SampleResult() {
  auto net = testing::Parse(testing::MakeChain(3));
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  query.sources = {0, 2};
  query.destinations = {0, 2};
  MonoVerifier verifier{MonoOptions{}};
  return verifier.Verify(net, {query});
}

TEST(ReportTest, ContainsTheHeadlineFields) {
  std::string json = ToJson(SampleResult());
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"total_best_routes\":"), std::string::npos);
  EXPECT_NE(json.find("\"peak_memory_bytes\":"), std::string::npos);
  EXPECT_NE(json.find("\"control_plane\":{"), std::string::npos);
  EXPECT_NE(json.find("\"reachable_pairs\":2"), std::string::npos);
  EXPECT_NE(json.find("\"unreachable\":[]"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ReportTest, FailureDetailIsEscaped) {
  VerifyResult result;
  result.status = RunStatus::kOutOfMemory;
  result.failure_detail = "domain \"worker-1\" \\ exceeded";
  std::string json = ToJson(result);
  EXPECT_NE(json.find("\"status\":\"OOM\""), std::string::npos);
  EXPECT_NE(json.find("\\\"worker-1\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\ exceeded"), std::string::npos);
}

TEST(ReportTest, UnreachablePairsAreListed) {
  VerifyResult result;
  dp::QueryResult query;
  query.reachability = {{0, 1, 0.25, false}, {1, 0, 1.0, true}};
  query.unreachable_pairs = 1;
  query.reachable_pairs = 1;
  result.queries.push_back(query);
  std::string json = ToJson(result);
  EXPECT_NE(json.find("{\"src\":0,\"dst\":1,\"fraction\":0.25}"),
            std::string::npos);
  // Reachable pairs are not in the unreachable list.
  EXPECT_EQ(json.find("\"src\":1,\"dst\":0"), std::string::npos);
}

TEST(ReportTest, WaypointAndValleyCountsSurface) {
  VerifyResult result;
  dp::QueryResult query;
  query.waypoints = {{7, true}, {9, false}};
  query.valleys.push_back(dp::ForwardingValley{0, {0, 1, 0}});
  query.paths_recorded = 3;
  result.queries.push_back(query);
  std::string json = ToJson(result);
  EXPECT_NE(json.find("{\"transit\":7,\"always_traversed\":true}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"transit\":9,\"always_traversed\":false}"),
            std::string::npos);
  EXPECT_NE(json.find("\"valleys\":1"), std::string::npos);
  EXPECT_NE(json.find("\"paths_recorded\":3"), std::string::npos);
}

TEST(ReportTest, WritesToFile) {
  auto path = std::filesystem::temp_directory_path() / "s2-report-test.json";
  VerifyResult result = SampleResult();
  ASSERT_TRUE(WriteJsonReport(result, path.string()));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, ToJson(result) + "\n");
  std::filesystem::remove(path);
}

TEST(ReportTest, RejectsUnwritablePath) {
  VerifyResult result;
  EXPECT_FALSE(WriteJsonReport(result, "/nonexistent-dir/report.json"));
}

}  // namespace
}  // namespace s2::core
