// OSPF half of the switch model: single-area, uniform link cost 1.
//
// The propagation model is a synchronous distance-vector iteration over the
// same round machinery as BGP; for a single-area network with static
// uniform costs it converges to the same shortest-path (plus ECMP) fixed
// point an SPF computation would produce, while fitting the distributed
// pull-based framework unchanged.
#pragma once

#include "config/vi_model.h"
#include "cp/route.h"

namespace s2::cp {

// The route a node originates for its own loopback (metric 0).
Route OspfOriginate(const util::Ipv4Prefix& prefix, topo::NodeId node);

// The advertisement of `best` to a neighbor: metric + 1.
Route OspfExport(const Route& best);

}  // namespace s2::cp
