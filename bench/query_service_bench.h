// Serving-mode benchmark shared by bench/query_service (standalone) and
// fig10_dpv --serve_queries=N: converge the default DCN once, publish a
// snapshot, then serve N queries drawn from a fixed pool through the
// QueryService — no reconvergence, no per-query domain rebuilds.
//
// What it measures and gates (EXPERIMENTS.md "query-service"):
//   - cold latency: first serve of each distinct query (predicate-cache
//     miss — scoping + symbolic forwarding on the persistent domains);
//   - warm latency: every later serve (cache hit — header hash + finals
//     decode + verdict only). CI gate: warm must be >= 3x faster;
//   - verdict fidelity: each distinct query's served result is compared
//     against Controller::RunQuery on the same converged state;
//   - svc.* counters must appear in the combined RunReport registry.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/report.h"
#include "svc/query_service.h"
#include "topo/dcn.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace s2::bench {

inline int RunQueryServiceMode(size_t serve_count) {
  constexpr uint32_t kSvcWorkers = 4;
  constexpr int kSvcShards = 8;
  topo::Network network = topo::MakeDcn(topo::DcnParams{});
  config::ParsedNetwork parsed =
      config::ParseNetwork(config::SynthesizeConfigs(network));

  // Query pool: one single-source reachability query per TOR, dst space
  // 10.0.0.0/8, destination a TOR in another part of the fabric. Distinct
  // sources mean distinct predicate-cache keys.
  std::vector<topo::NodeId> tors;
  for (topo::NodeId id = 0; id < parsed.graph.size(); ++id) {
    if (parsed.graph.node(id).role == topo::Role::kEdge) tors.push_back(id);
  }
  std::vector<dp::Query> pool;
  for (size_t i = 0; i < tors.size(); ++i) {
    dp::Query query;
    query.sources = {tors[i]};
    query.destinations = {tors[(i + tors.size() / 2) % tors.size()]};
    query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
    pool.push_back(std::move(query));
  }

  dist::ControllerOptions options = S2Options(kSvcWorkers, kSvcShards);
  options.worker_memory_budget = 0;
  core::S2Verifier verifier(options);
  util::Stopwatch converge_watch;
  core::VerifyResult converged = verifier.Verify(parsed, {});
  double converge_seconds = converge_watch.ElapsedSeconds();
  if (!converged.ok()) {
    std::printf("FAIL: convergence: %s\n", converged.failure_detail.c_str());
    return 1;
  }
  std::optional<svc::Snapshot> snapshot = verifier.ExportSnapshot();
  if (!snapshot) {
    std::printf("FAIL: no exportable snapshot\n");
    return 1;
  }

  svc::SnapshotRegistry registry;
  registry.Publish(*snapshot);
  svc::QueryService service(&registry, svc::QueryService::Options{});

  // Serve `serve_count` queries drawn (seeded) from the pool; every serve
  // is timed individually so cold misses and warm hits split cleanly.
  util::Rng rng(0x53325256);  // "S2RV"
  double cold_seconds = 0, warm_seconds = 0;
  size_t cold_count = 0, warm_count = 0;
  util::Stopwatch total_watch;
  for (size_t i = 0; i < serve_count; ++i) {
    const dp::Query& query = pool[rng.Below(pool.size())];
    util::Stopwatch watch;
    svc::QueryService::Served served = service.Serve(query);
    double seconds = watch.ElapsedSeconds();
    if (served.epoch == 0) {
      std::printf("FAIL: serve %zu missed the snapshot\n", i);
      return 1;
    }
    if (served.cache_hit) {
      warm_seconds += seconds;
      ++warm_count;
    } else {
      cold_seconds += seconds;
      ++cold_count;
    }
  }
  double total_seconds = total_watch.ElapsedSeconds();

  // Fidelity: every distinct pool query served once more, compared against
  // batch execution on the same converged controller.
  bool verdicts_match = true;
  for (size_t q = 0; q < pool.size(); ++q) {
    dp::QueryResult batch =
        verifier.last_controller()->RunQuery(pool[q]).result;
    dp::QueryResult servedr = service.Serve(pool[q]).result;
    if (servedr.reachable_pairs != batch.reachable_pairs ||
        servedr.unreachable_pairs != batch.unreachable_pairs ||
        servedr.loop_free != batch.loop_free ||
        servedr.blackhole_free != batch.blackhole_free ||
        servedr.loop_finals != batch.loop_finals ||
        servedr.blackhole_finals != batch.blackhole_finals) {
      verdicts_match = false;
      std::printf("VERDICT MISMATCH pool query %zu\n", q);
    }
  }

  svc::QueryService::Stats stats = service.stats();
  bdd::Manager::CacheStats op = service.OpCacheStats();
  double cold_mean = cold_count > 0 ? cold_seconds / cold_count : 0;
  double warm_mean = warm_count > 0 ? warm_seconds / warm_count : 0;
  double warm_speedup = warm_mean > 0 ? cold_mean / warm_mean : 0;
  double qps = total_seconds > 0 ? double(serve_count) / total_seconds : 0;
  double op_hit_rate = (op.hits + op.misses) > 0
                           ? double(op.hits) / double(op.hits + op.misses)
                           : 0;

  // The combined serving-mode RunReport: verifier phases + svc counters.
  obs::Registry report;
  report.SetLabel("schema", "s2.run_report.v1");
  core::PublishVerifyResult(converged, report);
  verifier.last_controller()->PublishMetrics(report);
  service.PublishMetrics(report);
  registry.PublishMetrics(report);
  bool report_ok = report.Has("svc.queries") && report.Has("svc.cache.hits") &&
                   report.Has("svc.cache.misses") &&
                   report.Has("svc.opcache.hits") &&
                   report.Has("svc.snapshots.current_epoch");

  std::printf("=== query service: %zu serves from a %zu-query pool, "
              "default DCN (%zu switches), %u workers ===\n",
              serve_count, pool.size(), parsed.graph.size(), kSvcWorkers);
  std::printf("%-34s %s\n", "convergence (once, amortized):",
              core::HumanSeconds(converge_seconds).c_str());
  std::printf("%-34s %zu cold / %zu warm\n", "serves:", cold_count,
              warm_count);
  std::printf("%-34s %.3f ms\n", "cold mean latency:", cold_mean * 1e3);
  std::printf("%-34s %.3f ms\n", "warm mean latency:", warm_mean * 1e3);
  std::printf("%-34s %.2fx\n", "warm speedup:", warm_speedup);
  std::printf("%-34s %.0f\n", "queries/sec (overall):", qps);
  std::printf("%-34s hits=%zu misses=%zu evictions=%zu\n",
              "predicate cache:", stats.cache_hits, stats.cache_misses,
              stats.cache_evictions);
  std::printf("%-34s hits=%zu misses=%zu (%.1f%% hit rate)\n",
              "bdd op-cache:", op.hits, op.misses, op_hit_rate * 100);
  std::printf("%-34s built=%zu rebinds=%zu fallbacks=%zu\n",
              "domains:", stats.domains_built, stats.epoch_rebuilds,
              stats.scope_fallbacks);
  std::printf("%-34s %s\n", "verdicts vs batch:",
              verdicts_match ? "identical" : "MISMATCH");
  std::printf("%-34s %s\n", "svc.* in run report:",
              report_ok ? "present" : "MISSING");

  std::FILE* json = std::fopen("BENCH_query_service.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n"
        "  \"benchmark\": \"query_service\",\n"
        "  \"topology\": \"dcn-default\",\n"
        "  \"workers\": %u,\n"
        "  \"shards\": %d,\n"
        "  \"pool_queries\": %zu,\n"
        "  \"serves\": %zu,\n"
        "  \"cold_serves\": %zu,\n"
        "  \"warm_serves\": %zu,\n"
        "  \"cold_mean_seconds\": %.9f,\n"
        "  \"warm_mean_seconds\": %.9f,\n"
        "  \"warm_speedup\": %.3f,\n"
        "  \"queries_per_second\": %.1f,\n"
        "  \"predicate_cache_hits\": %zu,\n"
        "  \"predicate_cache_misses\": %zu,\n"
        "  \"opcache_hits\": %zu,\n"
        "  \"opcache_misses\": %zu,\n"
        "  \"opcache_hit_rate\": %.4f,\n"
        "  \"verdicts_match_batch\": %s\n"
        "}\n",
        kSvcWorkers, kSvcShards, pool.size(), serve_count, cold_count,
        warm_count, cold_mean, warm_mean, warm_speedup, qps, stats.cache_hits,
        stats.cache_misses, op.hits, op.misses, op_hit_rate,
        verdicts_match ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_query_service.json\n");
  }
  std::printf("\n");

  if (!verdicts_match) return 1;
  if (!report_ok) {
    std::printf("FAIL: svc.* counters missing from the run report\n");
    return 1;
  }
  if (serve_count >= 1000 && warm_speedup < 3.0) {
    std::printf("FAIL: warm speedup %.2fx < 3x\n", warm_speedup);
    return 1;
  }
  return 0;
}

}  // namespace s2::bench
