#include "cp/policy.h"

#include <algorithm>

namespace s2::cp {

namespace {

bool ClauseMatches(const config::RouteMapClause& clause,
                   const util::Ipv4Prefix& prefix, const AttrTuple& attrs) {
  if (clause.match_covered_by && !clause.match_covered_by->Contains(prefix)) {
    return false;
  }
  if (!clause.match_any_community.empty()) {
    bool any = false;
    for (uint32_t community : clause.match_any_community) {
      if (attrs.HasCommunity(community)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

}  // namespace

PolicyEval EvalRouteMap(const config::RouteMap* map, const Route& route,
                        uint32_t own_asn) {
  PolicyEval result;
  if (map == nullptr) {
    result.accepted = true;
    return result;
  }
  // Copy-on-write scratch: `current` reads through the route's interned
  // tuple until the first set action forces a private copy.
  const AttrTuple* current = &route.attrs.get();
  auto scratch = [&]() -> AttrTuple& {
    if (!result.attrs_modified) {
      result.tuple = *current;
      current = &result.tuple;
      result.attrs_modified = true;
    }
    return result.tuple;
  };
  for (const config::RouteMapClause& clause : map->clauses) {
    // Matches read the accumulated sets of earlier continue clauses.
    if (!ClauseMatches(clause, route.prefix, *current)) continue;
    if (!clause.permit) {
      result.accepted = false;
      return result;  // denied
    }
    if (clause.set_local_pref) scratch().local_pref = *clause.set_local_pref;
    if (clause.set_med) scratch().med = *clause.set_med;
    for (uint32_t community : clause.add_communities) {
      scratch().AddCommunity(community);
    }
    for (uint32_t community : clause.delete_communities) {
      AttrTuple& tuple = scratch();
      auto it = std::lower_bound(tuple.communities.begin(),
                                 tuple.communities.end(), community);
      if (it != tuple.communities.end() && *it == community) {
        tuple.communities.erase(it);
      }
    }
    if (clause.as_path_prepend > 0) {
      AttrTuple& tuple = scratch();
      tuple.as_path.insert(tuple.as_path.begin(), clause.as_path_prepend,
                           own_asn);
    }
    if (clause.set_as_path_overwrite) {
      scratch().as_path = {own_asn};
      result.as_path_overwritten = true;
    }
    if (!clause.continue_next) {
      result.accepted = true;
      return result;
    }
    // continue: keep the accumulated sets and fall through to later
    // clauses; if nothing further matches, the implicit deny applies —
    // except that a continue clause that matched counts as a permit when
    // followed only by non-matching clauses. Cisco semantics: the route is
    // permitted if the last matched clause was a permit. Track that.
    result.accepted = true;
  }
  return result;
}

PolicyResult ApplyRouteMap(const config::RouteMap* map, const Route& route,
                           uint32_t own_asn, AttrPool& pool) {
  PolicyEval eval = EvalRouteMap(map, route, own_asn);
  PolicyResult result;
  result.accepted = eval.accepted;
  result.as_path_overwritten = eval.as_path_overwritten;
  if (eval.accepted) {
    result.route = route;
    if (eval.attrs_modified) {
      result.route.attrs = pool.Intern(std::move(eval.tuple));
    }
  }
  return result;
}

void RemovePrivateAs(std::vector<uint32_t>& as_path, topo::Vendor vendor) {
  if (vendor == topo::Vendor::kAlpha) {
    // Alpha: strip every private ASN.
    as_path.erase(std::remove_if(as_path.begin(), as_path.end(),
                                 [](uint32_t asn) {
                                   return IsPrivateAsn(asn);
                                 }),
                  as_path.end());
  } else {
    // Beta: strip only the leading run of private ASNs (those preceding
    // the first public ASN in the path).
    size_t keep_from = 0;
    while (keep_from < as_path.size() && IsPrivateAsn(as_path[keep_from])) {
      ++keep_from;
    }
    as_path.erase(as_path.begin(),
                  as_path.begin() + static_cast<ptrdiff_t>(keep_from));
  }
}

}  // namespace s2::cp
