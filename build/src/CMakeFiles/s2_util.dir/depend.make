# Empty dependencies file for s2_util.
# This may be replaced when dependencies are built.
