#include "dist/cpo.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace s2::dist {

void RoundMetrics::Add(const RoundMetrics& other) {
  rounds += other.rounds;
  wall_seconds += other.wall_seconds;
  modeled_seconds += other.modeled_seconds;
  comm_bytes += other.comm_bytes;
  comm_messages += other.comm_messages;
  bdd_cache_hits += other.bdd_cache_hits;
  bdd_cache_misses += other.bdd_cache_misses;
  bdd_cache_evictions += other.bdd_cache_evictions;
}

Cpo::Cpo(std::vector<std::unique_ptr<Worker>>* workers,
         SidecarFabric* fabric, util::ThreadPool* pool, CostModelParams cost,
         int max_rounds, FaultHooks hooks)
    : workers_(workers),
      fabric_(fabric),
      pool_(pool),
      cost_(cost),
      max_rounds_(max_rounds),
      hooks_(std::move(hooks)) {}

double Cpo::GcPenalty() const {
  double worst = 0;
  for (const auto& worker : *workers_) {
    worst = std::max(worst,
                     util::GcPenaltySeconds(worker->tracker(), cost_));
  }
  return worst;
}

RoundMetrics Cpo::RunRounds() {
  RoundMetrics metrics;
  util::Stopwatch wall;
  size_t num_workers = workers_->size();
  std::vector<char> produced(num_workers, 0);
  for (;;) {
    obs::Span round_span("cp", "cp.round");
    round_span.Arg("shard", current_shard_);
    round_span.Arg("round", cp_round_total_);
    // Phase A (barrier): every worker computes its nodes' round and ships
    // outboxes through its sidecar.
    size_t bytes_before = fabric_->total_bytes();
    pool_->ParallelFor(num_workers, [&](size_t w) {
      produced[w] = (*workers_)[w]->ComputeAndShip() ? 1 : 0;
    });
    double busy_a = 0;
    bool any = false;
    for (size_t w = 0; w < num_workers; ++w) {
      busy_a = std::max(busy_a, (*workers_)[w]->last_phase_seconds());
      any = any || produced[w];
    }
    // Global fix point: no worker produced updates AND the fabric is
    // quiescent (in reliable mode, in-flight/delayed/unacked frames keep
    // the rounds going until every message is delivered and acked).
    if (!any && !fabric_->HasPending()) break;

    // Phase B (barrier): deliver and merge.
    pool_->ParallelFor(num_workers,
                       [&](size_t w) { (*workers_)[w]->Deliver(); });
    double busy_b = 0;
    for (size_t w = 0; w < num_workers; ++w) {
      busy_b = std::max(busy_b, (*workers_)[w]->last_phase_seconds());
    }
    size_t bytes_after = fabric_->total_bytes();
    metrics.comm_bytes += bytes_after - bytes_before;
    metrics.modeled_seconds +=
        busy_a + busy_b +
        double(bytes_after - bytes_before) / double(num_workers) /
            cost_.bandwidth_bytes_per_sec +
        GcPenalty() + cost_.round_latency_seconds;
    ++cp_round_total_;
    AtBarrier();
    if (++metrics.rounds > max_rounds_) {
      throw util::SimulatedTimeout(
          "distributed control plane did not converge within " +
          std::to_string(metrics.rounds) + " rounds");
    }
  }
  metrics.wall_seconds = wall.ElapsedSeconds();
  return metrics;
}

void Cpo::AtBarrier() {
  if (!hooks_.active()) return;
  // Checkpoint first: a crash due at the same barrier then recovers from
  // the freshest possible snapshot with an empty replay window.
  if (hooks_.checkpoint_interval > 0 &&
      cp_round_total_ % hooks_.checkpoint_interval == 0) {
    hooks_.checkpoint(current_shard_);
  }
  for (uint32_t w : hooks_.injector->TakeCrashes(
           fault::CrashPhase::kControlPlaneRound, cp_round_total_)) {
    hooks_.recover(w);
  }
}

size_t Cpo::MaxWorkerPeakNow() const {
  size_t peak = 0;
  for (const auto& worker : *workers_) {
    peak = std::max(peak, worker->tracker().peak_bytes());
  }
  return peak;
}

RoundMetrics Cpo::Run(bool any_ospf, const cp::ShardPlan* plan,
                      cp::RibStore* store) {
  RoundMetrics total;
  shard_metrics_.clear();
  observed_peak_ = 0;
  cp_round_total_ = 0;
  if (any_ospf) {
    obs::Span span("cp", "cp.ospf_pass");
    pool_->ParallelFor(workers_->size(),
                       [&](size_t w) { (*workers_)[w]->BeginOspf(); });
    current_shard_ = -1;
    if (hooks_.active()) hooks_.checkpoint(-1);
    total.Add(RunRounds());
    pool_->ParallelFor(workers_->size(),
                       [&](size_t w) { (*workers_)[w]->FinishOspf(); });
  }
  if (plan != nullptr) {
    for (size_t shard = 0; shard < plan->num_shards(); ++shard) {
      obs::Span span("cp", "cp.shard");
      span.Arg("shard", static_cast<int64_t>(shard));
      const cp::PrefixSet* prefixes = &plan->shard(shard);
      // Reset per-worker peaks so the shard's own peak is attributable
      // (the paper's per-round peak memory, Fig 9).
      observed_peak_ = std::max(observed_peak_, MaxWorkerPeakNow());
      for (const auto& worker : *workers_) worker->tracker().ResetPeak();
      pool_->ParallelFor(workers_->size(), [&](size_t w) {
        (*workers_)[w]->BeginBgp(prefixes);
      });
      current_shard_ = static_cast<int>(shard);
      if (hooks_.active()) hooks_.checkpoint(current_shard_);
      ShardMetrics metrics;
      metrics.rounds = RunRounds();
      total.Add(metrics.rounds);
      // End of shard round: spill to persistent storage, freeing worker
      // memory before the next shard (§4.5).
      pool_->ParallelFor(workers_->size(), [&](size_t w) {
        (*workers_)[w]->SpillBgp(*store, static_cast<int>(shard));
      });
      metrics.max_worker_peak = MaxWorkerPeakNow();
      observed_peak_ = std::max(observed_peak_, metrics.max_worker_peak);
      span.Arg("rounds", metrics.rounds.rounds);
      span.Arg("peak_bytes", static_cast<int64_t>(metrics.max_worker_peak));
      shard_metrics_.push_back(metrics);
    }
  } else {
    pool_->ParallelFor(workers_->size(),
                       [&](size_t w) { (*workers_)[w]->BeginBgp(nullptr); });
    current_shard_ = -1;
    if (hooks_.active()) hooks_.checkpoint(-1);
    total.Add(RunRounds());
    pool_->ParallelFor(workers_->size(),
                       [&](size_t w) { (*workers_)[w]->RetainBgp(); });
  }
  return total;
}

}  // namespace s2::dist
