file(REMOVE_RECURSE
  "libs2_dp.a"
)
