// Verification-as-a-service tests: snapshot lifecycle (publish -> query ->
// republish -> epoch reclaim), the predicate cache, cross-query BDD
// op-cache reuse, admission scoping, and the served-vs-batch verdict
// identity — plus a chaos test that serves concurrently with republish
// (run under TSan via the chaos label) to pin the epoch-pinning protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "config/vendor.h"
#include "core/s2.h"
#include "obs/registry.h"
#include "svc/query_service.h"
#include "test_networks.h"
#include "topo/dcn.h"
#include "topo/fattree.h"
#include "util/ip.h"

namespace s2 {
namespace {

dp::Query AllPairQuery(const config::ParsedNetwork& net) {
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  for (topo::NodeId id = 0; id < net.graph.size(); ++id) {
    if (net.graph.node(id).role == topo::Role::kEdge) {
      query.sources.push_back(id);
      query.destinations.push_back(id);
    }
  }
  return query;
}

// Full structural equality of two query results — the "byte-identical
// verdicts" bar for served vs batch execution.
void ExpectIdenticalResult(const dp::QueryResult& got,
                           const dp::QueryResult& want,
                           const std::string& label) {
  EXPECT_EQ(got.reachable_pairs, want.reachable_pairs) << label;
  EXPECT_EQ(got.unreachable_pairs, want.unreachable_pairs) << label;
  ASSERT_EQ(got.reachability.size(), want.reachability.size()) << label;
  for (size_t i = 0; i < got.reachability.size(); ++i) {
    EXPECT_EQ(got.reachability[i].src, want.reachability[i].src) << label;
    EXPECT_EQ(got.reachability[i].dst, want.reachability[i].dst) << label;
    EXPECT_EQ(got.reachability[i].reachable, want.reachability[i].reachable)
        << label;
    EXPECT_DOUBLE_EQ(got.reachability[i].fraction,
                     want.reachability[i].fraction)
        << label;
  }
  EXPECT_EQ(got.loop_free, want.loop_free) << label;
  EXPECT_EQ(got.blackhole_free, want.blackhole_free) << label;
  EXPECT_EQ(got.loop_finals, want.loop_finals) << label;
  EXPECT_EQ(got.blackhole_finals, want.blackhole_finals) << label;
  EXPECT_EQ(got.multipath_violations.size(), want.multipath_violations.size())
      << label;
  ASSERT_EQ(got.waypoints.size(), want.waypoints.size()) << label;
  for (size_t i = 0; i < got.waypoints.size(); ++i) {
    EXPECT_EQ(got.waypoints[i].transit, want.waypoints[i].transit) << label;
    EXPECT_EQ(got.waypoints[i].always_traversed,
              want.waypoints[i].always_traversed)
        << label;
  }
  EXPECT_EQ(got.paths_recorded, want.paths_recorded) << label;
  EXPECT_EQ(got.valleys.size(), want.valleys.size()) << label;
}

struct Converged {
  core::S2Verifier verifier;
  core::VerifyResult result;
  svc::Snapshot snapshot;

  explicit Converged(const config::ParsedNetwork& net,
                     const std::vector<dp::Query>& queries,
                     dist::ControllerOptions options)
      : verifier(options), result(verifier.Verify(net, queries)) {
    EXPECT_TRUE(result.ok()) << result.failure_detail;
    std::optional<svc::Snapshot> exported = verifier.ExportSnapshot();
    EXPECT_TRUE(exported.has_value());
    if (exported) snapshot = std::move(*exported);
  }
};

dist::ControllerOptions TwoWorkerOptions() {
  dist::ControllerOptions options;
  options.num_workers = 2;
  return options;
}

TEST(SnapshotTest, ExportRequiresConvergedRun) {
  core::S2Verifier verifier{dist::ControllerOptions{}};
  EXPECT_FALSE(verifier.ExportSnapshot().has_value());
}

TEST(SnapshotTest, CaptureCarriesPredicatesAndEdges) {
  config::ParsedNetwork net = testing::Parse(testing::MakeChain(4));
  Converged run(net, {}, TwoWorkerOptions());
  EXPECT_EQ(run.snapshot.num_workers, 2u);
  EXPECT_EQ(run.snapshot.worker_of.size(), net.graph.size());
  size_t nodes_with_predicates = 0;
  for (const auto& worker : run.snapshot.predicates) {
    nodes_with_predicates += worker.size();
  }
  EXPECT_EQ(nodes_with_predicates, net.graph.size());
  EXPECT_FALSE(run.snapshot.fib_edges.empty());
  EXPECT_GT(run.snapshot.TotalBytes(), 0u);
  ASSERT_NE(run.snapshot.network, nullptr);
  EXPECT_EQ(run.snapshot.network->graph.size(), net.graph.size());
}

TEST(SnapshotRegistryTest, PublishAcquireReclaimLifecycle) {
  config::ParsedNetwork net = testing::Parse(testing::MakeChain(4));
  Converged run(net, {}, TwoWorkerOptions());

  svc::SnapshotRegistry registry;
  EXPECT_FALSE(registry.Acquire());

  uint64_t first = registry.Publish(run.snapshot);
  EXPECT_EQ(first, 1u);
  svc::SnapshotRef ref = registry.Acquire();
  ASSERT_TRUE(ref);
  EXPECT_EQ(ref.epoch(), first);
  EXPECT_EQ(registry.stats().pinned_refs, 1u);

  // Republish while the old epoch is pinned: the old entry must survive
  // until the pin drops, then be reclaimed.
  uint64_t second = registry.Publish(run.snapshot);
  EXPECT_EQ(second, 2u);
  EXPECT_EQ(registry.stats().live_epochs, 2u);
  EXPECT_EQ(registry.stats().current_epoch, second);
  EXPECT_EQ(ref->epoch, first);  // pinned epoch still readable

  // Copying re-pins; the copy keeps the epoch alive after the original.
  svc::SnapshotRef copy = ref;
  EXPECT_EQ(registry.stats().pinned_refs, 2u);
  ref.Release();
  EXPECT_EQ(registry.stats().live_epochs, 2u);
  copy.Release();
  svc::SnapshotRegistry::Stats stats = registry.stats();
  EXPECT_EQ(stats.live_epochs, 1u);
  EXPECT_EQ(stats.reclaimed, 1u);
  EXPECT_EQ(stats.pinned_refs, 0u);
  EXPECT_EQ(stats.published, 2u);
}

TEST(QueryServiceTest, ServeWithoutSnapshotIsAMiss) {
  svc::SnapshotRegistry registry;
  svc::QueryService service(&registry, svc::QueryService::Options{});
  svc::QueryService::Served served = service.Serve(dp::Query{});
  EXPECT_EQ(served.epoch, 0u);
  EXPECT_EQ(service.stats().snapshot_misses, 1u);
}

TEST(QueryServiceTest, ServedVerdictsMatchBatchOnChain) {
  config::ParsedNetwork net = testing::Parse(testing::MakeChain(5));
  dp::Query query = AllPairQuery(net);
  Converged run(net, {query}, TwoWorkerOptions());

  svc::SnapshotRegistry registry;
  registry.Publish(run.snapshot);
  svc::QueryService service(&registry, svc::QueryService::Options{});

  svc::QueryService::Served cold = service.Serve(query);
  EXPECT_FALSE(cold.cache_hit);
  ExpectIdenticalResult(cold.result, run.result.queries[0], "cold");

  svc::QueryService::Served warm = service.Serve(query);
  EXPECT_TRUE(warm.cache_hit);
  ExpectIdenticalResult(warm.result, run.result.queries[0], "warm");

  svc::QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
}

// Queries that differ only in destinations share one forwarding
// execution: the second query must be a cache hit with its own verdict.
TEST(QueryServiceTest, DestinationDisjointQueriesShareForwarding) {
  config::ParsedNetwork net = testing::Parse(testing::MakeChain(5));
  dp::Query all = AllPairQuery(net);
  dp::Query narrowed = all;
  narrowed.destinations = {all.destinations.front()};

  Converged run(net, {all, narrowed}, TwoWorkerOptions());
  svc::SnapshotRegistry registry;
  registry.Publish(run.snapshot);
  svc::QueryService service(&registry, svc::QueryService::Options{});

  svc::QueryService::Served first = service.Serve(all);
  EXPECT_FALSE(first.cache_hit);
  svc::QueryService::Served second = service.Serve(narrowed);
  EXPECT_TRUE(second.cache_hit);
  ExpectIdenticalResult(first.result, run.result.queries[0], "all");
  ExpectIdenticalResult(second.result, run.result.queries[1], "narrowed");
}

// The satellite regression: with the result cache disabled (every serve
// re-executes forwarding), a repeated identical query must replay >90% out
// of the persistent domains' op caches — the cross-query reuse that
// per-query rebuilt domains never achieved.
TEST(QueryServiceTest, RepeatedQueryOpCacheHitRateAbove90Percent) {
  topo::FatTreeParams params;
  params.k = 4;
  config::ParsedNetwork net =
      config::ParseNetwork(config::SynthesizeConfigs(topo::MakeFatTree(params)));
  dp::Query query = AllPairQuery(net);
  Converged run(net, {}, TwoWorkerOptions());

  svc::SnapshotRegistry registry;
  registry.Publish(run.snapshot);
  svc::QueryService::Options options;
  options.result_cache_entries = 0;  // force re-execution
  options.gc_interval_queries = 0;   // no sweep between the two serves
  svc::QueryService service(&registry, options);

  service.Serve(query);
  bdd::Manager::CacheStats before = service.OpCacheStats();
  service.Serve(query);
  bdd::Manager::CacheStats after = service.OpCacheStats();

  size_t hits = after.hits - before.hits;
  size_t misses = after.misses - before.misses;
  ASSERT_GT(hits + misses, 0u);
  double rate = double(hits) / double(hits + misses);
  EXPECT_GT(rate, 0.9) << "hits=" << hits << " misses=" << misses;
}

TEST(QueryServiceTest, AdmissionScopingPreservesVerdicts) {
  topo::DcnParams params;
  params.small_clusters = 1;
  params.big_clusters = 1;
  params.tors_per_pod = 2;
  params.cores = 2;
  config::ParsedNetwork net =
      config::ParseNetwork(config::SynthesizeConfigs(topo::MakeDcn(params)));

  // A targeted single-source query plus the all-pair sweep.
  dp::Query single;
  for (topo::NodeId id = 0; id < net.graph.size(); ++id) {
    if (net.graph.node(id).role == topo::Role::kEdge) {
      if (single.sources.empty()) {
        single.sources.push_back(id);
      } else if (single.destinations.empty()) {
        single.destinations.push_back(id);
      }
    }
  }
  single.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  dp::Query all = AllPairQuery(net);

  dist::ControllerOptions options;
  options.num_workers = 4;
  Converged run(net, {single, all}, options);

  svc::SnapshotRegistry registry;
  registry.Publish(run.snapshot);
  svc::QueryService::Options scoped_options;
  scoped_options.scope_admission = true;
  svc::QueryService scoped(&registry, scoped_options);
  svc::QueryService::Options unscoped_options;
  unscoped_options.scope_admission = false;
  svc::QueryService unscoped(&registry, unscoped_options);

  svc::QueryService::Served a = scoped.Serve(single);
  svc::QueryService::Served b = unscoped.Serve(single);
  EXPECT_LE(a.scoped_workers, a.total_workers);
  ExpectIdenticalResult(a.result, run.result.queries[0], "single/scoped");
  ExpectIdenticalResult(b.result, run.result.queries[0], "single/unscoped");

  ExpectIdenticalResult(scoped.Serve(all).result, run.result.queries[1],
                        "all/scoped");
  ExpectIdenticalResult(unscoped.Serve(all).result, run.result.queries[1],
                        "all/unscoped");
  EXPECT_EQ(scoped.stats().scope_fallbacks, 0u);
}

TEST(QueryServiceTest, BatchGroupsCompatibleQueries) {
  config::ParsedNetwork net = testing::Parse(testing::MakeChain(5));
  dp::Query all = AllPairQuery(net);
  dp::Query narrowed = all;
  narrowed.destinations = {all.destinations.front()};
  dp::Query single;
  single.sources = {all.sources.front()};
  single.destinations = {all.destinations.back()};
  single.header_space.dst = util::MustParsePrefix("10.0.3.0/24");

  Converged run(net, {all, narrowed, single}, TwoWorkerOptions());
  svc::SnapshotRegistry registry;
  registry.Publish(run.snapshot);
  svc::QueryService service(&registry, svc::QueryService::Options{});

  std::vector<svc::QueryService::Served> served =
      service.ServeBatch({all, narrowed, single});
  ASSERT_EQ(served.size(), 3u);
  for (size_t q = 0; q < served.size(); ++q) {
    ExpectIdenticalResult(served[q].result, run.result.queries[q],
                          "batch/q" + std::to_string(q));
  }
  // all+narrowed share a scope (same sources/header), single may not:
  // grouping must produce fewer batches than queries.
  svc::QueryService::Stats stats = service.stats();
  EXPECT_GE(stats.batches, 1u);
  EXPECT_LT(stats.batches, 3u);
}

TEST(QueryServiceTest, RepublishRebindsLaneAndReclaimsOldEpoch) {
  config::ParsedNetwork net = testing::Parse(testing::MakeChain(4));
  dp::Query query = AllPairQuery(net);
  Converged run(net, {query}, TwoWorkerOptions());

  svc::SnapshotRegistry registry;
  registry.Publish(run.snapshot);
  svc::QueryService service(&registry, svc::QueryService::Options{});

  svc::QueryService::Served first = service.Serve(query);
  EXPECT_EQ(first.epoch, 1u);
  EXPECT_TRUE(service.Serve(query).cache_hit);

  registry.Publish(run.snapshot);
  svc::QueryService::Served second = service.Serve(query);
  EXPECT_EQ(second.epoch, 2u);
  // New epoch: the predicate cache is epoch-scoped, so this was a miss...
  EXPECT_FALSE(second.cache_hit);
  // ...but the verdict is unchanged (same snapshot content).
  ExpectIdenticalResult(second.result, first.result, "across epochs");
  EXPECT_EQ(service.stats().epoch_rebuilds, 2u);

  // The old epoch had no pins left once its serve finished.
  svc::SnapshotRegistry::Stats stats = registry.stats();
  EXPECT_EQ(stats.live_epochs, 1u);
  EXPECT_EQ(stats.reclaimed, 1u);
}

TEST(QueryServiceTest, PublishesSvcMetrics) {
  config::ParsedNetwork net = testing::Parse(testing::MakeChain(4));
  dp::Query query = AllPairQuery(net);
  Converged run(net, {query}, TwoWorkerOptions());

  svc::SnapshotRegistry registry;
  registry.Publish(run.snapshot);
  svc::QueryService service(&registry, svc::QueryService::Options{});
  service.Serve(query);
  service.Serve(query);

  obs::Registry metrics;
  service.PublishMetrics(metrics);
  registry.PublishMetrics(metrics);
  EXPECT_EQ(metrics.counter("svc.queries"), 2);
  EXPECT_EQ(metrics.counter("svc.cache.hits"), 1);
  EXPECT_EQ(metrics.counter("svc.cache.misses"), 1);
  EXPECT_TRUE(metrics.Has("svc.cache.evictions"));
  EXPECT_TRUE(metrics.Has("svc.cache.entries"));
  EXPECT_TRUE(metrics.Has("svc.opcache.hits"));
  EXPECT_EQ(metrics.counter("svc.snapshots.published"), 1);
  EXPECT_GT(metrics.counter("svc.opcache.misses"), 0);
}

// Chaos: queries racing a republish loop. Every serve must see a
// consistent epoch (verdicts identical across all epochs since the
// snapshot content never changes), and when the dust settles exactly one
// epoch survives — no use-after-reclaim, which TSan/ASan verify at the
// memory level via the chaos CI legs.
TEST(QueryServiceChaosTest, ConcurrentServeAndRepublish) {
  config::ParsedNetwork net = testing::Parse(testing::MakeChain(5));
  dp::Query query = AllPairQuery(net);
  dp::Query single;
  single.sources = {query.sources.front()};
  single.destinations = {query.destinations.back()};
  single.header_space.dst = util::MustParsePrefix("10.0.3.0/24");
  Converged run(net, {query, single}, TwoWorkerOptions());

  svc::SnapshotRegistry registry;
  registry.Publish(run.snapshot);
  svc::QueryService::Options options;
  options.lanes = 2;
  options.gc_interval_queries = 8;
  svc::QueryService service(&registry, options);

  constexpr int kServesPerThread = 40;
  constexpr int kRepublishes = 10;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kServesPerThread; ++i) {
        const dp::Query& q = (i + t) % 2 == 0 ? query : single;
        const dp::QueryResult& want =
            (i + t) % 2 == 0 ? run.result.queries[0] : run.result.queries[1];
        svc::QueryService::Served served = service.Serve(q);
        if (served.epoch == 0 ||
            served.result.reachable_pairs != want.reachable_pairs ||
            served.result.loop_free != want.loop_free) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (int r = 0; r < kRepublishes; ++r) {
    registry.Publish(run.snapshot);
    std::this_thread::yield();
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0);
  svc::SnapshotRegistry::Stats stats = registry.stats();
  EXPECT_EQ(stats.published, size_t(kRepublishes) + 1);
  EXPECT_EQ(stats.pinned_refs, 0u);
  EXPECT_EQ(stats.live_epochs, 1u);
  EXPECT_EQ(stats.reclaimed, size_t(kRepublishes));
  EXPECT_EQ(service.stats().queries, 3u * kServesPerThread);
}

}  // namespace
}  // namespace s2
