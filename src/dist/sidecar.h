// Sidecars (paper §3.2): the communication fabric between workers.
//
// Each worker (and the controller) owns a sidecar; every sidecar holds the
// node->worker assignment so a message addressed to a node is routed to
// the worker hosting it. This in-process stand-in for the paper's
// RPC-connected sidecar processes keeps the observable contract: messages
// are serialized bytes, queues are drained at phase boundaries, and
// per-worker sent/received byte counters feed the cost model
// (DESIGN.md substitution S3).
//
// Two delivery modes:
//   - direct (default): a perfect, loss-free queue — zero overhead;
//   - reliable: every message runs through fault::ReliableTransport
//     (sequence numbers, cumulative acks, retransmits) with an optional
//     FaultInjector perturbing frames. The sidecar survives worker
//     crashes — like the paper's separate sidecar process — so its
//     channel state and replay logs are what recovery builds on.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "dist/message.h"
#include "fault/reliable.h"

namespace s2::dist {

class SidecarFabric {
 public:
  // `assignment[node]` = worker index hosting that node.
  SidecarFabric(uint32_t num_workers, std::vector<uint32_t> assignment);

  uint32_t num_workers() const { return num_workers_; }
  uint32_t WorkerOf(topo::NodeId node) const { return assignment_[node]; }

  // Switches the fabric to reliable delivery. `injector` (may be null for
  // pure reliability) must outlive the fabric; `keep_replay_log` enables
  // the per-worker delivery log crash recovery needs. Call before any
  // traffic flows.
  void EnableReliableDelivery(const fault::FaultPlan& tuning,
                              const fault::FaultInjector* injector,
                              bool keep_replay_log);
  bool reliable() const { return transport_ != nullptr; }

  // Routes `message` to the sidecar of the worker hosting its to_node.
  // Thread-safe: workers send concurrently during parallel phases.
  void Send(uint32_t from_worker, Message message);

  // Drains the inbound queue of `worker`. In reliable mode this advances
  // logical time: every worker must drain exactly once per orchestrator
  // round.
  std::vector<Message> Drain(uint32_t worker);

  // True if any message is undelivered (reliable mode: also while any
  // data frame is delayed or unacked).
  bool HasPending() const;

  size_t bytes_sent_by(uint32_t worker) const;
  size_t messages_sent_by(uint32_t worker) const;
  size_t total_bytes() const;

  // High-water mark of `worker`'s inbound queue since construction (or the
  // last ResetCounters in direct mode).
  size_t max_queue_depth(uint32_t worker) const;

  // Resets the per-worker counters (between phases/experiments).
  void ResetCounters();

  // ------------------------------------------------ recovery (reliable mode)
  // Truncates the replay log of `worker` (taken together with a worker
  // checkpoint at a barrier).
  void MarkCheckpoint(uint32_t worker);
  // Messages delivered to `worker` since its last checkpoint mark, tagged
  // with their delivery round.
  std::vector<fault::LoggedDelivery> ReplayLog(uint32_t worker) const;
  // Completed global drain rounds (0 in direct mode).
  int CurrentRound() const;
  fault::ReliableTransport::Stats transport_stats() const;

 private:
  uint32_t num_workers_;
  std::vector<uint32_t> assignment_;
  mutable std::mutex mutex_;
  std::vector<std::vector<Message>> queues_;       // per receiving worker
  // Counters are atomics so concurrent senders never race, even where the
  // queue lock is not held.
  std::vector<std::atomic<size_t>> bytes_sent_;    // per sending worker
  std::vector<std::atomic<size_t>> messages_sent_;
  std::vector<std::atomic<size_t>> max_queue_depth_;
  std::unique_ptr<fault::ReliableTransport> transport_;
};

}  // namespace s2::dist
