#include "core/bonsai.h"

#include <algorithm>

#include "config/parser.h"
#include "config/vendor.h"
#include "cp/engine.h"
#include "util/stopwatch.h"

namespace s2::core {

namespace {

// One destination to compress for: the edge switch and the prefix it
// announces.
struct Destination {
  topo::NodeId edge;
  util::Ipv4Prefix prefix;
};

// The per-destination compression pass. Scans the whole topology grouping
// switches into the abstraction's equivalence classes (destination edge /
// same-pod edge / same-pod aggregation / core / other-pod aggregation /
// other-pod edge) — the honest O(V) work that makes compression time grow
// with network size. Returns the class sizes (used only as a checksum so
// the scan cannot be optimized away).
std::array<size_t, 6> CompressionScan(const topo::Network& network,
                                      topo::NodeId dest) {
  std::array<size_t, 6> classes{};
  int dest_pod = network.graph.node(dest).pod;
  for (topo::NodeId id = 0; id < network.graph.size(); ++id) {
    const topo::NodeInfo& info = network.graph.node(id);
    size_t klass;
    if (id == dest) {
      klass = 0;
    } else if (info.role == topo::Role::kCore) {
      klass = 3;
    } else if (info.pod == dest_pod) {
      klass = info.role == topo::Role::kEdge ? 1 : 2;
    } else {
      klass = info.role == topo::Role::kEdge ? 5 : 4;
    }
    ++classes[klass];
  }
  return classes;
}

// Builds the 6-node compressed instance for one destination prefix.
topo::Network BuildCompressed(const util::Ipv4Prefix& dest_prefix) {
  topo::Network net;
  net.name = "bonsai-compressed";
  auto add = [&](const char* name, topo::Role role, int layer, int pod) {
    return net.graph.AddNode(topo::NodeInfo{name, role, layer, pod, 1.0});
  };
  topo::NodeId dest_edge = add("edge-0-0", topo::Role::kEdge, 0, 0);
  topo::NodeId same_edge = add("edge-0-1", topo::Role::kEdge, 0, 0);
  topo::NodeId same_agg = add("agg-0-0", topo::Role::kAggregation, 1, 0);
  topo::NodeId core = add("core-0-0", topo::Role::kCore, 2, -1);
  topo::NodeId other_agg = add("agg-1-0", topo::Role::kAggregation, 1, 1);
  topo::NodeId other_edge = add("edge-1-0", topo::Role::kEdge, 0, 1);
  net.graph.AddEdge(dest_edge, same_agg);
  net.graph.AddEdge(same_edge, same_agg);
  net.graph.AddEdge(same_agg, core);
  net.graph.AddEdge(core, other_agg);
  net.graph.AddEdge(other_agg, other_edge);

  net.intents.resize(net.graph.size());
  for (topo::NodeId id = 0; id < net.graph.size(); ++id) {
    topo::NodeIntent& intent = net.intents[id];
    intent.asn = 100000 + id;
    intent.loopback = util::Ipv4Prefix(
        util::Ipv4Address((172u << 24) | (16u << 16) | id), 32);
    intent.announced.push_back(intent.loopback);
    intent.max_ecmp_paths = 64;
  }
  net.intents[dest_edge].announced.push_back(dest_prefix);
  topo::AssignLinkAddresses(net);
  return net;
}

}  // namespace

VerifyResult BonsaiVerifier::Verify(const topo::Network& network) {
  VerifyResult result;
  util::Stopwatch total_watch;
  double sequential_seconds = 0;
  size_t peak = 0;

  // Destinations: every edge-announced non-loopback prefix.
  std::vector<Destination> destinations;
  for (topo::NodeId id = 0; id < network.graph.size(); ++id) {
    if (network.graph.node(id).role != topo::Role::kEdge) continue;
    for (const util::Ipv4Prefix& prefix : network.intents[id].announced) {
      if (prefix != network.intents[id].loopback) {
        destinations.push_back(Destination{id, prefix});
      }
    }
  }

  size_t checksum = 0;
  size_t reachable = 0, unreachable = 0;
  for (const Destination& destination : destinations) {
    util::Stopwatch dest_watch;
    // Phase 1: compression (scans the full topology).
    auto classes = CompressionScan(network, destination.edge);
    checksum += classes[3];

    // Phase 2: simulate the compressed instance with the monolithic
    // engine and check reachability of the destination prefix.
    topo::Network compressed = BuildCompressed(destination.prefix);
    auto parsed =
        config::ParseNetwork(config::SynthesizeConfigs(compressed));
    util::MemoryTracker tracker("bonsai", options_.memory_budget);
    cp::EngineOptions engine_options;
    engine_options.max_rounds_per_pass = options_.max_rounds;
    try {
      cp::MonoEngine engine(parsed, &tracker, engine_options);
      engine.Run(nullptr, nullptr);
      // Reachable iff the representative other-pod edge learned the
      // destination prefix.
      topo::NodeId probe = parsed.graph.FindByName("edge-1-0");
      bool ok = engine.node(probe).bgp_routes().count(destination.prefix) >
                0;
      (ok ? reachable : unreachable) += 1;
    } catch (const util::SimulatedOom& oom) {
      result.status = RunStatus::kOutOfMemory;
      result.failure_detail = oom.what();
      return result;
    }
    peak = std::max(peak, tracker.peak_bytes());
    sequential_seconds +=
        dest_watch.ElapsedSeconds() +
        options_.modeled_seconds_per_scan_node *
            static_cast<double>(network.graph.size());

    // Destinations fan across cores; the modeled deadline applies to the
    // parallelized time.
    double modeled =
        sequential_seconds / std::max(1, options_.cores);
    if (modeled > options_.timeout_seconds) {
      result.status = RunStatus::kTimeout;
      result.failure_detail =
          "bonsai exceeded the deadline after " +
          std::to_string(&destination - destinations.data() + 1) + " of " +
          std::to_string(destinations.size()) + " destinations";
      break;
    }
  }

  dp::QueryResult query;
  query.reachable_pairs = reachable;
  query.unreachable_pairs = unreachable;
  result.queries.push_back(query);
  result.control_plane.wall_seconds = total_watch.ElapsedSeconds();
  result.control_plane.modeled_seconds =
      sequential_seconds / std::max(1, options_.cores);
  result.peak_memory_bytes = peak + checksum * 0;  // checksum kept live
  result.worker_peaks = {result.peak_memory_bytes};
  result.total_best_routes = destinations.size() * 6;
  return result;
}

}  // namespace s2::core
