#include "dist/controller.h"

#include <algorithm>
#include <thread>

namespace s2::dist {

Controller::Controller(config::ParsedNetwork network,
                       ControllerOptions options)
    : network_(std::move(network)), options_(options) {}

Controller::~Controller() = default;

void Controller::Setup() {
  partition_ = topo::Partition(network_.graph, options_.num_workers,
                               options_.scheme, options_.seed);
  fabric_ = std::make_unique<SidecarFabric>(options_.num_workers,
                                            partition_.assignment);

  Worker::Options worker_options;
  worker_options.memory_budget = options_.worker_memory_budget;
  worker_options.max_bdd_nodes = options_.max_bdd_nodes;
  worker_options.layout = options_.layout;
  worker_options.max_hops = options_.max_hops;
  workers_.clear();
  for (uint32_t w = 0; w < options_.num_workers; ++w) {
    workers_.push_back(std::make_unique<Worker>(w, network_, fabric_.get(),
                                                worker_options));
  }

  size_t threads = options_.pool_threads;
  if (threads == 0) {
    threads = std::min<size_t>(options_.num_workers,
                               std::max(1u,
                                        std::thread::hardware_concurrency()));
  }
  pool_ = std::make_unique<util::ThreadPool>(threads);
  cpo_ = std::make_unique<Cpo>(&workers_, fabric_.get(), pool_.get(),
                               options_.cost, options_.max_rounds);
  dpo_ = std::make_unique<Dpo>(&workers_, fabric_.get(), pool_.get(),
                               options_.cost);

  if (options_.num_shards > 0) {
    plan_ = cp::BuildShardPlan(network_, options_.num_shards,
                               options_.seed);
    // §7 fallback: a freshly built plan is already dependency-closed, but
    // repair defensively so externally cached/edited plans can't split
    // dependent prefixes.
    cp::RepairShardPlan(network_, *plan_);
    store_ = std::make_unique<cp::RibStore>();
  }

  gather_manager_ =
      std::make_unique<bdd::Manager>(options_.layout.total_bits());
}

RoundMetrics Controller::RunControlPlane() {
  bool any_ospf = false;
  for (const config::ViConfig& config : network_.configs) {
    any_ospf = any_ospf || config.ospf.enabled;
  }
  return cpo_->Run(any_ospf, plan_ ? &*plan_ : nullptr, store_.get());
}

RoundMetrics Controller::BuildDataPlanes() {
  return dpo_->BuildDataPlanes(store_.get());
}

Controller::QueryOutcome Controller::RunQuery(const dp::Query& query) {
  dp::PacketCodec gather_codec(gather_manager_.get(), options_.layout);
  Dpo::QueryRun run = dpo_->RunQuery(query, gather_codec);
  QueryOutcome outcome;
  outcome.metrics = run.metrics;
  outcome.gather_bytes = run.gather_bytes;
  for (const auto& worker : workers_) {
    outcome.forwarding_steps += worker->forwarding_steps();
  }
  outcome.result =
      dp::EvaluateQuery(query, gather_codec, run.finals, network_);
  return outcome;
}

size_t Controller::TotalBestRoutes() const {
  if (store_) return store_->routes_written();
  size_t total = 0;
  for (const auto& worker : workers_) {
    for (topo::NodeId id : worker->local_nodes()) {
      for (const auto& [prefix, routes] : worker->node(id).bgp_routes()) {
        total += routes.size();
      }
    }
  }
  return total;
}

size_t Controller::MaxWorkerPeakBytes() const {
  // Worker peaks are reset per shard round to attribute them; the CPO
  // remembers the highest one it saw.
  size_t peak = cpo_ ? cpo_->observed_peak() : 0;
  for (const auto& worker : workers_) {
    peak = std::max(peak, worker->tracker().peak_bytes());
  }
  return peak;
}

std::vector<size_t> Controller::WorkerPeakBytes() const {
  std::vector<size_t> peaks;
  peaks.reserve(workers_.size());
  for (const auto& worker : workers_) {
    peaks.push_back(worker->tracker().peak_bytes());
  }
  return peaks;
}

}  // namespace s2::dist
