#include "topo/fattree.h"

#include <cstdlib>

namespace s2::topo {

int FatTreeSwitchCount(int k) { return 5 * k * k / 4; }

Network MakeFatTree(const FatTreeParams& params) {
  const int k = params.k;
  if (k < 2 || k % 2 != 0) std::abort();
  const int half = k / 2;

  Network net;
  net.name = "FatTree" + std::to_string(k);

  // The paper's §4.1 load estimates: core and aggregation ~ k^3/2 routes,
  // edge ~ k^3/4.
  const double core_load = k * k * k / 2.0;
  const double agg_load = k * k * k / 2.0;
  const double edge_load = k * k * k / 4.0;

  // Nodes: per pod, k/2 edge then k/2 aggregation; then (k/2)^2 cores.
  std::vector<std::vector<NodeId>> edges_of_pod(k), aggs_of_pod(k);
  for (int p = 0; p < k; ++p) {
    for (int i = 0; i < half; ++i) {
      edges_of_pod[p].push_back(net.graph.AddNode(
          NodeInfo{"edge-" + std::to_string(p) + "-" + std::to_string(i),
                   Role::kEdge, 0, p, edge_load}));
    }
    for (int j = 0; j < half; ++j) {
      aggs_of_pod[p].push_back(net.graph.AddNode(NodeInfo{
          "agg-" + std::to_string(p) + "-" + std::to_string(j),
          Role::kAggregation, 1, p, agg_load}));
    }
  }
  std::vector<NodeId> cores;
  for (int j = 0; j < half; ++j) {
    for (int l = 0; l < half; ++l) {
      cores.push_back(net.graph.AddNode(
          NodeInfo{"core-" + std::to_string(j) + "-" + std::to_string(l),
                   Role::kCore, 2, -1, core_load}));
    }
  }

  // Links: edge <-> every aggregation in its pod; aggregation j <-> core
  // group j.
  for (int p = 0; p < k; ++p) {
    for (NodeId e : edges_of_pod[p]) {
      for (NodeId a : aggs_of_pod[p]) net.graph.AddEdge(e, a);
    }
    for (int j = 0; j < half; ++j) {
      for (int l = 0; l < half; ++l) {
        net.graph.AddEdge(aggs_of_pod[p][j], cores[j * half + l]);
      }
    }
  }

  // Intents: unique ASN per switch, loopback /32, edge host /24s.
  net.intents.resize(net.graph.size());
  for (NodeId id = 0; id < net.graph.size(); ++id) {
    NodeIntent& intent = net.intents[id];
    intent.asn = 100000 + id;
    intent.vendor = (params.mixed_vendors && id % 2 == 1) ? Vendor::kBeta
                                                          : Vendor::kAlpha;
    intent.loopback = util::Ipv4Prefix(
        util::Ipv4Address((172u << 24) | (16u << 16) | id), 32);
    intent.announced.push_back(intent.loopback);
    intent.max_ecmp_paths = params.max_ecmp_paths;
  }
  for (int p = 0; p < k; ++p) {
    for (int i = 0; i < half; ++i) {
      NodeIntent& intent = net.intents[edges_of_pod[p][i]];
      intent.announced.push_back(util::Ipv4Prefix(
          util::Ipv4Address((10u << 24) | (uint32_t(p) << 16) |
                            (uint32_t(i) << 8)),
          24));
      for (int x = 0; x < params.extra_prefixes_per_edge; ++x) {
        uint32_t third = 128 + uint32_t(i) * params.extra_prefixes_per_edge +
                         uint32_t(x);
        if (third > 255) std::abort();  // parameter combination too large
        intent.announced.push_back(util::Ipv4Prefix(
            util::Ipv4Address((10u << 24) | (uint32_t(p) << 16) |
                              (third << 8)),
            24));
      }
    }
  }

  AssignLinkAddresses(net);
  return net;
}

}  // namespace s2::topo
