// Partition explorer: compares the §5.6 partition schemes on a FatTree —
// load balance, edge cut, and the verification metrics each yields.
//
//   ./partition_explorer [k] [workers]
#include <cstdio>
#include <cstdlib>

#include "config/vendor.h"
#include "core/s2.h"
#include "topo/fattree.h"
#include "topo/partition.h"

using namespace s2;

int main(int argc, char** argv) {
  int k = argc > 1 ? std::atoi(argv[1]) : 6;
  uint32_t workers = argc > 2 ? std::atoi(argv[2]) : 4;

  topo::FatTreeParams params;
  params.k = k;
  topo::Network network = topo::MakeFatTree(params);
  auto parsed = config::ParseNetwork(config::SynthesizeConfigs(network));
  std::printf("FatTree%d: %zu switches, %zu links, %u workers\n\n", k,
              parsed.graph.size(), parsed.graph.edge_count(), workers);

  std::printf("%-12s %10s %9s | %12s %12s %12s\n", "scheme", "imbalance",
              "edge-cut", "cp-modeled", "peak-mem", "comm");
  for (auto scheme :
       {topo::PartitionScheme::kMetisLike, topo::PartitionScheme::kExpert,
        topo::PartitionScheme::kRandom, topo::PartitionScheme::kCommHeavy,
        topo::PartitionScheme::kImbalanced}) {
    topo::PartitionResult partition =
        topo::Partition(parsed.graph, workers, scheme);

    dist::ControllerOptions options;
    options.num_workers = workers;
    options.scheme = scheme;
    core::S2Verifier verifier(options);
    core::VerifyResult result = verifier.Verify(parsed, {});

    std::printf("%-12s %10.3f %9zu | %12s %12s %12s\n",
                topo::PartitionSchemeName(scheme),
                partition.LoadImbalance(parsed.graph),
                partition.EdgeCut(parsed.graph),
                result.ok()
                    ? core::HumanSeconds(
                          result.control_plane.modeled_seconds)
                          .c_str()
                    : core::RunStatusName(result.status),
                core::HumanBytes(result.peak_memory_bytes).c_str(),
                core::HumanBytes(result.comm_bytes).c_str());
  }
  std::printf(
      "\nreading: metis/expert balance load with small cuts; random cuts\n"
      "more but stays balanced (S2's performance tracks balance, §5.6);\n"
      "imbalanced concentrates 3/4 of the fabric on one worker.\n");
  return 0;
}
