
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/dcn.cc" "src/CMakeFiles/s2_topo.dir/topo/dcn.cc.o" "gcc" "src/CMakeFiles/s2_topo.dir/topo/dcn.cc.o.d"
  "/root/repo/src/topo/fattree.cc" "src/CMakeFiles/s2_topo.dir/topo/fattree.cc.o" "gcc" "src/CMakeFiles/s2_topo.dir/topo/fattree.cc.o.d"
  "/root/repo/src/topo/graph.cc" "src/CMakeFiles/s2_topo.dir/topo/graph.cc.o" "gcc" "src/CMakeFiles/s2_topo.dir/topo/graph.cc.o.d"
  "/root/repo/src/topo/partition.cc" "src/CMakeFiles/s2_topo.dir/topo/partition.cc.o" "gcc" "src/CMakeFiles/s2_topo.dir/topo/partition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s2_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
