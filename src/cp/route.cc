#include "cp/route.h"

#include <algorithm>

#include "util/status.h"

namespace s2::cp {

uint32_t AdminDistance(Protocol protocol) {
  switch (protocol) {
    case Protocol::kConnected:
      return 0;
    case Protocol::kLocal:
      return 5;
    case Protocol::kBgp:
      return 20;
    case Protocol::kOspf:
      return 110;
  }
  return 255;
}

bool BetterRoute(const Route& a, const Route& b) {
  uint32_t ad_a = AdminDistance(a.protocol), ad_b = AdminDistance(b.protocol);
  if (ad_a != ad_b) return ad_a < ad_b;
  if (a.protocol == Protocol::kOspf && b.protocol == Protocol::kOspf) {
    if (a.metric != b.metric) return a.metric < b.metric;
  }
  // Shared attr entry: every attribute comparison ties, skip to the
  // provenance tie-breaks. Entry identity never decides an ordering.
  const bool same_attrs = a.attrs.SameEntry(b.attrs);
  if (!same_attrs) {
    const AttrTuple& ta = *a.attrs;
    const AttrTuple& tb = *b.attrs;
    if (ta.local_pref != tb.local_pref) return ta.local_pref > tb.local_pref;
    if (ta.as_path.size() != tb.as_path.size()) {
      return ta.as_path.size() < tb.as_path.size();
    }
    if (ta.origin != tb.origin) return ta.origin < tb.origin;
    if (ta.med != tb.med) return ta.med < tb.med;
  }
  if (a.learned_from != b.learned_from) return a.learned_from < b.learned_from;
  if (a.origin_node != b.origin_node) return a.origin_node < b.origin_node;
  return !same_attrs && a.as_path() < b.as_path();
}

bool EcmpEquivalent(const Route& a, const Route& b) {
  if (AdminDistance(a.protocol) != AdminDistance(b.protocol) ||
      a.metric != b.metric) {
    return false;
  }
  if (a.attrs.SameEntry(b.attrs)) return true;
  const AttrTuple& ta = *a.attrs;
  const AttrTuple& tb = *b.attrs;
  return ta.local_pref == tb.local_pref &&
         ta.as_path.size() == tb.as_path.size() && ta.origin == tb.origin &&
         ta.med == tb.med;
}

void PutWireU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t GetWireU32(const std::vector<uint8_t>& in, size_t& pos) {
  if (pos + 4 > in.size()) {
    throw util::WireFormatError("truncated u32 at offset " +
                                std::to_string(pos));
  }
  uint32_t v = uint32_t{in[pos]} | (uint32_t{in[pos + 1]} << 8) |
               (uint32_t{in[pos + 2]} << 16) | (uint32_t{in[pos + 3]} << 24);
  pos += 4;
  return v;
}

namespace {

void PutU32(std::vector<uint8_t>& out, uint32_t v) { PutWireU32(out, v); }

uint32_t GetU32(const std::vector<uint8_t>& in, size_t& pos) {
  return GetWireU32(in, pos);
}

uint8_t GetU8(const std::vector<uint8_t>& in, size_t& pos) {
  if (pos >= in.size()) {
    throw util::WireFormatError("truncated u8 at offset " +
                                std::to_string(pos));
  }
  return in[pos++];
}

void PutU32List(std::vector<uint8_t>& out, const std::vector<uint32_t>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (uint32_t x : v) PutU32(out, x);
}

std::vector<uint32_t> GetU32List(const std::vector<uint8_t>& in,
                                 size_t& pos) {
  uint32_t n = GetU32(in, pos);
  // Validate the length against the bytes actually present before
  // reserving: an absurd length field must error, not allocate.
  if (n > (in.size() - pos) / 4) {
    throw util::WireFormatError("u32 list of " + std::to_string(n) +
                                " exceeds " +
                                std::to_string(in.size() - pos) +
                                " remaining bytes");
  }
  std::vector<uint32_t> v;
  v.reserve(n);
  for (uint32_t i = 0; i < n; ++i) v.push_back(GetU32(in, pos));
  return v;
}

// Inline encoding cost of one tuple's attributes in the pre-table format:
// local_pref + med (4 each), origin (1), two length-prefixed u32 lists.
size_t InlineAttrBytes(const AttrTuple& tuple) {
  return 17 + 4 * tuple.as_path.size() + 4 * tuple.communities.size();
}

void PutTuple(std::vector<uint8_t>& out, const AttrTuple& tuple) {
  PutU32(out, tuple.local_pref);
  PutU32(out, tuple.med);
  out.push_back(tuple.origin);
  PutU32List(out, tuple.as_path);
  PutU32List(out, tuple.communities);
}

// The smallest possible wire footprints, used to validate counts before
// reserving (every tuple is at least 17 bytes, every route entry at least
// 6 — a withdraw).
constexpr size_t kMinTupleBytes = 17;
constexpr size_t kMinRouteBytes = 6;

// Routes-only body: count + entries referencing `table` by index.
void PutRoutesBody(std::vector<uint8_t>& out,
                   const std::vector<RouteUpdate>& updates,
                   AttrTableBuilder& table) {
  PutU32(out, static_cast<uint32_t>(updates.size()));
  for (const RouteUpdate& update : updates) {
    PutU32(out, update.prefix.address().bits());
    out.push_back(update.prefix.length());
    out.push_back(update.withdraw ? 1 : 0);
    if (update.withdraw) continue;
    const Route& r = update.route;
    out.push_back(static_cast<uint8_t>(r.protocol));
    PutU32(out, r.metric);
    PutU32(out, r.origin_node);
    PutU32(out, r.learned_from);
    PutU32(out, table.IndexOf(r));
  }
}

std::vector<RouteUpdate> GetRoutesBody(const std::vector<uint8_t>& bytes,
                                       size_t& pos, const AttrTable& table) {
  uint32_t count = GetU32(bytes, pos);
  if (count > (bytes.size() - pos) / kMinRouteBytes) {
    throw util::WireFormatError("route count " + std::to_string(count) +
                                " exceeds remaining bytes");
  }
  std::vector<RouteUpdate> updates;
  updates.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    RouteUpdate update;
    uint32_t addr = GetU32(bytes, pos);
    uint8_t length = GetU8(bytes, pos);
    update.prefix = util::Ipv4Prefix(util::Ipv4Address(addr), length);
    update.withdraw = GetU8(bytes, pos) != 0;
    if (!update.withdraw) {
      Route& r = update.route;
      r.prefix = update.prefix;
      r.protocol = static_cast<Protocol>(GetU8(bytes, pos));
      r.metric = GetU32(bytes, pos);
      r.origin_node = GetU32(bytes, pos);
      r.learned_from = GetU32(bytes, pos);
      r.attrs = table.at(GetU32(bytes, pos));
    }
    updates.push_back(std::move(update));
  }
  return updates;
}

}  // namespace

// ------------------------------------------------- per-batch attr tables

uint32_t AttrTableBuilder::IndexOf(const Route& route) {
  const AttrTuple& tuple = route.attrs.get();
  inline_bytes_ += InlineAttrBytes(tuple);
  // Identity fast path: the same pool entry (or the static default tuple)
  // resolves without a deep compare.
  auto identity = by_identity_.find(&tuple);
  if (identity != by_identity_.end()) {
    ++reused_;
    return identity->second;
  }
  // Value dedup: distinct entries (e.g. from different pools, or the
  // default tuple vs an equal one) still share a table slot.
  size_t hash = tuple.Hash();
  for (uint32_t index : by_hash_[hash]) {
    if (*tuples_[index] == tuple) {
      ++reused_;
      by_identity_.emplace(&tuple, index);
      return index;
    }
  }
  uint32_t index = static_cast<uint32_t>(tuples_.size());
  tuples_.push_back(&tuple);
  by_identity_.emplace(&tuple, index);
  by_hash_[hash].push_back(index);
  return index;
}

void AttrTableBuilder::Serialize(std::vector<uint8_t>& out) const {
  PutU32(out, static_cast<uint32_t>(tuples_.size()));
  for (const AttrTuple* tuple : tuples_) PutTuple(out, *tuple);
}

size_t AttrTableBuilder::table_bytes() const {
  size_t bytes = 4;
  for (const AttrTuple* tuple : tuples_) bytes += InlineAttrBytes(*tuple);
  return bytes;
}

AttrTable AttrTable::Read(const std::vector<uint8_t>& bytes, size_t& pos,
                          AttrPool& pool) {
  uint32_t count = GetU32(bytes, pos);
  if (count > (bytes.size() - pos) / kMinTupleBytes) {
    throw util::WireFormatError("attr table count " + std::to_string(count) +
                                " exceeds remaining bytes");
  }
  AttrTable table;
  table.handles_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    AttrTuple tuple;
    tuple.local_pref = GetU32(bytes, pos);
    tuple.med = GetU32(bytes, pos);
    tuple.origin = GetU8(bytes, pos);
    tuple.as_path = GetU32List(bytes, pos);
    tuple.communities = GetU32List(bytes, pos);
    table.handles_.push_back(pool.Intern(std::move(tuple)));
  }
  return table;
}

const AttrHandle& AttrTable::at(uint32_t index) const {
  if (index >= handles_.size()) {
    throw util::WireFormatError("attr index " + std::to_string(index) +
                                " out of range (table size " +
                                std::to_string(handles_.size()) + ")");
  }
  return handles_[index];
}

// --------------------------------------------------------- full batches

void SerializeRoutes(const std::vector<RouteUpdate>& updates,
                     std::vector<uint8_t>& out, AttrPool* stats_pool) {
  AttrTableBuilder table;
  std::vector<uint8_t> body;
  PutRoutesBody(body, updates, table);
  table.Serialize(out);
  out.insert(out.end(), body.begin(), body.end());
  if (stats_pool != nullptr) {
    size_t references = table.distinct() + table.reused();
    size_t packed = table.table_bytes() + 4 * references;
    size_t inline_cost = table.inline_bytes();
    stats_pool->NoteWireSavings(
        table.distinct(), table.reused(),
        inline_cost > packed ? inline_cost - packed : 0);
  }
}

std::vector<RouteUpdate> DeserializeRoutes(const std::vector<uint8_t>& bytes,
                                           AttrPool& pool) {
  size_t pos = 0;
  AttrTable table = AttrTable::Read(bytes, pos, pool);
  return GetRoutesBody(bytes, pos, table);
}

void PutRoutesSection(std::vector<uint8_t>& out,
                      const std::vector<RouteUpdate>& updates,
                      AttrTableBuilder& table) {
  std::vector<uint8_t> chunk;
  PutRoutesBody(chunk, updates, table);
  PutWireU32(out, static_cast<uint32_t>(chunk.size()));
  out.insert(out.end(), chunk.begin(), chunk.end());
}

std::vector<RouteUpdate> GetRoutesSection(const std::vector<uint8_t>& bytes,
                                          size_t& pos,
                                          const AttrTable& table) {
  uint32_t len = GetWireU32(bytes, pos);
  if (len > bytes.size() - pos) {
    throw util::WireFormatError("routes section of " + std::to_string(len) +
                                " bytes exceeds remaining input");
  }
  std::vector<uint8_t> chunk(bytes.data() + pos, bytes.data() + pos + len);
  pos += len;
  size_t chunk_pos = 0;
  return GetRoutesBody(chunk, chunk_pos, table);
}

}  // namespace s2::cp
