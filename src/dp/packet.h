// Packet header layout and symbolic-packet helpers (paper §4.3).
//
// A header is a bit vector; a symbolic packet is a BDD over one boolean
// variable per header bit. The paper uses 104 bits of 5-tuple plus m
// metadata (waypoint) bits; this implementation makes the layout
// configurable and defaults to dst(32) + m — enough for every evaluated
// property — with optional src bits for ACL-heavy scenarios
// (DESIGN.md substitution S9).
#pragma once

#include "bdd/bdd.h"
#include "util/ip.h"

namespace s2::dp {

struct HeaderLayout {
  uint32_t dst_bits = 32;
  uint32_t src_bits = 0;
  uint32_t meta_bits = 0;  // one per waypoint of interest

  uint32_t total_bits() const { return dst_bits + src_bits + meta_bits; }
  uint32_t DstVar(uint32_t i) const { return i; }               // MSB first
  uint32_t SrcVar(uint32_t i) const { return dst_bits + i; }    // MSB first
  uint32_t MetaVar(uint32_t i) const { return dst_bits + src_bits + i; }
};

// Header-space predicate construction bound to one BDD manager (each
// worker has its own manager; specs are re-encoded per domain).
class PacketCodec {
 public:
  PacketCodec(bdd::Manager* manager, HeaderLayout layout)
      : manager_(manager), layout_(layout) {}

  bdd::Manager* manager() const { return manager_; }
  const HeaderLayout& layout() const { return layout_; }

  // Packets whose destination lies in `prefix`.
  bdd::Bdd DstIn(const util::Ipv4Prefix& prefix) const;
  // Packets whose source lies in `prefix` (requires src_bits == 32).
  bdd::Bdd SrcIn(const util::Ipv4Prefix& prefix) const;
  // The predicate "metadata bit i == value".
  bdd::Bdd MetaBit(uint32_t i, bool value) const;

  // The waypoint write rule: forces metadata bit i to 1 in `packet`
  // (existentially quantifies the old value, then constrains).
  bdd::Bdd SetMetaBit(const bdd::Bdd& packet, uint32_t i) const;

 private:
  bdd::Manager* manager_;
  HeaderLayout layout_;
};

// A declarative header-space spec, shippable across domains (unlike a
// BDD handle): the conjunction of optional dst/src prefix constraints.
struct HeaderSpaceSpec {
  std::optional<util::Ipv4Prefix> dst;
  std::optional<util::Ipv4Prefix> src;

  bdd::Bdd ToBdd(const PacketCodec& codec) const;
};

}  // namespace s2::dp
