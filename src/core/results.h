// Verification outcomes and reporting helpers shared by the three
// verifiers (S2, the monolithic baseline, Bonsai) and the benchmark
// harness. A verifier never aborts on resource exhaustion: simulated OOM
// and timeout become verdicts, matching how the paper reports "OOM" /
// "timeout" bars in Figures 4, 5, and 8.
#pragma once

#include <string>
#include <vector>

#include "dist/cpo.h"
#include "dp/properties.h"

namespace s2::core {

enum class RunStatus { kOk, kOutOfMemory, kTimeout };

const char* RunStatusName(RunStatus status);

struct VerifyResult {
  RunStatus status = RunStatus::kOk;
  std::string failure_detail;  // domain/reason for OOM or timeout

  // Phase metrics. For the monolithic baseline, wall == the single
  // domain's compute time and modeled adds GC penalties.
  double parse_seconds = 0;
  double partition_seconds = 0;
  dist::RoundMetrics control_plane;
  dist::RoundMetrics dp_build;     // FIB + predicate computation
  dist::RoundMetrics dp_forward;   // symbolic forwarding + verdicts

  // The paper's headline memory metric: max per-worker peak (== process
  // peak for the monolithic baseline).
  size_t peak_memory_bytes = 0;
  std::vector<size_t> worker_peaks;

  size_t total_best_routes = 0;
  size_t comm_bytes = 0;
  size_t forwarding_steps = 0;

  // Fault-tolerance counters (nonzero only when the sidecar fabric runs in
  // reliable mode — src/fault).
  size_t retransmits = 0;
  size_t frames_dropped = 0;
  size_t duplicates_suppressed = 0;
  size_t worker_recoveries = 0;

  // Results of the queries run (one entry per query).
  std::vector<dp::QueryResult> queries;

  bool ok() const { return status == RunStatus::kOk; }
  double TotalWallSeconds() const;
  double TotalModeledSeconds() const;
};

// "1.5 GB", "340 MB", "12 KB".
std::string HumanBytes(size_t bytes);
// "2.5 h", "3.1 min", "42 s", "17 ms".
std::string HumanSeconds(double seconds);

}  // namespace s2::core
