file(REMOVE_RECURSE
  "CMakeFiles/s2_bdd.dir/bdd/bdd.cc.o"
  "CMakeFiles/s2_bdd.dir/bdd/bdd.cc.o.d"
  "CMakeFiles/s2_bdd.dir/bdd/bdd_io.cc.o"
  "CMakeFiles/s2_bdd.dir/bdd/bdd_io.cc.o.d"
  "libs2_bdd.a"
  "libs2_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
