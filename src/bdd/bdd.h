// A reduced ordered binary decision diagram (ROBDD) engine.
//
// This is the data-plane verification substrate: symbolic packets and
// per-port forwarding/ACL predicates are BDDs (paper §4.3). S2's design
// point is one *independent* Manager per worker — BDD operations on one
// worker never contend with another worker's, and each worker's node table
// stays small — so the engine supports multiple coexisting managers and
// cross-manager transfer via bdd_io.h.
//
// Engine design (CUDD-style):
//  - Nodes live in a slab indexed by 32-bit ids; ids 0/1 are the terminals.
//  - A unique table canonicalizes (var, low, high) triples, so BDD equality
//    is id equality.
//  - External references are RAII `Bdd` handles that ref/deref the root.
//    Internal references (parent -> child) are counted at node creation.
//  - Dead nodes (refcount 0) are reclaimed by explicit or threshold-driven
//    garbage collection. Between collections, dead nodes remain
//    structurally valid, so cache hits that resurrect them are safe.
//  - Operation results are memoized in fixed-size 2-way set-associative
//    caches (bin ops and ITE) with generational eviction: every hit stamps
//    the entry with the current generation, every GC bumps the generation,
//    and on a set conflict the older-generation way is evicted. GC keeps
//    cache entries whose operand/result nodes survived the sweep and drops
//    only entries referencing freed slots (a freed slot may be reused for a
//    different function, so a stale entry would be unsound). Cache memory
//    is a small per-manager constant and is not charged to the
//    MemoryTracker.
//  - The node table has a configurable capacity; exhausting it throws
//    SimulatedOom, reproducing the paper's "BDD node table overflow"
//    failure mode (§2.2). Node bytes are charged to an optional
//    MemoryTracker so per-worker peak memory includes BDD state.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/memory_tracker.h"

namespace s2::bdd {

class Manager;

// An owning handle to a BDD root. Copyable (bumps the refcount) and
// movable. A default-constructed handle is detached and only assignable.
class Bdd {
 public:
  Bdd() = default;
  Bdd(const Bdd& other);
  Bdd(Bdd&& other) noexcept;
  Bdd& operator=(const Bdd& other);
  Bdd& operator=(Bdd&& other) noexcept;
  ~Bdd();

  bool valid() const { return manager_ != nullptr; }
  bool IsZero() const;
  bool IsOne() const;

  Manager* manager() const { return manager_; }
  uint32_t id() const { return node_; }

  // Canonicity makes structural equality a constant-time id compare.
  // Handles from different managers never compare equal.
  friend bool operator==(const Bdd& a, const Bdd& b) {
    return a.manager_ == b.manager_ && a.node_ == b.node_;
  }

  // Logical operators; both operands must come from the same manager.
  Bdd operator&(const Bdd& rhs) const;
  Bdd operator|(const Bdd& rhs) const;
  Bdd operator^(const Bdd& rhs) const;
  Bdd operator!() const;
  Bdd& operator&=(const Bdd& rhs);
  Bdd& operator|=(const Bdd& rhs);

  // a - b == a & !b; common enough in predicate construction to name.
  Bdd Diff(const Bdd& rhs) const;

  // True if the conjunction is nonempty, computed without materializing it
  // when a cheap answer exists.
  bool Intersects(const Bdd& rhs) const;

  // True if this implies rhs (this & !rhs == 0).
  bool Implies(const Bdd& rhs) const;

 private:
  friend class Manager;
  friend Bdd DeserializeInto(Manager&, const std::vector<uint8_t>&);
  Bdd(Manager* manager, uint32_t node);  // takes one reference

  Manager* manager_ = nullptr;
  uint32_t node_ = 0;
};

class Manager {
 public:
  struct Options {
    // Hard capacity of the node table; 0 means unbounded. The paper notes
    // the table is bounded by 2^32 in practice; benchmarks set this low to
    // surface overflow at laptop scale.
    size_t max_nodes = 0;
    // If set, node slab bytes are charged here (32 bytes per node slot:
    // node record + unique-table and refcount overhead).
    util::MemoryTracker* tracker = nullptr;
    // GC triggers when dead nodes exceed this fraction of allocated nodes.
    double gc_dead_fraction = 0.25;
    // Capacity of each operation cache (bin and ITE), in entries; rounded
    // up to a power of two, minimum 16. Unlike an unbounded hash map, op
    // memoization memory is a fixed per-manager constant.
    size_t op_cache_entries = size_t{1} << 14;
  };

  // Aggregate op-cache behavior across both caches since construction.
  struct CacheStats {
    size_t hits = 0;        // lookups answered from a cache
    size_t misses = 0;      // lookups that fell through to recursion
    size_t evictions = 0;   // valid entries displaced by set conflicts
    size_t gc_kept = 0;     // entries preserved across a GC sweep
    size_t gc_dropped = 0;  // entries invalidated because a GC freed a node
  };

  explicit Manager(uint32_t num_vars) : Manager(num_vars, Options{}) {}
  Manager(uint32_t num_vars, Options options);
  ~Manager();

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  uint32_t num_vars() const { return num_vars_; }

  Bdd Zero();
  Bdd One();
  Bdd Var(uint32_t index);         // the function "bit index is 1"
  Bdd NotVar(uint32_t index);      // the function "bit index is 0"

  Bdd And(const Bdd& a, const Bdd& b);
  Bdd Or(const Bdd& a, const Bdd& b);
  Bdd Xor(const Bdd& a, const Bdd& b);
  Bdd Not(const Bdd& a);
  Bdd Ite(const Bdd& f, const Bdd& g, const Bdd& h);

  // Cofactor: f with variable `var` fixed to `value`.
  Bdd Restrict(const Bdd& f, uint32_t var, bool value);

  // Existential quantification over each variable in `vars`.
  Bdd Exists(const Bdd& f, const std::vector<uint32_t>& vars);

  // Builds the cube "bits of `value` over vars [first_var, first_var+n)";
  // bit i of value (LSB first) constrains variable first_var + i.
  Bdd Cube(uint32_t first_var, uint32_t n, uint64_t value);

  // Builds the predicate "the n-bit field starting at first_var, read MSB
  // first, matches `value` under `mask`" — the LPM building block.
  Bdd MaskedMatch(uint32_t first_var, uint32_t n, uint64_t value,
                  uint64_t mask);

  // Fraction of the 2^num_vars assignments satisfying f, in [0,1].
  double SatFraction(const Bdd& f);

  // One satisfying assignment, as a vector of (var, value) for the
  // variables on the chosen path (others are free). f must not be Zero.
  std::vector<std::pair<uint32_t, bool>> AnySat(const Bdd& f);

  // ------------------------------------------------- snapshot pinning / GC
  // Marks a root as part of a published snapshot surface (svc/ serving
  // domains, worker data planes). Pinning takes no reference — the
  // caller's handles keep the root alive — but every GC sweep asserts (in
  // builds with assertions) that no pinned node is ever freed, turning a
  // refcount bug on an immutable-after-converge surface into an immediate
  // failure instead of silent verdict corruption.
  void PinRoot(const Bdd& root);
  size_t pinned_roots() const { return pinned_.size(); }

  // GC hold: while held, threshold-driven collection (MaybeGc) is
  // suppressed, so dead intermediates — and the op/ITE cache entries
  // referencing them — survive between queries on a long-lived serving
  // domain and repeated queries replay as cache hits. Explicit
  // GarbageCollect() still works (serving domains collect on a query-count
  // cadence instead). Nestable; Resume with no matching Pause is a no-op.
  void PauseGc() { ++gc_hold_; }
  void ResumeGc() {
    if (gc_hold_ > 0) --gc_hold_;
  }
  bool gc_paused() const { return gc_hold_ > 0; }

  // Diagnostics / accounting.
  size_t allocated_nodes() const { return nodes_.size() - free_count_; }
  // Internal (non-terminal) nodes still referenced.
  size_t live_nodes() const;
  size_t peak_nodes() const { return peak_nodes_; }
  const CacheStats& cache_stats() const { return cache_stats_; }
  // Current cache generation; bumped once per GC sweep.
  uint32_t generation() const { return generation_; }
  void GarbageCollect();

  // Per-node byte estimate used for memory accounting.
  static constexpr size_t kNodeBytes = 32;

 private:
  friend class Bdd;
  friend struct SerializedView;  // bdd_io needs raw node access
  friend Bdd DeserializeInto(Manager&, const std::vector<uint8_t>&);
  friend std::vector<uint8_t> Serialize(const Bdd&);

  struct Node {
    uint32_t var;
    uint32_t low;
    uint32_t high;
  };

  struct UniqueKey {
    uint32_t var, low, high;
    bool operator==(const UniqueKey&) const = default;
  };
  struct UniqueKeyHash {
    size_t operator()(const UniqueKey& k) const {
      uint64_t h = k.var;
      h = h * 0x9e3779b97f4a7c15ULL + k.low;
      h = h * 0x9e3779b97f4a7c15ULL + k.high;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };

  enum BinOp : uint8_t { kAnd = 0, kOr = 1, kXor = 2, kRestrict0 = 3 };

  static constexpr uint32_t kEmptySlot = ~uint32_t{0};

  // One memoized operation. For the bin cache the key is (a, b, c=op),
  // where Restrict entries pack (var << 1) | value into `b` — for that op
  // `b` is NOT a node id. For the ITE cache the key is (a=f, b=g, c=h).
  struct OpCacheEntry {
    uint32_t a = kEmptySlot;
    uint32_t b = 0;
    uint32_t c = 0;
    uint32_t result = 0;
    uint32_t gen = 0;
  };

  // Fixed-size 2-way set-associative memo table with generational
  // replacement. Never grows after Init; see the header comment.
  class OpCache {
   public:
    void Init(size_t entries);
    // Returns the memoized result id, or kEmptySlot on a miss. A hit
    // refreshes the entry's generation stamp.
    uint32_t Lookup(uint32_t a, uint32_t b, uint32_t c, uint32_t gen,
                    CacheStats& stats);
    void Insert(uint32_t a, uint32_t b, uint32_t c, uint32_t result,
                uint32_t gen, CacheStats& stats);
    // Drops entries for which `drop(entry)` is true; tallies the survivors
    // and casualties into `stats` (gc_kept / gc_dropped).
    template <typename DropPred>
    void Purge(DropPred drop, CacheStats& stats) {
      for (OpCacheEntry& e : slots_) {
        if (e.a == kEmptySlot) continue;
        if (drop(e)) {
          e.a = kEmptySlot;
          ++stats.gc_dropped;
        } else {
          ++stats.gc_kept;
        }
      }
    }

   private:
    size_t SetOf(uint32_t a, uint32_t b, uint32_t c) const;

    std::vector<OpCacheEntry> slots_;  // 2 ways per set, contiguous
    size_t set_mask_ = 0;
  };

  static constexpr uint32_t kZero = 0;
  static constexpr uint32_t kOne = 1;
  static constexpr uint32_t kTerminalVar = ~uint32_t{0};

  uint32_t MakeNode(uint32_t var, uint32_t low, uint32_t high);
  uint32_t AllocateSlot();

  uint32_t ApplyBin(BinOp op, uint32_t a, uint32_t b);
  uint32_t IteRec(uint32_t f, uint32_t g, uint32_t h);
  uint32_t RestrictRec(uint32_t f, uint32_t var, bool value);
  double SatFractionRec(uint32_t f,
                        std::unordered_map<uint32_t, double>& memo);

  void Ref(uint32_t node);
  void Deref(uint32_t node);
  void MaybeGc();

  uint32_t VarOf(uint32_t node) const { return nodes_[node].var; }
  bool IsTerminal(uint32_t node) const { return node <= kOne; }

  uint32_t num_vars_;
  Options options_;

  std::vector<Node> nodes_;
  std::vector<uint32_t> refcounts_;
  std::vector<uint32_t> free_list_;
  size_t free_count_ = 0;
  size_t dead_count_ = 0;
  size_t peak_nodes_ = 0;
  size_t gc_watermark_ = 2 * 4096;

  std::unordered_map<UniqueKey, uint32_t, UniqueKeyHash> unique_;
  OpCache bin_cache_;
  OpCache ite_cache_;
  CacheStats cache_stats_;
  uint32_t generation_ = 1;
  std::unordered_set<uint32_t> pinned_;
  uint32_t gc_hold_ = 0;
};

}  // namespace s2::bdd
