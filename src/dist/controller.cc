#include "dist/controller.h"

#include <algorithm>
#include <string>
#include <thread>

#include "obs/trace.h"

namespace s2::dist {

Controller::Controller(config::ParsedNetwork network,
                       ControllerOptions options)
    : network_(std::move(network)), options_(options) {}

Controller::~Controller() = default;

void Controller::Setup() {
  obs::Span span("controller", "controller.partition");
  span.Arg("workers", options_.num_workers);
  span.Arg("shards", options_.num_shards);
  partition_ = topo::Partition(network_.graph, options_.num_workers,
                               options_.scheme, options_.seed);
  fabric_ = std::make_unique<SidecarFabric>(options_.num_workers,
                                            partition_.assignment);
  if (options_.fault_plan) {
    injector_ = std::make_unique<fault::FaultInjector>(*options_.fault_plan);
  }
  if (injector_ != nullptr || options_.reliable_delivery) {
    static const fault::FaultPlan kDefaultTuning;
    fabric_->EnableReliableDelivery(
        injector_ ? injector_->plan() : kDefaultTuning, injector_.get(),
        /*keep_replay_log=*/injector_ != nullptr);
  }

  // The pool must exist before the workers: worker options carry the pool
  // pointer so the data-plane lanes can fan out on it (and RecoverWorker
  // re-creates workers from the same options later).
  size_t threads = options_.pool_threads;
  if (threads == 0) {
    threads = std::min<size_t>(options_.num_workers,
                               std::max(1u,
                                        std::thread::hardware_concurrency()));
  }
  pool_ = std::make_unique<util::ThreadPool>(threads);

  worker_options_.memory_budget = options_.worker_memory_budget;
  worker_options_.max_bdd_nodes = options_.max_bdd_nodes;
  worker_options_.layout = options_.layout;
  worker_options_.max_hops = options_.max_hops;
  worker_options_.dp_lanes = options_.dp_lanes;
  worker_options_.pool = pool_.get();
  workers_.clear();
  for (uint32_t w = 0; w < options_.num_workers; ++w) {
    workers_.push_back(std::make_unique<Worker>(w, network_, fabric_.get(),
                                                worker_options_));
  }
  checkpoints_.assign(options_.num_workers, fault::WorkerCheckpoint{});

  FaultHooks hooks;
  if (injector_ != nullptr) {
    hooks.injector = injector_.get();
    hooks.checkpoint_interval = injector_->plan().checkpoint_interval;
    hooks.checkpoint = [this](int shard) { CheckpointWorkers(shard); };
    hooks.recover = [this](uint32_t w) { RecoverWorker(w); };
  }
  cpo_ = std::make_unique<Cpo>(&workers_, fabric_.get(), pool_.get(),
                               options_.cost, options_.max_rounds,
                               std::move(hooks));
  dpo_ = std::make_unique<Dpo>(&workers_, fabric_.get(), pool_.get(),
                               options_.cost, worker_options_);

  if (options_.num_shards > 0) {
    plan_ = cp::BuildShardPlan(network_, options_.num_shards,
                               options_.seed);
    // §7 fallback: a freshly built plan is already dependency-closed, but
    // repair defensively so externally cached/edited plans can't split
    // dependent prefixes.
    cp::RepairShardPlan(network_, *plan_);
    store_ = std::make_shared<cp::RibStore>();
  }

  gather_manager_ =
      std::make_unique<bdd::Manager>(options_.layout.total_bits());
}

RoundMetrics Controller::RunControlPlane() {
  obs::Span span("controller", "controller.control_plane");
  bool any_ospf = false;
  for (const config::ViConfig& config : network_.configs) {
    any_ospf = any_ospf || config.ospf.enabled;
  }
  RoundMetrics metrics =
      cpo_->Run(any_ospf, plan_ ? &*plan_ : nullptr, store_.get());
  // Final snapshot of the converged (idle) control plane: crashes fired
  // during the data-plane phase recover from here.
  if (injector_ != nullptr) CheckpointWorkers(-1);
  return metrics;
}

RoundMetrics Controller::BuildDataPlanes() {
  obs::Span span("controller", "controller.dp_build");
  RoundMetrics metrics = dpo_->BuildDataPlanes(store_.get());
  if (injector_ != nullptr) {
    for (uint32_t w = 0; w < workers_.size(); ++w) {
      workers_[w]->CheckpointDataPlane(checkpoints_[w]);
      fabric_->MarkCheckpoint(w);
    }
    for (uint32_t w : injector_->TakeCrashes(fault::CrashPhase::kDataPlaneBuild,
                                             /*round=*/0)) {
      RecoverWorker(w);
    }
  }
  return metrics;
}

Controller::QueryOutcome Controller::RunQuery(const dp::Query& query) {
  obs::Span span("controller", "controller.query");
  dp::PacketCodec gather_codec(gather_manager_.get(), options_.layout);
  Dpo::QueryRun run = dpo_->RunQuery(query, gather_codec);
  QueryOutcome outcome;
  outcome.metrics = run.metrics;
  outcome.gather_bytes = run.gather_bytes;
  for (const auto& worker : workers_) {
    outcome.forwarding_steps += worker->forwarding_steps();
  }
  outcome.result =
      dp::EvaluateQuery(query, gather_codec, run.finals, network_);
  // Queries mutate no durable worker state; truncating the replay logs at
  // the query barrier keeps them from growing across a query sweep.
  if (injector_ != nullptr) {
    for (uint32_t w = 0; w < workers_.size(); ++w) {
      checkpoints_[w].fabric_round = fabric_->CurrentRound();
      fabric_->MarkCheckpoint(w);
    }
  }
  return outcome;
}

Controller::MultiQueryOutcome Controller::RunQueries(
    const std::vector<dp::Query>& queries) {
  obs::Span span("controller", "controller.query");
  span.Arg("queries", static_cast<int64_t>(queries.size()));
  dp::PacketCodec gather_codec(gather_manager_.get(), options_.layout);
  size_t lanes = options_.query_lanes;
  if (lanes == 0) lanes = std::min<size_t>(queries.size(), 8);
  Dpo::MultiQueryRun multi = dpo_->RunQueries(queries, gather_codec, lanes);
  MultiQueryOutcome outcome;
  outcome.aggregate = multi.aggregate;
  for (size_t q = 0; q < queries.size(); ++q) {
    QueryOutcome one;
    one.metrics = multi.runs[q].metrics;
    one.gather_bytes = multi.runs[q].gather_bytes;
    one.result = dp::EvaluateQuery(queries[q], gather_codec,
                                   multi.runs[q].finals, network_);
    outcome.outcomes.push_back(std::move(one));
  }
  return outcome;
}

// ------------------------------------------------------- fault tolerance

void Controller::CheckpointWorkers(int shard) {
  for (uint32_t w = 0; w < workers_.size(); ++w) {
    bool had_data_plane = checkpoints_[w].has_data_plane;
    auto predicates = std::move(checkpoints_[w].predicate_state);
    size_t fib_bytes = checkpoints_[w].fib_bytes;
    checkpoints_[w] = workers_[w]->Checkpoint(shard);
    // Control-plane checkpoints never invalidate a data-plane snapshot —
    // the engines are untouched by CP rounds.
    checkpoints_[w].has_data_plane = had_data_plane;
    checkpoints_[w].predicate_state = std::move(predicates);
    checkpoints_[w].fib_bytes = fib_bytes;
    checkpoints_[w].fabric_round = fabric_->CurrentRound();
    fabric_->MarkCheckpoint(w);
  }
}

void Controller::RecoverWorker(uint32_t w) {
  const fault::WorkerCheckpoint& checkpoint = checkpoints_[w];
  std::vector<fault::LoggedDelivery> log = fabric_->ReplayLog(w);
  // The worker object dies (RIBs, engines, tracker — everything in the
  // crashed process); the sidecar survives, like the paper's separate
  // sidecar process, keeping channel state and the replay log.
  workers_[w] = std::make_unique<Worker>(w, network_, fabric_.get(),
                                         worker_options_);
  Worker& worker = *workers_[w];
  const cp::PrefixSet* shard =
      (checkpoint.shard >= 0 && plan_) ? &plan_->shard(checkpoint.shard)
                                       : nullptr;
  worker.Restore(checkpoint, shard);
  worker.ReplayDelivered(checkpoint.fabric_round, fabric_->CurrentRound(),
                         log);
  if (checkpoint.has_data_plane) worker.RestoreDataPlane(checkpoint);
  ++worker_recoveries_;
}

size_t Controller::TotalBestRoutes() const {
  if (store_) return store_->routes_written();
  size_t total = 0;
  for (const auto& worker : workers_) {
    for (topo::NodeId id : worker->local_nodes()) {
      for (const auto& [prefix, routes] : worker->node(id).bgp_routes()) {
        total += routes.size();
      }
    }
  }
  return total;
}

size_t Controller::MaxWorkerPeakBytes() const {
  // Worker peaks are reset per shard round to attribute them; the CPO
  // remembers the highest one it saw.
  size_t peak = cpo_ ? cpo_->observed_peak() : 0;
  for (const auto& worker : workers_) {
    peak = std::max(peak, worker->tracker().peak_bytes());
  }
  return peak;
}

std::vector<size_t> Controller::WorkerPeakBytes() const {
  std::vector<size_t> peaks;
  peaks.reserve(workers_.size());
  for (const auto& worker : workers_) {
    peaks.push_back(worker->tracker().peak_bytes());
  }
  return peaks;
}

void Controller::PublishMetrics(obs::Registry& registry) const {
  registry.SetCounter("controller.num_workers",
                      static_cast<int64_t>(workers_.size()));
  registry.SetCounter("controller.worker_recoveries",
                      static_cast<int64_t>(worker_recoveries_));
  registry.SetCounter("mem.max_worker_peak_bytes",
                      static_cast<int64_t>(MaxWorkerPeakBytes()));
  std::vector<size_t> peaks = WorkerPeakBytes();
  for (size_t w = 0; w < peaks.size(); ++w) {
    std::string tag = ".w" + std::to_string(w);
    registry.SetCounter("mem.worker_peak_bytes" + tag,
                        static_cast<int64_t>(peaks[w]));
    if (fabric_) {
      registry.SetCounter("fabric.bytes_sent" + tag,
                          static_cast<int64_t>(fabric_->bytes_sent_by(w)));
      registry.SetCounter(
          "fabric.messages_sent" + tag,
          static_cast<int64_t>(fabric_->messages_sent_by(w)));
      registry.SetCounter(
          "fabric.max_queue_depth" + tag,
          static_cast<int64_t>(fabric_->max_queue_depth(w)));
    }
  }
  if (fabric_) {
    registry.SetCounter("fabric.total_bytes",
                        static_cast<int64_t>(fabric_->total_bytes()));
    if (fabric_->reliable()) {
      fault::ReliableTransport::Stats stats = fabric_->transport_stats();
      registry.SetCounter("transport.data_frames",
                          static_cast<int64_t>(stats.data_frames));
      registry.SetCounter("transport.retransmits",
                          static_cast<int64_t>(stats.retransmits));
      registry.SetCounter("transport.acks",
                          static_cast<int64_t>(stats.acks));
      registry.SetCounter("transport.wire_bytes",
                          static_cast<int64_t>(stats.wire_bytes));
      registry.SetCounter("transport.dropped",
                          static_cast<int64_t>(stats.dropped));
      registry.SetCounter("transport.duplicated",
                          static_cast<int64_t>(stats.duplicated));
      registry.SetCounter("transport.delayed",
                          static_cast<int64_t>(stats.delayed));
      registry.SetCounter("transport.reordered",
                          static_cast<int64_t>(stats.reordered));
      registry.SetCounter(
          "transport.duplicates_suppressed",
          static_cast<int64_t>(stats.duplicates_suppressed));
      registry.SetCounter("transport.out_of_order",
                          static_cast<int64_t>(stats.out_of_order));
    }
  }
  if (cpo_) {
    const std::vector<ShardMetrics>& shards = cpo_->shard_metrics();
    registry.SetCounter("cp.shards_run",
                        static_cast<int64_t>(shards.size()));
    for (size_t s = 0; s < shards.size(); ++s) {
      std::string prefix = "cp.shard." + std::to_string(s);
      registry.SetCounter(prefix + ".rounds",
                          static_cast<int64_t>(shards[s].rounds.rounds));
      registry.SetCounter(
          prefix + ".comm_bytes",
          static_cast<int64_t>(shards[s].rounds.comm_bytes));
      registry.SetGauge(prefix + ".modeled_seconds",
                        shards[s].rounds.modeled_seconds);
      registry.SetCounter(
          prefix + ".max_worker_peak_bytes",
          static_cast<int64_t>(shards[s].max_worker_peak));
    }
  }
  registry.SetCounter("routes.total_best",
                      static_cast<int64_t>(TotalBestRoutes()));

  // Attribute-pool counters, summed over worker interning domains. The
  // dedup ratio is hits/(hits+misses) over all Intern calls; wire savings
  // compare the packed attribute-table encoding against inline tuples.
  cp::AttrPool::Stats attr{};
  for (const auto& worker : workers_) {
    cp::AttrPool::Stats s = worker->attr_pool().stats();
    attr.hits += s.hits;
    attr.misses += s.misses;
    attr.evictions += s.evictions;
    attr.live_entries += s.live_entries;
    attr.peak_entries += s.peak_entries;
    attr.shared_bytes += s.shared_bytes;
    attr.peak_shared_bytes += s.peak_shared_bytes;
    attr.plain_bytes += s.plain_bytes;
    attr.peak_plain_bytes += s.peak_plain_bytes;
    attr.wire_tuples_written += s.wire_tuples_written;
    attr.wire_tuples_reused += s.wire_tuples_reused;
    attr.wire_bytes_saved += s.wire_bytes_saved;
  }
  registry.SetCounter("attr.intern_hits", static_cast<int64_t>(attr.hits));
  registry.SetCounter("attr.intern_misses",
                      static_cast<int64_t>(attr.misses));
  registry.SetCounter("attr.evictions",
                      static_cast<int64_t>(attr.evictions));
  registry.SetCounter("attr.pool_live_entries",
                      static_cast<int64_t>(attr.live_entries));
  registry.SetCounter("attr.pool_peak_entries",
                      static_cast<int64_t>(attr.peak_entries));
  registry.SetCounter("attr.shared_peak_bytes",
                      static_cast<int64_t>(attr.peak_shared_bytes));
  registry.SetCounter("attr.plain_equivalent_peak_bytes",
                      static_cast<int64_t>(attr.peak_plain_bytes));
  registry.SetCounter("attr.wire_tuples_written",
                      static_cast<int64_t>(attr.wire_tuples_written));
  registry.SetCounter("attr.wire_tuples_reused",
                      static_cast<int64_t>(attr.wire_tuples_reused));
  registry.SetCounter("attr.wire_bytes_saved",
                      static_cast<int64_t>(attr.wire_bytes_saved));
  registry.SetGauge("attr.dedup_ratio", attr.DedupRatio());
}

}  // namespace s2::dist
