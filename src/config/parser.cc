#include "config/parser.h"

#include <cstdlib>

#include "util/string_util.h"

namespace s2::config {

namespace {

using util::SplitLines;
using util::SplitTokens;
using util::StartsWith;

// Parses "a.b.c.d/len" or "any" into an optional prefix.
std::optional<util::Ipv4Prefix> ParsePrefixOrAny(const std::string& token) {
  if (token == "any") return std::nullopt;
  auto prefix = util::Ipv4Prefix::Parse(token);
  if (!prefix) std::abort();
  return prefix;
}

std::vector<uint32_t> ParseCommunities(const std::vector<std::string>& tokens,
                                       size_t from, size_t to) {
  std::vector<uint32_t> out;
  for (size_t i = from; i < to; ++i) {
    out.push_back(static_cast<uint32_t>(std::stoul(tokens[i])));
  }
  return out;
}

// --------------------------------------------------------- Alpha parsing

util::Result<ViConfig> ParseAlpha(const std::string& text) {
  ViConfig config;
  config.vendor = topo::Vendor::kAlpha;

  enum class Context {
    kTop,
    kInterface,
    kAcl,
    kRouteMap,
    kBgp,
    kOspf,
  };
  Context context = Context::kTop;
  std::string current_interface;
  std::string current_acl;
  std::string current_map;

  for (const std::string& raw : SplitLines(text)) {
    std::string line = util::Trim(raw);
    if (line.empty() || line == "!") {
      context = Context::kTop;
      continue;
    }
    std::vector<std::string> t = SplitTokens(line);

    // Block starters terminate the previous block even without a "!"
    // separator (consecutive route-map clauses emit no separator).
    bool block_start =
        t[0] == "hostname" || t[0] == "interface" || t[0] == "route-map" ||
        t[0] == "router" ||
        (t[0] == "ip" && t.size() > 1 && t[1] == "access-list");
    if (block_start) context = Context::kTop;

    if (context == Context::kTop) {
      if (t[0] == "hostname" && t.size() == 2) {
        config.hostname = t[1];
      } else if (t[0] == "interface" && t.size() == 2) {
        current_interface = t[1];
        context = Context::kInterface;
      } else if (t[0] == "ip" && t.size() >= 3 && t[1] == "access-list") {
        current_acl = t[2];
        config.acls[current_acl].name = current_acl;
        context = Context::kAcl;
      } else if (t[0] == "route-map" && t.size() == 4) {
        current_map = t[1];
        RouteMap& map = config.route_maps[current_map];
        map.name = current_map;
        RouteMapClause clause;
        clause.permit = (t[2] == "permit");
        map.clauses.push_back(clause);
        context = Context::kRouteMap;
      } else if (t[0] == "router" && t.size() >= 2 && t[1] == "bgp") {
        config.bgp.enabled = true;
        config.bgp.asn = static_cast<uint32_t>(std::stoul(t[2]));
        context = Context::kBgp;
      } else if (t[0] == "router" && t.size() >= 2 && t[1] == "ospf") {
        config.ospf.enabled = true;
        context = Context::kOspf;
      } else {
        return util::Result<ViConfig>::Error("alpha: unknown top line: " +
                                             line);
      }
      continue;
    }

    switch (context) {
      case Context::kInterface: {
        if (t[0] == "ip" && t[1] == "address" && t.size() == 3) {
          auto prefix = util::Ipv4Prefix::Parse(t[2]);
          if (!prefix) {
            return util::Result<ViConfig>::Error("alpha: bad address: " +
                                                 line);
          }
          if (current_interface == "lo0") {
            config.loopback = *prefix;
          } else {
            // /31 p2p: keep the exact interface address, not the subnet.
            auto addr =
                util::Ipv4Address::Parse(t[2].substr(0, t[2].find('/')));
            Interface iface;
            iface.name = current_interface;
            iface.address = *addr;
            iface.prefix_length = prefix->length();
            config.interfaces.push_back(iface);
          }
        } else if (t[0] == "ip" && t[1] == "access-group" && t.size() == 4) {
          for (Interface& iface : config.interfaces) {
            if (iface.name == current_interface) {
              (t[3] == "in" ? iface.acl_in : iface.acl_out) = t[2];
            }
          }
        } else {
          return util::Result<ViConfig>::Error("alpha: bad interface line: " +
                                               line);
        }
        break;
      }
      case Context::kAcl: {
        if (t.size() == 3 && (t[0] == "permit" || t[0] == "deny")) {
          AclEntry entry;
          entry.permit = (t[0] == "permit");
          entry.src = ParsePrefixOrAny(t[1]);
          entry.dst = ParsePrefixOrAny(t[2]);
          config.acls[current_acl].entries.push_back(entry);
        } else {
          return util::Result<ViConfig>::Error("alpha: bad acl line: " +
                                               line);
        }
        break;
      }
      case Context::kRouteMap: {
        RouteMapClause& clause = config.route_maps[current_map].clauses.back();
        if (t[0] == "match" && t[1] == "ip-prefix" && t.size() == 3) {
          clause.match_covered_by = util::Ipv4Prefix::Parse(t[2]);
        } else if (t[0] == "match" && t[1] == "community") {
          clause.match_any_community = ParseCommunities(t, 2, t.size());
        } else if (t[0] == "set" && t[1] == "local-preference") {
          clause.set_local_pref = static_cast<uint32_t>(std::stoul(t[2]));
        } else if (t[0] == "set" && t[1] == "med") {
          clause.set_med = static_cast<uint32_t>(std::stoul(t[2]));
        } else if (t[0] == "set" && t[1] == "community") {
          size_t end = t.size();
          if (t.back() == "additive") --end;
          clause.add_communities = ParseCommunities(t, 2, end);
        } else if (t[0] == "set" && t[1] == "comm-list" &&
                   t.back() == "delete") {
          clause.delete_communities = ParseCommunities(t, 2, t.size() - 1);
        } else if (t[0] == "set" && t[1] == "as-path" && t[2] == "prepend") {
          clause.as_path_prepend = static_cast<uint32_t>(std::stoul(t[3]));
        } else if (t[0] == "set" && t[1] == "as-path" && t[2] == "overwrite") {
          clause.set_as_path_overwrite = true;
        } else if (t[0] == "continue") {
          clause.continue_next = true;
        } else {
          return util::Result<ViConfig>::Error("alpha: bad route-map line: " +
                                               line);
        }
        break;
      }
      case Context::kBgp: {
        if (t[0] == "maximum-paths") {
          config.bgp.max_paths = std::stoi(t[1]);
        } else if (t[0] == "redistribute" && t[1] == "ospf") {
          config.bgp.redistribute_ospf = true;
        } else if (t[0] == "network") {
          config.bgp.networks.push_back(*util::Ipv4Prefix::Parse(t[1]));
        } else if (t[0] == "aggregate-address") {
          BgpAggregate agg;
          agg.prefix = *util::Ipv4Prefix::Parse(t[1]);
          agg.summary_only = false;
          size_t i = 2;
          if (i < t.size() && t[i] == "summary-only") {
            agg.summary_only = true;
            ++i;
          }
          if (i < t.size() && t[i] == "community") {
            agg.communities = ParseCommunities(t, i + 1, t.size());
          }
          config.bgp.aggregates.push_back(agg);
        } else if (t[0] == "advertise-conditional" && t.size() == 4) {
          BgpCondAdv cond;
          cond.advertise = *util::Ipv4Prefix::Parse(t[1]);
          cond.advertise_if_present = (t[2] == "exist");
          cond.watch = *util::Ipv4Prefix::Parse(t[3]);
          config.bgp.cond_advs.push_back(cond);
        } else if (t[0] == "neighbor") {
          auto address = util::Ipv4Address::Parse(t[1]);
          BgpNeighbor* neighbor = nullptr;
          for (BgpNeighbor& n : config.bgp.neighbors) {
            if (n.peer_address == *address) neighbor = &n;
          }
          if (!neighbor) {
            config.bgp.neighbors.emplace_back();
            neighbor = &config.bgp.neighbors.back();
            neighbor->peer_address = *address;
          }
          if (t[2] == "remote-as") {
            neighbor->remote_as = static_cast<uint32_t>(std::stoul(t[3]));
          } else if (t[2] == "update-source") {
            neighbor->via_interface = t[3];
          } else if (t[2] == "route-map") {
            (t[4] == "in" ? neighbor->import_route_map
                          : neighbor->export_route_map) = t[3];
          } else if (t[2] == "remove-private-as") {
            neighbor->remove_private_as = true;
          } else {
            return util::Result<ViConfig>::Error("alpha: bad neighbor line: " +
                                                 line);
          }
        } else {
          return util::Result<ViConfig>::Error("alpha: bad bgp line: " +
                                               line);
        }
        break;
      }
      case Context::kOspf:
        break;  // "network all" — single-area over everything
      case Context::kTop:
        break;
    }
  }
  return config;
}

// ---------------------------------------------------------- Beta parsing

util::Result<ViConfig> ParseBeta(const std::string& text) {
  ViConfig config;
  config.vendor = topo::Vendor::kBeta;
  // Policy terms arrive keyed by (policy, term); remember the term of the
  // clause currently at the back of each map to know when to start a new
  // clause. Emission is in ascending term order, so sequential checks
  // suffice.
  std::unordered_map<std::string, int> last_term;
  std::unordered_map<std::string, int> last_acl_term;

  for (const std::string& raw : SplitLines(text)) {
    std::string line = util::Trim(raw);
    if (line.empty()) continue;
    std::vector<std::string> t = SplitTokens(line);
    if (t[0] != "set") {
      return util::Result<ViConfig>::Error("beta: expected set: " + line);
    }
    if (t[1] == "system" && t[2] == "host-name") {
      config.hostname = t[3];
    } else if (t[1] == "interfaces" && t[3] == "address") {
      auto prefix = util::Ipv4Prefix::Parse(t[4]);
      if (!prefix) {
        return util::Result<ViConfig>::Error("beta: bad address: " + line);
      }
      if (t[2] == "lo0") {
        config.loopback = *prefix;
      } else {
        auto addr = util::Ipv4Address::Parse(t[4].substr(0, t[4].find('/')));
        Interface iface;
        iface.name = t[2];
        iface.address = *addr;
        iface.prefix_length = prefix->length();
        config.interfaces.push_back(iface);
      }
    } else if (t[1] == "interfaces" && t[3] == "filter") {
      for (Interface& iface : config.interfaces) {
        if (iface.name == t[2]) {
          (t[4] == "input" ? iface.acl_in : iface.acl_out) = t[5];
        }
      }
    } else if (t[1] == "firewall" && t[2] == "filter") {
      // set firewall filter NAME term N permit|deny from SRC to DST
      const std::string& name = t[3];
      int term = std::stoi(t[5]);
      Acl& acl = config.acls[name];
      acl.name = name;
      if (last_acl_term.find(name) == last_acl_term.end() ||
          last_acl_term[name] != term) {
        last_acl_term[name] = term;
        AclEntry entry;
        entry.permit = (t[6] == "permit");
        entry.src = ParsePrefixOrAny(t[8]);
        entry.dst = ParsePrefixOrAny(t[10]);
        acl.entries.push_back(entry);
      }
    } else if (t[1] == "policy-options" && t[2] == "policy") {
      const std::string& name = t[3];
      int term = std::stoi(t[5]);
      RouteMap& map = config.route_maps[name];
      map.name = name;
      if (last_term.find(name) == last_term.end() ||
          last_term[name] != term) {
        last_term[name] = term;
        map.clauses.emplace_back();
      }
      RouteMapClause& clause = map.clauses.back();
      if (t.size() == 7 && (t[6] == "permit" || t[6] == "deny")) {
        clause.permit = (t[6] == "permit");
      } else if (t[6] == "from" && t[7] == "prefix") {
        clause.match_covered_by = util::Ipv4Prefix::Parse(t[8]);
      } else if (t[6] == "from" && t[7] == "community") {
        clause.match_any_community.push_back(
            static_cast<uint32_t>(std::stoul(t[8])));
      } else if (t[6] == "then" && t[7] == "local-preference") {
        clause.set_local_pref = static_cast<uint32_t>(std::stoul(t[8]));
      } else if (t[6] == "then" && t[7] == "med") {
        clause.set_med = static_cast<uint32_t>(std::stoul(t[8]));
      } else if (t[6] == "then" && t[7] == "community" && t[8] == "add") {
        clause.add_communities.push_back(
            static_cast<uint32_t>(std::stoul(t[9])));
      } else if (t[6] == "then" && t[7] == "community" &&
                 t[8] == "delete") {
        clause.delete_communities.push_back(
            static_cast<uint32_t>(std::stoul(t[9])));
      } else if (t[6] == "then" && t[7] == "as-path-prepend") {
        clause.as_path_prepend = static_cast<uint32_t>(std::stoul(t[8]));
      } else if (t[6] == "then" && t[7] == "as-path-overwrite") {
        clause.set_as_path_overwrite = true;
      } else if (t[6] == "then" && t[7] == "next-term") {
        clause.continue_next = true;
      } else {
        return util::Result<ViConfig>::Error("beta: bad policy line: " +
                                             line);
      }
    } else if (t[1] == "protocols" && t[2] == "ospf") {
      config.ospf.enabled = true;
    } else if (t[1] == "protocols" && t[2] == "bgp") {
      config.bgp.enabled = true;
      if (t[3] == "local-as") {
        config.bgp.asn = static_cast<uint32_t>(std::stoul(t[4]));
      } else if (t[3] == "multipath") {
        config.bgp.max_paths = std::stoi(t[4]);
      } else if (t[3] == "redistribute-ospf") {
        config.bgp.redistribute_ospf = true;
      } else if (t[3] == "network") {
        config.bgp.networks.push_back(*util::Ipv4Prefix::Parse(t[4]));
      } else if (t[3] == "aggregate") {
        BgpAggregate agg;
        agg.prefix = *util::Ipv4Prefix::Parse(t[4]);
        agg.summary_only = false;
        size_t i = 5;
        if (i < t.size() && t[i] == "summary-only") {
          agg.summary_only = true;
          ++i;
        }
        if (i < t.size() && t[i] == "community") {
          agg.communities = ParseCommunities(t, i + 1, t.size());
        }
        config.bgp.aggregates.push_back(agg);
      } else if (t[3] == "conditional-advertise") {
        BgpCondAdv cond;
        cond.advertise = *util::Ipv4Prefix::Parse(t[4]);
        cond.advertise_if_present = (t[5] == "exist");
        cond.watch = *util::Ipv4Prefix::Parse(t[6]);
        config.bgp.cond_advs.push_back(cond);
      } else if (t[3] == "neighbor") {
        auto address = util::Ipv4Address::Parse(t[4]);
        BgpNeighbor* neighbor = nullptr;
        for (BgpNeighbor& n : config.bgp.neighbors) {
          if (n.peer_address == *address) neighbor = &n;
        }
        if (!neighbor) {
          config.bgp.neighbors.emplace_back();
          neighbor = &config.bgp.neighbors.back();
          neighbor->peer_address = *address;
        }
        if (t[5] == "peer-as") {
          neighbor->remote_as = static_cast<uint32_t>(std::stoul(t[6]));
        } else if (t[5] == "local-interface") {
          neighbor->via_interface = t[6];
        } else if (t[5] == "import") {
          neighbor->import_route_map = t[6];
        } else if (t[5] == "export") {
          neighbor->export_route_map = t[6];
        } else if (t[5] == "remove-private") {
          neighbor->remove_private_as = true;
        } else {
          return util::Result<ViConfig>::Error("beta: bad neighbor line: " +
                                               line);
        }
      } else {
        return util::Result<ViConfig>::Error("beta: bad bgp line: " + line);
      }
    } else {
      return util::Result<ViConfig>::Error("beta: unknown line: " + line);
    }
  }
  return config;
}

// ----------------------------------------------------- name-based roles

// Reconstructs (role, layer, pod) from hostname conventions; returns false
// if the name matches no known convention.
bool InferRoleFromName(const std::string& name, topo::NodeInfo& info) {
  auto starts = [&](const char* prefix) {
    return StartsWith(name, prefix);
  };
  if (starts("edge-") || starts("agg-") || starts("core-")) {
    // FatTree names: role-p-i.
    std::vector<std::string> parts = SplitTokens(name, "-");
    if (starts("edge-")) {
      info.role = topo::Role::kEdge;
      info.layer = 0;
      info.pod = std::stoi(parts[1]);
    } else if (starts("agg-")) {
      info.role = topo::Role::kAggregation;
      info.layer = 1;
      info.pod = std::stoi(parts[1]);
    } else {
      info.role = topo::Role::kCore;
      info.layer = 2;
      info.pod = -1;
    }
    return true;
  }
  if (starts("core")) {
    info.role = topo::Role::kCore;
    info.layer = 10;
    info.pod = -1;
    return true;
  }
  if (starts("border")) {
    info.role = topo::Role::kBorder;
    info.layer = 11;
    info.pod = -1;
    return true;
  }
  if (name.size() > 1 && name[0] == 'c' && std::isdigit(name[1])) {
    // DCN names: c<cluster>p<pod>-<kind><i> or c<cluster>-<kind><i>.
    info.pod = std::stoi(name.substr(1));
    if (name.find("-tor") != std::string::npos) {
      info.role = topo::Role::kEdge;
      info.layer = 0;
    } else if (name.find("-leaf") != std::string::npos) {
      info.role = topo::Role::kAggregation;
      info.layer = 1;
    } else if (name.find("-pspine") != std::string::npos) {
      info.role = topo::Role::kAggregation;
      info.layer = 2;
    } else if (name.find("-fabric") != std::string::npos) {
      info.role = topo::Role::kAggregation;
      info.layer = 3;
    } else if (name.find("-spine") != std::string::npos) {
      info.role = topo::Role::kCore;
      info.layer = 4;
    } else {
      return false;
    }
    return true;
  }
  return false;
}

}  // namespace

util::Result<ViConfig> ParseConfig(const std::string& text) {
  // Dialect sniffing: Beta configs are entirely "set ..." lines.
  for (const std::string& line : SplitLines(text)) {
    std::string trimmed = util::Trim(line);
    if (trimmed.empty()) continue;
    return StartsWith(trimmed, "set ") ? ParseBeta(text) : ParseAlpha(text);
  }
  return util::Result<ViConfig>::Error("empty configuration");
}

topo::NodeId ParsedNetwork::FindByAddress(util::Ipv4Address address) const {
  auto it = address_book.find(address.bits());
  return it == address_book.end() ? topo::kInvalidNode : it->second.first;
}

ParsedNetwork ParseNetwork(const std::vector<std::string>& texts) {
  ParsedNetwork net;
  net.configs.reserve(texts.size());
  for (const std::string& text : texts) {
    auto parsed = ParseConfig(text);
    if (!parsed.ok()) std::abort();
    net.configs.push_back(std::move(parsed).value());
  }
  ReindexParsedNetwork(net);
  return net;
}

void ReindexParsedNetwork(ParsedNetwork& net) {
  net.graph = topo::Graph();
  net.address_book.clear();

  // Nodes + address book.
  for (topo::NodeId id = 0; id < net.configs.size(); ++id) {
    const ViConfig& config = net.configs[id];
    topo::NodeInfo info;
    info.name = config.hostname;
    InferRoleFromName(config.hostname, info);
    net.graph.AddNode(info);
    for (const Interface& iface : config.interfaces) {
      net.address_book[iface.address.bits()] = {id, iface.name};
    }
  }

  // L3 adjacency: both ends of each /31 present -> edge. Deduplicate by
  // visiting only the even (lower) address of each pair.
  for (topo::NodeId id = 0; id < net.configs.size(); ++id) {
    for (const Interface& iface : net.configs[id].interfaces) {
      if (iface.prefix_length != 31 || (iface.address.bits() & 1) != 0) {
        continue;
      }
      auto other = net.address_book.find(iface.address.bits() | 1);
      if (other != net.address_book.end()) {
        net.graph.AddEdge(id, other->second.first);
      }
    }
  }

  // Load estimation (§4.1): FatTree gets the k^3 role estimates, other
  // networks uniform loads.
  int max_pod = -1;
  bool fattree = !net.configs.empty();
  for (topo::NodeId id = 0; id < net.graph.size(); ++id) {
    const std::string& name = net.graph.node(id).name;
    if (!(StartsWith(name, "edge-") || StartsWith(name, "agg-") ||
          StartsWith(name, "core-"))) {
      fattree = false;
      break;
    }
    max_pod = std::max(max_pod, net.graph.node(id).pod);
  }
  if (fattree && max_pod >= 0) {
    double k = max_pod + 1;
    for (topo::NodeId id = 0; id < net.graph.size(); ++id) {
      topo::NodeInfo& info = net.graph.node(id);
      info.load = info.role == topo::Role::kEdge ? k * k * k / 4.0
                                                 : k * k * k / 2.0;
    }
  }
}

}  // namespace s2::config
