
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cp/bgp.cc" "src/CMakeFiles/s2_cp.dir/cp/bgp.cc.o" "gcc" "src/CMakeFiles/s2_cp.dir/cp/bgp.cc.o.d"
  "/root/repo/src/cp/engine.cc" "src/CMakeFiles/s2_cp.dir/cp/engine.cc.o" "gcc" "src/CMakeFiles/s2_cp.dir/cp/engine.cc.o.d"
  "/root/repo/src/cp/node.cc" "src/CMakeFiles/s2_cp.dir/cp/node.cc.o" "gcc" "src/CMakeFiles/s2_cp.dir/cp/node.cc.o.d"
  "/root/repo/src/cp/ospf.cc" "src/CMakeFiles/s2_cp.dir/cp/ospf.cc.o" "gcc" "src/CMakeFiles/s2_cp.dir/cp/ospf.cc.o.d"
  "/root/repo/src/cp/policy.cc" "src/CMakeFiles/s2_cp.dir/cp/policy.cc.o" "gcc" "src/CMakeFiles/s2_cp.dir/cp/policy.cc.o.d"
  "/root/repo/src/cp/rib.cc" "src/CMakeFiles/s2_cp.dir/cp/rib.cc.o" "gcc" "src/CMakeFiles/s2_cp.dir/cp/rib.cc.o.d"
  "/root/repo/src/cp/route.cc" "src/CMakeFiles/s2_cp.dir/cp/route.cc.o" "gcc" "src/CMakeFiles/s2_cp.dir/cp/route.cc.o.d"
  "/root/repo/src/cp/shard.cc" "src/CMakeFiles/s2_cp.dir/cp/shard.cc.o" "gcc" "src/CMakeFiles/s2_cp.dir/cp/shard.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s2_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s2_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s2_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
