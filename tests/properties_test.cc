// Property checking tests (§4.4): all five query types evaluated over
// engineered final-packet sets and over real forwarding runs.
#include <gtest/gtest.h>

#include "cp/engine.h"
#include "dp/forwarding.h"
#include "topo/fattree.h"
#include "dp/properties.h"
#include "test_networks.h"

namespace s2::dp {
namespace {

struct Fixture {
  config::ParsedNetwork net;
  std::unique_ptr<bdd::Manager> manager;
  std::unique_ptr<PacketCodec> codec;
  std::unique_ptr<ForwardingEngine> engine;

  explicit Fixture(const topo::Network& network, uint32_t meta_bits = 0) {
    net = testing::Parse(network);
    cp::MonoEngine cp_engine(net, nullptr);
    cp_engine.Run(nullptr, nullptr);
    manager = std::make_unique<bdd::Manager>(32 + meta_bits);
    codec = std::make_unique<PacketCodec>(manager.get(),
                                          HeaderLayout{32, 0, meta_bits});
    engine = std::make_unique<ForwardingEngine>(
        *codec, ForwardingEngine::Options{});
    for (const auto& node : cp_engine.nodes()) {
      Fib fib = Fib::Build(net, node->id(), node->bgp_routes(),
                           node->ospf_routes(), nullptr);
      engine->AddNode(node->id(),
                      BuildPredicates(net, node->id(), fib, *codec));
    }
  }

  QueryResult RunQuery(const Query& query) {
    engine->ResetQueryState();
    engine->set_record_paths(query.record_paths);
    for (size_t i = 0; i < query.transits.size(); ++i) {
      engine->SetWaypointBit(query.transits[i], static_cast<uint32_t>(i));
    }
    bdd::Bdd header_space = query.header_space.ToBdd(*codec);
    for (topo::NodeId src : query.sources) {
      engine->Inject(src, header_space);
    }
    engine->Run(nullptr);
    return EvaluateQuery(query, *codec, engine->finals(), net);
  }
};

TEST(PropertiesTest, ReachabilityAllPairsOnDiamond) {
  Fixture fx(testing::MakeDiamond());
  Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  query.sources = {0, 1, 2, 3};
  query.destinations = {0, 1, 2, 3};
  QueryResult result = fx.RunQuery(query);
  EXPECT_EQ(result.reachable_pairs, 12u);  // 4x3 ordered pairs
  EXPECT_EQ(result.unreachable_pairs, 0u);
  for (const ReachabilityPair& pair : result.reachability) {
    EXPECT_TRUE(pair.reachable);
    EXPECT_DOUBLE_EQ(pair.fraction, 1.0);
  }
  EXPECT_TRUE(result.loop_free);
  EXPECT_TRUE(result.multipath_violations.empty());
}

TEST(PropertiesTest, UnreachableWhenRouteMissing) {
  topo::Network net = testing::MakeChain(3);
  // r1 denies r2's prefix on export toward r0.
  net.intents[1].interfaces[0].export_policy.permit_only_communities = {
      424242};  // nothing carries this community -> deny everything
  Fixture fx(net);
  Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  query.sources = {0};
  query.destinations = {2};
  QueryResult result = fx.RunQuery(query);
  ASSERT_EQ(result.reachability.size(), 1u);
  EXPECT_FALSE(result.reachability[0].reachable);
  EXPECT_EQ(result.unreachable_pairs, 1u);
}

TEST(PropertiesTest, PartialReachabilityFraction) {
  topo::Network net = testing::MakeChain(2);
  // r1 announces two /24s; filter one of them at export.
  net.intents[1].announced.push_back(
      util::MustParsePrefix("10.0.77.0/24"));
  net.intents[1].interfaces[0].export_policy.deny_export_communities = {
      555};
  net.intents[1].interfaces[0].export_policy.tag_matching.push_back(
      {util::MustParsePrefix("10.0.77.0/24"), 555});
  Fixture fx(net);
  // The deny runs before the tagging clause in the compiled route map, so
  // tag-then-deny doesn't fire... instead verify through reachability of
  // both prefixes: if 10.0.77.0/24 still flows, fraction is 1.
  Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  query.sources = {0};
  query.destinations = {1};
  QueryResult result = fx.RunQuery(query);
  ASSERT_EQ(result.reachability.size(), 1u);
  EXPECT_GT(result.reachability[0].fraction, 0.0);
}

TEST(PropertiesTest, WaypointHoldsOnChain) {
  Fixture fx(testing::MakeChain(3), /*meta_bits=*/1);
  Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.2.0/24");
  query.sources = {0};
  query.destinations = {2};
  query.transits = {1};  // every r0->r2 packet passes r1
  QueryResult result = fx.RunQuery(query);
  ASSERT_EQ(result.waypoints.size(), 1u);
  EXPECT_TRUE(result.waypoints[0].always_traversed);
}

TEST(PropertiesTest, WaypointViolatedWhenBypassed) {
  Fixture fx(testing::MakeDiamond(), /*meta_bits=*/1);
  Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.3.0/24");
  query.sources = {0};
  query.destinations = {3};
  query.transits = {1};  // the r0->r2->r3 path bypasses r1
  QueryResult result = fx.RunQuery(query);
  ASSERT_EQ(result.waypoints.size(), 1u);
  EXPECT_FALSE(result.waypoints[0].always_traversed);
}

TEST(PropertiesTest, BlackholeDetected) {
  topo::Network net = testing::MakeChain(2);
  net.intents[1].interfaces[0].acl_in.push_back(topo::AclRuleIntent{
      false, std::nullopt, util::MustParsePrefix("10.0.1.0/24")});
  Fixture fx(net);
  Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.1.0/24");
  query.sources = {0};
  query.destinations = {1};
  QueryResult result = fx.RunQuery(query);
  EXPECT_FALSE(result.blackhole_free);
  EXPECT_GT(result.blackhole_finals, 0u);
  EXPECT_EQ(result.unreachable_pairs, 1u);
}

TEST(PropertiesTest, MultipathConsistencyViolation) {
  // Construct finals by hand: from src 0, overlapping sets with different
  // final states.
  auto net = testing::Parse(testing::MakeChain(2));
  bdd::Manager manager(32);
  PacketCodec codec(&manager, HeaderLayout{32, 0, 0});
  std::vector<FinalPacket> finals;
  bdd::Bdd space = codec.DstIn(util::MustParsePrefix("10.0.1.0/24"));
  finals.push_back(FinalPacket{0, 1, FinalState::kArrive, space, {}});
  finals.push_back(FinalPacket{0, 1, FinalState::kLoop, space, {}});
  Query query;
  query.sources = {0};
  query.destinations = {1};
  QueryResult result =
      EvaluateQuery(query, codec, finals, net);
  ASSERT_EQ(result.multipath_violations.size(), 1u);
  EXPECT_EQ(result.multipath_violations[0].src, 0u);
  EXPECT_FALSE(result.loop_free);
}

TEST(PropertiesTest, DisjointStatesAreConsistent) {
  auto net = testing::Parse(testing::MakeChain(2));
  bdd::Manager manager(32);
  PacketCodec codec(&manager, HeaderLayout{32, 0, 0});
  std::vector<FinalPacket> finals;
  finals.push_back(FinalPacket{
      0, 1, FinalState::kArrive,
      codec.DstIn(util::MustParsePrefix("10.0.1.0/24")), {}});
  finals.push_back(FinalPacket{
      0, 0, FinalState::kBlackhole,
      codec.DstIn(util::MustParsePrefix("192.168.0.0/16")), {}});
  Query query;
  query.sources = {0};
  query.destinations = {1};
  QueryResult result = EvaluateQuery(query, codec, finals, net);
  EXPECT_TRUE(result.multipath_violations.empty());
}

TEST(PropertiesTest, MetaBitsIgnoredWhenComparingStates) {
  // Same header content, different waypoint bits, different states: still
  // a violation (meta bits are bookkeeping, not header space).
  auto net = testing::Parse(testing::MakeChain(2));
  bdd::Manager manager(33);
  PacketCodec codec(&manager, HeaderLayout{32, 0, 1});
  bdd::Bdd space = codec.DstIn(util::MustParsePrefix("10.0.1.0/24"));
  std::vector<FinalPacket> finals;
  finals.push_back(FinalPacket{0, 1, FinalState::kArrive,
                               space & codec.MetaBit(0, true), {}});
  finals.push_back(FinalPacket{0, 1, FinalState::kBlackhole,
                               space & codec.MetaBit(0, false), {}});
  Query query;
  query.sources = {0};
  query.destinations = {1};
  QueryResult result = EvaluateQuery(query, codec, finals, net);
  EXPECT_EQ(result.multipath_violations.size(), 1u);
}

TEST(ValleyTest, DetectorFindsDownThenUp) {
  topo::Graph graph;
  auto add = [&](int layer) {
    return graph.AddNode(topo::NodeInfo{"n", topo::Role::kEdge, layer, -1,
                                        1.0});
  };
  topo::NodeId e0 = add(0), a0 = add(1), e1 = add(0), a1 = add(1),
               c = add(2), a2 = add(1), e2 = add(0);
  // Up-then-down (valid Clos): e0 a0 c a2 e2.
  EXPECT_FALSE(IsForwardingValley({e0, a0, c, a2, e2}, graph));
  // The Fig 11 valley: e0 a0 e1 a1 c ... — down to an edge, then up again.
  EXPECT_TRUE(IsForwardingValley({e0, a0, e1, a1, c}, graph));
  // Pure descent is fine.
  EXPECT_FALSE(IsForwardingValley({c, a0, e0}, graph));
  // Flat / trivial paths are fine.
  EXPECT_FALSE(IsForwardingValley({e0}, graph));
  EXPECT_FALSE(IsForwardingValley({}, graph));
}

TEST(ValleyTest, RecordedPathsSurfaceAMisconfiguredValley) {
  // Craft the valley: edge-0-0 prefers agg-0-0 for everything; agg-0-0
  // prefers routes re-advertised by edge-0-1; edge-0-1 prefers agg-0-1.
  // Cross-pod traffic from edge-0-0 then flows
  // edge-0-0 → agg-0-0 → edge-0-1 → agg-0-1 → core → … (down-then-up).
  topo::FatTreeParams params;
  params.k = 4;
  topo::Network net = topo::MakeFatTree(params);
  auto prefer = [&](const char* node, const char* peer, uint32_t pref) {
    topo::NodeId id = net.graph.FindByName(node);
    topo::NodeId peer_id = net.graph.FindByName(peer);
    for (topo::InterfaceIntent& iface : net.intents[id].interfaces) {
      if (iface.peer == peer_id) iface.import_local_pref = pref;
    }
  };
  prefer("edge-0-0", "agg-0-0", 300);
  prefer("agg-0-0", "edge-0-1", 300);
  prefer("edge-0-1", "agg-0-1", 110);

  Fixture fx(net);  // rebuilds from net including the policies
  Query query;
  query.header_space.dst = util::MustParsePrefix("10.1.0.0/24");
  query.sources = {net.graph.FindByName("edge-0-0")};
  query.destinations = {net.graph.FindByName("edge-1-0")};
  query.record_paths = true;
  QueryResult result = fx.RunQuery(query);
  EXPECT_GT(result.paths_recorded, 0u);
  ASSERT_FALSE(result.valleys.empty());
  // The valley path dips through edge-0-1.
  topo::NodeId dip = net.graph.FindByName("edge-0-1");
  bool dips = false;
  for (const ForwardingValley& valley : result.valleys) {
    for (topo::NodeId node : valley.path) dips = dips || node == dip;
  }
  EXPECT_TRUE(dips);
  // Reachability still holds — valleys waste capacity, they don't drop.
  EXPECT_EQ(result.unreachable_pairs, 0u);
}

TEST(ValleyTest, CleanFatTreeHasNoValleys) {
  topo::FatTreeParams params;
  params.k = 4;
  topo::Network net = topo::MakeFatTree(params);
  Fixture fx(net);
  Query query;
  query.header_space.dst = util::MustParsePrefix("10.1.0.0/24");
  query.sources = {net.graph.FindByName("edge-0-0")};
  query.destinations = {net.graph.FindByName("edge-1-0")};
  query.record_paths = true;
  QueryResult result = fx.RunQuery(query);
  EXPECT_GT(result.paths_recorded, 1u);  // ECMP: several concrete paths
  EXPECT_TRUE(result.valleys.empty());
}

TEST(PropertiesTest, LoopFinalFlagsLoopFreeViolation) {
  auto net = testing::Parse(testing::MakeChain(2));
  bdd::Manager manager(32);
  PacketCodec codec(&manager, HeaderLayout{32, 0, 0});
  std::vector<FinalPacket> finals;
  finals.push_back(FinalPacket{
      0, 1, FinalState::kLoop,
      codec.DstIn(util::MustParsePrefix("10.0.1.0/24")), {}});
  Query query;
  query.sources = {0};
  QueryResult result = EvaluateQuery(query, codec, finals, net);
  EXPECT_FALSE(result.loop_free);
  EXPECT_EQ(result.loop_finals, 1u);
}

}  // namespace
}  // namespace s2::dp
