// Sidecars (paper §3.2): the communication fabric between workers.
//
// Each worker (and the controller) owns a sidecar; every sidecar holds the
// node->worker assignment so a message addressed to a node is routed to
// the worker hosting it. This in-process stand-in for the paper's
// RPC-connected sidecar processes keeps the observable contract: messages
// are serialized bytes, queues are drained at phase boundaries, and
// per-worker sent/received byte counters feed the cost model
// (DESIGN.md substitution S3).
#pragma once

#include <mutex>
#include <vector>

#include "dist/message.h"

namespace s2::dist {

class SidecarFabric {
 public:
  // `assignment[node]` = worker index hosting that node.
  SidecarFabric(uint32_t num_workers, std::vector<uint32_t> assignment);

  uint32_t num_workers() const { return num_workers_; }
  uint32_t WorkerOf(topo::NodeId node) const { return assignment_[node]; }

  // Routes `message` to the sidecar of the worker hosting its to_node.
  // Thread-safe: workers send concurrently during parallel phases.
  void Send(uint32_t from_worker, Message message);

  // Drains the inbound queue of `worker`.
  std::vector<Message> Drain(uint32_t worker);

  // True if any queue holds undelivered messages.
  bool HasPending() const;

  size_t bytes_sent_by(uint32_t worker) const;
  size_t messages_sent_by(uint32_t worker) const;
  size_t total_bytes() const;

  // Resets the per-worker counters (between phases/experiments).
  void ResetCounters();

 private:
  uint32_t num_workers_;
  std::vector<uint32_t> assignment_;
  mutable std::mutex mutex_;
  std::vector<std::vector<Message>> queues_;       // per receiving worker
  std::vector<size_t> bytes_sent_;                 // per sending worker
  std::vector<size_t> messages_sent_;
};

}  // namespace s2::dist
