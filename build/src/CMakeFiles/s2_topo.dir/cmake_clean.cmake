file(REMOVE_RECURSE
  "CMakeFiles/s2_topo.dir/topo/dcn.cc.o"
  "CMakeFiles/s2_topo.dir/topo/dcn.cc.o.d"
  "CMakeFiles/s2_topo.dir/topo/fattree.cc.o"
  "CMakeFiles/s2_topo.dir/topo/fattree.cc.o.d"
  "CMakeFiles/s2_topo.dir/topo/graph.cc.o"
  "CMakeFiles/s2_topo.dir/topo/graph.cc.o.d"
  "CMakeFiles/s2_topo.dir/topo/partition.cc.o"
  "CMakeFiles/s2_topo.dir/topo/partition.cc.o.d"
  "libs2_topo.a"
  "libs2_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
