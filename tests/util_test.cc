// Unit tests for the util layer: addresses/prefixes, memory accounting,
// strings, deterministic randomness, the thread pool, and the cost model.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "util/cost_model.h"
#include "util/ip.h"
#include "util/memory_tracker.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace s2::util {
namespace {

// ------------------------------------------------------------------- IP

TEST(Ipv4AddressTest, ParsesAndFormats) {
  auto addr = Ipv4Address::Parse("10.1.2.3");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->bits(), 0x0A010203u);
  EXPECT_EQ(addr->ToString(), "10.1.2.3");
}

TEST(Ipv4AddressTest, RejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::Parse("10.1.2"));
  EXPECT_FALSE(Ipv4Address::Parse("10.1.2.256"));
  EXPECT_FALSE(Ipv4Address::Parse("10.1.2.3.4"));
  EXPECT_FALSE(Ipv4Address::Parse("banana"));
  EXPECT_FALSE(Ipv4Address::Parse(""));
}

// Regression: the old sscanf("%u")-based parser accepted whitespace,
// signs, and values that wrap past UINT_MAX. Only canonical dotted quads
// may parse.
TEST(Ipv4AddressTest, RejectsNonCanonicalForms) {
  EXPECT_FALSE(Ipv4Address::Parse(" 1.2.3.4"));     // leading whitespace
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4 "));     // trailing whitespace
  EXPECT_FALSE(Ipv4Address::Parse("1. 2.3.4"));     // inner whitespace
  EXPECT_FALSE(Ipv4Address::Parse("+1.2.3.4"));     // sign
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.-4"));     // sign
  EXPECT_FALSE(Ipv4Address::Parse("01.2.3.4"));     // leading zero (octal?)
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.00"));     // leading zero
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4294967299"));  // wraps to 3
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.0x4"));    // hex
  EXPECT_FALSE(Ipv4Address::Parse("1..2.3"));       // empty octet
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3."));       // trailing dot
  EXPECT_FALSE(Ipv4Address::Parse(".1.2.3.4"));     // leading dot
  EXPECT_TRUE(Ipv4Address::Parse("0.0.0.0"));       // bare zero octets ok
  EXPECT_TRUE(Ipv4Address::Parse("255.255.255.255"));
}

TEST(Ipv4AddressTest, Ordering) {
  EXPECT_LT(MustParseAddress("10.0.0.1"), MustParseAddress("10.0.0.2"));
  EXPECT_LT(MustParseAddress("9.255.255.255"), MustParseAddress("10.0.0.0"));
}

TEST(Ipv4PrefixTest, ParsesAndCanonicalizes) {
  auto prefix = Ipv4Prefix::Parse("10.1.2.3/24");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->address().ToString(), "10.1.2.0");  // host bits cleared
  EXPECT_EQ(prefix->length(), 24);
  EXPECT_EQ(prefix->ToString(), "10.1.2.0/24");
}

TEST(Ipv4PrefixTest, RejectsMalformed) {
  EXPECT_FALSE(Ipv4Prefix::Parse("10.1.2.0"));
  EXPECT_FALSE(Ipv4Prefix::Parse("10.1.2.0/33"));
  EXPECT_FALSE(Ipv4Prefix::Parse("10.1.2.0/-1"));
  EXPECT_FALSE(Ipv4Prefix::Parse("10.1.2.0/2x"));
}

// Regression: the old strtol-based length parser accepted "/ 8" and "/+8".
TEST(Ipv4PrefixTest, RejectsNonCanonicalLengths) {
  EXPECT_FALSE(Ipv4Prefix::Parse("1.2.3.4/ 8"));
  EXPECT_FALSE(Ipv4Prefix::Parse("1.2.3.4/+8"));
  EXPECT_FALSE(Ipv4Prefix::Parse("1.2.3.4/08"));   // leading zero
  EXPECT_FALSE(Ipv4Prefix::Parse("1.2.3.4/8 "));   // trailing whitespace
  EXPECT_FALSE(Ipv4Prefix::Parse("1.2.3.4/"));     // empty length
  EXPECT_FALSE(Ipv4Prefix::Parse("1.2.3.4/832"));  // too many digits
  EXPECT_TRUE(Ipv4Prefix::Parse("1.2.3.4/0"));     // bare zero ok
  EXPECT_TRUE(Ipv4Prefix::Parse("1.2.3.4/32"));
}

TEST(Ipv4PrefixTest, Masks) {
  EXPECT_EQ(MustParsePrefix("0.0.0.0/0").Mask(), 0u);
  EXPECT_EQ(MustParsePrefix("10.0.0.0/8").Mask(), 0xFF000000u);
  EXPECT_EQ(MustParsePrefix("1.2.3.4/32").Mask(), 0xFFFFFFFFu);
}

TEST(Ipv4PrefixTest, ContainsAddress) {
  auto p = MustParsePrefix("10.1.0.0/16");
  EXPECT_TRUE(p.Contains(MustParseAddress("10.1.2.3")));
  EXPECT_TRUE(p.Contains(MustParseAddress("10.1.255.255")));
  EXPECT_FALSE(p.Contains(MustParseAddress("10.2.0.0")));
}

TEST(Ipv4PrefixTest, ContainsPrefix) {
  auto p16 = MustParsePrefix("10.1.0.0/16");
  EXPECT_TRUE(p16.Contains(MustParsePrefix("10.1.2.0/24")));
  EXPECT_TRUE(p16.Contains(p16));  // reflexive
  EXPECT_FALSE(p16.Contains(MustParsePrefix("10.0.0.0/8")));  // coarser
  EXPECT_FALSE(p16.Contains(MustParsePrefix("10.2.0.0/24")));
  EXPECT_TRUE(MustParsePrefix("0.0.0.0/0").Contains(p16));
}

// Property sweep: canonicalization is idempotent and Contains is
// consistent with mask arithmetic over assorted lengths.
class PrefixLengthTest : public ::testing::TestWithParam<int> {};

TEST_P(PrefixLengthTest, CanonicalAndSelfContaining) {
  uint8_t len = static_cast<uint8_t>(GetParam());
  Ipv4Prefix p(MustParseAddress("172.31.93.201"), len);
  Ipv4Prefix again(p.address(), len);
  EXPECT_EQ(p, again);
  EXPECT_TRUE(p.Contains(p.address()));
  EXPECT_EQ(p.address().bits() & ~p.Mask(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllLengths, PrefixLengthTest,
                         ::testing::Values(0, 1, 7, 8, 15, 16, 23, 24, 31,
                                           32));

// --------------------------------------------------------------- strings

TEST(StringUtilTest, SplitTokens) {
  EXPECT_EQ(SplitTokens("a b  c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitTokens("  a\tb "), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(SplitTokens("").empty());
  EXPECT_TRUE(SplitTokens("   ").empty());
}

TEST(StringUtilTest, SplitLines) {
  EXPECT_EQ(SplitLines("a\nb\n\nc"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitLines("one"), (std::vector<std::string>{"one"}));
}

TEST(StringUtilTest, TrimAndStartsWith) {
  EXPECT_EQ(Trim("  x y \r\n"), "x y");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_TRUE(StartsWith("route-map X", "route-map"));
  EXPECT_FALSE(StartsWith("rm", "route-map"));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

// ------------------------------------------------------- memory tracking

TEST(MemoryTrackerTest, ChargesAndReleases) {
  MemoryTracker tracker("t");
  tracker.Charge(100);
  tracker.Charge(50);
  EXPECT_EQ(tracker.live_bytes(), 150u);
  EXPECT_EQ(tracker.peak_bytes(), 150u);
  tracker.Release(120);
  EXPECT_EQ(tracker.live_bytes(), 30u);
  EXPECT_EQ(tracker.peak_bytes(), 150u);  // peak sticks
}

#ifdef NDEBUG
// Over-release clamps (so estimate asymmetries can't wedge a run) but is
// counted as an accounting bug. Debug builds assert instead, so this
// exercises release-build behaviour only.
TEST(MemoryTrackerTest, ReleaseClampsToZeroAndCountsUnderflow) {
  MemoryTracker tracker("t");
  tracker.Charge(10);
  tracker.Release(100);
  EXPECT_EQ(tracker.live_bytes(), 0u);
  EXPECT_EQ(tracker.underflow_count(), 1u);
  tracker.Charge(5);
  tracker.Release(5);
  EXPECT_EQ(tracker.underflow_count(), 1u);  // balanced pairs don't count
}
#endif

// Regression: Charge used fetch_add-then-rollback, publishing a transient
// over-budget live_ value. A concurrent thread whose own (small) charge
// fit comfortably could observe the inflated total and throw a spurious
// SimulatedOom. With CAS reservation, live_ never exceeds the budget, so
// the small charger below must never throw no matter how the doomed big
// charges interleave.
TEST(MemoryTrackerTest, DoomedChargeCannotCauseSpuriousOomElsewhere) {
  MemoryTracker tracker("t", 1000);
  tracker.Charge(500);
  std::atomic<bool> stop{false};
  std::atomic<int> dooms{0};
  std::thread big([&] {
    while (!stop.load()) {
      try {
        tracker.Charge(600);  // always over budget: 500 + 600 > 1000
        FAIL() << "over-budget charge unexpectedly succeeded";
      } catch (const SimulatedOom&) {
        dooms.fetch_add(1);
      }
    }
  });
  // Keep the contention loop alive until the big thread has observed at
  // least one doomed charge — on a single core the fixed iteration count
  // alone can finish before the other thread is ever scheduled.
  for (int i = 0; i < 100000 || dooms.load() == 0; ++i) {
    tracker.Charge(100);  // 500 + 100 <= 1000: must always fit
    tracker.Release(100);
  }
  stop.store(true);
  big.join();
  EXPECT_GT(dooms.load(), 0);
  EXPECT_EQ(tracker.live_bytes(), 500u);
  EXPECT_EQ(tracker.underflow_count(), 0u);
}

TEST(MemoryTrackerTest, BudgetEnforcedWithSimulatedOom) {
  MemoryTracker tracker("worker-3", 1000);
  tracker.Charge(900);
  EXPECT_THROW(tracker.Charge(200), SimulatedOom);
  // The failed charge must not leak into the live count.
  EXPECT_EQ(tracker.live_bytes(), 900u);
  try {
    tracker.Charge(200);
    FAIL();
  } catch (const SimulatedOom& oom) {
    EXPECT_EQ(oom.domain(), "worker-3");
  }
}

TEST(MemoryTrackerTest, PressureAndReleaseAll) {
  MemoryTracker tracker("t", 1000);
  tracker.Charge(700);
  EXPECT_DOUBLE_EQ(tracker.pressure(), 0.7);
  tracker.ReleaseAll();
  EXPECT_EQ(tracker.live_bytes(), 0u);
  EXPECT_EQ(tracker.peak_bytes(), 700u);
  MemoryTracker unlimited("u");
  unlimited.Charge(1 << 20);
  EXPECT_DOUBLE_EQ(unlimited.pressure(), 0.0);
}

// ------------------------------------------------------------ cost model

TEST(CostModelTest, GcPenaltyKicksInPastThreshold) {
  CostModelParams params;
  params.gc_pressure_threshold = 0.5;
  params.gc_seconds_per_gb = 2.0;
  MemoryTracker cold("c", 1000);
  cold.Charge(400);
  EXPECT_DOUBLE_EQ(GcPenaltySeconds(cold, params), 0.0);
  MemoryTracker hot("h", 1'000'000'000);
  hot.Charge(600'000'000);
  EXPECT_NEAR(GcPenaltySeconds(hot, params), 1.2, 1e-9);
}

// ------------------------------------------------------------------- rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, BelowStaysBelow) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(17), 17u);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(v);
  EXPECT_EQ(std::set<int>(v.begin(), v.end()),
            std::set<int>(original.begin(), original.end()));
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    int64_t x = rng.Between(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
  }
}

// ----------------------------------------------------------- thread pool

TEST(ThreadPoolTest, RunsAllIterations) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  pool.ParallelFor(100, [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(8,
                                [&](size_t i) {
                                  if (i == 3) {
                                    throw SimulatedTimeout("boom");
                                  }
                                }),
               SimulatedTimeout);
}

TEST(ThreadPoolTest, SubmitFutureResolves) {
  ThreadPool pool(1);
  std::atomic<bool> ran{false};
  pool.Submit([&] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace s2::util
