// Figure 8: time and peak memory to simulate growing FatTrees with prefix
// sharding on vs off (S2, 16 workers, per-worker budget).
//
// Paper shape to reproduce: below the memory wall, sharding trades a
// little time for a lower peak; at the largest size, only the sharded
// configuration finishes — the unsharded one OOMs.
#include "bench_util.h"

using namespace s2;
using namespace s2::bench;

int main(int argc, char** argv) {
  ObsOptions obs = ParseObsFlags(argc, argv);
  std::printf("=== Figure 8: sharding on/off across FatTree sizes "
              "(s2-16w, budget %s) ===\n\n",
              core::HumanBytes(kWorkerBudget).c_str());
  // Tighter budget than Figure 5: Figure 8 isolates control-plane
  // simulation, whose unsharded peak must cross the wall at k=12.
  const size_t budget = 4u << 20;
  std::printf("control-plane only, per-worker budget %s\n\n",
              core::HumanBytes(budget).c_str());
  std::printf("%-22s %9s %14s %12s\n", "configuration", "status",
              "modeled-time", "peak-mem");
  for (int k : {6, 8, 10, 12}) {
    BuiltNetwork built = BuildFatTree(k);
    for (int shards : {0, kShards}) {
      dist::ControllerOptions options = S2Options(16, shards);
      options.worker_memory_budget = budget;
      core::S2Verifier verifier(options);
      // Control-plane simulation only (Figure 8 is a simulation figure).
      verifier.skip_data_plane_without_queries = true;
      core::VerifyResult result = verifier.Verify(built.parsed, {});
      CaptureReport(obs, verifier, result);
      std::string label = std::string(PaperSize(k)) +
                          (shards ? " sharded" : " unsharded");
      std::printf("%-22s %9s %14s %12s\n", label.c_str(),
                  core::RunStatusName(result.status),
                  result.ok() ? core::HumanSeconds(
                                    result.TotalModeledSeconds())
                                    .c_str()
                              : "-",
                  core::HumanBytes(result.peak_memory_bytes).c_str());
    }
  }
  std::printf(
      "\nexpected shape: sharding lowers the peak everywhere; at the\n"
      "largest size only the sharded run finishes.\n");
  FinishObs(obs);
  return 0;
}
