// Figure 10: distributed data plane verification — time to check all-pair
// and single-pair reachability with Batfish vs S2, split into the
// predicate-computation phase and the forwarding/checking phase.
//
// Paper shape to reproduce: S2 is faster in both phases; the predicate
// phase parallelizes best (up to ~#workers); the speedup grows with
// FatTree size; even single-pair checking benefits because the packet
// fans out across all workers (Fig 11 discussion).
#include "bench_util.h"
#include "query_service_bench.h"

using namespace s2;
using namespace s2::bench;

namespace {

ObsOptions g_obs;

dp::Query SinglePair(const config::ParsedNetwork& parsed) {
  // Two edge switches in different pods (the paper's E6 -> E19 pattern).
  dp::Query query;
  topo::NodeId src = parsed.graph.FindByName("edge-0-0");
  topo::NodeId dst = parsed.graph.FindByName("edge-1-0");
  query.sources = {src};
  query.destinations = {dst};
  query.header_space.dst = util::MustParsePrefix("10.1.0.0/24");
  return query;
}

struct Phases {
  const char* status;
  double predicates;
  double forwarding;
};

Phases RunMono(const config::ParsedNetwork& parsed, const dp::Query& query) {
  core::MonoOptions options;
  options.cost = BenchCost();
  core::MonoVerifier mono(options);
  core::VerifyResult result = mono.Verify(parsed, {query});
  return {core::RunStatusName(result.status),
          result.dp_build.modeled_seconds,
          result.dp_forward.modeled_seconds};
}

Phases RunS2(const config::ParsedNetwork& parsed, const dp::Query& query,
             uint32_t workers) {
  dist::ControllerOptions options = S2Options(workers, kShards);
  options.worker_memory_budget = 0;
  core::S2Verifier verifier(options);
  core::VerifyResult result = verifier.Verify(parsed, {query});
  CaptureReport(g_obs, verifier, result);
  return {core::RunStatusName(result.status),
          result.dp_build.modeled_seconds,
          result.dp_forward.modeled_seconds};
}

// A compact fingerprint of a verdict, used to assert the parallel
// multi-query path agrees with the sequential per-query path.
std::string VerdictSummary(const dp::QueryResult& result) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "r%zu/u%zu/l%d(%zu)/b%d(%zu)",
                result.reachable_pairs, result.unreachable_pairs,
                result.loop_free ? 1 : 0, result.loop_finals,
                result.blackhole_free ? 1 : 0, result.blackhole_finals);
  return buf;
}

// Multi-query mode (EXPERIMENTS.md "dpv-parallel"): N independent
// single-pair queries over one FatTree, run through Dpo::RunQueries.
// Speedup is modeled (DESIGN.md §3 — this box has 1 core): per-query busy
// is thread-CPU time; sequential cost is the sum, parallel cost the LPT
// makespan over 8 query lanes. Exit status is nonzero if the modeled
// speedup falls below 1.5x or any parallel verdict disagrees with the
// sequential oracle.
int RunMultiQueryMode() {
  constexpr int kFatTreeK = 6;
  constexpr size_t kQueryLanes = 8;
  BuiltNetwork built = BuildFatTree(kFatTreeK);
  const config::ParsedNetwork& parsed = built.parsed;

  // ~16 single-pair queries across pod pairs and edge prefixes.
  std::vector<dp::Query> queries;
  for (int qi = 0; queries.size() < 16; ++qi) {
    int src_pod = qi % kFatTreeK;
    int dst_pod = (qi + 1 + qi / kFatTreeK) % kFatTreeK;
    if (src_pod == dst_pod) continue;
    char src_name[32], dst_name[32], prefix[32];
    std::snprintf(src_name, sizeof(src_name), "edge-%d-%d", src_pod,
                  qi % (kFatTreeK / 2));
    std::snprintf(dst_name, sizeof(dst_name), "edge-%d-%d", dst_pod,
                  (qi / 2) % (kFatTreeK / 2));
    std::snprintf(prefix, sizeof(prefix), "10.%d.%d.0/24", dst_pod,
                  (qi / 2) % (kFatTreeK / 2));
    dp::Query query;
    query.sources = {parsed.graph.FindByName(src_name)};
    query.destinations = {parsed.graph.FindByName(dst_name)};
    query.header_space.dst = util::MustParsePrefix(prefix);
    queries.push_back(std::move(query));
  }

  dist::ControllerOptions options = S2Options(8, kShards);
  options.worker_memory_budget = 0;
  options.query_lanes = kQueryLanes;
  dist::Controller controller(parsed, options);
  controller.Setup();
  controller.RunControlPlane();
  controller.BuildDataPlanes();

  // Sequential oracle first: the classic per-query fabric rounds.
  std::vector<std::string> seq_verdicts;
  for (const dp::Query& query : queries) {
    seq_verdicts.push_back(VerdictSummary(controller.RunQuery(query).result));
  }

  dist::Controller::MultiQueryOutcome multi = controller.RunQueries(queries);
  double seq_modeled = 0;
  bool verdicts_match = true;
  for (size_t q = 0; q < queries.size(); ++q) {
    seq_modeled += multi.outcomes[q].metrics.modeled_seconds;
    if (VerdictSummary(multi.outcomes[q].result) != seq_verdicts[q]) {
      verdicts_match = false;
      std::printf("VERDICT MISMATCH query %zu: seq %s vs par %s\n", q,
                  seq_verdicts[q].c_str(),
                  VerdictSummary(multi.outcomes[q].result).c_str());
    }
  }
  double par_modeled = multi.aggregate.modeled_seconds;
  double speedup = par_modeled > 0 ? seq_modeled / par_modeled : 0;

  std::printf("=== multi-query mode: %zu single-pair queries, k=%d, "
              "8 workers, %zu query lanes ===\n",
              queries.size(), kFatTreeK, kQueryLanes);
  std::printf("%-34s %s\n", "modeled sequential (sum busy):",
              core::HumanSeconds(seq_modeled).c_str());
  std::printf("%-34s %s\n", "modeled parallel (LPT makespan):",
              core::HumanSeconds(par_modeled).c_str());
  std::printf("%-34s %.2fx\n", "modeled speedup:", speedup);
  std::printf("%-34s hits=%zu misses=%zu evictions=%zu\n", "bdd op-cache:",
              multi.aggregate.bdd_cache_hits,
              multi.aggregate.bdd_cache_misses,
              multi.aggregate.bdd_cache_evictions);
  std::printf("%-34s %s\n",
              "verdicts vs sequential oracle:",
              verdicts_match ? "identical" : "MISMATCH");

  std::FILE* json = std::fopen("BENCH_dpv_parallel.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n"
        "  \"benchmark\": \"fig10_dpv_multi_query\",\n"
        "  \"topology\": \"fattree-k%d\",\n"
        "  \"workers\": 8,\n"
        "  \"query_lanes\": %zu,\n"
        "  \"queries\": %zu,\n"
        "  \"modeled_sequential_seconds\": %.6f,\n"
        "  \"modeled_parallel_seconds\": %.6f,\n"
        "  \"modeled_speedup\": %.3f,\n"
        "  \"bdd_cache_hits\": %zu,\n"
        "  \"bdd_cache_misses\": %zu,\n"
        "  \"bdd_cache_evictions\": %zu,\n"
        "  \"verdicts_match_sequential\": %s\n"
        "}\n",
        kFatTreeK, kQueryLanes, queries.size(), seq_modeled, par_modeled,
        speedup, multi.aggregate.bdd_cache_hits,
        multi.aggregate.bdd_cache_misses,
        multi.aggregate.bdd_cache_evictions,
        verdicts_match ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_dpv_parallel.json\n");
  }
  std::printf("\n");

  if (!verdicts_match) return 1;
  if (speedup < 1.5) {
    std::printf("FAIL: modeled speedup %.2fx < 1.5x\n", speedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --serve_queries=N: skip the figure sweep and run the serving-mode
  // benchmark instead (query_service_bench.h) — publish one snapshot of
  // the default DCN and answer N queries through the QueryService.
  std::optional<size_t> serve_queries;
  std::vector<char*> rest = {argv[0]};
  const std::string kServe = "--serve_queries=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.compare(0, kServe.size(), kServe) == 0) {
      serve_queries = static_cast<size_t>(
          std::stoull(arg.substr(kServe.size())));
    } else {
      rest.push_back(argv[i]);
    }
  }
  g_obs = ParseObsFlags(static_cast<int>(rest.size()), rest.data());
  if (serve_queries) {
    int rc = RunQueryServiceMode(*serve_queries);
    FinishObs(g_obs);
    return rc;
  }
  std::printf("=== Figure 10: DPV — all-pair and single-pair "
              "reachability ===\n\n");
  for (int k : {6, 8, 10}) {
    BuiltNetwork built = BuildFatTree(k);
    std::printf("--- k=%d (%s) ---\n", k, PaperSize(k));
    std::printf("%-26s %9s %14s %14s\n", "configuration", "status",
                "predicates", "fwd+check");
    struct Row {
      std::string label;
      Phases phases;
    };
    dp::Query all = AllPairQuery(built.parsed);
    dp::Query single = SinglePair(built.parsed);
    Row rows[] = {
        {"batfish all-pair", RunMono(built.parsed, all)},
        {"s2-8w   all-pair", RunS2(built.parsed, all, 8)},
        {"batfish single-pair", RunMono(built.parsed, single)},
        {"s2-8w   single-pair", RunS2(built.parsed, single, 8)},
    };
    for (const Row& row : rows) {
      std::printf("%-26s %9s %14s %14s\n", row.label.c_str(),
                  row.phases.status,
                  core::HumanSeconds(row.phases.predicates).c_str(),
                  core::HumanSeconds(row.phases.forwarding).c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape: s2 beats batfish in both phases; the predicate\n"
      "phase speedup approaches the worker count; the gap widens with k;\n"
      "single-pair checks also speed up (packets fan across workers).\n\n");
  int rc = RunMultiQueryMode();
  FinishObs(g_obs);
  return rc;
}
