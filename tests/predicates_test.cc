// Port predicate tests: the LPM-ordered partition of the destination
// space, ACL first-match predicates, and the Eq. 1 building blocks.
#include <gtest/gtest.h>

#include "cp/engine.h"
#include "dp/predicates.h"
#include "test_networks.h"

namespace s2::dp {
namespace {

using RouteMap = std::map<util::Ipv4Prefix, std::vector<cp::Route>>;

cp::Route Learned(const std::string& prefix, topo::NodeId from) {
  cp::Route r;
  r.prefix = util::MustParsePrefix(prefix);
  r.protocol = cp::Protocol::kBgp;
  r.learned_from = from;
  return r;
}

TEST(PredicatesTest, PartitionIsDisjointAndComplete) {
  auto net = testing::Parse(testing::MakeDiamond());
  cp::MonoEngine engine(net, nullptr);
  engine.Run(nullptr, nullptr);

  bdd::Manager manager(32);
  PacketCodec codec(&manager, HeaderLayout{32, 0, 0});
  Fib fib = Fib::Build(net, 0, engine.node(0).bgp_routes(),
                       engine.node(0).ospf_routes(), nullptr);
  NodePredicates preds = BuildPredicates(net, 0, fib, codec);

  // Forward/arrive/exit/discard partition the full destination space.
  bdd::Bdd all = preds.arrive | preds.exit | preds.discard;
  for (const auto& [hop, pred] : preds.forward) all |= pred;
  EXPECT_TRUE(all.IsOne());

  // Disjointness between classes (ECMP overlap *within* forward is fine).
  EXPECT_FALSE(preds.arrive.Intersects(preds.discard));
  EXPECT_FALSE(preds.arrive.Intersects(preds.exit));
  for (const auto& [hop, pred] : preds.forward) {
    EXPECT_FALSE(pred.Intersects(preds.arrive));
    EXPECT_FALSE(pred.Intersects(preds.discard));
  }
}

TEST(PredicatesTest, LpmGivesSpecificEntryPriority) {
  auto net = testing::Parse(testing::MakeChain(3));
  bdd::Manager manager(32);
  PacketCodec codec(&manager, HeaderLayout{32, 0, 0});
  // Hand-built FIB: /8 to neighbor 1, /24 carve-out to neighbor 2 — wait,
  // node 0's only neighbor is 1; use arrive for the carve-out instead.
  RouteMap bgp;
  bgp[util::MustParsePrefix("10.0.0.0/8")] = {Learned("10.0.0.0/8", 1)};
  net.configs[0].bgp.networks.push_back(
      util::MustParsePrefix("10.7.7.0/24"));
  bgp[util::MustParsePrefix("10.7.7.0/24")] = {[&] {
    cp::Route r = Learned("10.7.7.0/24", 0);
    r.protocol = cp::Protocol::kLocal;
    r.learned_from = topo::kInvalidNode;
    return r;
  }()};
  Fib fib = Fib::Build(net, 0, bgp, {}, nullptr);
  NodePredicates preds = BuildPredicates(net, 0, fib, codec);
  bdd::Bdd carved = codec.DstIn(util::MustParsePrefix("10.7.7.0/24"));
  // The carve-out arrives locally; the surrounding /8 forwards.
  EXPECT_TRUE(carved.Implies(preds.arrive));
  EXPECT_FALSE(preds.forward.at(1).Intersects(carved));
  EXPECT_TRUE(
      codec.DstIn(util::MustParsePrefix("10.9.0.0/16"))
          .Implies(preds.forward.at(1)));
}

TEST(PredicatesTest, UnroutedSpaceDiscards) {
  auto net = testing::Parse(testing::MakeChain(2));
  bdd::Manager manager(32);
  PacketCodec codec(&manager, HeaderLayout{32, 0, 0});
  RouteMap bgp;
  bgp[util::MustParsePrefix("10.0.1.0/24")] = {Learned("10.0.1.0/24", 1)};
  Fib fib = Fib::Build(net, 0, bgp, {}, nullptr);
  NodePredicates preds = BuildPredicates(net, 0, fib, codec);
  EXPECT_TRUE(codec.DstIn(util::MustParsePrefix("192.168.0.0/16"))
                  .Implies(preds.discard));
}

TEST(AclPredicateTest, FirstMatchWins) {
  bdd::Manager manager(32);
  PacketCodec codec(&manager, HeaderLayout{32, 0, 0});
  config::Acl acl;
  acl.name = "A";
  acl.entries.push_back(config::AclEntry{
      false, std::nullopt, util::MustParsePrefix("172.16.0.0/12")});
  acl.entries.push_back(
      config::AclEntry{true, std::nullopt, std::nullopt});
  bdd::Bdd permit = AclPredicate(acl, codec);
  EXPECT_FALSE(codec.DstIn(util::MustParsePrefix("172.16.5.0/24"))
                   .Intersects(permit));
  EXPECT_TRUE(codec.DstIn(util::MustParsePrefix("10.0.0.0/8"))
                  .Implies(permit));
}

TEST(AclPredicateTest, NoMatchMeansDeny) {
  bdd::Manager manager(32);
  PacketCodec codec(&manager, HeaderLayout{32, 0, 0});
  config::Acl acl;
  acl.name = "A";
  acl.entries.push_back(config::AclEntry{
      true, std::nullopt, util::MustParsePrefix("10.0.0.0/8")});
  bdd::Bdd permit = AclPredicate(acl, codec);
  EXPECT_FALSE(codec.DstIn(util::MustParsePrefix("192.168.0.0/16"))
                   .Intersects(permit));
}

TEST(AclPredicateTest, SrcEntryUnderDstOnlyLayoutMatchesNothing) {
  bdd::Manager manager(32);
  PacketCodec codec(&manager, HeaderLayout{32, 0, 0});
  config::Acl acl;
  acl.name = "A";
  acl.entries.push_back(config::AclEntry{
      true, util::MustParsePrefix("10.0.0.0/8"), std::nullopt});
  EXPECT_TRUE(AclPredicate(acl, codec).IsZero());
}

TEST(AclPredicateTest, SrcMatchingWithSrcBits) {
  bdd::Manager manager(64);
  PacketCodec codec(&manager, HeaderLayout{32, 32, 0});
  config::Acl acl;
  acl.name = "A";
  acl.entries.push_back(config::AclEntry{
      false, util::MustParsePrefix("10.0.0.0/8"),
      util::MustParsePrefix("10.0.0.0/8")});
  acl.entries.push_back(config::AclEntry{true, std::nullopt, std::nullopt});
  bdd::Bdd permit = AclPredicate(acl, codec);
  bdd::Bdd internal = codec.SrcIn(util::MustParsePrefix("10.0.0.0/8")) &
                      codec.DstIn(util::MustParsePrefix("10.0.0.0/8"));
  EXPECT_FALSE(internal.Intersects(permit));
  bdd::Bdd external_src =
      codec.SrcIn(util::MustParsePrefix("192.168.0.0/16")) &
      codec.DstIn(util::MustParsePrefix("10.0.0.0/8"));
  EXPECT_TRUE(external_src.Implies(permit));
}

TEST(PredicatesTest, InterfaceAclsBecomePortPredicates) {
  topo::Network net = testing::MakeChain(2);
  net.intents[0].interfaces[0].acl_out.push_back(topo::AclRuleIntent{
      false, std::nullopt, util::MustParsePrefix("172.16.0.0/12")});
  auto parsed = testing::Parse(net);
  cp::MonoEngine engine(parsed, nullptr);
  engine.Run(nullptr, nullptr);
  bdd::Manager manager(32);
  PacketCodec codec(&manager, HeaderLayout{32, 0, 0});
  Fib fib = Fib::Build(parsed, 0, engine.node(0).bgp_routes(),
                       engine.node(0).ospf_routes(), nullptr);
  NodePredicates preds = BuildPredicates(parsed, 0, fib, codec);
  ASSERT_TRUE(preds.acl_out.count(1));
  EXPECT_FALSE(codec.DstIn(util::MustParsePrefix("172.16.0.1/32"))
                   .Intersects(preds.acl_out.at(1)));
}

}  // namespace
}  // namespace s2::dp
