#include "util/string_util.h"

namespace s2::util {

std::vector<std::string> SplitTokens(std::string_view text,
                                     std::string_view delims) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    size_t start = text.find_first_not_of(delims, i);
    if (start == std::string_view::npos) break;
    size_t end = text.find_first_of(delims, start);
    if (end == std::string_view::npos) end = text.size();
    out.emplace_back(text.substr(start, end - start));
    i = end;
  }
  return out;
}

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i <= text.size()) {
    size_t end = text.find('\n', i);
    if (end == std::string_view::npos) end = text.size();
    if (end > i) out.emplace_back(text.substr(i, end - i));
    i = end + 1;
  }
  return out;
}

std::string Trim(std::string_view text) {
  size_t start = text.find_first_not_of(" \t\r\n");
  if (start == std::string_view::npos) return "";
  size_t end = text.find_last_not_of(" \t\r\n");
  return std::string(text.substr(start, end - start + 1));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

}  // namespace s2::util
