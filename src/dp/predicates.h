// Port predicate computation (paper §4.3, "pre-computing predicates").
//
// For each device the FIB induces, via longest-prefix-match order, a
// partition of the destination space into: per-neighbor forwarding
// predicates, an arrive predicate, an exit predicate, and a discard
// predicate (aggregate Null0 + no-route). ACLs induce per-port in/out
// permit predicates. All BDDs live in the owning domain's manager — S2's
// one-table-per-worker design.
#pragma once

#include <unordered_map>

#include "config/parser.h"
#include "dp/fib.h"
#include "dp/packet.h"

namespace s2::dp {

struct NodePredicates {
  // Packets forwarded toward each neighbor device (p^fwd per port).
  std::unordered_map<topo::NodeId, bdd::Bdd> forward;
  bdd::Bdd arrive;    // delivered here
  bdd::Bdd exit;      // leaves the modeled network here
  bdd::Bdd discard;   // dropped: aggregate Null0 or no matching route
  // ACL permit predicates per neighbor port (p^in / p^out); ports without
  // an ACL get True.
  std::unordered_map<topo::NodeId, bdd::Bdd> acl_in;
  std::unordered_map<topo::NodeId, bdd::Bdd> acl_out;
};

// Builds the predicates of device `self` from its FIB within `codec`'s
// manager. `network` resolves neighbor ports and ACLs.
NodePredicates BuildPredicates(const config::ParsedNetwork& network,
                               topo::NodeId self, const Fib& fib,
                               const PacketCodec& codec);

// The permit predicate of an ACL (first-match-wins; no-match = deny).
bdd::Bdd AclPredicate(const config::Acl& acl, const PacketCodec& codec);

}  // namespace s2::dp
