// Randomized equivalence fuzzing: generate random connected topologies
// with random policy mixes (local-pref, community tagging and filtering,
// aggregates, conditional advertisements, ACLs, mixed vendors, varying
// ECMP widths), then require S2's distributed verification — across worker
// counts, partition schemes, and shard counts — to produce RIBs and
// data-plane verdicts identical to the monolithic baseline's.
//
// Seeds whose control plane genuinely does not converge (random policy
// soups can build BGP dispute wheels) are skipped for both engines —
// convergence behaviour itself must agree, since the round semantics are
// identical.
#include <gtest/gtest.h>

#include "bdd/bdd.h"
#include "bdd/bdd_io.h"
#include "core/mono.h"
#include "core/s2.h"
#include "cp/route.h"
#include "dist/message.h"
#include "dp/parallel.h"
#include "fault/checkpoint.h"
#include "test_networks.h"
#include "util/rng.h"
#include "util/status.h"

namespace s2 {
namespace {

topo::Network RandomNetwork(uint64_t seed) {
  util::Rng rng(seed);
  topo::Network net;
  net.name = "fuzz" + std::to_string(seed);
  int n = static_cast<int>(rng.Between(5, 14));

  for (int i = 0; i < n; ++i) {
    net.graph.AddNode(topo::NodeInfo{"r" + std::to_string(i),
                                     topo::Role::kEdge,
                                     static_cast<int>(rng.Below(3)),
                                     static_cast<int>(rng.Below(3)), 1.0});
  }
  // Random spanning tree keeps it connected; sprinkle extra edges.
  for (topo::NodeId v = 1; v < net.graph.size(); ++v) {
    net.graph.AddEdge(v, static_cast<topo::NodeId>(rng.Below(v)));
  }
  int extra = static_cast<int>(rng.Below(static_cast<uint64_t>(n)));
  for (int e = 0; e < extra; ++e) {
    topo::NodeId a = static_cast<topo::NodeId>(rng.Below(n));
    topo::NodeId b = static_cast<topo::NodeId>(rng.Below(n));
    if (a != b) net.graph.AddEdge(a, b);
  }

  net.intents.resize(n);
  for (int i = 0; i < n; ++i) {
    topo::NodeIntent& intent = net.intents[i];
    // Public ASNs: random remove-private-as on an all-private-ASN fabric
    // legitimately destroys loop prevention and count-to-infinities — a
    // real misconfiguration hazard this model reproduces, but not the
    // convergence regime this fuzz targets.
    intent.asn = 60001 + static_cast<uint32_t>(i);
    intent.vendor = rng.Below(2) ? topo::Vendor::kBeta : topo::Vendor::kAlpha;
    intent.loopback = util::Ipv4Prefix(
        util::Ipv4Address((172u << 24) | (16u << 16) | uint32_t(i)), 32);
    intent.announced.push_back(intent.loopback);
    int prefixes = static_cast<int>(rng.Between(1, 2));
    for (int p = 0; p < prefixes; ++p) {
      intent.announced.push_back(util::Ipv4Prefix(
          util::Ipv4Address((10u << 24) | (uint32_t(i) << 12) |
                            (uint32_t(p) << 8)),
          24));
    }
    intent.max_ecmp_paths = static_cast<int>(rng.Between(1, 4));
    intent.remove_private_as = rng.Below(4) == 0;
    // Occasional aggregate over this node's own announcement space.
    if (rng.Below(3) == 0) {
      intent.aggregates.push_back(topo::AggregateIntent{
          util::Ipv4Prefix(
              util::Ipv4Address((10u << 24) | (uint32_t(i) << 12)), 20),
          rng.Below(2) == 0,
          {static_cast<uint32_t>(300 + i)}});
    }
    // Occasional conditional advertisement watching a neighbor's space
    // (fresh advertised prefix, so no watch cycles by construction).
    if (rng.Below(4) == 0) {
      uint32_t watch_node = static_cast<uint32_t>(rng.Below(n));
      intent.cond_advs.push_back(topo::CondAdvIntent{
          util::Ipv4Prefix(
              util::Ipv4Address((192u << 24) | (168u << 16) |
                                (uint32_t(i) << 8)),
              24),
          util::Ipv4Prefix(
              util::Ipv4Address((172u << 24) | (16u << 16) | watch_node),
              32),
          rng.Below(2) == 0});
    }
  }

  topo::AssignLinkAddresses(net);

  // Per-interface policy soup (after interfaces exist).
  for (int i = 0; i < n; ++i) {
    for (topo::InterfaceIntent& iface : net.intents[i].interfaces) {
      if (rng.Below(4) == 0) {
        iface.import_local_pref =
            static_cast<uint32_t>(100 + 10 * rng.Below(3));
      }
      if (rng.Below(4) == 0) {
        iface.import_tag_communities.push_back(
            static_cast<uint32_t>(900 + rng.Below(3)));
      }
      if (rng.Below(5) == 0) {
        iface.export_policy.deny_export_communities.push_back(
            static_cast<uint32_t>(900 + rng.Below(3)));
      }
      if (rng.Below(5) == 0) {
        iface.export_policy.tag_matching.push_back(
            {util::MustParsePrefix("10.0.0.0/8"),
             static_cast<uint32_t>(910 + rng.Below(2))});
      }
      if (rng.Below(6) == 0) {
        iface.acl_in.push_back(topo::AclRuleIntent{
            false, std::nullopt,
            util::Ipv4Prefix(
                util::Ipv4Address((10u << 24) | (rng.Below(n) << 12)),
                20)});
      }
    }
  }
  return net;
}

dp::Query FuzzQuery(const config::ParsedNetwork& parsed) {
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  for (topo::NodeId id = 0; id < parsed.graph.size(); ++id) {
    query.sources.push_back(id);
    query.destinations.push_back(id);
  }
  return query;
}

class FuzzEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzEquivalenceTest, S2MatchesMonoOnRandomNetworks) {
  topo::Network net = RandomNetwork(GetParam());
  auto parsed = testing::Parse(net);
  dp::Query query = FuzzQuery(parsed);

  core::MonoOptions mono_options;
  mono_options.max_rounds = 200;
  core::MonoVerifier mono(mono_options);
  core::VerifyResult base = mono.Verify(parsed, {query});
  if (base.status == core::RunStatus::kTimeout) {
    GTEST_SKIP() << "seed builds a non-converging policy soup";
  }
  ASSERT_TRUE(base.ok()) << base.failure_detail;

  std::vector<std::map<util::Ipv4Prefix, std::vector<cp::Route>>> ribs;
  for (const auto& node : mono.last_engine()->nodes()) {
    ribs.push_back(node->bgp_routes());
  }

  util::Rng rng(GetParam() * 977);
  for (int variant = 0; variant < 3; ++variant) {
    dist::ControllerOptions options;
    options.num_workers = static_cast<uint32_t>(rng.Between(1, 5));
    options.scheme = static_cast<topo::PartitionScheme>(rng.Below(5));
    options.num_shards = static_cast<int>(rng.Below(3)) * 3;  // 0, 3, 6
    options.max_rounds = 200;
    options.seed = rng.Next();
    core::S2Verifier verifier(options);
    core::VerifyResult result = verifier.Verify(parsed, {query});
    ASSERT_TRUE(result.ok()) << result.failure_detail;

    EXPECT_EQ(result.total_best_routes, base.total_best_routes);
    EXPECT_EQ(result.queries[0].reachable_pairs,
              base.queries[0].reachable_pairs);
    EXPECT_EQ(result.queries[0].unreachable_pairs,
              base.queries[0].unreachable_pairs);
    EXPECT_EQ(result.queries[0].loop_free, base.queries[0].loop_free);
    EXPECT_EQ(result.queries[0].blackhole_free,
              base.queries[0].blackhole_free);
    EXPECT_EQ(result.queries[0].multipath_violations.size(),
              base.queries[0].multipath_violations.size());

    if (options.num_shards == 0) {
      dist::Controller* controller = verifier.last_controller();
      for (size_t w = 0; w < controller->num_workers(); ++w) {
        dist::Worker& worker = controller->worker(w);
        for (topo::NodeId id : worker.local_nodes()) {
          ASSERT_EQ(worker.node(id).bgp_routes(), ribs[id])
              << "seed " << GetParam() << " node " << id;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 25));

// ------------------------------------------------------- parser fuzzing
//
// Property fuzz for the strict IP parsers (the config hot path): every
// address/prefix must survive a ToString -> Parse round trip bit-exactly,
// and mechanical mutations of a valid rendering (inserted sign/space/
// leading zero, doubled separators) must be rejected rather than silently
// misread — the failure mode of the old sscanf/strtol parsers.

TEST(ParserFuzzTest, AddressRoundTripsBitExactly) {
  util::Rng rng(0xA11CE5);
  for (int i = 0; i < 20000; ++i) {
    util::Ipv4Address addr(static_cast<uint32_t>(rng.Next()));
    auto back = util::Ipv4Address::Parse(addr.ToString());
    ASSERT_TRUE(back.has_value()) << addr.ToString();
    ASSERT_EQ(back->bits(), addr.bits()) << addr.ToString();
  }
}

TEST(ParserFuzzTest, PrefixRoundTripsBitExactly) {
  util::Rng rng(0xBEEF);
  for (int i = 0; i < 20000; ++i) {
    int len = static_cast<int>(rng.Below(33));
    util::Ipv4Prefix prefix(util::Ipv4Address(static_cast<uint32_t>(rng.Next())),
                            len);
    auto back = util::Ipv4Prefix::Parse(prefix.ToString());
    ASSERT_TRUE(back.has_value()) << prefix.ToString();
    ASSERT_EQ(back->address().bits(), prefix.address().bits())
        << prefix.ToString();
    ASSERT_EQ(back->length(), prefix.length()) << prefix.ToString();
  }
}

TEST(ParserFuzzTest, MutatedRenderingsAreRejected) {
  util::Rng rng(0xD00D);
  const std::string garnish = " +-0";
  int digit_survivors = 0;
  for (int i = 0; i < 5000; ++i) {
    util::Ipv4Prefix prefix(util::Ipv4Address(static_cast<uint32_t>(rng.Next())),
                            static_cast<int>(rng.Below(33)));
    std::string text = prefix.ToString();
    // Insert one garnish character at a random position.
    size_t pos = rng.Below(text.size() + 1);
    char c = garnish[rng.Below(garnish.size())];
    std::string mutated = text.substr(0, pos) + c + text.substr(pos);
    auto parsed = util::Ipv4Prefix::Parse(mutated);
    if (c != '0') {
      // Whitespace and sign garnish is what the old sscanf/strtol parsers
      // silently swallowed; the strict parsers must always reject it.
      EXPECT_FALSE(parsed.has_value()) << "accepted \"" << mutated << "\"";
    } else if (parsed.has_value()) {
      // An inserted digit may form a different valid prefix (e.g.
      // "1.2.3.4/8" -> "10.2.3.4/8"). Whatever parses must canonicalize
      // idempotently: render -> parse -> render is a fixed point.
      ++digit_survivors;
      auto again = util::Ipv4Prefix::Parse(parsed->ToString());
      ASSERT_TRUE(again.has_value()) << parsed->ToString();
      EXPECT_EQ(*again, *parsed) << "from \"" << mutated << "\"";
    }
  }
  // Sanity: the digit path does exercise the survivor branch.
  EXPECT_GT(digit_survivors, 0);
}

// ------------------------------------------------ malformed wire corpus
//
// Deserializers face bytes from other processes and from disk; a crashed
// sidecar or a torn checkpoint write must surface as util::WireFormatError,
// never as std::abort or an absurd-length allocation. The corpus attacks
// every wire format with (a) every strict truncation of a valid blob and
// (b) saturated length/count fields at every byte offset — the latter is
// what turns a single flipped bit into a multi-gigabyte reserve() if a
// count is trusted before the remaining bytes are measured.

std::vector<uint8_t> ValidRouteBatch(cp::AttrPool& pool) {
  std::vector<cp::RouteUpdate> updates;
  for (uint32_t i = 0; i < 8; ++i) {
    cp::Route r;
    r.prefix = util::Ipv4Prefix(util::Ipv4Address((10u << 24) | (i << 8)), 24);
    r.origin_node = i;
    r.learned_from = (i + 1) % 8;
    r.MutateAttrs(pool, [&](cp::AttrTuple& t) {
      t.local_pref = 100 + (i % 3) * 10;
      t.as_path = {65001u, 65000u + (i % 3)};
      if (i % 2) t.communities = {100u, 999u};
    });
    updates.push_back(cp::RouteUpdate{r.prefix, false, r});
  }
  updates.push_back(cp::RouteUpdate{util::MustParsePrefix("10.9.0.0/24"),
                                    true, cp::Route{}});
  std::vector<uint8_t> bytes;
  cp::SerializeRoutes(updates, bytes);
  return bytes;
}

TEST(WireFuzzTest, EveryTruncatedRouteBatchErrors) {
  cp::AttrPool pool;
  std::vector<uint8_t> bytes = ValidRouteBatch(pool);
  ASSERT_EQ(cp::DeserializeRoutes(bytes, pool).size(), 9u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + len);
    EXPECT_THROW(cp::DeserializeRoutes(cut, pool), util::WireFormatError)
        << "prefix of " << len << " bytes";
  }
}

TEST(WireFuzzTest, SaturatedRouteBatchFieldsErrorNotAllocate) {
  cp::AttrPool pool;
  std::vector<uint8_t> bytes = ValidRouteBatch(pool);
  // Overwriting any 4 consecutive bytes with 0xFF saturates whichever
  // count, length, or index field they belong to (attr-table count, list
  // lengths, route count, tuple index). Decode must reject or survive —
  // the EXPECT_LE bounds the damage a trusted count could have done.
  for (size_t pos = 0; pos + 4 <= bytes.size(); ++pos) {
    std::vector<uint8_t> corrupt = bytes;
    for (size_t i = 0; i < 4; ++i) corrupt[pos + i] = 0xFF;
    try {
      auto decoded = cp::DeserializeRoutes(corrupt, pool);
      EXPECT_LE(decoded.size(), corrupt.size());  // no phantom routes
    } catch (const util::WireFormatError&) {
      // the expected outcome for most offsets
    }
  }
}

TEST(WireFuzzTest, RandomRouteBatchMutationsNeverCrash) {
  cp::AttrPool pool;
  std::vector<uint8_t> bytes = ValidRouteBatch(pool);
  util::Rng rng(0xF00D);
  for (int i = 0; i < 20000; ++i) {
    std::vector<uint8_t> corrupt = bytes;
    int flips = static_cast<int>(rng.Between(1, 8));
    for (int f = 0; f < flips; ++f) {
      corrupt[rng.Below(corrupt.size())] ^=
          static_cast<uint8_t>(1u << rng.Below(8));
    }
    try {
      cp::DeserializeRoutes(corrupt, pool);
    } catch (const util::WireFormatError&) {
    }
  }
}

std::vector<uint8_t> ValidPacketBatch() {
  std::vector<dp::WirePacket> frames;
  for (uint32_t i = 0; i < 4; ++i) {
    dp::WirePacket frame;
    frame.at = i;
    frame.from = i + 1;
    frame.src = 0;
    frame.hops = static_cast<int>(i);
    frame.path = {0u, 1u, i};
    frame.set = {0x44, 0x42, 0x32, 0x53, 0x01, 0x02, 0x03};  // opaque here
    frames.push_back(std::move(frame));
  }
  std::vector<uint8_t> payload;
  dist::EncodePacketBatch(frames, payload);
  return payload;
}

TEST(WireFuzzTest, EveryTruncatedPacketBatchErrors) {
  std::vector<uint8_t> payload = ValidPacketBatch();
  ASSERT_EQ(dist::DecodePacketBatch(payload).size(), 4u);
  for (size_t len = 0; len < payload.size(); ++len) {
    std::vector<uint8_t> cut(payload.begin(), payload.begin() + len);
    EXPECT_THROW(dist::DecodePacketBatch(cut), util::WireFormatError)
        << "prefix of " << len << " bytes";
  }
}

TEST(WireFuzzTest, SaturatedPacketBatchFieldsErrorNotAllocate) {
  std::vector<uint8_t> payload = ValidPacketBatch();
  for (size_t pos = 0; pos + 4 <= payload.size(); ++pos) {
    std::vector<uint8_t> corrupt = payload;
    for (size_t i = 0; i < 4; ++i) corrupt[pos + i] = 0xFF;
    try {
      auto frames = dist::DecodePacketBatch(corrupt);
      EXPECT_LE(frames.size(), corrupt.size());
    } catch (const util::WireFormatError&) {
    }
  }
}

std::vector<uint8_t> ValidPredicateBlob(bdd::Manager& manager) {
  dp::NodePredicates preds;
  preds.arrive = manager.And(manager.Var(0), manager.Var(3));
  preds.exit = manager.Or(manager.Var(1), manager.NotVar(2));
  preds.discard = manager.Not(preds.arrive);
  preds.forward[7] = manager.Var(2);
  preds.forward[9] = manager.And(manager.Var(4), manager.NotVar(0));
  preds.acl_in[7] = manager.One();
  preds.acl_out[9] = manager.Var(5);
  return fault::SerializePredicates(preds);
}

TEST(WireFuzzTest, EveryTruncatedPredicateCheckpointErrors) {
  bdd::Manager manager(16);
  std::vector<uint8_t> bytes = ValidPredicateBlob(manager);
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + len);
    bdd::Manager fresh(16);
    EXPECT_THROW(fault::DeserializePredicates(fresh, cut),
                 util::WireFormatError)
        << "prefix of " << len << " bytes";
  }
}

TEST(WireFuzzTest, SaturatedPredicateCheckpointFieldsError) {
  bdd::Manager manager(16);
  std::vector<uint8_t> bytes = ValidPredicateBlob(manager);
  for (size_t pos = 0; pos + 4 <= bytes.size(); ++pos) {
    std::vector<uint8_t> corrupt = bytes;
    for (size_t i = 0; i < 4; ++i) corrupt[pos + i] = 0xFF;
    bdd::Manager fresh(16);
    try {
      fault::DeserializePredicates(fresh, corrupt);
    } catch (const util::WireFormatError&) {
    }
  }
}

TEST(WireFuzzTest, RandomBddBlobMutationsNeverCrash) {
  bdd::Manager manager(16);
  bdd::Bdd f = manager.Or(manager.And(manager.Var(0), manager.Var(1)),
                          manager.And(manager.Var(2), manager.NotVar(3)));
  std::vector<uint8_t> bytes = bdd::Serialize(f);
  util::Rng rng(0xB0D);
  for (int i = 0; i < 20000; ++i) {
    std::vector<uint8_t> corrupt = bytes;
    int flips = static_cast<int>(rng.Between(1, 6));
    for (int fl = 0; fl < flips; ++fl) {
      corrupt[rng.Below(corrupt.size())] ^=
          static_cast<uint8_t>(1u << rng.Below(8));
    }
    bdd::Manager fresh(16);
    try {
      bdd::DeserializeInto(fresh, corrupt);
    } catch (const util::WireFormatError&) {
    }
  }
}

}  // namespace
}  // namespace s2
