// Metrics registry: the single sink the repo's scattered counters publish
// into.
//
// PR 1 and PR 2 each grew ad-hoc counter structs (RoundMetrics,
// EngineStats, ShardMetrics, ReliableTransport::Stats, per-fabric
// high-water atomics, MemoryTracker peaks). The Registry unifies them as
// flat named values so one machine-readable RunReport JSON can carry a
// whole run's breakdown — the per-phase/per-worker evidence the paper's
// §7 figures are built from. Publishers live next to the structs they
// serialize (core/report.h, dist::Controller::PublishMetrics); the
// registry itself knows nothing about them.
//
// Three value kinds:
//   counters — integer totals (bytes, messages, rounds, cache hits);
//   gauges   — point-in-time doubles (seconds, pressure fractions);
//   labels   — short strings (status, partition scheme).
//
// Thread-safe; names are dotted paths ("cp.comm_bytes",
// "mem.worker_peak_bytes.w3"). ToJson() is deterministic (sorted keys).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace s2::obs {

class Registry {
 public:
  void SetCounter(const std::string& name, int64_t value);
  void AddCounter(const std::string& name, int64_t delta);
  void SetGauge(const std::string& name, double value);
  void SetLabel(const std::string& name, const std::string& value);

  // Reads (0 / empty when absent).
  int64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  std::string label(const std::string& name) const;
  bool Has(const std::string& name) const;
  size_t size() const;

  void Clear();

  // {"counters":{...},"gauges":{...},"labels":{...}} — keys sorted, so
  // byte-identical for identical contents.
  std::string ToJson() const;
  bool WriteJson(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, std::string> labels_;
};

}  // namespace s2::obs
