// Cross-manager BDD transfer — the wire format sidecars use when a
// symbolic packet crosses a worker boundary (paper §4.3, option 2: each
// worker has its own BDD node table, packets are serialized on one side
// and re-encoded into the receiving worker's table on the other).
//
// Format (little-endian u32 fields):
//   magic 'S2BD' | num_vars | node_count | root_index |
//   node_count × (var, low_index, high_index)
// Indices are positions in the serialized list; 0 and 1 denote the
// terminals and are not emitted. Internal nodes are listed children-first,
// so deserialization is a single bottom-up pass of MakeNode calls — the
// receiving manager re-canonicalizes, so shared structure is recovered
// even across managers with different node tables.
#pragma once

#include <cstdint>
#include <vector>

#include "bdd/bdd.h"

namespace s2::bdd {

// Serializes the function rooted at `f` (manager-independent form).
std::vector<uint8_t> Serialize(const Bdd& f);

// Rebuilds a serialized function inside `manager`. The manager must have at
// least as many variables as the serialized function uses; aborts on a
// malformed buffer (wire buffers are produced by Serialize, not attackers).
Bdd DeserializeInto(Manager& manager, const std::vector<uint8_t>& bytes);

}  // namespace s2::bdd
