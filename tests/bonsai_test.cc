// BonsaiVerifier (compression baseline) tests: per-destination compressed
// verification, the constant-memory / compute-bound scaling shape, and the
// modeled deadline.
#include <gtest/gtest.h>

#include "core/bonsai.h"
#include "topo/fattree.h"

namespace s2::core {
namespace {

TEST(BonsaiTest, AllDestinationsReachableOnFatTree) {
  topo::FatTreeParams params;
  params.k = 4;
  auto net = topo::MakeFatTree(params);
  BonsaiVerifier verifier{BonsaiOptions{}};
  VerifyResult result = verifier.Verify(net);
  ASSERT_TRUE(result.ok()) << result.failure_detail;
  // One verdict per edge host prefix: k^2/4 destinations, all reachable.
  EXPECT_EQ(result.queries[0].reachable_pairs, 8u);
  EXPECT_EQ(result.queries[0].unreachable_pairs, 0u);
}

TEST(BonsaiTest, MemoryStaysConstantAcrossSizes) {
  size_t peak_small = 0, peak_large = 0;
  for (int k : {4, 8}) {
    topo::FatTreeParams params;
    params.k = k;
    BonsaiVerifier verifier{BonsaiOptions{}};
    VerifyResult result = verifier.Verify(topo::MakeFatTree(params));
    ASSERT_TRUE(result.ok());
    (k == 4 ? peak_small : peak_large) = result.peak_memory_bytes;
  }
  // Compressed instances are constant-size: peaks within 2x of each other
  // even though the k=8 network is 4x larger.
  EXPECT_LT(peak_large, 2 * peak_small + 1024);
}

TEST(BonsaiTest, TimeGrowsWithDestinationCount) {
  double small = 0, large = 0;
  for (int k : {4, 8}) {
    topo::FatTreeParams params;
    params.k = k;
    BonsaiVerifier verifier{BonsaiOptions{}};
    VerifyResult result = verifier.Verify(topo::MakeFatTree(params));
    ASSERT_TRUE(result.ok());
    (k == 4 ? small : large) = result.control_plane.wall_seconds;
  }
  EXPECT_GT(large, small);
}

TEST(BonsaiTest, DeadlineProducesTimeoutVerdict) {
  topo::FatTreeParams params;
  params.k = 6;
  BonsaiOptions options;
  options.cores = 1;
  options.timeout_seconds = 0.0;  // everything blows the deadline
  BonsaiVerifier verifier(options);
  VerifyResult result = verifier.Verify(topo::MakeFatTree(params));
  EXPECT_EQ(result.status, RunStatus::kTimeout);
  EXPECT_NE(result.failure_detail.find("deadline"), std::string::npos);
}

TEST(BonsaiTest, MoreCoresLowerModeledTime) {
  topo::FatTreeParams params;
  params.k = 6;
  double t1 = 0, t15 = 0;
  for (int cores : {1, 15}) {
    BonsaiOptions options;
    options.cores = cores;
    BonsaiVerifier verifier(options);
    VerifyResult result = verifier.Verify(topo::MakeFatTree(params));
    ASSERT_TRUE(result.ok());
    (cores == 1 ? t1 : t15) = result.control_plane.modeled_seconds;
  }
  EXPECT_LT(t15, t1);
}

}  // namespace
}  // namespace s2::core
