# Empty dependencies file for failure_sweep.
# This may be replaced when dependencies are built.
