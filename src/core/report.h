// Machine-readable result export: serializes a VerifyResult (status,
// phase metrics, memory, property verdicts) as JSON for dashboards and CI
// gates. Hand-rolled emitter — the schema is small and the repo carries no
// third-party JSON dependency.
#pragma once

#include <string>

#include "core/results.h"
#include "cp/engine.h"
#include "obs/registry.h"

namespace s2::core {

// JSON object string (no trailing newline). Stable key order.
std::string ToJson(const VerifyResult& result);

// Convenience: writes ToJson(result) to `path`; returns false on I/O
// failure.
bool WriteJsonReport(const VerifyResult& result, const std::string& path);

// ------------------------------------------------- RunReport publishers
// Flatten the repo's counter structs into an obs::Registry so one
// RunReport JSON carries a whole run's breakdown. Publishers live here —
// next to the result types — so the registry stays schema-free.

// Every RoundMetrics field under `prefix` (e.g. "cp" -> cp.rounds,
// cp.comm_bytes, cp.bdd_cache_hits, ...).
void PublishRoundMetrics(const std::string& prefix,
                         const dist::RoundMetrics& metrics,
                         obs::Registry& registry);

// Every VerifyResult field: status label, phase seconds, the three
// RoundMetrics blocks (cp / dp_build / dp_forward), memory peaks, route
// and comm totals, and the fault-tolerance counters.
void PublishVerifyResult(const VerifyResult& result, obs::Registry& registry);

// MonoEngine pass statistics under "engine." (baseline runs).
void PublishEngineStats(const cp::EngineStats& stats, obs::Registry& registry);

}  // namespace s2::core
