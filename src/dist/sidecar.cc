#include "dist/sidecar.h"

namespace s2::dist {

SidecarFabric::SidecarFabric(uint32_t num_workers,
                             std::vector<uint32_t> assignment)
    : num_workers_(num_workers),
      assignment_(std::move(assignment)),
      queues_(num_workers),
      bytes_sent_(num_workers),
      messages_sent_(num_workers),
      max_queue_depth_(num_workers) {}

void SidecarFabric::EnableReliableDelivery(const fault::FaultPlan& tuning,
                                           const fault::FaultInjector* injector,
                                           bool keep_replay_log) {
  transport_ = std::make_unique<fault::ReliableTransport>(
      num_workers_, tuning, injector, keep_replay_log);
}

void SidecarFabric::Send(uint32_t from_worker, Message message) {
  uint32_t to_worker = WorkerOf(message.to_node);
  // Counters track application payloads (what the cost model bills); the
  // reliable envelope's retransmit/ack traffic shows in transport_stats().
  bytes_sent_[from_worker].fetch_add(message.WireBytes(),
                                     std::memory_order_relaxed);
  messages_sent_[from_worker].fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  if (transport_ != nullptr) {
    transport_->Ship(from_worker, to_worker, std::move(message));
    return;
  }
  std::vector<Message>& queue = queues_[to_worker];
  queue.push_back(std::move(message));
  size_t depth = queue.size();
  std::atomic<size_t>& high = max_queue_depth_[to_worker];
  size_t seen = high.load(std::memory_order_relaxed);
  while (depth > seen &&
         !high.compare_exchange_weak(seen, depth,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<Message> SidecarFabric::Drain(uint32_t worker) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (transport_ != nullptr) return transport_->Drain(worker);
  std::vector<Message> out = std::move(queues_[worker]);
  queues_[worker].clear();
  return out;
}

bool SidecarFabric::HasPending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (transport_ != nullptr) return transport_->HasPending();
  for (const auto& queue : queues_) {
    if (!queue.empty()) return true;
  }
  return false;
}

size_t SidecarFabric::bytes_sent_by(uint32_t worker) const {
  return bytes_sent_[worker].load(std::memory_order_relaxed);
}

size_t SidecarFabric::messages_sent_by(uint32_t worker) const {
  return messages_sent_[worker].load(std::memory_order_relaxed);
}

size_t SidecarFabric::total_bytes() const {
  size_t total = 0;
  for (const std::atomic<size_t>& b : bytes_sent_) {
    total += b.load(std::memory_order_relaxed);
  }
  return total;
}

size_t SidecarFabric::max_queue_depth(uint32_t worker) const {
  if (transport_ != nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    return transport_->MaxQueueDepth(worker);
  }
  return max_queue_depth_[worker].load(std::memory_order_relaxed);
}

void SidecarFabric::ResetCounters() {
  for (uint32_t w = 0; w < num_workers_; ++w) {
    bytes_sent_[w].store(0, std::memory_order_relaxed);
    messages_sent_[w].store(0, std::memory_order_relaxed);
    max_queue_depth_[w].store(0, std::memory_order_relaxed);
  }
}

void SidecarFabric::MarkCheckpoint(uint32_t worker) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (transport_ != nullptr) transport_->MarkCheckpoint(worker);
}

std::vector<fault::LoggedDelivery> SidecarFabric::ReplayLog(
    uint32_t worker) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (transport_ == nullptr) return {};
  return transport_->ReplayLog(worker);
}

int SidecarFabric::CurrentRound() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return transport_ == nullptr ? 0 : transport_->CurrentRound();
}

fault::ReliableTransport::Stats SidecarFabric::transport_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (transport_ == nullptr) return {};
  return transport_->stats();
}

}  // namespace s2::dist
