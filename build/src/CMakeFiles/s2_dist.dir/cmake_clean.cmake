file(REMOVE_RECURSE
  "CMakeFiles/s2_dist.dir/dist/controller.cc.o"
  "CMakeFiles/s2_dist.dir/dist/controller.cc.o.d"
  "CMakeFiles/s2_dist.dir/dist/cpo.cc.o"
  "CMakeFiles/s2_dist.dir/dist/cpo.cc.o.d"
  "CMakeFiles/s2_dist.dir/dist/dpo.cc.o"
  "CMakeFiles/s2_dist.dir/dist/dpo.cc.o.d"
  "CMakeFiles/s2_dist.dir/dist/message.cc.o"
  "CMakeFiles/s2_dist.dir/dist/message.cc.o.d"
  "CMakeFiles/s2_dist.dir/dist/shadow.cc.o"
  "CMakeFiles/s2_dist.dir/dist/shadow.cc.o.d"
  "CMakeFiles/s2_dist.dir/dist/sidecar.cc.o"
  "CMakeFiles/s2_dist.dir/dist/sidecar.cc.o.d"
  "CMakeFiles/s2_dist.dir/dist/worker.cc.o"
  "CMakeFiles/s2_dist.dir/dist/worker.cc.o.d"
  "libs2_dist.a"
  "libs2_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
