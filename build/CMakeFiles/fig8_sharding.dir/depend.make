# Empty dependencies file for fig8_sharding.
# This may be replaced when dependencies are built.
