// Worker checkpoints: the controller-side snapshots that make scheduled
// worker crashes recoverable (paper §3.2's controller observes worker
// liveness at barriers; this is the state it would re-ship to a restarted
// worker process).
//
// A checkpoint is taken at a phase barrier and holds, per local node, the
// full control-plane state in the cp/route.cc wire format, plus — once the
// data plane is built — the node's port predicates in the bdd/bdd_io.cc
// canonical encoding. Recovery pairs a checkpoint with the sidecar's
// replay log (fault/reliable.h): restore the snapshot, then re-execute the
// lost rounds against the logged deliveries.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "dp/predicates.h"
#include "topo/graph.h"

namespace s2::fault {

struct WorkerCheckpoint {
  // The prefix shard active when the snapshot was taken (-1 = none: OSPF
  // pass, unsharded BGP, or idle).
  int shard = -1;
  // The fabric's completed-drain round at the barrier; replay re-executes
  // rounds [fabric_round, crash round).
  int fabric_round = 0;

  // Per local node: cp::Node::SerializeState bytes.
  std::map<topo::NodeId, std::vector<uint8_t>> node_state;

  // Data-plane snapshot (present after BuildDataPlanes).
  bool has_data_plane = false;
  std::map<topo::NodeId, std::vector<uint8_t>> predicate_state;
  size_t fib_bytes = 0;

  size_t TotalBytes() const;
};

// Canonical wire encoding of one node's port predicates. Because bdd_io's
// encoding is structural (independent of manager node ids), equal bytes
// mean equal forwarding semantics — tests use this as the FIB hash.
std::vector<uint8_t> SerializePredicates(const dp::NodePredicates& preds);
dp::NodePredicates DeserializePredicates(bdd::Manager& manager,
                                         const std::vector<uint8_t>& bytes);

}  // namespace s2::fault
