// Quickstart: verify a small FatTree with S2 in a dozen lines.
//
// Synthesizes FatTree(4) vendor configs, parses them, runs distributed
// verification with 4 workers and prefix sharding, and checks all-pair
// reachability between edge switches.
//
//   ./quickstart [k] [workers] [shards]
#include <cstdio>
#include <cstdlib>

#include "config/vendor.h"
#include "core/s2.h"
#include "topo/fattree.h"

int main(int argc, char** argv) {
  using namespace s2;

  int k = argc > 1 ? std::atoi(argv[1]) : 4;
  uint32_t workers = argc > 2 ? std::atoi(argv[2]) : 4;
  int shards = argc > 3 ? std::atoi(argv[3]) : 5;

  // 1. Synthesize a FatTree and its vendor configuration files (in a real
  //    deployment these are the files pulled from your devices).
  topo::FatTreeParams params;
  params.k = k;
  topo::Network network = topo::MakeFatTree(params);
  std::vector<std::string> configs = config::SynthesizeConfigs(network);
  std::printf("network: %s — %zu switches, %zu links, %zu config files\n",
              network.name.c_str(), network.graph.size(),
              network.graph.edge_count(), configs.size());

  // 2. The query: all-pair reachability over the edge host space.
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  for (topo::NodeId id = 0; id < network.graph.size(); ++id) {
    if (network.graph.node(id).role == topo::Role::kEdge) {
      query.sources.push_back(id);
      query.destinations.push_back(id);
    }
  }

  // 3. Verify, distributed.
  dist::ControllerOptions options;
  options.num_workers = workers;
  options.num_shards = shards;
  core::S2Verifier verifier(options);
  core::VerifyResult result = verifier.Verify(configs, {query});

  // 4. Report.
  std::printf("status: %s\n", core::RunStatusName(result.status));
  if (!result.ok()) {
    std::printf("  %s\n", result.failure_detail.c_str());
    return 1;
  }
  const dp::QueryResult& reach = result.queries[0];
  std::printf("reachability: %zu reachable, %zu unreachable pairs\n",
              reach.reachable_pairs, reach.unreachable_pairs);
  std::printf("loop-free: %s   blackhole finals: %zu\n",
              reach.loop_free ? "yes" : "NO", reach.blackhole_finals);
  std::printf("routes computed: %zu\n", result.total_best_routes);
  std::printf("control plane: %d rounds, %s wall\n",
              result.control_plane.rounds,
              core::HumanSeconds(result.control_plane.wall_seconds).c_str());
  std::printf("per-worker peak memory: %s   sidecar traffic: %s\n",
              core::HumanBytes(result.peak_memory_bytes).c_str(),
              core::HumanBytes(result.comm_bytes).c_str());
  return reach.unreachable_pairs == 0 ? 0 : 1;
}
