// Prefix sharding tests (§4.5): universe collection with redistribution
// closure, DPDG dependency grouping, greedy balance with equal-size
// shuffling, the runtime merge fallback, and end-to-end equivalence on the
// DCN (aggregates + conditional advertisements).
#include <gtest/gtest.h>

#include "cp/engine.h"
#include "cp/shard.h"
#include "test_networks.h"
#include "topo/dcn.h"
#include "topo/fattree.h"
#include "util/stopwatch.h"

namespace s2::cp {
namespace {

TEST(CollectBgpPrefixesTest, GathersAllOriginationSources) {
  topo::Network net = testing::MakeChain(2);
  net.intents[0].aggregates.push_back(topo::AggregateIntent{
      util::MustParsePrefix("10.0.0.0/23"), true, {}});
  net.intents[1].cond_advs.push_back(topo::CondAdvIntent{
      util::MustParsePrefix("0.0.0.0/0"),
      util::MustParsePrefix("10.0.0.0/24"), true});
  auto parsed = testing::Parse(net);
  auto prefixes = CollectBgpPrefixes(parsed);
  std::set<util::Ipv4Prefix> set(prefixes.begin(), prefixes.end());
  // 2 loopbacks + 2 /24s + aggregate + default (watch already counted).
  EXPECT_EQ(set.size(), 6u);
  EXPECT_TRUE(set.count(util::MustParsePrefix("10.0.0.0/23")));
  EXPECT_TRUE(set.count(util::MustParsePrefix("0.0.0.0/0")));
}

TEST(CollectBgpPrefixesTest, RedistributionClosureAddsOspfPrefixes) {
  topo::Network net = testing::MakeChain(2);
  net.intents[0].enable_ospf = true;
  net.intents[0].announced.clear();  // loopback only known to OSPF
  net.intents[1].redistribute_ospf_into_bgp = true;
  auto parsed = testing::Parse(net);
  auto prefixes = CollectBgpPrefixes(parsed);
  std::set<util::Ipv4Prefix> set(prefixes.begin(), prefixes.end());
  EXPECT_TRUE(set.count(util::MustParsePrefix("172.16.0.0/32")))
      << "OSPF-contributed prefix missing from the BGP universe";
}

TEST(BuildShardPlanTest, CoversUniverseExactlyOnce) {
  topo::FatTreeParams params;
  params.k = 4;
  auto parsed = testing::Parse(topo::MakeFatTree(params));
  ShardPlan plan = BuildShardPlan(parsed, 5);
  EXPECT_EQ(plan.num_shards(), 5u);
  auto universe = CollectBgpPrefixes(parsed);
  EXPECT_EQ(plan.total_prefixes(), universe.size());
  for (const auto& prefix : universe) {
    EXPECT_NE(plan.ShardOf(prefix), -1) << prefix.ToString();
  }
}

TEST(BuildShardPlanTest, DependentPrefixesShareAShard) {
  auto parsed = testing::Parse(topo::MakeDcn(topo::DcnParams{}));
  ShardPlan plan = BuildShardPlan(parsed, 8);
  // Aggregates sit with every covered contributor.
  for (const config::ViConfig& config : parsed.configs) {
    for (const config::BgpAggregate& agg : config.bgp.aggregates) {
      int shard = plan.ShardOf(agg.prefix);
      ASSERT_NE(shard, -1);
      for (const auto& prefix : CollectBgpPrefixes(parsed)) {
        if (prefix != agg.prefix && agg.prefix.Contains(prefix)) {
          EXPECT_EQ(plan.ShardOf(prefix), shard)
              << agg.prefix.ToString() << " vs " << prefix.ToString();
        }
      }
    }
    for (const config::BgpCondAdv& cond : config.bgp.cond_advs) {
      EXPECT_EQ(plan.ShardOf(cond.advertise), plan.ShardOf(cond.watch));
    }
  }
}

TEST(BuildShardPlanTest, BalancedSizes) {
  topo::FatTreeParams params;
  params.k = 8;
  auto parsed = testing::Parse(topo::MakeFatTree(params));
  ShardPlan plan = BuildShardPlan(parsed, 10);
  size_t smallest = SIZE_MAX, largest = 0;
  for (const PrefixSet& shard : plan.shards()) {
    smallest = std::min(smallest, shard.size());
    largest = std::max(largest, shard.size());
  }
  // FatTree prefixes are independent singleton components: near-perfect
  // balance is achievable.
  EXPECT_LE(largest - smallest, 1u);
}

TEST(BuildShardPlanTest, SeedShufflesEqualSizedComponents) {
  topo::FatTreeParams params;
  params.k = 6;
  auto parsed = testing::Parse(topo::MakeFatTree(params));
  ShardPlan a = BuildShardPlan(parsed, 4, 1);
  ShardPlan b = BuildShardPlan(parsed, 4, 1);
  ShardPlan c = BuildShardPlan(parsed, 4, 2);
  EXPECT_EQ(a, b);  // deterministic per seed
  EXPECT_NE(a, c);  // shuffled across seeds (paper §4.5)
}

TEST(BuildShardPlanTest, FewerComponentsThanShards) {
  auto parsed = testing::Parse(testing::MakeChain(2));
  ShardPlan plan = BuildShardPlan(parsed, 50);
  EXPECT_LE(plan.num_shards(), 50u);
  EXPECT_GE(plan.num_shards(), 1u);
  for (const PrefixSet& shard : plan.shards()) EXPECT_FALSE(shard.empty());
}

TEST(MergeShardsTest, MergesAndReindexes) {
  auto parsed = testing::Parse(testing::MakeChain(4));
  ShardPlan plan = BuildShardPlan(parsed, 4);
  auto a = *plan.shard(0).begin();
  auto b = *plan.shard(3).begin();
  size_t before = plan.total_prefixes();
  int merged = MergeShards(plan, a, b);
  EXPECT_EQ(merged, 0);
  EXPECT_EQ(plan.num_shards(), 3u);
  EXPECT_EQ(plan.total_prefixes(), before);
  EXPECT_EQ(plan.ShardOf(a), plan.ShardOf(b));
  // Already together: no-op.
  EXPECT_EQ(MergeShards(plan, a, b), -1);
}

TEST(ValidateShardPlanTest, FreshPlansAreClean) {
  auto parsed = testing::Parse(topo::MakeDcn(topo::DcnParams{}));
  ShardPlan plan = BuildShardPlan(parsed, 8);
  EXPECT_TRUE(ValidateShardPlan(parsed, plan).empty());
  EXPECT_EQ(RepairShardPlan(parsed, plan), 0);
}

TEST(ValidateShardPlanTest, DetectsSplitDependencies) {
  auto parsed = testing::Parse(topo::MakeDcn(topo::DcnParams{}));
  ShardPlan plan = BuildShardPlan(parsed, 8);
  // Corrupt: move one aggregate away from its contributors.
  auto agg = util::MustParsePrefix("10.2.0.0/16");
  int home = plan.ShardOf(agg);
  ASSERT_GE(home, 0);
  plan.Assign((home + 1) % plan.num_shards(), agg);
  auto violations = ValidateShardPlan(parsed, plan);
  EXPECT_FALSE(violations.empty());
  for (const ShardViolation& violation : violations) {
    EXPECT_EQ(violation.dependent, agg);
  }
}

TEST(ValidateShardPlanTest, DetectsMissingPrefixes) {
  auto parsed = testing::Parse(topo::MakeDcn(topo::DcnParams{}));
  ShardPlan plan = BuildShardPlan(parsed, 4);
  auto dflt = util::MustParsePrefix("0.0.0.0/0");
  plan.Erase(dflt);
  EXPECT_FALSE(ValidateShardPlan(parsed, plan).empty());
}

// The §7 merge-and-recompute fallback, end to end: corrupt a plan, repair
// it, and confirm the repaired sharded simulation still matches the
// unsharded fixed point.
TEST(RepairShardPlanTest, RepairedPlanComputesCorrectRibs) {
  auto parsed = testing::Parse(topo::MakeDcn(topo::DcnParams{}));
  ShardPlan plan = BuildShardPlan(parsed, 8);
  auto agg = util::MustParsePrefix("10.2.0.0/16");
  auto dflt = util::MustParsePrefix("0.0.0.0/0");
  int agg_home = plan.ShardOf(agg);
  plan.Assign((agg_home + 1) % plan.num_shards(), agg);
  plan.Erase(dflt);

  int fixes = RepairShardPlan(parsed, plan);
  EXPECT_GT(fixes, 0);
  EXPECT_TRUE(ValidateShardPlan(parsed, plan).empty());

  MonoEngine direct(parsed, nullptr);
  direct.Run(nullptr, nullptr);
  RibStore store;
  MonoEngine sharded(parsed, nullptr);
  sharded.Run(&plan, &store);
  for (topo::NodeId id = 0; id < parsed.configs.size(); ++id) {
    ASSERT_EQ(store.ReadAll(id, sharded.attr_pool()),
              direct.node(id).bgp_routes());
  }
}

// Fabricates a single-device network whose BGP universe has `pairs`
// conditional advertisements over 2*pairs otherwise-independent /24s —
// a dependency-dense universe that is cheap to build but large enough to
// expose superlinear repair behaviour.
config::ParsedNetwork BigUniverse(int pairs) {
  config::ParsedNetwork net;
  net.configs.emplace_back();
  config::ViConfig& config = net.configs.back();
  config.hostname = "big";
  config.bgp.enabled = true;
  for (int i = 0; i < pairs; ++i) {
    util::Ipv4Prefix adv(
        util::Ipv4Address((10u << 24) | (uint32_t(i) << 8)), 24);
    util::Ipv4Prefix watch(
        util::Ipv4Address((11u << 24) | (uint32_t(i) << 8)), 24);
    config.bgp.networks.push_back(adv);
    config.bgp.networks.push_back(watch);
    config.bgp.cond_advs.push_back(config::BgpCondAdv{adv, watch, true});
  }
  return net;
}

// Regression: repair used to re-run full validation after every single
// merge, and ShardOf was a linear scan over all shards — superquadratic in
// the dependency count. On this universe (1500 dependency pairs, every one
// violated) the old code burned minutes; the repaired loop with the O(1)
// index finishes in well under a second. The generous wall bound keeps the
// test robust on slow CI while still failing the pre-fix behaviour.
TEST(RepairShardPlanTest, RepairScalesOnLargeCorruptedPlans) {
  config::ParsedNetwork net = BigUniverse(1500);
  ShardPlan plan = BuildShardPlan(net, 64);
  ASSERT_EQ(plan.total_prefixes(), 3000u);
  // Corrupt every dependency: move each advertised prefix out of its
  // watch's shard.
  for (const config::BgpCondAdv& cond : net.configs[0].bgp.cond_advs) {
    int home = plan.ShardOf(cond.advertise);
    ASSERT_GE(home, 0);
    plan.Assign((home + 1) % plan.num_shards(), cond.advertise);
  }
  ASSERT_FALSE(ValidateShardPlan(net, plan).empty());

  util::Stopwatch wall;
  int fixes = RepairShardPlan(net, plan);
  EXPECT_GT(fixes, 0);
  EXPECT_TRUE(ValidateShardPlan(net, plan).empty());
  EXPECT_LT(wall.ElapsedSeconds(), 10.0);
  EXPECT_EQ(plan.total_prefixes(), 3000u);  // repair never loses prefixes
}

// Post-repair invariants, including the prefix->shard index the class
// maintains through Assign/Erase/Merge renumbering: every universe prefix
// is assigned, ShardOf agrees with shard membership, and repair is
// idempotent.
TEST(RepairShardPlanTest, RepairPreservesPlanInvariants) {
  auto parsed = testing::Parse(topo::MakeDcn(topo::DcnParams{}));
  ShardPlan plan = BuildShardPlan(parsed, 8);
  auto universe = CollectBgpPrefixes(parsed);

  // Corrupt three ways: split an aggregate from its contributors, split a
  // conditional advertisement, and drop a prefix entirely.
  auto agg = util::MustParsePrefix("10.2.0.0/16");
  int agg_home = plan.ShardOf(agg);
  ASSERT_GE(agg_home, 0);
  plan.Assign((agg_home + 1) % plan.num_shards(), agg);
  plan.Erase(util::MustParsePrefix("0.0.0.0/0"));

  int fixes = RepairShardPlan(parsed, plan);
  EXPECT_GT(fixes, 0);
  EXPECT_TRUE(ValidateShardPlan(parsed, plan).empty());
  EXPECT_EQ(RepairShardPlan(parsed, plan), 0);  // idempotent

  EXPECT_EQ(plan.total_prefixes(), universe.size());
  for (const auto& prefix : universe) {
    EXPECT_NE(plan.ShardOf(prefix), -1) << prefix.ToString();
  }
  // Index consistency: membership and ShardOf agree, sizes add up.
  size_t members = 0;
  for (size_t s = 0; s < plan.num_shards(); ++s) {
    for (const auto& prefix : plan.shard(s)) {
      EXPECT_EQ(plan.ShardOf(prefix), static_cast<int>(s))
          << prefix.ToString();
      ++members;
    }
  }
  EXPECT_EQ(members, plan.total_prefixes());
}

TEST(RepairShardPlanTest, RepairsEmptyPlan) {
  auto parsed = testing::Parse(topo::MakeDcn(topo::DcnParams{}));
  ShardPlan plan;  // no shards at all
  int fixes = RepairShardPlan(parsed, plan);
  EXPECT_GT(fixes, 0);
  EXPECT_TRUE(ValidateShardPlan(parsed, plan).empty());
}

// The §4.5 correctness claim, end to end: sharded simulation of the DCN —
// whose aggregates, conditional advertisements, and community filters are
// exactly the dependency-heavy features — produces bit-identical RIBs.
class ShardEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardEquivalenceTest, DcnShardedMatchesUnsharded) {
  auto parsed = testing::Parse(topo::MakeDcn(topo::DcnParams{}));
  MonoEngine direct(parsed, nullptr);
  direct.Run(nullptr, nullptr);

  ShardPlan plan = BuildShardPlan(parsed, GetParam());
  RibStore store;
  MonoEngine sharded(parsed, nullptr);
  sharded.Run(&plan, &store);

  for (topo::NodeId id = 0; id < parsed.configs.size(); ++id) {
    ASSERT_EQ(store.ReadAll(id, sharded.attr_pool()),
              direct.node(id).bgp_routes())
        << parsed.configs[id].hostname << " with " << GetParam()
        << " shards";
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardEquivalenceTest,
                         ::testing::Values(2, 3, 7, 16));

}  // namespace
}  // namespace s2::cp
