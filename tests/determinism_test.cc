// Determinism of the parallel engines: the same query run twice — through
// the lane-parallel ParallelForwarding engine, the dp_lanes>1 distributed
// verifier, the query-parallel RunQueries path, and a chaos-schedule run —
// must produce byte-identical serialized finals, identical FIB bytes, and
// identical verdicts. The thread pool only changes the schedule, never the
// outcome; this suite (run under TSan via the chaos label) is the proof.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "bdd/bdd_io.h"
#include "core/mono.h"
#include "core/s2.h"
#include "dp/fib.h"
#include "dp/parallel.h"
#include "obs/trace.h"
#include "test_networks.h"
#include "topo/fattree.h"

namespace s2::dist {
namespace {

config::ParsedNetwork FatTree4() {
  topo::FatTreeParams params;
  params.k = 4;
  return testing::Parse(topo::MakeFatTree(params));
}

dp::Query AllPairQuery(const config::ParsedNetwork& net) {
  dp::Query query;
  query.header_space.dst = util::MustParsePrefix("10.0.0.0/8");
  for (topo::NodeId id = 0; id < net.graph.size(); ++id) {
    if (net.graph.node(id).role == topo::Role::kEdge) {
      query.sources.push_back(id);
      query.destinations.push_back(id);
    }
  }
  return query;
}

// Serializes every final of every lane, in lane-major order, into one
// byte string: src, node, state, path, then the canonical bdd_io bytes of
// the packet set. Equal strings mean byte-identical finals.
std::vector<uint8_t> FinalsBytes(const dp::ParallelForwarding& dp) {
  std::vector<uint8_t> bytes;
  auto put32 = [&](uint32_t v) {
    for (int s = 0; s < 32; s += 8) bytes.push_back((v >> s) & 0xff);
  };
  for (size_t lane = 0; lane < dp.lanes(); ++lane) {
    for (const dp::FinalPacket& final : dp.lane_engine(lane).finals()) {
      put32(final.src);
      put32(final.node);
      bytes.push_back(static_cast<uint8_t>(final.state));
      put32(static_cast<uint32_t>(final.path.size()));
      for (topo::NodeId hop : final.path) put32(hop);
      std::vector<uint8_t> set = bdd::Serialize(final.set);
      put32(static_cast<uint32_t>(set.size()));
      bytes.insert(bytes.end(), set.begin(), set.end());
    }
  }
  return bytes;
}

// One full ParallelForwarding run over converged FIBs: register every
// node (round-robin lanes), inject at every edge switch, drain with the
// given pool, return the serialized finals.
std::vector<uint8_t> RunParallelEngine(const config::ParsedNetwork& net,
                                       core::MonoVerifier& mono,
                                       uint32_t lanes,
                                       util::ThreadPool* pool) {
  util::MemoryTracker tracker("determinism", 0);
  dp::ParallelForwarding::Options options;
  options.lanes = lanes;
  dp::ParallelForwarding dp(options);
  for (const auto& node : mono.last_engine()->nodes()) {
    const dp::PacketCodec& codec = dp.BeginNode(node->id());
    dp::Fib fib = dp::Fib::Build(net, node->id(), node->bgp_routes(),
                                 node->ospf_routes(), &tracker);
    dp.AddNode(node->id(),
               dp::BuildPredicates(net, node->id(), fib, codec));
  }
  dp::Query query = AllPairQuery(net);
  for (topo::NodeId src : query.sources) {
    dp.Inject(src, query.header_space);
  }
  // Every node is registered, so nothing is off-worker.
  dp.Run(pool, [](const dp::WirePacket&) { FAIL() << "unexpected remote"; });
  return FinalsBytes(dp);
}

TEST(DeterminismTest, ParallelEngineFinalsAreByteIdentical) {
  config::ParsedNetwork net = FatTree4();
  core::MonoVerifier mono{core::MonoOptions{}};
  ASSERT_TRUE(mono.Verify(net, {}).ok());
  util::ThreadPool pool(4);
  std::vector<uint8_t> first = RunParallelEngine(net, mono, 3, &pool);
  std::vector<uint8_t> second = RunParallelEngine(net, mono, 3, &pool);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The pool only changes the schedule: a poolless (sequential) drain of
  // the same 3-lane layout serializes to the same bytes.
  EXPECT_EQ(first, RunParallelEngine(net, mono, 3, nullptr));
}

// Canonical per-node predicate bytes across all workers (the FIB hash).
std::map<topo::NodeId, std::vector<uint8_t>> FibBytes(
    Controller* controller) {
  std::map<topo::NodeId, std::vector<uint8_t>> all;
  for (size_t w = 0; w < controller->num_workers(); ++w) {
    for (auto& [node, bytes] : controller->worker(w).SnapshotPredicates()) {
      all[node] = std::move(bytes);
    }
  }
  return all;
}

struct RunOutcome {
  core::VerifyResult result;
  std::map<topo::NodeId, std::vector<uint8_t>> fib_bytes;
};

RunOutcome RunDistributed(const config::ParsedNetwork& net,
                          const std::vector<dp::Query>& queries,
                          size_t query_lanes,
                          std::optional<fault::FaultPlan> plan) {
  ControllerOptions options;
  options.num_workers = 4;
  options.dp_lanes = 2;
  options.query_lanes = query_lanes;
  options.fault_plan = std::move(plan);
  core::S2Verifier verifier(options);
  RunOutcome outcome;
  outcome.result = verifier.Verify(net, queries);
  outcome.fib_bytes = FibBytes(verifier.last_controller());
  return outcome;
}

// Verdicts and FIB bytes must match; comm_bytes only when both runs saw
// the same fault schedule (retransmits inflate the chaos run's traffic).
void ExpectSameSemantics(const RunOutcome& a, const RunOutcome& b) {
  ASSERT_TRUE(a.result.ok()) << a.result.failure_detail;
  ASSERT_TRUE(b.result.ok()) << b.result.failure_detail;
  ASSERT_EQ(a.result.queries.size(), b.result.queries.size());
  for (size_t q = 0; q < a.result.queries.size(); ++q) {
    EXPECT_EQ(a.result.queries[q].reachable_pairs,
              b.result.queries[q].reachable_pairs);
    EXPECT_EQ(a.result.queries[q].unreachable_pairs,
              b.result.queries[q].unreachable_pairs);
    EXPECT_EQ(a.result.queries[q].loop_free, b.result.queries[q].loop_free);
    EXPECT_EQ(a.result.queries[q].blackhole_finals,
              b.result.queries[q].blackhole_finals);
  }
  EXPECT_EQ(a.result.total_best_routes, b.result.total_best_routes);
  EXPECT_EQ(a.fib_bytes, b.fib_bytes);  // byte-identical FIBs
}

void ExpectIdentical(const RunOutcome& a, const RunOutcome& b) {
  ExpectSameSemantics(a, b);
  EXPECT_EQ(a.result.control_plane.comm_bytes,
            b.result.control_plane.comm_bytes);
  EXPECT_EQ(a.result.dp_build.comm_bytes, b.result.dp_build.comm_bytes);
  EXPECT_EQ(a.result.dp_forward.comm_bytes, b.result.dp_forward.comm_bytes);
  EXPECT_EQ(a.result.comm_bytes, b.result.comm_bytes);
}

TEST(DeterminismTest, DistributedParallelRunsAreIdentical) {
  config::ParsedNetwork net = FatTree4();
  std::vector<dp::Query> queries = {AllPairQuery(net)};
  ExpectIdentical(RunDistributed(net, queries, 0, std::nullopt),
                  RunDistributed(net, queries, 0, std::nullopt));
}

TEST(DeterminismTest, QueryParallelRunsAreIdentical) {
  config::ParsedNetwork net = FatTree4();
  dp::Query single;
  single.sources = {net.graph.FindByName("edge-0-0")};
  single.destinations = {net.graph.FindByName("edge-1-0")};
  single.header_space.dst = util::MustParsePrefix("10.1.0.0/24");
  std::vector<dp::Query> queries = {AllPairQuery(net), single};
  ExpectIdentical(RunDistributed(net, queries, 2, std::nullopt),
                  RunDistributed(net, queries, 2, std::nullopt));
}

// Tracing must be a pure observer: the same distributed run with the
// tracer capturing produces byte-identical FIBs, verdicts, and comm
// accounting — while actually recording spans (an accidentally-disabled
// tracer would pass vacuously).
TEST(DeterminismTest, TracingDoesNotPerturbResults) {
  config::ParsedNetwork net = FatTree4();
  std::vector<dp::Query> queries = {AllPairQuery(net)};
  RunOutcome off = RunDistributed(net, queries, 0, std::nullopt);
  obs::Tracer::Get().Enable();
  RunOutcome on = RunDistributed(net, queries, 0, std::nullopt);
  size_t events = obs::Tracer::Get().event_count();
  obs::Tracer::Get().Disable();
  obs::Tracer::Get().Clear();
  EXPECT_GT(events, 0u);
  ExpectIdentical(off, on);
}

// Chaos-labeled case: a fault schedule (drops, duplication, reorder, a
// scheduled crash) on top of the dp_lanes>1 engine still replays to
// byte-identical FIBs and verdicts, run to run.
TEST(DeterminismTest, ChaosScheduleWithParallelLanesIsDeterministic) {
  config::ParsedNetwork net = FatTree4();
  fault::FaultPlan plan;
  plan.seed = 4242;
  plan.default_link.drop = 0.12;
  plan.default_link.duplicate = 0.05;
  plan.default_link.reorder = 0.10;
  plan.checkpoint_interval = 2;
  plan.crashes.push_back({fault::CrashPhase::kControlPlaneRound, 3, 1});
  std::vector<dp::Query> queries = {AllPairQuery(net)};

  RunOutcome first = RunDistributed(net, queries, 0, plan);
  RunOutcome second = RunDistributed(net, queries, 0, plan);
  ExpectIdentical(first, second);
  EXPECT_EQ(first.result.frames_dropped, second.result.frames_dropped);
  EXPECT_EQ(first.result.retransmits, second.result.retransmits);
  EXPECT_EQ(first.result.worker_recoveries, 1u);

  // And the chaos run agrees with the fault-free run semantically.
  ExpectSameSemantics(first, RunDistributed(net, queries, 0, std::nullopt));
}

}  // namespace
}  // namespace s2::dist
