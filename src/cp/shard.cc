#include "cp/shard.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "util/rng.h"

namespace s2::cp {

namespace {

// Union-find over dense indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

void ShardPlan::ResizeShards(size_t n) {
  for (size_t s = n; s < shards_.size(); ++s) {
    for (const util::Ipv4Prefix& prefix : shards_[s]) index_.erase(prefix);
  }
  shards_.resize(n);
}

void ShardPlan::Assign(size_t shard, const util::Ipv4Prefix& prefix) {
  auto it = index_.find(prefix);
  if (it != index_.end()) {
    if (it->second == static_cast<int>(shard)) return;
    shards_[it->second].erase(prefix);
    it->second = static_cast<int>(shard);
  } else {
    index_.emplace(prefix, static_cast<int>(shard));
  }
  shards_[shard].insert(prefix);
}

void ShardPlan::Erase(const util::Ipv4Prefix& prefix) {
  auto it = index_.find(prefix);
  if (it == index_.end()) return;
  shards_[it->second].erase(prefix);
  index_.erase(it);
}

int ShardPlan::Merge(const util::Ipv4Prefix& a, const util::Ipv4Prefix& b) {
  int sa = ShardOf(a), sb = ShardOf(b);
  if (sa < 0 || sb < 0 || sa == sb) return -1;
  int lo = std::min(sa, sb), hi = std::max(sa, sb);
  shards_[lo].insert(shards_[hi].begin(), shards_[hi].end());
  for (const util::Ipv4Prefix& prefix : shards_[hi]) index_[prefix] = lo;
  shards_.erase(shards_.begin() + hi);
  // Shards above the erased one shift down by one.
  for (auto& [prefix, shard] : index_) {
    if (shard > hi) --shard;
  }
  return lo;
}

std::vector<util::Ipv4Prefix> CollectBgpPrefixes(
    const config::ParsedNetwork& network) {
  PrefixSet universe;
  // OSPF-contributed prefixes (the redistribution closure): loopbacks of
  // OSPF speakers can appear in any redistributing device's BGP RIB.
  PrefixSet ospf_prefixes;
  bool any_redistributes = false;
  for (const config::ViConfig& config : network.configs) {
    if (config.ospf.enabled) ospf_prefixes.insert(config.loopback);
    if (config.bgp.redistribute_ospf) any_redistributes = true;
  }
  for (const config::ViConfig& config : network.configs) {
    for (const util::Ipv4Prefix& p : config.bgp.networks) universe.insert(p);
    for (const config::BgpAggregate& agg : config.bgp.aggregates) {
      universe.insert(agg.prefix);
    }
    for (const config::BgpCondAdv& cond : config.bgp.cond_advs) {
      universe.insert(cond.advertise);
      universe.insert(cond.watch);
    }
  }
  if (any_redistributes) {
    universe.insert(ospf_prefixes.begin(), ospf_prefixes.end());
  }
  std::vector<util::Ipv4Prefix> out(universe.begin(), universe.end());
  std::sort(out.begin(), out.end());
  return out;
}

ShardPlan BuildShardPlan(const config::ParsedNetwork& network, int num_shards,
                         uint64_t seed) {
  std::vector<util::Ipv4Prefix> prefixes = CollectBgpPrefixes(network);
  std::map<util::Ipv4Prefix, size_t> index;
  for (size_t i = 0; i < prefixes.size(); ++i) index[prefixes[i]] = i;

  // DPDG edges -> weakly connected components via union-find. Directions
  // don't matter for components, so edges are unioned directly.
  UnionFind uf(prefixes.size());
  for (const config::ViConfig& config : network.configs) {
    for (const config::BgpAggregate& agg : config.bgp.aggregates) {
      size_t a = index.at(agg.prefix);
      // An aggregate depends on every (potential) contributing prefix.
      for (size_t i = 0; i < prefixes.size(); ++i) {
        if (prefixes[i] != agg.prefix && agg.prefix.Contains(prefixes[i])) {
          uf.Union(a, i);
        }
      }
    }
    for (const config::BgpCondAdv& cond : config.bgp.cond_advs) {
      uf.Union(index.at(cond.advertise), index.at(cond.watch));
    }
  }

  // Components, largest first; shuffle equal sizes (paper §4.5).
  std::map<size_t, std::vector<size_t>> components;
  for (size_t i = 0; i < prefixes.size(); ++i) {
    components[uf.Find(i)].push_back(i);
  }
  std::vector<std::vector<size_t>> ccs;
  ccs.reserve(components.size());
  for (auto& [root, members] : components) ccs.push_back(std::move(members));
  util::Rng rng(seed);
  rng.Shuffle(ccs);
  std::stable_sort(ccs.begin(), ccs.end(),
                   [](const auto& a, const auto& b) {
                     return a.size() > b.size();
                   });

  ShardPlan plan;
  size_t shard_count = std::max<size_t>(
      1, std::min<size_t>(static_cast<size_t>(num_shards), ccs.size()));
  plan.ResizeShards(shard_count);
  for (const std::vector<size_t>& cc : ccs) {
    size_t smallest = 0;
    for (size_t s = 1; s < plan.num_shards(); ++s) {
      if (plan.shard(s).size() < plan.shard(smallest).size()) smallest = s;
    }
    for (size_t i : cc) plan.Assign(smallest, prefixes[i]);
  }
  return plan;
}

int MergeShards(ShardPlan& plan, const util::Ipv4Prefix& a,
                const util::Ipv4Prefix& b) {
  return plan.Merge(a, b);
}

namespace {

// Visits every (dependent, required) prefix pair the configs induce.
template <typename Fn>
void ForEachDependency(const config::ParsedNetwork& network,
                       const std::vector<util::Ipv4Prefix>& universe,
                       Fn&& fn) {
  for (const config::ViConfig& config : network.configs) {
    for (const config::BgpAggregate& agg : config.bgp.aggregates) {
      for (const util::Ipv4Prefix& prefix : universe) {
        if (prefix != agg.prefix && agg.prefix.Contains(prefix)) {
          fn(agg.prefix, prefix);
        }
      }
    }
    for (const config::BgpCondAdv& cond : config.bgp.cond_advs) {
      fn(cond.advertise, cond.watch);
    }
  }
}

}  // namespace

std::vector<ShardViolation> ValidateShardPlan(
    const config::ParsedNetwork& network, const ShardPlan& plan) {
  std::vector<ShardViolation> violations;
  auto universe = CollectBgpPrefixes(network);
  ForEachDependency(network, universe,
                    [&](const util::Ipv4Prefix& dependent,
                        const util::Ipv4Prefix& required) {
                      int sd = plan.ShardOf(dependent);
                      int sr = plan.ShardOf(required);
                      if (sd < 0 || sr < 0 || sd != sr) {
                        violations.push_back(
                            ShardViolation{dependent, required});
                      }
                    });
  return violations;
}

int RepairShardPlan(const config::ParsedNetwork& network, ShardPlan& plan) {
  int fixes = 0;
  // Apply every violation of a pass before re-validating: ShardOf is
  // re-queried per violation, so earlier merges in the same pass are
  // already reflected (the plan's index absorbs the shard renumbering a
  // merge causes). The old one-merge-per-validation loop re-scanned the
  // whole dependency set after every single merge, which together with a
  // linear ShardOf made repair superquadratic. A merged pair can co-locate
  // a previously split third prefix, never the reverse, so the fixed point
  // is reached in few passes; the plan only ever shrinks, so this
  // terminates.
  for (;;) {
    std::vector<ShardViolation> violations =
        ValidateShardPlan(network, plan);
    if (violations.empty()) return fixes;
    for (const ShardViolation& violation : violations) {
      int sd = plan.ShardOf(violation.dependent);
      int sr = plan.ShardOf(violation.required);
      if (sd < 0 && sr < 0) {
        if (plan.empty()) plan.ResizeShards(1);
        plan.Assign(0, violation.dependent);
        plan.Assign(0, violation.required);
        ++fixes;
      } else if (sd < 0) {
        plan.Assign(sr, violation.dependent);
        ++fixes;
      } else if (sr < 0) {
        plan.Assign(sd, violation.required);
        ++fixes;
      } else if (sd != sr) {
        plan.Merge(violation.dependent, violation.required);
        ++fixes;
      }
    }
  }
}

}  // namespace s2::cp
