// Configuration parsers: vendor config text -> vendor-independent model,
// plus layer-3 topology inference (paper §3.2/§3.3: the controller's
// parser stage). Dialect is auto-detected (Alpha block syntax vs Beta
// "set" syntax).
#pragma once

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "config/vi_model.h"
#include "topo/graph.h"
#include "util/status.h"

namespace s2::config {

// Parses one device's configuration. Returns an error for malformed text.
util::Result<ViConfig> ParseConfig(const std::string& text);

// A parsed network: one VI config per device (device id = index), the
// inferred L3 adjacency graph, and the address book used to resolve BGP
// neighbor addresses to devices.
struct ParsedNetwork {
  std::vector<ViConfig> configs;
  topo::Graph graph;
  // interface address bits -> (device, interface name)
  std::unordered_map<uint32_t, std::pair<topo::NodeId, std::string>>
      address_book;

  // Device owning `address`, or kInvalidNode.
  topo::NodeId FindByAddress(util::Ipv4Address address) const;
};

// Parses every config and infers the topology: two interfaces on the same
// /31 subnet are adjacent (Batfish-style L3 adjacency inference). Also
// reconstructs partitioning metadata (role/layer/pod and the §4.1 load
// estimates) from hostname conventions — the paper's "expert" knowledge
// that names encode placement. Aborts on parse errors (inputs come from
// SynthesizeConfigs or trusted files; callers wanting diagnostics parse
// files individually first).
ParsedNetwork ParseNetwork(const std::vector<std::string>& texts);

// Rebuilds `network`'s derived state (graph, address book, load
// estimates) from its configs — call after mutating the VI models (e.g.
// what-if edits in core/whatif.h).
void ReindexParsedNetwork(ParsedNetwork& network);

}  // namespace s2::config
