// FIB construction tests: LPM ordering, protocol merge by admin distance,
// action classification (forward / arrive / exit / discard), ECMP next
// hops, and memory accounting.
#include <gtest/gtest.h>

#include "cp/engine.h"
#include "dp/fib.h"
#include "test_networks.h"

namespace s2::dp {
namespace {

using RouteMap = std::map<util::Ipv4Prefix, std::vector<cp::Route>>;

cp::Route Learned(const std::string& prefix, topo::NodeId from) {
  cp::Route r;
  r.prefix = util::MustParsePrefix(prefix);
  r.protocol = cp::Protocol::kBgp;
  r.learned_from = from;
  return r;
}

cp::Route Local(const std::string& prefix) {
  cp::Route r;
  r.prefix = util::MustParsePrefix(prefix);
  r.protocol = cp::Protocol::kLocal;
  r.learned_from = topo::kInvalidNode;
  return r;
}

const FibEntry* Find(const Fib& fib, const std::string& prefix) {
  auto p = util::MustParsePrefix(prefix);
  for (const FibEntry& entry : fib.entries) {
    if (entry.prefix == p) return &entry;
  }
  return nullptr;
}

TEST(FibTest, LongestPrefixFirstOrdering) {
  auto net = testing::Parse(testing::MakeChain(2));
  RouteMap bgp;
  bgp[util::MustParsePrefix("10.0.0.0/8")] = {Learned("10.0.0.0/8", 1)};
  bgp[util::MustParsePrefix("10.1.0.0/16")] = {Learned("10.1.0.0/16", 1)};
  bgp[util::MustParsePrefix("10.1.2.0/24")] = {Learned("10.1.2.0/24", 1)};
  Fib fib = Fib::Build(net, 0, bgp, {}, nullptr);
  for (size_t i = 1; i < fib.entries.size(); ++i) {
    EXPECT_GE(fib.entries[i - 1].prefix.length(),
              fib.entries[i].prefix.length());
  }
}

TEST(FibTest, ActionClassification) {
  auto net = testing::Parse(testing::MakeChain(2));
  // Make node 0's config carry an aggregate and a conditional default.
  config::ViConfig& config = net.configs[0];
  config.bgp.aggregates.push_back(config::BgpAggregate{
      util::MustParsePrefix("10.0.0.0/15"), true, {}});
  config.bgp.cond_advs.push_back(config::BgpCondAdv{
      util::MustParsePrefix("0.0.0.0/0"),
      util::MustParsePrefix("10.0.0.0/24"), true});

  RouteMap bgp;
  bgp[util::MustParsePrefix("10.0.0.0/24")] = {Local("10.0.0.0/24")};
  bgp[util::MustParsePrefix("10.0.0.0/15")] = {Local("10.0.0.0/15")};
  bgp[util::MustParsePrefix("0.0.0.0/0")] = {Local("0.0.0.0/0")};
  bgp[util::MustParsePrefix("10.0.1.0/24")] = {Learned("10.0.1.0/24", 1)};
  Fib fib = Fib::Build(net, 0, bgp, {}, nullptr);

  EXPECT_EQ(Find(fib, "10.0.0.0/24")->action, FibAction::kArrive);
  EXPECT_EQ(Find(fib, "10.0.0.0/15")->action, FibAction::kDiscard);
  EXPECT_EQ(Find(fib, "0.0.0.0/0")->action, FibAction::kExit);
  const FibEntry* fwd = Find(fib, "10.0.1.0/24");
  ASSERT_NE(fwd, nullptr);
  EXPECT_EQ(fwd->action, FibAction::kForward);
  EXPECT_EQ(fwd->next_hops, std::vector<topo::NodeId>{1});
  // Loopback arrive entry always present.
  EXPECT_EQ(Find(fib, "172.16.0.0/32")->action, FibAction::kArrive);
}

TEST(FibTest, EcmpNextHopsDeduplicated) {
  auto net = testing::Parse(testing::MakeDiamond());
  RouteMap bgp;
  bgp[util::MustParsePrefix("10.0.3.0/24")] = {
      Learned("10.0.3.0/24", 1), Learned("10.0.3.0/24", 2),
      Learned("10.0.3.0/24", 1)};  // duplicate neighbor
  Fib fib = Fib::Build(net, 0, bgp, {}, nullptr);
  EXPECT_EQ(Find(fib, "10.0.3.0/24")->next_hops,
            (std::vector<topo::NodeId>{1, 2}));
}

TEST(FibTest, OspfLosesToBgpByAdminDistance) {
  auto net = testing::Parse(testing::MakeChain(3));
  RouteMap bgp, ospf;
  bgp[util::MustParsePrefix("10.0.2.0/24")] = {Learned("10.0.2.0/24", 1)};
  cp::Route o = Learned("10.0.2.0/24", 2);
  o.protocol = cp::Protocol::kOspf;
  ospf[util::MustParsePrefix("10.0.2.0/24")] = {o};
  Fib fib = Fib::Build(net, 0, bgp, ospf, nullptr);
  EXPECT_EQ(Find(fib, "10.0.2.0/24")->next_hops,
            std::vector<topo::NodeId>{1});  // BGP's next hop won
  // OSPF-only prefixes still enter the FIB.
  cp::Route lo = Learned("172.16.0.2/32", 1);
  lo.protocol = cp::Protocol::kOspf;
  ospf[util::MustParsePrefix("172.16.0.2/32")] = {lo};
  Fib fib2 = Fib::Build(net, 0, bgp, ospf, nullptr);
  EXPECT_EQ(Find(fib2, "172.16.0.2/32")->action, FibAction::kForward);
}

TEST(FibTest, ChargesTracker) {
  auto net = testing::Parse(testing::MakeChain(2));
  RouteMap bgp;
  bgp[util::MustParsePrefix("10.0.1.0/24")] = {Learned("10.0.1.0/24", 1)};
  util::MemoryTracker tracker("fib");
  Fib fib = Fib::Build(net, 0, bgp, {}, &tracker);
  EXPECT_EQ(tracker.live_bytes(), fib.EstimateBytes());
  EXPECT_GT(fib.EstimateBytes(), 0u);
}

TEST(FibTest, EndToEndFromConvergedEngine) {
  auto net = testing::Parse(testing::MakeDiamond());
  cp::MonoEngine engine(net, nullptr);
  engine.Run(nullptr, nullptr);
  Fib fib = Fib::Build(net, 0, engine.node(0).bgp_routes(),
                       engine.node(0).ospf_routes(), nullptr);
  const FibEntry* cross = Find(fib, "10.0.3.0/24");
  ASSERT_NE(cross, nullptr);
  EXPECT_EQ(cross->action, FibAction::kForward);
  EXPECT_EQ(cross->next_hops.size(), 2u);  // ECMP via r1 and r2
  EXPECT_EQ(Find(fib, "10.0.0.0/24")->action, FibAction::kArrive);
}

}  // namespace
}  // namespace s2::dp
