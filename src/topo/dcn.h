// DCN-like topology synthesis — the stand-in for the paper's proprietary
// production datacenter (§2.3, DESIGN.md substitution S1).
//
// Reproduced §2.3 characteristics:
//  - Clos clusters with *different layer counts* (3-layer small clusters,
//    5-layer big clusters) co-existing under a shared core layer.
//  - Same-layer switches share an ASN; AS_PATH-overwrite policies on the
//    upper layers prevent the resulting cross-cluster route drops.
//  - Route aggregation at layer >= 3: VLAN (business) /24s and loopback
//    (management) /32s are aggregated into per-cluster prefixes, tagged
//    with communities which border switches use to filter exports.
//  - Heterogeneous ECMP limits per layer; mixed vendor dialects; private
//    ASNs inside the fabric with remove-private-as on the borders.
//  - Conditional advertisement on borders (default route depends on the
//    backbone prefix), seeding non-trivial DPDG dependencies (§4.5).
#pragma once

#include "topo/graph.h"

namespace s2::topo {

struct DcnParams {
  int small_clusters = 2;  // 3-layer clusters
  int big_clusters = 1;    // 5-layer clusters
  int tors_per_pod = 4;    // layer-0 width per pod
  int leafs_per_pod = 2;   // layer-1 width per pod
  int pods_per_cluster = 2;
  int spines_per_cluster = 2;   // cluster top layer
  int fabrics_per_cluster = 2;  // big-cluster intermediate layer
  int cores = 4;                // global core layer
  int borders = 2;              // backbone-facing switches
  bool mixed_vendors = true;
};

// Well-known communities used by the synthesized DCN policies.
inline constexpr uint32_t kVlanClassCommunity = 200;      // business routes
inline constexpr uint32_t kLoopbackClassCommunity = 201;  // management
inline constexpr uint32_t kVlanAggCommunity = 500;        // VLAN aggregate
inline constexpr uint32_t kLoopbackAggCommunity = 501;    // loopback agg
inline constexpr uint32_t kFromAboveCommunity = 999;      // valley guard
// Community identifying routes of cluster `c`.
inline constexpr uint32_t ClusterTag(int c) { return 100 + uint32_t(c); }

Network MakeDcn(const DcnParams& params);

}  // namespace s2::topo
