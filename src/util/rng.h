// Deterministic pseudo-random source (SplitMix64). Everything in this repo
// that needs randomness — the equal-size-CC shuffle in prefix sharding, the
// random partition scheme, property-test input generation — takes an
// explicit Rng so results are reproducible from a seed.
#pragma once

#include <cstdint>
#include <vector>

namespace s2::util {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  int64_t Between(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  double NextDouble() {  // in [0,1)
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[Below(i)]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace s2::util
