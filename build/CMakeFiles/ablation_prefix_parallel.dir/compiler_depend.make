# Empty compiler generated dependencies file for ablation_prefix_parallel.
# This may be replaced when dependencies are built.
