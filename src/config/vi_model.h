// Vendor-independent (VI) configuration model — the output of the config
// parsers and the input to the control-plane switch model, mirroring
// Batfish's vendor-independent representation (paper §3.2, "the parser
// converts vendor-specific configuration files into vendor-independent
// models").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "topo/graph.h"  // for topo::Vendor
#include "util/ip.h"

namespace s2::config {

// ---------------------------------------------------------------- policy

// One route-map clause. Matches are conjunctive; an empty match section
// matches every route. On a match: a permit clause applies its set actions
// and accepts (or falls through when continue_next is set, accumulating the
// set actions); a deny clause rejects. A route matching no clause is
// rejected (the Cisco implicit deny).
struct RouteMapClause {
  bool permit = true;
  bool continue_next = false;

  // Match route prefix covered by this prefix (any more-specific length).
  std::optional<util::Ipv4Prefix> match_covered_by;
  // Match routes carrying ANY of these communities.
  std::vector<uint32_t> match_any_community;

  std::optional<uint32_t> set_local_pref;
  std::optional<uint32_t> set_med;
  std::vector<uint32_t> add_communities;
  std::vector<uint32_t> delete_communities;
  // Prepend the device's own ASN this many extra times (traffic
  // engineering: artificially lengthen the path).
  uint32_t as_path_prepend = 0;
  // Replace the AS_PATH with [own ASN] (the §2.3 overwrite policy).
  bool set_as_path_overwrite = false;

  bool operator==(const RouteMapClause&) const = default;
};

struct RouteMap {
  std::string name;
  std::vector<RouteMapClause> clauses;

  bool operator==(const RouteMap&) const = default;
};

// ------------------------------------------------------------------- ACL

struct AclEntry {
  bool permit = true;
  // Unset = match-any.
  std::optional<util::Ipv4Prefix> src;
  std::optional<util::Ipv4Prefix> dst;

  bool operator==(const AclEntry&) const = default;
};

// First-match-wins; a packet matching no entry is denied.
struct Acl {
  std::string name;
  std::vector<AclEntry> entries;

  bool operator==(const Acl&) const = default;
};

// ------------------------------------------------------------------- BGP

struct BgpNeighbor {
  util::Ipv4Address peer_address;
  uint32_t remote_as = 0;
  std::string via_interface;     // local interface facing the peer
  std::string import_route_map;  // empty = permit everything unchanged
  std::string export_route_map;
  bool remove_private_as = false;  // semantics depend on the vendor (VSB)

  bool operator==(const BgpNeighbor&) const = default;
};

struct BgpAggregate {
  util::Ipv4Prefix prefix;
  bool summary_only = true;
  std::vector<uint32_t> communities;

  bool operator==(const BgpAggregate&) const = default;
};

struct BgpCondAdv {
  util::Ipv4Prefix advertise;
  util::Ipv4Prefix watch;
  bool advertise_if_present = true;

  bool operator==(const BgpCondAdv&) const = default;
};

struct BgpProcess {
  bool enabled = false;
  uint32_t asn = 0;
  int max_paths = 1;
  std::vector<util::Ipv4Prefix> networks;  // self-originated prefixes
  std::vector<BgpAggregate> aggregates;
  std::vector<BgpCondAdv> cond_advs;
  std::vector<BgpNeighbor> neighbors;
  bool redistribute_ospf = false;

  bool operator==(const BgpProcess&) const = default;
};

// ------------------------------------------------------------------ OSPF

struct OspfProcess {
  bool enabled = false;
  // Single-area OSPF over all configured interfaces with cost 1 per link;
  // advertises the loopback and connected subnets.

  bool operator==(const OspfProcess&) const = default;
};

// ------------------------------------------------------------- interface

struct Interface {
  std::string name;
  util::Ipv4Address address;
  uint8_t prefix_length = 31;
  std::string acl_in;   // ACL names; empty = permit all
  std::string acl_out;

  bool operator==(const Interface&) const = default;
};

// ----------------------------------------------------------------- device

struct ViConfig {
  std::string hostname;
  topo::Vendor vendor = topo::Vendor::kAlpha;
  util::Ipv4Prefix loopback;
  std::vector<Interface> interfaces;
  std::unordered_map<std::string, RouteMap> route_maps;
  std::unordered_map<std::string, Acl> acls;
  BgpProcess bgp;
  OspfProcess ospf;

  const Interface* FindInterface(const std::string& name) const;
  const RouteMap* FindRouteMap(const std::string& name) const;
  const Acl* FindAcl(const std::string& name) const;

  // The prefix of the p2p subnet of `iface` (address masked to length).
  static util::Ipv4Prefix ConnectedPrefix(const Interface& iface);
};

}  // namespace s2::config
