// A worker: one segment of the network plus the machinery to simulate and
// verify it (paper §3.2, "Workers").
//
// Control plane: real cp::Node objects for assigned switches, ShadowNodes
// for remote neighbors; synchronous phases driven by the CPO with all
// cross-worker traffic flowing through the sidecar fabric as serialized
// bytes.
//
// Data plane: a private BDD manager and ForwardingEngine; symbolic packets
// crossing workers are serialized with bdd_io and re-encoded on arrival
// (§4.3, option 2: per-worker node tables).
//
// Every byte of control- and data-plane state a worker holds is charged to
// its own MemoryTracker, whose budget makes per-worker OOM observable.
#pragma once

#include <memory>
#include <unordered_map>

#include "cp/engine.h"
#include "dist/shadow.h"
#include "dist/sidecar.h"
#include "dp/forwarding.h"
#include "dp/properties.h"
#include "fault/checkpoint.h"
#include "util/stopwatch.h"

namespace s2::dist {

// A final packet in transit back to the controller (BDD serialized).
struct SerializedFinal {
  topo::NodeId src = topo::kInvalidNode;
  topo::NodeId node = topo::kInvalidNode;
  dp::FinalState state = dp::FinalState::kArrive;
  std::vector<topo::NodeId> path;  // path-recording queries only
  std::vector<uint8_t> set;

  size_t WireBytes() const { return 16 + set.size() + 4 * path.size(); }
};

class Worker {
 public:
  struct Options {
    size_t memory_budget = 0;   // bytes; 0 = unlimited
    size_t max_bdd_nodes = 0;   // 0 = unbounded node table
    dp::HeaderLayout layout;
    int max_hops = 24;
  };

  Worker(uint32_t index, const config::ParsedNetwork& network,
         SidecarFabric* fabric, Options options);

  uint32_t index() const { return index_; }
  util::MemoryTracker& tracker() { return tracker_; }
  const std::vector<topo::NodeId>& local_nodes() const { return local_; }
  bool IsLocal(topo::NodeId id) const {
    return fabric_->WorkerOf(id) == index_;
  }

  // ------------------------------------------------- control plane (CPO)
  void BeginOspf();
  void FinishOspf();
  void BeginBgp(const cp::PrefixSet* shard);

  // Phase A: one ComputeRound per local node, then ship every outbox entry
  // (local ones are buffered, remote ones serialized through the sidecar).
  // Returns true if any node produced updates.
  bool ComputeAndShip();

  // Phase B: drain the sidecar into shadow nodes, then let every local
  // node pull from each neighbor — real or shadow — identically.
  void Deliver();

  void SpillBgp(cp::RibStore& store, int shard);
  void RetainBgp();

  // --------------------------------------------------- data plane (DPO)
  // Builds FIBs and port predicates for local nodes. Reads converged BGP
  // routes from `store` when sharding spilled them, else from the nodes.
  void BuildDataPlane(const cp::RibStore* store);

  // Installs a query: waypoint write rules and injections at local
  // sources. Clears any previous query's runtime state.
  void PrepareQuery(const dp::Query& query);

  // One forwarding round: accept serialized packets from the sidecar, run
  // the local engine to quiescence, emit cross-worker packets. Returns
  // true if anything was processed.
  bool ForwardRound();

  // Drains final packets, serialized for the controller.
  std::vector<SerializedFinal> TakeFinals();

  // Frees data-plane state (between experiments).
  void ResetDataPlane();

  // -------------------------------------------- crash recovery (src/fault)
  // Snapshots this worker's control-plane state at a barrier. `shard` is
  // the active shard index (-1 = none); the caller stamps fabric_round.
  fault::WorkerCheckpoint Checkpoint(int shard) const;

  // Adds the data-plane snapshot (canonical predicate bytes + FIB size) to
  // an existing checkpoint. Call after BuildDataPlane.
  void CheckpointDataPlane(fault::WorkerCheckpoint& checkpoint) const;

  // Restores a freshly constructed worker from a checkpoint. `shard` must
  // resolve checkpoint.shard against the live partition plan.
  void Restore(const fault::WorkerCheckpoint& checkpoint,
               const cp::PrefixSet* shard);

  // Re-executes the rounds lost between the checkpoint and the crash: for
  // each round in [from_round, to_round), one local compute with remote
  // sends suppressed (receivers already hold them — they are in the
  // surviving sidecar's custody), then the round's logged deliveries.
  // Because the checkpoint restores dirty marks exactly, this reproduces
  // the pre-crash state bit for bit.
  void ReplayDelivered(int from_round, int to_round,
                       const std::vector<fault::LoggedDelivery>& log);

  // Rebuilds the data-plane engine from checkpointed predicate bytes
  // (re-encoded into a fresh manager) instead of recomputing FIBs.
  void RestoreDataPlane(const fault::WorkerCheckpoint& checkpoint);

  // ------------------------------------------------------------- metrics
  // Wall time this worker spent computing in the last phase call.
  double last_phase_seconds() const { return last_phase_seconds_; }
  // Cumulative predicate-computation time (Fig 10's first phase).
  double predicate_seconds() const { return predicate_seconds_; }
  size_t forwarding_steps() const {
    return engine_ ? engine_->steps() : 0;
  }
  const cp::Node& node(topo::NodeId id) const { return *nodes_.at(id); }

 private:
  bool ComputeAndShipImpl(bool suppress_remote);
  void DeliverBatch(std::vector<Message> messages);

  uint32_t index_;
  const config::ParsedNetwork* network_;
  SidecarFabric* fabric_;
  Options options_;
  util::MemoryTracker tracker_;

  std::vector<topo::NodeId> local_;
  std::unordered_map<topo::NodeId, std::unique_ptr<cp::Node>> nodes_;
  std::unordered_map<topo::NodeId, ShadowNode> shadows_;
  // Buffered same-worker deliveries of the current round: (to, from).
  std::map<std::pair<topo::NodeId, topo::NodeId>,
           std::vector<cp::RouteUpdate>>
      local_pending_;

  std::unique_ptr<bdd::Manager> manager_;
  std::unique_ptr<dp::ForwardingEngine> engine_;
  size_t fib_bytes_ = 0;

  double last_phase_seconds_ = 0;
  double predicate_seconds_ = 0;
};

}  // namespace s2::dist
