// ACORN-style FatTree synthesis (paper §5.2).
//
// FatTree(k), k even: k pods of k/2 edge + k/2 aggregation switches and
// (k/2)^2 core switches — 5k^2/4 switches total. Every switch has a unique
// ASN and forms an eBGP session on every link; ECMP is enabled with a
// configurable path limit (the paper uses 64). Each edge switch announces
// one host /24 and every switch announces its loopback /32, which makes
// the total route count quadratic in switch count, the regime the paper's
// memory arguments are about (§2.2).
//
// Paper size mapping (this repo runs scaled-down instances; DESIGN.md S8):
//   FatTree40 = k=40 (2000 sw) ... FatTree90 = k=90 (10125 sw).
#pragma once

#include "topo/graph.h"

namespace s2::topo {

struct FatTreeParams {
  int k = 4;               // pod count; must be even and >= 2
  int max_ecmp_paths = 64;
  // Extra prefixes announced per edge switch beyond the host /24 (models
  // "each TOR may announce multiple prefixes", §2.2).
  int extra_prefixes_per_edge = 0;
  // Alternate the two pseudo-vendor dialects across switches.
  bool mixed_vendors = true;
};

// Number of switches of FatTree(k): 5k^2/4.
int FatTreeSwitchCount(int k);

Network MakeFatTree(const FatTreeParams& params);

}  // namespace s2::topo
