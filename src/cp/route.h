// Route value types and their wire serialization.
//
// Routes are the unit of control-plane state: nodes hold candidate routes
// per (prefix, neighbor), exchange best routes in synchronous rounds, and
// spill converged shard results to persistent storage (paper §3.1/§4.5).
// The serialization here is what sidecars ship across worker boundaries
// and what the RIB store writes to disk.
//
// A Route's BGP attributes (local-pref, MED, origin, AS path, communities)
// live in a hash-consed AttrTuple referenced through an AttrHandle
// (cp/attr.h): copies share one interned tuple per domain, and the wire
// format ships each distinct tuple once per batch through a leading
// attribute table. Malformed bytes raise util::WireFormatError instead of
// aborting or allocating absurd lengths.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cp/attr.h"
#include "topo/graph.h"
#include "util/ip.h"

namespace s2::cp {

enum class Protocol : uint8_t {
  kConnected = 0,
  kLocal = 1,  // locally originated BGP state: network / aggregate / cond-adv
  kBgp = 2,
  kOspf = 3,
};

// Route preference between protocols (lower wins), Cisco-flavoured:
// connected 0, local 5, eBGP 20, OSPF 110.
uint32_t AdminDistance(Protocol protocol);

// The private 2-byte ASN range, used by remove-private-as (§2.1 VSB).
inline constexpr uint32_t kPrivateAsnFirst = 64512;
inline constexpr uint32_t kPrivateAsnLast = 65534;
inline bool IsPrivateAsn(uint32_t asn) {
  return asn >= kPrivateAsnFirst && asn <= kPrivateAsnLast;
}

struct Route {
  util::Ipv4Prefix prefix;
  Protocol protocol = Protocol::kBgp;

  // BGP attributes, interned per domain (a null handle is the default
  // tuple: local-pref 100, MED 0, origin IGP, empty path/communities).
  AttrHandle attrs;

  // OSPF metric.
  uint32_t metric = 0;

  // Provenance: the node that originated the prefix and the neighbor this
  // node learned it from (kInvalidNode = locally originated). The FIB
  // derives the output interface from learned_from.
  topo::NodeId origin_node = topo::kInvalidNode;
  topo::NodeId learned_from = topo::kInvalidNode;

  // AttrHandle's deep equality makes this attribute-value equality, with
  // a same-entry fast path for the common case.
  bool operator==(const Route&) const = default;

  uint32_t local_pref() const { return attrs->local_pref; }
  uint32_t med() const { return attrs->med; }
  uint8_t origin() const { return attrs->origin; }
  const std::vector<uint32_t>& as_path() const { return attrs->as_path; }
  const std::vector<uint32_t>& communities() const {
    return attrs->communities;
  }
  bool HasCommunity(uint32_t community) const {
    return attrs->HasCommunity(community);
  }

  // Copy-on-write attribute mutation: applies `fn` to a copy of the tuple
  // and re-interns the result in `pool`. Construction-site convenience
  // (origination, tests); the policy path batches its edits instead.
  template <typename Fn>
  void MutateAttrs(AttrPool& pool, Fn&& fn) {
    AttrTuple tuple = attrs.get();
    fn(tuple);
    attrs = pool.Intern(std::move(tuple));
  }

  // -------------------------------------------- memory accounting (§4.5)
  // Amortized split (DESIGN.md §4): every Route copy is charged its fixed
  // footprint; the attribute tuple's bytes (AttrTuple::SharedBytes) are
  // charged once per distinct live tuple by the owning AttrPool.
  size_t UniqueBytes() const { return 64; }

  // What the pre-flyweight layout charged per copy — sized after the JVM
  // footprint of a Batfish BGP route (DESIGN.md S4). Kept as the shadow
  // accounting benchmarks compare against.
  size_t PlainBytes() const {
    return 150 + 4 * as_path().size() + 4 * communities().size();
  }

  // Diagnostic total: this copy plus its (possibly shared) tuple.
  size_t EstimateBytes() const {
    return UniqueBytes() + attrs->SharedBytes();
  }
};

// Deterministic BGP decision process over two candidates of the same
// prefix: returns true when `a` is strictly preferred over `b`.
// Order: protocol admin distance, local-pref, AS-path length, origin, MED,
// then deterministic tie-breaks (learned_from, origin_node, AS-path
// lexicographic) so results never depend on arrival order. Shared attr
// entries skip the attribute comparisons wholesale (they all tie).
bool BetterRoute(const Route& a, const Route& b);

// True when `a` and `b` tie on every multipath-relevant attribute (equal
// admin distance, local-pref, AS-path length, origin, MED, metric) and may
// share the FIB entry under ECMP.
bool EcmpEquivalent(const Route& a, const Route& b);

// One entry of a route exchange: an announcement or a withdrawal.
struct RouteUpdate {
  util::Ipv4Prefix prefix;
  bool withdraw = false;
  Route route;  // meaningful unless withdraw
};

// ------------------------------------------------- per-batch attr tables
// The wire format leads every batch with a table of its distinct attribute
// tuples (value-deduplicated, first-appearance order); route entries then
// reference tuples by index, so each distinct tuple crosses a worker
// boundary or hits disk once per batch.

// Collects the distinct tuples of one serialized blob. Composite formats
// (node checkpoints) share one builder across all their route sections:
// serialize the sections into a scratch body, then emit the table followed
// by the body. Referenced routes must outlive the builder.
class AttrTableBuilder {
 public:
  // Index of `route`'s tuple, assigned on first use.
  uint32_t IndexOf(const Route& route);

  // Appends the table (count + tuples in index order).
  void Serialize(std::vector<uint8_t>& out) const;

  size_t distinct() const { return tuples_.size(); }
  size_t reused() const { return reused_; }
  // Wire bytes the inline-per-route encoding would have spent on the
  // references made so far (vs 4 bytes per reference + the table).
  size_t inline_bytes() const { return inline_bytes_; }
  size_t table_bytes() const;

 private:
  std::vector<const AttrTuple*> tuples_;
  std::unordered_map<const AttrTuple*, uint32_t> by_identity_;
  std::unordered_map<size_t, std::vector<uint32_t>> by_hash_;
  size_t reused_ = 0;
  size_t inline_bytes_ = 0;
};

// The decoded table: tuples re-interned into the receiving domain's pool.
class AttrTable {
 public:
  // Reads a table at `pos`, interning every tuple into `pool`. Throws
  // util::WireFormatError on truncation or absurd counts.
  static AttrTable Read(const std::vector<uint8_t>& bytes, size_t& pos,
                        AttrPool& pool);

  // Throws util::WireFormatError on an out-of-range index.
  const AttrHandle& at(uint32_t index) const;
  size_t size() const { return handles_.size(); }

 private:
  std::vector<AttrHandle> handles_;
};

// Wire format used by sidecars and the RIB store: attribute table first,
// then the route entries referencing it. Deserialization re-interns into
// `pool` — the receiving domain's. When `stats_pool` is non-null the
// serializer credits it with the table's dedup/wire-bytes-saved effect.
void SerializeRoutes(const std::vector<RouteUpdate>& updates,
                     std::vector<uint8_t>& out,
                     AttrPool* stats_pool = nullptr);
std::vector<RouteUpdate> DeserializeRoutes(const std::vector<uint8_t>& bytes,
                                           AttrPool& pool);

// Little-endian wire primitives shared by the route, RIB-state, and fault
// checkpoint serializers. GetWireU32 throws util::WireFormatError on
// truncated input.
void PutWireU32(std::vector<uint8_t>& out, uint32_t v);
uint32_t GetWireU32(const std::vector<uint8_t>& bytes, size_t& pos);

// A length-prefixed routes chunk, embeddable in composite formats (node
// checkpoints) that continue reading past it. The attribute table is the
// enclosing format's, shared across all its sections.
void PutRoutesSection(std::vector<uint8_t>& out,
                      const std::vector<RouteUpdate>& updates,
                      AttrTableBuilder& table);
std::vector<RouteUpdate> GetRoutesSection(const std::vector<uint8_t>& bytes,
                                          size_t& pos,
                                          const AttrTable& table);

}  // namespace s2::cp
